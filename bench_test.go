// Package graphm's root benchmark file regenerates every table and figure
// of the paper's evaluation as a testing.B benchmark. Each benchmark runs
// the corresponding experiment once per iteration and reports the tables on
// stdout for the first iteration, so
//
//	go test -bench=. -benchmem
//
// reproduces the full evaluation, and
//
//	go test -bench=BenchmarkFig09 -benchmem
//
// reproduces a single figure. The same experiments are available without
// the benchmark harness via cmd/graphm-bench.
package graphm_test

import (
	"io"
	"os"
	"testing"

	"graphm/internal/bench"
)

// runExperiment executes one experiment b.N times, printing tables only on
// the first iteration to keep -benchtime runs readable.
func runExperiment(b *testing.B, name string, jobs int) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		var out io.Writer = os.Stdout
		if i > 0 {
			out = io.Discard
		}
		h := bench.New(out)
		h.JobCount = jobs
		h.Cores = 8
		if err := h.Run(name); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplay replays two days of the week-in-the-life trace through
// the admission service on a virtual clock at three in-flight caps — the
// service-era successor of the Figure 15 trace replay.
func BenchmarkReplay(b *testing.B) { runExperiment(b, "replay", 16) }

// BenchmarkParallelExecutor runs the streaming-executor worker sweep: the
// out-of-core workload at 1/2/4/8 real workers, reporting wall-clock
// speedup, peak in-flight streams and the (flat) simulated makespan.
func BenchmarkParallelExecutor(b *testing.B) { runExperiment(b, "parallel", 8) }

// BenchmarkAdaptive runs the adaptive chunk re-labelling experiment: the
// deterministic attach/detach ramp under static vs partition-barrier
// re-labelled chunking, comparing simulated LLC misses with bit-identical
// outputs.
func BenchmarkAdaptive(b *testing.B) { runExperiment(b, "adaptive", 14) }

// BenchmarkDurability runs the durable-storage experiment: WAL overhead on
// serial evolve ops, group-commit fsync coalescing under concurrent
// writers, and the checkpoint compression ratio plus a crash-recovery
// differential.
func BenchmarkDurability(b *testing.B) { runExperiment(b, "durability", 8) }

// BenchmarkFig02Trace regenerates Figure 2 (the week-long job trace).
func BenchmarkFig02Trace(b *testing.B) { runExperiment(b, "fig2", 16) }

// BenchmarkFig03Motivation regenerates Figure 3 (concurrent jobs on plain
// GridGraph: memory, LLC misses, LPI, per-job time for 1/2/4/8 jobs).
func BenchmarkFig03Motivation(b *testing.B) { runExperiment(b, "fig3", 16) }

// BenchmarkFig04Similarity regenerates Figure 4 (spatial/temporal
// similarity of the trace).
func BenchmarkFig04Similarity(b *testing.B) { runExperiment(b, "fig4", 16) }

// BenchmarkTable3Preprocess regenerates Table 3 (preprocessing cost of
// GridGraph vs GridGraph-M plus metadata overhead).
func BenchmarkTable3Preprocess(b *testing.B) { runExperiment(b, "table3", 16) }

// BenchmarkFig09Overall regenerates Figure 9 (total execution time of 16
// concurrent jobs under S/C/M across the five datasets).
func BenchmarkFig09Overall(b *testing.B) { runExperiment(b, "fig9", 16) }

// BenchmarkFig10Breakdown regenerates Figure 10 (processing vs data-access
// breakdown).
func BenchmarkFig10Breakdown(b *testing.B) { runExperiment(b, "fig10", 16) }

// BenchmarkFig11Memory regenerates Figure 11 (memory usage).
func BenchmarkFig11Memory(b *testing.B) { runExperiment(b, "fig11", 16) }

// BenchmarkFig12IO regenerates Figure 12 (total I/O overhead).
func BenchmarkFig12IO(b *testing.B) { runExperiment(b, "fig12", 16) }

// BenchmarkFig13LLCMissRate regenerates Figure 13 (LLC miss rate).
func BenchmarkFig13LLCMissRate(b *testing.B) { runExperiment(b, "fig13", 16) }

// BenchmarkFig14SwappedVolume regenerates Figure 14 (volume swapped into
// the LLC).
func BenchmarkFig14SwappedVolume(b *testing.B) { runExperiment(b, "fig14", 16) }

// BenchmarkFig15TraceReplay regenerates Figure 15 (trace-replay
// throughput).
func BenchmarkFig15TraceReplay(b *testing.B) { runExperiment(b, "fig15", 16) }

// BenchmarkFig16Lambda regenerates Figure 16 (sensitivity to the Poisson
// submission rate).
func BenchmarkFig16Lambda(b *testing.B) { runExperiment(b, "fig16", 16) }

// BenchmarkFig17RootDistance regenerates Figure 17 (BFS/SSSP root
// proximity).
func BenchmarkFig17RootDistance(b *testing.B) { runExperiment(b, "fig17", 16) }

// BenchmarkFig18Scheduling regenerates Figure 18 (the Section 4 scheduling
// strategy ablation).
func BenchmarkFig18Scheduling(b *testing.B) { runExperiment(b, "fig18", 16) }

// BenchmarkFig19JobScaling regenerates Figure 19 (scaling the number of
// concurrent PageRank jobs).
func BenchmarkFig19JobScaling(b *testing.B) { runExperiment(b, "fig19", 16) }

// BenchmarkFig20CoreScaling regenerates Figure 20 (scaling the number of
// cores).
func BenchmarkFig20CoreScaling(b *testing.B) { runExperiment(b, "fig20", 16) }

// BenchmarkFig21Distributed regenerates Figure 21 (PowerGraph/Chaos
// scalability on the simulated cluster).
func BenchmarkFig21Distributed(b *testing.B) { runExperiment(b, "fig21", 8) }

// BenchmarkTable4OtherSystems regenerates Table 4 (GraphChi, PowerGraph and
// Chaos integrated with GraphM).
func BenchmarkTable4OtherSystems(b *testing.B) { runExperiment(b, "table4", 8) }

// BenchmarkAblation runs the design-choice ablations DESIGN.md calls out
// (Formula-1 chunk sizing and fine-grained synchronization).
func BenchmarkAblation(b *testing.B) { runExperiment(b, "ablation", 16) }

// BenchmarkOpenLoop runs the open-arrival scenario: jobs admitted online by
// the service layer at increasing Poisson rates, measuring how arrival
// density drives load sharing.
func BenchmarkOpenLoop(b *testing.B) { runExperiment(b, "openloop", 12) }

// BenchmarkHotpath runs the chunk-apply hot-path throughput experiment:
// scanned edges per second (Medges/s) across the serial legacy driver and
// the executor worker sweep.
func BenchmarkHotpath(b *testing.B) { runExperiment(b, "hotpath", 8) }

// BenchmarkHotpathSerial is the serial-only hot-path variant pinned by the
// perf regression gate (the worker sweep's wall-clock scales with the
// runner's core count, so only the serial row is baselined — the same
// caveat that keeps BenchmarkParallelExecutor out of the baseline).
func BenchmarkHotpathSerial(b *testing.B) { runExperiment(b, "hotpath-serial", 8) }

// The per-algorithm serial hot-path gates: one homogeneous 8-job rotation
// per batched fallback algorithm, so a regression in a single algorithm's
// ProcessEdges or state-batching path is pinned individually by benchgate
// instead of being averaged away inside the mixed rotation.

// BenchmarkHotpathSerialWCC pins the WCC (full-active, memoised) hot path.
func BenchmarkHotpathSerialWCC(b *testing.B) { runExperiment(b, "hotpath-serial-wcc", 8) }

// BenchmarkHotpathSerialBFS pins the BFS (sparse-frontier, gated) hot path.
func BenchmarkHotpathSerialBFS(b *testing.B) { runExperiment(b, "hotpath-serial-bfs", 8) }

// BenchmarkHotpathSerialSSSP pins the SSSP (sparse-frontier, gated) hot path.
func BenchmarkHotpathSerialSSSP(b *testing.B) { runExperiment(b, "hotpath-serial-sssp", 8) }

// BenchmarkHotpathSerialKCore pins the k-core (peeling) hot path.
func BenchmarkHotpathSerialKCore(b *testing.B) { runExperiment(b, "hotpath-serial-kcore", 8) }

// BenchmarkHotpathSerialLabelProp pins the label-propagation hot path.
func BenchmarkHotpathSerialLabelProp(b *testing.B) { runExperiment(b, "hotpath-serial-labelprop", 8) }

// BenchmarkHotpathSerialPPR pins the personalised-PageRank hot path.
func BenchmarkHotpathSerialPPR(b *testing.B) { runExperiment(b, "hotpath-serial-ppr", 8) }

// BenchmarkServeHTTP fires the Figure-2 trace through the HTTP daemon over a
// real loopback socket, open-loop at 10x and 50x the compressed trace rate,
// reporting the accept/backpressure split and the daemon's rolling-window
// queue-wait SLOs at drain.
func BenchmarkServeHTTP(b *testing.B) { runExperiment(b, "serve-http", 8) }

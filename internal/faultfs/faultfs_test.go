package faultfs

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func writeAll(t *testing.T, fsys FS, path string, data []byte) error {
	t.Helper()
	f, err := fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// TestOSPassthrough: the OS implementation round-trips bytes and survives
// directory sync on a real tempdir.
func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys OS
	path := filepath.Join(dir, "a")
	if err := writeAll(t, fsys, path, []byte("hello")); err != nil {
		t.Fatal(err)
	}
	got, err := fsys.ReadFile(path)
	if err != nil || string(got) != "hello" {
		t.Fatalf("ReadFile = %q, %v", got, err)
	}
	if err := fsys.Rename(path, filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	ents, err := fsys.ReadDir(dir)
	if err != nil || len(ents) != 1 || ents[0].Name() != "b" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if err := fsys.Truncate(filepath.Join(dir, "b"), 2); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(filepath.Join(dir, "b")); err != nil {
		t.Fatal(err)
	}
}

// TestScheduleCodecRoundTrip: ParseSchedule(s.String()) == s for a schedule
// exercising every option.
func TestScheduleCodecRoundTrip(t *testing.T) {
	spec := "sync:fail:path=wal-:after=3:count=2,write:torn:count=1,write:enospc:path=tickets,open:latency:delay=5ms,rename:fail:p=0.5"
	sched, err := ParseSchedule(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(sched) != 5 {
		t.Fatalf("parsed %d rules", len(sched))
	}
	if sched[0].Op != OpSync || sched[0].Kind != KindFail || sched[0].Path != "wal-" || sched[0].After != 3 || sched[0].Count != 2 {
		t.Fatalf("rule 0 = %+v", sched[0])
	}
	if sched[3].Kind != KindLatency || sched[3].Delay != 5*time.Millisecond {
		t.Fatalf("rule 3 = %+v", sched[3])
	}
	re, err := ParseSchedule(sched.String())
	if err != nil {
		t.Fatal(err)
	}
	if re.String() != sched.String() {
		t.Fatalf("round trip changed schedule:\n%s\nvs\n%s", sched, re)
	}
}

func TestParseScheduleRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"sync",              // missing kind
		"explode:fail",      // unknown op
		"sync:detonate",     // unknown kind
		"sync:fail:after=x", // bad int
		"sync:fail:p=2",     // probability out of range
		"open:latency",      // latency without delay
		"sync:fail:bogus=1", // unknown option
		"sync:fail:path",    // option without value
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted garbage", bad)
		}
	}
	if s, err := ParseSchedule("  "); err != nil || s != nil {
		t.Fatalf("empty spec: %v, %v", s, err)
	}
}

// TestInjectorDeterministicCounts: after/count rules fire on exactly the
// scheduled operations, independent of wall time, and the same sequence
// injects the same faults again after SetSchedule resets the counters.
func TestInjectorDeterministicCounts(t *testing.T) {
	dir := t.TempDir()
	sched, err := ParseSchedule("sync:fail:after=2:count=2")
	if err != nil {
		t.Fatal(err)
	}
	in := New(OS{}, sched, nil)
	path := filepath.Join(dir, "f")

	run := func() []bool {
		f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var outcomes []bool
		for i := 0; i < 6; i++ {
			if _, err := f.Write([]byte("x")); err != nil {
				t.Fatal(err)
			}
			outcomes = append(outcomes, f.Sync() == nil)
		}
		return outcomes
	}
	want := []bool{true, true, false, false, true, true}
	got := run()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("first run sync outcomes = %v, want %v", got, want)
		}
	}
	in.SetSchedule(sched) // reset counters: the same schedule re-fires
	got = run()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("second run sync outcomes = %v, want %v", got, want)
		}
	}
	st := in.Stats()
	if st.Injected[OpSync] != 4 {
		t.Fatalf("injected sync faults = %d, want 4", st.Injected[OpSync])
	}
	if len(in.Events()) != 4 {
		t.Fatalf("events = %d, want 4", len(in.Events()))
	}
}

// TestInjectorTornWrite: a torn write leaves a strict prefix on disk and
// reports ErrInjected.
func TestInjectorTornWrite(t *testing.T) {
	dir := t.TempDir()
	sched, _ := ParseSchedule("write:torn:count=1")
	in := New(OS{}, sched, nil)
	path := filepath.Join(dir, "f")
	f, err := in.OpenFile(path, os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789")
	n, err := f.Write(payload)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("torn write err = %v", err)
	}
	if n != len(payload)/2 {
		t.Fatalf("torn write wrote %d bytes, want %d", n, len(payload)/2)
	}
	f.Close()
	data, err := os.ReadFile(path)
	if err != nil || string(data) != "01234" {
		t.Fatalf("on-disk bytes = %q, %v", data, err)
	}
	// The rule exhausted: the next write is whole.
	f, err = in.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("AB")); err != nil {
		t.Fatal(err)
	}
	f.Close()
}

// TestInjectorENOSPCAndRename: ENOSPC faults satisfy errors.Is for both
// ErrInjected and syscall.ENOSPC; rename faults block the rename.
func TestInjectorENOSPCAndRename(t *testing.T) {
	dir := t.TempDir()
	sched, _ := ParseSchedule("write:enospc:count=1,rename:fail:count=1")
	in := New(OS{}, sched, nil)
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.Write([]byte("x"))
	if !errors.Is(err, ErrInjected) || !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("enospc write err = %v", err)
	}
	f.Close()
	if err := in.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); !errors.Is(err, ErrInjected) {
		t.Fatalf("rename err = %v", err)
	}
	if _, statErr := os.Stat(filepath.Join(dir, "f")); statErr != nil {
		t.Fatal("failed rename moved the file anyway")
	}
	// Second rename passes (count exhausted).
	if err := in.Rename(filepath.Join(dir, "f"), filepath.Join(dir, "g")); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorPathFilterAndProb: path filters scope rules to matching files;
// a seeded probabilistic rule fires deterministically for a fixed seed.
func TestInjectorPathFilterAndProb(t *testing.T) {
	dir := t.TempDir()
	sched, _ := ParseSchedule("sync:fail:path=wal-")
	in := New(OS{}, sched, nil)
	wal, err := in.OpenFile(filepath.Join(dir, "wal-00000001.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer wal.Close()
	tickets, err := in.OpenFile(filepath.Join(dir, "tickets.log"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer tickets.Close()
	if err := wal.Sync(); !errors.Is(err, ErrInjected) {
		t.Fatalf("wal sync err = %v", err)
	}
	if err := tickets.Sync(); err != nil {
		t.Fatalf("tickets sync err = %v (path filter leaked)", err)
	}

	// Seeded probabilistic rule: two injectors with the same seed agree.
	probSched, _ := ParseSchedule("sync:fail:p=0.5")
	outcomes := func(seed int64) []bool {
		inj := New(OS{}, probSched, rand.New(rand.NewSource(seed)))
		f, err := inj.OpenFile(filepath.Join(dir, "p"), os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		defer f.Close()
		var out []bool
		for i := 0; i < 20; i++ {
			out = append(out, f.Sync() == nil)
		}
		return out
	}
	a, b := outcomes(7), outcomes(7)
	fails := 0
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed probabilistic injection diverged")
		}
		if !a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("p=0.5 rule fired %d/%d times — not probabilistic", fails, len(a))
	}
}

// TestInjectorFreeze: Freeze fails every mutating op until thawed; Disarm
// clears scheduled rules.
func TestInjectorFreeze(t *testing.T) {
	dir := t.TempDir()
	in := New(OS{}, nil, nil)
	path := filepath.Join(dir, "f")
	if err := writeAll(t, in, path, []byte("x")); err != nil {
		t.Fatal(err)
	}
	in.Freeze(true)
	if err := writeAll(t, in, path, []byte("y")); !errors.Is(err, ErrInjected) {
		t.Fatalf("frozen write err = %v", err)
	}
	if _, err := in.ReadFile(path); err != nil {
		t.Fatalf("frozen read err = %v (reads must pass)", err)
	}
	in.Freeze(false)
	if err := writeAll(t, in, path, []byte("z")); err != nil {
		t.Fatal(err)
	}

	sched, _ := ParseSchedule("write:fail")
	in.SetSchedule(sched)
	if err := writeAll(t, in, path, []byte("w")); !errors.Is(err, ErrInjected) {
		t.Fatal("schedule did not arm")
	}
	in.Disarm()
	if err := writeAll(t, in, path, []byte("v")); err != nil {
		t.Fatal(err)
	}
}

// TestInjectorLatency: latency rules delay but do not fail.
func TestInjectorLatency(t *testing.T) {
	dir := t.TempDir()
	sched, _ := ParseSchedule("sync:latency:delay=30ms:count=1")
	in := New(OS{}, sched, nil)
	f, err := in.OpenFile(filepath.Join(dir, "f"), os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	start := time.Now()
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency rule delayed only %v", d)
	}
}

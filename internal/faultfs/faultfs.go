// Package faultfs is the filesystem seam under the durable storage layer: a
// small interface over the handful of syscalls durability actually depends
// on (open, write, fsync, rename, directory sync), a passthrough OS
// implementation, and a deterministic fault injector that drives every
// durable code path through failure in-process.
//
// The injector is schedule-driven, not monkey-patched: a set of Rules — each
// naming an operation class, an optional path substring, a skip count, a
// fire budget and a fault kind — is evaluated against a per-class operation
// counter under one mutex, so the same rule set against the same operation
// sequence injects the same faults every run. Probabilistic rules draw from
// a seeded RNG for soak-style use; the chaos fuzzer sticks to count-based
// rules so its differential oracle (same seed, same bytes on disk) stays
// exact.
//
// Fault kinds model the real failure surface a write path sees:
//
//	fail    the op returns ErrInjected (EIO-shaped): fsync failure, open
//	        failure, rename failure — the fsyncgate class of bugs
//	enospc  the op returns syscall.ENOSPC wrapped in ErrInjected
//	torn    (writes only) a prefix of the buffer reaches the file, then the
//	        op fails — a torn write, the state a power cut leaves behind
//	latency the op succeeds after Delay — slow-disk injection
//
// A schedule has a text codec (ParseSchedule / Schedule.String) so fault
// scripts travel through CLI flags (graphm-serve -fault-schedule) and the
// chaos corpus files unchanged.
package faultfs

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"
)

// ErrInjected is the root of every injected fault; errors.Is(err, ErrInjected)
// distinguishes a scheduled fault from a real filesystem error in tests.
var ErrInjected = errors.New("faultfs: injected fault")

// File is the write-side file surface the storage layer uses.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS abstracts the filesystem operations the durable store performs. All
// paths are plain OS paths; implementations must be safe for concurrent use.
type FS interface {
	OpenFile(name string, flag int, perm fs.FileMode) (File, error)
	Rename(oldpath, newpath string) error
	Remove(name string) error
	Truncate(name string, size int64) error
	MkdirAll(path string, perm fs.FileMode) error
	ReadFile(name string) ([]byte, error)
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs a directory so renames and creates within it are
	// durable. Implementations follow the storage layer's historical
	// contract: best-effort on filesystems that cannot sync directories.
	SyncDir(dir string) error
}

// OS is the passthrough FS over the real filesystem.
type OS struct{}

func (OS) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	return os.OpenFile(name, flag, perm)
}
func (OS) Rename(oldpath, newpath string) error         { return os.Rename(oldpath, newpath) }
func (OS) Remove(name string) error                     { return os.Remove(name) }
func (OS) Truncate(name string, size int64) error       { return os.Truncate(name, size) }
func (OS) MkdirAll(path string, perm fs.FileMode) error { return os.MkdirAll(path, perm) }
func (OS) ReadFile(name string) ([]byte, error)         { return os.ReadFile(name) }
func (OS) ReadDir(name string) ([]fs.DirEntry, error)   { return os.ReadDir(name) }
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	// Directory fsync support varies by filesystem; a sync error here is
	// reported, the close error is not (nothing more can be done with the fd).
	err = d.Sync()
	_ = d.Close()
	return err
}

// Op classifies one filesystem operation for rule matching.
type Op uint8

const (
	OpOpen Op = iota
	OpWrite
	OpSync
	OpRename
	OpRemove
	OpTruncate
	OpRead
	OpSyncDir
	numOps
)

var opNames = [...]string{"open", "write", "sync", "rename", "remove", "truncate", "read", "syncdir"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

func parseOp(s string) (Op, error) {
	for i, n := range opNames {
		if s == n {
			return Op(i), nil
		}
	}
	return 0, fmt.Errorf("faultfs: unknown op %q", s)
}

// Kind is the fault a matching rule injects.
type Kind uint8

const (
	// KindFail makes the op return ErrInjected.
	KindFail Kind = iota
	// KindENOSPC makes the op return syscall.ENOSPC (wrapped in ErrInjected).
	KindENOSPC
	// KindTorn (writes only) writes a deterministic prefix of the buffer,
	// then fails — the on-disk state is torn exactly as a crash mid-write.
	KindTorn
	// KindLatency delays the op by Rule.Delay, then lets it through.
	KindLatency
	numKinds
)

var kindNames = [...]string{"fail", "enospc", "torn", "latency"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

func parseKind(s string) (Kind, error) {
	for i, n := range kindNames {
		if s == n {
			return Kind(i), nil
		}
	}
	return 0, fmt.Errorf("faultfs: unknown fault kind %q", s)
}

// Rule schedules one fault: operations of class Op whose path contains Path
// (empty matches all) skip the first After matches, then inject Kind on the
// next Count matches (Count 0 = every later match). Prob < 1 gates each
// would-be injection on a draw from the injector's seeded RNG.
type Rule struct {
	Op    Op
	Kind  Kind
	Path  string        // substring match on the file path; "" matches all
	After int           // matching ops to let through before arming
	Count int           // injections before the rule exhausts (0 = unlimited)
	Prob  float64       // per-op injection probability (0 or 1 = always)
	Delay time.Duration // KindLatency only

	seen  int // matching ops observed
	fired int // injections performed
}

// String encodes the rule in the schedule text format.
func (r Rule) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s:%s", r.Op, r.Kind)
	if r.Path != "" {
		fmt.Fprintf(&b, ":path=%s", r.Path)
	}
	if r.After > 0 {
		fmt.Fprintf(&b, ":after=%d", r.After)
	}
	if r.Count > 0 {
		fmt.Fprintf(&b, ":count=%d", r.Count)
	}
	if r.Prob > 0 && r.Prob < 1 {
		fmt.Fprintf(&b, ":p=%g", r.Prob)
	}
	if r.Delay > 0 {
		fmt.Fprintf(&b, ":delay=%s", r.Delay)
	}
	return b.String()
}

// Schedule is an ordered rule list; the first matching armed rule wins.
type Schedule []Rule

// String renders the schedule in the ParseSchedule format.
func (s Schedule) String() string {
	parts := make([]string, len(s))
	for i, r := range s {
		parts[i] = r.String()
	}
	return strings.Join(parts, ",")
}

// ParseSchedule parses a comma-separated rule list. Each rule is
//
//	op:kind[:path=sub][:after=N][:count=M][:p=0.5][:delay=10ms]
//
// e.g. "sync:fail:path=wal-:after=3:count=2,write:enospc:path=tickets".
// An empty spec is the empty schedule.
func ParseSchedule(spec string) (Schedule, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var sched Schedule
	for _, part := range strings.Split(spec, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 {
			return nil, fmt.Errorf("faultfs: rule %q needs at least op:kind", part)
		}
		op, err := parseOp(fields[0])
		if err != nil {
			return nil, err
		}
		kind, err := parseKind(fields[1])
		if err != nil {
			return nil, err
		}
		r := Rule{Op: op, Kind: kind}
		for _, f := range fields[2:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return nil, fmt.Errorf("faultfs: rule option %q is not key=value", f)
			}
			switch k {
			case "path":
				r.Path = v
			case "after":
				if r.After, err = strconv.Atoi(v); err != nil || r.After < 0 {
					return nil, fmt.Errorf("faultfs: bad after=%q", v)
				}
			case "count":
				if r.Count, err = strconv.Atoi(v); err != nil || r.Count < 0 {
					return nil, fmt.Errorf("faultfs: bad count=%q", v)
				}
			case "p":
				if r.Prob, err = strconv.ParseFloat(v, 64); err != nil || r.Prob < 0 || r.Prob > 1 {
					return nil, fmt.Errorf("faultfs: bad p=%q", v)
				}
			case "delay":
				if r.Delay, err = time.ParseDuration(v); err != nil || r.Delay < 0 {
					return nil, fmt.Errorf("faultfs: bad delay=%q", v)
				}
			default:
				return nil, fmt.Errorf("faultfs: unknown rule option %q", k)
			}
		}
		if r.Kind == KindLatency && r.Delay == 0 {
			return nil, fmt.Errorf("faultfs: latency rule %q needs delay=", part)
		}
		sched = append(sched, r)
	}
	return sched, nil
}

// Stats counts operations seen and faults injected, per op class.
type Stats struct {
	Ops      [numOps]uint64
	Injected [numOps]uint64
}

// TotalInjected sums the injected counters across op classes.
func (s Stats) TotalInjected() uint64 {
	var n uint64
	for _, v := range s.Injected {
		n += v
	}
	return n
}

// Event records one injected fault, for evidence artifacts.
type Event struct {
	Seq  uint64 `json:"seq"` // global op sequence number at injection
	Op   string `json:"op"`
	Kind string `json:"kind"`
	Path string `json:"path"`
}

// Injector wraps an inner FS with a fault schedule. The zero schedule
// injects nothing (pure passthrough plus counters). All methods are safe
// for concurrent use; rule matching and RNG draws run under one mutex so a
// serial operation sequence maps to one deterministic fault sequence.
type Injector struct {
	inner FS

	mu     sync.Mutex
	rules  Schedule
	rng    rngSource
	seq    uint64
	stats  Stats
	events []Event
	frozen bool
}

// rngSource is the one RNG method the injector needs; *rand.Rand satisfies
// it. Kept tiny so tests can pin draws.
type rngSource interface{ Float64() float64 }

// New wraps inner with schedule. rng seeds probabilistic rules and may be
// nil when every rule is count-based (a Prob rule with nil rng always fires).
func New(inner FS, schedule Schedule, rng rngSource) *Injector {
	rules := make(Schedule, len(schedule))
	copy(rules, schedule)
	return &Injector{inner: inner, rules: rules, rng: rng}
}

// SetSchedule replaces the active rule set (fresh skip/fire counters).
func (in *Injector) SetSchedule(schedule Schedule) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.rules = make(Schedule, len(schedule))
	copy(in.rules, schedule)
}

// Disarm drops every rule; subsequent operations pass through untouched.
func (in *Injector) Disarm() { in.SetSchedule(nil) }

// Freeze makes every subsequent mutating operation fail with ErrInjected —
// the strongest persistent-failure mode (a dead device). Reads still pass.
func (in *Injector) Freeze(frozen bool) {
	in.mu.Lock()
	in.frozen = frozen
	in.mu.Unlock()
}

// Stats returns a snapshot of the op/injection counters.
func (in *Injector) Stats() Stats {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.stats
}

// Events returns the injected-fault log (copy), ordered by sequence.
func (in *Injector) Events() []Event {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Event, len(in.events))
	copy(out, in.events)
	return out
}

// decision is what check resolves one op to.
type decision struct {
	kind   Kind
	inject bool
	delay  time.Duration
	torn   int // bytes to let through on a torn write of n bytes
}

// check matches one operation against the schedule and advances counters.
func (in *Injector) check(op Op, path string, writeLen int) decision {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.seq++
	in.stats.Ops[op]++
	if in.frozen && op != OpRead && op != OpSyncDir {
		in.stats.Injected[op]++
		in.events = append(in.events, Event{Seq: in.seq, Op: op.String(), Kind: "frozen", Path: path})
		return decision{kind: KindFail, inject: true}
	}
	for i := range in.rules {
		r := &in.rules[i]
		if r.Op != op || (r.Path != "" && !strings.Contains(path, r.Path)) {
			continue
		}
		r.seen++
		if r.seen <= r.After {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && in.rng != nil && in.rng.Float64() >= r.Prob {
			continue
		}
		r.fired++
		in.stats.Injected[op]++
		in.events = append(in.events, Event{Seq: in.seq, Op: op.String(), Kind: r.Kind.String(), Path: path})
		d := decision{kind: r.Kind, inject: true, delay: r.Delay}
		if r.Kind == KindTorn {
			// Deterministic torn point: roughly half the buffer, at least one
			// byte short so the record is genuinely damaged.
			d.torn = writeLen / 2
			if d.torn >= writeLen && writeLen > 0 {
				d.torn = writeLen - 1
			}
		}
		return d
	}
	return decision{}
}

// err resolves a firing rule to its error value.
func (d decision) err(op Op, path string) error {
	switch d.kind {
	case KindENOSPC:
		return fmt.Errorf("%w: %s %s: %w", ErrInjected, op, path, syscall.ENOSPC)
	default:
		return fmt.Errorf("%w: %s %s", ErrInjected, op, path)
	}
}

func (in *Injector) OpenFile(name string, flag int, perm fs.FileMode) (File, error) {
	d := in.check(OpOpen, name, 0)
	if d.inject {
		if d.kind == KindLatency {
			time.Sleep(d.delay)
		} else {
			return nil, d.err(OpOpen, name)
		}
	}
	f, err := in.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{in: in, f: f, name: name}, nil
}

func (in *Injector) Rename(oldpath, newpath string) error {
	d := in.check(OpRename, newpath, 0)
	if d.inject {
		if d.kind == KindLatency {
			time.Sleep(d.delay)
		} else {
			return d.err(OpRename, newpath)
		}
	}
	return in.inner.Rename(oldpath, newpath)
}

func (in *Injector) Remove(name string) error {
	d := in.check(OpRemove, name, 0)
	if d.inject && d.kind != KindLatency {
		return d.err(OpRemove, name)
	}
	return in.inner.Remove(name)
}

func (in *Injector) Truncate(name string, size int64) error {
	d := in.check(OpTruncate, name, 0)
	if d.inject && d.kind != KindLatency {
		return d.err(OpTruncate, name)
	}
	return in.inner.Truncate(name, size)
}

func (in *Injector) MkdirAll(path string, perm fs.FileMode) error {
	return in.inner.MkdirAll(path, perm)
}

func (in *Injector) ReadFile(name string) ([]byte, error) {
	d := in.check(OpRead, name, 0)
	if d.inject && d.kind != KindLatency {
		return nil, d.err(OpRead, name)
	}
	return in.inner.ReadFile(name)
}

func (in *Injector) ReadDir(name string) ([]fs.DirEntry, error) {
	return in.inner.ReadDir(name)
}

func (in *Injector) SyncDir(dir string) error {
	d := in.check(OpSyncDir, dir, 0)
	if d.inject && d.kind != KindLatency {
		return d.err(OpSyncDir, dir)
	}
	return in.inner.SyncDir(dir)
}

// faultFile threads write/sync/close through the injector.
type faultFile struct {
	in   *Injector
	f    File
	name string
}

func (ff *faultFile) Write(p []byte) (int, error) {
	d := ff.in.check(OpWrite, ff.name, len(p))
	if d.inject {
		switch d.kind {
		case KindLatency:
			time.Sleep(d.delay)
		case KindTorn:
			n, werr := ff.f.Write(p[:d.torn])
			err := d.err(OpWrite, ff.name)
			if werr != nil {
				err = fmt.Errorf("%w (underlying: %v)", err, werr)
			}
			return n, err
		default:
			return 0, d.err(OpWrite, ff.name)
		}
	}
	return ff.f.Write(p)
}

func (ff *faultFile) Sync() error {
	d := ff.in.check(OpSync, ff.name, 0)
	if d.inject {
		if d.kind == KindLatency {
			time.Sleep(d.delay)
		} else {
			return d.err(OpSync, ff.name)
		}
	}
	return ff.f.Sync()
}

func (ff *faultFile) Close() error { return ff.f.Close() }

// KindsByOp summarizes a schedule for logs: op → sorted fault kinds.
func (s Schedule) KindsByOp() map[string][]string {
	m := make(map[string][]string)
	for _, r := range s {
		m[r.Op.String()] = append(m[r.Op.String()], r.Kind.String())
	}
	for k := range m {
		sort.Strings(m[k])
	}
	return m
}

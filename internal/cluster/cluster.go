// Package cluster simulates the 128-node testbed of the paper's distributed
// experiments (PowerGraph and Chaos, Section 5.1): nodes with private
// simulated memory, a byte-metered 1-Gigabit network with a contention
// model, and the grouping policy the paper uses to run jobs in
// high-throughput mode (nodes divided into groups, jobs assigned to groups
// in turn).
package cluster

import (
	"fmt"
	"sync/atomic"

	"graphm/internal/storage"
)

// Network meters simulated traffic. Bandwidth contention follows the
// paper's observation that concurrent jobs on Chaos perform *worse* than
// sequential ones: k simultaneous streams share the NIC and pay an
// interleaving penalty beyond fair division.
type Network struct {
	// BytesPerSecond is the per-node NIC bandwidth (1 Gb/s ≈ 125 MB/s).
	BytesPerSecond float64
	// ContentionPenalty is the extra fractional cost per additional
	// concurrent stream (0.15 ≈ 15% loss per extra stream).
	ContentionPenalty float64

	bytes   atomic.Uint64
	msgs    atomic.Uint64
	streams atomic.Int64
}

// NewNetwork returns a 1 Gb/s network with the default contention penalty.
func NewNetwork() *Network {
	return &Network{BytesPerSecond: 125e6, ContentionPenalty: 0.15}
}

// StartStream registers a concurrent transfer stream; call the returned
// function when the stream ends.
func (n *Network) StartStream() func() {
	n.streams.Add(1)
	return func() { n.streams.Add(-1) }
}

// TransferNS meters a transfer of b bytes and returns its simulated
// duration given current stream concurrency.
func (n *Network) TransferNS(b uint64) uint64 {
	n.bytes.Add(b)
	n.msgs.Add(1)
	k := n.streams.Load()
	if k < 1 {
		k = 1
	}
	eff := n.BytesPerSecond / (float64(k) * (1 + n.ContentionPenalty*float64(k-1)))
	return uint64(float64(b) / eff * 1e9)
}

// Bytes returns total bytes transferred.
func (n *Network) Bytes() uint64 { return n.bytes.Load() }

// Messages returns the number of metered transfers.
func (n *Network) Messages() uint64 { return n.msgs.Load() }

// Node is one simulated machine.
type Node struct {
	ID   int
	Disk *storage.Disk
	Mem  *storage.Memory
}

// Cluster is a set of nodes sharing one network.
type Cluster struct {
	Nodes []*Node
	Net   *Network
}

// New builds a cluster of n nodes, each with the given memory budget.
func New(n int, memBudget int64) (*Cluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: need at least one node, got %d", n)
	}
	c := &Cluster{Net: NewNetwork()}
	for i := 0; i < n; i++ {
		disk := storage.NewDisk()
		c.Nodes = append(c.Nodes, &Node{
			ID:   i,
			Disk: disk,
			Mem:  storage.NewMemory(disk, memBudget),
		})
	}
	return c, nil
}

// GroupSizes splits n items into g contiguous groups as evenly as possible:
// every group gets n/g items and the first n%g groups get one extra, so the
// sizes sum to exactly n. It is the single splitting rule shared by Groups
// and the shard package's partition placement.
func GroupSizes(n, g int) ([]int, error) {
	if g <= 0 || g > n {
		return nil, fmt.Errorf("cluster: cannot split %d into %d groups", n, g)
	}
	per, extra := n/g, n%g
	sizes := make([]int, g)
	for i := range sizes {
		sizes[i] = per
		if i < extra {
			sizes[i]++
		}
	}
	return sizes, nil
}

// Groups splits the nodes into g contiguous groups (the paper's
// high-throughput configuration; Section 5.1 lists the group counts per
// dataset). Jobs are assigned to groups round-robin by the engines. When g
// does not divide the node count the remainder is distributed one node each
// across the first len(Nodes)%g groups — every node is assigned to exactly
// one group. (Earlier versions silently dropped the trailing remainder
// nodes from all groups.)
func (c *Cluster) Groups(g int) ([][]*Node, error) {
	sizes, err := GroupSizes(len(c.Nodes), g)
	if err != nil {
		return nil, fmt.Errorf("cluster: cannot split %d nodes into %d groups", len(c.Nodes), g)
	}
	out := make([][]*Node, g)
	next := 0
	for i, sz := range sizes {
		out[i] = c.Nodes[next : next+sz]
		next += sz
	}
	return out, nil
}

// TotalMemUsed sums resident bytes across nodes.
func (c *Cluster) TotalMemUsed() int64 {
	var t int64
	for _, n := range c.Nodes {
		t += n.Mem.Used()
	}
	return t
}

// TotalMemPeak sums peak resident bytes across nodes.
func (c *Cluster) TotalMemPeak() int64 {
	var t int64
	for _, n := range c.Nodes {
		t += n.Mem.Peak()
	}
	return t
}

package cluster

import (
	"testing"
)

func TestNewValidatesNodeCount(t *testing.T) {
	if _, err := New(0, 1<<20); err == nil {
		t.Fatal("expected error for 0 nodes")
	}
	c, err := New(4, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	for i, n := range c.Nodes {
		if n.ID != i || n.Mem == nil || n.Disk == nil {
			t.Fatalf("node %d malformed", i)
		}
	}
}

func TestGroups(t *testing.T) {
	c, _ := New(8, 1<<20)
	groups, err := c.Groups(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 2 || len(groups[0]) != 4 || len(groups[1]) != 4 {
		t.Fatalf("bad grouping: %d groups", len(groups))
	}
	if _, err := c.Groups(0); err == nil {
		t.Fatal("expected error for 0 groups")
	}
	if _, err := c.Groups(9); err == nil {
		t.Fatal("expected error for more groups than nodes")
	}
}

// TestGroupsNonDivisible is the regression test for the remainder-drop bug:
// Groups used to truncate len(Nodes)%g trailing nodes out of every group.
// Every node must land in exactly one group, contiguously, with the
// remainder spread one node each across the first groups.
func TestGroupsNonDivisible(t *testing.T) {
	cases := []struct {
		nodes, groups int
		wantSizes     []int
	}{
		{7, 2, []int{4, 3}},
		{7, 3, []int{3, 2, 2}},
		{5, 4, []int{2, 1, 1, 1}},
		{9, 4, []int{3, 2, 2, 2}},
		{3, 3, []int{1, 1, 1}},
		{128, 6, []int{22, 22, 21, 21, 21, 21}},
	}
	for _, tc := range cases {
		c, err := New(tc.nodes, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		groups, err := c.Groups(tc.groups)
		if err != nil {
			t.Fatalf("%d nodes / %d groups: %v", tc.nodes, tc.groups, err)
		}
		if len(groups) != tc.groups {
			t.Fatalf("%d/%d: got %d groups", tc.nodes, tc.groups, len(groups))
		}
		next := 0
		for i, g := range groups {
			if len(g) != tc.wantSizes[i] {
				t.Errorf("%d/%d: group %d has %d nodes, want %d",
					tc.nodes, tc.groups, i, len(g), tc.wantSizes[i])
			}
			for _, n := range g {
				if n.ID != next {
					t.Fatalf("%d/%d: group %d: node %d out of contiguous order (want %d)",
						tc.nodes, tc.groups, i, n.ID, next)
				}
				next++
			}
		}
		if next != tc.nodes {
			t.Fatalf("%d/%d: %d nodes assigned, want all %d", tc.nodes, tc.groups, next, tc.nodes)
		}
	}
}

func TestGroupSizes(t *testing.T) {
	if _, err := GroupSizes(3, 0); err == nil {
		t.Fatal("expected error for 0 groups")
	}
	if _, err := GroupSizes(3, 4); err == nil {
		t.Fatal("expected error for more groups than items")
	}
	sizes, err := GroupSizes(10, 3)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, sz := range sizes {
		total += sz
		if i > 0 && sz > sizes[i-1] {
			t.Fatalf("sizes %v not non-increasing", sizes)
		}
	}
	if total != 10 {
		t.Fatalf("sizes %v sum to %d, want 10", sizes, total)
	}
}

func TestNetworkMetersBytes(t *testing.T) {
	n := NewNetwork()
	ns := n.TransferNS(125e6) // 1 second at full bandwidth, single stream
	if ns < 9e8 || ns > 11e8 {
		t.Fatalf("transfer = %dns, want ~1e9", ns)
	}
	if n.Bytes() != 125e6 || n.Messages() != 1 {
		t.Fatalf("meters: %d bytes, %d msgs", n.Bytes(), n.Messages())
	}
}

func TestNetworkContention(t *testing.T) {
	n := NewNetwork()
	single := n.TransferNS(1e6)

	stop1 := n.StartStream()
	stop2 := n.StartStream()
	contended := n.TransferNS(1e6)
	stop1()
	stop2()
	// Two streams: fair share halves bandwidth, plus the interleaving
	// penalty — more than 2x slower.
	if contended <= 2*single {
		t.Fatalf("contended transfer %dns not > 2x single %dns", contended, single)
	}
	after := n.TransferNS(1e6)
	if after != single {
		t.Fatalf("contention not released: %d vs %d", after, single)
	}
}

func TestTotalMemAccounting(t *testing.T) {
	c, _ := New(2, 1<<20)
	c.Nodes[0].Mem.ReserveJobData(100)
	c.Nodes[1].Mem.ReserveJobData(50)
	if c.TotalMemUsed() != 150 {
		t.Fatalf("used = %d", c.TotalMemUsed())
	}
	if c.TotalMemPeak() != 150 {
		t.Fatalf("peak = %d", c.TotalMemPeak())
	}
}

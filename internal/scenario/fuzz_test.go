package scenario

// The randomized differential fuzzer: seeded script generation, the
// cross-configuration invariant check, counterexample minimization, and the
// checked-in corpus replayed as a regression test.
//
// Corpus workflow: when TestFuzzDifferentialScripts (or the native
// FuzzGeneratedScriptDifferential target) finds a divergence, it minimizes
// the script and writes the encoding to testdata/failures/; commit the file
// under testdata/corpus/ (any name ending in .scenario) once the underlying
// bug is understood, so the regression replays forever.

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// fuzzScripts returns how many generated scripts the differential fuzz test
// replays: GRAPHM_FUZZ_SCRIPTS when set (the CI short configuration pins 50;
// nightly runs crank it up), else 50, scaled down under -short.
func fuzzScripts(t *testing.T) int {
	if v := os.Getenv("GRAPHM_FUZZ_SCRIPTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad GRAPHM_FUZZ_SCRIPTS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 8
	}
	return 50
}

func fuzzGenOptions(t *testing.T, o DiffOptions) GenOptions {
	t.Helper()
	gopts, err := o.GenDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return gopts
}

// TestFuzzDifferentialScripts is the fuzzer's main loop: generate N valid
// scripts from fixed seeds, replay each across the executor-configuration
// matrix, and fail with a minimized, corpus-ready counterexample on any
// divergence. Seeds are fixed (seed i is script i) so CI failures reproduce
// exactly; odd seeds generate single-job scripts, which additionally run
// the per-edge vs run-length accounting differential.
func TestFuzzDifferentialScripts(t *testing.T) {
	o := DiffOptions{}
	gopts := fuzzGenOptions(t, o)
	n := fuzzScripts(t)
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		opts := gopts
		opts.SingleJob = seed%2 == 1
		gs, err := GenerateScript(rng, opts)
		if err != nil {
			t.Fatalf("seed %d: generator: %v", seed, err)
		}
		if err := DiffCheck(gs, o); err != nil {
			reportCounterexample(t, seed, gs, o, err)
		}
	}
}

// reportCounterexample minimizes a failing script and fails the test with
// the encoded result plus where it was written.
func reportCounterexample(t *testing.T, seed int, gs GenScript, o DiffOptions, err error) {
	t.Helper()
	min := Minimize(gs, func(cand GenScript) bool { return DiffCheck(cand, o) != nil })
	finalErr := DiffCheck(min, o)
	enc := min.Encode()
	dir := filepath.Join("testdata", "failures")
	path := filepath.Join(dir, fmt.Sprintf("seed%d.scenario", seed))
	if mkErr := os.MkdirAll(dir, 0o755); mkErr == nil {
		_ = os.WriteFile(path, []byte(enc), 0o644)
	}
	t.Fatalf("seed %d diverged: %v\nminimized (%v):\n%s\nwritten to %s — move under testdata/corpus/ to pin the regression",
		seed, err, finalErr, enc, path)
}

// TestFuzzCorpusRegression replays every checked-in corpus script through
// the full differential matrix. The corpus is where minimized fuzz
// counterexamples live once fixed, plus seed scripts that pin each event
// kind.
func TestFuzzCorpusRegression(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("corpus is empty — the seed scripts should be checked in")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			gs, err := DecodeScript(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := DiffCheck(gs, DiffOptions{}); err != nil {
				t.Fatalf("corpus regression: %v", err)
			}
		})
	}
}

// TestGenerateScriptDeterministicAndValid: the generator is a pure function
// of its RNG, and across many seeds every script it emits passes the
// runner's own validation — validity is the generator's contract.
func TestGenerateScriptDeterministicAndValid(t *testing.T) {
	gopts := fuzzGenOptions(t, DiffOptions{})
	a, err := GenerateScript(rand.New(rand.NewSource(12)), gopts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScript(rand.New(rand.NewSource(12)), gopts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Encode() != b.Encode() {
		t.Fatal("same-seed generation differs")
	}
	for seed := int64(0); seed < 200; seed++ {
		opts := gopts
		opts.SingleJob = seed%2 == 1
		gs, err := GenerateScript(rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		script, err := gs.Script()
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if err := validate(script); err != nil {
			t.Fatalf("seed %d: generated invalid script: %v\n%s", seed, err, gs.Encode())
		}
		if opts.SingleJob && !gs.SingleJob() {
			t.Fatalf("seed %d: SingleJob option produced a multi-job script", seed)
		}
		for i, e := range gs.Events {
			if e.Barrier%gs.Partitions == 0 {
				t.Fatalf("seed %d: event %d anchored on a round-final barrier %d", seed, i, e.Barrier)
			}
			for j := range gs.Events {
				if i != j && gs.Events[i].Barrier == gs.Events[j].Barrier {
					t.Fatalf("seed %d: events %d and %d share barrier %d", seed, i, j, e.Barrier)
				}
			}
			// A detached job must never be targeted again later: barriers
			// are drawn in shuffled order, and an early version of the
			// generator could slot a detach below an existing mutate of the
			// same job — the mutate then fired on a departed job, leaking
			// its snapshot override.
			if e.Kind == Detach {
				for _, o := range gs.Events {
					if (o.Kind == Detach || o.Kind == MutatePrivate) && o.Target == e.Target && o.Barrier > e.Barrier {
						t.Fatalf("seed %d: detach@%d of job %d but %v@%d targets it afterwards",
							seed, e.Barrier, e.Target, o.Kind, o.Barrier)
					}
				}
			}
		}
	}
}

// TestGenScriptCodecRoundTrip: Encode/Decode is lossless for generated
// scripts of every shape.
func TestGenScriptCodecRoundTrip(t *testing.T) {
	gopts := fuzzGenOptions(t, DiffOptions{})
	for seed := int64(0); seed < 50; seed++ {
		opts := gopts
		opts.SingleJob = seed%2 == 1
		gs, err := GenerateScript(rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := DecodeScript(strings.NewReader(gs.Encode()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, gs.Encode())
		}
		// Normalize nil-vs-empty slices before comparing.
		if len(dec.Events) == 0 {
			dec.Events = nil
		}
		if !reflect.DeepEqual(gs, dec) {
			t.Fatalf("seed %d: round trip changed the script:\n%+v\nvs\n%+v", seed, gs, dec)
		}
	}
}

// TestDecodeScriptRejectsGarbage covers the codec's failure modes so a
// corrupted corpus file fails loudly.
func TestDecodeScriptRejectsGarbage(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"unknown directive", "graphm-scenario v1\nbogus 1\n", "unknown directive"},
		{"bad version", "graphm-scenario v2\n", "unsupported version"},
		{"bad edge", "graphm-scenario v1\npartitions 3\nvertices 100\njob id=1 algo=pagerank iters=3 seed=1\nevent barrier=1 update edges=xx\n", "not src:dst:weight"},
		{"bad barrier", "graphm-scenario v1\nevent barrier=zz update edges=1:2:1\n", "bad barrier"},
		{"incomplete", "graphm-scenario v1\npartitions 3\n", "incomplete"},
		{"unknown kind", "graphm-scenario v1\npartitions 3\nvertices 100\njob id=1 algo=pagerank iters=3 seed=1\nevent barrier=1 explode target=1\n", "unknown event kind"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := DecodeScript(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestMinimizeShrinksToCulprit drives the minimizer with a synthetic
// predicate: only one event kind matters, so the fixpoint must be exactly
// one event and no unreferenced extra jobs.
func TestMinimizeShrinksToCulprit(t *testing.T) {
	gopts := fuzzGenOptions(t, DiffOptions{})
	var gs GenScript
	// Find a seeded script with an update plus other material to shed.
	for seed := int64(0); ; seed++ {
		if seed > 500 {
			t.Fatal("no generated script had an update event plus extra jobs")
		}
		g, err := GenerateScript(rand.New(rand.NewSource(seed)), gopts)
		if err != nil {
			t.Fatal(err)
		}
		updates := 0
		for _, e := range g.Events {
			if e.Kind == Update {
				updates++
			}
		}
		if updates >= 1 && len(g.Jobs) >= 2 && len(g.Events) >= 3 {
			gs = g
			break
		}
	}
	hasUpdate := func(g GenScript) bool {
		for _, e := range g.Events {
			if e.Kind == Update {
				return true
			}
		}
		return false
	}
	min := Minimize(gs, hasUpdate)
	if len(min.Events) != 1 || min.Events[0].Kind != Update {
		t.Fatalf("minimizer left %d events (want exactly the update): %+v", len(min.Events), min.Events)
	}
	if len(min.Jobs) != 1 || min.Jobs[0].ID != 1 {
		t.Fatalf("minimizer left %d jobs, want only the anchor", len(min.Jobs))
	}
	// Minimized scripts must still be valid and replayable.
	if err := DiffCheck(min, DiffOptions{}); err != nil {
		t.Fatalf("minimized script no longer passes the differential: %v", err)
	}
}

// TestMinimizeDropsAttachDependents: removing an attach must drag the
// events targeting the attached job along, or minimization would produce
// invalid scripts.
func TestMinimizeDropsAttachDependents(t *testing.T) {
	gs := GenScript{
		Partitions: 3,
		NumV:       100,
		Jobs:       []GenJob{{ID: 1, Algo: "pagerank", Iters: 6, Seed: 1}},
		Events: []GenEvent{
			{Barrier: 1, Kind: Attach, Job: GenJob{ID: 11, Algo: "pagerank", Iters: 4, Seed: 2}},
			{Barrier: 2, Kind: Update, Edges: genEdges(rand.New(rand.NewSource(1)), 100)},
			{Barrier: 4, Kind: Detach, Target: 11},
		},
	}
	min := Minimize(gs, func(g GenScript) bool {
		for _, e := range g.Events {
			if e.Kind == Update {
				return true
			}
		}
		return false
	})
	if len(min.Events) != 1 || min.Events[0].Kind != Update {
		t.Fatalf("minimize left %+v", min.Events)
	}
	script, err := min.Script()
	if err != nil {
		t.Fatal(err)
	}
	if err := validate(script); err != nil {
		t.Fatalf("minimized script invalid: %v", err)
	}
}

// FuzzGeneratedScriptDifferential is the native fuzz entry point: go's
// fuzzer mutates the generator seed, and every derived script must pass the
// full differential matrix. Run locally or nightly with
//
//	go test ./internal/scenario -fuzz FuzzGeneratedScriptDifferential -fuzztime 60s
func FuzzGeneratedScriptDifferential(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(6))
	o := DiffOptions{}
	gopts, err := o.GenDefaults()
	if err != nil {
		f.Fatal(err)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		opts := gopts
		opts.SingleJob = seed%2 != 0
		gs, err := GenerateScript(rng, opts)
		if err != nil {
			t.Fatalf("generator rejected its own options: %v", err)
		}
		if err := DiffCheck(gs, o); err != nil {
			min := Minimize(gs, func(cand GenScript) bool { return DiffCheck(cand, o) != nil })
			t.Fatalf("seed %d diverged: %v\nminimized:\n%s", seed, err, min.Encode())
		}
	})
}

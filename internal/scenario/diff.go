package scenario

// Differential checking for generated scripts: one script replayed across
// executor configurations that must not change its observable behaviour,
// with every invariant the harness owns applied to each pair.

import (
	"fmt"

	"graphm/internal/core"
)

// DiffOptions sizes the differential environment. Every run of one check
// gets a fresh Env over the same seeded graph (runs mutate the memory pool
// and cache counters).
type DiffOptions struct {
	NumV, NumE int
	// GridP is the grid side; the layout's non-empty partition count (what
	// scripts anchor against) is Env.NonEmptyPartitions.
	GridP   int
	EnvSeed int64
	// LLCBytes, MemBudget size the simulated substrate.
	LLCBytes, MemBudget int64
	// Workers is the executor width of the widest variant (default 3).
	Workers int
}

func (o DiffOptions) withDefaults() DiffOptions {
	if o.NumV <= 0 {
		o.NumV = 300
	}
	if o.NumE <= 0 {
		o.NumE = 2200
	}
	if o.GridP <= 0 {
		o.GridP = 3
	}
	if o.EnvSeed == 0 {
		o.EnvSeed = 17
	}
	if o.LLCBytes <= 0 {
		o.LLCBytes = 32 << 10
	}
	if o.MemBudget <= 0 {
		o.MemBudget = 64 << 20
	}
	if o.Workers <= 0 {
		o.Workers = 3
	}
	return o
}

// NewEnv builds a fresh environment for one run under these options.
func (o DiffOptions) NewEnv() (Env, error) {
	o = o.withDefaults()
	env, _, err := GenEnv("diff", o.NumV, o.NumE, o.GridP, o.EnvSeed, o.LLCBytes, o.MemBudget)
	return env, err
}

// GenDefaults returns the generator options matching this environment, so
// generated barriers and edge endpoints line up with the layout scripts run
// against.
func (o DiffOptions) GenDefaults() (GenOptions, error) {
	env, err := o.NewEnv()
	if err != nil {
		return GenOptions{}, err
	}
	return GenOptions{Partitions: env.NonEmptyPartitions(), NumV: o.withDefaults().NumV}, nil
}

// diffVariant is one executor configuration a script is replayed under.
type diffVariant struct {
	name     string
	workers  int
	adaptive bool
}

// DiffCheck replays one generated script across executor configurations and
// applies the package invariants to every pair against the serial static
// baseline:
//
//   - CheckClean on every run (no pins, prefetch leaks, or orphaned
//     snapshot overrides);
//   - CheckWorkEqual and CheckOutputsEqual between the legacy serial driver
//     and the worker-pool executor (widths 1 and Workers), static vs
//     adaptive chunk labelling, and the combination;
//   - for single-job scripts additionally CheckSimEqual between the
//     run-length accounting hot path and the per-edge reference model —
//     the configuration whose LLC access schedule is deterministic.
//
// A nil return means every invariant held; an error is a differential
// finding (and, from the fuzzer, ships as a minimized corpus seed).
func DiffCheck(gs GenScript, o DiffOptions) error {
	o = o.withDefaults()
	script, err := gs.Script()
	if err != nil {
		return fmt.Errorf("scenario: compile: %w", err)
	}
	if env, err := o.NewEnv(); err != nil {
		return err
	} else if p := env.NonEmptyPartitions(); p != gs.Partitions {
		return fmt.Errorf("scenario: script planned for %d partitions but the environment has %d — regenerate the corpus entry",
			gs.Partitions, p)
	}

	runOne := func(workers int, adaptive, perEdge bool) (*Result, error) {
		env, err := o.NewEnv()
		if err != nil {
			return nil, err
		}
		cfg := core.DefaultConfig(o.LLCBytes)
		cfg.Cores = 1
		cfg.Workers = workers
		cfg.AdaptiveChunking = adaptive
		cfg.PerEdgeSim = perEdge
		res, err := Run(env, cfg, script)
		if err != nil {
			return nil, err
		}
		if err := CheckClean(env, res); err != nil {
			return nil, err
		}
		return res, nil
	}

	base, err := runOne(0, false, false)
	if err != nil {
		return fmt.Errorf("scenario: baseline (serial, static): %w", err)
	}
	variants := []diffVariant{
		{"workers=1", 1, false},
		{fmt.Sprintf("workers=%d", o.Workers), o.Workers, false},
		{"adaptive", 0, true},
		{fmt.Sprintf("workers=%d+adaptive", o.Workers), o.Workers, true},
	}
	for _, v := range variants {
		res, err := runOne(v.workers, v.adaptive, false)
		if err != nil {
			return fmt.Errorf("scenario: variant %s: %w", v.name, err)
		}
		if err := CheckWorkEqual(base, res); err != nil {
			return fmt.Errorf("scenario: %s vs baseline: %w", v.name, err)
		}
		if err := CheckOutputsEqual(base, res); err != nil {
			return fmt.Errorf("scenario: %s vs baseline: %w", v.name, err)
		}
	}
	if gs.SingleJob() {
		perEdge, err := runOne(0, false, true)
		if err != nil {
			return fmt.Errorf("scenario: variant per-edge-sim: %w", err)
		}
		if err := CheckSimEqual(base, perEdge); err != nil {
			return fmt.Errorf("scenario: per-edge vs run-length accounting: %w", err)
		}
		if err := CheckWorkEqual(base, perEdge); err != nil {
			return fmt.Errorf("scenario: per-edge vs run-length accounting: %w", err)
		}
		if err := CheckOutputsEqual(base, perEdge); err != nil {
			return fmt.Errorf("scenario: per-edge vs run-length accounting: %w", err)
		}
	}
	return nil
}

// stripJobs returns a shallow copy of res without the dropped job IDs, so
// a comparison can scope itself to the jobs whose behaviour is contractually
// identical between two configurations.
func stripJobs(res *Result, drop map[int]bool) *Result {
	if len(drop) == 0 {
		return res
	}
	out := *res
	out.Jobs = make(map[int]*JobResult, len(res.Jobs))
	for id, j := range res.Jobs {
		if !drop[id] {
			out.Jobs[id] = j
		}
	}
	return &out
}

// ShardDiffCheck is the scale-out half of the differential matrix. The same
// script is replayed at every count in shardCounts, and every pair of group
// runs must do identical schedule-independent work and produce bit-identical
// outputs — the shard package's determinism contract, with the first count
// (canonically 1) as the reference. An unsharded core.System run is checked
// alongside: every job that was present from the start must match it in
// work and output bits; jobs attached mid-stream are excluded there — a
// single system splices a joiner into the round in flight (appendix
// order), while a group queues it for the next round (ascending order), so
// a joiner is the one place the group is order-faithful to itself rather
// than to the single system.
// All runs use the Formula (5) scheduler off, matching what shard.New
// forces (per-shard priority orders do not concatenate to any single-system
// order), and every run must exit clean.
func ShardDiffCheck(gs GenScript, o DiffOptions, shardCounts []int) error {
	o = o.withDefaults()
	script, err := gs.Script()
	if err != nil {
		return fmt.Errorf("scenario: compile: %w", err)
	}
	if env, err := o.NewEnv(); err != nil {
		return err
	} else if p := env.NonEmptyPartitions(); p != gs.Partitions {
		return fmt.Errorf("scenario: script planned for %d partitions but the environment has %d — regenerate the corpus entry",
			gs.Partitions, p)
	}
	if len(shardCounts) == 0 {
		return fmt.Errorf("scenario: ShardDiffCheck needs at least one shard count")
	}
	cfg := core.DefaultConfig(o.LLCBytes)
	cfg.Cores = 1
	cfg.Scheduler = false

	// Jobs attached mid-stream are excluded from the vs-unsharded
	// comparison (not from the cross-count one): the single system splices
	// them into the round in flight, so their first iteration streams
	// partitions in appendix order — which shifts their outputs bit-wise
	// and, for programs that propagate state in place within an iteration
	// (WCC), even their convergence round count.
	attached := make(map[int]bool)
	for _, e := range gs.Events {
		if e.Kind == Attach {
			attached[e.Job.ID] = true
		}
	}

	env, err := o.NewEnv()
	if err != nil {
		return err
	}
	unsharded, err := Run(env, cfg, script)
	if err != nil {
		return fmt.Errorf("scenario: unsharded reference: %w", err)
	}
	if err := CheckClean(env, unsharded); err != nil {
		return fmt.Errorf("scenario: unsharded reference: %w", err)
	}
	var base *Result
	for _, n := range shardCounts {
		env, err := o.NewEnv()
		if err != nil {
			return err
		}
		res, err := RunSharded(env, cfg, script, n)
		if err != nil {
			return fmt.Errorf("scenario: shards=%d: %w", n, err)
		}
		if err := CheckClean(env, res); err != nil {
			return fmt.Errorf("scenario: shards=%d: %w", n, err)
		}
		if err := CheckWorkEqual(stripJobs(unsharded, attached), stripJobs(res, attached)); err != nil {
			return fmt.Errorf("scenario: shards=%d vs unsharded: %w", n, err)
		}
		if err := CheckOutputsEqual(stripJobs(unsharded, attached), stripJobs(res, attached)); err != nil {
			return fmt.Errorf("scenario: shards=%d vs unsharded: %w", n, err)
		}
		if base == nil {
			base = res
			continue
		}
		if err := CheckWorkEqual(base, res); err != nil {
			return fmt.Errorf("scenario: shards=%d vs shards=%d: %w", n, shardCounts[0], err)
		}
		if err := CheckOutputsEqual(base, res); err != nil {
			return fmt.Errorf("scenario: shards=%d vs shards=%d: %w", n, shardCounts[0], err)
		}
	}
	return nil
}

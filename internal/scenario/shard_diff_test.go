package scenario

// The sharded half of the differential matrix: the checked-in corpus and a
// seeded generator stream replayed unsharded and at shards={1,2,4}, with
// equal work counters and bit-identical outputs required throughout
// (ShardDiffCheck). This is the correctness harness for the scatter/gather
// scale-out — any divergence means the shard group broke the determinism
// contract in the shard package comment.

import (
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// shardCounts is the matrix every differential script replays across.
var shardCounts = []int{1, 2, 4}

// shardScripts returns how many generated scripts the sharded differential
// replays: GRAPHM_SHARD_SCRIPTS when set (CI pins a small smoke number;
// nightly cranks it up), else 12, scaled down under -short.
func shardScripts(t *testing.T) int {
	if v := os.Getenv("GRAPHM_SHARD_SCRIPTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad GRAPHM_SHARD_SCRIPTS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 4
	}
	return 12
}

// TestShardCorpusDifferential replays every checked-in corpus script across
// the shard matrix. The corpus pins one script per event kind (plus
// minimized fuzz counterexamples), so this is the sharded regression
// surface for attach, detach, global update, and private mutation.
func TestShardCorpusDifferential(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.scenario"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("corpus is empty — the seed scripts should be checked in")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			gs, err := DecodeScript(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := ShardDiffCheck(gs, DiffOptions{}, shardCounts); err != nil {
				t.Fatalf("sharded corpus regression: %v", err)
			}
		})
	}
}

// TestShardGeneratedDifferential draws fresh scripts from the fuzzer's
// generator (fixed seeds, so failures reproduce exactly) and requires each
// to pass the shard matrix. Seeds are offset from the executor fuzzer's so
// the two streams explore different scripts.
func TestShardGeneratedDifferential(t *testing.T) {
	o := DiffOptions{}
	gopts := fuzzGenOptions(t, o)
	n := shardScripts(t)
	for seed := 0; seed < n; seed++ {
		rng := rand.New(rand.NewSource(int64(10_000 + seed)))
		opts := gopts
		opts.SingleJob = seed%3 == 0
		gs, err := GenerateScript(rng, opts)
		if err != nil {
			t.Fatalf("seed %d: generator: %v", seed, err)
		}
		if err := ShardDiffCheck(gs, o, shardCounts); err != nil {
			min := Minimize(gs, func(cand GenScript) bool { return ShardDiffCheck(cand, o, shardCounts) != nil })
			t.Fatalf("seed %d diverged across shard counts: %v\nminimized:\n%s", 10_000+seed, err, min.Encode())
		}
	}
}

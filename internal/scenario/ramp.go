package scenario

import (
	"fmt"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
)

// RampOptions parameterizes the canonical attach/detach concurrency ramp.
type RampOptions struct {
	// Partitions is the layout's partition count; attach anchors must stay
	// inside the first round, so RampJobs is capped at Partitions-1.
	Partitions int
	// RampJobs is how many short jobs attach mid-round, one per successive
	// partition barrier of the first anchor.
	RampJobs int
	// AnchorIters / ShortIters are the PageRank iteration budgets of the two
	// long anchors and the ramp jobs (anchor 2 runs WCC; its iteration count
	// is convergence-driven).
	AnchorIters int
	ShortIters  int
	// DetachLast withdraws the last ramp job early in round 2 — the scripted
	// cancellation leg of the ramp.
	DetachLast bool
}

// RampScript builds the canonical dynamic-concurrency ramp: two long-lived
// anchors start as a batch, RampJobs short PageRank jobs attach mid-round at
// the first anchor's successive partition barriers of round one, run their
// iterations alongside, converge and leave — so attendance climbs from 2 to
// RampJobs+2 and falls back, exercising adaptive re-labelling in both
// directions. All attach anchors land strictly inside round one and every
// program keeps all partitions active while events fire, which is what makes
// the script deterministic (see the package comment's rules).
//
// Job IDs: anchors are 1 (PageRank) and 2 (WCC); ramp jobs are 11..10+n.
func RampScript(o RampOptions) (Script, error) {
	if o.Partitions < 2 {
		return Script{}, fmt.Errorf("scenario: ramp needs >= 2 partitions, got %d", o.Partitions)
	}
	if o.RampJobs < 1 || o.RampJobs > o.Partitions-1 {
		return Script{}, fmt.Errorf("scenario: ramp jobs must be in [1, partitions-1] = [1, %d], got %d",
			o.Partitions-1, o.RampJobs)
	}
	if o.AnchorIters < 3 || o.ShortIters < 2 || o.ShortIters >= o.AnchorIters {
		return Script{}, fmt.Errorf("scenario: need anchorIters >= 3 and 2 <= shortIters < anchorIters, got %d/%d",
			o.AnchorIters, o.ShortIters)
	}
	pagerank := func(iters int) func() engine.Program {
		return func() engine.Program {
			pr := algorithms.NewPageRank(0.85, iters)
			pr.Tolerance = 1e-12
			return pr
		}
	}
	s := Script{
		Initial: []JobSpec{
			{ID: 1, Seed: 1, New: pagerank(o.AnchorIters)},
			{ID: 2, Seed: 2, New: func() engine.Program { return algorithms.NewWCC(1000) }},
		},
	}
	for i := 0; i < o.RampJobs; i++ {
		s.Events = append(s.Events, Event{
			AfterJob:      1,
			AfterBarriers: i + 1,
			Kind:          Attach,
			Job:           JobSpec{ID: 11 + i, Seed: int64(11 + i), New: pagerank(o.ShortIters)},
		})
	}
	if o.DetachLast {
		// Early in round 2: past the round-1 boundary, before the round's
		// final partition.
		s.Events = append(s.Events, Event{
			AfterJob:      1,
			AfterBarriers: o.Partitions + 2,
			Kind:          Detach,
			Target:        10 + o.RampJobs,
		})
	}
	return s, nil
}

package scenario_test

import (
	"strings"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/scenario"
)

const (
	testLLC    = 32 << 10
	testBudget = 64 << 20
)

// testEnv builds a fresh deterministic environment; each comparative run
// needs its own memory pool and cache.
func testEnv(t *testing.T) (scenario.Env, *graph.Graph) {
	t.Helper()
	env, g, err := scenario.GenEnv("scn", 400, 3200, 3, 17, testLLC, testBudget)
	if err != nil {
		t.Fatal(err)
	}
	return env, g
}

// testScript is the canonical ramp plus one global update and one private
// mutation, so a single script exercises attach, detach, update and mutate.
func testScript(t *testing.T, env scenario.Env) scenario.Script {
	t.Helper()
	parts := env.NonEmptyPartitions()
	s, err := scenario.RampScript(scenario.RampOptions{
		Partitions:  parts,
		RampJobs:    5,
		AnchorIters: 7,
		ShortIters:  3,
		DetachLast:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	s.Events = append(s.Events,
		scenario.Event{
			AfterJob: 1, AfterBarriers: 2, Kind: scenario.Update,
			Edges: []graph.Edge{{Src: 3, Dst: 4, Weight: 1}, {Src: 250, Dst: 5, Weight: 1}},
		},
		scenario.Event{
			AfterJob: 1, AfterBarriers: parts + 1, Kind: scenario.MutatePrivate, Target: 1,
			Edges: []graph.Edge{{Src: 9, Dst: 10, Weight: 1}},
		},
	)
	return s
}

func runCfg(workers int, adaptive bool) core.Config {
	cfg := core.DefaultConfig(testLLC)
	cfg.Cores = 1
	cfg.Workers = workers
	cfg.AdaptiveChunking = adaptive
	return cfg
}

func mustRun(t *testing.T, workers int, adaptive bool) *scenario.Result {
	t.Helper()
	env, _ := testEnv(t)
	script := testScript(t, env)
	res, err := scenario.Run(env, runCfg(workers, adaptive), script)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.CheckClean(env, res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestScenarioExecutorMatchesLegacy is the harness's headline invariant:
// one scripted dynamic-concurrency timeline does identical work and yields
// bit-identical outputs under the legacy serial driver and the worker-pool
// executor at any width.
func TestScenarioExecutorMatchesLegacy(t *testing.T) {
	legacy := mustRun(t, 0, false)
	if legacy.Stats.MidRoundJoins == 0 {
		t.Fatal("script produced no mid-round joins — the ramp never attached")
	}
	if legacy.Stats.Detaches != 1 {
		t.Fatalf("detaches = %d, want exactly the scripted one", legacy.Stats.Detaches)
	}
	if !legacy.Jobs[15].Detached {
		t.Fatal("scripted detach target not recorded as detached")
	}
	for _, workers := range []int{1, 4} {
		pooled := mustRun(t, workers, false)
		if err := scenario.CheckWorkEqual(legacy, pooled); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if err := scenario.CheckOutputsEqual(legacy, pooled); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
	}
}

// TestScenarioAdaptiveMatchesStatic: adaptive re-labelling must change chunk
// granularity (relabels fire on the ramp) and nothing else.
func TestScenarioAdaptiveMatchesStatic(t *testing.T) {
	static := mustRun(t, 0, false)
	adaptive := mustRun(t, 0, true)
	if adaptive.Stats.Relabels == 0 {
		t.Fatal("adaptive run never re-labelled on a 2 -> 7 attendance ramp")
	}
	if err := scenario.CheckWorkEqual(static, adaptive); err != nil {
		t.Fatal(err)
	}
	if err := scenario.CheckOutputsEqual(static, adaptive); err != nil {
		t.Fatal(err)
	}
	// And with the executor on top of adaptive labelling.
	both := mustRun(t, 4, true)
	if err := scenario.CheckWorkEqual(static, both); err != nil {
		t.Fatalf("adaptive+executor: %v", err)
	}
	if err := scenario.CheckOutputsEqual(static, both); err != nil {
		t.Fatalf("adaptive+executor: %v", err)
	}
}

// TestScenarioDeterministicRepeat: the same script twice must agree on the
// deterministic contract — per-job work, bit-identical outputs, and the
// scripted detach. Controller-level counters (rounds, mid-round joins,
// shared loads, relabels) are deliberately not pinned: a JoinMidRound job
// reaching its iteration boundary races the next round's formation, so those
// counters vary run to run by design (the work does not).
func TestScenarioDeterministicRepeat(t *testing.T) {
	a := mustRun(t, 2, true)
	b := mustRun(t, 2, true)
	if err := scenario.CheckWorkEqual(a, b); err != nil {
		t.Fatal(err)
	}
	if err := scenario.CheckOutputsEqual(a, b); err != nil {
		t.Fatal(err)
	}
	if a.Stats.Detaches != 1 || b.Stats.Detaches != 1 {
		t.Fatalf("scripted detach count: %d and %d, want 1 and 1", a.Stats.Detaches, b.Stats.Detaches)
	}
}

// TestScenarioSimEqualPerEdgeVsRunLength is the accounting-model invariant:
// under the serial driver with a single job — the one configuration whose
// LLC access schedule is fully deterministic — the batched run-length hot
// path and the per-edge reference model must count every hit and miss
// identically, price identical simulated time, do identical work, and
// produce bit-identical outputs. Run for every fallback algorithm: the
// full-active ones (PageRank, PPR, WCC, label propagation, k-core) exercise
// the memoised set-grouped state path, the frontier ones (BFS, SSSP) the
// gated sparse path — inactive-source runs dominate there.
func TestScenarioSimEqualPerEdgeVsRunLength(t *testing.T) {
	progs := map[string]func() engine.Program{
		"pagerank":  func() engine.Program { return algorithms.NewPageRank(0.85, 5) },
		"ppr":       func() engine.Program { return algorithms.NewPersonalizedPageRank(1, 0.85, 5) },
		"wcc":       func() engine.Program { return algorithms.NewWCC(6) },
		"labelprop": func() engine.Program { return algorithms.NewLabelPropagation(5) },
		"kcore":     func() engine.Program { return algorithms.NewKCore(3) },
		"bfs":       func() engine.Program { return algorithms.NewBFS(1) },
		"sssp":      func() engine.Program { return algorithms.NewSSSP(1) },
	}
	for name, mk := range progs {
		t.Run(name, func(t *testing.T) {
			script := scenario.Script{Initial: []scenario.JobSpec{{ID: 1, Seed: 5, New: mk}}}
			run := func(perEdge bool) *scenario.Result {
				env, _ := testEnv(t)
				cfg := runCfg(0, false)
				cfg.PerEdgeSim = perEdge
				res, err := scenario.Run(env, cfg, script)
				if err != nil {
					t.Fatal(err)
				}
				if err := scenario.CheckClean(env, res); err != nil {
					t.Fatal(err)
				}
				return res
			}
			batched := run(false)
			perEdge := run(true)
			if batched.CacheHits == 0 || batched.CacheMisses == 0 {
				t.Fatal("run recorded no LLC traffic — the invariant would be vacuous")
			}
			if err := scenario.CheckSimEqual(batched, perEdge); err != nil {
				t.Fatal(err)
			}
			if err := scenario.CheckWorkEqual(batched, perEdge); err != nil {
				t.Fatal(err)
			}
			if err := scenario.CheckOutputsEqual(batched, perEdge); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestScenarioPerEdgeModelMatchesAcrossRamp runs the full dynamic ramp under
// the per-edge reference model: the schedule-independent contract (work
// counters, bit-identical outputs) must hold between accounting models even
// where exact LLC counts are schedule-dependent (concurrent jobs interleave
// set accesses differently per model).
func TestScenarioPerEdgeModelMatchesAcrossRamp(t *testing.T) {
	batched := mustRun(t, 0, false)
	env, _ := testEnv(t)
	script := testScript(t, env)
	cfg := runCfg(0, false)
	cfg.PerEdgeSim = true
	perEdge, err := scenario.Run(env, cfg, script)
	if err != nil {
		t.Fatal(err)
	}
	if err := scenario.CheckClean(env, perEdge); err != nil {
		t.Fatal(err)
	}
	if err := scenario.CheckWorkEqual(batched, perEdge); err != nil {
		t.Fatal(err)
	}
	if err := scenario.CheckOutputsEqual(batched, perEdge); err != nil {
		t.Fatal(err)
	}
}

// TestScenarioResultsCorrect anchors the harness to ground truth: a plain
// ramp (no graph mutations) run under adaptive chunking and the executor
// must still reproduce the reference PageRank and WCC solutions exactly.
func TestScenarioResultsCorrect(t *testing.T) {
	env, g := testEnv(t)
	parts := env.NonEmptyPartitions()
	script, err := scenario.RampScript(scenario.RampOptions{
		Partitions: parts, RampJobs: 4, AnchorIters: 6, ShortIters: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := scenario.Run(env, runCfg(2, true), script)
	if err != nil {
		t.Fatal(err)
	}
	pr := res.Jobs[1].Prog.(*algorithms.PageRank)
	want := algorithms.ReferencePageRank(g, 0.85, 6)
	for v := range want {
		if diff := pr.Ranks()[v] - want[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("anchor rank[%d] = %g, want %g", v, pr.Ranks()[v], want[v])
		}
	}
	wcc := res.Jobs[2].Prog.(*algorithms.WCC)
	wantWCC := algorithms.ReferenceWCC(g)
	for v := range wantWCC {
		if wcc.Labels()[v] != wantWCC[v] {
			t.Fatalf("anchor wcc[%d] = %d, want %d", v, wcc.Labels()[v], wantWCC[v])
		}
	}
	shorts := 0
	for id, j := range res.Jobs {
		if id >= 11 && j.Work.Iterations == 3 {
			shorts++
		}
	}
	if shorts != 4 {
		t.Fatalf("%d ramp jobs completed 3 iterations, want 4", shorts)
	}
}

// TestScenarioScriptValidation covers the malformed-script and
// unreachable-anchor failure modes.
func TestScenarioScriptValidation(t *testing.T) {
	env, _ := testEnv(t)
	prog := func() engine.Program { return algorithms.NewPageRank(0.85, 2) }

	cases := []struct {
		name   string
		script scenario.Script
		want   string
	}{
		{
			"duplicate initial ID",
			scenario.Script{Initial: []scenario.JobSpec{{ID: 1, New: prog}, {ID: 1, New: prog}}},
			"duplicate job ID",
		},
		{
			"missing factory",
			scenario.Script{Initial: []scenario.JobSpec{{ID: 1}}},
			"no program factory",
		},
		{
			"zero barrier anchor",
			scenario.Script{
				Initial: []scenario.JobSpec{{ID: 1, New: prog}},
				Events:  []scenario.Event{{AfterJob: 1, AfterBarriers: 0, Kind: scenario.Update}},
			},
			"must be >= 1",
		},
		{
			"detach of unknown job",
			scenario.Script{
				Initial: []scenario.JobSpec{{ID: 1, New: prog}},
				Events:  []scenario.Event{{AfterJob: 1, AfterBarriers: 1, Kind: scenario.Detach, Target: 99}},
			},
			"unknown job",
		},
		{
			"mutate of unknown job",
			scenario.Script{
				Initial: []scenario.JobSpec{{ID: 1, New: prog}},
				Events:  []scenario.Event{{AfterJob: 1, AfterBarriers: 1, Kind: scenario.MutatePrivate, Target: 99}},
			},
			"unknown job",
		},
		{
			"attach reusing ID",
			scenario.Script{
				Initial: []scenario.JobSpec{{ID: 1, New: prog}},
				Events: []scenario.Event{{AfterJob: 1, AfterBarriers: 1, Kind: scenario.Attach,
					Job: scenario.JobSpec{ID: 1, New: prog}}},
			},
			"reuses job ID",
		},
		{
			"unreachable anchor",
			scenario.Script{
				Initial: []scenario.JobSpec{{ID: 1, New: prog}},
				Events:  []scenario.Event{{AfterJob: 1, AfterBarriers: 100000, Kind: scenario.Update}},
			},
			"never fired",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := scenario.Run(env, runCfg(0, false), tc.script)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}

	if _, err := scenario.RampScript(scenario.RampOptions{Partitions: 4, RampJobs: 9, AnchorIters: 5, ShortIters: 2}); err == nil {
		t.Fatal("oversized ramp accepted")
	}
}

package scenario

// This file is the script side of the randomized differential fuzzer: a
// serializable description of a dynamic-concurrency script (GenScript), a
// seeded generator that only emits scripts obeying the package's
// determinism rules, a textual codec so minimized counterexamples can be
// checked into the test corpus, and a shrinking minimizer. The differential
// run-and-compare half lives in diff.go.

import (
	"bufio"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
	"graphm/internal/graph"
)

// GenJob is one serializable job in a generated script. Only all-active
// programs (PageRank, WCC) are generated: the determinism rules of the
// package comment require every program to keep all partitions active while
// events fire, and both have comparable outputs for CheckOutputsEqual.
type GenJob struct {
	ID   int
	Algo string // "pagerank" or "wcc"
	// Iters is the PageRank iteration budget (tolerance pinned to 1e-12 so
	// the budget is exact); WCC runs to convergence and ignores it.
	Iters int
	Seed  int64
}

// GenEvent is one serializable scripted action, always anchored on the
// anchor job's (ID 1) partition barriers.
type GenEvent struct {
	Barrier int
	Kind    EventKind
	Job     GenJob       // Attach
	Target  int          // Detach, MutatePrivate
	Edges   []graph.Edge // Update, MutatePrivate
}

// GenScript is a serializable, self-validating scenario script. Partitions
// and NumV record the environment shape the barriers and edges were planned
// against, so a corpus entry replayed against a drifted environment fails
// loudly instead of silently anchoring events elsewhere.
type GenScript struct {
	Partitions int
	NumV       int
	Jobs       []GenJob
	Events     []GenEvent
}

// GenOptions bounds the generator.
type GenOptions struct {
	// Partitions is the layout's non-empty partition count (the per-round
	// barrier count of an all-active job).
	Partitions int
	// NumV bounds generated edge endpoints.
	NumV int
	// MaxInitial caps the initial batch size (default 3; the anchor always
	// exists).
	MaxInitial int
	// MaxEvents caps the event count (default 6).
	MaxEvents int
	// SingleJob restricts the script to one job and no attaches, the shape
	// whose LLC access schedule is fully deterministic — required for the
	// per-edge vs run-length CheckSimEqual differential.
	SingleJob bool
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxInitial <= 0 {
		o.MaxInitial = 3
	}
	if o.MaxEvents <= 0 {
		o.MaxEvents = 6
	}
	return o
}

// aliveUntil returns the last anchor barrier at which the job is
// deterministically still attached to the controller, given the anchor
// barrier it joined at (0 for initial jobs). The window is deliberately one
// full round short of the job's true lifetime: a job in its final round
// races the event's pre-barrier window (it can converge and close while the
// anchor still holds the partition open), so targets inside that round are
// never generated. WCC's convergence round count is graph-dependent, so WCC
// jobs are never targets (aliveUntil 0).
func aliveUntil(j GenJob, joinedAt, partitions int) int {
	if j.Algo != "pagerank" {
		return 0
	}
	return joinedAt + (j.Iters-2)*partitions
}

// GenerateScript draws a valid script from rng: anchors distinct and on
// safe barriers (never the final partition of an anchor round), attach IDs
// unique, detach/mutate targets provably alive at fire time, all programs
// all-active. Everything the differential fuzzer throws at the runtime
// comes from here, so validity is the generator's contract — an invalid
// script is a generator bug, not a finding.
func GenerateScript(rng *rand.Rand, opts GenOptions) (GenScript, error) {
	opts = opts.withDefaults()
	if opts.Partitions < 2 {
		return GenScript{}, fmt.Errorf("scenario: generator needs >= 2 partitions, got %d", opts.Partitions)
	}
	if opts.NumV < 16 {
		return GenScript{}, fmt.Errorf("scenario: generator needs NumV >= 16, got %d", opts.NumV)
	}
	p := opts.Partitions
	anchorIters := 4 + rng.Intn(4) // 4..7
	gs := GenScript{
		Partitions: p,
		NumV:       opts.NumV,
		Jobs:       []GenJob{{ID: 1, Algo: "pagerank", Iters: anchorIters, Seed: rng.Int63()}},
	}
	// joined maps a job ID to the anchor barrier it joined at (initial: 0).
	joined := map[int]int{1: 0}
	jobByID := map[int]GenJob{1: gs.Jobs[0]}
	if !opts.SingleJob {
		for n := rng.Intn(opts.MaxInitial); n > 0; n-- {
			id := len(gs.Jobs) + 1
			j := genJob(rng, id, anchorIters)
			gs.Jobs = append(gs.Jobs, j)
			joined[id] = 0
			jobByID[id] = j
		}
	}

	// Safe anchors: every barrier of the anchor's first anchorIters-1 rounds
	// that is not a round-final one. Drawn without replacement so causally
	// ordered events always have distinct anchors.
	var safe []int
	for b := 1; b <= (anchorIters-1)*p; b++ {
		if b%p != 0 {
			safe = append(safe, b)
		}
	}
	rng.Shuffle(len(safe), func(i, j int) { safe[i], safe[j] = safe[j], safe[i] })

	detachedAt := map[int]int{} // target -> detach barrier
	targetedAt := map[int]int{} // target -> highest barrier of any event targeting it
	nextAttachID := 11
	events := rng.Intn(opts.MaxEvents + 1)
	for n := 0; n < events && len(safe) > 0; n++ {
		b := safe[len(safe)-1]
		safe = safe[:len(safe)-1]
		kinds := []EventKind{Update, MutatePrivate}
		if !opts.SingleJob {
			kinds = append(kinds, Attach, Detach)
		}
		kind := kinds[rng.Intn(len(kinds))]
		target := func(id int) {
			if b > targetedAt[id] {
				targetedAt[id] = b
			}
		}
		switch kind {
		case Attach:
			// Attaches anchor strictly inside round one, like RampScript: a
			// job attached in a later round can hit the round-boundary
			// re-attach race at the end of its partial first iteration,
			// which rotates its partition stream order and shifts PageRank's
			// floating-point sums in the last bit (fuzzer-found, generator
			// seed 4). Inside round one every initial job is still mid-round
			// when the joiner's appendix drains, so the joiner always queues
			// at the barrier deterministically.
			if b >= p {
				gs.Events = append(gs.Events, GenEvent{Barrier: b, Kind: Update, Edges: genEdges(rng, opts.NumV)})
				continue
			}
			j := genJob(rng, nextAttachID, 4)
			nextAttachID++
			gs.Events = append(gs.Events, GenEvent{Barrier: b, Kind: Attach, Job: j})
			joined[j.ID] = b
			jobByID[j.ID] = j
		case Detach:
			id := pickTarget(rng, jobByID, joined, detachedAt, targetedAt, b, p)
			if id == 0 {
				gs.Events = append(gs.Events, GenEvent{Barrier: b, Kind: Update, Edges: genEdges(rng, opts.NumV)})
				continue
			}
			detachedAt[id] = b
			target(id)
			gs.Events = append(gs.Events, GenEvent{Barrier: b, Kind: Detach, Target: id})
		case MutatePrivate:
			// Private mutations only ever target the triggering job itself.
			// The trigger has finished every chunk of the partition it holds
			// open, so its own next snapshot resolve is strictly after the
			// install; a co-attending target may still be streaming that
			// partition's final chunk (chunkDone does not wait for the
			// followers), and whether its resolve beats the install is a
			// goroutine race — the fuzzer caught exactly that as a one-edge
			// work divergence (generator seed 168).
			target(1)
			gs.Events = append(gs.Events, GenEvent{Barrier: b, Kind: MutatePrivate, Target: 1, Edges: genEdges(rng, opts.NumV)})
		case Update:
			gs.Events = append(gs.Events, GenEvent{Barrier: b, Kind: Update, Edges: genEdges(rng, opts.NumV)})
		}
	}
	sort.SliceStable(gs.Events, func(i, j int) bool { return gs.Events[i].Barrier < gs.Events[j].Barrier })
	return gs, nil
}

// genJob draws a non-anchor job: a short PageRank (iteration budget 2..cap)
// or a WCC.
func genJob(rng *rand.Rand, id, anchorIters int) GenJob {
	if rng.Intn(3) == 0 {
		return GenJob{ID: id, Algo: "wcc", Seed: rng.Int63()}
	}
	hi := anchorIters - 1
	if hi < 2 {
		hi = 2
	}
	iters := 2 + rng.Intn(hi-1)
	return GenJob{ID: id, Algo: "pagerank", Iters: iters, Seed: rng.Int63()}
}

// pickTarget selects a detach target: a non-anchor job deterministically
// alive at barrier b (the anchor carries every later event and must never
// be withdrawn), not yet detached at or before b, and not targeted by any
// already-generated event at a *later* barrier — barriers are drawn in
// shuffled order, so without that check a detach could slot in below an
// existing mutate/detach of the same job (the mutate would then fire on a
// job that already left, leaking its snapshot override past CheckClean,
// and the second detach would double-withdraw).
func pickTarget(rng *rand.Rand, jobs map[int]GenJob, joined, detachedAt, targetedAt map[int]int, b, p int) int {
	var ids []int
	for id, j := range jobs {
		if id == 1 {
			continue
		}
		if at, dead := detachedAt[id]; dead && b >= at {
			continue
		}
		if targetedAt[id] > b {
			continue
		}
		if jb := joined[id]; b > jb && b <= aliveUntil(j, jb, p) {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return 0
	}
	sort.Ints(ids)
	return ids[rng.Intn(len(ids))]
}

func genEdges(rng *rand.Rand, numV int) []graph.Edge {
	n := 1 + rng.Intn(3)
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{
			Src:    graph.VertexID(rng.Intn(numV)),
			Dst:    graph.VertexID(rng.Intn(numV)),
			Weight: 1,
		}
	}
	return edges
}

// SingleJob reports whether the script has exactly one job and no attach
// events — the shape eligible for the CheckSimEqual differential.
func (gs GenScript) SingleJob() bool {
	if len(gs.Jobs) != 1 {
		return false
	}
	for _, e := range gs.Events {
		if e.Kind == Attach {
			return false
		}
	}
	return true
}

// Script compiles the serializable description into a runnable Script.
func (gs GenScript) Script() (Script, error) {
	var s Script
	for _, j := range gs.Jobs {
		spec, err := j.spec()
		if err != nil {
			return Script{}, err
		}
		s.Initial = append(s.Initial, spec)
	}
	for _, e := range gs.Events {
		ev := Event{AfterJob: 1, AfterBarriers: e.Barrier, Kind: e.Kind, Target: e.Target,
			Edges: append([]graph.Edge(nil), e.Edges...)}
		if e.Kind == Attach {
			spec, err := e.Job.spec()
			if err != nil {
				return Script{}, err
			}
			ev.Job = spec
		}
		s.Events = append(s.Events, ev)
	}
	return s, nil
}

func (j GenJob) spec() (JobSpec, error) {
	switch j.Algo {
	case "pagerank":
		iters := j.Iters
		if iters < 2 {
			return JobSpec{}, fmt.Errorf("scenario: job %d pagerank iters %d < 2", j.ID, iters)
		}
		return JobSpec{ID: j.ID, Seed: j.Seed, New: func() engine.Program {
			pr := algorithms.NewPageRank(0.85, iters)
			pr.Tolerance = 1e-12
			return pr
		}}, nil
	case "wcc":
		return JobSpec{ID: j.ID, Seed: j.Seed, New: func() engine.Program {
			return algorithms.NewWCC(1000)
		}}, nil
	default:
		return JobSpec{}, fmt.Errorf("scenario: job %d has unknown algo %q", j.ID, j.Algo)
	}
}

// Encode renders the script in the textual corpus format. The format is
// line-based and stable: minimized counterexamples are checked in verbatim
// and replayed by the corpus regression test.
func (gs GenScript) Encode() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "graphm-scenario v1\n")
	fmt.Fprintf(&sb, "partitions %d\n", gs.Partitions)
	fmt.Fprintf(&sb, "vertices %d\n", gs.NumV)
	for _, j := range gs.Jobs {
		sb.WriteString(encodeJob("job", j))
	}
	for _, e := range gs.Events {
		switch e.Kind {
		case Attach:
			fmt.Fprintf(&sb, "event barrier=%d attach %s", e.Barrier, encodeJob("", e.Job))
		case Detach:
			fmt.Fprintf(&sb, "event barrier=%d detach target=%d\n", e.Barrier, e.Target)
		case Update:
			fmt.Fprintf(&sb, "event barrier=%d update edges=%s\n", e.Barrier, encodeEdges(e.Edges))
		case MutatePrivate:
			fmt.Fprintf(&sb, "event barrier=%d mutate target=%d edges=%s\n", e.Barrier, e.Target, encodeEdges(e.Edges))
		}
	}
	return sb.String()
}

func encodeJob(prefix string, j GenJob) string {
	s := fmt.Sprintf("id=%d algo=%s iters=%d seed=%d\n", j.ID, j.Algo, j.Iters, j.Seed)
	if prefix != "" {
		return prefix + " " + s
	}
	return s
}

func encodeEdges(edges []graph.Edge) string {
	parts := make([]string, len(edges))
	for i, e := range edges {
		parts[i] = fmt.Sprintf("%d:%d:%g", e.Src, e.Dst, e.Weight)
	}
	return strings.Join(parts, ",")
}

// DecodeScript parses the textual corpus format back into a GenScript.
func DecodeScript(r io.Reader) (GenScript, error) {
	sc := bufio.NewScanner(r)
	var gs GenScript
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		fail := func(err error) (GenScript, error) {
			return GenScript{}, fmt.Errorf("scenario: corpus line %d %q: %w", line, text, err)
		}
		switch fields[0] {
		case "graphm-scenario":
			if len(fields) != 2 || fields[1] != "v1" {
				return fail(fmt.Errorf("unsupported version"))
			}
		case "partitions":
			v, err := atoiField(fields, 1)
			if err != nil {
				return fail(err)
			}
			gs.Partitions = v
		case "vertices":
			v, err := atoiField(fields, 1)
			if err != nil {
				return fail(err)
			}
			gs.NumV = v
		case "job":
			j, err := decodeJob(fields[1:])
			if err != nil {
				return fail(err)
			}
			gs.Jobs = append(gs.Jobs, j)
		case "event":
			e, err := decodeEvent(fields[1:])
			if err != nil {
				return fail(err)
			}
			gs.Events = append(gs.Events, e)
		default:
			return fail(fmt.Errorf("unknown directive"))
		}
	}
	if err := sc.Err(); err != nil {
		return GenScript{}, err
	}
	if gs.Partitions < 2 || gs.NumV <= 0 || len(gs.Jobs) == 0 {
		return GenScript{}, fmt.Errorf("scenario: corpus script incomplete (partitions=%d vertices=%d jobs=%d)",
			gs.Partitions, gs.NumV, len(gs.Jobs))
	}
	return gs, nil
}

func atoiField(fields []string, i int) (int, error) {
	if i >= len(fields) {
		return 0, fmt.Errorf("missing field %d", i)
	}
	return strconv.Atoi(fields[i])
}

func kvMap(fields []string) (map[string]string, error) {
	m := make(map[string]string, len(fields))
	for _, f := range fields {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return nil, fmt.Errorf("field %q is not key=value", f)
		}
		m[k] = v
	}
	return m, nil
}

func decodeJob(fields []string) (GenJob, error) {
	m, err := kvMap(fields)
	if err != nil {
		return GenJob{}, err
	}
	id, err := strconv.Atoi(m["id"])
	if err != nil {
		return GenJob{}, fmt.Errorf("bad id: %w", err)
	}
	iters := 0
	if m["iters"] != "" {
		if iters, err = strconv.Atoi(m["iters"]); err != nil {
			return GenJob{}, fmt.Errorf("bad iters: %w", err)
		}
	}
	seed := int64(0)
	if m["seed"] != "" {
		if seed, err = strconv.ParseInt(m["seed"], 10, 64); err != nil {
			return GenJob{}, fmt.Errorf("bad seed: %w", err)
		}
	}
	return GenJob{ID: id, Algo: m["algo"], Iters: iters, Seed: seed}, nil
}

func decodeEvent(fields []string) (GenEvent, error) {
	if len(fields) < 2 {
		return GenEvent{}, fmt.Errorf("event needs a barrier and a kind")
	}
	m, err := kvMap([]string{fields[0]})
	if err != nil {
		return GenEvent{}, err
	}
	barrier, err := strconv.Atoi(m["barrier"])
	if err != nil {
		return GenEvent{}, fmt.Errorf("bad barrier: %w", err)
	}
	e := GenEvent{Barrier: barrier}
	rest, err := kvMap(fields[2:])
	if err != nil {
		return GenEvent{}, err
	}
	switch fields[1] {
	case "attach":
		e.Kind = Attach
		if e.Job, err = decodeJob(fields[2:]); err != nil {
			return GenEvent{}, err
		}
	case "detach":
		e.Kind = Detach
		if e.Target, err = strconv.Atoi(rest["target"]); err != nil {
			return GenEvent{}, fmt.Errorf("bad target: %w", err)
		}
	case "update":
		e.Kind = Update
		if e.Edges, err = decodeEdges(rest["edges"]); err != nil {
			return GenEvent{}, err
		}
	case "mutate":
		e.Kind = MutatePrivate
		if e.Target, err = strconv.Atoi(rest["target"]); err != nil {
			return GenEvent{}, fmt.Errorf("bad target: %w", err)
		}
		if e.Edges, err = decodeEdges(rest["edges"]); err != nil {
			return GenEvent{}, err
		}
	default:
		return GenEvent{}, fmt.Errorf("unknown event kind %q", fields[1])
	}
	return e, nil
}

func decodeEdges(s string) ([]graph.Edge, error) {
	if s == "" {
		return nil, fmt.Errorf("event has no edges")
	}
	var edges []graph.Edge
	for _, part := range strings.Split(s, ",") {
		bits := strings.Split(part, ":")
		if len(bits) != 3 {
			return nil, fmt.Errorf("edge %q is not src:dst:weight", part)
		}
		src, err := strconv.Atoi(bits[0])
		if err != nil {
			return nil, fmt.Errorf("edge %q: %w", part, err)
		}
		dst, err := strconv.Atoi(bits[1])
		if err != nil {
			return nil, fmt.Errorf("edge %q: %w", part, err)
		}
		w, err := strconv.ParseFloat(bits[2], 32)
		if err != nil {
			return nil, fmt.Errorf("edge %q: %w", part, err)
		}
		edges = append(edges, graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(dst), Weight: float32(w)})
	}
	return edges, nil
}

// Minimize shrinks a failing script while fails keeps returning true: it
// repeatedly tries dropping each event (an attach drags the events
// targeting its job along) and each unreferenced non-anchor initial job,
// until a fixpoint. fails must be deterministic for the result to be a
// genuine minimal counterexample; the fuzzer's differential check is.
func Minimize(gs GenScript, fails func(GenScript) bool) GenScript {
	for changed := true; changed; {
		changed = false
		for i := len(gs.Events) - 1; i >= 0; i-- {
			cand := dropEvent(gs, i)
			if fails(cand) {
				gs = cand
				changed = true
			}
		}
		for i := len(gs.Jobs) - 1; i >= 1; i-- {
			if referenced(gs, gs.Jobs[i].ID) {
				continue
			}
			cand := gs
			cand.Jobs = append(append([]GenJob(nil), gs.Jobs[:i]...), gs.Jobs[i+1:]...)
			if fails(cand) {
				gs = cand
				changed = true
			}
		}
	}
	return gs
}

// dropEvent removes event i plus, for an attach, every event targeting the
// attached job (they would fail validation orphaned).
func dropEvent(gs GenScript, i int) GenScript {
	drop := map[int]bool{i: true}
	if gs.Events[i].Kind == Attach {
		id := gs.Events[i].Job.ID
		for j, e := range gs.Events {
			if (e.Kind == Detach || e.Kind == MutatePrivate) && e.Target == id {
				drop[j] = true
			}
		}
	}
	out := gs
	out.Events = nil
	for j, e := range gs.Events {
		if !drop[j] {
			out.Events = append(out.Events, e)
		}
	}
	return out
}

func referenced(gs GenScript, id int) bool {
	for _, e := range gs.Events {
		if (e.Kind == Detach || e.Kind == MutatePrivate) && e.Target == id {
			return true
		}
	}
	return false
}

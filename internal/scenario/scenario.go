// Package scenario is a deterministic scenario harness for GraphM's dynamic
// concurrency: scripted attach / detach / graph-mutation timelines replayed
// against a core.System, with invariant checks strong enough to compare runs
// bit for bit. The adaptive-chunking tests and the bench `adaptive`
// experiment drive it, and future PRs get a ready-made way to turn "jobs
// come and go while the stream is hot" into a reproducible test.
//
// # Determinism model
//
// Real time never triggers anything. Every event is anchored to a partition
// barrier of a specific job: it fires after that job finishes streaming its
// AfterBarriers-th partition but *before* the job declares the barrier. At
// that instant the triggering job still holds the partition open — the
// sharing controller cannot advance the stream, rounds cannot turn over, and
// the round order is frozen — so the event's effect on round composition is
// a pure function of the script, not of goroutine scheduling. Attaches
// additionally block the triggering job until the new session has joined the
// controller (Session.Joined), pinning the order of admission.
//
// Three rules keep a script's work and outputs fully deterministic:
//
//   - Fire events at a barrier that is not the last partition of the
//     triggering job's round when other jobs have heterogeneous active
//     sets; with all-partitions-active programs (PageRank, first-iteration
//     WCC) any barrier before the round's final partition is safe, because
//     no co-attending job can be at its iteration boundary.
//   - Give causally ordered events distinct anchors (different barriers of
//     one job, or an anchor on a job attached by an earlier event).
//   - For bit-exact floating-point outputs, keep round orders independent
//     of exact round composition: all-active programs plus at most one
//     frontier program give every round a two-class Formula (5) priority
//     structure whose ranking does not depend on how many jobs a round
//     counted at formation, so each job streams partitions in the same
//     order however the round boundary raced.
//   - Aim MutatePrivate events only at the triggering job. The trigger has
//     finished every chunk of the partition it holds open, so its own next
//     snapshot resolve is strictly ordered after the install; any
//     co-attending target may still be streaming that partition's final
//     chunk (chunkDone never waits for followers), and whether its resolve
//     beats the install is a goroutine race that shifts the target's work
//     by the mutated edges. (Found by the differential fuzzer as a
//     one-edge ScannedEdges divergence.)
//
// Under those rules the schedule-independent work counters
// (engine.Metrics.Work) and the algorithm outputs are identical across the
// legacy serial driver, any executor worker count, and static vs adaptive
// chunk labelling — which is exactly what CheckWorkEqual and
// CheckOutputsEqual assert. Controller-level counters (Rounds,
// MidRoundJoins, SharedLoads, Relabels) are NOT part of the deterministic
// contract: a JoinMidRound job reaching its iteration boundary races the
// next round's formation — it either queues into the forming round or
// re-attaches mid-round a moment later — which moves those counters without
// moving any work.
package scenario

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/shard"
	"graphm/internal/storage"
)

// backend is the system surface a scripted run drives: session admission,
// graph mutation, and the counters the invariant checks read. *core.System
// and *shard.Group both satisfy it, which is what lets the same script
// replay unsharded and sharded for the differential matrix.
type backend interface {
	OpenJobSession(j *engine.Job, opts core.SessionOptions) (core.JobDriver, error)
	StatsSnapshot() core.Stats
	Err() error
	Wait() error
	AddEdges(edges []graph.Edge) (int, error)
	AddEdgesFor(jobID int, edges []graph.Edge) error
	OverrideChunks() int
}

// JobSpec describes one job in a script. New must build a fresh Program:
// programs are stateful and bound to the graph at admission.
type JobSpec struct {
	ID   int
	Seed int64
	New  func() engine.Program
}

// EventKind enumerates the scripted actions.
type EventKind int

const (
	// Attach admits Event.Job mid-round (JoinMidRound) and waits until the
	// session has joined the controller before the trigger job proceeds.
	Attach EventKind = iota
	// Detach asks the session of Event.Target to withdraw from sharing.
	Detach
	// Update installs Event.Edges as a global graph update (visible to jobs
	// attached after the event).
	Update
	// MutatePrivate installs Event.Edges as a mutation private to
	// Event.Target.
	MutatePrivate
)

func (k EventKind) String() string {
	switch k {
	case Attach:
		return "attach"
	case Detach:
		return "detach"
	case Update:
		return "update"
	case MutatePrivate:
		return "mutate"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Event is one scripted action, anchored to a job's partition barrier.
type Event struct {
	// AfterJob and AfterBarriers anchor the event: it fires immediately
	// before AfterJob's AfterBarriers-th partition barrier (1-based,
	// cumulative across the job's iterations).
	AfterJob      int
	AfterBarriers int
	Kind          EventKind
	Job           JobSpec      // Attach
	Target        int          // Detach, MutatePrivate
	Edges         []graph.Edge // Update, MutatePrivate
}

// Script is a deterministic timeline: the initial batch plus barrier-anchored
// events.
type Script struct {
	Initial []JobSpec
	Events  []Event
}

// Env is the storage/cache substrate one run streams against. Runs mutate
// the memory pool and cache counters, so comparative runs need a fresh Env
// each (GenEnv, or rebuild around a shared Grid as the bench harness does).
type Env struct {
	Layout core.Layout
	Disk   *storage.Disk
	Mem    *storage.Memory
	Cache  *memsim.Cache
}

// GenEnv builds a self-contained environment over a seeded R-MAT graph with
// a p x p grid layout — everything a scripted run needs, deterministically.
func GenEnv(name string, numV, numE, p int, seed int64, llcBytes, memBudget int64) (Env, *graph.Graph, error) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT(name, numV, numE, seed))
	if err != nil {
		return Env{}, nil, err
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, p, disk)
	if err != nil {
		return Env{}, nil, err
	}
	cache, err := memsim.NewCache(memsim.DefaultConfig(llcBytes))
	if err != nil {
		return Env{}, nil, err
	}
	return Env{Layout: grid.AsLayout(), Disk: disk, Mem: storage.NewMemory(disk, memBudget), Cache: cache}, g, nil
}

// NonEmptyPartitions counts layout partitions holding edges. An all-active
// job attends exactly these each round, so it is the per-round barrier count
// RampScript anchors events against.
func (e Env) NonEmptyPartitions() int {
	n := 0
	for _, p := range e.Layout.Partitions() {
		if len(p.Edges) > 0 {
			n++
		}
	}
	return n
}

// JobResult captures one job's outcome.
type JobResult struct {
	Spec     JobSpec
	Prog     engine.Program
	Metrics  engine.Metrics
	Work     engine.WorkCounters
	Detached bool
	// LLCHits/LLCMisses are the job's simulated cache counters — compared by
	// CheckSimEqual between the run-length and per-edge accounting models.
	LLCHits   uint64
	LLCMisses uint64
}

// Result is one scripted run's outcome.
type Result struct {
	Jobs  map[int]*JobResult
	Stats core.Stats
	// CacheMisses/CacheHits are the cache-wide counters of the run's Env —
	// the `adaptive` experiment's comparison quantity.
	CacheMisses uint64
	CacheHits   uint64

	sys backend
	// pins scans the run's memory pool(s) for leaked partition pins — set by
	// Run (the env's single pool) and RunSharded (every shard node's pool).
	pins func() error
}

// runner executes one script.
type runner struct {
	sys    backend
	script Script

	mu       sync.Mutex
	sessions map[int]core.JobDriver
	progs    map[int]engine.Program
	jobs     map[int]*engine.Job
	detached map[int]bool
	events   map[int]map[int][]Event // job -> barrier -> events, removed as fired
	pending  int
	errs     []error
	done     map[int]chan struct{}
}

// Run replays the script against env under cc and returns the collected
// results once every job (initial and attached) has finished. It fails on
// malformed scripts, on system errors, and on events whose anchor was never
// reached — an unfired event means the script is not the deterministic
// timeline it claims to be.
func Run(env Env, cc core.Config, script Script) (*Result, error) {
	if err := validate(script); err != nil {
		return nil, err
	}
	sys, err := core.NewSystem(env.Layout, env.Mem, env.Cache, cc)
	if err != nil {
		return nil, err
	}
	res, err := replay(sys, script)
	if err != nil {
		return nil, err
	}
	res.CacheMisses = env.Cache.TotalMisses()
	res.CacheHits = env.Cache.TotalHits()
	res.pins = func() error { return pinScan(env.Mem, env.Layout.Partitions()) }
	return res, nil
}

// RunSharded replays the script against a shard.Group built over env.Layout
// — the same partitions env's single-system run streams, split across
// `shards` systems on private cluster nodes, each with env's full memory
// budget (the group re-hosts partition blobs per shard, so budgets do not
// meaningfully compose across counts). The scenario differential matrix
// compares its Results against Run's with CheckWorkEqual and
// CheckOutputsEqual; see the shard package comment for what is and is not
// preserved.
func RunSharded(env Env, cc core.Config, script Script, shards int) (*Result, error) {
	if err := validate(script); err != nil {
		return nil, err
	}
	grp, err := shard.New(env.Layout, shards, env.Mem.Budget(), cc)
	if err != nil {
		return nil, err
	}
	res, err := replay(grp, script)
	if err != nil {
		return nil, err
	}
	res.CacheHits, res.CacheMisses = grp.CacheTotals()
	res.pins = func() error {
		for si := 0; si < grp.Shards(); si++ {
			if err := pinScan(grp.Node(si).Mem, grp.PartitionsOf(si)); err != nil {
				return fmt.Errorf("shard %d: %w", si, err)
			}
		}
		return nil
	}
	return res, nil
}

// pinScan checks every partition buffer is unpinned in mem after a run.
func pinScan(mem *storage.Memory, parts []*core.Partition) error {
	for _, p := range parts {
		if n := mem.PinCount(p.DiskName); n != 0 {
			return fmt.Errorf("scenario: partition %s still pinned %d times after the run", p.DiskName, n)
		}
	}
	return nil
}

// replay drives a validated script against sys and collects everything but
// the substrate-specific cache counters and pin scan.
func replay(sys backend, script Script) (*Result, error) {
	r := &runner{
		sys:      sys,
		script:   script,
		sessions: make(map[int]core.JobDriver),
		progs:    make(map[int]engine.Program),
		jobs:     make(map[int]*engine.Job),
		detached: make(map[int]bool),
		events:   make(map[int]map[int][]Event),
		done:     make(map[int]chan struct{}),
	}
	for _, e := range script.Events {
		m := r.events[e.AfterJob]
		if m == nil {
			m = make(map[int][]Event)
			r.events[e.AfterJob] = m
		}
		m[e.AfterBarriers] = append(m[e.AfterBarriers], e)
		r.pending++
	}
	// Register every initial session before any driver starts, so the first
	// round forms over the complete batch regardless of goroutine order.
	for _, spec := range script.Initial {
		if _, err := r.open(spec, core.SessionOptions{}); err != nil {
			return nil, err
		}
	}
	r.mu.Lock()
	for id := range r.sessions {
		go r.drive(id)
	}
	r.mu.Unlock()
	if err := sys.Wait(); err != nil {
		return nil, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.errs) > 0 {
		return nil, r.errs[0]
	}
	if r.pending > 0 {
		return nil, fmt.Errorf("scenario: %d event(s) never fired — anchors unreachable: %v", r.pending, r.unfiredLocked())
	}
	res := &Result{Jobs: make(map[int]*JobResult), Stats: sys.StatsSnapshot(), sys: sys}
	for id, j := range r.jobs {
		res.Jobs[id] = &JobResult{
			Spec:      specByID(script, id),
			Prog:      r.progs[id],
			Metrics:   j.Met,
			Work:      j.Met.Work(),
			Detached:  r.detached[id],
			LLCHits:   j.Ctr.Hits.Load(),
			LLCMisses: j.Ctr.Misses.Load(),
		}
	}
	return res, nil
}

func validate(s Script) error {
	known := make(map[int]bool)
	for _, spec := range s.Initial {
		if spec.New == nil {
			return fmt.Errorf("scenario: initial job %d has no program factory", spec.ID)
		}
		if known[spec.ID] {
			return fmt.Errorf("scenario: duplicate job ID %d", spec.ID)
		}
		known[spec.ID] = true
	}
	for i, e := range s.Events {
		if e.AfterBarriers < 1 {
			return fmt.Errorf("scenario: event %d anchored at barrier %d (must be >= 1)", i, e.AfterBarriers)
		}
		switch e.Kind {
		case Attach:
			if e.Job.New == nil {
				return fmt.Errorf("scenario: attach event %d has no program factory", i)
			}
			if known[e.Job.ID] {
				return fmt.Errorf("scenario: attach event %d reuses job ID %d", i, e.Job.ID)
			}
			known[e.Job.ID] = true
		case Detach, MutatePrivate:
			// An unknown target would not fail at fire time (AddEdgesFor
			// accepts arbitrary job IDs, installing an override nobody ever
			// releases), so the script typo must be caught here rather than
			// surfacing later as a CheckClean leak.
			if !known[e.Target] {
				return fmt.Errorf("scenario: %s event %d targets unknown job %d", e.Kind, i, e.Target)
			}
		case Update:
		default:
			return fmt.Errorf("scenario: event %d has unknown kind %d", i, e.Kind)
		}
	}
	return nil
}

func specByID(s Script, id int) JobSpec {
	for _, spec := range s.Initial {
		if spec.ID == id {
			return spec
		}
	}
	for _, e := range s.Events {
		if e.Kind == Attach && e.Job.ID == id {
			return e.Job
		}
	}
	return JobSpec{ID: id}
}

// open registers a session for spec; caller must not hold r.mu.
func (r *runner) open(spec JobSpec, opts core.SessionOptions) (core.JobDriver, error) {
	prog := spec.New()
	j := engine.NewJob(spec.ID, prog, spec.Seed)
	sess, err := r.sys.OpenJobSession(j, opts)
	if err != nil {
		return nil, err
	}
	r.mu.Lock()
	r.sessions[spec.ID] = sess
	r.progs[spec.ID] = prog
	r.jobs[spec.ID] = j
	r.done[spec.ID] = make(chan struct{})
	r.mu.Unlock()
	return sess, nil
}

func (r *runner) fail(err error) {
	r.mu.Lock()
	r.errs = append(r.errs, err)
	r.mu.Unlock()
}

// drive is the per-job streaming loop: the Figure 6(b) driver with the
// event hook wedged into the pre-barrier window.
func (r *runner) drive(id int) {
	r.mu.Lock()
	sess := r.sessions[id]
	doneCh := r.done[id]
	r.mu.Unlock()
	defer close(doneCh)
	defer sess.Close()
	barriers := 0
	for sess.BeginIteration() {
		for {
			sp := sess.Sharing()
			if sp == nil {
				break
			}
			sp.ProcessAll()
			barriers++
			// The partition is still held open: fire this barrier's events
			// while the controller is frozen.
			r.fire(id, barriers)
			sp.Barrier()
		}
		sess.EndIteration()
	}
	r.mu.Lock()
	r.detached[id] = sess.Detached()
	r.mu.Unlock()
}

// fire runs the events anchored at (job id, barrier n), in script order.
func (r *runner) fire(id, n int) {
	r.mu.Lock()
	evs := r.events[id][n]
	delete(r.events[id], n)
	r.pending -= len(evs)
	r.mu.Unlock()
	for _, e := range evs {
		switch e.Kind {
		case Attach:
			sess, err := r.open(e.Job, core.SessionOptions{JoinMidRound: true})
			if err != nil {
				r.fail(fmt.Errorf("scenario: attaching job %d: %w", e.Job.ID, err))
				continue
			}
			r.mu.Lock()
			attachedDone := r.done[e.Job.ID]
			r.mu.Unlock()
			go r.drive(e.Job.ID)
			// Block the trigger job until the attach has fully landed, so
			// admission order is the script's order.
			for !sess.Joined() && r.sys.Err() == nil {
				select {
				case <-attachedDone:
				default:
					runtime.Gosched()
					continue
				}
				break
			}
		case Detach:
			r.mu.Lock()
			sess := r.sessions[e.Target]
			r.mu.Unlock()
			if sess == nil {
				r.fail(fmt.Errorf("scenario: detach of unknown job %d", e.Target))
				continue
			}
			sess.Detach()
		case Update:
			if _, err := r.sys.AddEdges(e.Edges); err != nil {
				r.fail(fmt.Errorf("scenario: update event: %w", err))
			}
		case MutatePrivate:
			if err := r.sys.AddEdgesFor(e.Target, e.Edges); err != nil {
				r.fail(fmt.Errorf("scenario: mutate event for job %d: %w", e.Target, err))
			}
		}
	}
}

func (r *runner) unfiredLocked() []string {
	var out []string
	for id, m := range r.events {
		for n, evs := range m {
			out = append(out, fmt.Sprintf("job %d barrier %d (%d event(s))", id, n, len(evs)))
		}
	}
	sort.Strings(out)
	return out
}

// OverrideChunks reports copy-on-write chunks still live in the system after
// the run — must be zero once every job has left.
func (r *Result) OverrideChunks() int { return r.sys.OverrideChunks() }

// CheckClean verifies the run left no residue: every partition buffer
// unpinned, prefetch accounting exact, no leaked snapshot overrides.
func CheckClean(env Env, res *Result) error {
	if res.pins != nil {
		// The run knows its own memory pools (a sharded run pins on its
		// shard nodes' pools, not env.Mem).
		if err := res.pins(); err != nil {
			return err
		}
	} else if err := pinScan(env.Mem, env.Layout.Partitions()); err != nil {
		return err
	}
	st := res.Stats
	if st.PrefetchHits+st.PrefetchCancels != st.Prefetches {
		return fmt.Errorf("scenario: prefetch accounting leak: %d started, %d claimed + %d canceled",
			st.Prefetches, st.PrefetchHits, st.PrefetchCancels)
	}
	if n := res.OverrideChunks(); n != 0 {
		return fmt.Errorf("scenario: %d override chunks leaked past job exit", n)
	}
	return nil
}

// CheckWorkEqual asserts two runs of the same script did identical
// schedule-independent work, job by job. Detached jobs are compared only on
// the Detached flag itself: how far a cancellation got before the controller
// honored it depends on the round-boundary race (a JoinMidRound job's next
// iteration either catches the forming round or re-attaches a beat later),
// so a withdrawn job's partial work is inherently run-dependent — the
// invariant is that the withdrawal is clean (CheckClean) and the survivors
// are untouched.
func CheckWorkEqual(a, b *Result) error {
	if len(a.Jobs) != len(b.Jobs) {
		return fmt.Errorf("scenario: job counts differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for id, ja := range a.Jobs {
		jb, ok := b.Jobs[id]
		if !ok {
			return fmt.Errorf("scenario: job %d missing from second run", id)
		}
		if ja.Detached != jb.Detached {
			return fmt.Errorf("scenario: job %d detached=%v vs %v", id, ja.Detached, jb.Detached)
		}
		if ja.Detached {
			continue
		}
		if ja.Work != jb.Work {
			return fmt.Errorf("scenario: job %d work differs: %+v vs %+v", id, ja.Work, jb.Work)
		}
	}
	return nil
}

// CheckSimEqual asserts two runs did identical simulated LLC work: equal
// cache-wide hit and miss totals, and equal per-job LLC counters and
// simulated times for every non-detached job. This is the equivalence proof
// between the run-length accounting hot path (engine.Job.ApplyChunk) and
// the per-edge reference model (core.Config.PerEdgeSim): under the serial
// driver with a deterministic access schedule — one job, or any script
// whose cache-access interleaving is schedule-independent — the two models
// must count every hit and miss identically. Unlike CheckWorkEqual this is
// intentionally stronger than the cross-schedule contract (LLC counters DO
// shift with worker interleavings), so only compare runs that used the same
// serial schedule.
func CheckSimEqual(a, b *Result) error {
	if a.CacheHits != b.CacheHits || a.CacheMisses != b.CacheMisses {
		return fmt.Errorf("scenario: cache-wide LLC counters differ: %d hits/%d misses vs %d/%d",
			a.CacheHits, a.CacheMisses, b.CacheHits, b.CacheMisses)
	}
	for id, ja := range a.Jobs {
		jb, ok := b.Jobs[id]
		if !ok {
			return fmt.Errorf("scenario: job %d missing from second run", id)
		}
		if ja.Detached || jb.Detached {
			continue
		}
		if ja.LLCHits != jb.LLCHits || ja.LLCMisses != jb.LLCMisses {
			return fmt.Errorf("scenario: job %d LLC counters differ: %d hits/%d misses vs %d/%d",
				id, ja.LLCHits, ja.LLCMisses, jb.LLCHits, jb.LLCMisses)
		}
		if ja.Metrics.SimMemNS != jb.Metrics.SimMemNS || ja.Metrics.SimComputeNS != jb.Metrics.SimComputeNS {
			return fmt.Errorf("scenario: job %d simulated time differs: mem %d vs %d, compute %d vs %d",
				id, ja.Metrics.SimMemNS, jb.Metrics.SimMemNS, ja.Metrics.SimComputeNS, jb.Metrics.SimComputeNS)
		}
	}
	return nil
}

// CheckOutputsEqual asserts bit-identical algorithm outputs between two runs
// of the same script, for the program types whose results are comparable.
// Unknown program types are an error: silent skips would make the check
// vacuously green. Detached jobs are skipped for the same reason
// CheckWorkEqual skips their counters — a withdrawn job's partial state is
// not schedule-independent.
func CheckOutputsEqual(a, b *Result) error {
	for id, ja := range a.Jobs {
		jb, ok := b.Jobs[id]
		if !ok {
			return fmt.Errorf("scenario: job %d missing from second run", id)
		}
		if ja.Detached || jb.Detached {
			continue
		}
		if err := outputsEqual(ja.Prog, jb.Prog); err != nil {
			return fmt.Errorf("scenario: job %d outputs differ: %w", id, err)
		}
	}
	return nil
}

// vertexSliceEqual compares one per-vertex output slice element-wise.
// Floating-point outputs go through it too: the contract is bit-identity,
// not tolerance, because the batched and per-edge paths must perform the
// same float operations in the same order.
func vertexSliceEqual[T comparable](what string, a, b []T) error {
	if len(a) != len(b) {
		return fmt.Errorf("%s lengths differ: %d vs %d", what, len(a), len(b))
	}
	for v := range a {
		if a[v] != b[v] {
			return fmt.Errorf("%s[%d]: %v vs %v (not bit-identical)", what, v, a[v], b[v])
		}
	}
	return nil
}

func outputsEqual(a, b engine.Program) error {
	switch pa := a.(type) {
	case *algorithms.PageRank:
		pb, ok := b.(*algorithms.PageRank)
		if !ok {
			return fmt.Errorf("program types differ: %T vs %T", a, b)
		}
		return vertexSliceEqual("rank", pa.Ranks(), pb.Ranks())
	case *algorithms.PersonalizedPageRank:
		pb, ok := b.(*algorithms.PersonalizedPageRank)
		if !ok {
			return fmt.Errorf("program types differ: %T vs %T", a, b)
		}
		return vertexSliceEqual("ppr rank", pa.Ranks(), pb.Ranks())
	case *algorithms.WCC:
		pb, ok := b.(*algorithms.WCC)
		if !ok {
			return fmt.Errorf("program types differ: %T vs %T", a, b)
		}
		return vertexSliceEqual("label", pa.Labels(), pb.Labels())
	case *algorithms.LabelPropagation:
		pb, ok := b.(*algorithms.LabelPropagation)
		if !ok {
			return fmt.Errorf("program types differ: %T vs %T", a, b)
		}
		return vertexSliceEqual("label", pa.Labels(), pb.Labels())
	case *algorithms.BFS:
		pb, ok := b.(*algorithms.BFS)
		if !ok {
			return fmt.Errorf("program types differ: %T vs %T", a, b)
		}
		return vertexSliceEqual("dist", pa.Dist(), pb.Dist())
	case *algorithms.SSSP:
		pb, ok := b.(*algorithms.SSSP)
		if !ok {
			return fmt.Errorf("program types differ: %T vs %T", a, b)
		}
		return vertexSliceEqual("dist", pa.Dist(), pb.Dist())
	case *algorithms.KCore:
		pb, ok := b.(*algorithms.KCore)
		if !ok {
			return fmt.Errorf("program types differ: %T vs %T", a, b)
		}
		if pa.CoreSize() != pb.CoreSize() {
			return fmt.Errorf("core sizes differ: %d vs %d", pa.CoreSize(), pb.CoreSize())
		}
		return vertexSliceEqual("removed", pa.Removed(), pb.Removed())
	default:
		return fmt.Errorf("no output comparison for program type %T", a)
	}
}

package core

// The parallel streaming executor (Section 3.3's streaming pipeline made
// real): instead of each job's goroutine streaming its own chunks serially,
// the round controller hands out (job, chunk) work items and a per-round
// pool of Config.Workers goroutines applies them, with the async partition
// prefetcher (system.go) overlapping the next partition's load with the
// current partition's compute.
//
// The unit of scheduling is one job applying one chunk. Two invariants bound
// what may run concurrently:
//
//   - per-job serialization: a job never has two chunks in flight at once —
//     ProcessEdge mutates per-vertex state that disjoint chunks can share
//     through common destinations;
//   - the FineSync lockstep (Section 3.4): the elected leader streams chunk
//     k into the LLC alone, then every other attendee streams it, and the
//     chunk barrier closes k before k+1 opens.
//
// Within those constraints items are served work-stealing style from one
// shared queue: any idle worker takes the next eligible item whichever job
// it belongs to, so real concurrency tracks the number of attending jobs up
// to the worker count. With FineSync disabled (Share-only ablation) jobs
// stream the partition's chunks independently and the pool interleaves them
// freely, still one in-flight chunk per job.
//
// The pool is per-round: startRoundLocked spawns the workers and they exit
// when their round ends (or the system fails), so an idle System holds no
// goroutines. The legacy serial driver (Workers == 0) bypasses all of this
// and is bit-for-bit the pre-executor behaviour.
//
// Adaptive chunk re-labelling composes with the pool through one invariant:
// a partition's labelling is only swapped inside advancePartitionLocked,
// before the new curPartition exists. Every pool structure that counts or
// indexes chunks (execItem.k, execJob.done, the len(cp.set.Chunks) bounds
// here and in processAll) goes through cp.set — the immutable Set pointer
// captured at partition open — never through s.sets, so a re-label can never
// change chunk arithmetic mid-partition in either driver.

// execItem is one schedulable unit: job ej streams chunk k of partition cp.
type execItem struct {
	cp *curPartition
	ej *execJob
	k  int
}

// execJob tracks one pool-driven attendee of one partition.
type execJob struct {
	js *jobState
	// lastDispatched is the highest chunk index handed to the pool for this
	// job (-1 before any); guards double-dispatch across the several places
	// dispatchLocked is called from.
	lastDispatched int
	// done counts chunks this job has finished; finished flips when done
	// reaches the partition's chunk count and wakes ProcessAll.
	done     int
	finished bool
}

// execEnabled reports whether the worker-pool executor drives chunk work.
func (s *System) execEnabled() bool { return s.workers > 0 }

// prefetchEnabled reports whether the async partition prefetcher runs.
func (s *System) prefetchEnabled() bool { return s.execEnabled() && !s.cfg.DisablePrefetch }

// startWorkersLocked spawns the round's worker pool. Workers are bound to
// the round that spawned them (s.round at spawn time) and exit as soon as
// that round ends, so pools of consecutive rounds never mix.
func (s *System) startWorkersLocked() {
	if !s.execEnabled() {
		return
	}
	for i := 0; i < s.workers; i++ {
		go s.workerLoop(s.round)
	}
}

// workerLoop pulls chunk work items off the shared queue and applies them
// until its round ends or the system fails.
func (s *System) workerLoop(round int) {
	for {
		s.mu.Lock()
		for s.err == nil && s.round == round && s.roundActive && len(s.execQueue) == 0 {
			s.workCond.Wait()
		}
		if s.err != nil || s.round != round || !s.roundActive {
			s.mu.Unlock()
			return
		}
		it := s.execQueue[0]
		s.execQueue = s.execQueue[1:]
		s.inFlight++
		if s.inFlight > s.stats.PeakParallelStreams {
			s.stats.PeakParallelStreams = s.inFlight
		}
		s.mu.Unlock()

		// The chunk application itself runs unlocked: per-job serialization
		// and the lockstep dispatch rules guarantee no two in-flight items
		// share a job, and the LLC model is internally synchronized.
		st := s.streamChunk(it.ej.js, it.cp, it.k)
		s.recordSample(it.ej.js, st)

		s.mu.Lock()
		s.inFlight--
		it.ej.done++
		if it.ej.done == len(it.cp.set.Chunks) {
			it.ej.finished = true
		}
		if s.cfg.FineSync {
			// chunkDoneLocked broadcasts the partition's cond, which also
			// wakes this job's processAll if finished just flipped.
			s.chunkDoneLocked(it.ej.js, it.cp)
		} else {
			s.dispatchLocked(it.cp)
			it.cp.cond.Broadcast()
		}
		s.mu.Unlock()
	}
}

// enqueueLocked appends an item to the shared work queue and wakes the idle
// pool workers (never the jobs parked on round or lockstep wait lists).
func (s *System) enqueueLocked(it execItem) {
	s.execQueue = append(s.execQueue, it)
	s.workCond.Broadcast()
}

// dispatchLocked hands every currently eligible chunk item of the open
// partition to the pool. It is called whenever eligibility may have changed:
// a pool job arrives, the leader finishes, the chunk barrier advances, or an
// attendee detaches. Items are dispatched at most once (lastDispatched) and
// in arrival order, which makes workers=1 execution deterministic.
func (s *System) dispatchLocked(cp *curPartition) {
	if !s.execEnabled() || cp != s.cur {
		return
	}
	n := len(cp.set.Chunks)
	if s.cfg.FineSync {
		k := cp.chunkIdx
		if k >= n {
			return
		}
		if !cp.leaderDone {
			// Only the elected leader may stream chunk k so far. If it is a
			// pool-driven job that has picked the partition up, dispatch it;
			// a self-driven leader proceeds through awaitChunk instead.
			if ej, ok := cp.execByID[cp.leaderID]; ok && ej.lastDispatched < k {
				ej.lastDispatched = k
				s.enqueueLocked(execItem{cp: cp, ej: ej, k: k})
			}
			return
		}
		for _, ej := range cp.execJobs {
			if ej.js.job.ID == cp.leaderID {
				continue // the leader already streamed k
			}
			if ej.lastDispatched < k {
				ej.lastDispatched = k
				s.enqueueLocked(execItem{cp: cp, ej: ej, k: k})
			}
		}
		return
	}
	// Share-only (FineSync off): each job streams its chunks independently,
	// serially per job — dispatch a job's next chunk once its previous one
	// completed.
	for _, ej := range cp.execJobs {
		if !ej.finished && ej.lastDispatched < ej.done && ej.done < n {
			ej.lastDispatched = ej.done
			s.enqueueLocked(execItem{cp: cp, ej: ej, k: ej.done})
		}
	}
}

// processAll registers js as a pool-driven attendee of cp and blocks until
// the pool has applied every chunk for it (or the system failed). It is the
// executor-mode body of SharedPartition.ProcessAll.
func (s *System) processAll(js *jobState, cp *curPartition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	ej := &execJob{js: js, lastDispatched: -1}
	if len(cp.set.Chunks) == 0 {
		ej.finished = true
	}
	cp.execJobs = append(cp.execJobs, ej)
	cp.execByID[js.job.ID] = ej
	s.dispatchLocked(cp)
	for s.err == nil && !ej.finished {
		cp.cond.Wait()
	}
}

package core

import (
	"testing"

	"graphm/internal/chunk"
	"graphm/internal/graph"
)

// seqEdges builds n distinguishable edges so stream slices can be compared
// positionally.
func seqEdges(n int) []graph.Edge {
	out := make([]graph.Edge, n)
	for i := range out {
		out[i] = graph.Edge{Src: uint32(i), Dst: uint32(i + 1), Weight: 1}
	}
	return out
}

// partitionStream reconstructs the full partition edge stream one observer
// sees: per new-labelling chunk, the snapshot resolution if any, else the
// base chunk slice.
func partitionStream(st *snapshotStore, base []graph.Edge, set *chunk.Set, jobID, born, pid int) []graph.Edge {
	var out []graph.Edge
	for k, t := range set.Chunks {
		if cp := st.resolve(jobID, born, pid, k); cp != nil {
			out = append(out, cp.edges...)
		} else {
			out = append(out, base[t.FirstEdge:t.FirstEdge+t.NumEdges]...)
		}
	}
	return out
}

func streamsEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSnapshotRelabelPreservesAllViews is the stable-chunk-key-remapping
// contract: after relabelPartition, every observer — jobs born before,
// between and after the updates, plus an override-holding job — must see a
// bit-identical partition stream, whichever direction the chunk size moved.
func TestSnapshotRelabelPreservesAllViews(t *testing.T) {
	const pid = 3
	base := seqEdges(24)
	oldSet := chunk.Label(pid, base, 8*graph.EdgeSize) // 3 chunks of 8

	build := func() (*snapshotStore, map[string]int) {
		st := newSnapshotStore()
		borns := map[string]int{"preUpdate": st.currentVersion()}
		// Update chunk 1 with shrunk content (5 edges, offset to be unique).
		v1 := st.update(pid, 1, seqEdges(5), alloc64)
		borns["afterV1"] = v1
		// Update chunk 2 with grown content (11 edges).
		grown := make([]graph.Edge, 11)
		for i := range grown {
			grown[i] = graph.Edge{Src: uint32(100 + i), Dst: uint32(200 + i), Weight: 2}
		}
		v2 := st.update(pid, 2, grown, alloc64)
		borns["afterV2"] = v2
		// Job 7 (born at v1) holds a private override on chunk 0.
		priv := []graph.Edge{{Src: 9, Dst: 9, Weight: 9}}
		st.mutate(7, pid, 0, priv, alloc64)
		// Unrelated partition state must survive untouched.
		st.update(pid+1, 0, seqEdges(3), alloc64)
		return st, borns
	}

	type observer struct {
		name  string
		jobID int
		born  string
	}
	observers := []observer{
		{"job born pre-update", 1, "preUpdate"},
		{"job born after v1", 2, "afterV1"},
		{"job born after v2", 3, "afterV2"},
		{"override owner", 7, "afterV1"},
	}

	for _, newPer := range []int{5, 40} { // shrink to 5 chunks / grow to 1 chunk
		st, borns := build()
		newSet := oldSet.Relabel(base, int64(newPer)*graph.EdgeSize)
		want := make(map[string][]graph.Edge)
		for _, ob := range observers {
			want[ob.name] = partitionStream(st, base, oldSet, ob.jobID, borns[ob.born], pid)
		}
		st.relabelPartition(pid, base, oldSet, newSet, map[int]int{7: borns["afterV1"]}, alloc64)
		for _, ob := range observers {
			got := partitionStream(st, base, newSet, ob.jobID, borns[ob.born], pid)
			if !streamsEqual(got, want[ob.name]) {
				t.Fatalf("newPer=%d: %s sees %d edges after relabel, want %d (stream changed)",
					newPer, ob.name, len(got), len(want[ob.name]))
			}
		}
		// Old chunk keys beyond the new chunk count must be gone.
		for k := newSet.NumChunks(); k < oldSet.NumChunks(); k++ {
			if len(st.versions[chunkKey(pid, k)]) != 0 {
				t.Fatalf("newPer=%d: stale version chain at old chunk %d", newPer, k)
			}
		}
		// The unrelated partition's chain is untouched.
		if cp := st.resolve(-1, st.currentVersion(), pid+1, 0); cp == nil || len(cp.edges) != 3 {
			t.Fatalf("newPer=%d: relabel disturbed another partition's versions", newPer)
		}
	}
}

// TestSnapshotRelabelCopiesAreCapacityClamped guards the aliasing hazard:
// the rebased segments of one stream share a backing array, and resolve
// hands cp.edges out by reference (ChunkView is public), so every stored
// copy must have cap == len — an append on one chunk's view must never be
// able to write into a neighbouring chunk's stored snapshot.
func TestSnapshotRelabelCopiesAreCapacityClamped(t *testing.T) {
	const pid = 0
	base := seqEdges(24)
	oldSet := chunk.Label(pid, base, 8*graph.EdgeSize)
	st := newSnapshotStore()
	repl := make([]graph.Edge, 9) // distinct content, shifts later segments off base
	for i := range repl {
		repl[i] = graph.Edge{Src: uint32(500 + i), Dst: uint32(600 + i), Weight: 3}
	}
	v := st.update(pid, 0, repl, alloc64)
	st.mutate(4, pid, 1, seqEdges(2), alloc64)
	newSet := oldSet.Relabel(base, 5*graph.EdgeSize)
	st.relabelPartition(pid, base, oldSet, newSet, map[int]int{4: v}, alloc64)

	st.mu.RLock()
	for key, vs := range st.versions {
		for _, cv := range vs {
			if cap(cv.copy.edges) != len(cv.copy.edges) {
				t.Fatalf("version copy at key %d has cap %d > len %d (aliases the split's backing array)",
					key, cap(cv.copy.edges), len(cv.copy.edges))
			}
		}
	}
	for jobID, m := range st.overrides {
		for key, cp := range m {
			if cap(cp.edges) != len(cp.edges) {
				t.Fatalf("override copy job %d key %d has cap %d > len %d",
					jobID, key, cap(cp.edges), len(cp.edges))
			}
		}
	}
	st.mu.RUnlock()

	// The concrete corruption the clamp prevents: appending to one chunk's
	// resolved view must leave the next chunk's stored copy intact.
	cp0 := st.resolve(-1, v, pid, 0)
	if cp0 == nil {
		t.Fatal("chunk 0 lost its version after relabel")
	}
	next := st.resolve(-1, v, pid, 1)
	var before []graph.Edge
	if next != nil {
		before = append([]graph.Edge(nil), next.edges...)
	}
	_ = append(cp0.edges, graph.Edge{Src: 999, Dst: 999}) //nolint:staticcheck // deliberate aliasing probe
	if next != nil && !streamsEqual(next.edges, before) {
		t.Fatal("append through chunk 0's view corrupted chunk 1's stored copy")
	}
}

// TestSnapshotRelabelInstallsSparsely: a relabel must keep the store at the
// size of the changed content. A tail-append update (AddEdges shape) leaves
// every chunk-aligned prefix segment identical to base, so only the tail
// chunks may receive version copies.
func TestSnapshotRelabelInstallsSparsely(t *testing.T) {
	const pid = 0
	base := seqEdges(40)
	oldSet := chunk.Label(pid, base, 10*graph.EdgeSize) // 4 chunks of 10
	st := newSnapshotStore()
	// Append two edges to the last chunk — the AddEdges shape.
	tail := append(append([]graph.Edge(nil), base[30:]...), seqEdges(2)...)
	v := st.update(pid, 3, tail, alloc64)
	newSet := oldSet.Relabel(base, 5*graph.EdgeSize) // 8 chunks of 5
	st.relabelPartition(pid, base, oldSet, newSet, nil, alloc64)

	st.mu.RLock()
	installed := 0
	for k := 0; k < newSet.NumChunks(); k++ {
		installed += len(st.versions[chunkKey(pid, k)])
	}
	st.mu.RUnlock()
	// Chunks 0..5 cover base[0:30] untouched; only chunk 6 (shifted tail
	// boundary is still aligned here) and 7 differ from base.
	if installed == 0 || installed > 2 {
		t.Fatalf("relabel installed %d version copies for a tail append, want 1-2 (sparse)", installed)
	}
	// And the observable stream is still exact.
	got := partitionStream(st, base, newSet, -1, v, pid)
	want := append(append([]graph.Edge(nil), base[:30]...), tail...)
	if !streamsEqual(got, want) {
		t.Fatal("sparse install changed the observable stream")
	}
}

// TestSnapshotRelabelNoStateIsFree verifies the remap is a no-op (and cheap)
// for partitions without snapshot state.
func TestSnapshotRelabelNoStateIsFree(t *testing.T) {
	base := seqEdges(16)
	oldSet := chunk.Label(0, base, 8*graph.EdgeSize)
	newSet := oldSet.Relabel(base, 4*graph.EdgeSize)
	st := newSnapshotStore()
	st.relabelPartition(0, base, oldSet, newSet, nil, alloc64)
	if len(st.versions) != 0 || st.overrideCount() != 0 {
		t.Fatal("relabel of a clean partition installed snapshot state")
	}
}

// TestSnapshotRelabelThenMutate checks that post-relabel operations compose:
// a mutation installed against the new labelling shadows the rebased chunk.
func TestSnapshotRelabelThenMutate(t *testing.T) {
	const pid = 0
	base := seqEdges(20)
	oldSet := chunk.Label(pid, base, 10*graph.EdgeSize) // 2 chunks
	st := newSnapshotStore()
	v := st.update(pid, 0, seqEdges(4), alloc64)
	newSet := oldSet.Relabel(base, 5*graph.EdgeSize) // 4 chunks
	st.relabelPartition(pid, base, oldSet, newSet, nil, alloc64)

	before := partitionStream(st, base, newSet, 5, v, pid)
	repl := []graph.Edge{{Src: 77, Dst: 78, Weight: 7}}
	st.mutate(5, pid, 1, repl, alloc64)
	after := partitionStream(st, base, newSet, 5, v, pid)
	// Chunk 1's slice of the rebased stream is replaced wholesale.
	wantLen := len(before) - len(st.resolveForTest(v, pid, 1)) + 1
	if len(after) != wantLen {
		t.Fatalf("post-relabel mutate: stream %d edges, want %d", len(after), wantLen)
	}
	if after[len(st.resolveForTest(v, pid, 0))] != repl[0] {
		t.Fatal("post-relabel mutate did not land at the new chunk boundary")
	}
}

// resolveForTest returns the version-resolved edges of one chunk (no
// override), empty slice when the base would be read.
func (st *snapshotStore) resolveForTest(born, pid, k int) []graph.Edge {
	if cp := st.resolve(-1, born, pid, k); cp != nil {
		return cp.edges
	}
	return nil
}

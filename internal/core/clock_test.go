package core

import (
	"sync"
	"testing"
	"time"
)

func TestVirtualClockAdvanceAndSet(t *testing.T) {
	base := time.Unix(0, 0).UTC()
	c := NewVirtualClock(base)
	if got := c.Now(); !got.Equal(base) {
		t.Fatalf("Now = %v, want %v", got, base)
	}
	if got := c.Advance(time.Hour); !got.Equal(base.Add(time.Hour)) {
		t.Fatalf("Advance returned %v", got)
	}
	if got := c.Now(); !got.Equal(base.Add(time.Hour)) {
		t.Fatalf("Now after Advance = %v", got)
	}
	at := base.Add(42 * time.Hour)
	c.Set(at)
	if got := c.Now(); !got.Equal(at) {
		t.Fatalf("Now after Set = %v, want %v", got, at)
	}
}

func TestVirtualClockConcurrentReaders(t *testing.T) {
	c := NewVirtualClock(time.Unix(0, 0).UTC())
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				_ = c.Now()
			}
		}()
	}
	for j := 0; j < 100; j++ {
		c.Advance(time.Second)
	}
	wg.Wait()
	if got := c.Now(); !got.Equal(time.Unix(100, 0).UTC()) {
		t.Fatalf("final time = %v", got)
	}
}

func TestWallClockMovesForward(t *testing.T) {
	var c Clock = WallClock{}
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("wall clock went backwards: %v then %v", a, b)
	}
}

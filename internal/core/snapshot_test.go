package core

import (
	"testing"

	"graphm/internal/graph"
)

func alloc64(size int64) uint64 { return 0 }

func edges(pairs ...uint32) []graph.Edge {
	out := make([]graph.Edge, 0, len(pairs)/2)
	for i := 0; i+1 < len(pairs); i += 2 {
		out = append(out, graph.Edge{Src: pairs[i], Dst: pairs[i+1], Weight: 1})
	}
	return out
}

func TestSnapshotMutationVisibleOnlyToOwner(t *testing.T) {
	st := newSnapshotStore()
	st.mutate(7, 0, 0, edges(1, 2), alloc64)
	if cp := st.resolve(7, 0, 0, 0); cp == nil || len(cp.edges) != 1 {
		t.Fatal("owner does not see its mutation")
	}
	if cp := st.resolve(8, 0, 0, 0); cp != nil {
		t.Fatal("other job sees a private mutation")
	}
}

func TestSnapshotUpdateVisibleOnlyToLaterJobs(t *testing.T) {
	st := newSnapshotStore()
	bornBefore := st.currentVersion()
	v := st.update(0, 3, edges(1, 2, 2, 3), alloc64)
	bornAfter := st.currentVersion()
	if bornAfter != v {
		t.Fatalf("current version %d, want %d", bornAfter, v)
	}
	if cp := st.resolve(1, bornBefore, 0, 3); cp != nil {
		t.Fatal("pre-update job sees the update")
	}
	if cp := st.resolve(2, bornAfter, 0, 3); cp == nil || len(cp.edges) != 2 {
		t.Fatal("post-update job does not see the update")
	}
}

func TestSnapshotVersionChain(t *testing.T) {
	st := newSnapshotStore()
	v1 := st.update(0, 0, edges(1, 2), alloc64)
	v2 := st.update(0, 0, edges(1, 2, 3, 4), alloc64)
	v3 := st.update(0, 0, edges(1, 2, 3, 4, 5, 6), alloc64)
	if cp := st.resolve(1, v1, 0, 0); len(cp.edges) != 1 {
		t.Fatalf("job born at v1 sees %d edges, want 1", len(cp.edges))
	}
	if cp := st.resolve(2, v2, 0, 0); len(cp.edges) != 2 {
		t.Fatalf("job born at v2 sees %d edges, want 2", len(cp.edges))
	}
	if cp := st.resolve(3, v3, 0, 0); len(cp.edges) != 3 {
		t.Fatalf("job born at v3 sees %d edges, want 3", len(cp.edges))
	}
}

func TestSnapshotMutationShadowsUpdate(t *testing.T) {
	st := newSnapshotStore()
	v := st.update(0, 0, edges(1, 2, 3, 4), alloc64)
	st.mutate(5, 0, 0, edges(9, 9), alloc64)
	cp := st.resolve(5, v, 0, 0)
	if cp == nil || len(cp.edges) != 1 || cp.edges[0].Src != 9 {
		t.Fatal("private mutation must shadow global updates for its owner")
	}
}

func TestSnapshotReleaseDropsOverrides(t *testing.T) {
	st := newSnapshotStore()
	st.mutate(1, 0, 0, edges(1, 2), alloc64)
	st.mutate(1, 0, 1, edges(3, 4), alloc64)
	if st.overrideCount() != 2 {
		t.Fatalf("overrides = %d, want 2", st.overrideCount())
	}
	st.release(1)
	if st.overrideCount() != 0 {
		t.Fatal("release did not drop overrides")
	}
	if cp := st.resolve(1, 0, 0, 0); cp != nil {
		t.Fatal("released override still resolvable")
	}
}

func TestSnapshotPrune(t *testing.T) {
	st := newSnapshotStore()
	v1 := st.update(0, 0, edges(1, 2), alloc64)
	v2 := st.update(0, 0, edges(3, 4), alloc64)
	st.pruneBefore(v2)
	// v2 must survive; v1 may be pruned (no one can observe it).
	if cp := st.resolve(1, v2, 0, 0); cp == nil || cp.edges[0].Src != 3 {
		t.Fatal("prune removed an observable version")
	}
	_ = v1
}

func TestRelabelRebuildsTable(t *testing.T) {
	tbl := relabel(edges(1, 2, 1, 3, 2, 4))
	if tbl.OutCount(1) != 2 || tbl.OutCount(2) != 1 {
		t.Fatalf("relabel counts wrong: N+(1)=%d N+(2)=%d", tbl.OutCount(1), tbl.OutCount(2))
	}
	empty := relabel(nil)
	if empty.TotalEdges() != 0 {
		t.Fatal("relabel(nil) not empty")
	}
}

package core

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"graphm/internal/chunk"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// Config tunes a GraphM instance.
type Config struct {
	// Cores bounds the number of chunks being streamed simultaneously
	// (N of Formula 1). Zero resolves to runtime.GOMAXPROCS(0); negative
	// values are rejected by NewSystem.
	Cores int
	// Workers sets the real-concurrency width of the streaming executor:
	// the number of OS goroutines that apply chunk work items each round.
	// Zero keeps the legacy driver, in which each job's goroutine streams
	// its own chunks serially — the mode every simulated-time experiment
	// runs in, so existing results are unchanged. Workers >= 1 routes
	// Submit-driven jobs (and Session.ProcessAll callers) through the
	// per-round worker pool with async partition prefetch; workers=1
	// executes the same chunk schedule serially, so simulated work counters
	// match the legacy driver while wall-clock scales with Workers beyond
	// it. Negative values are rejected by NewSystem.
	Workers int
	// DisablePrefetch turns off the executor's async partition prefetcher
	// (double-buffering the next scheduled partition's load). Only
	// meaningful when Workers >= 1; used by ablations and tests.
	DisablePrefetch bool
	// LLCBytes is C_LLC of Formula (1) — the simulated LLC capacity.
	LLCBytes int64
	// Reserved is r of Formula (1).
	Reserved int64
	// VertexPay is U_v — per-vertex job-specific bytes.
	VertexPay int64
	// AdaptiveChunking re-evaluates Formula (1) at partition barriers with
	// N = the number of jobs about to share the partition being opened,
	// re-labelling the partition (Algorithm 1) when the target chunk size
	// has drifted beyond RelabelFactor from the size its current labelling
	// assumed. Off by default: the figure experiments run the paper's
	// static, NewSystem-time sizing.
	AdaptiveChunking bool
	// RelabelFactor is the adaptive-chunking hysteresis threshold: a
	// partition is re-labelled only when target >= factor*current or
	// target*factor <= current, so attendance jitter of less than factor-x
	// never churns chunk tables. Zero resolves to 2; values below 1 are
	// rejected by NewSystem.
	RelabelFactor float64
	// PerEdgeSim routes chunk application through the reference per-edge LLC
	// accounting model (engine.Job.ApplyChunkPerEdge: one set-lock
	// acquisition and one atomic counter update per simulated access)
	// instead of the batched run-length hot path. The two models are
	// observably identical under a serial schedule — the scenario harness's
	// CheckSimEqual invariant proves it — so this exists for verification
	// and debugging, not production streaming.
	PerEdgeSim bool
	// FineSync enables the chunk-level synchronization of Section 3.4;
	// disabling it still shares buffers but lets jobs stream a partition
	// independently (the ablation of the Share-only configuration).
	FineSync bool
	// Scheduler enables the Section 4 loading-order strategy (Formula 5);
	// disabling it reproduces GridGraph-M-without of Figure 18.
	Scheduler bool
	// Cost prices counted work for the simulated-time model.
	Cost engine.CostModel
	// LoadHook, when set, is called whenever a partition is loaded from
	// disk into the shared buffer and returns extra simulated access
	// nanoseconds charged to each attending job. Distributed substrates use
	// it to price network streaming (Chaos) once per shared load.
	LoadHook func(diskBytes, attendees int) uint64
}

// DefaultConfig returns the configuration used throughout the benchmarks.
func DefaultConfig(llcBytes int64) Config {
	return Config{
		Cores:     4,
		LLCBytes:  llcBytes,
		Reserved:  llcBytes / 8,
		VertexPay: 8,
		FineSync:  true,
		Scheduler: true,
		Cost:      engine.DefaultCostModel(),
	}
}

// Stats aggregates system-wide counters exposed for the evaluation harness.
type Stats struct {
	ChunkBytes    int64
	NumChunks     int
	Rounds        int
	Suspensions   uint64 // jobs suspended waiting for a partition they need
	Resumes       uint64
	SharedLoads   uint64 // partition loads served to more than one job
	MetadataBytes int64  // chunk table overhead (Table 3 discussion)
	// MidRoundJoins counts iteration joins into a round already in flight;
	// a long-running JoinMidRound job counts once per attaching iteration,
	// not once per admission.
	MidRoundJoins uint64
	Detaches      uint64 // jobs that withdrew from sharing before converging
	// Prefetches counts async partition loads started by the executor's
	// prefetcher; PrefetchHits the ones claimed by the partition they were
	// started for; PrefetchCancels the ones invalidated before use (the
	// scheduler reordered the round, the partition lost its attendees, or
	// the round ended).
	Prefetches      uint64
	PrefetchHits    uint64
	PrefetchCancels uint64
	// PeakParallelStreams is the high-water mark of chunk applications in
	// flight at once on the executor's worker pool — the structural proof
	// of real concurrency (wall-clock speedup additionally needs the cores
	// to run them on). Zero under the legacy serial driver.
	PeakParallelStreams int
	// Relabels counts adaptive chunk re-labellings: partition-barrier
	// re-evaluations of Formula (1) whose target size drifted beyond the
	// hysteresis threshold and rewrote the partition's chunk tables.
	// RelabelSkips counts re-evaluations whose drift stayed under the
	// threshold (the hysteresis holding the line). Both zero unless
	// Config.AdaptiveChunking is on.
	Relabels     uint64
	RelabelSkips uint64
}

// Sub returns the counter deltas accumulated between old and s. Sizing
// fields that describe the graph rather than accumulate (ChunkBytes,
// NumChunks, MetadataBytes) and high-water marks (PeakParallelStreams) are
// carried over unchanged.
func (s Stats) Sub(old Stats) Stats {
	return Stats{
		ChunkBytes:          s.ChunkBytes,
		NumChunks:           s.NumChunks,
		MetadataBytes:       s.MetadataBytes,
		PeakParallelStreams: s.PeakParallelStreams,
		Rounds:              s.Rounds - old.Rounds,
		Suspensions:         s.Suspensions - old.Suspensions,
		Resumes:             s.Resumes - old.Resumes,
		SharedLoads:         s.SharedLoads - old.SharedLoads,
		MidRoundJoins:       s.MidRoundJoins - old.MidRoundJoins,
		Detaches:            s.Detaches - old.Detaches,
		Prefetches:          s.Prefetches - old.Prefetches,
		PrefetchHits:        s.PrefetchHits - old.PrefetchHits,
		PrefetchCancels:     s.PrefetchCancels - old.PrefetchCancels,
		Relabels:            s.Relabels - old.Relabels,
		RelabelSkips:        s.RelabelSkips - old.RelabelSkips,
	}
}

// System is one GraphM instance bound to an engine layout. It is the
// "GraphM Architecture" box of Figure 5: graph preprocessor (NewSystem),
// graph sharing controller (sharing/advancePartition), and synchronization
// manager (awaitChunk/chunkDone with the profiling phase).
type System struct {
	cfg    Config
	layout Layout
	g      *graph.Graph
	mem    *storage.Memory
	cache  *memsim.Cache
	cost   engine.CostModel

	parts    []*Partition
	partByID map[int]*Partition
	// sets and chunkSize hold each partition's current labelling and chunk
	// size. Static configurations write them once at NewSystem; adaptive
	// chunking rewrites them at partition barriers, so every read outside
	// NewSystem must hold mu (streaming passes instead capture the Set
	// pointer when the partition opens — Sets are immutable once built).
	sets      map[int]*chunk.Set
	chunkSize map[int]int64
	// relabelFactor is cfg.RelabelFactor resolved (0 -> 2).
	relabelFactor float64

	snaps *snapshotStore
	sem   chan struct{}

	// cores is cfg.Cores resolved (0 -> runtime.GOMAXPROCS(0)); workers is
	// cfg.Workers verbatim (0 = legacy serial driver).
	cores   int
	workers int

	mu sync.Mutex
	// Wakeups are split by concern so the chunk lockstep never wakes
	// bystanders: roundCond serves round-lifecycle waiters (jobs queued at
	// the round barrier in beginIteration, jobs suspended in sharing until a
	// partition they need opens); workCond serves the executor pool's idle
	// workers; and each curPartition carries its own cond for the chunk
	// lockstep, so chunkDone/leader events reach only that partition's
	// attendees. All three share mu. The seed used one global cond whose
	// every Broadcast woke every goroutine in the system — O(jobs) spurious
	// wakeups per chunk.
	roundCond *sync.Cond
	workCond  *sync.Cond
	err       error

	jobs       map[int]*jobState
	live       int
	readyCount int
	round      int

	roundActive bool
	order       []int
	pos         int
	cur         *curPartition

	// execQueue holds dispatched chunk work items awaiting a pool worker;
	// inFlight counts items currently being applied. Both guarded by mu
	// (see executor.go).
	execQueue []execItem
	inFlight  int

	// pf is the in-flight async load of partition pfPID, double-buffering
	// the next scheduled partition while the current one streams.
	pf    *storage.PrefetchHandle
	pfPID int

	// evolveSink, when set, receives one WAL record per evolve operation;
	// evolveMu serializes whole evolve operations (multi-partition scans
	// included) so WAL record order equals application order. Lock order:
	// evolveMu before mu; the streaming hot path never touches evolveMu.
	evolveSink storage.EvolveSink
	evolveMu   sync.Mutex
	// evolveTxns tracks logged evolve ops from append to commit resolution,
	// in installation order; failed commits unwind from the tail (see
	// rollback.go). evolveCond (on mu) wakes Checkpoint once the list drains.
	evolveTxns []*evolveTxn
	evolveCond *sync.Cond

	sharedTE float64 // T(E), profiled once per graph (Section 3.4.2)

	stats Stats
	wg    sync.WaitGroup
}

// jobState is the controller's view of one running job.
type jobState struct {
	job  *engine.Job
	born int // snapshot version at submission (Section 3.3.2)

	// joinMidRound lets the job attach to a round already in flight instead
	// of waiting at the round barrier (SessionOptions.JoinMidRound).
	joinMidRound bool
	// deferBarrier makes beginIteration return without waiting for the round
	// to form; sharing() performs the wait instead (SessionOptions.
	// GroupDriver). A scatter/gather driver holding sessions on several
	// systems must not block inside one system's round barrier while another
	// system's round still needs it to stream.
	deferBarrier bool
	// detachWanted asks the job to withdraw from sharing; the job's next
	// sharing() call (or its current suspended one) unhooks it from the
	// controller and returns nil. detached records that the unhook ran.
	detachWanted bool
	detached     bool

	ready bool
	// inRound marks that the job participates in the round in flight; a job
	// that finished its iteration early (and may already have republished
	// next-iteration active partitions at the barrier) must not be picked up
	// as an attendee of the current round's remaining partitions.
	inRound   bool
	active    map[int]bool // partition IDs active this round
	processed map[int]bool // partitions completed this round

	prof      profiler
	curSample profSample
}

// curPartition is the partition currently being streamed by the sharing
// controller, with the chunk-barrier state of the synchronization manager.
type curPartition struct {
	part    *Partition
	set     *chunk.Set
	buf     *storage.Buffer
	attend  []*jobState
	pending map[int]bool // jobs that have not yet picked the partition up

	// cond (on System.mu) is the partition's private wait list: attendees
	// blocked in awaitChunk for the lockstep window, and pool-driven
	// attendees blocked in processAll for their last chunk. Only chunk-level
	// events of this partition (and system failure / detach rewrites)
	// broadcast it, so a chunk barrier wakes its own attendees and nobody
	// else.
	cond *sync.Cond

	remaining  int // jobs that have not finished the partition
	chunkIdx   int
	leaderID   int
	leaderDone bool
	doneCount  int

	// Pool-driven attendees (executor mode): jobs whose chunk loop runs as
	// work items on the round's worker pool rather than in their own
	// goroutine. execJobs keeps arrival order for deterministic dispatch at
	// workers=1; execByID indexes it by job ID.
	execJobs []*execJob
	execByID map[int]*execJob
}

// NewSystem is GraphM's Init(): it sizes chunks with Formula (1) and labels
// every partition with Algorithm 1. The chunk tables are metadata only; the
// engine's native partition blobs are untouched.
func NewSystem(layout Layout, mem *storage.Memory, cache *memsim.Cache, cfg Config) (*System, error) {
	g := layout.Graph()
	if cfg.Cost == (engine.CostModel{}) {
		cfg.Cost = engine.DefaultCostModel()
	}
	if cfg.VertexPay <= 0 {
		cfg.VertexPay = 8
	}
	if cfg.Cores < 0 {
		return nil, fmt.Errorf("core: Cores must be >= 0 (0 means GOMAXPROCS-unbounded), got %d", cfg.Cores)
	}
	if cfg.Workers < 0 {
		return nil, fmt.Errorf("core: Workers must be >= 0 (0 means the legacy serial driver), got %d", cfg.Workers)
	}
	if cfg.RelabelFactor != 0 && cfg.RelabelFactor < 1 {
		return nil, fmt.Errorf("core: RelabelFactor must be >= 1 (0 means the default of 2), got %v", cfg.RelabelFactor)
	}
	relabelFactor := cfg.RelabelFactor
	if relabelFactor == 0 {
		relabelFactor = 2
	}
	cores := cfg.Cores
	if cores == 0 {
		cores = runtime.GOMAXPROCS(0)
	}
	sc, err := chunk.ChunkSize(chunk.SizeParams{
		NumCores:  cores,
		LLCBytes:  cfg.LLCBytes,
		GraphSize: g.SizeBytes(),
		NumV:      int64(g.NumV),
		VertexPay: cfg.VertexPay,
		Reserved:  cfg.Reserved,
	})
	if err != nil {
		return nil, err
	}
	s := &System{
		cfg:           cfg,
		layout:        layout,
		g:             g,
		mem:           mem,
		cache:         cache,
		cost:          cfg.Cost,
		parts:         layout.Partitions(),
		partByID:      make(map[int]*Partition),
		sets:          make(map[int]*chunk.Set),
		chunkSize:     make(map[int]int64),
		relabelFactor: relabelFactor,
		snaps:         newSnapshotStore(),
		jobs:          make(map[int]*jobState),
		cores:         cores,
		workers:       cfg.Workers,
		pfPID:         -1,
	}
	s.roundCond = sync.NewCond(&s.mu)
	s.workCond = sync.NewCond(&s.mu)
	s.evolveCond = sync.NewCond(&s.mu)
	if cfg.Cores > 0 && !s.execEnabled() {
		// The legacy driver throttles concurrent chunk streams with a
		// semaphore; the executor bounds real concurrency with its worker
		// count instead.
		s.sem = make(chan struct{}, cfg.Cores)
	}
	s.stats.ChunkBytes = sc
	for _, p := range s.parts {
		set := chunk.Label(p.ID, p.Edges, sc)
		s.partByID[p.ID] = p
		s.sets[p.ID] = set
		s.chunkSize[p.ID] = sc
		s.stats.NumChunks += set.NumChunks()
		s.stats.MetadataBytes += set.MetadataBytes()
	}
	return s, nil
}

// StatsSnapshot returns a copy of the system counters.
func (s *System) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Err returns the first failure observed by the controller, if any.
func (s *System) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Submit registers and starts a job under GraphM's built-in driver.
// Registration is synchronous (duplicate job IDs among live jobs are
// rejected immediately); the job joins the sharing pool at the next round
// boundary, as newly arrived jobs wait for their active graph data to be
// loaded (Figure 5, steps 1-2). Engines with their own streaming loop use
// OpenSession instead.
func (s *System) Submit(j *engine.Job) {
	sess, err := s.OpenSession(j)
	if err != nil {
		s.fail(err)
		return
	}
	go func() {
		defer sess.Close()
		// The StreamEdges loop of Figure 6(b), over the session API.
		// ProcessAll applies the partition's chunks — serially here, or as
		// work items on the round's worker pool when Config.Workers >= 1.
		for sess.BeginIteration() {
			for {
				sp := sess.Sharing()
				if sp == nil {
					break
				}
				sp.ProcessAll()
				sp.Barrier()
			}
			sess.EndIteration()
		}
	}()
}

// Run submits jobs and waits for all of them.
func (s *System) Run(jobs []*engine.Job) error {
	for _, j := range jobs {
		s.Submit(j)
	}
	return s.Wait()
}

// Wait blocks until every submitted job has finished.
func (s *System) Wait() error {
	s.wg.Wait()
	return s.Err()
}

// beginIteration implements GetActiveVertices() plus the round barrier: the
// job publishes which partitions it needs (the global table of Section
// 3.3.1) and waits for the controller to start a round that includes it —
// or, for JoinMidRound sessions, attaches to the round in flight. It returns
// false when the job has been detached and must not start the iteration.
func (s *System) beginIteration(js *jobState) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if js.detachWanted {
		s.markDetachedLocked(js)
		return false
	}
	// The active/processed sets are per-iteration scratch: allocated once
	// per job and cleared in place, so the round loop of a long-running job
	// stops churning the heap.
	if js.active == nil {
		js.active = make(map[int]bool, len(s.parts))
		js.processed = make(map[int]bool, len(s.parts))
	} else {
		clear(js.active)
		clear(js.processed)
	}
	act := js.job.Prog.Active()
	for _, p := range s.parts {
		if len(p.Edges) == 0 {
			continue
		}
		if act.AnyInRange(p.SrcLo, p.SrcHi) {
			js.active[p.ID] = true
		}
	}
	// Barrier-waiters take precedence over mid-round attachment: if any job
	// is already waiting for a fresh round, attaching would keep extending
	// the in-flight round and starve it, so the joiner queues at the
	// barrier too and the round is allowed to drain.
	if js.joinMidRound && s.roundActive && s.readyCount == 0 {
		s.attachMidRoundLocked(js)
		return true
	}
	js.ready = true
	s.readyCount++
	waitRound := s.round
	s.maybeStartRoundLocked()
	if js.deferBarrier {
		// Group-driver sessions publish their active set and leave: the
		// round forms once every job on this system is ready, and sharing()
		// parks until then. Waiting here would deadlock the shard group's
		// driver, which still owes streaming work to other shards before
		// this shard's barrier can fill.
		return true
	}
	for s.err == nil && s.round == waitRound {
		if js.detachWanted {
			// Still waiting at the barrier: withdraw before the round forms,
			// so the job is never counted as an attendee (and never billed a
			// share of loads it would not stream).
			js.ready = false
			s.readyCount--
			s.markDetachedLocked(js)
			return false
		}
		s.roundCond.Wait()
	}
	return true
}

// broadcastAllLocked wakes every waiter in the system: round-barrier and
// sharing waiters, idle pool workers, and the open partition's lockstep
// attendees. Reserved for the rare events whose effect cannot be scoped to
// one wait list — system failure and externally requested detaches.
func (s *System) broadcastAllLocked() {
	s.roundCond.Broadcast()
	s.workCond.Broadcast()
	if s.cur != nil {
		s.cur.cond.Broadcast()
	}
}

// markDetachedLocked records a job's withdrawal exactly once, whichever
// path (round barrier, iteration start, or sharing) honors it.
func (s *System) markDetachedLocked(js *jobState) {
	if js.detached {
		return
	}
	js.detached = true
	s.stats.Detaches++
}

// attachMidRoundLocked splices a newly arrived job into the round in flight —
// the paper's dynamic-concurrency scenario, where jobs submitted at arbitrary
// times join the ongoing graph stream rather than waiting for it to wrap
// around. The job starts picking partitions up at the next partition barrier;
// any of its active partitions the stream has already passed (including the
// one currently open, whose chunk lockstep cannot be joined midway) are
// appended to the round order so the job still completes a full iteration.
// Jobs that already processed an appended partition do not re-attend it:
// attendance is recomputed from the processed sets each time a partition
// opens.
func (s *System) attachMidRoundLocked(js *jobState) {
	js.ready = false
	js.inRound = true
	s.stats.MidRoundJoins++
	// Compact the consumed prefix of the round order while appending: a
	// continuously busy service can keep one round in flight indefinitely
	// (each attaching iteration extends it), and the order must not grow
	// with the round's lifetime — only with its outstanding work.
	upcoming := append([]int(nil), s.order[s.pos+1:]...)
	seen := make(map[int]bool, len(upcoming))
	for _, pid := range upcoming {
		seen[pid] = true
	}
	var missed []int
	for pid := range js.active {
		if !seen[pid] {
			missed = append(missed, pid)
		}
	}
	// Appended partitions keep a deterministic order; the Section 4 scheduler
	// only ranks partitions known at round start.
	sort.Ints(missed)
	s.order = append(upcoming, missed...)
	s.pos = -1
	// The rewrite may have changed which partition streams next: re-aim the
	// prefetcher (canceling an invalidated in-flight load).
	s.startPrefetchLocked()
	s.roundCond.Broadcast()
}

// detachLocked unhooks a job from the sharing controller mid-round. It is
// only called from sharing(), i.e. at a partition barrier from the job's
// perspective: the job is never streaming a partition at this point, so the
// only controller state that can reference it is the pending set of the
// partition currently open (opened after the job's last barrier). Removing
// the job there re-evaluates the chunk barrier and the partition's remaining
// count exactly as if the job had never attended.
func (s *System) detachLocked(js *jobState) {
	js.inRound = false
	s.markDetachedLocked(js)
	cp := s.cur
	if cp == nil || !cp.pending[js.job.ID] {
		s.roundCond.Broadcast()
		return
	}
	delete(cp.pending, js.job.ID)
	for i, a := range cp.attend {
		if a == js {
			cp.attend = append(cp.attend[:i], cp.attend[i+1:]...)
			break
		}
	}
	cp.remaining--
	if cp.remaining == 0 {
		// The job was the partition's only outstanding attendee.
		s.advancePartitionLocked()
		return
	}
	if cp.chunkIdx < len(cp.set.Chunks) {
		if cp.leaderID == js.job.ID && !cp.leaderDone {
			s.electLeaderLocked(cp)
			s.dispatchLocked(cp)
		}
		// The job never contributed chunkDone calls, so its departure may
		// satisfy the chunk barrier for the remaining attendees.
		if cp.doneCount == len(cp.attend) {
			s.advanceChunkLocked(cp)
		}
	}
	cp.cond.Broadcast()
}

// maybeStartRoundLocked starts a new round when every live job is waiting at
// the barrier and no round is in flight.
func (s *System) maybeStartRoundLocked() {
	if s.roundActive || s.live == 0 || s.readyCount < s.live {
		return
	}
	s.startRoundLocked()
}

// startRoundLocked builds the global table (partition -> attending jobs),
// orders it with the Section 4 scheduler, and opens the first partition.
func (s *System) startRoundLocked() {
	s.round++
	s.readyCount = 0
	s.stats.Rounds++
	attend := make(map[int][]int)
	jobNP := make(map[int]int)
	for id, js := range s.jobs {
		if !js.ready {
			continue
		}
		js.ready = false
		js.inRound = true
		jobNP[id] = len(js.active)
		for pid := range js.active {
			attend[pid] = append(attend[pid], id)
		}
	}
	s.order = orderPartitions(attend, jobNP, s.cfg.Scheduler)
	s.pos = -1
	s.roundActive = true
	s.startWorkersLocked()
	s.advancePartitionLocked()
	s.roundCond.Broadcast()
}

// advancePartitionLocked releases the current shared buffer and opens the
// next partition in the round's order that still has attending jobs; when
// the order is exhausted the round ends. In executor mode it claims the
// prefetched buffer when the pipeline predicted correctly, cancels it when
// the round was reordered under it, and kicks off the next prefetch before
// handing the partition to the pool.
func (s *System) advancePartitionLocked() {
	if s.cur != nil {
		s.cur.buf.Release()
		s.cur = nil
	}
	for {
		s.pos++
		if s.pos >= len(s.order) {
			s.roundActive = false
			s.cancelPrefetchLocked()
			// Round over: suspended jobs re-evaluate their iteration, and the
			// round's pool workers see roundActive drop and exit.
			s.roundCond.Broadcast()
			s.workCond.Broadcast()
			return
		}
		pid := s.order[s.pos]
		var att []*jobState
		for _, js := range s.jobs {
			if s.attendsLocked(js, pid) {
				att = append(att, js)
			}
		}
		if len(att) == 0 {
			// A prefetch for a partition whose attendees all detached or
			// finished is useless: drop it before skipping the partition.
			if s.pf != nil && s.pfPID == pid {
				s.cancelPrefetchLocked()
			}
			continue
		}
		// Deterministic attendee order: leader tie-breaks and workers=1
		// dispatch order must not depend on map iteration.
		sort.Slice(att, func(i, j int) bool { return att[i].job.ID < att[j].job.ID })
		// The partition barrier is the one point where no chunk of pid is in
		// flight under either driver, so the adaptive sizing rule may swap
		// the partition's labelling before any job captures it.
		s.maybeRelabelLocked(pid, len(att))
		part := s.partByID[pid]
		// Algorithm 2, lines 8–13: one shared buffer per partition — claimed
		// from the prefetcher when it loaded the right one, synchronously
		// otherwise.
		var (
			buf *storage.Buffer
			io  storage.IOKind
			err error
		)
		if s.pf != nil && s.pfPID == pid {
			buf, io, err = s.pf.Claim()
			s.pf, s.pfPID = nil, -1
			if err == nil {
				s.stats.PrefetchHits++
			}
		} else {
			s.cancelPrefetchLocked()
			buf, io, err = s.mem.Load(part.DiskName, part.DiskName)
		}
		if err != nil {
			s.failLocked(fmt.Errorf("core: loading partition %d: %w", pid, err))
			return
		}
		if io != storage.IONone {
			// The single disk transfer is amortized across attending jobs.
			share := s.cost.DiskNS(uint64(len(buf.Data))) / uint64(len(att))
			if s.cfg.LoadHook != nil {
				share += s.cfg.LoadHook(len(buf.Data), len(att))
			}
			for _, js := range att {
				js.job.AddMetrics(engine.Metrics{SimIONS: share})
			}
		}
		if len(att) > 1 {
			s.stats.SharedLoads++
		}
		cp := &curPartition{
			part:      part,
			set:       s.sets[pid],
			buf:       buf,
			attend:    att,
			pending:   make(map[int]bool, len(att)),
			remaining: len(att),
			execByID:  make(map[int]*execJob, len(att)),
			cond:      sync.NewCond(&s.mu),
		}
		for _, js := range att {
			cp.pending[js.job.ID] = true
			js.job.AddMetrics(engine.Metrics{PartitionLoads: 1})
		}
		s.electLeaderLocked(cp)
		s.cur = cp
		s.startPrefetchLocked()
		// Only jobs suspended in sharing care that a partition opened.
		s.roundCond.Broadcast()
		return
	}
}

// startPrefetchLocked double-buffers the pipeline: it begins the async load
// of the next partition in the round order that still has an attending job,
// canceling a stale in-flight prefetch first. No-op outside executor mode.
func (s *System) startPrefetchLocked() {
	if !s.prefetchEnabled() {
		return
	}
	next := -1
	for i := s.pos + 1; i < len(s.order); i++ {
		if s.hasAttendeeLocked(s.order[i]) {
			next = s.order[i]
			break
		}
	}
	if next < 0 {
		s.cancelPrefetchLocked()
		return
	}
	if s.pf != nil {
		if s.pfPID == next {
			return
		}
		s.cancelPrefetchLocked()
	}
	part := s.partByID[next]
	s.pf = s.mem.Prefetch(part.DiskName, part.DiskName)
	s.pfPID = next
	s.stats.Prefetches++
}

// cancelPrefetchLocked abandons the in-flight prefetch, if any, returning
// its pinned buffer to the pool.
func (s *System) cancelPrefetchLocked() {
	if s.pf == nil {
		return
	}
	s.pf.Cancel()
	s.pf, s.pfPID = nil, -1
	s.stats.PrefetchCancels++
}

// attendsLocked is the single source of truth for partition attendance:
// the job is in the round, still needs pid, and has no detach pending. The
// detach exclusion means a withdrawing job is never billed a share of a
// load opened after its request — and makes the detach's effect on
// attendance deterministic (the flag is set strictly before the open,
// wherever the job's own goroutine is). advancePartitionLocked and the
// prefetcher's hasAttendeeLocked both use it, so the prefetch target can
// never disagree with actual attendance.
func (s *System) attendsLocked(js *jobState, pid int) bool {
	return js.inRound && !js.detachWanted && js.active[pid] && !js.processed[pid]
}

// hasAttendeeLocked reports whether any job attends pid.
func (s *System) hasAttendeeLocked(pid int) bool {
	for _, js := range s.jobs {
		if s.attendsLocked(js, pid) {
			return true
		}
	}
	return false
}

// sharing is the Sharing() API of Table 1 / Algorithm 2 from the job's side:
// it blocks (suspends the job) until the controller opens a partition the
// job needs, and returns nil once the job has no further partitions this
// round.
func (s *System) sharing(js *jobState) *curPartition {
	s.mu.Lock()
	defer s.mu.Unlock()
	suspended := false
	for {
		if s.err != nil {
			js.inRound = false
			return nil
		}
		if js.ready {
			// Deferred round barrier (deferBarrier): beginIteration marked
			// the job ready without waiting, so park here until the round
			// forms (startRoundLocked flips ready to inRound). Checked
			// before the processed/active comparison — a ready job with an
			// empty active set has not attended its (empty) round yet. A
			// withdrawal here must unwind the ready count, or the barrier
			// it was counted toward never fills.
			if js.detachWanted {
				js.ready = false
				s.readyCount--
				s.markDetachedLocked(js)
				return nil
			}
			s.roundCond.Wait()
			continue
		}
		if len(js.processed) >= len(js.active) {
			// Iteration complete. Checked before detachWanted: a Detach
			// racing the final Sharing call of a converged iteration must
			// not mark the job detached — it is honored at the next
			// BeginIteration instead, and never if the job converges first.
			js.inRound = false
			return nil
		}
		if js.detachWanted {
			s.detachLocked(js)
			return nil
		}
		if !s.roundActive {
			// Round ended while the job still had unprocessed active
			// partitions: can only happen if those partitions had no edges
			// or the round order skipped them; treat as complete.
			js.inRound = false
			return nil
		}
		if s.cur != nil && s.cur.pending[js.job.ID] {
			delete(s.cur.pending, js.job.ID)
			if suspended {
				s.stats.Resumes++
			}
			js.curSample = profSample{}
			return s.cur
		}
		if !suspended {
			suspended = true
			s.stats.Suspensions++
		}
		s.roundCond.Wait()
	}
}

// awaitChunk blocks until chunk k is open for this job: either the job is
// the chunk's leader, or the leader has filled the LLC. Returns false if the
// system failed. The wait parks on the partition's own cond, so only this
// partition's chunk events (or a system-wide broadcast) wake it.
func (s *System) awaitChunk(js *jobState, cp *curPartition, k int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.err == nil && !(cp.chunkIdx == k && (cp.leaderID == js.job.ID || cp.leaderDone)) {
		cp.cond.Wait()
	}
	return s.err == nil
}

// chunkDone is the per-chunk barrier: the last attending job to finish chunk
// k advances the partition's chunk cursor and re-elects a leader.
func (s *System) chunkDone(js *jobState, cp *curPartition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.chunkDoneLocked(js, cp)
}

// chunkDoneLocked records one job's completion of the current chunk. It is
// shared by the legacy Next/Process path and the executor's work items, so
// pool-driven and self-driven sessions interoperate on one lockstep. The
// closing broadcast reaches only the partition's own wait list — jobs queued
// at the round barrier and jobs suspended on other work never wake for a
// chunk event.
func (s *System) chunkDoneLocked(js *jobState, cp *curPartition) {
	if cp.leaderID == js.job.ID {
		cp.leaderDone = true
		// The leader pulled the chunk into the LLC: followers may stream it
		// now, including any pool-driven ones awaiting dispatch.
		s.dispatchLocked(cp)
	}
	cp.doneCount++
	if cp.doneCount == len(cp.attend) {
		s.advanceChunkLocked(cp)
	}
	cp.cond.Broadcast()
}

// advanceChunkLocked closes the current chunk (every attendee done), opens
// the next one, and re-elects its leader.
func (s *System) advanceChunkLocked(cp *curPartition) {
	cp.doneCount = 0
	cp.chunkIdx++
	cp.leaderDone = false
	s.electLeaderLocked(cp)
	s.dispatchLocked(cp)
}

// electLeaderLocked picks the attending job with the highest Formula (4)
// lead time for the upcoming chunk; unprofiled jobs use optimistic defaults,
// matching the paper where new jobs are profiled on their first partitions.
func (s *System) electLeaderLocked(cp *curPartition) {
	if cp.chunkIdx >= len(cp.set.Chunks) {
		return
	}
	t := cp.set.Chunks[cp.chunkIdx]
	best := -1.0
	for _, js := range cp.attend {
		tF, tE := js.prof.tF, js.prof.tE
		if !js.prof.profiled {
			tF, tE = s.cost.WorkNS*js.job.Prog.EdgeCost(), s.cost.ScanNS
		}
		lt := chunkLeadTime(tF, tE, t, js.job.Prog.Active())
		if lt > best {
			best = lt
			cp.leaderID = js.job.ID
		}
	}
}

// streamChunk streams one chunk for one job, resolving the job's snapshot
// view (private mutations / versioned updates) before touching the LLC.
func (s *System) streamChunk(js *jobState, cp *curPartition, k int) engine.StreamStats {
	t := cp.set.Chunks[k]
	edges := cp.part.Edges[t.FirstEdge : t.FirstEdge+t.NumEdges]
	base := cp.buf.BaseAddr
	first := t.FirstEdge
	if cpy := s.snaps.resolve(js.job.ID, js.born, cp.part.ID, k); cpy != nil {
		edges, base, first = cpy.edges, cpy.addr, 0
	}
	if s.sem != nil {
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	if s.cfg.PerEdgeSim {
		return js.job.ApplyChunkPerEdge(edges, base, first, s.cache, s.cost)
	}
	return js.job.ApplyChunk(edges, base, first, s.cache, s.cost)
}

// recordSample accumulates Formula (2) observations for the profiler.
func (s *System) recordSample(js *jobState, st engine.StreamStats) {
	js.curSample.processed += float64(st.Processed)
	js.curSample.scanned += float64(st.Scanned)
	js.curSample.elapsedNS += float64(st.Elapsed.Nanoseconds())
}

// partitionBarrier is the Barrier() API of Table 1: the job declares the
// partition finished; the last job out advances the controller. The
// profiling phase consumes the partition's sample here (Section 3.4.2: the
// first two processed partitions of a new job).
func (s *System) partitionBarrier(js *jobState, cp *curPartition) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js.processed[cp.part.ID] = true
	if !js.prof.profiled {
		js.prof.observe(js.curSample, s.sharedTE)
		if js.prof.profiled && s.sharedTE == 0 && js.prof.tE > 0 {
			// T(E) is a property of the graph/machine: profiled once,
			// shared with later jobs (Section 3.4.2).
			s.sharedTE = js.prof.tE
		}
	}
	cp.remaining--
	if cp.remaining == 0 && s.cur == cp {
		// advancePartitionLocked wakes whoever the transition concerns; a
		// barrier that leaves the partition open concerns nobody else — no
		// other wait predicate reads remaining or processed.
		s.advancePartitionLocked()
	}
}

// leave deregisters a finished job, releases its snapshot overrides, and
// lets the round barrier re-evaluate.
func (s *System) leave(js *jobState) {
	s.snaps.release(js.job.ID)
	s.mu.Lock()
	delete(s.jobs, js.job.ID)
	s.live--
	// Compute the oldest snapshot version any live job can still observe.
	minBorn := s.snaps.currentVersion()
	for _, other := range s.jobs {
		if other.born < minBorn {
			minBorn = other.born
		}
	}
	s.maybeStartRoundLocked()
	s.roundCond.Broadcast()
	s.mu.Unlock()
	s.snaps.pruneBefore(minBorn)
}

func (s *System) fail(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.failLocked(err)
}

func (s *System) failLocked(err error) {
	if s.err == nil {
		s.err = err
	}
	s.roundActive = false
	s.cancelPrefetchLocked()
	s.broadcastAllLocked()
}

package core

import (
	"fmt"
	"sort"

	"graphm/internal/chunk"
	"graphm/internal/graph"
	"graphm/internal/storage"
)

// Durable-storage hooks: the sharing controller stays a pure in-memory
// engine, but when a WAL sink is registered every evolve operation appends
// one record (under s.mu, in installation order) and returns only after the
// record's group commit. Recovery is the inverse: RestorePartitions +
// RestoreOverrides rebuild the snapshot store from the last checkpoint, then
// ApplyEvolve replays WAL records through the same code paths with logging
// off. The in-memory model remains the reference; durability is layered on.

// SetEvolveSink registers the WAL sink evolve operations append to. Pass nil
// to disable logging. Call it only while no evolve operation is in flight
// (daemon startup: after recovery replay, before serving traffic).
func (s *System) SetEvolveSink(sink storage.EvolveSink) {
	s.mu.Lock()
	s.evolveSink = sink
	s.mu.Unlock()
}

// logEvolveLocked appends rec to the sink. Caller holds s.mu, which orders
// records exactly as their installations. The returned commit (nil when no
// sink is configured) must be awaited after releasing s.mu.
func (s *System) logEvolveLocked(rec storage.EvolveRecord) (func() error, error) {
	if s.evolveSink == nil {
		return nil, nil
	}
	return s.evolveSink.AppendEvolve(rec)
}

// awaitCommit resolves the (commit, err) pair logEvolveLocked produced.
func awaitCommit(commit func() error, err error) error {
	if err != nil {
		return err
	}
	if commit == nil {
		return nil
	}
	return commit()
}

// ApplyEvolve replays one recovered WAL record through the normal evolve
// path with logging disabled (replay must not re-log). Records must be
// applied in WAL order before any job runs and before SetEvolveSink.
func (s *System) ApplyEvolve(rec storage.EvolveRecord) error {
	switch rec.Op {
	case storage.EvolveAdd:
		_, err := s.addEdges(rec.Edges, false)
		return err
	case storage.EvolveAddFor:
		return s.addEdgesFor(rec.JobID, rec.Edges, false)
	case storage.EvolveRemove:
		_, _, err := s.removeEdges(multisetPred(rec.Edges), false)
		return err
	case storage.EvolveRemoveFor:
		_, err := s.removeEdgesFor(rec.JobID, multisetPred(rec.Edges), false)
		return err
	default:
		return fmt.Errorf("core: unknown evolve op %v", rec.Op)
	}
}

// multisetPred matches each recorded edge at most its recorded multiplicity,
// so replaying a predicate removal deletes exactly the edges the original
// scan deleted (the record holds the scan's concrete result, and the replay
// scan visits partitions and chunks in the same order).
func multisetPred(edges []graph.Edge) func(graph.Edge) bool {
	counts := make(map[graph.Edge]int, len(edges))
	for _, e := range edges {
		counts[e]++
	}
	return func(e graph.Edge) bool {
		if counts[e] > 0 {
			counts[e]--
			return true
		}
		return false
	}
}

// RestorePartitions rewrites every listed partition's global stream to the
// checkpointed contents, installing a version update only where the stream
// differs from the current base (a freshly built system over the same
// dataset usually matches except where evolve ops landed). Call before any
// jobs run.
func (s *System) RestorePartitions(parts map[int][]graph.Edge) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	pids := make([]int, 0, len(parts))
	for pid := range parts {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		if err := s.restorePartitionLocked(pid, parts[pid], -1); err != nil {
			return err
		}
	}
	return nil
}

// RestoreOverrides re-installs checkpointed job-private partition views,
// keyed by the jobs' original IDs (re-admission preserves IDs, so the
// re-run jobs resolve their pre-crash mutations).
func (s *System) RestoreOverrides(ovs []storage.JobOverride) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, ov := range ovs {
		if err := s.restorePartitionLocked(ov.PartID, ov.Edges, ov.JobID); err != nil {
			return err
		}
	}
	return nil
}

// restorePartitionLocked splits stream along the partition's current
// labelling and installs it — as global updates for jobID < 0, as
// job-private overrides otherwise. SplitStream gives the final chunk the
// tail, mirroring AddEdges' append-to-last-chunk placement.
func (s *System) restorePartitionLocked(pid int, stream []graph.Edge, jobID int) error {
	set, ok := s.sets[pid]
	if !ok || set.NumChunks() == 0 {
		if len(stream) == 0 {
			return nil
		}
		return fmt.Errorf("core: cannot restore %d edges into unlabelled partition %d", len(stream), pid)
	}
	for k, seg := range chunk.SplitStream(stream, set.ChunkBytes, set.NumChunks()) {
		if jobID >= 0 {
			s.snaps.mutate(jobID, pid, k, seg, s.mem.AllocAddr)
			continue
		}
		cur, err := s.chunkViewEdgesLocked(-1, pid, k)
		if err != nil {
			return err
		}
		if edgeSlicesEqual(cur, seg) {
			continue
		}
		if _, err := s.updateChunkLocked(pid, k, seg); err != nil {
			return err
		}
	}
	return nil
}

func edgeSlicesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Checkpoint captures a consistent durable snapshot through ck's two-phase
// protocol: the WAL rotation and the state capture happen atomically under
// s.mu (no evolve record can land between them, so the checkpoint plus the
// post-rotation segments always reproduce the current state), then the slow
// compression and write run without the lock.
//
// Before rotating, Checkpoint drains the evolve-transaction registry: an
// installation whose group commit is still in flight may yet be rolled back,
// and folding it into a durable snapshot would promote a potentially-failed
// record to durable state (the phantom-commit window rollback.go closes).
// WAL batches resolve within one sync interval, so the wait is bounded.
func (s *System) Checkpoint(ck storage.Checkpointer) error {
	s.mu.Lock()
	for len(s.evolveTxns) > 0 {
		s.evolveCond.Wait()
	}
	write, err := ck.BeginCheckpoint()
	if err != nil {
		s.mu.Unlock()
		return err
	}
	state := s.captureStateLocked()
	s.mu.Unlock()
	return write(state)
}

// captureStateLocked snapshots the current global stream of every labelled
// partition plus every live job-private override view.
func (s *System) captureStateLocked() storage.CheckpointState {
	state := storage.CheckpointState{
		Version:    uint64(s.snaps.currentVersion()),
		Partitions: make(map[int][]graph.Edge, len(s.parts)),
	}
	capture := func(jobID, pid int) []graph.Edge {
		set := s.sets[pid]
		var stream []graph.Edge
		for k := 0; k < set.NumChunks(); k++ {
			cur, err := s.chunkViewEdgesLocked(jobID, pid, k)
			if err != nil {
				continue
			}
			stream = append(stream, cur...)
		}
		return stream
	}
	for _, p := range s.parts {
		set, ok := s.sets[p.ID]
		if !ok || set.NumChunks() == 0 {
			continue
		}
		state.Partitions[p.ID] = capture(-1, p.ID)
	}
	for _, jp := range s.snaps.overridePartitions() {
		jobID, pid := jp[0], jp[1]
		set, ok := s.sets[pid]
		if !ok || set.NumChunks() == 0 {
			continue
		}
		state.Overrides = append(state.Overrides, storage.JobOverride{
			JobID:  jobID,
			PartID: pid,
			Edges:  capture(jobID, pid),
		})
	}
	return state
}

package core

import (
	"graphm/internal/chunk"
	"graphm/internal/engine"
)

// Profiling phase of the synchronization manager (Section 3.4.2).
//
// For a newly submitted job j, GraphM captures the execution time T_ij of
// the job's first two processed partitions together with the edge counts of
// Formula (2):
//
//	T(F_j) * Σ_{k∈C_i} Σ_{v∈V_k∩A_j} N+_k(v)  +  T(E) * Σ_{k∈C_i} Σ_{v∈V_k} N+_k(v) = T_ij
//
// i.e. processed-edge work plus scanned-edge access. Two partitions give two
// equations in the unknowns T(F_j) and T(E); T(E) is a property of the
// machine/graph, profiled once and then pinned for later jobs.

// profSample is one partition's worth of Formula (2) observations.
type profSample struct {
	processed float64 // Σ_{v∈V_k∩A_j} N+_k(v) over the partition's chunks
	scanned   float64 // Σ_{v∈V_k} N+_k(v) — every streamed edge
	elapsedNS float64 // measured T_ij
}

// profiler accumulates samples for one job and solves for T(F_j) and T(E).
type profiler struct {
	samples  []profSample
	tF       float64
	tE       float64
	profiled bool
}

// observe records one partition execution; once two samples with distinct
// workloads exist it solves the 2×2 system. sharedTE, when positive, pins
// T(E) (already profiled by an earlier job on the same graph) so a single
// sample suffices.
func (p *profiler) observe(s profSample, sharedTE float64) {
	if p.profiled {
		return
	}
	p.samples = append(p.samples, s)
	if sharedTE > 0 && s.processed > 0 {
		p.tE = sharedTE
		p.tF = (s.elapsedNS - sharedTE*s.scanned) / s.processed
		if p.tF < 0 {
			p.tF = 0
		}
		p.profiled = true
		return
	}
	if len(p.samples) < 2 {
		return
	}
	a, b := p.samples[len(p.samples)-2], p.samples[len(p.samples)-1]
	det := a.processed*b.scanned - b.processed*a.scanned
	if det == 0 {
		// Degenerate workloads (e.g. PageRank: processed == scanned); fall
		// back to attributing a fixed share to access.
		if a.scanned > 0 {
			p.tE = 0.3 * a.elapsedNS / a.scanned
			if a.processed > 0 {
				p.tF = 0.7 * a.elapsedNS / a.processed
			}
			p.profiled = true
		}
		return
	}
	p.tF = (a.elapsedNS*b.scanned - b.elapsedNS*a.scanned) / det
	p.tE = (a.processed*b.elapsedNS - b.processed*a.elapsedNS) / det
	if p.tF < 0 {
		p.tF = 0
	}
	if p.tE < 0 {
		p.tE = 0
	}
	p.profiled = true
}

// chunkLoad evaluates Formula (3): L_kj = T(F_j) * Σ_{v∈V_k∩A_j} N+_k(v),
// the job's compute load on one chunk given its active bitmap.
func chunkLoad(tF float64, t *chunk.Table, active *engine.Bitmap) float64 {
	var processed float64
	for _, e := range t.Entries {
		if active.Has(int(e.Vertex)) {
			processed += float64(e.OutCnt)
		}
	}
	return tF * processed
}

// chunkLeadTime evaluates Formula (4): the leader additionally pays
// T(E) * Σ_{v∈V_k} N+_k(v) to pull the chunk into the LLC.
func chunkLeadTime(tF, tE float64, t *chunk.Table, active *engine.Bitmap) float64 {
	return chunkLoad(tF, t, active) + tE*float64(t.TotalEdges())
}

package core_test

import (
	"math"
	"testing"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
)

// adaptiveConfig returns a config whose static sizing assumes one core, so
// any multi-job phase drifts past the 2x hysteresis immediately.
func adaptiveConfig(llc int64) core.Config {
	cfg := core.DefaultConfig(llc)
	cfg.Cores = 1
	cfg.AdaptiveChunking = true
	return cfg
}

func TestAdaptiveConfigValidation(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("v", 128, 800, 3))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range []float64{0.5, -1} {
		cfg := core.DefaultConfig(64 << 10)
		cfg.AdaptiveChunking = true
		cfg.RelabelFactor = f
		if _, err := newRigErr(t, g, cfg); err == nil {
			t.Fatalf("RelabelFactor=%v accepted", f)
		}
	}
	// Factor 1 (no hysteresis) and 0 (default) are both valid.
	for _, f := range []float64{0, 1, 3} {
		cfg := core.DefaultConfig(64 << 10)
		cfg.RelabelFactor = f
		if _, err := newRigErr(t, g, cfg); err != nil {
			t.Fatalf("RelabelFactor=%v rejected: %v", f, err)
		}
	}
}

// TestAdaptiveRelabelRampCorrect runs a concurrency ramp under adaptive
// chunking — 6 short jobs alongside 2 long ones, so attendance drops 8 -> 2
// mid-run — and checks that (a) re-labels fired in both directions, (b) the
// algorithm results are still exact, and (c) the re-labelled chunk tables
// still tile every partition.
func TestAdaptiveRelabelRampCorrect(t *testing.T) {
	cfg := adaptiveConfig(32 << 10)
	r := newRig(t, 400, 3000, 2, cfg)

	var jobs []*engine.Job
	var prs []*algorithms.PageRank
	for i := 0; i < 6; i++ {
		pr := algorithms.NewPageRank(0.85, 3)
		pr.Tolerance = 1e-12
		prs = append(prs, pr)
		jobs = append(jobs, engine.NewJob(i+1, pr, int64(i+1)))
	}
	long1 := algorithms.NewPageRank(0.7, 9)
	long1.Tolerance = 1e-12
	long2 := algorithms.NewWCC(1000)
	jobs = append(jobs, engine.NewJob(7, long1, 7), engine.NewJob(8, long2, 8))

	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.Relabels < 2 {
		t.Fatalf("relabels = %d, want >= 2 (shrink on the 8-job phase, grow after the drop)", st.Relabels)
	}
	// The ramp shrinks chunks for the 8-job phase and grows them back when
	// attendance drops, so some partition must have been re-labelled at
	// least twice — and per-partition sizes must stay consistent with their
	// epochs (epoch 0 partitions still carry the static Formula (1) size).
	maxEpoch := 0
	for pid := 0; pid < r.sys.NumPartitions(); pid++ {
		if e := r.sys.ChunkEpoch(pid); e > maxEpoch {
			maxEpoch = e
		} else if e == 0 && r.sys.PartitionChunkBytes(pid) != r.sys.ChunkBytes() {
			t.Fatalf("partition %d at epoch 0 but size %d != static %d", pid, r.sys.PartitionChunkBytes(pid), r.sys.ChunkBytes())
		}
	}
	if maxEpoch < 2 {
		t.Fatalf("max labelling epoch = %d, want >= 2 (shrink then grow)", maxEpoch)
	}

	wantPR := algorithms.ReferencePageRank(r.g, 0.85, 3)
	for _, pr := range prs {
		for v := range wantPR {
			if math.Abs(pr.Ranks()[v]-wantPR[v]) > 1e-9 {
				t.Fatalf("adaptive run diverged: rank[%d] = %g, want %g", v, pr.Ranks()[v], wantPR[v])
			}
		}
	}
	wantWCC := algorithms.ReferenceWCC(r.g)
	for v := range wantWCC {
		if long2.Labels()[v] != wantWCC[v] {
			t.Fatalf("adaptive run diverged: wcc[%d] = %d, want %d", v, long2.Labels()[v], wantWCC[v])
		}
	}

	// Re-labelled chunk tables must still tile each partition exactly.
	total := 0
	for pid := 0; pid < r.sys.NumPartitions(); pid++ {
		for k := 0; k < r.sys.ChunkCount(pid); k++ {
			edges, err := r.sys.ChunkView(-1, pid, k)
			if err != nil {
				t.Fatal(err)
			}
			total += len(edges)
		}
	}
	if total != r.g.NumEdges() {
		t.Fatalf("re-labelled chunks cover %d edges, want %d", total, r.g.NumEdges())
	}
}

// TestAdaptiveHysteresisHoldsLine: a drift under the 2x factor (4 cores
// assumed, 6 jobs attending: 1.5x) must skip, never re-label.
func TestAdaptiveHysteresisHoldsLine(t *testing.T) {
	cfg := core.DefaultConfig(64 << 10)
	cfg.Cores = 4
	cfg.AdaptiveChunking = true
	r := newRig(t, 400, 3000, 2, cfg)
	var jobs []*engine.Job
	for i := 0; i < 6; i++ {
		pr := algorithms.NewPageRank(0.85, 4)
		pr.Tolerance = 1e-12
		jobs = append(jobs, engine.NewJob(i+1, pr, int64(i+1)))
	}
	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.Relabels != 0 {
		t.Fatalf("relabels = %d, want 0 under hysteresis", st.Relabels)
	}
	if st.RelabelSkips == 0 {
		t.Fatal("no relabel evaluation was skipped — the hysteresis path never ran")
	}
	for pid := 0; pid < r.sys.NumPartitions(); pid++ {
		if r.sys.ChunkEpoch(pid) != 0 {
			t.Fatalf("partition %d re-labelled (epoch %d) despite hysteresis", pid, r.sys.ChunkEpoch(pid))
		}
	}
}

// TestAdaptiveOffNeverRelabels pins the default: without AdaptiveChunking
// the counters stay zero however the attendance moves.
func TestAdaptiveOffNeverRelabels(t *testing.T) {
	cfg := core.DefaultConfig(32 << 10)
	cfg.Cores = 1
	r := newRig(t, 300, 2000, 2, cfg)
	if err := r.sys.Run(rotationJobs(6, 11)); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.Relabels != 0 || st.RelabelSkips != 0 {
		t.Fatalf("static run recorded relabel activity: %d relabels, %d skips", st.Relabels, st.RelabelSkips)
	}
}

// TestAdaptiveMatchesStaticWork: the same workload under static and adaptive
// chunking must do identical schedule-independent work and produce
// bit-identical PageRank ranks — re-labelling changes granularity, never
// results.
func TestAdaptiveMatchesStaticWork(t *testing.T) {
	run := func(adaptive bool, workers int) ([]float64, []engine.WorkCounters) {
		cfg := core.DefaultConfig(32 << 10)
		cfg.Cores = 1
		cfg.AdaptiveChunking = adaptive
		cfg.Workers = workers
		r := newRig(t, 400, 3000, 2, cfg)
		var jobs []*engine.Job
		var prs []*algorithms.PageRank
		for i := 0; i < 5; i++ {
			pr := algorithms.NewPageRank(0.85, 4)
			pr.Tolerance = 1e-12
			prs = append(prs, pr)
			jobs = append(jobs, engine.NewJob(i+1, pr, int64(i+1)))
		}
		if err := r.sys.Run(jobs); err != nil {
			t.Fatal(err)
		}
		if adaptive {
			if st := r.sys.StatsSnapshot(); st.Relabels == 0 {
				t.Fatal("adaptive run never re-labelled — the comparison is vacuous")
			}
		}
		var work []engine.WorkCounters
		for _, j := range jobs {
			work = append(work, j.Met.Work())
		}
		return prs[0].Ranks(), work
	}
	staticRanks, staticWork := run(false, 0)
	for _, mode := range []struct {
		name    string
		workers int
	}{{"legacy driver", 0}, {"executor w=3", 3}} {
		ranks, work := run(true, mode.workers)
		for i := range staticWork {
			if work[i] != staticWork[i] {
				t.Fatalf("%s: job %d work %+v != static %+v", mode.name, i+1, work[i], staticWork[i])
			}
		}
		for v := range staticRanks {
			if ranks[v] != staticRanks[v] {
				t.Fatalf("%s: rank[%d] %v != static %v (not bit-identical)", mode.name, v, ranks[v], staticRanks[v])
			}
		}
	}
}

// TestMutateChunkCallbackMayReenterSystem guards the locking contract: the
// MutateChunk callback runs with no System lock held, so it may call public
// System methods (here ChunkView on another chunk) without deadlocking.
func TestMutateChunkCallbackMayReenterSystem(t *testing.T) {
	r := newRig(t, 200, 1600, 2, core.DefaultConfig(64<<10))
	other, err := r.sys.ChunkView(-1, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		done <- r.sys.MutateChunk(5, 0, 0, func(edges []graph.Edge) []graph.Edge {
			// Re-enter the System mid-callback — this deadlocked when the
			// callback ran under the controller mutex.
			v, err := r.sys.ChunkView(-1, 1, 0)
			if err != nil || len(v) != len(other) {
				t.Errorf("re-entrant ChunkView failed: %v (len %d vs %d)", err, len(v), len(other))
			}
			return append(edges, graph.Edge{Src: 1, Dst: 2, Weight: 1})
		})
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("MutateChunk with a re-entrant callback deadlocked")
	}
	mutated, err := r.sys.ChunkView(5, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	base, err := r.sys.ChunkView(-1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(mutated) != len(base)+1 {
		t.Fatalf("mutation lost: view has %d edges, want %d", len(mutated), len(base)+1)
	}
}

// TestAdaptiveWithEvolvedGraph exercises the snapshot rebase end to end:
// updates and a private mutation are installed, a ramp forces re-labels, and
// every observer's full partition streams must be preserved bit-for-bit.
func TestAdaptiveWithEvolvedGraph(t *testing.T) {
	cfg := adaptiveConfig(32 << 10)
	r := newRig(t, 300, 2400, 2, cfg)

	// A global update (visible to jobs submitted later) and a private
	// mutation for a job ID that never runs.
	if _, err := r.sys.AddEdges([]graph.Edge{{Src: 1, Dst: 2, Weight: 1}, {Src: 200, Dst: 3, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := r.sys.AddEdgesFor(42, []graph.Edge{{Src: 5, Dst: 6, Weight: 1}}); err != nil {
		t.Fatal(err)
	}

	stream := func(jobID int) []graph.Edge {
		var out []graph.Edge
		for pid := 0; pid < r.sys.NumPartitions(); pid++ {
			for k := 0; k < r.sys.ChunkCount(pid); k++ {
				edges, err := r.sys.ChunkView(jobID, pid, k)
				if err != nil {
					t.Fatal(err)
				}
				out = append(out, edges...)
			}
		}
		return out
	}
	baseBefore := stream(-1)
	privBefore := stream(42)

	if err := r.sys.Run(rotationJobs(8, 21)); err != nil {
		t.Fatal(err)
	}
	if st := r.sys.StatsSnapshot(); st.Relabels == 0 {
		t.Fatal("ramp forced no relabel — rebase path not exercised")
	}

	for name, pair := range map[string][2][]graph.Edge{
		"current-version view": {baseBefore, stream(-1)},
		"mutation owner view":  {privBefore, stream(42)},
	} {
		before, after := pair[0], pair[1]
		if len(before) != len(after) {
			t.Fatalf("%s: stream length %d -> %d across relabel", name, len(before), len(after))
		}
		for i := range before {
			if before[i] != after[i] {
				t.Fatalf("%s: edge %d changed across relabel", name, i)
			}
		}
	}
}

package core

import (
	"sync"
	"time"
)

// Clock abstracts the time source used wherever the runtime time-stamps job
// lifecycles (the service layer's ticket transitions, open-loop harnesses).
// Production code runs on WallClock; the replay harness substitutes a
// VirtualClock so a week-long trace advances on simulated time — queue waits
// and ticket lifetimes are measured in trace hours, not wall seconds, and a
// 168-hour replay finishes in seconds of real time.
//
// Only bookkeeping time flows through a Clock. The simulated execution-time
// model (engine.CostModel, Metrics.Sim*NS) is priced from counted work and
// never reads any clock.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
}

// WallClock is the real time.Now clock — the default everywhere.
type WallClock struct{}

// Now returns the current wall-clock time.
func (WallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced clock for simulated-time replay. It
// never moves on its own: the owner advances it between events, so any
// timestamps read from it are a pure function of the event schedule — the
// basis of the replay harness's byte-identical ticket logs. All methods are
// safe for concurrent use.
type VirtualClock struct {
	mu  sync.Mutex
	now time.Time
}

// NewVirtualClock returns a virtual clock frozen at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now returns the clock's current virtual time.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Set jumps the clock to t. Moving backwards is allowed (the clock does not
// police its owner), but replay drivers only ever move it forward.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	c.now = t
	c.mu.Unlock()
}

// Advance moves the clock forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now = c.now.Add(d)
	return c.now
}

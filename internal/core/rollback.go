package core

import "graphm/internal/graph"

// Rollback of evolve operations whose durability failed.
//
// Evolve ops install their chunk views in memory under s.mu and append the
// WAL record under the same hold, so installation order always equals record
// order and concurrent ops coalesce their fsyncs (the commit is awaited
// outside the locks). The price of that overlap used to be a phantom-commit
// window: an op whose append or group commit failed had already mutated
// memory, and the unacknowledged edges stayed visible — to degraded-mode
// reads, and to any checkpoint taken before the next restart — even though
// the client was told 503 and must re-offer the mutation.
//
// This file closes the window. Every logged evolve op captures, per touched
// chunk, the pre-install view, the post-install view and the edge delta:
//
//   - an append failure (the record never reached the WAL) is undone inline,
//     under the same s.mu hold that ordered the installation, so the failed
//     op leaves no trace at all;
//   - a commit failure is undone by resolveEvolveTxn: the op registers a
//     transaction at append time, and undos are applied strictly at the tail
//     of the installation order (a failed op beneath a still-pending one
//     waits for that op to resolve first), which is exactly reverse
//     installation order — group-committed batches fail wholesale, so the
//     failed suffix unwinds to the last durable state.
//
// The undo itself is bit-exact in the expected case: if the chunk is still
// exactly as the op left it (same labelling epoch, same view), the captured
// pre-install view is reinstalled verbatim. If the chunk moved on — an
// adaptive re-label, or a later op that committed durably after a probe
// re-armed the WAL mid-unwind — the undo falls back to multiset
// compensation (remove this op's added edges tail-first / re-append its
// removed edges), which keeps memory multiset-equal to the durable state
// even though within-chunk order may differ from a pure replay.
//
// Checkpoint interacts through the same registry: captureStateLocked must
// never fold an unresolved installation into a durable snapshot (that would
// promote a potentially-failed record to durable state), so Checkpoint
// drains the transaction list before rotating the WAL.

// chunkUndo is the captured pre-state of one chunk one evolve op touched.
type chunkUndo struct {
	jobID int // -1 = shared snapshot update; >= 0 = job-private mutation
	pid   int
	k     int
	epoch int // labelling epoch the views were captured under
	// hadOverride records whether the job already held a private copy of
	// (pid, k) before this op; if not, an exact undo deletes the override the
	// op created instead of rewriting it, keeping OverrideChunks accounting
	// identical to the op never having run.
	hadOverride bool

	prior []graph.Edge // view before this op's install
	post  []graph.Edge // view this op installed

	added   []graph.Edge // edges this op appended to (pid, k)
	removed []graph.Edge // edges this op removed from (pid, k)
}

// evolveTxn tracks one logged evolve op from append to commit resolution.
type evolveTxn struct {
	undos []chunkUndo
	state int
}

const (
	txnPending = iota
	txnCommitted
	txnFailed
)

// registerEvolveTxnLocked records a successfully appended op's undos.
// Caller holds evolveMu and s.mu; list order is installation order.
func (s *System) registerEvolveTxnLocked(undos []chunkUndo) *evolveTxn {
	txn := &evolveTxn{undos: undos}
	s.evolveTxns = append(s.evolveTxns, txn)
	return txn
}

// awaitEvolveCommit waits for an op's group commit and resolves its
// transaction: on failure the installation is rolled back before the error
// reaches the caller, so a 503'd mutation is never left visible. Call with
// no locks held.
func (s *System) awaitEvolveCommit(commit func() error, txn *evolveTxn) error {
	if commit == nil {
		return nil
	}
	err := commit()
	if txn != nil {
		s.resolveEvolveTxn(txn, err)
	}
	return err
}

// resolveEvolveTxn records the commit outcome and applies every undo that
// has become applicable.
func (s *System) resolveEvolveTxn(txn *evolveTxn, commitErr error) {
	s.evolveMu.Lock()
	defer s.evolveMu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if commitErr != nil {
		txn.state = txnFailed
	} else {
		txn.state = txnCommitted
	}
	s.processEvolveTxnsLocked()
}

// processEvolveTxnsLocked pops resolved transactions off the tail of the
// installation order, undoing the failed ones. Only ever unwinding the tail
// guarantees undos apply in exactly reverse installation order; a resolved
// transaction beneath a still-pending one waits (WAL batches resolve in
// order, so the wait is bounded by the pending op's own commit).
func (s *System) processEvolveTxnsLocked() {
	for n := len(s.evolveTxns); n > 0; n = len(s.evolveTxns) {
		txn := s.evolveTxns[n-1]
		if txn.state == txnPending {
			return
		}
		if txn.state == txnFailed {
			s.applyUndosLocked(txn.undos)
		}
		s.evolveTxns = s.evolveTxns[:n-1]
	}
	// Drained: wake a Checkpoint waiting to capture a consistent state.
	s.evolveCond.Broadcast()
}

// applyUndosLocked unwinds one op's chunk installs in reverse install order.
func (s *System) applyUndosLocked(undos []chunkUndo) {
	for i := len(undos) - 1; i >= 0; i-- {
		s.applyUndoLocked(undos[i])
	}
}

func (s *System) applyUndoLocked(u chunkUndo) {
	if u.jobID >= 0 && !s.snaps.hasOverride(u.jobID, u.pid, u.k) {
		// The job finished between install and rollback and its private
		// overrides were released; reinstalling one now would orphan it.
		// (A job that never opened a session still has its override live —
		// mutations don't require a session — so liveness in s.jobs is not
		// the right test.)
		return
	}
	cur, err := s.chunkViewEdgesLocked(u.jobID, u.pid, u.k)
	epoch, ok := s.chunkEpochLocked(u.pid)
	if err == nil && ok && epoch == u.epoch && edgeSlicesEqual(cur, u.post) {
		// The chunk is exactly as this op left it: reinstall the captured
		// pre-install view bit-for-bit.
		if u.jobID < 0 {
			if _, err := s.updateChunkLocked(u.pid, u.k, u.prior); err == nil {
				return
			}
		} else {
			if u.hadOverride {
				s.snaps.mutate(u.jobID, u.pid, u.k, u.prior, s.mem.AllocAddr)
			} else {
				// The op created this override; deleting it restores both the
				// view (back to the shared base) and the override count.
				s.snaps.dropOverride(u.jobID, u.pid, u.k)
			}
			return
		}
	}
	// The chunk moved on (re-label, or a later install landed on top):
	// compensate at the multiset level instead.
	if len(u.added) > 0 {
		s.removeTailMultisetLocked(u.jobID, u.pid, u.added)
	}
	if len(u.removed) > 0 {
		s.appendLastChunkLocked(u.jobID, u.pid, u.removed)
	}
}

// removeTailMultisetLocked deletes one instance of each given edge from the
// partition's view, scanning chunks and edges from the tail — additions
// append at the tail, so in the uncontended case this strips exactly the
// appended suffix.
func (s *System) removeTailMultisetLocked(jobID, pid int, edges []graph.Edge) {
	counts := make(map[graph.Edge]int, len(edges))
	for _, e := range edges {
		counts[e]++
	}
	remaining := len(edges)
	set, ok := s.sets[pid]
	if !ok {
		return
	}
	for k := set.NumChunks() - 1; k >= 0 && remaining > 0; k-- {
		cur, err := s.chunkViewEdgesLocked(jobID, pid, k)
		if err != nil {
			continue
		}
		kept := make([]graph.Edge, 0, len(cur))
		for i := len(cur) - 1; i >= 0; i-- {
			e := cur[i]
			if remaining > 0 && counts[e] > 0 {
				counts[e]--
				remaining--
				continue
			}
			kept = append(kept, e)
		}
		if len(kept) == len(cur) {
			continue
		}
		// kept was collected back-to-front; restore stream order.
		for i, j := 0, len(kept)-1; i < j; i, j = i+1, j-1 {
			kept[i], kept[j] = kept[j], kept[i]
		}
		if jobID < 0 {
			s.updateChunkLocked(pid, k, kept) //nolint:errcheck // chunk existence was just validated
		} else {
			s.snaps.mutate(jobID, pid, k, kept, s.mem.AllocAddr)
		}
	}
}

// appendLastChunkLocked re-appends edges to the partition's final chunk —
// the same placement AddEdges uses.
func (s *System) appendLastChunkLocked(jobID, pid int, edges []graph.Edge) {
	k, err := s.lastChunkLocked(pid)
	if err != nil {
		return
	}
	cur, err := s.chunkViewEdgesLocked(jobID, pid, k)
	if err != nil {
		return
	}
	merged := append(append([]graph.Edge(nil), cur...), edges...)
	if jobID < 0 {
		s.updateChunkLocked(pid, k, merged) //nolint:errcheck // chunk existence was just validated
	} else {
		s.snaps.mutate(jobID, pid, k, merged, s.mem.AllocAddr)
	}
}

package core_test

import (
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
)

func TestAddEdgesVisibleOnlyToLaterJobs(t *testing.T) {
	g := graph.GenerateChain("chain", 50)
	r := newRigWithGraph(t, g, 2, core.DefaultConfig(64<<10))

	before := algorithms.NewBFS(0)
	if err := r.sys.Run([]*engine.Job{engine.NewJob(1, before, 1)}); err != nil {
		t.Fatal(err)
	}
	if before.Dist()[49] != 49 {
		t.Fatalf("pre-update dist = %d, want 49", before.Dist()[49])
	}

	if _, err := r.sys.AddEdges([]graph.Edge{{Src: 0, Dst: 49, Weight: 1}}); err != nil {
		t.Fatal(err)
	}

	after := algorithms.NewBFS(0)
	if err := r.sys.Run([]*engine.Job{engine.NewJob(2, after, 2)}); err != nil {
		t.Fatal(err)
	}
	if after.Dist()[49] != 1 {
		t.Fatalf("post-update dist = %d, want 1 (shortcut)", after.Dist()[49])
	}
}

func TestAddEdgesRejectsOutOfRange(t *testing.T) {
	g := graph.GenerateChain("chain", 10)
	r := newRigWithGraph(t, g, 1, core.DefaultConfig(64<<10))
	if _, err := r.sys.AddEdges([]graph.Edge{{Src: 0, Dst: 99, Weight: 1}}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestRemoveEdgesUpdate(t *testing.T) {
	g := graph.GenerateChain("chain", 20)
	r := newRigWithGraph(t, g, 2, core.DefaultConfig(64<<10))

	// Cut the chain at 10->11 for future jobs.
	_, removed, err := r.sys.RemoveEdges(func(e graph.Edge) bool {
		return e.Src == 10 && e.Dst == 11
	})
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	bfs := algorithms.NewBFS(0)
	if err := r.sys.Run([]*engine.Job{engine.NewJob(1, bfs, 1)}); err != nil {
		t.Fatal(err)
	}
	if bfs.Dist()[10] != 10 {
		t.Fatalf("dist[10] = %d, want 10", bfs.Dist()[10])
	}
	if bfs.Dist()[11] != algorithms.Unreached {
		t.Fatalf("dist[11] = %d, want unreached after cut", bfs.Dist()[11])
	}
}

func TestRemoveEdgesForIsPrivate(t *testing.T) {
	g := graph.GenerateChain("chain", 12)
	r := newRigWithGraph(t, g, 1, core.DefaultConfig(64<<10))

	removed, err := r.sys.RemoveEdgesFor(7, func(e graph.Edge) bool { return e.Src == 5 })
	if err != nil {
		t.Fatal(err)
	}
	if removed != 1 {
		t.Fatalf("removed = %d, want 1", removed)
	}
	// Job 7 sees the cut; a fresh job does not.
	mutBFS := algorithms.NewBFS(0)
	j7 := engine.NewJob(7, mutBFS, 7)
	cleanBFS := algorithms.NewBFS(0)
	j8 := engine.NewJob(8, cleanBFS, 8)
	r.sys.Submit(j7)
	r.sys.Submit(j8)
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	if mutBFS.Dist()[6] != algorithms.Unreached {
		t.Fatalf("mutated job reached 6 at %d", mutBFS.Dist()[6])
	}
	if cleanBFS.Dist()[6] != 6 {
		t.Fatalf("clean job dist[6] = %d, want 6", cleanBFS.Dist()[6])
	}
}

func TestAddEdgesForPrivateShortcut(t *testing.T) {
	g := graph.GenerateChain("chain", 30)
	r := newRigWithGraph(t, g, 2, core.DefaultConfig(64<<10))
	if err := r.sys.AddEdgesFor(3, []graph.Edge{{Src: 0, Dst: 29, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	withCut := algorithms.NewBFS(0)
	without := algorithms.NewBFS(0)
	j3, j4 := engine.NewJob(3, withCut, 3), engine.NewJob(4, without, 4)
	r.sys.Submit(j3)
	r.sys.Submit(j4)
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	if withCut.Dist()[29] != 1 {
		t.Fatalf("private shortcut not seen: dist = %d", withCut.Dist()[29])
	}
	if without.Dist()[29] != 29 {
		t.Fatalf("shortcut leaked: dist = %d", without.Dist()[29])
	}
}

func TestSequentialUpdatesChain(t *testing.T) {
	// Repeated AddEdges build a version chain; each successive job sees one
	// more shortcut level.
	g := graph.GenerateChain("chain", 40)
	r := newRigWithGraph(t, g, 1, core.DefaultConfig(64<<10))
	for i := 0; i < 3; i++ {
		dst := graph.VertexID(39 - i*10)
		if _, err := r.sys.AddEdges([]graph.Edge{{Src: 0, Dst: dst, Weight: 1}}); err != nil {
			t.Fatal(err)
		}
		bfs := algorithms.NewBFS(0)
		if err := r.sys.Run([]*engine.Job{engine.NewJob(100+i, bfs, int64(i))}); err != nil {
			t.Fatal(err)
		}
		if bfs.Dist()[dst] != 1 {
			t.Fatalf("round %d: dist[%d] = %d, want 1", i, dst, bfs.Dist()[dst])
		}
	}
	if v := r.sys.SnapshotVersion(); v < 3 {
		t.Fatalf("snapshot version = %d, want >= 3", v)
	}
}

package core

import (
	"fmt"
	"sort"

	"graphm/internal/graph"
	"graphm/internal/storage"
)

// Edge-level evolving-graph operations (Section 3.3.2 and the paper's
// third future-work item). MutateChunk/UpdateChunk operate on whole chunks;
// the helpers here accept plain edge lists and locate the affected chunks
// themselves, so callers evolve the graph without knowing the chunk layout:
//
//	sys.AddEdges(edges)                 // visible to jobs submitted later
//	sys.RemoveEdges(pred)               // likewise
//	sys.AddEdgesFor(jobID, edges)       // private mutation for one job
//
// Additions are appended to the chunk whose source-vertex range covers the
// edge's source (the engine's streaming order is preserved: new edges are
// streamed with their partition). Removals rewrite every chunk containing a
// matching edge.

// locate returns the partition whose source range covers v, preferring the
// partition that also already holds edges of v.
func (s *System) locate(v graph.VertexID) (*Partition, error) {
	var fallback *Partition
	for _, p := range s.parts {
		if int(v) >= p.SrcLo && int(v) < p.SrcHi {
			if len(p.Edges) > 0 {
				return p, nil
			}
			if fallback == nil {
				fallback = p
			}
		}
	}
	if fallback != nil {
		return fallback, nil
	}
	return nil, fmt.Errorf("core: no partition covers vertex %d", v)
}

// lastChunkLocked returns the index of the partition's final chunk under its
// current labelling, or an error for an unlabelled/empty partition. Caller
// holds s.mu.
func (s *System) lastChunkLocked(pid int) (int, error) {
	set, ok := s.sets[pid]
	if !ok || set.NumChunks() == 0 {
		return 0, fmt.Errorf("core: partition %d has no chunks", pid)
	}
	return set.NumChunks() - 1, nil
}

// AddEdges installs new edges as a graph *update*: jobs submitted after the
// call observe them; running jobs keep their snapshot. It returns the new
// snapshot version. The whole multi-chunk installation runs atomically
// against adaptive re-labelling, and — when a WAL sink is configured — the
// call returns only once its record is durable.
func (s *System) AddEdges(edges []graph.Edge) (int, error) {
	return s.addEdges(edges, true)
}

func (s *System) addEdges(edges []graph.Edge, log bool) (int, error) {
	groups, err := s.groupBySourcePartition(edges)
	if err != nil {
		return 0, err
	}
	// The installation and the WAL append run under the locks; the commit
	// wait runs after BOTH are released. Record order is fixed at append
	// time (under s.mu), so the next evolve op can install and append while
	// this one's batch is still fsyncing — that overlap is what lets the
	// WAL coalesce concurrent evolve streams into shared syncs. A failed
	// append is undone inline; a failed commit rolls back through the
	// transaction registered here (see rollback.go).
	version, commit, txn, err := func() (int, func() error, *evolveTxn, error) {
		s.evolveMu.Lock()
		defer s.evolveMu.Unlock()
		s.mu.Lock()
		defer s.mu.Unlock()
		capture := log && s.evolveSink != nil
		var undos []chunkUndo
		version := s.snaps.currentVersion()
		for _, pid := range sortedPartitionIDs(groups) {
			add := groups[pid]
			k, err := s.lastChunkLocked(pid)
			if err != nil {
				s.applyUndosLocked(undos)
				return 0, nil, nil, err
			}
			cur, err := s.chunkViewEdgesLocked(-1, pid, k)
			if err != nil {
				s.applyUndosLocked(undos)
				return 0, nil, nil, err
			}
			merged := append(append([]graph.Edge(nil), cur...), add...)
			epoch, _ := s.chunkEpochLocked(pid)
			version, err = s.updateChunkLocked(pid, k, merged)
			if err != nil {
				s.applyUndosLocked(undos)
				return 0, nil, nil, err
			}
			if capture {
				undos = append(undos, chunkUndo{jobID: -1, pid: pid, k: k, epoch: epoch,
					prior: cur, post: merged, added: add})
			}
		}
		if !log {
			return version, nil, nil, nil
		}
		commit, logErr := s.logEvolveLocked(storage.EvolveRecord{Op: storage.EvolveAdd, Edges: edges})
		if logErr != nil {
			// The record never reached the WAL: undo under the same hold that
			// ordered the installation, so the refused op leaves no trace.
			s.applyUndosLocked(undos)
			return 0, nil, nil, logErr
		}
		var txn *evolveTxn
		if commit != nil {
			txn = s.registerEvolveTxnLocked(undos)
		}
		return version, commit, txn, nil
	}()
	if err != nil {
		return 0, err
	}
	if err := s.awaitEvolveCommit(commit, txn); err != nil {
		return 0, err
	}
	return version, nil
}

// AddEdgesFor installs new edges as a *mutation* private to jobID.
func (s *System) AddEdgesFor(jobID int, edges []graph.Edge) error {
	return s.addEdgesFor(jobID, edges, true)
}

func (s *System) addEdgesFor(jobID int, edges []graph.Edge, log bool) error {
	groups, err := s.groupBySourcePartition(edges)
	if err != nil {
		return err
	}
	commit, txn, err := func() (func() error, *evolveTxn, error) {
		s.evolveMu.Lock()
		defer s.evolveMu.Unlock()
		s.mu.Lock()
		defer s.mu.Unlock()
		capture := log && s.evolveSink != nil
		var undos []chunkUndo
		for _, pid := range sortedPartitionIDs(groups) {
			k, err := s.lastChunkLocked(pid)
			if err != nil {
				s.applyUndosLocked(undos)
				return nil, nil, err
			}
			add := groups[pid]
			cur, err := s.chunkViewEdgesLocked(jobID, pid, k)
			if err != nil {
				s.applyUndosLocked(undos)
				return nil, nil, err
			}
			merged := append(append([]graph.Edge(nil), cur...), add...)
			epoch, _ := s.chunkEpochLocked(pid)
			had := s.snaps.hasOverride(jobID, pid, k)
			s.snaps.mutate(jobID, pid, k, merged, s.mem.AllocAddr)
			if capture {
				undos = append(undos, chunkUndo{jobID: jobID, pid: pid, k: k, epoch: epoch,
					hadOverride: had, prior: cur, post: merged, added: add})
			}
		}
		if !log {
			return nil, nil, nil
		}
		commit, logErr := s.logEvolveLocked(storage.EvolveRecord{Op: storage.EvolveAddFor, JobID: jobID, Edges: edges})
		if logErr != nil {
			s.applyUndosLocked(undos)
			return nil, nil, logErr
		}
		var txn *evolveTxn
		if commit != nil {
			txn = s.registerEvolveTxnLocked(undos)
		}
		return commit, txn, nil
	}()
	if err != nil {
		return err
	}
	return s.awaitEvolveCommit(commit, txn)
}

// RemoveEdges installs an update deleting every edge matching pred; it
// returns the new snapshot version and the number of edges removed. The
// scan locks the controller one partition at a time — per-partition
// consistency is all adaptive re-labelling needs (a partition's labelling
// only changes at its own open) — so running jobs' chunk lockstep proceeds
// between partitions instead of stalling for the whole O(|E|) pass. pred
// runs under that per-partition lock: it must be a pure predicate and must
// not call back into the System.
func (s *System) RemoveEdges(pred func(graph.Edge) bool) (version, removed int, err error) {
	return s.removeEdges(pred, true)
}

func (s *System) removeEdges(pred func(graph.Edge) bool, log bool) (version, removed int, err error) {
	var commit func() error
	var txn *evolveTxn
	version, removed, commit, txn, err = func() (version, removed int, commit func() error, txn *evolveTxn, err error) {
		s.evolveMu.Lock()
		defer s.evolveMu.Unlock()
		s.mu.Lock()
		version = s.snaps.currentVersion()
		collect := log && s.evolveSink != nil
		s.mu.Unlock()
		// The WAL record holds the concrete removed multiset, not the
		// predicate: replay then needs no predicate and is deterministic by
		// construction.
		var removedEdges []graph.Edge
		var undos []chunkUndo
		for _, p := range s.parts {
			s.mu.Lock()
			set := s.sets[p.ID]
			for k := 0; k < set.NumChunks(); k++ {
				cur, err := s.chunkViewEdgesLocked(-1, p.ID, k)
				if err != nil {
					s.applyUndosLocked(undos)
					s.mu.Unlock()
					return 0, 0, nil, nil, err
				}
				kept := make([]graph.Edge, 0, len(cur))
				var chunkRemoved []graph.Edge
				for _, e := range cur {
					if pred(e) {
						removed++
						if collect {
							removedEdges = append(removedEdges, e)
							chunkRemoved = append(chunkRemoved, e)
						}
					} else {
						kept = append(kept, e)
					}
				}
				if len(kept) == len(cur) {
					continue
				}
				epoch, _ := s.chunkEpochLocked(p.ID)
				version, err = s.updateChunkLocked(p.ID, k, kept)
				if err != nil {
					s.applyUndosLocked(undos)
					s.mu.Unlock()
					return 0, 0, nil, nil, err
				}
				if collect {
					undos = append(undos, chunkUndo{jobID: -1, pid: p.ID, k: k, epoch: epoch,
						prior: cur, post: kept, removed: chunkRemoved})
				}
			}
			s.mu.Unlock()
		}
		if collect && len(removedEdges) > 0 {
			s.mu.Lock()
			commit, err = s.logEvolveLocked(storage.EvolveRecord{Op: storage.EvolveRemove, Edges: removedEdges})
			if err != nil {
				s.applyUndosLocked(undos)
				s.mu.Unlock()
				return 0, 0, nil, nil, err
			}
			if commit != nil {
				txn = s.registerEvolveTxnLocked(undos)
			}
			s.mu.Unlock()
		}
		return version, removed, commit, txn, nil
	}()
	if err != nil {
		return 0, 0, err
	}
	if err := s.awaitEvolveCommit(commit, txn); err != nil {
		return 0, 0, err
	}
	return version, removed, nil
}

// RemoveEdgesFor applies the deletion as a job-private mutation. Like
// RemoveEdges it locks per partition, and pred must not call back into the
// System.
func (s *System) RemoveEdgesFor(jobID int, pred func(graph.Edge) bool) (removed int, err error) {
	return s.removeEdgesFor(jobID, pred, true)
}

func (s *System) removeEdgesFor(jobID int, pred func(graph.Edge) bool, log bool) (removed int, err error) {
	var commit func() error
	var txn *evolveTxn
	removed, commit, txn, err = func() (removed int, commit func() error, txn *evolveTxn, err error) {
		s.evolveMu.Lock()
		defer s.evolveMu.Unlock()
		s.mu.Lock()
		collect := log && s.evolveSink != nil
		s.mu.Unlock()
		var removedEdges []graph.Edge
		var undos []chunkUndo
		for _, p := range s.parts {
			s.mu.Lock()
			set := s.sets[p.ID]
			for k := 0; k < set.NumChunks(); k++ {
				cur, err := s.chunkViewEdgesLocked(jobID, p.ID, k)
				if err != nil {
					s.applyUndosLocked(undos)
					s.mu.Unlock()
					return 0, nil, nil, err
				}
				// pred runs exactly once per edge: replay predicates are
				// stateful multisets, so a second evaluation would see
				// consumed counts. The view cannot change between this scan
				// and the mutate below — s.mu is held throughout — so
				// installing the precomputed kept slice is equivalent to
				// re-filtering.
				kept := make([]graph.Edge, 0, len(cur))
				var chunkRemoved []graph.Edge
				for _, e := range cur {
					if pred(e) {
						if collect {
							removedEdges = append(removedEdges, e)
							chunkRemoved = append(chunkRemoved, e)
						}
					} else {
						kept = append(kept, e)
					}
				}
				if len(kept) == len(cur) {
					continue
				}
				removed += len(cur) - len(kept)
				epoch, _ := s.chunkEpochLocked(p.ID)
				had := s.snaps.hasOverride(jobID, p.ID, k)
				s.snaps.mutate(jobID, p.ID, k, kept, s.mem.AllocAddr)
				if collect {
					undos = append(undos, chunkUndo{jobID: jobID, pid: p.ID, k: k, epoch: epoch,
						hadOverride: had, prior: cur, post: kept, removed: chunkRemoved})
				}
			}
			s.mu.Unlock()
		}
		if collect && len(removedEdges) > 0 {
			s.mu.Lock()
			commit, err = s.logEvolveLocked(storage.EvolveRecord{Op: storage.EvolveRemoveFor, JobID: jobID, Edges: removedEdges})
			if err != nil {
				s.applyUndosLocked(undos)
				s.mu.Unlock()
				return 0, nil, nil, err
			}
			if commit != nil {
				txn = s.registerEvolveTxnLocked(undos)
			}
			s.mu.Unlock()
		}
		return removed, commit, txn, nil
	}()
	if err != nil {
		return 0, err
	}
	if err := s.awaitEvolveCommit(commit, txn); err != nil {
		return 0, err
	}
	return removed, nil
}

// sortedPartitionIDs fixes the installation order of a multi-partition
// update/mutation. Iterating the group map directly let Go's randomized map
// order decide which partition's copy-on-write chunk got which simulated
// address — and since addresses feed the LLC set indexing, the same script
// could count one access a hit in one run and a miss in the next. Found by
// the scenario fuzzer (corpus seed multi-partition-update); partition order
// must be deterministic.
func sortedPartitionIDs(groups map[int][]graph.Edge) []int {
	pids := make([]int, 0, len(groups))
	for pid := range groups {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	return pids
}

// groupBySourcePartition validates endpoints and buckets edges by the
// partition covering their source.
func (s *System) groupBySourcePartition(edges []graph.Edge) (map[int][]graph.Edge, error) {
	groups := make(map[int][]graph.Edge)
	for _, e := range edges {
		if int(e.Src) >= s.g.NumV || int(e.Dst) >= s.g.NumV {
			return nil, fmt.Errorf("core: edge %d->%d outside vertex range [0,%d)", e.Src, e.Dst, s.g.NumV)
		}
		p, err := s.locate(e.Src)
		if err != nil {
			return nil, err
		}
		groups[p.ID] = append(groups[p.ID], e)
	}
	return groups, nil
}

package core

// SharedTE exposes the profiled per-edge access cost T(E) to external tests.
func (s *System) SharedTE() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sharedTE
}

package core_test

import (
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// Edge-case coverage for the controller: degenerate graphs and layouts.

func TestSinglePartitionGraph(t *testing.T) {
	g := graph.GenerateChain("single", 64)
	r := newRigWithGraph(t, g, 1, core.DefaultConfig(64<<10))
	bfs := algorithms.NewBFS(0)
	if err := r.sys.Run([]*engine.Job{engine.NewJob(1, bfs, 1)}); err != nil {
		t.Fatal(err)
	}
	if bfs.Dist()[63] != 63 {
		t.Fatalf("dist = %d, want 63", bfs.Dist()[63])
	}
}

func TestLayoutWithEmptyPartitions(t *testing.T) {
	// A layout where most partitions are empty: the controller must skip
	// them without deadlocking.
	g := graph.MustNew("sparse", 100, []graph.Edge{{Src: 0, Dst: 99, Weight: 1}})
	disk := storage.NewDisk()
	var parts []*core.Partition
	for i := 0; i < 10; i++ {
		var edges []graph.Edge
		if i == 0 {
			edges = g.Edges
		}
		name := "sparse/p" + string(rune('0'+i))
		disk.Write(name, graph.EncodeEdges(edges))
		parts = append(parts, &core.Partition{
			ID: i, SrcLo: i * 10, SrcHi: (i + 1) * 10, DiskName: name, Edges: edges,
		})
	}
	mem := storage.NewMemory(disk, 1<<20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	sys, err := core.NewSystem(core.NewLayout(g, parts), mem, cache, core.DefaultConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	bfs := algorithms.NewBFS(0)
	if err := sys.Run([]*engine.Job{engine.NewJob(1, bfs, 1)}); err != nil {
		t.Fatal(err)
	}
	if bfs.Dist()[99] != 1 {
		t.Fatalf("dist[99] = %d, want 1", bfs.Dist()[99])
	}
}

func TestJobWithNoActiveWork(t *testing.T) {
	// A BFS rooted at a vertex with no out-edges terminates after one
	// no-op iteration without hanging the round barrier.
	g := graph.MustNew("dead", 4, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	r := newRigWithGraph(t, g, 1, core.DefaultConfig(64<<10))
	bfs := algorithms.NewBFS(3) // vertex 3 has no out-edges
	pr := algorithms.NewPageRank(0.85, 3)
	pr.Tolerance = 1e-12
	jobs := []*engine.Job{engine.NewJob(1, bfs, 1), engine.NewJob(2, pr, 2)}
	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	if bfs.Dist()[3] != 0 || bfs.Dist()[0] != algorithms.Unreached {
		t.Fatalf("dist = %v", bfs.Dist())
	}
}

func TestZeroJobsRunReturns(t *testing.T) {
	r := newRig(t, 100, 500, 2, core.DefaultConfig(64<<10))
	if err := r.sys.Run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestMissingDiskBlobFailsCleanly(t *testing.T) {
	// A layout referencing a blob that was never written must surface an
	// error through Wait, not hang.
	g := graph.MustNew("missing", 10, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	disk := storage.NewDisk() // nothing written
	parts := []*core.Partition{{ID: 0, SrcLo: 0, SrcHi: 10, DiskName: "nope", Edges: g.Edges}}
	mem := storage.NewMemory(disk, 1<<20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	sys, err := core.NewSystem(core.NewLayout(g, parts), mem, cache, core.DefaultConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	bfs := algorithms.NewBFS(0)
	if err := sys.Run([]*engine.Job{engine.NewJob(1, bfs, 1)}); err == nil {
		t.Fatal("expected missing-blob error")
	}
}

func TestChunkViewErrors(t *testing.T) {
	r := newRig(t, 100, 500, 2, core.DefaultConfig(64<<10))
	if _, err := r.sys.ChunkView(-1, 999, 0); err == nil {
		t.Fatal("expected unknown-partition error")
	}
	if _, err := r.sys.ChunkView(-1, 0, 999); err == nil {
		t.Fatal("expected unknown-chunk error")
	}
	if _, err := r.sys.UpdateChunk(999, 0, nil); err == nil {
		t.Fatal("expected update error for unknown partition")
	}
	if err := r.sys.MutateChunk(1, 999, 0, func(e []graph.Edge) []graph.Edge { return e }); err == nil {
		t.Fatal("expected mutate error for unknown partition")
	}
}

func TestNewSystemRejectsBadConfig(t *testing.T) {
	g := graph.GenerateChain("cfg", 10)
	disk := storage.NewDisk()
	parts := []*core.Partition{{ID: 0, SrcLo: 0, SrcHi: 10, DiskName: "p", Edges: g.Edges}}
	disk.Write("p", graph.EncodeEdges(g.Edges))
	mem := storage.NewMemory(disk, 1<<20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	cfg := core.DefaultConfig(64 << 10)
	cfg.Reserved = 128 << 10 // reserved > LLC
	if _, err := core.NewSystem(core.NewLayout(g, parts), mem, cache, cfg); err == nil {
		t.Fatal("expected Formula-1 config error")
	}
}

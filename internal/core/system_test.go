package core_test

import (
	"math"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// testRig builds a grid + memory + cache + GraphM system over an R-MAT graph.
type testRig struct {
	g     *graph.Graph
	grid  *gridgraph.Grid
	disk  *storage.Disk
	mem   *storage.Memory
	cache *memsim.Cache
	sys   *core.System
}

func newRig(t *testing.T, numV, numE, p int, cfg core.Config) *testRig {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("t", numV, numE, 17))
	if err != nil {
		t.Fatal(err)
	}
	return newRigWithGraph(t, g, p, cfg)
}

func newRigWithGraph(t *testing.T, g *graph.Graph, p int, cfg core.Config) *testRig {
	t.Helper()
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, p, disk)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemory(disk, 64<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(cfg.LLCBytes))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(grid.AsLayout(), mem, cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return &testRig{g: g, grid: grid, disk: disk, mem: mem, cache: cache, sys: sys}
}

func TestInitLabelsAllEdges(t *testing.T) {
	r := newRig(t, 512, 4000, 4, core.DefaultConfig(64<<10))
	total := 0
	for pid := 0; pid < r.sys.NumPartitions(); pid++ {
		for k := 0; k < r.sys.ChunkCount(pid); k++ {
			edges, err := r.sys.ChunkView(-1, pid, k)
			if err != nil {
				t.Fatal(err)
			}
			total += len(edges)
		}
	}
	if total != r.g.NumEdges() {
		t.Fatalf("chunks cover %d edges, want %d", total, r.g.NumEdges())
	}
	if r.sys.ChunkBytes() <= 0 {
		t.Fatal("chunk size not computed")
	}
}

func TestSingleJobPageRankCorrect(t *testing.T) {
	r := newRig(t, 512, 4000, 4, core.DefaultConfig(64<<10))
	pr := algorithms.NewPageRank(0.85, 8)
	pr.Tolerance = 1e-12
	j := engine.NewJob(1, pr, 100)
	if err := r.sys.Run([]*engine.Job{j}); err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferencePageRank(r.g, 0.85, 8)
	for v := range want {
		if math.Abs(pr.Ranks()[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], want[v])
		}
	}
	if !j.Done || j.Met.Iterations != 8 {
		t.Fatalf("job not completed properly: done=%v iters=%d", j.Done, j.Met.Iterations)
	}
}

func TestConcurrentJobsAllCorrect(t *testing.T) {
	r := newRig(t, 600, 5000, 4, core.DefaultConfig(64<<10))

	pr := algorithms.NewPageRank(0.6, 6)
	pr.Tolerance = 1e-12
	wcc := algorithms.NewWCC(1000)
	bfs := algorithms.NewBFS(3)
	sssp := algorithms.NewSSSP(7)

	jobs := []*engine.Job{
		engine.NewJob(1, pr, 1),
		engine.NewJob(2, wcc, 2),
		engine.NewJob(3, bfs, 3),
		engine.NewJob(4, sssp, 4),
	}
	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}

	wantPR := algorithms.ReferencePageRank(r.g, 0.6, 6)
	for v := range wantPR {
		if math.Abs(pr.Ranks()[v]-wantPR[v]) > 1e-9 {
			t.Fatalf("pagerank[%d] = %g, want %g", v, pr.Ranks()[v], wantPR[v])
		}
	}
	wantWCC := algorithms.ReferenceWCC(r.g)
	for v := range wantWCC {
		if wcc.Labels()[v] != wantWCC[v] {
			t.Fatalf("wcc[%d] = %d, want %d", v, wcc.Labels()[v], wantWCC[v])
		}
	}
	wantBFS := algorithms.ReferenceBFS(r.g, 3)
	for v := range wantBFS {
		if bfs.Dist()[v] != wantBFS[v] {
			t.Fatalf("bfs[%d] = %d, want %d", v, bfs.Dist()[v], wantBFS[v])
		}
	}
	wantSSSP := algorithms.ReferenceSSSP(r.g, 7)
	for v := range wantSSSP {
		got, want := sssp.Dist()[v], wantSSSP[v]
		if math.IsInf(float64(want), 1) != math.IsInf(float64(got), 1) {
			t.Fatalf("sssp[%d] reachability: got %v want %v", v, got, want)
		}
		if !math.IsInf(float64(want), 1) && math.Abs(float64(got-want)) > 1e-3 {
			t.Fatalf("sssp[%d] = %v, want %v", v, got, want)
		}
	}

	st := r.sys.StatsSnapshot()
	if st.SharedLoads == 0 {
		t.Error("no partition load was shared by multiple jobs")
	}
	if st.Rounds == 0 {
		t.Error("no rounds recorded")
	}
}

func TestSchedulerOffStillCorrect(t *testing.T) {
	cfg := core.DefaultConfig(64 << 10)
	cfg.Scheduler = false
	r := newRig(t, 400, 3000, 4, cfg)
	bfs := algorithms.NewBFS(0)
	wcc := algorithms.NewWCC(1000)
	jobs := []*engine.Job{engine.NewJob(1, bfs, 1), engine.NewJob(2, wcc, 2)}
	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceBFS(r.g, 0)
	for v := range want {
		if bfs.Dist()[v] != want[v] {
			t.Fatalf("bfs[%d] = %d, want %d", v, bfs.Dist()[v], want[v])
		}
	}
}

func TestFineSyncOffStillCorrect(t *testing.T) {
	cfg := core.DefaultConfig(64 << 10)
	cfg.FineSync = false
	r := newRig(t, 400, 3000, 4, cfg)
	pr := algorithms.NewPageRank(0.85, 5)
	pr.Tolerance = 1e-12
	sssp := algorithms.NewSSSP(1)
	jobs := []*engine.Job{engine.NewJob(1, pr, 1), engine.NewJob(2, sssp, 2)}
	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferencePageRank(r.g, 0.85, 5)
	for v := range want {
		if math.Abs(pr.Ranks()[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], want[v])
		}
	}
}

func TestStaggeredSubmission(t *testing.T) {
	// Jobs submitted while a round is in flight must join later rounds and
	// still compute correct results.
	r := newRig(t, 500, 4000, 4, core.DefaultConfig(64<<10))
	pr := algorithms.NewPageRank(0.7, 12)
	pr.Tolerance = 1e-12
	j1 := engine.NewJob(1, pr, 1)
	r.sys.Submit(j1)

	bfs := algorithms.NewBFS(2)
	j2 := engine.NewJob(2, bfs, 2)
	r.sys.Submit(j2)

	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	wantPR := algorithms.ReferencePageRank(r.g, 0.7, 12)
	for v := range wantPR {
		if math.Abs(pr.Ranks()[v]-wantPR[v]) > 1e-9 {
			t.Fatalf("rank[%d] diverged", v)
		}
	}
	wantBFS := algorithms.ReferenceBFS(r.g, 2)
	for v := range wantBFS {
		if bfs.Dist()[v] != wantBFS[v] {
			t.Fatalf("bfs[%d] = %d, want %d", v, bfs.Dist()[v], wantBFS[v])
		}
	}
}

func TestDuplicateJobIDFails(t *testing.T) {
	r := newRig(t, 100, 500, 2, core.DefaultConfig(64<<10))
	a := engine.NewJob(1, algorithms.NewBFS(0), 1)
	b := engine.NewJob(1, algorithms.NewBFS(1), 2)
	_ = r.sys.Run([]*engine.Job{a, b})
	if r.sys.Err() == nil {
		t.Fatal("expected duplicate-ID error")
	}
}

func TestSharedMemoryOneCopy(t *testing.T) {
	// Under GraphM, N concurrent PageRank jobs must fault each partition
	// from disk at most once per residence, not once per job.
	r := newRig(t, 400, 3000, 2, core.DefaultConfig(64<<10))
	var jobs []*engine.Job
	for i := 0; i < 4; i++ {
		pr := algorithms.NewPageRank(0.5, 3)
		pr.Tolerance = 1e-12
		jobs = append(jobs, engine.NewJob(i+1, pr, int64(i)))
	}
	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	// Memory is large: every partition faults exactly once overall.
	if got, want := r.mem.Faults(), uint64(r.grid.NumPartitions()); got > want {
		t.Fatalf("faults = %d, want <= %d (one shared copy per partition)", got, want)
	}
}

func TestProfilerProducesCosts(t *testing.T) {
	r := newRig(t, 400, 3000, 4, core.DefaultConfig(64<<10))
	pr := algorithms.NewPageRank(0.85, 6)
	pr.Tolerance = 1e-12
	wcc := algorithms.NewWCC(1000)
	j1, j2 := engine.NewJob(1, pr, 1), engine.NewJob(2, wcc, 2)

	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = r.sys.Run([]*engine.Job{j1, j2})
	}()
	<-done
	// After completion the jobs have left; the system must have profiled
	// T(E) at least once (pinned for later jobs).
	if te := r.sys.SharedTE(); te < 0 {
		t.Fatalf("profiled T(E) = %v, want >= 0", te)
	}
}

func TestActivePartitionsMatchesBitmap(t *testing.T) {
	r := newRig(t, 400, 3000, 4, core.DefaultConfig(64<<10))
	bm := engine.NewBitmap(r.g.NumV)
	bm.Set(0) // only stripe 0 active
	pids := r.sys.ActivePartitions(bm)
	for _, pid := range pids {
		p := r.grid.Partition(pid)
		if p.SrcLo > 0 {
			t.Fatalf("partition %d (srcLo=%d) should not be active", pid, p.SrcLo)
		}
	}
	if len(pids) == 0 {
		t.Fatal("no active partitions for vertex 0")
	}
}

package core

import (
	"testing"

	"graphm/internal/chunk"
	"graphm/internal/engine"
	"graphm/internal/graph"
)

func TestOrderPartitionsFormula5(t *testing.T) {
	// Job 1 has one active partition (P2): Pri(P2) >= 1/1 * |J|.
	// Job 2 and 3 have three active partitions each.
	attend := map[int][]int{
		0: {2, 3},    // N=2, minNP=3 -> pri 2/3
		1: {2},       // N=1, minNP=3 -> pri 1/3
		2: {1, 2, 3}, // N=3, minNP=1 -> pri 3
	}
	jobNP := map[int]int{1: 1, 2: 3, 3: 3}
	order := orderPartitions(attend, jobNP, true)
	if len(order) != 3 {
		t.Fatalf("order has %d entries", len(order))
	}
	if order[0] != 2 {
		t.Fatalf("highest-priority partition = %d, want 2 (serves most jobs incl. the 1-partition job)", order[0])
	}
	if order[1] != 0 || order[2] != 1 {
		t.Fatalf("tail order = %v, want [0 1] by priority", order[1:])
	}
}

func TestOrderPartitionsDefaultOrder(t *testing.T) {
	attend := map[int][]int{3: {1}, 1: {1}, 2: {1}}
	jobNP := map[int]int{1: 3}
	order := orderPartitions(attend, jobNP, false)
	for i, pid := range []int{1, 2, 3} {
		if order[i] != pid {
			t.Fatalf("default order = %v, want ascending IDs", order)
		}
	}
}

func TestOrderPartitionsSkipsEmptyAttendance(t *testing.T) {
	attend := map[int][]int{0: {}, 1: {5}}
	order := orderPartitions(attend, map[int]int{5: 1}, true)
	if len(order) != 1 || order[0] != 1 {
		t.Fatalf("order = %v, want [1]", order)
	}
}

func TestOrderPartitionsEmptyAttendanceMap(t *testing.T) {
	// A round with no attending jobs at all (every live job converged at the
	// barrier) must produce an empty, non-nil-safe order in both modes.
	for _, sched := range []bool{true, false} {
		order := orderPartitions(map[int][]int{}, map[int]int{}, sched)
		if len(order) != 0 {
			t.Fatalf("scheduler=%v: order = %v, want empty", sched, order)
		}
	}
}

func TestOrderPartitionsAllZeroJobNP(t *testing.T) {
	// Jobs reporting zero active partitions (a state only reachable through
	// stale or inconsistent tables) must not panic or divide by zero: every
	// priority degrades to ~0 and the pid tie-break keeps the order total
	// and deterministic.
	attend := map[int][]int{2: {1}, 0: {1, 2}, 1: {2}}
	jobNP := map[int]int{1: 0, 2: 0}
	order := orderPartitions(attend, jobNP, true)
	if len(order) != 3 {
		t.Fatalf("order has %d entries, want 3", len(order))
	}
	// All priorities equal: deterministic ascending-pid tie-break order.
	for i, pid := range []int{0, 1, 2} {
		if order[i] != pid {
			t.Fatalf("order = %v, want ascending pid tie-break [0 1 2]", order)
		}
	}
}

func TestOrderPartitionsSchedulerDisabledIgnoresPriority(t *testing.T) {
	// With the Section 4 strategy off, even a partition serving every job
	// must not jump the engine's native ascending-ID order.
	attend := map[int][]int{
		0: {1},
		1: {1},
		7: {1, 2, 3, 4}, // highest priority, last natively
	}
	jobNP := map[int]int{1: 3, 2: 1, 3: 1, 4: 1}
	order := orderPartitions(attend, jobNP, false)
	for i, pid := range []int{0, 1, 7} {
		if order[i] != pid {
			t.Fatalf("order = %v, want [0 1 7]", order)
		}
	}
}

func TestProfilerSolvesTwoByTwo(t *testing.T) {
	var p profiler
	// T(F)=2, T(E)=0.5: t = 2*proc + 0.5*scan.
	p.observe(profSample{processed: 100, scanned: 400, elapsedNS: 2*100 + 0.5*400}, 0)
	if p.profiled {
		t.Fatal("profiled after one sample without shared T(E)")
	}
	p.observe(profSample{processed: 300, scanned: 500, elapsedNS: 2*300 + 0.5*500}, 0)
	if !p.profiled {
		t.Fatal("not profiled after two independent samples")
	}
	if diff := p.tF - 2; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("T(F) = %v, want 2", p.tF)
	}
	if diff := p.tE - 0.5; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("T(E) = %v, want 0.5", p.tE)
	}
}

func TestProfilerUsesSharedTE(t *testing.T) {
	var p profiler
	p.observe(profSample{processed: 100, scanned: 400, elapsedNS: 3*100 + 0.5*400}, 0.5)
	if !p.profiled {
		t.Fatal("shared T(E) should let one sample suffice")
	}
	if diff := p.tF - 3; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("T(F) = %v, want 3", p.tF)
	}
}

func TestProfilerDegenerateFallback(t *testing.T) {
	var p profiler
	// PageRank-like: processed == scanned in both samples -> singular.
	p.observe(profSample{processed: 100, scanned: 100, elapsedNS: 500}, 0)
	p.observe(profSample{processed: 200, scanned: 200, elapsedNS: 1000}, 0)
	if !p.profiled {
		t.Fatal("degenerate fallback did not profile")
	}
	if p.tF < 0 || p.tE < 0 {
		t.Fatalf("negative costs: tF=%v tE=%v", p.tF, p.tE)
	}
}

func TestProfilerClampsNegative(t *testing.T) {
	var p profiler
	// Inconsistent timings can yield negative solutions; they clamp to 0.
	p.observe(profSample{processed: 100, scanned: 400, elapsedNS: 10}, 0)
	p.observe(profSample{processed: 400, scanned: 100, elapsedNS: 10000}, 0)
	if !p.profiled {
		t.Fatal("not profiled")
	}
	if p.tF < 0 || p.tE < 0 {
		t.Fatalf("negative costs not clamped: tF=%v tE=%v", p.tF, p.tE)
	}
}

func TestChunkLoadFormulas(t *testing.T) {
	tbl := &chunk.Table{Entries: []chunk.Entry{
		{Vertex: 1, OutCnt: 10},
		{Vertex: 2, OutCnt: 20},
		{Vertex: 3, OutCnt: 30},
	}, NumEdges: 60}
	active := engine.NewBitmap(8)
	active.Set(1)
	active.Set(3)
	// Formula (3): L = tF * (10 + 30).
	if got := chunkLoad(2.0, tbl, active); got != 80 {
		t.Fatalf("chunkLoad = %v, want 80", got)
	}
	// Formula (4): lead = L + tE * total(60).
	if got := chunkLeadTime(2.0, 0.5, tbl, active); got != 80+30 {
		t.Fatalf("chunkLeadTime = %v, want 110", got)
	}
}

func TestLocatePrefersNonEmptyPartition(t *testing.T) {
	g := graph.MustNew("loc", 8, []graph.Edge{{Src: 1, Dst: 2, Weight: 1}})
	parts := []*Partition{
		{ID: 0, SrcLo: 0, SrcHi: 4, Edges: nil},
		{ID: 1, SrcLo: 0, SrcHi: 4, Edges: g.Edges},
		{ID: 2, SrcLo: 4, SrcHi: 8, Edges: nil},
	}
	s := &System{g: g, parts: parts}
	p, err := s.locate(1)
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != 1 {
		t.Fatalf("located partition %d, want non-empty 1", p.ID)
	}
	p, err = s.locate(6)
	if err != nil || p.ID != 2 {
		t.Fatalf("fallback failed: %v %v", p, err)
	}
}

package core

import "graphm/internal/chunk"

// Adaptive chunk re-labelling: Formula (1) applied to dynamic concurrency.
//
// The paper sizes logical chunks so that the working sets of the N jobs
// sharing a partition fit in the LLC together, but the seed runtime computed
// S_c exactly once at NewSystem with N pinned to the core count — while the
// admission service and mid-round attach/detach vary the attending-job count
// continuously. Under-counting N leaves chunks too big (followers re-stream
// a chunk the leader's pass no longer keeps resident: LLC thrash); over-
// counting leaves them needlessly small (more chunk barriers than the
// sharing requires).
//
// With Config.AdaptiveChunking, the controller re-evaluates Formula (1)
// every time it opens a partition, using N = the number of jobs about to
// attend it. Partition-open time is a barrier by construction: the previous
// partition's attendees have all passed their partition barrier, no chunk
// work items are queued or in flight, and the new curPartition has not been
// published — so no streaming pass can observe a half-swapped labelling.
// Sets are immutable; a re-label installs a fresh Set (next epoch) and
// rebases the snapshot store's version/override chunk keys onto it (see
// snapshotStore.relabelPartition), leaving every job's observed edge stream
// bit-identical. Prefetch handles are unaffected: they hold raw partition
// bytes, and chunking is metadata over that stream.

// maybeRelabelLocked applies the adaptive sizing rule for partition pid
// about to be opened for `attendees` jobs. Caller holds s.mu.
func (s *System) maybeRelabelLocked(pid, attendees int) {
	if !s.cfg.AdaptiveChunking {
		return
	}
	n := attendees
	if n < 1 {
		n = 1
	}
	target, err := chunk.ChunkSize(chunk.SizeParams{
		NumCores:  n,
		LLCBytes:  s.cfg.LLCBytes,
		GraphSize: s.g.SizeBytes(),
		NumV:      int64(s.g.NumV),
		VertexPay: s.cfg.VertexPay,
		Reserved:  s.cfg.Reserved,
	})
	if err != nil {
		// Degenerate sizing (cannot happen once NewSystem accepted the same
		// parameters with a different N): keep the current labelling.
		return
	}
	cur := s.chunkSize[pid]
	if target == cur {
		return
	}
	// Hysteresis: only re-label on drift of at least relabelFactor, so
	// attendance jitter between consecutive rounds does not churn tables.
	f := s.relabelFactor
	if float64(target) < float64(cur)*f && float64(cur) < float64(target)*f {
		s.stats.RelabelSkips++
		return
	}
	part := s.partByID[pid]
	old := s.sets[pid]
	nw := old.Relabel(part.Edges, target)
	s.sets[pid] = nw
	s.chunkSize[pid] = target
	s.stats.NumChunks += nw.NumChunks() - old.NumChunks()
	s.stats.MetadataBytes += nw.MetadataBytes() - old.MetadataBytes()
	s.stats.Relabels++
	// Rebase snapshot state keyed by the old labelling's chunk indices onto
	// the new one. Visibility is per job birth version, so the rebase needs
	// the live jobs' borns to bake job-private override views.
	borns := make(map[int]int, len(s.jobs))
	for id, js := range s.jobs {
		borns[id] = js.born
	}
	s.snaps.relabelPartition(pid, part.Edges, old, nw, borns, s.mem.AllocAddr)
}

// PartitionChunkBytes returns the chunk size partition pid is currently
// labelled with — the NewSystem-time Formula (1) size until adaptive
// chunking re-labels it.
func (s *System) PartitionChunkBytes(pid int) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chunkSize[pid]
}

// ChunkEpoch returns partition pid's labelling generation: 0 until adaptive
// chunking first re-labels it, incrementing per re-label.
func (s *System) ChunkEpoch(pid int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	set, ok := s.sets[pid]
	if !ok {
		return 0
	}
	return set.Epoch
}

package core_test

import (
	"errors"
	"testing"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
	"graphm/internal/faultfs"
	"graphm/internal/graph"
	"graphm/internal/storage"
)

// Regression tests for the evolve phantom-commit window: an evolve op whose
// WAL append or group commit failed used to leave its edges installed in
// memory — visible to degraded-mode reads and foldable into checkpoints —
// even though the client got a 503 and must re-offer the mutation. The ops
// now roll back, so a failed op is never observable.

// openFaultingStore opens a store whose WAL fsyncs always fail (retries are
// instant), so every evolve group commit returns ErrDurability.
func openFaultingStore(t *testing.T, dir string) (*storage.Store, *faultfs.Injector) {
	t.Helper()
	sched, err := faultfs.ParseSchedule("sync:fail:path=wal-")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.New(faultfs.OS{}, sched, nil)
	st, _, err := storage.Open(dir, storage.StoreOptions{
		CheckpointEveryRecords: -1,
		FS:                     inj,
		Retry:                  storage.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, inj
}

// TestEvolveCommitFailureRollsBack: each of the four evolve ops, failing at
// the group-commit stage, must leave every observable view — global and
// job-private — bit-identical to the pre-op state. Before the fix the 503'd
// edges stayed installed (this test failed on every sub-case).
func TestEvolveCommitFailureRollsBack(t *testing.T) {
	st, _ := openFaultingStore(t, t.TempDir())
	defer st.Close()
	sys := buildDurableSys(t)
	sys.SetEvolveSink(st)

	wantGlobal := viewsOf(t, sys, -1)
	wantJob7 := viewsOf(t, sys, 7)
	wantVersion := sys.SnapshotVersion()
	wantOverrides := sys.OverrideChunks()

	if _, err := sys.AddEdges([]graph.Edge{{Src: 3, Dst: 200, Weight: 1}, {Src: 180, Dst: 4, Weight: 2}}); !errors.Is(err, storage.ErrDurability) {
		t.Fatalf("AddEdges err = %v, want ErrDurability", err)
	}
	assertViewsEqual(t, wantGlobal, viewsOf(t, sys, -1), "global view after failed AddEdges")

	// The WAL is latched failed now: subsequent ops fail at append time and
	// must be undone inline just the same.
	if err := sys.AddEdgesFor(7, []graph.Edge{{Src: 10, Dst: 11, Weight: 3}}); !errors.Is(err, storage.ErrDurability) {
		t.Fatalf("AddEdgesFor err = %v, want ErrDurability", err)
	}
	assertViewsEqual(t, wantJob7, viewsOf(t, sys, 7), "job 7 view after failed AddEdgesFor")
	if got := sys.OverrideChunks(); got != wantOverrides {
		t.Fatalf("failed AddEdgesFor leaked %d override chunks", got-wantOverrides)
	}

	if _, _, err := sys.RemoveEdges(func(e graph.Edge) bool { return e.Dst == 0 }); !errors.Is(err, storage.ErrDurability) {
		t.Fatalf("RemoveEdges err = %v, want ErrDurability", err)
	}
	assertViewsEqual(t, wantGlobal, viewsOf(t, sys, -1), "global view after failed RemoveEdges")

	if _, err := sys.RemoveEdgesFor(7, func(e graph.Edge) bool { return e.Src == 10 }); !errors.Is(err, storage.ErrDurability) {
		t.Fatalf("RemoveEdgesFor err = %v, want ErrDurability", err)
	}
	assertViewsEqual(t, wantJob7, viewsOf(t, sys, 7), "job 7 view after failed RemoveEdgesFor")
	if got := sys.OverrideChunks(); got != wantOverrides {
		t.Fatalf("failed RemoveEdgesFor leaked %d override chunks", got-wantOverrides)
	}

	// Version bumps from the rolled-back installs are harmless (versions are
	// monotone bookkeeping) but must not have grown unboundedly weird.
	if sys.SnapshotVersion() < wantVersion {
		t.Fatalf("snapshot version went backwards: %d -> %d", wantVersion, sys.SnapshotVersion())
	}
}

// TestEvolveRollbackMatchesDurableState: after a mix of committed and failed
// ops, the live in-memory views must equal a fresh recovery from the data
// directory — i.e. memory tracks exactly the durable record stream, nothing
// more. This is the invariant degraded-mode reads rely on.
func TestEvolveRollbackMatchesDurableState(t *testing.T) {
	dir := t.TempDir()
	st, inj := openFaultingStore(t, dir)
	sys := buildDurableSys(t)
	sys.SetEvolveSink(st)

	// Fault armed: these fail and roll back.
	if _, err := sys.AddEdges([]graph.Edge{{Src: 1, Dst: 2, Weight: 9}}); err == nil {
		t.Fatal("AddEdges succeeded with fault armed")
	}
	if err := sys.AddEdgesFor(7, []graph.Edge{{Src: 10, Dst: 11}}); err == nil {
		t.Fatal("AddEdgesFor succeeded with fault armed")
	}

	// Clear the fault, re-arm the WAL, and do a successful op on top of the
	// rolled-back state.
	inj.Disarm()
	if err := st.Probe(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if _, err := sys.AddEdges([]graph.Edge{{Src: 99, Dst: 98, Weight: 5}}); err != nil {
		t.Fatalf("AddEdges after recovery: %v", err)
	}
	if err := sys.AddEdgesFor(7, []graph.Edge{{Src: 20, Dst: 21}}); err != nil {
		t.Fatalf("AddEdgesFor after recovery: %v", err)
	}
	wantGlobal := viewsOf(t, sys, -1)
	wantJob7 := viewsOf(t, sys, 7)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Only the two acknowledged records are durable.
	if len(rec.Evolves) != 2 {
		t.Fatalf("recovered %d evolve records, want 2", len(rec.Evolves))
	}
	sys2 := buildDurableSys(t)
	recoverInto(t, sys2, rec)
	assertViewsEqual(t, wantGlobal, viewsOf(t, sys2, -1), "global view vs recovery")
	assertViewsEqual(t, wantJob7, viewsOf(t, sys2, 7), "job 7 view vs recovery")
}

// TestCheckpointNeverCapturesPhantoms: a checkpoint taken after failed
// evolve ops must reproduce the durable state, not the phantom one. (Before
// the fix, captureStateLocked folded the rolled-forward memory into the
// checkpoint, promoting unacknowledged edges to durable state.)
func TestCheckpointNeverCapturesPhantoms(t *testing.T) {
	dir := t.TempDir()
	st, inj := openFaultingStore(t, dir)
	sys := buildDurableSys(t)
	sys.SetEvolveSink(st)

	// One acknowledged op, then a failed one.
	inj.Disarm()
	if _, err := sys.AddEdges([]graph.Edge{{Src: 5, Dst: 6, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	sched, err := faultfs.ParseSchedule("sync:fail:path=wal-")
	if err != nil {
		t.Fatal(err)
	}
	inj.SetSchedule(sched)
	if _, err := sys.AddEdges([]graph.Edge{{Src: 7, Dst: 8, Weight: 2}}); err == nil {
		t.Fatal("AddEdges succeeded with fault armed")
	}
	inj.Disarm()
	if err := st.Probe(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	want := viewsOf(t, sys, -1)
	if err := sys.Checkpoint(st); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint {
		t.Fatal("no checkpoint recovered")
	}
	sys2 := buildDurableSys(t)
	recoverInto(t, sys2, rec)
	got := viewsOf(t, sys2, -1)
	assertViewsEqual(t, want, got, "checkpointed view")
	// The phantom edge specifically must not be anywhere in the streams.
	phantom := graph.Edge{Src: 7, Dst: 8, Weight: 2}
	for pid, stream := range got {
		for _, e := range stream {
			if e == phantom {
				t.Fatalf("phantom edge %+v present in checkpointed partition %d", phantom, pid)
			}
		}
	}
}

// TestRollbackSkipsReleasedOverrides: if the mutating job finishes (its
// overrides released) while its failed op's commit is in flight, the
// rollback must not reinstall an override for the departed job — that copy
// would never be released.
func TestRollbackSkipsReleasedOverrides(t *testing.T) {
	st, _ := openFaultingStore(t, t.TempDir())
	defer st.Close()
	sys := buildDurableSys(t)

	// Open a real session so job 7 is live, then fail a private mutation.
	sess, err := sys.OpenSession(engine.NewJob(7, algorithms.NewBFS(0), 1))
	if err != nil {
		t.Fatal(err)
	}
	sys.SetEvolveSink(st)
	if err := sys.AddEdgesFor(7, []graph.Edge{{Src: 10, Dst: 11}}); !errors.Is(err, storage.ErrDurability) {
		t.Fatalf("AddEdgesFor err = %v, want ErrDurability", err)
	}
	// The rollback already ran (the commit resolves synchronously on the
	// caller's goroutine), and since the failed op created the override, the
	// undo must delete it — not rewrite it — so the count is back to zero
	// even while job 7 is still live.
	if got := sys.OverrideChunks(); got != 0 {
		t.Fatalf("override chunks after rollback = %d, want 0", got)
	}
	sess.Close()
	if got := sys.OverrideChunks(); got != 0 {
		t.Fatalf("override chunks after close = %d, want 0", got)
	}
	if err := sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

package core_test

import (
	"math"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/chaos"
	"graphm/internal/cluster"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/graphchi"
	"graphm/internal/memsim"
	"graphm/internal/powergraph"
	"graphm/internal/storage"
)

// GraphM must be layout-agnostic: the same jobs over GraphChi shards,
// PowerGraph fragments and Chaos chunks produce reference-correct results.

func runUnderLayout(t *testing.T, layout core.Layout, mem *storage.Memory, g *graph.Graph) (*algorithms.PageRank, *algorithms.BFS) {
	t.Helper()
	cache, err := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(layout, mem, cache, core.DefaultConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	pr := algorithms.NewPageRank(0.85, 5)
	pr.Tolerance = 1e-12
	bfs := algorithms.NewBFS(0)
	jobs := []*engine.Job{engine.NewJob(1, pr, 1), engine.NewJob(2, bfs, 2)}
	if err := sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	return pr, bfs
}

func checkResults(t *testing.T, g *graph.Graph, pr *algorithms.PageRank, bfs *algorithms.BFS) {
	t.Helper()
	wantPR := algorithms.ReferencePageRank(g, 0.85, 5)
	for v := range wantPR {
		if math.Abs(pr.Ranks()[v]-wantPR[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], wantPR[v])
		}
	}
	wantBFS := algorithms.ReferenceBFS(g, 0)
	for v := range wantBFS {
		if bfs.Dist()[v] != wantBFS[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, bfs.Dist()[v], wantBFS[v])
		}
	}
}

func TestGraphMOverGraphChiShards(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("ml", 400, 3000, 61))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	shards, err := graphchi.Build(g, 4, disk)
	if err != nil {
		t.Fatal(err)
	}
	pr, bfs := runUnderLayout(t, shards.AsLayout(), storage.NewMemory(disk, 64<<20), g)
	checkResults(t, g, pr, bfs)
}

func TestGraphMOverPowerGraphFragments(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("ml", 400, 3000, 62))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(4, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := powergraph.Build(g, cl.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	pr, bfs := runUnderLayout(t, p.AsLayout(), p.SharedMemory(64<<20), g)
	checkResults(t, g, pr, bfs)
}

func TestGraphMOverChaosChunks(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("ml", 400, 3000, 63))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(4, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := chaos.Build(g, cl.Nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	pr, bfs := runUnderLayout(t, s.AsLayout(), s.SharedMemory(64<<20), g)
	checkResults(t, g, pr, bfs)
}

func TestGraphMLoadHookCharged(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("lh", 200, 1500, 64))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(2, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := chaos.Build(g, cl.Nodes, 2)
	if err != nil {
		t.Fatal(err)
	}
	mem := s.SharedMemory(64 << 20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	cfg := core.DefaultConfig(64 << 10)
	cfg.LoadHook = s.LoadHook(cl.Net)
	sys, err := core.NewSystem(s.AsLayout(), mem, cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	bfs := algorithms.NewBFS(0)
	j := engine.NewJob(1, bfs, 1)
	if err := sys.Run([]*engine.Job{j}); err != nil {
		t.Fatal(err)
	}
	if cl.Net.Bytes() == 0 {
		t.Fatal("LoadHook never metered the network")
	}
	if j.Met.SimIONS == 0 {
		t.Fatal("network time not charged to the job")
	}
}

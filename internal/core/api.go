package core

import (
	"fmt"

	"graphm/internal/graph"
)

// This file is the programming interface of Table 1 in user-facing form.
// The correspondence:
//
//	Init()              -> NewSystem (graph preprocessing: Formula 1 +
//	                       Algorithm 1 labelling)
//	GetActiveVertices() -> ActivePartitions / the beginIteration step of the
//	                       per-job driver
//	Sharing()           -> System.sharing via the driver (Algorithm 2)
//	Start()/Barrier()   -> awaitChunk / partitionBarrier via the driver
//
// plus the evolving-graph operations of Section 3.3.2 (MutateChunk /
// UpdateChunk) and read-side helpers used by examples and tests.

// NumPartitions returns the number of engine partitions under management.
func (s *System) NumPartitions() int { return len(s.parts) }

// ChunkCount returns the number of logical chunks labelled in partition pid
// under its current labelling (adaptive chunking may change it between
// partition openings).
func (s *System) ChunkCount(pid int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	set, ok := s.sets[pid]
	if !ok {
		return 0
	}
	return set.NumChunks()
}

// ChunkBytes returns the Formula (1) chunk size chosen at Init time.
func (s *System) ChunkBytes() int64 { return s.stats.ChunkBytes }

// ResolvedCores returns the core count the system was sized for: Config.Cores,
// with zero resolved to runtime.GOMAXPROCS(0) at NewSystem time.
func (s *System) ResolvedCores() int { return s.cores }

// Workers returns the streaming executor's real-concurrency width (0 means
// the legacy serial driver).
func (s *System) Workers() int { return s.workers }

// ActivePartitions reports which partitions a job with the given active
// bitmap would need — the GetActiveVertices() step. It is exposed so engine
// integrations and tests can inspect the global-table inputs.
func (s *System) ActivePartitions(active interface{ AnyInRange(lo, hi int) bool }) []int {
	var out []int
	for _, p := range s.parts {
		if len(p.Edges) == 0 {
			continue
		}
		if active.AnyInRange(p.SrcLo, p.SrcHi) {
			out = append(out, p.ID)
		}
	}
	return out
}

// baseChunkEdgesLocked returns the shared base edges of (pid, chunkIdx)
// under the partition's current labelling. Caller holds s.mu: adaptive
// chunking rewrites s.sets at partition barriers, and chunk indices are only
// meaningful against one labelling epoch.
func (s *System) baseChunkEdgesLocked(pid, chunkIdx int) ([]graph.Edge, error) {
	set, ok := s.sets[pid]
	if !ok {
		return nil, fmt.Errorf("core: unknown partition %d", pid)
	}
	if chunkIdx < 0 || chunkIdx >= len(set.Chunks) {
		return nil, fmt.Errorf("core: partition %d has no chunk %d", pid, chunkIdx)
	}
	t := set.Chunks[chunkIdx]
	return s.partByID[pid].Edges[t.FirstEdge : t.FirstEdge+t.NumEdges], nil
}

// MutateChunk applies a job-private mutation: mutate transforms the chunk's
// current edges (as seen by the job) into the new edge set. The mutation is
// visible only to jobID (Section 3.3.2, "mutation 2" in Figure 7); the
// shared base chunk is untouched.
//
// The callback runs with no System lock held, so it may call back into the
// System freely. Consistency against adaptive re-labelling is kept by
// optimistic validation instead: the view is read under the partition's
// current labelling epoch, and if a re-label lands while the callback runs
// (changing what chunkIdx means), the view is re-read and the callback
// re-run against it.
func (s *System) MutateChunk(jobID, pid, chunkIdx int, mutate func(edges []graph.Edge) []graph.Edge) error {
	for {
		s.mu.Lock()
		epoch, ok := s.chunkEpochLocked(pid)
		if !ok {
			s.mu.Unlock()
			return fmt.Errorf("core: unknown partition %d", pid)
		}
		cur, err := s.chunkViewEdgesLocked(jobID, pid, chunkIdx)
		if err != nil {
			s.mu.Unlock()
			return err
		}
		in := append([]graph.Edge(nil), cur...)
		s.mu.Unlock()

		out := mutate(in)

		s.mu.Lock()
		if now, ok := s.chunkEpochLocked(pid); !ok || now != epoch {
			// The partition was re-labelled under the callback: chunkIdx now
			// names a different slice of the stream. Retry on the new view.
			s.mu.Unlock()
			continue
		}
		s.snaps.mutate(jobID, pid, chunkIdx, out, s.mem.AllocAddr)
		s.mu.Unlock()
		return nil
	}
}

// chunkEpochLocked returns the partition's current labelling epoch.
func (s *System) chunkEpochLocked(pid int) (int, bool) {
	set, ok := s.sets[pid]
	if !ok {
		return 0, false
	}
	return set.Epoch, true
}

// mutateChunkLocked is the internal form for callers already holding s.mu
// with an internal (non-reentrant) callback — the evolve helpers, whose
// closures never touch the System.
func (s *System) mutateChunkLocked(jobID, pid, chunkIdx int, mutate func(edges []graph.Edge) []graph.Edge) error {
	cur, err := s.chunkViewEdgesLocked(jobID, pid, chunkIdx)
	if err != nil {
		return err
	}
	in := append([]graph.Edge(nil), cur...)
	s.snaps.mutate(jobID, pid, chunkIdx, mutate(in), s.mem.AllocAddr)
	return nil
}

// UpdateChunk installs a graph update: new edges for (pid, chunkIdx) that
// become the base for jobs submitted after the update; jobs already running
// keep their snapshot ("update 3" in Figure 7). It returns the new snapshot
// version.
func (s *System) UpdateChunk(pid, chunkIdx int, edges []graph.Edge) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.updateChunkLocked(pid, chunkIdx, edges)
}

func (s *System) updateChunkLocked(pid, chunkIdx int, edges []graph.Edge) (int, error) {
	if _, err := s.baseChunkEdgesLocked(pid, chunkIdx); err != nil {
		return 0, err
	}
	return s.snaps.update(pid, chunkIdx, edges, s.mem.AllocAddr), nil
}

// ChunkView returns the edges of (pid, chunkIdx) exactly as job jobID
// observes them through its snapshot. For an unknown job (e.g. a job ID that
// never ran), the view is the job-less current base.
func (s *System) ChunkView(jobID, pid, chunkIdx int) ([]graph.Edge, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.chunkViewEdgesLocked(jobID, pid, chunkIdx)
}

func (s *System) chunkViewEdgesLocked(jobID, pid, chunkIdx int) ([]graph.Edge, error) {
	base, err := s.baseChunkEdgesLocked(pid, chunkIdx)
	if err != nil {
		return nil, err
	}
	born := s.snaps.currentVersion()
	if js, ok := s.jobs[jobID]; ok {
		born = js.born
	}
	if cpy := s.snaps.resolve(jobID, born, pid, chunkIdx); cpy != nil {
		return cpy.edges, nil
	}
	return base, nil
}

// SnapshotVersion returns the current global snapshot version; jobs
// submitted now observe updates up to this version.
func (s *System) SnapshotVersion() int { return s.snaps.currentVersion() }

// OverrideChunks reports how many copy-on-write chunks are live, for tests
// verifying that copies are released when jobs finish.
func (s *System) OverrideChunks() int { return s.snaps.overrideCount() }

// ProfiledCosts returns the profiled T(F_j) and T(E) of a running job and
// whether profiling completed; zeros for unknown jobs.
func (s *System) ProfiledCosts(jobID int) (tF, tE float64, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	js, found := s.jobs[jobID]
	if !found {
		return 0, 0, false
	}
	return js.prof.tF, js.prof.tE, js.prof.profiled
}

package core_test

import (
	"sync"
	"testing"

	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// buildDurableSys builds a fresh System over the same deterministic graph and
// grid, so two builds are bit-identical starting points (the crash/restart
// differential depends on that).
func buildDurableSys(t *testing.T) *core.System {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("durable", 256, 2000, 42))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 4, disk)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemory(disk, 64<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	sys, err := core.NewSystem(grid.AsLayout(), mem, cache, core.DefaultConfig(64<<10))
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// viewsOf concatenates every partition's chunk stream as observed by jobID.
func viewsOf(t *testing.T, sys *core.System, jobID int) map[int][]graph.Edge {
	t.Helper()
	out := make(map[int][]graph.Edge)
	for pid := 0; pid < sys.NumPartitions(); pid++ {
		var stream []graph.Edge
		for k := 0; k < sys.ChunkCount(pid); k++ {
			edges, err := sys.ChunkView(jobID, pid, k)
			if err != nil {
				t.Fatalf("chunk view %d/%d: %v", pid, k, err)
			}
			stream = append(stream, edges...)
		}
		out[pid] = stream
	}
	return out
}

func assertViewsEqual(t *testing.T, want, got map[int][]graph.Edge, label string) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: partition count %d vs %d", label, len(got), len(want))
	}
	for pid, w := range want {
		g := got[pid]
		if len(w) != len(g) {
			t.Fatalf("%s: partition %d has %d edges, want %d", label, pid, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("%s: partition %d edge %d = %+v, want %+v", label, pid, i, g[i], w[i])
			}
		}
	}
}

// mutateSequence drives a representative evolve workload: global adds and
// removes plus job-private mutations for two jobs.
func mutateSequence(t *testing.T, sys *core.System) {
	t.Helper()
	if _, err := sys.AddEdges([]graph.Edge{{Src: 3, Dst: 200, Weight: 1}, {Src: 180, Dst: 4, Weight: 2}}); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdgesFor(7, []graph.Edge{{Src: 10, Dst: 11, Weight: 3}, {Src: 200, Dst: 1}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.RemoveEdges(func(e graph.Edge) bool { return e.Dst == 0 }); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.RemoveEdgesFor(7, func(e graph.Edge) bool { return e.Src == 10 }); err != nil {
		t.Fatal(err)
	}
	if err := sys.AddEdgesFor(9, []graph.Edge{{Src: 50, Dst: 51}}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.AddEdges([]graph.Edge{{Src: 99, Dst: 98}}); err != nil {
		t.Fatal(err)
	}
}

// recoverInto rebuilds a fresh system from rec: checkpoint restore, override
// restore, then WAL replay — the daemon's startup path.
func recoverInto(t *testing.T, sys *core.System, rec *storage.Recovery) {
	t.Helper()
	if rec.HasCheckpoint {
		if err := sys.RestorePartitions(rec.Partitions); err != nil {
			t.Fatal(err)
		}
		if err := sys.RestoreOverrides(rec.Overrides); err != nil {
			t.Fatal(err)
		}
	}
	for i, ev := range rec.Evolves {
		if err := sys.ApplyEvolve(ev); err != nil {
			t.Fatalf("replay record %d (%v): %v", i, ev.Op, err)
		}
	}
}

// TestWALReplayDifferential: run evolve ops with the WAL on, "crash" (drop
// the in-memory system), recover a fresh system by replay alone, and require
// bit-identical global and job-private views.
func TestWALReplayDifferential(t *testing.T) {
	dir := t.TempDir()
	st, rec0, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec0.WALRecords != 0 {
		t.Fatalf("fresh store has %d WAL records", rec0.WALRecords)
	}
	sys1 := buildDurableSys(t)
	sys1.SetEvolveSink(st)
	mutateSequence(t, sys1)
	wantGlobal := viewsOf(t, sys1, -1)
	wantJob7 := viewsOf(t, sys1, 7)
	wantJob9 := viewsOf(t, sys1, 9)
	st.Close() // crash: no checkpoint was ever written

	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasCheckpoint {
		t.Fatal("unexpected checkpoint")
	}
	if rec.WALRecords != 6 {
		t.Fatalf("WAL records = %d, want 6", rec.WALRecords)
	}
	sys2 := buildDurableSys(t)
	recoverInto(t, sys2, rec)
	assertViewsEqual(t, wantGlobal, viewsOf(t, sys2, -1), "global view")
	assertViewsEqual(t, wantJob7, viewsOf(t, sys2, 7), "job 7 view")
	assertViewsEqual(t, wantJob9, viewsOf(t, sys2, 9), "job 9 view")
}

// TestCheckpointRecoveryDifferential: same workload, but a checkpoint lands
// mid-sequence (garbage-collecting the covered WAL records). Recovery =
// checkpoint + override restore + tail replay; views must still match, and
// the pre-checkpoint private mutation must survive via the checkpoint's
// override section.
func TestCheckpointRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sys1 := buildDurableSys(t)
	sys1.SetEvolveSink(st)

	// Pre-checkpoint: a global update and a job-private mutation.
	if _, err := sys1.AddEdges([]graph.Edge{{Src: 3, Dst: 200, Weight: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := sys1.AddEdgesFor(7, []graph.Edge{{Src: 10, Dst: 11, Weight: 3}}); err != nil {
		t.Fatal(err)
	}
	if err := sys1.Checkpoint(st); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint tail.
	if _, _, err := sys1.RemoveEdges(func(e graph.Edge) bool { return e.Dst == 1 }); err != nil {
		t.Fatal(err)
	}
	if err := sys1.AddEdgesFor(7, []graph.Edge{{Src: 20, Dst: 21}}); err != nil {
		t.Fatal(err)
	}
	wantGlobal := viewsOf(t, sys1, -1)
	wantJob7 := viewsOf(t, sys1, 7)
	st.Close()

	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint {
		t.Fatal("no checkpoint recovered")
	}
	if len(rec.Overrides) == 0 {
		t.Fatal("checkpoint carried no job overrides")
	}
	// The checkpoint covered the first two records; only the tail replays.
	if rec.WALRecords >= 4 {
		t.Fatalf("WAL records = %d, want < 4 (checkpoint GC)", rec.WALRecords)
	}
	sys2 := buildDurableSys(t)
	recoverInto(t, sys2, rec)
	assertViewsEqual(t, wantGlobal, viewsOf(t, sys2, -1), "global view")
	assertViewsEqual(t, wantJob7, viewsOf(t, sys2, 7), "job 7 view")
}

// TestConcurrentEvolveDurability: many goroutines evolving at once must
// produce a WAL whose replay reproduces the exact final views — the commit
// wait happens outside the evolve mutex (so batches can coalesce), which
// must not reorder records relative to their in-memory application.
func TestConcurrentEvolveDurability(t *testing.T) {
	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.StoreOptions{}) // real fsync path
	if err != nil {
		t.Fatal(err)
	}
	sys1 := buildDurableSys(t)
	sys1.SetEvolveSink(st)
	const writers = 8
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 4; i++ {
				src := graph.VertexID((w*31 + i*7) % 256)
				dst := graph.VertexID((w*17 + i*13) % 256)
				if _, err := sys1.AddEdges([]graph.Edge{{Src: src, Dst: dst, Weight: float32(w)}}); err != nil {
					t.Errorf("writer %d: %v", w, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	want := viewsOf(t, sys1, -1)
	st.Close()

	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.WALRecords != writers*4 {
		t.Fatalf("WAL has %d records, want %d", rec.WALRecords, writers*4)
	}
	sys2 := buildDurableSys(t)
	recoverInto(t, sys2, rec)
	assertViewsEqual(t, want, viewsOf(t, sys2, -1), "global view")
}

// TestEvolveDurableAck: with a real (syncing) store, every evolve op must
// have its record on disk by the time it returns — kill -9 right after the
// call cannot lose it. Simulated by reopening the directory without closing
// the first store.
func TestEvolveDurableAck(t *testing.T) {
	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.StoreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sys := buildDurableSys(t)
	sys.SetEvolveSink(st)
	if _, err := sys.AddEdges([]graph.Edge{{Src: 1, Dst: 2, Weight: 5}}); err != nil {
		t.Fatal(err)
	}
	// No Close: read the directory as a crash recovery would.
	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.WALRecords != 1 {
		t.Fatalf("acked op not durable: %d WAL records", rec.WALRecords)
	}
	if rec.Evolves[0].Op != storage.EvolveAdd || rec.Evolves[0].Edges[0] != (graph.Edge{Src: 1, Dst: 2, Weight: 5}) {
		t.Fatalf("recovered record = %+v", rec.Evolves[0])
	}
	st.Close()
}

package core

import (
	"fmt"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// Session is the engine-facing form of the Table 1 API: an engine that owns
// its own StreamEdges loop (Figure 6(b)) drives GraphM explicitly instead
// of letting System.Submit run the built-in driver. The protocol is:
//
//	sess, _ := sys.OpenSession(job)
//	for sess.BeginIteration() {        // GetActiveVertices + round join
//	    for {
//	        sp := sess.Sharing()       // Algorithm 2: blocks until a
//	        if sp == nil {             // needed partition is loaded
//	            break
//	        }
//	        for sp.Next() {            // Start(): chunk-lockstep window
//	            sp.Process()           // or Edges() + custom streaming
//	        }
//	        sp.Barrier()               // Barrier(): partition complete
//	    }
//	    sess.EndIteration()
//	}
//	sess.Close()
//
// Sessions and Submit-driven jobs can share one System; the controller does
// not distinguish them.
type Session struct {
	s    *System
	js   *jobState
	iter int

	inIteration bool
	closed      bool
}

// SessionOptions tunes how a session's job interacts with the sharing
// controller.
type SessionOptions struct {
	// JoinMidRound admits the job into a round already in flight instead of
	// waiting at the round barrier: the job attaches at the next partition
	// barrier and its already-passed active partitions are appended to the
	// round order (the paper's dynamic-concurrency scenario, where jobs
	// arrive at arbitrary times and join the ongoing graph stream). Jobs
	// already waiting at the round barrier take precedence: while any job
	// waits for a fresh round, joiners queue at the barrier instead of
	// extending the in-flight round. Batch drivers keep this off so every
	// round starts from a clean global table.
	JoinMidRound bool
	// GroupDriver marks the session as one member of a scatter/gather job
	// that spans several Systems (the shard package's scale-out mode). The
	// group driver owns the job's logical lifecycle, so the session skips
	// the per-iteration program hooks (BeforeIteration / AfterIteration /
	// Iterations++ — the group runs them exactly once per logical
	// iteration) and skips Job.Bind (the group binds the shared program
	// once). BeginIteration publishes the active set and returns without
	// waiting for the round to form; Sharing performs the deferred wait.
	// Blocking at the round barrier would deadlock a driver that still owes
	// streaming work to another shard's in-flight round.
	GroupDriver bool
}

// JobDriver is the session surface a streaming driver needs, satisfied by
// *Session and by the shard package's scatter/gather session. The admission
// service drives jobs through it, so a sharded group drops in for a single
// System.
type JobDriver interface {
	// BeginIteration runs the program's BeforeIteration and joins the next
	// round; false means converged, detached or failed.
	BeginIteration() bool
	// Sharing returns the next shared partition to stream, nil when the
	// iteration is complete.
	Sharing() *SharedPartition
	// EndIteration commits the iteration.
	EndIteration()
	// Close deregisters the job. Idempotent.
	Close()
	// Detach asks the controller to withdraw the job at its next barrier.
	Detach()
	// Detached reports whether a Detach was honored before convergence.
	Detached() bool
	// Joined reports whether the job has reached the controller this
	// iteration (round barrier or mid-round attach).
	Joined() bool
}

// OpenJobSession is OpenSessionWith returning the driver interface — the
// form service backends implement (shard.Group offers the same signature
// over a partitioned group of Systems).
func (s *System) OpenJobSession(j *engine.Job, opts SessionOptions) (JobDriver, error) {
	return s.OpenSessionWith(j, opts)
}

// OpenSession registers job with the sharing controller and returns its
// session. The job joins rounds at its first BeginIteration. The caller
// must eventually Close the session even on error paths; System.Wait blocks
// until all sessions are closed.
func (s *System) OpenSession(j *engine.Job) (*Session, error) {
	return s.OpenSessionWith(j, SessionOptions{})
}

// OpenSessionWith is OpenSession with explicit options.
func (s *System) OpenSessionWith(j *engine.Job, opts SessionOptions) (*Session, error) {
	if !opts.GroupDriver {
		j.Bind(s.g)
	}
	state := j.Prog.StateBytes()
	j.StateBase = s.mem.AllocAddr(state)
	s.mem.ReserveJobData(state)

	js := &jobState{job: j, born: s.snaps.currentVersion(),
		joinMidRound: opts.JoinMidRound, deferBarrier: opts.GroupDriver}
	s.mu.Lock()
	if _, dup := s.jobs[j.ID]; dup {
		s.mu.Unlock()
		s.mem.ReserveJobData(-state)
		return nil, fmt.Errorf("core: duplicate job ID %d", j.ID)
	}
	s.jobs[j.ID] = js
	s.live++
	s.mu.Unlock()
	s.wg.Add(1)
	return &Session{s: s, js: js}, nil
}

// BeginIteration runs the program's BeforeIteration, publishes the job's
// active partitions (GetActiveVertices) and joins the next round. It
// returns false when the job has converged or the system failed.
func (sess *Session) BeginIteration() bool {
	if sess.closed {
		return false
	}
	if sess.js.deferBarrier {
		// Group-driver member: the group already ran BeforeIteration once
		// for the logical job and decides convergence itself.
		if sess.s.Err() != nil {
			return false
		}
	} else if !sess.js.job.Prog.BeforeIteration(sess.iter) || sess.s.Err() != nil {
		return false
	}
	if !sess.s.beginIteration(sess.js) {
		return false
	}
	sess.inIteration = true
	return true
}

// Detach asks the controller to withdraw the job from sharing: the session's
// current (possibly suspended) or next Sharing call returns nil, and
// BeginIteration returns false afterwards. Safe to call from any goroutine
// while the session is live; the unhook itself happens at one of the job's
// partition barriers, so other jobs' chunk lockstep is never disturbed. The
// driver loop must still run to its natural end (Sharing-nil, EndIteration,
// failed BeginIteration) and Close the session.
func (sess *Session) Detach() {
	s := sess.s
	s.mu.Lock()
	sess.js.detachWanted = true
	// The job could be parked on any wait list (round barrier, sharing, or
	// the open partition's lockstep); detaches are rare, so wake them all.
	s.broadcastAllLocked()
	s.mu.Unlock()
}

// Joined reports whether the session's job has reached the sharing
// controller at least once this iteration: it attached to the round in
// flight (JoinMidRound) or queued at the round barrier. Deterministic test
// orchestration uses it to sequence an attach fully before the triggering
// job releases the partition it is holding open — once Joined returns true,
// the job's effect on round composition is fixed.
func (sess *Session) Joined() bool {
	s := sess.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return sess.js.inRound || sess.js.ready
}

// Detached reports whether the controller honored a Detach request for this
// session's job — i.e. the job actually withdrew before converging. A
// Detach that lands after the job's last iteration never takes effect, and
// Detached stays false; callers use this to tell a cancelled job from one
// that finished naturally while the cancellation was in flight.
func (sess *Session) Detached() bool {
	s := sess.s
	s.mu.Lock()
	defer s.mu.Unlock()
	return sess.js.detached
}

// Sharing returns the next shared partition this job must process in the
// current round, suspending the caller until it is available; nil means the
// job's iteration is complete.
func (sess *Session) Sharing() *SharedPartition {
	if sess.closed || !sess.inIteration {
		return nil
	}
	cp := sess.s.sharing(sess.js)
	if cp == nil {
		return nil
	}
	return &SharedPartition{sess: sess, cp: cp, k: -1}
}

// EndIteration commits the iteration (AfterIteration + bookkeeping).
func (sess *Session) EndIteration() {
	if sess.closed || !sess.inIteration {
		return
	}
	if !sess.js.deferBarrier {
		// Group-driver members skip the program hook and the iteration
		// count: the group commits the logical iteration exactly once.
		sess.js.job.Prog.AfterIteration(sess.iter)
		sess.js.job.Met.Iterations++
	}
	sess.iter++
	sess.js.job.Iter = sess.iter
	sess.inIteration = false
}

// Close deregisters the job. Idempotent.
func (sess *Session) Close() {
	if sess.closed {
		return
	}
	sess.closed = true
	sess.s.leave(sess.js)
	sess.s.mem.ReserveJobData(-sess.js.job.Prog.StateBytes())
	sess.js.job.Done = true
	sess.s.wg.Done()
}

// SharedPartition is one partition handed to one job by the sharing
// controller, exposing its chunks in the synchronized streaming order.
type SharedPartition struct {
	sess *Session
	cp   *curPartition
	k    int
	done bool
}

// ID returns the engine partition ID.
func (sp *SharedPartition) ID() int { return sp.cp.part.ID }

// NumChunks returns the number of logical chunks in the partition.
func (sp *SharedPartition) NumChunks() int { return len(sp.cp.set.Chunks) }

// Next advances to the next chunk, honouring the fine-grained
// synchronization barriers (a chunk opens for this job once the elected
// leader has pulled it into the LLC). It returns false after the last
// chunk or on system failure.
func (sp *SharedPartition) Next() bool {
	if sp.done {
		return false
	}
	s := sp.sess.s
	if s.cfg.FineSync {
		if sp.k >= 0 {
			s.chunkDone(sp.sess.js, sp.cp)
		}
		sp.k++
		if sp.k >= len(sp.cp.set.Chunks) {
			sp.done = true
			return false
		}
		if !s.awaitChunk(sp.sess.js, sp.cp, sp.k) {
			sp.done = true
			return false
		}
		return true
	}
	sp.k++
	if sp.k >= len(sp.cp.set.Chunks) {
		sp.done = true
		return false
	}
	return true
}

// Edges returns the current chunk exactly as this job observes it through
// its snapshot (private mutations / versioned updates applied), together
// with the chunk's simulated base address and the index of its first edge
// within that address region — the inputs engine.StreamEdges needs.
func (sp *SharedPartition) Edges() (edges []graph.Edge, baseAddr uint64, first int) {
	s := sp.sess.s
	t := sp.cp.set.Chunks[sp.k]
	edges = sp.cp.part.Edges[t.FirstEdge : t.FirstEdge+t.NumEdges]
	baseAddr = sp.cp.buf.BaseAddr
	first = t.FirstEdge
	if cpy := s.snaps.resolve(sp.sess.js.job.ID, sp.sess.js.born, sp.cp.part.ID, sp.k); cpy != nil {
		edges, baseAddr, first = cpy.edges, cpy.addr, 0
	}
	return edges, baseAddr, first
}

// Process streams the current chunk through the job's program with the
// system's LLC instrumentation, feeding the profiling phase.
func (sp *SharedPartition) Process() {
	s := sp.sess.s
	st := s.streamChunk(sp.sess.js, sp.cp, sp.k)
	s.recordSample(sp.sess.js, st)
}

// ProcessAll applies every chunk of the partition for this job and returns
// when the job's share of the partition is fully streamed. With the parallel
// executor enabled (Config.Workers >= 1) the chunks become work items on the
// round's worker pool — the FineSync lockstep and per-job serialization are
// preserved, but real concurrency across attending jobs is bounded by the
// worker count instead of one goroutine per job. Without the executor it is
// exactly the serial Next/Process loop. Call Barrier afterwards as usual;
// drivers that need custom per-chunk handling keep using Next/Process/Edges
// directly, which interoperates with pool-driven jobs on the same lockstep.
func (sp *SharedPartition) ProcessAll() {
	if sp.done {
		return
	}
	s := sp.sess.s
	if s.execEnabled() {
		s.processAll(sp.sess.js, sp.cp)
		sp.done = true
		return
	}
	for sp.Next() {
		sp.Process()
	}
}

// Report feeds externally measured streaming stats to the profiler, for
// engines that consumed Edges() directly instead of calling Process.
func (sp *SharedPartition) Report(st engine.StreamStats) {
	sp.sess.s.recordSample(sp.sess.js, st)
}

// Barrier marks the partition complete for this job (Table 1's Barrier()),
// letting the controller advance once every attending job arrives. It must
// be called exactly once, after Next has returned false (or to abandon the
// remaining chunks only when the system has failed).
func (sp *SharedPartition) Barrier() {
	// Drain remaining chunk barriers if the caller bailed early on error.
	if s := sp.sess.s; s.cfg.FineSync && !sp.done && s.Err() != nil {
		sp.done = true
	}
	sp.sess.s.partitionBarrier(sp.sess.js, sp.cp)
}

// Package core implements GraphM, the paper's storage runtime for
// concurrent iterative graph processing (Sections 3 and 4):
//
//   - one shared, ref-counted copy of each graph partition in memory
//     (Algorithm 2, the Sharing() API),
//   - logical chunking of partitions sized to the LLC (Formula 1,
//     Algorithm 1, via internal/chunk),
//   - fine-grained chunk-level synchronization of concurrent jobs with a
//     run-time profiling phase (Formulas 2–4),
//   - the partition-loading scheduler of Section 4 (Formula 5), and
//   - consistent snapshots with copy-on-write chunks for graph mutations
//     and updates (Section 3.3.2).
//
// GraphM is engine-agnostic: any engine substrate exposes its partition
// layout through the Layout interface and drives the Table 1 API.
package core

import "graphm/internal/graph"

// Partition is an engine partition as seen by GraphM: a contiguous edge
// stream with a known source-vertex range (used for active-partition
// detection) and a disk-resident blob.
type Partition struct {
	ID           int
	SrcLo, SrcHi int
	DiskName     string
	Edges        []graph.Edge
}

// Layout describes an engine's native partitioning of one graph. The engine
// keeps its own representation (grid, shards, CSR...); GraphM never rewrites
// it (Section 3.2: chunks are logical labels over the native layout).
type Layout interface {
	Graph() *graph.Graph
	Partitions() []*Partition
}

// sliceLayout is a trivial Layout over prebuilt partitions, used by tests.
type sliceLayout struct {
	g     *graph.Graph
	parts []*Partition
}

// NewLayout wraps a graph and explicit partitions as a Layout.
func NewLayout(g *graph.Graph, parts []*Partition) Layout {
	return &sliceLayout{g: g, parts: parts}
}

func (l *sliceLayout) Graph() *graph.Graph      { return l.g }
func (l *sliceLayout) Partitions() []*Partition { return l.parts }

package core

import (
	"sync"
	"testing"

	"graphm/internal/chunk"
	"graphm/internal/graph"
)

// TestSnapshotStoreConcurrency hammers the snapshot store with the
// concurrency shape the real system produces, for the -race CI job:
// writers (update / mutate / relabelPartition) serialized by one mutex —
// System.mu plays that role in production — while readers (resolve,
// currentVersion, overrideCount) and the job-exit path (release,
// pruneBefore, which System.leave runs outside its lock) interleave freely.
func TestSnapshotStoreConcurrency(t *testing.T) {
	const (
		pid       = 0
		jobCount  = 4
		writerOps = 200
	)
	base := seqEdges(32)
	sets := []*chunk.Set{
		chunk.Label(pid, base, 8*graph.EdgeSize),  // 4 chunks
		chunk.Label(pid, base, 16*graph.EdgeSize), // 2 chunks
	}
	sets[1].Epoch = 1

	st := newSnapshotStore()
	var ctl sync.Mutex // stands in for System.mu: serializes structure writers
	cur := 0           // index into sets of the current labelling; guarded by ctl

	var wg sync.WaitGroup
	stop := make(chan struct{})

	// Writer: updates, mutations and periodic relabels in one serialized
	// stream, exactly as partition barriers and evolve calls interleave.
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer close(stop)
		for i := 0; i < writerOps; i++ {
			ctl.Lock()
			n := sets[cur].NumChunks()
			switch i % 4 {
			case 0:
				st.update(pid, i%n, seqEdges(3+i%5), alloc64)
			case 1:
				st.mutate(1+i%jobCount, pid, i%n, seqEdges(1+i%3), alloc64)
			case 2:
				st.update(pid, (i+1)%n, seqEdges(2), alloc64)
			default:
				next := 1 - cur
				st.relabelPartition(pid, base, sets[cur], sets[next], map[int]int{1: 0, 2: 0}, alloc64)
				cur = next
			}
			ctl.Unlock()
		}
	}()

	// Readers: resolve against whatever labelling is current. The chunk
	// index is read under ctl (as chunkViewEdgesLocked does) but resolve
	// itself runs with only the store's own lock.
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			i := 0
			for {
				select {
				case <-stop:
					return
				default:
				}
				ctl.Lock()
				n := sets[cur].NumChunks()
				ctl.Unlock()
				born := st.currentVersion()
				if cp := st.resolve(1+(seed+i)%jobCount, born, pid, i%n); cp != nil && len(cp.edges) == 0 && cp.table == nil {
					t.Error("resolve returned a copy with no table")
					return
				}
				st.overrideCount()
				i++
			}
		}(r)
	}

	// Job-exit path: release + pruneBefore race the writers, as leave()
	// does outside System.mu.
	wg.Add(1)
	go func() {
		defer wg.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			st.release(1 + i%jobCount)
			st.pruneBefore(st.currentVersion() - 5)
			i++
		}
	}()

	wg.Wait()

	// Post-quiescence invariants: the version counter saw every update (two
	// per four-op cycle), and pruning to the current version leaves exactly
	// one observable version per remaining chain.
	if got, want := st.currentVersion(), writerOps/2; got != want {
		t.Fatalf("version counter = %d, want %d", got, want)
	}
	st.pruneBefore(st.currentVersion())
	st.mu.RLock()
	for key, vs := range st.versions {
		if len(vs) != 1 {
			t.Fatalf("chain for key %d has %d versions after full prune, want 1", key, len(vs))
		}
	}
	st.mu.RUnlock()
}

// TestSnapshotPruneDropsUnobservableVersions pins the pruning contract the
// satellite asks for: versions no live job can observe are dropped, the
// newest observable one survives.
func TestSnapshotPruneDropsUnobservableVersions(t *testing.T) {
	st := newSnapshotStore()
	var vs []int
	for i := 0; i < 4; i++ {
		vs = append(vs, st.update(0, 0, seqEdges(i+1), alloc64))
	}
	key := chunkKey(0, 0)

	chainLen := func() int {
		st.mu.RLock()
		defer st.mu.RUnlock()
		return len(st.versions[key])
	}

	// minBorn older than every version: nothing can be dropped.
	st.pruneBefore(vs[0] - 1)
	if chainLen() != 4 {
		t.Fatalf("chain = %d after no-op prune, want 4", chainLen())
	}
	// minBorn at v3: v1 and v2 are unobservable (every live job resolves to
	// v3 or newer), so exactly [v3, v4] survive.
	st.pruneBefore(vs[2])
	if chainLen() != 2 {
		t.Fatalf("chain = %d after prune at v3, want 2", chainLen())
	}
	if cp := st.resolve(-1, vs[2], 0, 0); cp == nil || len(cp.edges) != 3 {
		t.Fatal("newest observable version (v3) lost by pruning")
	}
	// minBorn beyond the newest: only the newest survives.
	st.pruneBefore(vs[3] + 10)
	if chainLen() != 1 {
		t.Fatalf("chain = %d after full prune, want 1", chainLen())
	}
	if cp := st.resolve(-1, vs[3], 0, 0); cp == nil || len(cp.edges) != 4 {
		t.Fatal("newest version lost by full pruning")
	}
}

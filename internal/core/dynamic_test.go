package core_test

import (
	"testing"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
)

// drive runs a session through the standard driver loop (the same loop
// System.Submit and the admission service use).
func drive(sess *core.Session) {
	for sess.BeginIteration() {
		finishIteration(sess, sess.Sharing())
	}
	sess.Close()
}

// finishIteration completes the current iteration starting from an
// already-obtained shared partition (nil if the iteration has none).
func finishIteration(sess *core.Session, sp *core.SharedPartition) {
	for sp != nil {
		for sp.Next() {
			sp.Process()
		}
		sp.Barrier()
		sp = sess.Sharing()
	}
	sess.EndIteration()
}

// TestMidRoundAttachCompletesFullIteration verifies the dynamic-admission
// hook: a job that joins while a round is streaming must still produce the
// same answer as a solo run — the partitions its round has already passed
// are appended to the round order, so no iteration is partial.
func TestMidRoundAttachCompletesFullIteration(t *testing.T) {
	r := newRig(t, 600, 5000, 4, core.DefaultConfig(64<<10))

	long := algorithms.NewPageRank(0.85, 30)
	long.Tolerance = -1 // negative disables the early exit; 0 would mean Reset's 1e-7 default
	jLong := engine.NewJob(1, long, 21)
	sessLong, err := r.sys.OpenSession(jLong)
	if err != nil {
		t.Fatal(err)
	}
	// Drive the long job by hand up to its first partition and hold it
	// there: the round is now provably in flight while the late job joins.
	if !sessLong.BeginIteration() {
		t.Fatal("long job refused its first iteration")
	}
	held := sessLong.Sharing()
	if held == nil {
		t.Fatal("long job's first iteration has no partitions")
	}

	bfs := algorithms.NewBFS(3)
	jLate := engine.NewJob(2, bfs, 22)
	sessLate, err := r.sys.OpenSessionWith(jLate, core.SessionOptions{JoinMidRound: true})
	if err != nil {
		t.Fatal(err)
	}
	lateDone := make(chan struct{})
	go func() {
		drive(sessLate)
		close(lateDone)
	}()
	// The pinned round cannot end, so the late driver must attach to it.
	deadline := time.Now().Add(10 * time.Second)
	for r.sys.StatsSnapshot().MidRoundJoins == 0 {
		if time.Now().After(deadline) {
			t.Fatal("late job never attached to the pinned round")
		}
		time.Sleep(time.Millisecond)
	}
	// Resume the long job: finish the held iteration, then run it out.
	finishIteration(sessLong, held)
	for sessLong.BeginIteration() {
		finishIteration(sessLong, sessLong.Sharing())
	}
	sessLong.Close()
	<-lateDone

	want := algorithms.ReferenceBFS(r.g, 3)
	got := bfs.Dist()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("mid-round BFS dist[%d] = %d, want %d", v, got[v], want[v])
		}
	}
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.MidRoundJoins == 0 {
		t.Fatal("late job never attached mid-round")
	}
	if st.SharedLoads == 0 {
		t.Fatal("late job shared no partition loads with the running job")
	}
}

// TestDetachWithdrawsEndlessJob verifies the detach hook: an endless job
// asked to detach leaves the controller at a partition barrier without
// wedging the round for the remaining jobs.
func TestDetachWithdrawsEndlessJob(t *testing.T) {
	r := newRig(t, 600, 5000, 4, core.DefaultConfig(64<<10))

	endless := algorithms.NewPageRank(0.85, 1_000_000)
	// Negative tolerance disables the early exit entirely; zero would be
	// replaced by Reset's 1e-7 default, and PageRank on this small graph
	// reaches that within the test's polling sleep — the job would converge
	// naturally before the detach landed and Detaches would stay 0.
	endless.Tolerance = -1
	jEndless := engine.NewJob(1, endless, 31)
	sessEndless, err := r.sys.OpenSession(jEndless)
	if err != nil {
		t.Fatal(err)
	}
	finished := make(chan struct{})
	go func() {
		drive(sessEndless)
		close(finished)
	}()

	wcc := algorithms.NewWCC(0)
	jW := engine.NewJob(2, wcc, 32)
	sessW, err := r.sys.OpenSession(jW)
	if err != nil {
		t.Fatal(err)
	}
	go drive(sessW)

	deadline := time.Now().Add(5 * time.Second)
	for r.sys.StatsSnapshot().Rounds == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no round ever started")
		}
		time.Sleep(time.Millisecond)
	}
	sessEndless.Detach()
	select {
	case <-finished:
	case <-time.After(10 * time.Second):
		t.Fatal("detached job never exited its driver loop")
	}
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	if st := r.sys.StatsSnapshot(); st.Detaches != 1 {
		t.Fatalf("Detaches = %d, want 1", st.Detaches)
	}
	// The surviving job must have converged to the right answer.
	want := algorithms.ReferenceWCC(r.g)
	got := wcc.Labels()
	for v := range want {
		if got[v] != want[v] {
			t.Fatalf("WCC label[%d] = %d, want %d after co-job detached", v, got[v], want[v])
		}
	}
}

// TestDetachWhileWaitingAtRoundBarrier verifies that a job blocked waiting
// for a round to form withdraws without joining it: it must never be billed
// an attendance share for partitions it would not stream.
func TestDetachWhileWaitingAtRoundBarrier(t *testing.T) {
	r := newRig(t, 400, 3000, 4, core.DefaultConfig(64<<10))

	// A registered session that never begins an iteration keeps the round
	// barrier from forming (readyCount < live).
	blocker := engine.NewJob(1, algorithms.NewWCC(0), 41)
	sessBlocker, err := r.sys.OpenSession(blocker)
	if err != nil {
		t.Fatal(err)
	}

	wcc := algorithms.NewWCC(0)
	jWaiter := engine.NewJob(2, wcc, 42)
	sessWaiter, err := r.sys.OpenSession(jWaiter)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		drive(sessWaiter)
		close(done)
	}()
	// Let the waiter reach the barrier, then withdraw it.
	time.Sleep(20 * time.Millisecond)
	sessWaiter.Detach()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("detached job never left the round barrier")
	}
	sessBlocker.Close()
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.Detaches != 1 {
		t.Fatalf("Detaches = %d, want exactly 1", st.Detaches)
	}
	if st.Rounds != 0 {
		t.Fatalf("a round formed (%d) although no job ever streamed", st.Rounds)
	}
	if jWaiter.Met.PartitionLoads != 0 || jWaiter.Met.SimIONS != 0 {
		t.Fatalf("withdrawn job was billed for loads it never streamed: %+v", jWaiter.Met)
	}
}

// TestStatsSubDeltas covers the per-job stats-delta arithmetic used by the
// service layer.
func TestStatsSubDeltas(t *testing.T) {
	old := core.Stats{Rounds: 2, SharedLoads: 5, ChunkBytes: 1024, NumChunks: 8, MetadataBytes: 64}
	cur := core.Stats{Rounds: 7, SharedLoads: 11, MidRoundJoins: 3, Detaches: 1,
		ChunkBytes: 1024, NumChunks: 8, MetadataBytes: 64}
	d := cur.Sub(old)
	if d.Rounds != 5 || d.SharedLoads != 6 || d.MidRoundJoins != 3 || d.Detaches != 1 {
		t.Fatalf("delta = %+v", d)
	}
	if d.ChunkBytes != 1024 || d.NumChunks != 8 || d.MetadataBytes != 64 {
		t.Fatalf("sizing fields not carried over: %+v", d)
	}
}

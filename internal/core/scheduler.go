package core

import "sort"

// Section 4: the scheduling strategy for out-of-core graph analysis.
//
// A loaded partition should serve as many concurrent jobs as possible, and
// jobs with few active partitions should finish their iteration quickly so
// the partitions they activate join the sharing pool sooner. Formula (5):
//
//	Pri(P_i) = MAX_{j∈J_i} (1 / N_j(P)) * N(J_i)
//
// where J_i is the set of jobs that handle P_i this round, N_j(P) the number
// of active partitions of job j, and N(J_i) = |J_i|.

// schedEntry pairs a partition with the data Formula (5) needs.
type schedEntry struct {
	pid      int
	numJobs  int     // N(J_i)
	minJobNP int     // min over attending jobs of N_j(P)
	pri      float64 // computed priority
}

// orderPartitions returns the visit order for one round. attend maps
// partition ID -> attending job IDs; jobNP maps job ID -> its number of
// active partitions. When useScheduler is false the order is the engine's
// default (ascending partition ID), the behaviour of GridGraph-M-without in
// Figure 18.
func orderPartitions(attend map[int][]int, jobNP map[int]int, useScheduler bool) []int {
	entries := make([]schedEntry, 0, len(attend))
	for pid, js := range attend {
		if len(js) == 0 {
			continue
		}
		e := schedEntry{pid: pid, numJobs: len(js), minJobNP: int(^uint(0) >> 1)}
		for _, j := range js {
			if np := jobNP[j]; np < e.minJobNP && np > 0 {
				e.minJobNP = np
			}
		}
		// MAX_j 1/N_j(P) is 1/min_j N_j(P).
		e.pri = float64(e.numJobs) / float64(e.minJobNP)
		entries = append(entries, e)
	}
	if useScheduler {
		sort.Slice(entries, func(a, b int) bool {
			if entries[a].pri != entries[b].pri {
				return entries[a].pri > entries[b].pri
			}
			return entries[a].pid < entries[b].pid
		})
	} else {
		sort.Slice(entries, func(a, b int) bool { return entries[a].pid < entries[b].pid })
	}
	order := make([]int, len(entries))
	for i, e := range entries {
		order[i] = e.pid
	}
	return order
}

package core

import (
	"fmt"
	"sync"

	"graphm/internal/chunk"
	"graphm/internal/graph"
)

// snapshotStore implements Section 3.3.2: consistent snapshots of the shared
// graph under per-job *mutations* (visible only to the mutating job) and
// global *updates* (visible only to jobs submitted afterwards).
//
// The shared base chunk is never modified in place. A mutation copies the
// chunk into a job-private override; an update installs a new chunk version
// stamped with a monotonically increasing version number. A job born at
// version b resolves a chunk as: its own override if any, else the newest
// version ≤ b, else the base chunk.
type snapshotStore struct {
	mu      sync.RWMutex
	version int

	// versions[chunkKey] is ascending by version.
	versions map[uint64][]chunkVersion
	// overrides[jobID][chunkKey] is the job's private mutated chunk.
	overrides map[int]map[uint64]*chunkCopy
}

type chunkVersion struct {
	version int
	copy    *chunkCopy
}

// chunkCopy is a copied chunk: its edges, its simulated address (a fresh
// physical allocation — copies do not share LLC lines with the base), and a
// re-labelled chunk table so Set_c stays coherent (Section 3.3.2 notes Set_c
// must be updated on graph updates).
type chunkCopy struct {
	edges []graph.Edge
	addr  uint64
	table *chunk.Table
}

func newSnapshotStore() *snapshotStore {
	return &snapshotStore{
		versions:  make(map[uint64][]chunkVersion),
		overrides: make(map[int]map[uint64]*chunkCopy),
	}
}

func chunkKey(partID, chunkIdx int) uint64 {
	return uint64(partID)<<32 | uint64(uint32(chunkIdx))
}

// currentVersion returns the store's version; jobs record it at submission.
func (st *snapshotStore) currentVersion() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.version
}

// update installs new edges for (partID, chunkIdx) as a new global version
// and returns the version number. alloc provides simulated addresses.
func (st *snapshotStore) update(partID, chunkIdx int, edges []graph.Edge, alloc func(int64) uint64) int {
	cp := &chunkCopy{
		edges: append([]graph.Edge(nil), edges...),
		addr:  alloc(int64(len(edges)) * graph.EdgeSize),
		table: relabel(edges),
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.version++
	key := chunkKey(partID, chunkIdx)
	st.versions[key] = append(st.versions[key], chunkVersion{version: st.version, copy: cp})
	return st.version
}

// mutate installs a job-private override for (partID, chunkIdx). The base
// the job currently sees is copied implicitly by supplying edges.
func (st *snapshotStore) mutate(jobID, partID, chunkIdx int, edges []graph.Edge, alloc func(int64) uint64) {
	cp := &chunkCopy{
		edges: append([]graph.Edge(nil), edges...),
		addr:  alloc(int64(len(edges)) * graph.EdgeSize),
		table: relabel(edges),
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.overrides[jobID]
	if m == nil {
		m = make(map[uint64]*chunkCopy)
		st.overrides[jobID] = m
	}
	m[chunkKey(partID, chunkIdx)] = cp
}

// resolve returns the chunk copy job jobID (born at version born) must read
// for (partID, chunkIdx), or nil if the job reads the shared base chunk.
func (st *snapshotStore) resolve(jobID, born, partID, chunkIdx int) *chunkCopy {
	st.mu.RLock()
	defer st.mu.RUnlock()
	key := chunkKey(partID, chunkIdx)
	if m, ok := st.overrides[jobID]; ok {
		if cp, ok := m[key]; ok {
			return cp
		}
	}
	vs := st.versions[key]
	// Newest version not newer than the job's birth.
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].version <= born {
			return vs[i].copy
		}
	}
	return nil
}

// release drops a finished job's private overrides (the paper releases
// copied chunks when the corresponding job finishes).
func (st *snapshotStore) release(jobID int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.overrides, jobID)
}

// pruneBefore drops versions that no live job can observe: callers pass the
// minimum birth version among live jobs and the current version.
func (st *snapshotStore) pruneBefore(minBorn int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for key, vs := range st.versions {
		// Keep the newest version ≤ minBorn (still readable) and everything
		// newer; drop strictly older ones.
		keepFrom := 0
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].version <= minBorn {
				keepFrom = i
				break
			}
		}
		if keepFrom > 0 {
			st.versions[key] = append([]chunkVersion(nil), vs[keepFrom:]...)
		}
	}
}

// overrideCount reports live override chunks, for tests and stats.
func (st *snapshotStore) overrideCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, m := range st.overrides {
		n += len(m)
	}
	return n
}

// relabel rebuilds a chunk table for copied edges (one whole chunk).
func relabel(edges []graph.Edge) *chunk.Table {
	set := chunk.Label(0, edges, int64(len(edges)+1)*graph.EdgeSize)
	if len(set.Chunks) == 0 {
		return &chunk.Table{}
	}
	if len(set.Chunks) != 1 {
		panic(fmt.Sprintf("core: relabel produced %d chunks, want 1", len(set.Chunks)))
	}
	return set.Chunks[0]
}

package core

import (
	"fmt"
	"sort"
	"sync"

	"graphm/internal/chunk"
	"graphm/internal/graph"
)

// snapshotStore implements Section 3.3.2: consistent snapshots of the shared
// graph under per-job *mutations* (visible only to the mutating job) and
// global *updates* (visible only to jobs submitted afterwards).
//
// The shared base chunk is never modified in place. A mutation copies the
// chunk into a job-private override; an update installs a new chunk version
// stamped with a monotonically increasing version number. A job born at
// version b resolves a chunk as: its own override if any, else the newest
// version ≤ b, else the base chunk.
type snapshotStore struct {
	mu      sync.RWMutex
	version int

	// versions[chunkKey] is ascending by version.
	versions map[uint64][]chunkVersion
	// overrides[jobID][chunkKey] is the job's private mutated chunk.
	overrides map[int]map[uint64]*chunkCopy
}

type chunkVersion struct {
	version int
	copy    *chunkCopy
}

// chunkCopy is a copied chunk: its edges, its simulated address (a fresh
// physical allocation — copies do not share LLC lines with the base), and a
// re-labelled chunk table so Set_c stays coherent (Section 3.3.2 notes Set_c
// must be updated on graph updates).
type chunkCopy struct {
	edges []graph.Edge
	addr  uint64
	table *chunk.Table
}

func newSnapshotStore() *snapshotStore {
	return &snapshotStore{
		versions:  make(map[uint64][]chunkVersion),
		overrides: make(map[int]map[uint64]*chunkCopy),
	}
}

func chunkKey(partID, chunkIdx int) uint64 {
	return uint64(partID)<<32 | uint64(uint32(chunkIdx))
}

// currentVersion returns the store's version; jobs record it at submission.
func (st *snapshotStore) currentVersion() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.version
}

// update installs new edges for (partID, chunkIdx) as a new global version
// and returns the version number. alloc provides simulated addresses.
func (st *snapshotStore) update(partID, chunkIdx int, edges []graph.Edge, alloc func(int64) uint64) int {
	cp := &chunkCopy{
		edges: append([]graph.Edge(nil), edges...),
		addr:  alloc(int64(len(edges)) * graph.EdgeSize),
		table: relabel(edges),
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	st.version++
	key := chunkKey(partID, chunkIdx)
	st.versions[key] = append(st.versions[key], chunkVersion{version: st.version, copy: cp})
	return st.version
}

// mutate installs a job-private override for (partID, chunkIdx). The base
// the job currently sees is copied implicitly by supplying edges.
func (st *snapshotStore) mutate(jobID, partID, chunkIdx int, edges []graph.Edge, alloc func(int64) uint64) {
	cp := &chunkCopy{
		edges: append([]graph.Edge(nil), edges...),
		addr:  alloc(int64(len(edges)) * graph.EdgeSize),
		table: relabel(edges),
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	m := st.overrides[jobID]
	if m == nil {
		m = make(map[uint64]*chunkCopy)
		st.overrides[jobID] = m
	}
	m[chunkKey(partID, chunkIdx)] = cp
}

// resolve returns the chunk copy job jobID (born at version born) must read
// for (partID, chunkIdx), or nil if the job reads the shared base chunk.
func (st *snapshotStore) resolve(jobID, born, partID, chunkIdx int) *chunkCopy {
	st.mu.RLock()
	defer st.mu.RUnlock()
	key := chunkKey(partID, chunkIdx)
	if m, ok := st.overrides[jobID]; ok {
		if cp, ok := m[key]; ok {
			return cp
		}
	}
	vs := st.versions[key]
	// Newest version not newer than the job's birth.
	for i := len(vs) - 1; i >= 0; i-- {
		if vs[i].version <= born {
			return vs[i].copy
		}
	}
	return nil
}

// hasOverride reports whether jobID currently holds a private copy of
// (partID, chunkIdx). Rollback uses it to tell "the failed op's override is
// still installed" apart from "the job finished and its overrides were
// released" — only the former may be undone.
func (st *snapshotStore) hasOverride(jobID, partID, chunkIdx int) bool {
	st.mu.RLock()
	defer st.mu.RUnlock()
	m, ok := st.overrides[jobID]
	if !ok {
		return false
	}
	_, ok = m[chunkKey(partID, chunkIdx)]
	return ok
}

// dropOverride removes one private copy, used by rollback to undo a failed
// mutation that created the override in the first place.
func (st *snapshotStore) dropOverride(jobID, partID, chunkIdx int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	m, ok := st.overrides[jobID]
	if !ok {
		return
	}
	delete(m, chunkKey(partID, chunkIdx))
	if len(m) == 0 {
		delete(st.overrides, jobID)
	}
}

// release drops a finished job's private overrides (the paper releases
// copied chunks when the corresponding job finishes).
func (st *snapshotStore) release(jobID int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	delete(st.overrides, jobID)
}

// pruneBefore drops versions that no live job can observe: callers pass the
// minimum birth version among live jobs and the current version.
func (st *snapshotStore) pruneBefore(minBorn int) {
	st.mu.Lock()
	defer st.mu.Unlock()
	for key, vs := range st.versions {
		// Keep the newest version ≤ minBorn (still readable) and everything
		// newer; drop strictly older ones.
		keepFrom := 0
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].version <= minBorn {
				keepFrom = i
				break
			}
		}
		if keepFrom > 0 {
			st.versions[key] = append([]chunkVersion(nil), vs[keepFrom:]...)
		}
	}
}

// relabelPartition rebases the store's state for one partition onto a new
// chunk labelling — the stable-chunk-key remapping behind adaptive
// re-labelling. Versions and overrides are keyed by (partition, chunk
// index), and a re-label changes what each index means; this remap rewrites
// the keys so that every observer's concatenated partition stream is
// bit-identical before and after:
//
//   - For global versions, visibility collapses to the partition level: a
//     job born at b sees, for each chunk, the newest version <= b, so the
//     distinct version numbers V across the partition's chunks define all
//     observable full-partition streams S_v. Each S_v is re-split along the
//     new chunk boundaries (chunk.SplitStream) and installed on every new
//     chunk at version v, giving all new chunks identical version sets —
//     resolution at any born then picks the same v on every chunk, exactly
//     reproducing S_v.
//   - For job-private overrides, the job's full view (override where
//     present, else its born-version resolution, else base) is baked into
//     per-new-chunk overrides the same way. Baking the version view into
//     the override is sound because the job's born is fixed: versions
//     installed later are invisible to it anyway, and a later MutateChunk
//     replaces the baked chunk wholesale just as it replaced base chunks.
//
// The rebase densifies the partition's snapshot state (every new chunk gets
// an entry where before only changed chunks did); pruneBefore and release
// keep that bounded over a job population's lifetime. borns maps live job
// IDs to their birth versions; override owners not listed (possible only
// for never-submitted job IDs) default to the current version, matching
// chunkViewEdgesLocked. Caller must guarantee no streaming pass holds the old
// labelling — in core that is the partition-open barrier.
func (st *snapshotStore) relabelPartition(pid int, baseEdges []graph.Edge, old, nw *chunk.Set, borns map[int]int, alloc func(int64) uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	oldN, newN := old.NumChunks(), nw.NumChunks()
	perChunk := make([][]chunkVersion, oldN)
	versionSet := make(map[int]bool)
	hasState := false
	for k := 0; k < oldN; k++ {
		vs := st.versions[chunkKey(pid, k)]
		perChunk[k] = vs
		for _, v := range vs {
			versionSet[v.version] = true
			hasState = true
		}
	}
	owners := make([]int, 0, len(st.overrides))
	for jobID, m := range st.overrides {
		for k := 0; k < oldN; k++ {
			if _, ok := m[chunkKey(pid, k)]; ok {
				owners = append(owners, jobID)
				hasState = true
				break
			}
		}
	}
	if !hasState || newN == 0 {
		return
	}
	sort.Ints(owners)

	// baseSeg and resolveAt reconstruct one old chunk's stream as seen at a
	// given version.
	baseSeg := func(k int) []graph.Edge {
		t := old.Chunks[k]
		return baseEdges[t.FirstEdge : t.FirstEdge+t.NumEdges]
	}
	resolveAt := func(k, born int) []graph.Edge {
		vs := perChunk[k]
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].version <= born {
				return vs[i].copy.edges
			}
		}
		return baseSeg(k)
	}
	newBaseSeg := func(k int) []graph.Edge {
		t := nw.Chunks[k]
		return baseEdges[t.FirstEdge : t.FirstEdge+t.NumEdges]
	}
	edgesEq := func(a, b []graph.Edge) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	// mkCopy clamps the segment's capacity to its length: the segments of
	// one split share a backing array, and resolve hands cp.edges out by
	// reference (ChunkView is public), so an append on one chunk's view must
	// not be able to write into its neighbour's stored copy — update and
	// mutate get the same guarantee from their dedicated allocations.
	mkCopy := func(seg []graph.Edge) *chunkCopy {
		seg = seg[:len(seg):len(seg)]
		return &chunkCopy{
			edges: seg,
			addr:  alloc(int64(len(seg)) * graph.EdgeSize),
			table: relabel(seg),
		}
	}

	// Rebase the version chains. A version's segment is only stored on a
	// new chunk when it differs from what resolution would yield anyway —
	// the base, or wherever a previously-installed (older) version makes
	// base fall-through wrong — so a relabel keeps the store at the size of
	// the *changed* content, not versions x partition bytes. Skipping is
	// safe exactly when the chunk's rebased chain is still empty: a job
	// born at the skipped version then falls through to the identical base
	// segment.
	versions := make([]int, 0, len(versionSet))
	for v := range versionSet {
		versions = append(versions, v)
	}
	sort.Ints(versions)
	newVersions := make(map[uint64][]chunkVersion, newN)
	for _, v := range versions {
		var stream []graph.Edge
		for k := 0; k < oldN; k++ {
			stream = append(stream, resolveAt(k, v)...)
		}
		for i, seg := range chunk.SplitStream(stream, nw.ChunkBytes, newN) {
			key := chunkKey(pid, i)
			if len(newVersions[key]) == 0 && edgesEq(seg, newBaseSeg(i)) {
				continue
			}
			newVersions[key] = append(newVersions[key], chunkVersion{version: v, copy: mkCopy(seg)})
		}
	}
	for k := 0; k < oldN; k++ {
		delete(st.versions, chunkKey(pid, k))
	}
	for key, vs := range newVersions {
		st.versions[key] = vs
	}
	// resolveNewAt mirrors resolve against the rebased chains: what a job
	// born at `born` reads from new chunk k absent an override.
	resolveNewAt := func(k, born int) []graph.Edge {
		vs := newVersions[chunkKey(pid, k)]
		for i := len(vs) - 1; i >= 0; i-- {
			if vs[i].version <= born {
				return vs[i].copy.edges
			}
		}
		return newBaseSeg(k)
	}

	// Rebase job-private overrides over the (already rebased) version view,
	// with the same sparsity rule: store an override segment only where it
	// differs from the job's version-resolved view.
	for _, jobID := range owners {
		m := st.overrides[jobID]
		born, ok := borns[jobID]
		if !ok {
			born = st.version
		}
		var stream []graph.Edge
		for k := 0; k < oldN; k++ {
			if cp, ok := m[chunkKey(pid, k)]; ok {
				stream = append(stream, cp.edges...)
			} else {
				stream = append(stream, resolveAt(k, born)...)
			}
		}
		for k := 0; k < oldN; k++ {
			delete(m, chunkKey(pid, k))
		}
		for i, seg := range chunk.SplitStream(stream, nw.ChunkBytes, newN) {
			if edgesEq(seg, resolveNewAt(i, born)) {
				continue
			}
			m[chunkKey(pid, i)] = mkCopy(seg)
		}
	}
}

// overridePartitions lists the (jobID, partitionID) pairs holding live
// job-private overrides, sorted for deterministic checkpoint layout.
func (st *snapshotStore) overridePartitions() [][2]int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	var out [][2]int
	for jobID, m := range st.overrides {
		seen := make(map[int]bool)
		for key := range m {
			pid := int(key >> 32)
			if !seen[pid] {
				seen[pid] = true
				out = append(out, [2]int{jobID, pid})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// overrideCount reports live override chunks, for tests and stats.
func (st *snapshotStore) overrideCount() int {
	st.mu.RLock()
	defer st.mu.RUnlock()
	n := 0
	for _, m := range st.overrides {
		n += len(m)
	}
	return n
}

// relabel rebuilds a chunk table for copied edges (one whole chunk).
func relabel(edges []graph.Edge) *chunk.Table {
	set := chunk.Label(0, edges, int64(len(edges)+1)*graph.EdgeSize)
	if len(set.Chunks) == 0 {
		return &chunk.Table{}
	}
	if len(set.Chunks) != 1 {
		panic(fmt.Sprintf("core: relabel produced %d chunks, want 1", len(set.Chunks)))
	}
	return set.Chunks[0]
}

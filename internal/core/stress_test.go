package core_test

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
)

// TestManyJobsManyRounds stresses the round/chunk barriers with a larger
// mixed workload than the basic tests: 12 jobs of four kinds over a skewed
// graph, small LLC (many chunks), small partitions (many rounds).
func TestManyJobsManyRounds(t *testing.T) {
	cfg := core.DefaultConfig(32 << 10)
	cfg.Cores = 4
	r := newRig(t, 800, 9000, 6, cfg)

	var jobs []*engine.Job
	var progs []engine.Program
	for i := 0; i < 12; i++ {
		var p engine.Program
		switch i % 4 {
		case 0:
			pr := algorithms.NewPageRank(0.5+float64(i)*0.02, 5)
			pr.Tolerance = 1e-12
			p = pr
		case 1:
			p = algorithms.NewWCC(1000)
		case 2:
			p = algorithms.NewBFS(graph.VertexID(i))
		default:
			p = algorithms.NewSSSP(graph.VertexID(i))
		}
		progs = append(progs, p)
		jobs = append(jobs, engine.NewJob(i+1, p, int64(i)))
	}
	if err := r.sys.Run(jobs); err != nil {
		t.Fatal(err)
	}
	for i, j := range jobs {
		if !j.Done {
			t.Fatalf("job %d not done", i)
		}
	}
	// Spot-check correctness of one of each kind.
	pr := progs[0].(*algorithms.PageRank)
	wantPR := algorithms.ReferencePageRank(r.g, pr.Damping, 5)
	for v := range wantPR {
		if diff := pr.Ranks()[v] - wantPR[v]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("pagerank diverged at %d", v)
		}
	}
	bfs := progs[2].(*algorithms.BFS)
	wantBFS := algorithms.ReferenceBFS(r.g, bfs.Root)
	for v := range wantBFS {
		if bfs.Dist()[v] != wantBFS[v] {
			t.Fatalf("bfs diverged at %d", v)
		}
	}
}

// TestPropertyConcurrentEqualsSolo: for random graphs and random job mixes,
// every program computes the same result under GraphM concurrency as when
// run alone through a plain streaming loop. This is the system's core
// correctness invariant (sharing must be semantically invisible).
func TestPropertyConcurrentEqualsSolo(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		numV := 50 + rng.Intn(200)
		numE := numV * (2 + rng.Intn(6))
		g, err := graph.GenerateRMAT(graph.DefaultRMAT("q", numV, numE, seed))
		if err != nil {
			return false
		}

		// Solo references.
		soloBFS := algorithms.NewBFS(graph.VertexID(rng.Intn(numV)))
		soloSSSP := algorithms.NewSSSP(graph.VertexID(rng.Intn(numV)))
		runSolo := func(p engine.Program) {
			p.Reset(g, rand.New(rand.NewSource(1)))
			for iter := 0; p.BeforeIteration(iter); iter++ {
				for _, e := range g.Edges {
					if p.Active().Has(int(e.Src)) {
						p.ProcessEdge(e)
					}
				}
				p.AfterIteration(iter)
			}
		}
		runSolo(soloBFS)
		runSolo(soloSSSP)

		// Concurrent under GraphM.
		cfg := core.DefaultConfig(32 << 10)
		cfg.Cores = 4
		rig := newRigWithGraph(t, g, 3, cfg)
		bfs := algorithms.NewBFS(soloBFS.Root)
		sssp := algorithms.NewSSSP(soloSSSP.Root)
		jobs := []*engine.Job{engine.NewJob(1, bfs, 1), engine.NewJob(2, sssp, 2)}
		if err := rig.sys.Run(jobs); err != nil {
			return false
		}
		for v := range soloBFS.Dist() {
			if bfs.Dist()[v] != soloBFS.Dist()[v] {
				return false
			}
		}
		for v := range soloSSSP.Dist() {
			if sssp.Dist()[v] != soloSSSP.Dist()[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestRepeatedRunsDeterministicResults: running the same workload twice
// (fresh systems) yields identical job outputs despite nondeterministic
// goroutine interleavings — GraphM's synchronization must not leak
// scheduling into results.
func TestRepeatedRunsDeterministicResults(t *testing.T) {
	run := func() []float64 {
		cfg := core.DefaultConfig(64 << 10)
		r := newRig(t, 400, 3000, 4, cfg)
		pr := algorithms.NewPageRank(0.8, 6)
		pr.Tolerance = 1e-12
		wcc := algorithms.NewWCC(1000)
		bfs := algorithms.NewBFS(2)
		jobs := []*engine.Job{
			engine.NewJob(1, pr, 1), engine.NewJob(2, wcc, 2), engine.NewJob(3, bfs, 3),
		}
		if err := r.sys.Run(jobs); err != nil {
			t.Fatal(err)
		}
		return append([]float64(nil), pr.Ranks()...)
	}
	a, b := run(), run()
	for v := range a {
		if a[v] != b[v] {
			t.Fatalf("nondeterministic rank at %d: %v vs %v", v, a[v], b[v])
		}
	}
}

// TestConcurrentMutationsIsolated: several jobs mutate the same chunk
// concurrently; each sees only its own mutation.
func TestConcurrentMutationsIsolated(t *testing.T) {
	cfg := core.DefaultConfig(64 << 10)
	r := newRig(t, 300, 2000, 2, cfg)

	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			err := r.sys.MutateChunk(id, 0, 0, func(edges []graph.Edge) []graph.Edge {
				// Each job appends a unique marker edge.
				return append(edges, graph.Edge{Src: 0, Dst: graph.VertexID(id), Weight: 1})
			})
			errs <- err
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	base, err := r.sys.ChunkView(-1, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 8; id++ {
		view, err := r.sys.ChunkView(id, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(view) != len(base)+1 {
			t.Fatalf("job %d view has %d edges, want %d", id, len(view), len(base)+1)
		}
		marker := view[len(view)-1]
		if int(marker.Dst) != id {
			t.Fatalf("job %d sees marker %d", id, marker.Dst)
		}
	}
}

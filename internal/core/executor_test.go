package core_test

import (
	"math/rand"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/jobs"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// execConfig returns a DefaultConfig with the executor enabled at w workers.
func execConfig(llc int64, w int) core.Config {
	cfg := core.DefaultConfig(llc)
	cfg.Workers = w
	return cfg
}

// rotationJobs builds a deterministic 4-algorithm rotation.
func rotationJobs(n int, seed int64) []*engine.Job {
	return jobs.Rotation(n, seed).Jobs
}

func TestConfigValidation(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("v", 128, 800, 3))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(64 << 10)
	cfg.Cores = -1
	if _, err := newRigErr(t, g, cfg); err == nil {
		t.Fatal("negative Cores accepted")
	}
	cfg = core.DefaultConfig(64 << 10)
	cfg.Workers = -2
	if _, err := newRigErr(t, g, cfg); err == nil {
		t.Fatal("negative Workers accepted")
	}
	// Cores == 0 resolves to GOMAXPROCS(0) instead of erroring.
	cfg = core.DefaultConfig(64 << 10)
	cfg.Cores = 0
	sys, err := newRigErr(t, g, cfg)
	if err != nil {
		t.Fatalf("Cores=0 rejected: %v", err)
	}
	if got, want := sys.ResolvedCores(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Cores=0 resolved to %d, want GOMAXPROCS %d", got, want)
	}
}

// TestExecutorMatchesLegacyWork runs one workload under the legacy driver
// and under the executor at 1 and 4 workers: the schedule-independent work
// counters (what was streamed, processed, how the rounds composed) must be
// identical — real parallelism changes when work happens, never how much.
func TestExecutorMatchesLegacyWork(t *testing.T) {
	type outcome struct {
		scanned, processed, iters uint64
		rounds                    int
		shared                    uint64
	}
	run := func(workers int) outcome {
		cfg := core.DefaultConfig(64 << 10)
		cfg.Workers = workers
		r := newRig(t, 512, 4000, 4, cfg)
		js := rotationJobs(6, 99)
		if err := r.sys.Run(js); err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		var o outcome
		for _, j := range js {
			o.scanned += j.Met.ScannedEdges
			o.processed += j.Met.ProcessedEdges
			o.iters += j.Met.Iterations
		}
		st := r.sys.StatsSnapshot()
		o.rounds = st.Rounds
		o.shared = st.SharedLoads
		return o
	}
	legacy := run(0)
	for _, w := range []int{1, 4} {
		got := run(w)
		if got != legacy {
			t.Fatalf("workers=%d outcome %+v != legacy %+v", w, got, legacy)
		}
	}
}

// TestExecutorPageRankCorrect checks numerical results survive the pool.
func TestExecutorPageRankCorrect(t *testing.T) {
	ranksFor := func(workers int) []float64 {
		cfg := execConfig(64<<10, workers)
		r := newRig(t, 256, 2000, 4, cfg)
		pr := algorithms.NewPageRank(0.85, 6)
		pr.Tolerance = 1e-12
		if err := r.sys.Run([]*engine.Job{engine.NewJob(1, pr, 7)}); err != nil {
			t.Fatal(err)
		}
		return pr.Ranks()
	}
	serial := ranksFor(1)
	pooled := ranksFor(4)
	if len(serial) != len(pooled) {
		t.Fatalf("rank lengths differ: %d vs %d", len(serial), len(pooled))
	}
	for i := range serial {
		if diff := serial[i] - pooled[i]; diff > 1e-12 || diff < -1e-12 {
			t.Fatalf("rank[%d] differs: %v vs %v", i, serial[i], pooled[i])
		}
	}
}

// sleepProg is an edge program whose per-edge work is real blocking time,
// so wall-clock speedup from the worker pool is measurable even on a
// single-core machine: sleeping jobs overlap where computing jobs cannot.
type sleepProg struct {
	perEdge time.Duration
	iters   int
	active  *engine.Bitmap
	iter    int
}

func (p *sleepProg) Name() string { return "sleep" }
func (p *sleepProg) Reset(g *graph.Graph, _ *rand.Rand) {
	p.active = engine.NewBitmap(g.NumV)
	p.active.SetAll()
}
func (p *sleepProg) BeforeIteration(iter int) bool { return iter < p.iters }
func (p *sleepProg) ProcessEdge(e graph.Edge) bool {
	time.Sleep(p.perEdge)
	return false
}
func (p *sleepProg) AfterIteration(iter int) { p.iter = iter + 1 }
func (p *sleepProg) Active() *engine.Bitmap  { return p.active }
func (p *sleepProg) StateBytes() int64       { return 64 }
func (p *sleepProg) EdgeCost() float64       { return 1 }

// TestExecutorOverlapsBlockingJobs checks that jobs whose edge functions
// block overlap on a 4-worker pool. The primary assertion is structural —
// the schedule-independent work counters must match the serial run while
// PeakParallelStreams proves chunk applications were genuinely in flight
// together — because those cannot flake under CI load. The wall-clock ratio
// (ideal ~2x: leader phase serial, follower phase fully overlapped) is
// asserted too, but a loaded machine gets one retry before the ratio is
// allowed to fail the test.
func TestExecutorOverlapsBlockingJobs(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	// 8 single-out-edge sources: 8 ProcessEdge calls per job per iteration.
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		edges = append(edges, graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 8), Weight: 1})
	}
	g := graph.MustNew("sleepy", 16, edges)
	run := func(workers int) (time.Duration, []engine.WorkCounters, core.Stats) {
		cfg := execConfig(256<<10, workers)
		r := newRigWithGraph(t, g, 1, cfg)
		var js []*engine.Job
		for id := 1; id <= 4; id++ {
			js = append(js, engine.NewJob(id, &sleepProg{perEdge: 2 * time.Millisecond, iters: 3}, int64(id)))
		}
		start := time.Now()
		if err := r.sys.Run(js); err != nil {
			t.Fatal(err)
		}
		wall := time.Since(start)
		var work []engine.WorkCounters
		for _, j := range js {
			work = append(work, j.Met.Work())
		}
		return wall, work, r.sys.StatsSnapshot()
	}

	// One measurement attempt plus one retry: wall-clock ratios on shared CI
	// runners can collapse when the host steals the timeslices the pooled
	// run would overlap in.
	const attempts = 2
	var ratio float64
	for attempt := 1; attempt <= attempts; attempt++ {
		serial, serialWork, _ := run(1)
		pooled, pooledWork, st := run(4)
		// Work-overlap counters first — these must hold on any machine.
		for i := range serialWork {
			if pooledWork[i] != serialWork[i] {
				t.Fatalf("job %d work counters differ: pooled %+v vs serial %+v", i+1, pooledWork[i], serialWork[i])
			}
		}
		if st.PeakParallelStreams < 2 {
			t.Fatalf("peak parallel streams = %d, want >= 2 (followers never overlapped)", st.PeakParallelStreams)
		}
		ratio = float64(serial) / float64(pooled)
		if ratio >= 1.5 {
			return
		}
		t.Logf("attempt %d/%d: 4-worker wall %v vs serial %v: speedup %.2fx < 1.5x", attempt, attempts, pooled, serial, ratio)
	}
	t.Fatalf("speedup %.2fx < 1.5x after %d attempts (structural overlap held; host too loaded?)", ratio, attempts)
}

// rangeProg is a one-iteration program whose active sources span [lo, hi) —
// it attends exactly the partitions covering that source range.
type rangeProg struct {
	lo, hi int
	active *engine.Bitmap
}

func (p *rangeProg) Name() string { return "range" }
func (p *rangeProg) Reset(g *graph.Graph, _ *rand.Rand) {
	p.active = engine.NewBitmap(g.NumV)
	for v := p.lo; v < p.hi && v < g.NumV; v++ {
		p.active.Set(v)
	}
}
func (p *rangeProg) BeforeIteration(iter int) bool { return iter < 1 }
func (p *rangeProg) ProcessEdge(e graph.Edge) bool { return false }
func (p *rangeProg) AfterIteration(iter int)       {}
func (p *rangeProg) Active() *engine.Bitmap        { return p.active }
func (p *rangeProg) StateBytes() int64             { return 64 }
func (p *rangeProg) EdgeCost() float64             { return 1 }

// blockGraph builds a 16-vertex graph with edges in all four 2x2-grid
// blocks, so a p=2 grid yields two partitions per source block.
func blockGraph() *graph.Graph {
	var edges []graph.Edge
	for i := 0; i < 8; i++ {
		edges = append(edges,
			graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID((i + 1) % 8), Weight: 1},
			graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(8 + i), Weight: 1},
			graph.Edge{Src: graph.VertexID(8 + i), Dst: graph.VertexID(i), Weight: 1},
			graph.Edge{Src: graph.VertexID(8 + i), Dst: graph.VertexID(8 + (i+1)%8), Weight: 1},
		)
	}
	return graph.MustNew("blocks", 16, edges)
}

// TestPrefetchCancelMidRoundDetach: job A attends only the source-block-0
// partitions while job B attends everything; the prefetcher runs one
// partition ahead, so by the time B withdraws mid-round there is an
// in-flight (or just-started) load for a B-only partition that loses its
// last attendee — the stream must skip the partition and cancel the load,
// returning the pinned buffer. Whichever of A and B leaves the shared
// prefix last, at least one B-only prefetch is invalidated.
func TestPrefetchCancelMidRoundDetach(t *testing.T) {
	g := blockGraph()
	r := newRigWithGraph(t, g, 2, execConfig(256<<10, 2))
	r.sys.Submit(engine.NewJob(1, &rangeProg{lo: 0, hi: 8}, 1))
	jB := engine.NewJob(2, &rangeProg{lo: 0, hi: 16}, 2)
	sessB, err := r.sys.OpenSession(jB)
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer sessB.Close()
		for sessB.BeginIteration() {
			barriers := 0
			for {
				sp := sessB.Sharing()
				if sp == nil {
					break
				}
				sp.ProcessAll()
				sp.Barrier()
				barriers++
				if barriers == 2 {
					// Both shared (block-0) partitions done: withdraw while
					// the B-only block-1 partitions are still ahead of the
					// stream and already being prefetched.
					sessB.Detach()
				}
			}
			sessB.EndIteration()
		}
	}()
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.Detaches != 1 {
		t.Fatalf("detaches = %d, want 1", st.Detaches)
	}
	if st.Prefetches == 0 {
		t.Fatal("prefetcher never started")
	}
	if st.PrefetchCancels == 0 {
		t.Fatal("mid-round detach canceled no prefetch")
	}
	if st.PrefetchHits+st.PrefetchCancels != st.Prefetches {
		t.Fatalf("prefetch accounting leak: %d started, %d claimed + %d canceled",
			st.Prefetches, st.PrefetchHits, st.PrefetchCancels)
	}
	// Every partition buffer must be unpinned once the system is idle —
	// canceled prefetches released theirs.
	for _, p := range r.grid.AsLayout().Partitions() {
		if n := r.mem.PinCount(p.DiskName); n != 0 {
			t.Fatalf("partition %s still pinned %d times after Wait", p.DiskName, n)
		}
	}
}

// TestPrefetchFollowsMidRoundAttach: a JoinMidRound arrival rewrites the
// round order (missed partitions are appended); the prefetcher must re-aim
// at the rewritten order and keep its accounting exact.
func TestPrefetchFollowsMidRoundAttach(t *testing.T) {
	r := newRig(t, 512, 4000, 4, execConfig(64<<10, 2))
	// A's blocking edge function keeps the round in flight long enough for
	// B's admission to land mid-round deterministically.
	jA := engine.NewJob(1, &sleepProg{perEdge: 50 * time.Microsecond, iters: 2}, 1)
	r.sys.Submit(jA)
	// Give A a head start so B genuinely attaches mid-round.
	time.Sleep(5 * time.Millisecond)
	jB := engine.NewJob(2, algorithms.NewPageRank(0.85, 3), 2)
	sessB, err := r.sys.OpenSessionWith(jB, core.SessionOptions{JoinMidRound: true})
	if err != nil {
		t.Fatal(err)
	}
	go func() {
		defer sessB.Close()
		for sessB.BeginIteration() {
			for {
				sp := sessB.Sharing()
				if sp == nil {
					break
				}
				sp.ProcessAll()
				sp.Barrier()
			}
			sessB.EndIteration()
		}
	}()
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.MidRoundJoins == 0 {
		t.Fatal("B never attached mid-round — the reorder path was not exercised")
	}
	if st.Prefetches == 0 {
		t.Fatal("prefetcher never started")
	}
	if st.PrefetchHits+st.PrefetchCancels != st.Prefetches {
		t.Fatalf("prefetch accounting leak after reorder: %d started, %d claimed + %d canceled",
			st.Prefetches, st.PrefetchHits, st.PrefetchCancels)
	}
	for _, p := range r.grid.AsLayout().Partitions() {
		if n := r.mem.PinCount(p.DiskName); n != 0 {
			t.Fatalf("partition %s still pinned %d times after Wait", p.DiskName, n)
		}
	}
}

// TestExecutorDisablePrefetch: the pool runs, the prefetcher does not.
func TestExecutorDisablePrefetch(t *testing.T) {
	cfg := execConfig(64<<10, 2)
	cfg.DisablePrefetch = true
	r := newRig(t, 256, 2000, 4, cfg)
	if err := r.sys.Run(rotationJobs(4, 5)); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.Prefetches != 0 {
		t.Fatalf("prefetcher ran %d loads with DisablePrefetch", st.Prefetches)
	}
	if st.PeakParallelStreams == 0 {
		t.Fatal("worker pool never streamed")
	}
}

// TestExecutorStressMidRoundAttach is the work-stealing stress: a 4-worker
// pool, jobs attaching mid-round while rounds are in flight, random
// detaches — run under -race in CI. The invariant checked here is clean
// completion with exact prefetch accounting.
func TestExecutorStressMidRoundAttach(t *testing.T) {
	r := newRig(t, 512, 6000, 4, execConfig(64<<10, 4))
	// A long-running anchor keeps rounds in flight while others churn.
	anchor := algorithms.NewPageRank(0.85, 8)
	r.sys.Submit(engine.NewJob(100, anchor, 1))

	var canceled atomic.Int32
	done := make(chan struct{}, 12)
	for i := 0; i < 12; i++ {
		id := i + 1
		go func() {
			defer func() { done <- struct{}{} }()
			time.Sleep(time.Duration(id%4) * time.Millisecond)
			j := engine.NewJob(id, jobs.NewProgram([]string{"pagerank", "wcc", "bfs", "sssp"}[id%4], rand.New(rand.NewSource(int64(id)))), int64(id))
			sess, err := r.sys.OpenSessionWith(j, core.SessionOptions{JoinMidRound: true})
			if err != nil {
				t.Error(err)
				return
			}
			defer sess.Close()
			iter := 0
			for sess.BeginIteration() {
				for {
					sp := sess.Sharing()
					if sp == nil {
						break
					}
					sp.ProcessAll()
					sp.Barrier()
				}
				sess.EndIteration()
				iter++
				if id%3 == 0 && iter == 1 {
					sess.Detach()
					canceled.Add(1)
				}
			}
		}()
	}
	for i := 0; i < 12; i++ {
		<-done
	}
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	st := r.sys.StatsSnapshot()
	if st.MidRoundJoins == 0 {
		t.Fatal("no mid-round joins — stress did not exercise attach")
	}
	if st.PrefetchHits+st.PrefetchCancels != st.Prefetches {
		t.Fatalf("prefetch accounting leak: %d started, %d claimed + %d canceled",
			st.Prefetches, st.PrefetchHits, st.PrefetchCancels)
	}
	if canceled.Load() > 0 && st.Detaches == 0 {
		t.Fatal("detaches requested but none recorded")
	}
}

// newRigErr is newRigWithGraph without the fatal-on-error behaviour, for
// validation tests.
func newRigErr(t *testing.T, g *graph.Graph, cfg core.Config) (*core.System, error) {
	t.Helper()
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 4, disk)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemory(disk, 64<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	return core.NewSystem(grid.AsLayout(), mem, cache, cfg)
}

package core_test

import (
	"math"
	"sync"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
)

// TestSessionDrivenEngine drives GraphM through the exported Session API —
// the integration path of Figure 6(b), where the engine owns the streaming
// loop — and checks the results match the built-in driver's.
func TestSessionDrivenEngine(t *testing.T) {
	r := newRig(t, 500, 4000, 4, core.DefaultConfig(64<<10))

	pr := algorithms.NewPageRank(0.85, 6)
	pr.Tolerance = 1e-12
	bfs := algorithms.NewBFS(1)
	j1 := engine.NewJob(1, pr, 1)
	j2 := engine.NewJob(2, bfs, 2)

	drive := func(j *engine.Job) {
		sess, err := r.sys.OpenSession(j)
		if err != nil {
			t.Error(err)
			return
		}
		defer sess.Close()
		for sess.BeginIteration() {
			for {
				sp := sess.Sharing()
				if sp == nil {
					break
				}
				for sp.Next() {
					sp.Process()
				}
				sp.Barrier()
			}
			sess.EndIteration()
		}
	}

	var wg sync.WaitGroup
	for _, j := range []*engine.Job{j1, j2} {
		wg.Add(1)
		go func(j *engine.Job) {
			defer wg.Done()
			drive(j)
		}(j)
	}
	wg.Wait()
	if err := r.sys.Err(); err != nil {
		t.Fatal(err)
	}

	wantPR := algorithms.ReferencePageRank(r.g, 0.85, 6)
	for v := range wantPR {
		if math.Abs(pr.Ranks()[v]-wantPR[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], wantPR[v])
		}
	}
	wantBFS := algorithms.ReferenceBFS(r.g, 1)
	for v := range wantBFS {
		if bfs.Dist()[v] != wantBFS[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, bfs.Dist()[v], wantBFS[v])
		}
	}
}

// TestSessionCustomStreaming consumes chunk edges through Edges() and
// reports stats manually — the advanced integration for engines with their
// own edge loop representation.
func TestSessionCustomStreaming(t *testing.T) {
	r := newRig(t, 300, 2000, 2, core.DefaultConfig(64<<10))
	wcc := algorithms.NewWCC(1000)
	j := engine.NewJob(1, wcc, 1)
	sess, err := r.sys.OpenSession(j)
	if err != nil {
		t.Fatal(err)
	}
	scanned := 0
	for sess.BeginIteration() {
		for {
			sp := sess.Sharing()
			if sp == nil {
				break
			}
			if sp.ID() < 0 || sp.ID() >= r.sys.NumPartitions() {
				t.Fatalf("partition ID %d out of range", sp.ID())
			}
			if sp.NumChunks() != r.sys.ChunkCount(sp.ID()) {
				t.Fatalf("NumChunks %d != ChunkCount %d", sp.NumChunks(), r.sys.ChunkCount(sp.ID()))
			}
			for sp.Next() {
				edges, _, _ := sp.Edges()
				var st engine.StreamStats
				for _, e := range edges {
					st.Scanned++
					scanned++
					if wcc.Active().Has(int(e.Src)) {
						wcc.ProcessEdge(e)
						st.Processed++
					}
				}
				sp.Report(st)
			}
			sp.Barrier()
		}
		// Profiled costs become available after the first partitions.
		if _, te, ok := r.sys.ProfiledCosts(j.ID); ok && te < 0 {
			t.Fatalf("profiled T(E) negative: %v", te)
		}
		sess.EndIteration()
	}
	sess.Close()
	if _, _, ok := r.sys.ProfiledCosts(j.ID); ok {
		t.Fatal("ProfiledCosts should report unknown after the job left")
	}
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	if scanned == 0 {
		t.Fatal("custom streaming scanned nothing")
	}
	if r.sys.OverrideChunks() != 0 {
		t.Fatal("no overrides were created, count should be 0")
	}
	want := algorithms.ReferenceWCC(r.g)
	for v := range want {
		if wcc.Labels()[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, wcc.Labels()[v], want[v])
		}
	}
}

// TestSessionMixedWithSubmit runs one session-driven job concurrently with
// Submit-driven jobs; the controller must coordinate both identically.
func TestSessionMixedWithSubmit(t *testing.T) {
	r := newRig(t, 400, 3000, 4, core.DefaultConfig(64<<10))
	pr := algorithms.NewPageRank(0.7, 5)
	pr.Tolerance = 1e-12
	r.sys.Submit(engine.NewJob(1, pr, 1))

	bfs := algorithms.NewBFS(0)
	j := engine.NewJob(2, bfs, 2)
	sess, err := r.sys.OpenSession(j)
	if err != nil {
		t.Fatal(err)
	}
	for sess.BeginIteration() {
		for {
			sp := sess.Sharing()
			if sp == nil {
				break
			}
			for sp.Next() {
				sp.Process()
			}
			sp.Barrier()
		}
		sess.EndIteration()
	}
	sess.Close()
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
	wantBFS := algorithms.ReferenceBFS(r.g, 0)
	for v := range wantBFS {
		if bfs.Dist()[v] != wantBFS[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, bfs.Dist()[v], wantBFS[v])
		}
	}
	wantPR := algorithms.ReferencePageRank(r.g, 0.7, 5)
	for v := range wantPR {
		if math.Abs(pr.Ranks()[v]-wantPR[v]) > 1e-9 {
			t.Fatalf("rank[%d] diverged", v)
		}
	}
}

// TestSessionDuplicateIDRejected verifies synchronous duplicate detection.
func TestSessionDuplicateIDRejected(t *testing.T) {
	r := newRig(t, 100, 500, 2, core.DefaultConfig(64<<10))
	a := engine.NewJob(5, algorithms.NewBFS(0), 1)
	b := engine.NewJob(5, algorithms.NewBFS(1), 2)
	sess, err := r.sys.OpenSession(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.sys.OpenSession(b); err == nil {
		t.Fatal("expected duplicate-ID error")
	}
	sess.Close()
	// After closing, the ID is reusable.
	sess2, err := r.sys.OpenSession(b)
	if err != nil {
		t.Fatalf("ID not reusable after Close: %v", err)
	}
	sess2.Close()
}

// TestSessionCloseIdempotent ensures double Close is safe.
func TestSessionCloseIdempotent(t *testing.T) {
	r := newRig(t, 100, 500, 2, core.DefaultConfig(64<<10))
	sess, err := r.sys.OpenSession(engine.NewJob(1, algorithms.NewBFS(0), 1))
	if err != nil {
		t.Fatal(err)
	}
	sess.Close()
	sess.Close()
	if err := r.sys.Wait(); err != nil {
		t.Fatal(err)
	}
}

package trace

import (
	"fmt"
	"math"
	"math/rand"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(48, 7)
	b := Generate(48, 7)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

// TestGenerateRandMatchesGenerate: Generate(hours, seed) must be exactly
// GenerateRand over a fresh rand.Rand with the same seed — the explicit-RNG
// entry point is the primitive, not a parallel implementation.
func TestGenerateRandMatchesGenerate(t *testing.T) {
	a := Generate(72, 99)
	b := GenerateRand(rand.New(rand.NewSource(99)), 72)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

// TestGenerateByteIdentical serializes two same-seed traces and compares the
// bytes: the determinism contract the replay harness depends on is stronger
// than struct equality — every float must come out bit-identical.
func TestGenerateByteIdentical(t *testing.T) {
	render := func(tr *Trace) string {
		s := fmt.Sprintf("hours=%d n=%d\n", tr.Hours, len(tr.Events))
		for _, e := range tr.Events {
			s += fmt.Sprintf("%b %s %d\n", e.AtHour, e.Algo, e.Seed)
		}
		return s
	}
	a := render(Generate(168, 42))
	b := render(Generate(168, 42))
	if a != b {
		t.Fatal("same-seed traces serialize differently")
	}
	if c := render(Generate(168, 43)); c == a {
		t.Fatal("different seeds produced identical traces — seed is ignored")
	}
}

// TestTraceStatisticsMatchPaper is the table-driven enforcement of the
// Figure 2 and Figure 4 claims: for several seeds the synthetic week must
// land inside pinned tolerances on mean and peak concurrency, the >82%
// sharing fraction, and the ~7 accesses/hour temporal similarity. These are
// the numbers the paper states for the proprietary trace; drifting the
// generator outside them silently invalidates every replay experiment.
func TestTraceStatisticsMatchPaper(t *testing.T) {
	const coverage = 0.9
	cases := []struct {
		seed               int64
		meanLo, meanHi     float64
		minPeak            int
		minShared          float64
		repeatLo, repeatHi float64
	}{
		{seed: 1, meanLo: 13, meanHi: 19, minPeak: 30, minShared: 0.82, repeatLo: 5.5, repeatHi: 8.5},
		{seed: 42, meanLo: 13, meanHi: 19, minPeak: 30, minShared: 0.82, repeatLo: 5.5, repeatHi: 8.5},
		{seed: 7, meanLo: 13, meanHi: 19, minPeak: 30, minShared: 0.82, repeatLo: 5.5, repeatHi: 8.5},
		{seed: 12345, meanLo: 13, meanHi: 19, minPeak: 30, minShared: 0.82, repeatLo: 5.5, repeatHi: 8.5},
	}
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed%d", tc.seed), func(t *testing.T) {
			tr := Generate(168, tc.seed)
			st := tr.ConcurrencyStats(1.0)
			if st.Mean < tc.meanLo || st.Mean > tc.meanHi {
				t.Errorf("mean concurrency = %.2f, want in [%.0f, %.0f] (paper: ~16)", st.Mean, tc.meanLo, tc.meanHi)
			}
			if st.Peak <= tc.minPeak {
				t.Errorf("peak concurrency = %d, want > %d (paper: >30)", st.Peak, tc.minPeak)
			}
			if sf := tr.SharedFraction(1.0, coverage); sf < tc.minShared {
				t.Errorf("shared fraction = %.3f, want >= %.2f (paper: >82%%)", sf, tc.minShared)
			}
			if rr := tr.MeanRepeatRate(1.0, coverage); rr < tc.repeatLo || rr > tc.repeatHi {
				t.Errorf("mean repeat rate = %.2f/h, want in [%.1f, %.1f] (paper: ~7/h)", rr, tc.repeatLo, tc.repeatHi)
			}
		})
	}
}

// TestRepeatRateModel pins the Figure 4(b) arithmetic at the calibration
// point: 16 concurrent jobs at 0.9 coverage re-access a shared partition
// ~7 times per hour.
func TestRepeatRateModel(t *testing.T) {
	if got := RepeatRate(16, 0.9); math.Abs(got-7.2) > 1e-9 {
		t.Fatalf("RepeatRate(16, 0.9) = %v, want 7.2", got)
	}
	if got := RepeatRate(0, 0.9); got != 0 {
		t.Fatalf("RepeatRate(0, 0.9) = %v, want 0", got)
	}
	empty := &Trace{Hours: 0}
	if got := empty.MeanRepeatRate(1.0, 0.9); got != 0 {
		t.Fatalf("empty trace repeat rate = %v, want 0", got)
	}
	if got := empty.SharedFraction(1.0, 0.9); got != 0 {
		t.Fatalf("empty trace shared fraction = %v, want 0", got)
	}
}

func TestConcurrencyMatchesPaperShape(t *testing.T) {
	tr := Generate(168, 42)
	st := tr.ConcurrencyStats(1.0)
	if st.Peak <= 30 {
		t.Errorf("peak = %d, paper reports >30", st.Peak)
	}
	if st.Mean < 12 || st.Mean > 20 {
		t.Errorf("mean = %.1f, paper reports ~16", st.Mean)
	}
}

func TestEventsOrderedAndInRange(t *testing.T) {
	tr := Generate(24, 3)
	prev := 0.0
	for i, e := range tr.Events {
		if e.AtHour < prev {
			t.Fatalf("event %d out of order: %f after %f", i, e.AtHour, prev)
		}
		prev = e.AtHour
		if e.AtHour < 0 || e.AtHour >= 24 {
			t.Fatalf("event %d outside trace: %f", i, e.AtHour)
		}
	}
}

func TestAlgorithmRotation(t *testing.T) {
	tr := Generate(24, 3)
	for i, e := range tr.Events {
		if e.Algo != Algorithms[i%len(Algorithms)] {
			t.Fatalf("event %d algo %q, want %q", i, e.Algo, Algorithms[i%len(Algorithms)])
		}
	}
}

func TestSharingProfileMonotone(t *testing.T) {
	p := Sharing(16, 0.9)
	if !(p.MoreThan1 >= p.MoreThan2 && p.MoreThan2 >= p.MoreThan4 && p.MoreThan4 >= p.MoreThan8) {
		t.Fatalf("profile not monotone: %+v", p)
	}
	if p.MoreThan1 < 0.82 {
		t.Errorf("MoreThan1 = %v, paper reports >82%% shared", p.MoreThan1)
	}
	for _, v := range []float64{p.MoreThan1, p.MoreThan2, p.MoreThan4, p.MoreThan8} {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", v)
		}
	}
}

func TestSharingDegenerateCases(t *testing.T) {
	p := Sharing(1, 0.9)
	if p.MoreThan1 != 0 {
		t.Fatalf("one job cannot share: %+v", p)
	}
	p = Sharing(2, 1.0)
	if math.Abs(p.MoreThan1-1.0) > 1e-9 {
		t.Fatalf("two full-coverage jobs must share everything: %+v", p)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 6, 0}, {5, -1, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

package trace

import (
	"math"
	"testing"
)

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(48, 7)
	b := Generate(48, 7)
	if len(a.Events) != len(b.Events) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestConcurrencyMatchesPaperShape(t *testing.T) {
	tr := Generate(168, 42)
	st := tr.ConcurrencyStats(1.0)
	if st.Peak <= 30 {
		t.Errorf("peak = %d, paper reports >30", st.Peak)
	}
	if st.Mean < 12 || st.Mean > 20 {
		t.Errorf("mean = %.1f, paper reports ~16", st.Mean)
	}
}

func TestEventsOrderedAndInRange(t *testing.T) {
	tr := Generate(24, 3)
	prev := 0.0
	for i, e := range tr.Events {
		if e.AtHour < prev {
			t.Fatalf("event %d out of order: %f after %f", i, e.AtHour, prev)
		}
		prev = e.AtHour
		if e.AtHour < 0 || e.AtHour >= 24 {
			t.Fatalf("event %d outside trace: %f", i, e.AtHour)
		}
	}
}

func TestAlgorithmRotation(t *testing.T) {
	tr := Generate(24, 3)
	for i, e := range tr.Events {
		if e.Algo != Algorithms[i%len(Algorithms)] {
			t.Fatalf("event %d algo %q, want %q", i, e.Algo, Algorithms[i%len(Algorithms)])
		}
	}
}

func TestSharingProfileMonotone(t *testing.T) {
	p := Sharing(16, 0.9)
	if !(p.MoreThan1 >= p.MoreThan2 && p.MoreThan2 >= p.MoreThan4 && p.MoreThan4 >= p.MoreThan8) {
		t.Fatalf("profile not monotone: %+v", p)
	}
	if p.MoreThan1 < 0.82 {
		t.Errorf("MoreThan1 = %v, paper reports >82%% shared", p.MoreThan1)
	}
	for _, v := range []float64{p.MoreThan1, p.MoreThan2, p.MoreThan4, p.MoreThan8} {
		if v < 0 || v > 1 {
			t.Fatalf("probability out of range: %v", v)
		}
	}
}

func TestSharingDegenerateCases(t *testing.T) {
	p := Sharing(1, 0.9)
	if p.MoreThan1 != 0 {
		t.Fatalf("one job cannot share: %+v", p)
	}
	p = Sharing(2, 1.0)
	if math.Abs(p.MoreThan1-1.0) > 1e-9 {
		t.Fatalf("two full-coverage jobs must share everything: %+v", p)
	}
}

func TestBinom(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 0, 1}, {5, 5, 1}, {5, 2, 10}, {5, 6, 0}, {5, -1, 0}}
	for _, c := range cases {
		if got := binom(c.n, c.k); got != c.want {
			t.Errorf("binom(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}

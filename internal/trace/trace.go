// Package trace synthesizes the concurrent-job trace of the paper's
// motivating measurements (Figure 2: number of concurrent jobs over one week
// on a Chinese social network; Figure 4(a): fraction of the graph shared by
// k jobs; Figure 4(b): mean repeated accesses per partition).
//
// The original trace is proprietary. The paper states its shape: peak
// concurrency above 30 jobs, average around 16, a diurnal pattern over 168
// hours, more than 82% of the graph shared by >1 concurrent job, and shared
// partitions re-accessed about 7 times per hour on average. The generator
// reproduces those statistics deterministically so the figures can be
// regenerated and the replay experiments (Figure 15) have a workload.
package trace

import (
	"math"
	"math/rand"
)

// Event is one job submission in the trace.
type Event struct {
	// AtHour is the submission time in hours from trace start.
	AtHour float64
	// Algo cycles through the paper's four benchmarks.
	Algo string
	// Seed parameterises the job (damping factor, root...).
	Seed int64
}

// Trace is a reproducible synthetic job trace.
type Trace struct {
	Hours  int
	Events []Event
}

// Algorithms in the submission rotation, as in Section 5.1.
var Algorithms = []string{"wcc", "pagerank", "sssp", "bfs"}

// Generate builds a trace over the given number of hours. The arrival rate
// follows a diurnal sinusoid calibrated so the concurrency series (with
// ~1 h jobs) has mean ≈16 and peak >30, matching Figure 2.
func Generate(hours int, seed int64) *Trace {
	return GenerateRand(rand.New(rand.NewSource(seed)), hours)
}

// GenerateRand is Generate with an explicit RNG: the caller owns the seed
// and every draw comes from rng — the package never touches math/rand's
// global state, so two traces built from equally seeded RNGs are identical
// element for element (the replay harness's determinism rests on this).
func GenerateRand(rng *rand.Rand, hours int) *Trace {
	tr := &Trace{Hours: hours}
	n := 0
	for h := 0; h < hours; h++ {
		rate := hourlyRate(h)
		// Poisson arrivals within the hour.
		t := 0.0
		for {
			t += rng.ExpFloat64() / rate
			if t >= 1.0 {
				break
			}
			tr.Events = append(tr.Events, Event{
				AtHour: float64(h) + t,
				Algo:   Algorithms[n%len(Algorithms)],
				Seed:   rng.Int63(),
			})
			n++
		}
	}
	return tr
}

// hourlyRate is the expected submissions per hour at hour h: a diurnal
// sinusoid (period 24 h) between ~2 and ~15 jobs/h. With ~1-hour jobs each
// submission overlaps two hourly buckets, so the concurrency series lands
// at mean ≈16 with peaks just above 30, matching Figure 2.
func hourlyRate(h int) float64 {
	phase := 2 * math.Pi * float64(h%24) / 24
	return 8.5 + 6.5*math.Sin(phase-math.Pi/2)
}

// Concurrency returns the number of jobs running at each hour assuming each
// job runs for jobHours. This is the series of Figure 2.
func (t *Trace) Concurrency(jobHours float64) []int {
	out := make([]int, t.Hours)
	for _, e := range t.Events {
		start := int(e.AtHour)
		end := int(e.AtHour + jobHours)
		for h := start; h <= end && h < t.Hours; h++ {
			out[h]++
		}
	}
	return out
}

// Stats summarises a concurrency series.
type Stats struct {
	Peak int
	Mean float64
}

// ConcurrencyStats computes peak and mean concurrency.
func (t *Trace) ConcurrencyStats(jobHours float64) Stats {
	series := t.Concurrency(jobHours)
	var s Stats
	sum := 0
	for _, c := range series {
		if c > s.Peak {
			s.Peak = c
		}
		sum += c
	}
	if len(series) > 0 {
		s.Mean = float64(sum) / float64(len(series))
	}
	return s
}

// SharedFraction is the time-averaged Figure 4(a) headline number: the mean
// fraction of the graph touched by more than one concurrent job over the
// trace, with each hour's concurrency level k feeding the Sharing model at
// the given per-traversal coverage. The paper reports >82% for the week-long
// trace; the synthetic trace must reproduce that, which the statistical
// tests pin.
func (t *Trace) SharedFraction(jobHours, coverage float64) float64 {
	series := t.Concurrency(jobHours)
	if len(series) == 0 {
		return 0
	}
	sum := 0.0
	for _, k := range series {
		sum += Sharing(k, coverage).MoreThan1
	}
	return sum / float64(len(series))
}

// RepeatRate models Figure 4(b) for one concurrency level: the expected
// number of accesses to a shared partition per hour. Each of the k jobs
// touches a shared partition about coverage times per traversal and a ~1 h
// job completes roughly half a traversal within any given hour, so the rate
// is k*coverage/2 — ~7/h at the trace's mean concurrency of 16, matching the
// paper's "about 7 times per hour".
func RepeatRate(k int, coverage float64) float64 {
	return float64(k) * coverage / 2
}

// MeanRepeatRate is the trace-wide average of RepeatRate over the hours
// where sharing exists (k >= 2), i.e. the temporal-similarity headline of
// Figure 4(b).
func (t *Trace) MeanRepeatRate(jobHours, coverage float64) float64 {
	series := t.Concurrency(jobHours)
	sum, n := 0.0, 0
	for _, k := range series {
		if k < 2 {
			continue
		}
		sum += RepeatRate(k, coverage)
		n++
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// SharingProfile models Figure 4(a): given a concurrency level and the
// fraction of the graph each job touches per hour, it returns the fraction
// of the graph touched by more than 1, 2, 4 and 8 jobs. Jobs are assumed to
// touch a random-but-overlapping portion dominated by the high-degree core
// of the power-law graph; coverage per job defaults to the paper's
// implicit ≈0.9 for network-intensive mixes.
type SharingProfile struct {
	MoreThan1, MoreThan2, MoreThan4, MoreThan8 float64
}

// Sharing estimates the shared fractions for k concurrent jobs each
// covering coverage of the graph per traversal. Under independent coverage
// the fraction covered by more than m of k jobs follows the binomial tail;
// the power-law core makes coverage positively correlated, which the
// calibration constant absorbs.
func Sharing(k int, coverage float64) SharingProfile {
	tail := func(m int) float64 {
		if k <= m {
			return 0
		}
		// P[Binomial(k, coverage) > m]
		p := 0.0
		for i := m + 1; i <= k; i++ {
			p += binom(k, i) * math.Pow(coverage, float64(i)) * math.Pow(1-coverage, float64(k-i))
		}
		return p
	}
	return SharingProfile{
		MoreThan1: tail(1),
		MoreThan2: tail(2),
		MoreThan4: tail(4),
		MoreThan8: tail(8),
	}
}

func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 1; i <= k; i++ {
		r *= float64(n-k+i) / float64(i)
	}
	return r
}

package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"graphm/internal/graph"
	"graphm/internal/service"
	"graphm/internal/storage"
)

// evolveHTTP posts one evolve request and returns the decoded response.
func evolveHTTP(t *testing.T, ts *httptest.Server, method string, body any) (evolveResponse, int) {
	t.Helper()
	raw, _ := json.Marshal(body)
	req, err := http.NewRequest(method, ts.URL+"/v1/graph/edges", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ev evolveResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&ev); err != nil {
			t.Fatal(err)
		}
	}
	return ev, resp.StatusCode
}

// globalViews concatenates every partition's global chunk stream.
func globalViews(t *testing.T, s *Server) map[int][]graph.Edge {
	t.Helper()
	out := make(map[int][]graph.Edge)
	for pid := 0; pid < s.dsys.NumPartitions(); pid++ {
		var stream []graph.Edge
		for k := 0; k < s.dsys.ChunkCount(pid); k++ {
			edges, err := s.dsys.ChunkView(-1, pid, k)
			if err != nil {
				t.Fatalf("chunk view %d/%d: %v", pid, k, err)
			}
			stream = append(stream, edges...)
		}
		out[pid] = stream
	}
	return out
}

// TestServerCrashRecoveryDifferential is the daemon-level crash drill: a
// server takes HTTP evolve mutations and job submissions against a durable
// store, "crashes" (the process state is dropped, the store is reread from
// disk), and a second server recovers. The recovered graph must be
// bit-identical to the pre-crash graph, the stranded ticket must resume
// under its original ID, and the recovery facts must be visible over HTTP.
func TestServerCrashRecoveryDifferential(t *testing.T) {
	dir := t.TempDir()
	st, rec0, err := storage.Open(dir, storage.StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if rec0.WALRecords != 0 || rec0.HasCheckpoint {
		t.Fatalf("fresh dir not empty: %+v", rec0)
	}

	sys1 := newTestSystem(t, "server-crash")
	s1 := New(sys1, service.Config{TicketLog: st, Seed: 5}, Config{})
	s1.AttachStore(st)
	ts1 := httptest.NewServer(s1)
	defer ts1.Close()

	// A job completes normally (submit + end records land).
	tr, code := submit(t, ts1, "alpha", "pagerank")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	pollDone(t, ts1, tr.ID)

	// HTTP evolve mutations: add a recognizable triangle, then remove one
	// spoke globally.
	add := evolveAddRequest{Edges: []edgeJSON{
		{Src: 5, Dst: 250, Weight: 2.5},
		{Src: 250, Dst: 5, Weight: 0.5},
		{Src: 140, Dst: 141, Weight: 1},
	}}
	ev, code := evolveHTTP(t, ts1, http.MethodPost, add)
	if code != http.StatusOK || ev.Added != 3 {
		t.Fatalf("evolve add: status %d resp %+v", code, ev)
	}
	rm := evolveRemoveRequest{Edges: []edgeJSON{{Src: 140, Dst: 141, Weight: 1}}}
	ev, code = evolveHTTP(t, ts1, http.MethodDelete, rm)
	if code != http.StatusOK || ev.Removed != 1 {
		t.Fatalf("evolve remove: status %d resp %+v", code, ev)
	}

	// Mid-flight checkpoint, then one more mutation that only the WAL holds.
	if wrote, err := s1.MaybeCheckpoint(true); err != nil || !wrote {
		t.Fatalf("checkpoint: wrote=%v err=%v", wrote, err)
	}
	ev, code = evolveHTTP(t, ts1, http.MethodPost, evolveAddRequest{
		Edges: []edgeJSON{{Src: 7, Dst: 8, Weight: 9}},
	})
	if code != http.StatusOK || ev.Added != 1 {
		t.Fatalf("post-checkpoint add: status %d resp %+v", code, ev)
	}

	// Strand a pending ticket exactly as a crash would: its submit record is
	// durable, its end record never arrives.
	if err := st.LogSubmit(2, "beta", "wcc", 1234); err != nil {
		t.Fatal(err)
	}

	want := globalViews(t, s1)
	wantVersion := sys1.SnapshotVersion()
	preCrashLog, err := st.TicketLogBytes()
	if err != nil {
		t.Fatal(err)
	}
	ts1.Close() // crash: no Drain, no store Close

	// ---- restart ----
	st2, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint {
		t.Fatal("checkpoint not recovered")
	}
	if rec.WALRecords != 1 {
		t.Fatalf("replaying %d WAL records, want 1 (post-checkpoint add)", rec.WALRecords)
	}
	// Recovery must not rewrite history: the log is byte-identical.
	postCrashLog, err := st2.TicketLogBytes()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(preCrashLog, postCrashLog) {
		t.Fatalf("ticket log changed across crash:\npre: %q\npost: %q", preCrashLog, postCrashLog)
	}

	s2 := New(newTestSystem(t, "server-crash"), service.Config{TicketLog: st2, Seed: 5}, Config{})
	recovered, err := s2.Restore(st2, rec)
	if err != nil {
		t.Fatal(err)
	}
	if recovered.ResumedTickets != 1 || recovered.WALRecords != 1 {
		t.Fatalf("recovered = %+v", recovered)
	}
	ts2 := httptest.NewServer(s2)
	defer ts2.Close()

	// The graph is bit-identical to the pre-crash state.
	got := globalViews(t, s2)
	for pid, w := range want {
		g := got[pid]
		if len(w) != len(g) {
			t.Fatalf("partition %d: %d edges, want %d", pid, len(g), len(w))
		}
		for i := range w {
			if w[i] != g[i] {
				t.Fatalf("partition %d edge %d = %+v, want %+v", pid, i, g[i], w[i])
			}
		}
	}
	// Version numbering is process-local (diff-based restore installs fewer
	// updates than the original run took); what must hold is that recovery
	// moved the version at all — the recovered mutations are real updates.
	if v := s2.sys.SnapshotVersion(); v <= 0 || wantVersion <= 0 {
		t.Fatalf("snapshot versions pre=%d post=%d, want both > 0", wantVersion, v)
	}

	// The stranded ticket resumed under its original ID and completes.
	done := pollDone(t, ts2, 2)
	if done.Status != "done" || done.Tenant != "beta" || done.Algo != "wcc" {
		t.Fatalf("resumed ticket = %+v", done)
	}

	// Recovery facts over HTTP: /healthz and /metrics both carry them.
	resp, err := ts2.Client().Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz struct {
		Recovered *RecoveredState `json:"recovered"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz.Recovered == nil || hz.Recovered.ResumedTickets != 1 {
		t.Fatalf("/healthz recovered = %+v", hz.Recovered)
	}
	resp, err = ts2.Client().Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	var metrics bytes.Buffer
	if _, err := metrics.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	for _, want := range []string{
		"graphm_recovered 1",
		"graphm_resumed_tickets 1",
		"graphm_snapshot_version",
		"graphm_wal_appends_total",
	} {
		if !strings.Contains(metrics.String(), want) {
			t.Fatalf("/metrics missing %q", want)
		}
	}

	// A new submission gets a fresh ID (the log's IDs are never reissued).
	tr, code = submit(t, ts2, "alpha", "bfs")
	if code != http.StatusAccepted || tr.ID != 3 {
		t.Fatalf("post-recovery submit = %+v status %d, want ID 3", tr, code)
	}
	pollDone(t, ts2, tr.ID)
	final := s2.Drain()
	if final.Error != "" {
		t.Fatalf("drain error: %s", final.Error)
	}
	if final.Recovered == nil || final.Recovered.WALRecords != 1 {
		t.Fatalf("drain report recovered = %+v", final.Recovered)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestEvolveEndpointValidation: malformed evolve requests are rejected
// without touching the graph.
func TestEvolveEndpointValidation(t *testing.T) {
	s, ts := newTestServer(t, service.Config{}, Config{})
	v0 := s.sys.SnapshotVersion()

	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{}); code != http.StatusBadRequest {
		t.Fatalf("empty add: status %d", code)
	}
	// Two selectors at once.
	src, dst := uint32(1), uint32(2)
	if _, code := evolveHTTP(t, ts, http.MethodDelete, evolveRemoveRequest{Src: &src, Dst: &dst}); code != http.StatusBadRequest {
		t.Fatalf("two selectors: status %d", code)
	}
	// No selector.
	if _, code := evolveHTTP(t, ts, http.MethodDelete, evolveRemoveRequest{}); code != http.StatusBadRequest {
		t.Fatalf("no selector: status %d", code)
	}
	// Out-of-range vertex.
	bad := evolveAddRequest{Edges: []edgeJSON{{Src: 1 << 30, Dst: 0}}}
	if _, code := evolveHTTP(t, ts, http.MethodPost, bad); code != http.StatusBadRequest {
		t.Fatalf("out-of-range vertex: status %d", code)
	}
	if v := s.sys.SnapshotVersion(); v != v0 {
		t.Fatalf("rejected requests moved the version %d -> %d", v0, v)
	}

	// A well-formed add works and reports the new version.
	ok := evolveAddRequest{Edges: []edgeJSON{{Src: 1, Dst: 2, Weight: 1}}}
	ev, code := evolveHTTP(t, ts, http.MethodPost, ok)
	if code != http.StatusOK || ev.Version <= v0 {
		t.Fatalf("add: status %d resp %+v", code, ev)
	}
}

package server

import (
	"fmt"
	"net/http"
	"strings"

	"graphm/internal/slo"
)

// handleMetrics serves the Prometheus text exposition format (version
// 0.0.4) with no external dependencies: the service admission counters, the
// core sharing-controller counters the earlier PRs accumulated (shared
// loads, mid-round joins, relabels, prefetch hits...), the HTTP-layer
// counters, and the rolling SLO windows as summary-style quantile gauges.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snap := s.svc.Snapshot()
	stats := s.svc.SystemStats()

	var b strings.Builder
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s gauge\n%s %g\n", name, help, name, name, v)
	}

	// Admission lifecycle.
	counter("graphm_jobs_submitted_total", "Jobs accepted by Submit.", snap.Submitted)
	counter("graphm_jobs_rejected_total", "Submissions refused for queue backpressure.", snap.Rejected)
	counter("graphm_jobs_admitted_total", "Tickets admitted to the sharing controller.", snap.Admitted)
	counter("graphm_jobs_completed_total", "Tickets that converged.", snap.Completed)
	counter("graphm_jobs_canceled_total", "Tickets canceled before or during streaming.", snap.Canceled)
	counter("graphm_jobs_failed_total", "Tickets that ended in failure.", snap.Failed)

	// Live queue shape.
	gauge("graphm_queue_depth", "Tickets currently waiting for admission.", float64(snap.Queued))
	gauge("graphm_jobs_in_flight", "Tickets admitted and not yet terminal.", float64(snap.InFlight))
	gauge("graphm_tenants_queued", "Tenants currently holding queued work.", float64(snap.Tenants))
	gauge("graphm_peak_in_flight", "High-water mark of in-flight tickets.", float64(snap.PeakInFlight))
	gauge("graphm_peak_queued", "High-water mark of the admission queue.", float64(snap.PeakQueued))

	// Sharing controller — the paper's amortization story, live.
	counter("graphm_rounds_total", "Streaming rounds completed.", uint64(stats.Rounds))
	counter("graphm_shared_loads_total", "Partition loads served to more than one job.", stats.SharedLoads)
	counter("graphm_mid_round_joins_total", "Iteration joins into a round already in flight.", stats.MidRoundJoins)
	counter("graphm_detaches_total", "Jobs withdrawn from sharing before convergence.", stats.Detaches)
	counter("graphm_suspensions_total", "Job suspensions waiting for a needed partition.", stats.Suspensions)
	counter("graphm_prefetches_total", "Async partition prefetches started.", stats.Prefetches)
	counter("graphm_prefetch_hits_total", "Prefetches claimed by their target partition.", stats.PrefetchHits)
	counter("graphm_prefetch_cancels_total", "Prefetches invalidated before use.", stats.PrefetchCancels)
	counter("graphm_relabels_total", "Adaptive chunk re-labellings applied.", stats.Relabels)
	counter("graphm_relabel_skips_total", "Re-labellings suppressed by hysteresis.", stats.RelabelSkips)

	// Sharded scale-out: shard count, per-shard round/load counters (the
	// aggregate counters above sum these), and the simulated cluster
	// network cross-shard job-state handoffs are metered on.
	if sb, ok := s.sys.(ShardedBackend); ok {
		gauge("graphm_shards", "Shard systems behind this daemon.", float64(sb.Shards()))
		fmt.Fprintf(&b, "# HELP graphm_shard_rounds_total Streaming rounds completed on one shard.\n# TYPE graphm_shard_rounds_total counter\n")
		for i := 0; i < sb.Shards(); i++ {
			fmt.Fprintf(&b, "graphm_shard_rounds_total{shard=\"%d\"} %d\n", i, sb.System(i).StatsSnapshot().Rounds)
		}
		fmt.Fprintf(&b, "# HELP graphm_shard_shared_loads_total Partition loads served to more than one job on one shard.\n# TYPE graphm_shard_shared_loads_total counter\n")
		for i := 0; i < sb.Shards(); i++ {
			fmt.Fprintf(&b, "graphm_shard_shared_loads_total{shard=\"%d\"} %d\n", i, sb.System(i).StatsSnapshot().SharedLoads)
		}
		net := sb.Network()
		counter("graphm_network_bytes_total", "Bytes shipped across the simulated cluster network.", net.Bytes())
		counter("graphm_network_messages_total", "Transfers metered on the simulated cluster network.", net.Messages())
	}

	// Durable storage: the live snapshot version (bumps on every global
	// evolve update and restore), recovery facts, and the WAL's group-commit
	// economics (syncs << appends is the batching win).
	gauge("graphm_snapshot_version", "Current graph snapshot version.", float64(s.sys.SnapshotVersion()))
	if rec := s.Recovered(); rec != nil {
		gauge("graphm_recovered", "1 when this process recovered from a durable data directory.", 1)
		counter("graphm_recovered_wal_records", "WAL records replayed at startup.", uint64(rec.WALRecords))
		counter("graphm_resumed_tickets", "Pending tickets re-admitted at startup.", uint64(rec.ResumedTickets))
	}
	if st := s.Store(); st != nil {
		ws := st.WALStats()
		counter("graphm_wal_appends_total", "Evolve records appended to the WAL.", ws.Appends)
		counter("graphm_wal_batches_total", "Write batches flushed (group commit).", ws.Batches)
		counter("graphm_wal_syncs_total", "fsync calls issued by the WAL.", ws.Syncs)
		counter("graphm_wal_bytes_total", "Bytes framed into the WAL.", ws.Bytes)
		counter("graphm_wal_retries_total", "WAL flushes recovered via the truncate-rewrite retry path.", ws.Retries)
		counter("graphm_ticketlog_dropped_total", "Ticket terminal lines lost to persistent write errors.", st.TicketLogDropped())
	}

	// Graceful degradation: whether the durable path is down, why, and how
	// the recovery probing is going.
	if degraded, cause, _ := s.Degraded(); degraded {
		fmt.Fprintf(&b, "# HELP graphm_degraded 1 while the daemon is in degraded read-only mode.\n# TYPE graphm_degraded gauge\ngraphm_degraded{cause=%q} 1\n", cause)
	} else {
		gauge("graphm_degraded", "1 while the daemon is in degraded read-only mode.", 0)
	}
	counter("graphm_degraded_entered_total", "Times the daemon entered degraded mode.", s.degradedTotal.Load())
	counter("graphm_recovery_probes_total", "Durable-path recovery probes attempted while degraded.", s.probeAttempts.Load())

	// HTTP layer.
	counter("graphm_http_requests_total", "HTTP requests served.", s.httpRequests.Load())
	counter("graphm_http_errors_total", "HTTP responses with status >= 400.", s.httpErrors.Load())
	counter("graphm_http_rate_limited_total", "Submissions refused with 429 (rate limit or queue full).", s.httpRateLimited.Load())
	if s.limiter != nil {
		gauge("graphm_rate_limiter_tenants", "Live token buckets in the per-tenant rate limiter.", float64(s.limiter.size()))
	}
	if s.Draining() {
		gauge("graphm_draining", "1 while the daemon is draining.", 1)
	} else {
		gauge("graphm_draining", "1 while the daemon is draining.", 0)
	}
	gauge("graphm_uptime_seconds", "Seconds since the daemon started.",
		s.cfg.Clock.Now().Sub(s.started).Seconds())

	// Rolling SLO windows: summary-style quantiles over the last
	// Config.SLOWindow, computed by internal/slo — the same aggregation
	// the offline replay reports use.
	writeSummary(&b, "graphm_queue_wait_seconds",
		"Queue wait (submit to admission) over the rolling SLO window.", s.waitSLO.Snapshot())
	writeSummary(&b, "graphm_job_runtime_seconds",
		"Admission-to-terminal runtime over the rolling SLO window.", s.runSLO.Snapshot())

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(b.String()))
}

// writeSummary renders one slo.Summary as a Prometheus summary metric plus
// a _max gauge (Prometheus summaries have no native max).
func writeSummary(b *strings.Builder, name, help string, s slo.Summary) {
	fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s summary\n", name, help, name)
	fmt.Fprintf(b, "%s{quantile=\"0.5\"} %g\n", name, s.P50)
	fmt.Fprintf(b, "%s{quantile=\"0.9\"} %g\n", name, s.P90)
	fmt.Fprintf(b, "%s{quantile=\"0.99\"} %g\n", name, s.P99)
	fmt.Fprintf(b, "%s_sum %g\n", name, s.Sum)
	fmt.Fprintf(b, "%s_count %d\n", name, s.Count)
	fmt.Fprintf(b, "# HELP %s_max Window maximum.\n# TYPE %s_max gauge\n%s_max %g\n", name, name, name, s.Max)
}

package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"graphm/internal/storage"
)

// Graceful degradation: when the durable path fails persistently (WAL flush
// retries exhausted, ticket log unwritable, checkpoint install failing), the
// daemon flips into a degraded read-only mode instead of crashing or — far
// worse — acknowledging writes it cannot persist. In degraded mode:
//
//   - submit and evolve requests get 503 with a Retry-After hint,
//   - running jobs keep streaming to completion (reads never depended on
//     the durable path),
//   - /healthz reports status "degraded" with the cause, /metrics exports
//     graphm_degraded{cause=...},
//   - the housekeeping loop calls ProbeRecovery, which actively exercises
//     the durable path (storage.Store.Probe) and re-arms writes the moment
//     it heals.
//
// The causes are a bounded enum (they become a metric label):
//
//	"wal"        evolve WAL append/flush failure
//	"ticket-log" ticket submission log failure
//	"checkpoint" checkpoint write/install/GC failure

// degradedRetryAfter is the Retry-After hint for 503s issued while degraded
// or draining: long enough for a recovery probe cycle, short enough that
// clients re-offer work promptly after recovery.
const degradedRetryAfter = 5 * time.Second

// degradedState is the server's view of the durable path, guarded by
// Server.mu.
type degradedState struct {
	degraded bool
	cause    string // bounded: "wal" | "ticket-log" | "checkpoint"
	detail   string // full error text for /healthz
	since    time.Time
}

// Degraded reports whether the daemon is in degraded read-only mode, with
// the cause class and error detail.
func (s *Server) Degraded() (degraded bool, cause, detail string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.degrade.degraded, s.degrade.cause, s.degrade.detail
}

// maybeDegrade inspects err; if it is a durability failure
// (storage.ErrDurability) the daemon enters degraded mode under the given
// cause class and the caller should answer 503. Returns whether it did.
func (s *Server) maybeDegrade(cause string, err error) bool {
	if err == nil || !errors.Is(err, storage.ErrDurability) {
		return false
	}
	s.mu.Lock()
	if !s.degrade.degraded {
		s.degrade.degraded = true
		s.degrade.since = s.cfg.Clock.Now()
		s.degradedTotal.Add(1)
	}
	// Re-stamp cause and detail even when already degraded: the latest
	// failure is the most useful one on /healthz.
	s.degrade.cause = cause
	s.degrade.detail = err.Error()
	s.mu.Unlock()
	return true
}

// clearDegraded re-arms the write path after a successful recovery probe.
func (s *Server) clearDegraded() {
	s.mu.Lock()
	s.degrade = degradedState{}
	s.mu.Unlock()
}

// ProbeRecovery actively checks the durable path while degraded and re-arms
// the daemon when it heals. The housekeeping loop calls this every tick; it
// is a no-op when the daemon is healthy or has no store. Returns true when
// the probe ran and the daemon recovered.
func (s *Server) ProbeRecovery() bool {
	s.mu.Lock()
	degraded := s.degrade.degraded
	cause := s.degrade.cause
	st := s.store
	s.mu.Unlock()
	if !degraded || st == nil {
		return false
	}
	s.probeAttempts.Add(1)
	if err := st.Probe(); err != nil {
		return false
	}
	if !st.Health().Healthy() {
		return false
	}
	if cause == "checkpoint" {
		// Store.Probe exercises only the WAL and ticket log. A degrade caused
		// by the checkpoint path must prove that path writes again before
		// re-arming, or the daemon would flap healthy/degraded on every
		// housekeeping tick while only checkpointing is broken.
		if err := s.dsys.Checkpoint(st); err != nil {
			s.maybeDegrade("checkpoint", err)
			return false
		}
	}
	s.clearDegraded()
	return true
}

// writeUnavailable answers 503 with the Retry-After hint every
// not-accepting-writes path shares (draining, degraded, closed service).
func (s *Server) writeUnavailable(w http.ResponseWriter, format string, args ...any) {
	w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(degradedRetryAfter)))
	s.writeError(w, http.StatusServiceUnavailable, format, args...)
}

// refuseWrites is the common front gate for submit and evolve handlers:
// draining or degraded daemons answer 503 + Retry-After and the handler
// stops. Returns true when the request was refused.
func (s *Server) refuseWrites(w http.ResponseWriter) bool {
	if s.Draining() {
		s.writeUnavailable(w, "draining: no writes admitted")
		return true
	}
	if degraded, cause, _ := s.Degraded(); degraded {
		s.writeUnavailable(w, "degraded (%s): durable path unavailable, writes refused", cause)
		return true
	}
	return false
}

// Package server turns the admission service into a long-running network
// daemon: an HTTP/JSON API over internal/service (submit / ticket status /
// cancel / drain), per-tenant token-bucket rate limiting with queue-full →
// 429 backpressure, live SLO tracking through internal/slo rolling windows,
// and a dependency-free Prometheus /metrics endpoint exporting the runtime
// counters the earlier PRs accumulated.
//
// The package is deliberately a thin shell: every admission decision
// (fairness, queue bounds, mid-round attach) stays in internal/service, and
// every quantile is computed by internal/slo — the same aggregation the
// offline replay reports use, which is what makes the daemon's online
// numbers differentially testable against the replay computation.
//
// # API surface (v1)
//
// See docs/API.md for the full reference. In brief:
//
//	POST   /v1/jobs      submit a job ({"algo": ...}); tenant from X-Tenant
//	GET    /v1/jobs/{id} ticket status + per-job stats delta when terminal
//	DELETE /v1/jobs/{id} cancel (dequeue, or detach at the next barrier)
//	POST   /v1/drain     stop admitting, run everything down, report state
//	GET    /metrics      Prometheus text format
//	GET    /healthz      liveness + draining flag
//
// # Lifecycle
//
// A Server owns its service.Service (New constructs it so the SLO observers
// are wired into the service's admission hooks). The embedding process
// serves HTTP through an *http.Server and on SIGTERM calls Drain: the
// daemon stops admitting (submissions get 503), in-flight and queued
// tickets run to completion, and the returned RecoveryState reports what
// the process completed, canceled and left rejected — the paper's
// amortization counters included.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphm/internal/cluster"
	"graphm/internal/core"
	"graphm/internal/graph"
	"graphm/internal/service"
	"graphm/internal/slo"
	"graphm/internal/storage"
)

// Config tunes the HTTP layer. The zero value is a usable daemon with rate
// limiting disabled and five-minute SLO windows.
type Config struct {
	// Clock drives the rate limiter and the SLO windows (nil means
	// core.WallClock; tests inject a core.VirtualClock).
	Clock core.Clock
	// RatePerSec is the per-tenant token-bucket refill rate for POST
	// /v1/jobs. Zero or negative disables rate limiting.
	RatePerSec float64
	// Burst is the bucket capacity (default: RatePerSec rounded up, min 1).
	Burst float64
	// SLOWindow is the rolling span of the queue-wait and runtime windows
	// exported by /metrics (default 5m).
	SLOWindow time.Duration
	// SLOBuckets is the window granularity (default 30 buckets).
	SLOBuckets int
}

func (c Config) withDefaults() Config {
	if c.Clock == nil {
		c.Clock = core.WallClock{}
	}
	if c.RatePerSec < 0 {
		c.RatePerSec = 0 // negative means the same as zero: no rate limit
	}
	if c.Burst <= 0 {
		c.Burst = c.RatePerSec
		if c.Burst != float64(int64(c.Burst)) {
			c.Burst = float64(int64(c.Burst) + 1)
		}
		if c.Burst < 1 {
			c.Burst = 1
		}
	}
	if c.SLOWindow <= 0 {
		c.SLOWindow = 5 * time.Minute
	}
	if c.SLOBuckets <= 0 {
		c.SLOBuckets = 30
	}
	return c
}

// Backend is the streaming substrate the daemon fronts: the admission
// surface (service.Backend) plus the graph-mutation API the evolve
// endpoints expose. Satisfied by *core.System and by *shard.Group.
type Backend interface {
	service.Backend
	AddEdges(edges []graph.Edge) (int, error)
	AddEdgesFor(jobID int, edges []graph.Edge) error
	RemoveEdges(pred func(graph.Edge) bool) (version, removed int, err error)
	RemoveEdgesFor(jobID int, pred func(graph.Edge) bool) (removed int, err error)
	SnapshotVersion() int
}

// ShardedBackend is the optional sharding surface a Backend may offer;
// /metrics exports per-shard counters and the cluster network totals when
// the backend provides it (shard.Group does).
type ShardedBackend interface {
	Shards() int
	System(i int) *core.System
	Network() *cluster.Network
}

// Server is the HTTP front end over one admission service. It implements
// http.Handler; all methods are safe for concurrent use.
type Server struct {
	svc *service.Service
	sys Backend
	// dsys is the durable-capable concrete system — non-nil only when the
	// backend is a single core.System. The durable paths (Restore,
	// AttachStore, checkpoints) require it; sharded backends run in-memory
	// only.
	dsys *core.System
	cfg  Config
	mux  *http.ServeMux

	limiter *tenantLimiter

	// waitSLO records queue waits (seconds) the moment tickets are
	// admitted; runSLO records admission-to-terminal runtimes (seconds) as
	// tickets turn terminal. Both are rolling windows over Config.SLOWindow.
	waitSLO *slo.Window
	runSLO  *slo.Window

	mu        sync.Mutex
	draining  bool
	store     *storage.Store
	recovered *RecoveredState
	degrade   degradedState

	httpRequests    atomic.Uint64
	httpErrors      atomic.Uint64
	httpRateLimited atomic.Uint64
	degradedTotal   atomic.Uint64
	probeAttempts   atomic.Uint64

	started time.Time
}

// New builds the daemon: it constructs the admission service over sys with
// svcCfg (chaining the server's SLO observers onto any OnAdmit/OnTerminal
// hooks already present) and wires the HTTP routes. The system must be
// dedicated to this server.
func New(sys *core.System, svcCfg service.Config, cfg Config) *Server {
	return NewWithBackend(sys, svcCfg, cfg)
}

// NewWithBackend is New over any Backend. A *core.System backend keeps the
// full durable surface; any other backend (a shard.Group) serves the same
// HTTP API in memory-only mode — Restore/AttachStore must not be called and
// checkpoints are never due.
func NewWithBackend(sys Backend, svcCfg service.Config, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		sys:     sys,
		cfg:     cfg,
		waitSLO: slo.NewWindow(cfg.SLOWindow, cfg.SLOBuckets, cfg.Clock),
		runSLO:  slo.NewWindow(cfg.SLOWindow, cfg.SLOBuckets, cfg.Clock),
		started: cfg.Clock.Now(),
	}
	if cfg.RatePerSec > 0 {
		s.limiter = newTenantLimiter(cfg.RatePerSec, cfg.Burst, cfg.Clock)
	}

	prevAdmit, prevTerminal := svcCfg.OnAdmit, svcCfg.OnTerminal
	svcCfg.OnAdmit = func(t *service.Ticket) {
		s.waitSLO.Observe(t.QueueWait().Seconds())
		if prevAdmit != nil {
			prevAdmit(t)
		}
	}
	svcCfg.OnTerminal = func(t *service.Ticket) {
		if rt := t.Runtime(); rt > 0 {
			s.runSLO.Observe(rt.Seconds())
		}
		if prevTerminal != nil {
			prevTerminal(t)
		}
	}
	if svcCfg.Clock == nil {
		svcCfg.Clock = cfg.Clock
	}
	if ds, ok := sys.(*core.System); ok {
		s.dsys = ds
	}
	s.svc = service.NewWithBackend(sys, svcCfg)

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleTicket)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/drain", s.handleDrain)
	mux.HandleFunc("POST /v1/graph/edges", s.handleEvolveAdd)
	mux.HandleFunc("DELETE /v1/graph/edges", s.handleEvolveRemove)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Service exposes the wrapped admission service (tests and the legacy
// one-shot CLI path use it; HTTP clients never need it).
func (s *Server) Service() *service.Service { return s.svc }

// ServeHTTP dispatches one request.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.httpRequests.Add(1)
	s.mux.ServeHTTP(w, r)
}

// Draining reports whether a drain has begun (submissions are refused).
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

func (s *Server) setDraining() {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
}

// RecoveryState is the daemon's end-of-life report: what the process
// admitted, finished and refused, plus the final SLO view — returned by
// Drain, served by POST /v1/drain, and printed by graphm-serve on SIGTERM.
type RecoveryState struct {
	Drained bool `json:"drained"`

	Submitted uint64 `json:"submitted"`
	Admitted  uint64 `json:"admitted"`
	Completed uint64 `json:"completed"`
	Canceled  uint64 `json:"canceled"`
	Failed    uint64 `json:"failed"`
	Rejected  uint64 `json:"rejected"`

	PeakInFlight int `json:"peak_in_flight"`
	PeakQueued   int `json:"peak_queued"`

	SharedLoads   uint64 `json:"shared_loads"`
	MidRoundJoins uint64 `json:"mid_round_joins"`
	Rounds        int    `json:"rounds"`

	// QueueWait / Runtime are the rolling-window SLO views at drain time
	// (seconds) — the daemon's last word on its latency objectives.
	QueueWait slo.Summary `json:"queue_wait"`
	Runtime   slo.Summary `json:"runtime"`

	// Recovered reports what this process reconstructed at startup, when it
	// started from a durable data directory.
	Recovered *RecoveredState `json:"recovered,omitempty"`

	Error string `json:"error,omitempty"`
}

// Drain stops admitting (new submissions get 503), runs every queued and
// in-flight ticket to completion, and returns the final state. Safe to call
// more than once; every call blocks until the service is drained.
func (s *Server) Drain() RecoveryState {
	s.setDraining()
	err := s.svc.Drain()
	snap := s.svc.Snapshot()
	stats := s.svc.SystemStats()
	st := RecoveryState{
		Drained:       true,
		Submitted:     snap.Submitted,
		Admitted:      snap.Admitted,
		Completed:     snap.Completed,
		Canceled:      snap.Canceled,
		Failed:        snap.Failed,
		Rejected:      snap.Rejected,
		PeakInFlight:  snap.PeakInFlight,
		PeakQueued:    snap.PeakQueued,
		SharedLoads:   stats.SharedLoads,
		MidRoundJoins: stats.MidRoundJoins,
		Rounds:        stats.Rounds,
		QueueWait:     s.waitSLO.Snapshot(),
		Runtime:       s.runSLO.Snapshot(),
		Recovered:     s.Recovered(),
	}
	if err != nil {
		st.Error = err.Error()
	}
	// The drained state is a consistent cut — every ticket is terminal — so
	// it is the natural final checkpoint before shutdown.
	if _, ckErr := s.MaybeCheckpoint(true); ckErr != nil && st.Error == "" {
		st.Error = ckErr.Error()
	}
	return st
}

// submitRequest is the POST /v1/jobs body.
type submitRequest struct {
	// Algo names a built-in algorithm (service.NewProgram's set).
	Algo string `json:"algo"`
	// Seed drives the job's private RNG; zero derives one deterministically.
	Seed int64 `json:"seed,omitempty"`
}

// ticketResponse is the JSON view of one ticket, shared by submit, status
// and cancel responses.
type ticketResponse struct {
	ID     int    `json:"id"`
	Tenant string `json:"tenant"`
	Algo   string `json:"algo"`
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`

	QueueWaitSeconds float64 `json:"queue_wait_seconds"`
	RuntimeSeconds   float64 `json:"runtime_seconds,omitempty"`

	// Terminal-only fields: the driver goroutine owns the job's metrics
	// while the ticket is live, so they are reported only once it is over.
	SimRuntimeSeconds float64    `json:"sim_runtime_seconds,omitempty"`
	Iterations        uint64     `json:"iterations,omitempty"`
	Stats             *statsView `json:"stats,omitempty"`
}

// statsView is the per-job system-counter delta (admission → terminal).
type statsView struct {
	SharedLoads   uint64 `json:"shared_loads"`
	MidRoundJoins uint64 `json:"mid_round_joins"`
	Rounds        int    `json:"rounds"`
	Suspensions   uint64 `json:"suspensions"`
	Relabels      uint64 `json:"relabels"`
}

func ticketView(t *service.Ticket) ticketResponse {
	st := t.Status()
	resp := ticketResponse{
		ID:               t.ID,
		Tenant:           t.Tenant,
		Algo:             t.Algo,
		Status:           st.String(),
		QueueWaitSeconds: t.QueueWait().Seconds(),
	}
	if err := t.Err(); err != nil {
		resp.Error = err.Error()
	}
	if st.Terminal() {
		resp.RuntimeSeconds = t.Runtime().Seconds()
		resp.SimRuntimeSeconds = t.SimRuntime().Seconds()
		resp.Iterations = t.Job().Met.Iterations
		delta := t.StatsDelta()
		resp.Stats = &statsView{
			SharedLoads:   delta.SharedLoads,
			MidRoundJoins: delta.MidRoundJoins,
			Rounds:        delta.Rounds,
			Suspensions:   delta.Suspensions,
			Relabels:      delta.Relabels,
		}
	}
	return resp
}

// errorResponse is the JSON error envelope for every non-2xx status.
type errorResponse struct {
	Error string `json:"error"`
}

func (s *Server) writeJSON(w http.ResponseWriter, code int, v any) {
	if code >= 400 {
		s.httpErrors.Add(1)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, code int, format string, args ...any) {
	s.writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// tenantOf resolves the request's tenant key: the X-Tenant header, default
// "default". Keys are limited to 64 printable characters so a client cannot
// mint unbounded limiter/fairness state with garbage headers.
func (s *Server) tenantOf(r *http.Request) (string, error) {
	tenant := r.Header.Get("X-Tenant")
	if tenant == "" {
		return "default", nil
	}
	if len(tenant) > 64 {
		return "", errors.New("X-Tenant longer than 64 bytes")
	}
	if strings.ContainsFunc(tenant, func(c rune) bool { return c < 0x21 || c > 0x7e }) {
		return "", errors.New("X-Tenant must be printable ASCII without spaces")
	}
	return tenant, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	tenant, err := s.tenantOf(r)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid tenant: %v", err)
		return
	}
	var req submitRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<16))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	if req.Algo == "" {
		s.writeError(w, http.StatusBadRequest, "missing \"algo\"")
		return
	}
	if s.limiter != nil {
		if ok, retry := s.limiter.allow(tenant); !ok {
			s.httpRateLimited.Add(1)
			w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retry)))
			s.writeError(w, http.StatusTooManyRequests, "tenant %q over its submission rate", tenant)
			return
		}
	}
	tk, err := s.svc.Submit(service.Request{Tenant: tenant, Algo: req.Algo, Seed: req.Seed})
	switch {
	case errors.Is(err, service.ErrQueueFull):
		// Backpressure, not failure: the client should retry after a beat.
		s.httpRateLimited.Add(1)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, "%v", err)
		return
	case s.maybeDegrade("ticket-log", err):
		// The submission could not be made durable: never acknowledge it.
		s.writeUnavailable(w, "degraded (ticket-log): %v", err)
		return
	case errors.Is(err, service.ErrClosed):
		s.writeUnavailable(w, "%v", err)
		return
	case err != nil:
		// Unknown algorithm or other validation failure.
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	s.writeJSON(w, http.StatusAccepted, ticketView(tk))
}

// ticketFromPath resolves the {id} wildcard to a live ticket, writing the
// error response itself when it cannot.
func (s *Server) ticketFromPath(w http.ResponseWriter, r *http.Request) (*service.Ticket, bool) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid job id %q", r.PathValue("id"))
		return nil, false
	}
	tk, ok := s.svc.Ticket(id)
	if !ok {
		s.writeError(w, http.StatusNotFound, "unknown job %d", id)
		return nil, false
	}
	return tk, true
}

func (s *Server) handleTicket(w http.ResponseWriter, r *http.Request) {
	tk, ok := s.ticketFromPath(w, r)
	if !ok {
		return
	}
	s.writeJSON(w, http.StatusOK, ticketView(tk))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	tk, ok := s.ticketFromPath(w, r)
	if !ok {
		return
	}
	if err := s.svc.Cancel(tk.ID); err != nil {
		s.writeError(w, http.StatusNotFound, "%v", err)
		return
	}
	// Cancellation of a streaming ticket is asynchronous (the detach lands
	// at the next partition barrier), so 202 + the current view.
	s.writeJSON(w, http.StatusAccepted, ticketView(tk))
}

func (s *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.Drain())
}

// healthStorage is the /healthz view of the durable store's health.
type healthStorage struct {
	WALFailed     bool   `json:"wal_failed"`
	TicketBroken  bool   `json:"ticket_broken"`
	TicketDropped uint64 `json:"ticket_dropped"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	degraded, cause, detail := s.Degraded()
	if degraded {
		status = "degraded"
	}
	resp := struct {
		Status        string          `json:"status"`
		Draining      bool            `json:"draining"`
		Degraded      bool            `json:"degraded"`
		DegradedCause string          `json:"degraded_cause,omitempty"`
		DegradedError string          `json:"degraded_error,omitempty"`
		Storage       *healthStorage  `json:"storage,omitempty"`
		Recovered     *RecoveredState `json:"recovered,omitempty"`
	}{Status: status, Draining: s.Draining(), Degraded: degraded, DegradedCause: cause, DegradedError: detail, Recovered: s.Recovered()}
	if st := s.Store(); st != nil {
		h := st.Health()
		resp.Storage = &healthStorage{WALFailed: h.WALFailed, TicketBroken: h.TicketBroken, TicketDropped: h.TicketDropped}
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// retryAfterSeconds rounds a wait up to whole seconds, minimum 1 (the
// Retry-After header has one-second resolution).
func retryAfterSeconds(d time.Duration) int {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

// WaitSLO returns the live queue-wait window snapshot (seconds).
func (s *Server) WaitSLO() slo.Summary { return s.waitSLO.Snapshot() }

// RunSLO returns the live runtime window snapshot (seconds).
func (s *Server) RunSLO() slo.Summary { return s.runSLO.Snapshot() }

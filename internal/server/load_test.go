package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"net/http/httptest"
	"runtime"
	"sync"
	"testing"
	"time"

	"graphm/internal/core"
	"graphm/internal/scenario"
	"graphm/internal/service"
	"graphm/internal/slo"
	"graphm/internal/trace"
)

// TestFigure2TraceThroughSocket is the "millions of users" shape as a load
// test: the paper's Figure-2 trace fired through a real loopback socket,
// open-loop (arrivals never wait for completions), with the trace timeline
// compressed so one trace hour maps to one wall second and the arrival
// process then sped up a further SPEEDUP×. At 20× that is ≥10x the
// compressed trace rate — a few hundred jobs against a bounded-queue
// daemon in about a second of wall time.
//
// Assertions: every submission resolves to 202 or 429 (backpressure is the
// only refusal), the drain accounts for every admitted ticket, the online
// rolling-window p50/p90/p99 queue waits match the offline slo.Summarize
// (the replay harness's computation) over the same population read back
// through the HTTP API, and no goroutines leak once the daemon is down.
func TestFigure2TraceThroughSocket(t *testing.T) {
	hours, speedup := 24, 20.0
	if testing.Short() {
		hours, speedup = 8, 10.0
	}
	baseline := runtime.NumGoroutine()

	// A graph big enough that jobs take real milliseconds: arrivals then
	// genuinely overlap in flight and the sharing controller has rounds to
	// amortize — the property the daemon exists to serve.
	env, _, err := scenario.GenEnv("server-load", 2000, 24000, 3, 7, 32<<10, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig(32 << 10)
	ccfg.Cores = 2
	sys, err := core.NewSystem(env.Layout, env.Mem, env.Cache, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	s := New(sys, service.Config{
		MaxInFlight:        8,
		MaxQueuedPerTenant: 32,
		Seed:               42,
	}, Config{SLOWindow: time.Hour})
	ts := httptest.NewServer(s)

	tr := trace.Generate(hours, 42)
	client := ts.Client()

	// Open-loop submission: a ticker goroutine fires each arrival at its
	// compressed time; responses are collected concurrently so a slow
	// response never delays the next arrival (the open-loop property).
	var (
		mu       sync.Mutex
		ids      []int
		accepted int
		rejected int
		other    []int
		wg       sync.WaitGroup
	)
	start := time.Now()
	for _, e := range tr.Events {
		at := time.Duration(e.AtHour / speedup * float64(time.Second))
		if d := time.Until(start.Add(at)); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(e trace.Event) {
			defer wg.Done()
			body, _ := json.Marshal(submitRequest{Algo: e.Algo, Seed: e.Seed})
			req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
			if err != nil {
				t.Error(err)
				return
			}
			req.Header.Set("X-Tenant", fmt.Sprintf("t%02d", e.Seed%4))
			resp, err := client.Do(req)
			if err != nil {
				t.Error(err)
				return
			}
			defer resp.Body.Close()
			mu.Lock()
			defer mu.Unlock()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var tv ticketResponse
				if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
					t.Error(err)
					return
				}
				accepted++
				ids = append(ids, tv.ID)
			case http.StatusTooManyRequests:
				rejected++
			default:
				other = append(other, resp.StatusCode)
			}
		}(e)
	}
	wg.Wait()
	submitWall := time.Since(start)

	// The sharing assertion below is about overlap, which open-loop timing
	// cannot guarantee: a fast machine can finish every job before the next
	// arrival. If the trace produced no sharing, force overlap with one
	// deterministic concurrent burst (16 submissions, in-flight cap 8) so
	// the property under test — concurrent jobs share partition loads — is
	// exercised independently of scheduler luck.
	if !testing.Short() && s.svc.SystemStats().SharedLoads == 0 {
		var burst sync.WaitGroup
		for i := 0; i < 16; i++ {
			burst.Add(1)
			go func(i int) {
				defer burst.Done()
				body, _ := json.Marshal(submitRequest{Algo: "pagerank", Seed: int64(1000 + i)})
				req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
				if err != nil {
					t.Error(err)
					return
				}
				req.Header.Set("X-Tenant", "burst")
				resp, err := client.Do(req)
				if err != nil {
					t.Error(err)
					return
				}
				defer resp.Body.Close()
				mu.Lock()
				defer mu.Unlock()
				switch resp.StatusCode {
				case http.StatusAccepted:
					var tv ticketResponse
					if err := json.NewDecoder(resp.Body).Decode(&tv); err != nil {
						t.Error(err)
						return
					}
					accepted++
					ids = append(ids, tv.ID)
				case http.StatusTooManyRequests:
					rejected++
				default:
					other = append(other, resp.StatusCode)
				}
			}(i)
		}
		burst.Wait()
	}

	if len(other) > 0 {
		t.Fatalf("unexpected submit statuses: %v", other)
	}
	if accepted == 0 {
		t.Fatal("no job was accepted")
	}
	rate := float64(len(tr.Events)) / submitWall.Seconds()
	t.Logf("fired %d arrivals (%d accepted, %d backpressured) in %v (%.0f jobs/s)",
		len(tr.Events), accepted, rejected, submitWall.Round(time.Millisecond), rate)

	// Drain over the socket and account for everything.
	resp, err := client.Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st RecoveryState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Drained {
		t.Fatalf("drain state: %+v", st)
	}
	if st.Submitted != uint64(accepted) || st.Rejected != uint64(rejected) {
		t.Fatalf("accounting: state %+v vs accepted %d rejected %d", st, accepted, rejected)
	}
	if st.Completed+st.Canceled+st.Failed != st.Admitted {
		t.Fatalf("terminal accounting: %+v", st)
	}
	if st.Failed != 0 {
		t.Fatalf("%d jobs failed: %+v", st.Failed, st)
	}
	if !testing.Short() && runtime.GOMAXPROCS(0) > 1 {
		// The full-length run must exhibit the paper's property: arrivals
		// dense enough that partition loads are shared between jobs. On a
		// single-CPU runner the property is unenforceable — a CPU-bound
		// driver can run each job to completion before the next handler
		// goroutine is ever scheduled, serializing the whole stack — so the
		// assertion requires real parallelism (CI runners have it).
		if st.SharedLoads == 0 || st.PeakInFlight < 2 {
			t.Fatalf("no sharing under load: %+v", st)
		}
	}

	// Differential SLO check: the rolling window vs the offline
	// computation over the same tickets, read back through the API.
	var waits []float64
	for _, id := range ids {
		tv, code := getTicket(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET job %d: %d", id, code)
		}
		if tv.Status != "done" {
			t.Fatalf("job %d not done after drain: %+v", id, tv)
		}
		waits = append(waits, tv.QueueWaitSeconds)
	}
	online, offline := s.WaitSLO(), slo.Summarize(waits)
	if online.Count != offline.Count {
		t.Fatalf("window holds %d waits, offline %d", online.Count, offline.Count)
	}
	for _, q := range []struct {
		name      string
		got, want float64
	}{
		{"p50", online.P50, offline.P50},
		{"p90", online.P90, offline.P90},
		{"p99", online.P99, offline.P99},
		{"max", online.Max, offline.Max},
	} {
		if !closeEnough(q.got, q.want) {
			t.Errorf("queue-wait %s: window %v != offline %v", q.name, q.got, q.want)
		}
	}

	// Goroutine hygiene: with the HTTP server closed and the service
	// drained, we must return to (about) the baseline. Idle HTTP conns
	// take a beat to unwind, so poll.
	ts.Close()
	client.CloseIdleConnections()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= baseline+2 {
			break
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d now vs %d at start\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// closeEnough compares two float64s to within JSON round-trip noise.
func closeEnough(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
}

package server

import (
	"sync"
	"time"

	"graphm/internal/core"
)

// tenantLimiter is a classic token-bucket rate limiter keyed by tenant:
// each tenant's bucket refills at rate tokens/second up to burst, and one
// submission costs one token. Buckets are created on first use and pruned
// once they have been full (i.e. carrying no information) for a while, so a
// long-running daemon's limiter state tracks active tenants, not tenants
// ever seen — the same policy the service applies to its fairness rotation.
type tenantLimiter struct {
	rate  float64
	burst float64
	clock core.Clock

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	sweeps  int // submissions since the last full-bucket prune
}

type tokenBucket struct {
	tokens float64
	last   time.Time
}

// sweepEvery bounds how often the limiter prunes full buckets: once per
// this many allow calls, amortized O(1) per submission.
const sweepEvery = 4096

func newTenantLimiter(rate, burst float64, clock core.Clock) *tenantLimiter {
	return &tenantLimiter{
		rate:    rate,
		burst:   burst,
		clock:   clock,
		buckets: make(map[string]*tokenBucket),
	}
}

// allow spends one token from tenant's bucket if available. When it is not,
// allow reports false plus how long until the bucket next holds a full
// token.
func (l *tenantLimiter) allow(tenant string) (bool, time.Duration) {
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweeps++
	if l.sweeps >= sweepEvery {
		l.sweeps = 0
		l.pruneLocked(now)
	}
	b, ok := l.buckets[tenant]
	if !ok {
		b = &tokenBucket{tokens: l.burst, last: now}
		l.buckets[tenant] = b
	} else {
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// pruneLocked drops buckets that would be full if refilled now: an idle
// tenant's bucket converges to burst and then encodes nothing.
func (l *tenantLimiter) pruneLocked(now time.Time) {
	for tenant, b := range l.buckets {
		if b.tokens+now.Sub(b.last).Seconds()*l.rate >= l.burst {
			delete(l.buckets, tenant)
		}
	}
}

// size returns the live bucket count (exported to /metrics).
func (l *tenantLimiter) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

package server

import (
	"sync"
	"time"

	"graphm/internal/core"
)

// tenantLimiter is a token-bucket rate limiter keyed by tenant: each
// tenant's bucket refills at rate tokens/second up to burst, and one
// submission costs one token. Buckets are created on first use and pruned
// once they have been full (i.e. carrying no information) for a while, so a
// long-running daemon's limiter state tracks active tenants, not tenants
// ever seen — the same policy the service applies to its fairness rotation.
//
// Accounting is integer nanoseconds, not floating-point tokens: a bucket
// holds availNS nanoseconds of accumulated credit and a token costs
// intervalNS (1e9/rate). Refill is now.Sub(last) added verbatim, so credit
// never drifts — over a week of virtual-clock submissions the grant count
// is exactly floor((burstNS + elapsedNS) / intervalNS), which the float
// version could not promise (repeated seconds-times-rate accumulation
// rounds, and the error compounds per call).
type tenantLimiter struct {
	intervalNS int64 // nanoseconds per token; 0 means unlimited
	burstNS    int64 // bucket capacity in credit-nanoseconds
	clock      core.Clock

	mu      sync.Mutex
	buckets map[string]*tokenBucket
	sweeps  int // submissions since the last full-bucket prune
}

type tokenBucket struct {
	availNS int64 // accumulated credit, capped at burstNS
	last    time.Time
}

// sweepEvery bounds how often the limiter prunes full buckets: once per
// this many allow calls, amortized O(1) per submission.
const sweepEvery = 4096

// newTenantLimiter builds a limiter refilling rate tokens/second with a
// capacity of burst tokens. rate <= 0 — or a rate so high a token interval
// rounds below one nanosecond — disables limiting: allow always grants.
// (Guarding here and not just at the Config layer means no call path can
// reach the old rate-zero division.)
func newTenantLimiter(rate, burst float64, clock core.Clock) *tenantLimiter {
	l := &tenantLimiter{clock: clock, buckets: make(map[string]*tokenBucket)}
	if rate > 0 {
		l.intervalNS = int64(float64(time.Second) / rate)
	}
	if burst < 1 {
		burst = 1
	}
	l.burstNS = int64(burst * float64(l.intervalNS))
	return l
}

// allow spends one token from tenant's bucket if available. When it is not,
// allow reports false plus how long until the bucket next holds a full
// token.
func (l *tenantLimiter) allow(tenant string) (bool, time.Duration) {
	if l.intervalNS <= 0 {
		return true, 0
	}
	now := l.clock.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	l.sweeps++
	if l.sweeps >= sweepEvery {
		l.sweeps = 0
		l.pruneLocked(now)
	}
	b, ok := l.buckets[tenant]
	if !ok {
		b = &tokenBucket{availNS: l.burstNS, last: now}
		l.buckets[tenant] = b
	} else {
		if elapsed := now.Sub(b.last).Nanoseconds(); elapsed > 0 {
			if b.availNS > l.burstNS-elapsed {
				b.availNS = l.burstNS
			} else {
				b.availNS += elapsed
			}
		}
		b.last = now
	}
	if b.availNS < l.intervalNS {
		return false, time.Duration(l.intervalNS - b.availNS)
	}
	b.availNS -= l.intervalNS
	return true, 0
}

// pruneLocked drops buckets that would be full if refilled now: an idle
// tenant's bucket converges to burst and then encodes nothing.
func (l *tenantLimiter) pruneLocked(now time.Time) {
	for tenant, b := range l.buckets {
		if elapsed := now.Sub(b.last).Nanoseconds(); elapsed >= l.burstNS-b.availNS {
			delete(l.buckets, tenant)
		}
	}
}

// size returns the live bucket count (exported to /metrics).
func (l *tenantLimiter) size() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}

package server

import (
	"testing"
	"time"

	"graphm/internal/core"
)

// TestLimiterDisabledForNonPositiveRate: rate <= 0 means "no limit", not a
// division by zero. The old float implementation computed (1-tokens)/rate
// for the Retry-After hint, which is +Inf at rate 0 and a nonsense negative
// wait below it; the limiter itself must be safe regardless of what the
// Config layer filters.
func TestLimiterDisabledForNonPositiveRate(t *testing.T) {
	clock := core.NewVirtualClock(time.Unix(0, 0))
	for _, rate := range []float64{0, -1, -1e9} {
		l := newTenantLimiter(rate, 4, clock)
		for i := 0; i < 1000; i++ {
			ok, wait := l.allow("a")
			if !ok || wait != 0 {
				t.Fatalf("rate %g: allow #%d = (%v, %v), want unlimited", rate, i, ok, wait)
			}
		}
		if l.size() != 0 {
			t.Fatalf("rate %g: disabled limiter allocated %d buckets", rate, l.size())
		}
	}
	// A rate so high the token interval rounds below 1ns is also unlimited.
	l := newTenantLimiter(2e9, 1, clock)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("sub-nanosecond interval not treated as unlimited")
	}
}

// TestLimiterServerConfigNegativeRate: a Config carrying a negative rate
// produces a server with rate limiting off (satellite regression for the
// crash seen when a deployment set rate_per_sec: -1 to mean "disabled").
func TestLimiterServerConfigNegativeRate(t *testing.T) {
	cfg := Config{RatePerSec: -1}.withDefaults()
	if cfg.RatePerSec != 0 {
		t.Fatalf("withDefaults kept RatePerSec = %g", cfg.RatePerSec)
	}
}

// TestLimiterExactOverWeekVirtualClock drives one bucket for a simulated
// week and checks the grant count against the closed form
// floor((burstNS + elapsedNS) / intervalNS). Integer accounting makes that
// exact; float token arithmetic accumulates rounding error across ~778k
// refills and drifts off by whole tokens over this horizon.
func TestLimiterExactOverWeekVirtualClock(t *testing.T) {
	clock := core.NewVirtualClock(time.Unix(0, 0))
	const (
		rate  = 1.0 // 1 token/s -> intervalNS = 1e9 exactly
		burst = 2.0
		step  = 777 * time.Millisecond // deliberately not a divisor of 1s
		week  = 168 * time.Hour
	)
	l := newTenantLimiter(rate, burst, clock)
	if l.intervalNS != int64(time.Second) || l.burstNS != 2*int64(time.Second) {
		t.Fatalf("intervalNS=%d burstNS=%d", l.intervalNS, l.burstNS)
	}

	granted := int64(0)
	steps := int64(week / step)
	for i := int64(0); i < steps; i++ {
		if ok, _ := l.allow("tenant"); ok {
			granted++
		}
		clock.Advance(step)
	}
	// Credit conservation: the bucket starts at burstNS, accrues stepNS per
	// iteration after the attempt, and each grant costs intervalNS. With
	// step < interval the cap never clips (avail stays below burstNS after
	// the initial spend), so grants are exactly the closed form over the
	// credit available at the final attempt.
	elapsedNS := (steps - 1) * int64(step) // clock at the last attempt
	want := (l.burstNS + elapsedNS) / l.intervalNS
	if granted != want {
		t.Fatalf("granted %d tokens over a week, want exactly %d (off by %d)",
			granted, want, granted-want)
	}

	// And the refusal hint stays a sane sub-interval duration throughout.
	if ok, wait := l.allow("tenant"); !ok {
		if wait <= 0 || wait > time.Duration(l.intervalNS) {
			t.Fatalf("Retry-After hint %v outside (0, %v]", wait, time.Duration(l.intervalNS))
		}
	}
}

// TestLimiterBurstThenSteadyState: a fresh bucket grants exactly burst
// back-to-back tokens, then exactly one per interval.
func TestLimiterBurstThenSteadyState(t *testing.T) {
	clock := core.NewVirtualClock(time.Unix(0, 0))
	l := newTenantLimiter(10, 3, clock) // interval 100ms, burst 3
	for i := 0; i < 3; i++ {
		if ok, _ := l.allow("a"); !ok {
			t.Fatalf("burst token %d refused", i)
		}
	}
	ok, wait := l.allow("a")
	if ok {
		t.Fatal("4th immediate token granted past burst")
	}
	if wait != 100*time.Millisecond {
		t.Fatalf("wait = %v, want exactly 100ms", wait)
	}
	clock.Advance(99 * time.Millisecond)
	if ok, wait := l.allow("a"); ok || wait != time.Millisecond {
		t.Fatalf("at 99ms: (%v, %v), want refusal with exactly 1ms left", ok, wait)
	}
	clock.Advance(time.Millisecond)
	if ok, _ := l.allow("a"); !ok {
		t.Fatal("token refused at exactly one interval")
	}
	// Idle past the horizon: the sweep drops the bucket once it would be full.
	clock.Advance(time.Hour)
	l.mu.Lock()
	l.pruneLocked(clock.Now())
	l.mu.Unlock()
	if l.size() != 0 {
		t.Fatalf("idle bucket survived prune: %d live", l.size())
	}
}

package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"graphm/internal/graph"
	"graphm/internal/storage"
)

// Durable-daemon surface: startup recovery (Restore replays the store into
// the system and re-admits pending tickets) and the evolving-graph HTTP
// endpoints whose mutations the WAL makes durable.

// RecoveredState reports what a daemon restart reconstructed — attached to
// RecoveryState, /healthz and /metrics so a crash-recovery smoke test can
// assert recovery happened over plain HTTP.
type RecoveredState struct {
	// CheckpointVersion is the snapshot version of the checkpoint recovery
	// started from (0 when recovery replayed the WAL from empty).
	CheckpointVersion uint64 `json:"checkpoint_version"`
	// WALRecords is how many evolve records replayed on top of it.
	WALRecords int `json:"wal_records"`
	// ResumedTickets counts pending tickets re-admitted under their
	// original IDs; FailedTickets counts pending tickets whose algorithm no
	// longer resolves.
	ResumedTickets int `json:"resumed_tickets"`
	FailedTickets  int `json:"failed_tickets,omitempty"`
}

// Restore performs the daemon's startup recovery against an opened store:
// checkpoint restore, WAL replay, sink attachment (mutations from here on
// are logged), then ticket re-admission. Call once, after New and before
// serving traffic. The store stays attached for /metrics WAL counters and
// checkpoint triggering.
func (s *Server) Restore(st *storage.Store, rec *storage.Recovery) (RecoveredState, error) {
	if s.dsys == nil {
		return RecoveredState{}, fmt.Errorf("restore: backend has no durable surface (sharded mode is memory-only)")
	}
	if rec.HasCheckpoint {
		if err := s.dsys.RestorePartitions(rec.Partitions); err != nil {
			return RecoveredState{}, fmt.Errorf("restore checkpoint: %w", err)
		}
		if err := s.dsys.RestoreOverrides(rec.Overrides); err != nil {
			return RecoveredState{}, fmt.Errorf("restore overrides: %w", err)
		}
	}
	for i, ev := range rec.Evolves {
		if err := s.dsys.ApplyEvolve(ev); err != nil {
			return RecoveredState{}, fmt.Errorf("replay WAL record %d (%v): %w", i, ev.Op, err)
		}
	}
	s.dsys.SetEvolveSink(st)
	readmitted, err := s.svc.Restore(rec)
	if err != nil {
		return RecoveredState{}, err
	}
	state := RecoveredState{
		CheckpointVersion: rec.CheckpointVersion,
		WALRecords:        rec.WALRecords,
		ResumedTickets:    len(readmitted),
		FailedTickets:     len(rec.Pending) - len(readmitted),
	}
	s.mu.Lock()
	s.store = st
	s.recovered = &state
	s.mu.Unlock()
	return state, nil
}

// AttachStore wires a store without recovery (fresh data directory): evolve
// mutations are logged and /metrics exports the WAL counters. Panics on a
// non-durable (sharded) backend — the CLI refuses -data-dir with -shards
// before getting here.
func (s *Server) AttachStore(st *storage.Store) {
	if s.dsys == nil {
		panic("server: AttachStore on a backend without a durable surface")
	}
	s.dsys.SetEvolveSink(st)
	s.mu.Lock()
	s.store = st
	s.mu.Unlock()
}

// Store returns the attached store, or nil.
func (s *Server) Store() *storage.Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.store
}

// Recovered returns the startup recovery report, or nil for a fresh start.
func (s *Server) Recovered() *RecoveredState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.recovered
}

// MaybeCheckpoint writes a checkpoint if the store's record cadence says one
// is due (the daemon calls it from its housekeeping loop and at drain).
// force bypasses the cadence check. Reports whether a checkpoint was written.
func (s *Server) MaybeCheckpoint(force bool) (bool, error) {
	st := s.Store()
	if st == nil {
		return false, nil
	}
	if !force && !st.CheckpointDue() {
		return false, nil
	}
	if err := s.dsys.Checkpoint(st); err != nil {
		// A checkpoint durability failure degrades the daemon (nothing is
		// lost — the WAL still covers the state — but the durable path needs
		// attention before the log grows without bound).
		s.maybeDegrade("checkpoint", err)
		return false, err
	}
	return true, nil
}

// edgeJSON is the wire form of one edge.
type edgeJSON struct {
	Src    uint32  `json:"src"`
	Dst    uint32  `json:"dst"`
	Weight float32 `json:"weight,omitempty"`
}

func (e edgeJSON) edge() graph.Edge {
	return graph.Edge{Src: graph.VertexID(e.Src), Dst: graph.VertexID(e.Dst), Weight: e.Weight}
}

// evolveAddRequest is the POST /v1/graph/edges body. With JobID the edges
// are a private mutation for that job; without, a global update visible to
// jobs submitted afterwards.
type evolveAddRequest struct {
	Edges []edgeJSON `json:"edges"`
	JobID *int       `json:"job_id,omitempty"`
}

// evolveRemoveRequest is the DELETE /v1/graph/edges body: exactly one of
// Src, Dst or Edges selects what to remove (all edges from a source, all
// edges into a destination, or an explicit list).
type evolveRemoveRequest struct {
	Src   *uint32    `json:"src,omitempty"`
	Dst   *uint32    `json:"dst,omitempty"`
	Edges []edgeJSON `json:"edges,omitempty"`
	JobID *int       `json:"job_id,omitempty"`
}

type evolveResponse struct {
	Added   int `json:"added,omitempty"`
	Removed int `json:"removed,omitempty"`
	Version int `json:"version"`
}

func (s *Server) handleEvolveAdd(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	var req evolveAddRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	if len(req.Edges) == 0 {
		s.writeError(w, http.StatusBadRequest, "missing \"edges\"")
		return
	}
	edges := make([]graph.Edge, len(req.Edges))
	for i, e := range req.Edges {
		edges[i] = e.edge()
	}
	if req.JobID != nil {
		if err := s.sys.AddEdgesFor(*req.JobID, edges); err != nil {
			s.writeEvolveError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, evolveResponse{Added: len(edges), Version: s.sys.SnapshotVersion()})
		return
	}
	version, err := s.sys.AddEdges(edges)
	if err != nil {
		s.writeEvolveError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, evolveResponse{Added: len(edges), Version: version})
}

// writeEvolveError maps an evolve failure to HTTP: a durability failure
// (the WAL could not commit the record) degrades the daemon and answers
// 503 + Retry-After — the mutation must not be acknowledged — while
// anything else is a caller mistake (400).
//
// The 503 is complete: by the time core.System returns the durability error
// it has already rolled the installation back (see internal/core/rollback.go),
// so the refused edges are not observable anywhere — not by degraded-mode
// reads, not in checkpoints, not after restart. (Earlier versions had a
// phantom-commit window here: the mutation installed in memory before the
// commit was awaited and a failed commit left it visible until restart.)
func (s *Server) writeEvolveError(w http.ResponseWriter, err error) {
	if s.maybeDegrade("wal", err) {
		s.writeUnavailable(w, "degraded (wal): %v", err)
		return
	}
	s.writeError(w, http.StatusBadRequest, "%v", err)
}

func (s *Server) handleEvolveRemove(w http.ResponseWriter, r *http.Request) {
	if s.refuseWrites(w) {
		return
	}
	var req evolveRemoveRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 4<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "invalid body: %v", err)
		return
	}
	selectors := 0
	var pred func(graph.Edge) bool
	if req.Src != nil {
		selectors++
		src := graph.VertexID(*req.Src)
		pred = func(e graph.Edge) bool { return e.Src == src }
	}
	if req.Dst != nil {
		selectors++
		dst := graph.VertexID(*req.Dst)
		pred = func(e graph.Edge) bool { return e.Dst == dst }
	}
	if len(req.Edges) > 0 {
		selectors++
		want := make(map[graph.Edge]int, len(req.Edges))
		for _, e := range req.Edges {
			want[e.edge()]++
		}
		pred = func(e graph.Edge) bool {
			if want[e] > 0 {
				want[e]--
				return true
			}
			return false
		}
	}
	if selectors != 1 {
		s.writeError(w, http.StatusBadRequest, "exactly one of \"src\", \"dst\" or \"edges\" must be set")
		return
	}
	if req.JobID != nil {
		removed, err := s.sys.RemoveEdgesFor(*req.JobID, pred)
		if err != nil {
			s.writeEvolveError(w, err)
			return
		}
		s.writeJSON(w, http.StatusOK, evolveResponse{Removed: removed, Version: s.sys.SnapshotVersion()})
		return
	}
	version, removed, err := s.sys.RemoveEdges(pred)
	if err != nil {
		s.writeEvolveError(w, err)
		return
	}
	s.writeJSON(w, http.StatusOK, evolveResponse{Removed: removed, Version: version})
}

package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphm/internal/core"
	"graphm/internal/scenario"
	"graphm/internal/service"
	"graphm/internal/slo"
)

// newTestSystem builds a small dedicated core.System for one test server.
func newTestSystem(t *testing.T, name string) *core.System {
	t.Helper()
	env, _, err := scenario.GenEnv(name, 300, 2000, 3, 7, 32<<10, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	ccfg := core.DefaultConfig(32 << 10)
	ccfg.Cores = 2
	sys, err := core.NewSystem(env.Layout, env.Mem, env.Cache, ccfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// newTestServer starts an httptest server (a real loopback socket) around a
// fresh daemon.
func newTestServer(t *testing.T, svcCfg service.Config, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(newTestSystem(t, "server-"+t.Name()), svcCfg, cfg)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts
}

// submit posts one job and returns the decoded response plus status code.
func submit(t *testing.T, ts *httptest.Server, tenant, algo string) (ticketResponse, int) {
	t.Helper()
	body, _ := json.Marshal(submitRequest{Algo: algo})
	req, err := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	if tenant != "" {
		req.Header.Set("X-Tenant", tenant)
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr ticketResponse
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return tr, resp.StatusCode
}

// getTicket fetches one ticket's JSON view.
func getTicket(t *testing.T, ts *httptest.Server, id int) (ticketResponse, int) {
	t.Helper()
	resp, err := ts.Client().Get(fmt.Sprintf("%s/v1/jobs/%d", ts.URL, id))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var tr ticketResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
			t.Fatal(err)
		}
	}
	return tr, resp.StatusCode
}

// pollDone polls a ticket until it reaches a terminal status.
func pollDone(t *testing.T, ts *httptest.Server, id int) ticketResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		tr, code := getTicket(t, ts, id)
		if code != http.StatusOK {
			t.Fatalf("GET /v1/jobs/%d: status %d", id, code)
		}
		switch tr.Status {
		case "done", "canceled", "failed":
			return tr
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("ticket %d never turned terminal", id)
	return ticketResponse{}
}

// TestSubmitStatusLifecycle drives one job through submit → poll → done
// over the socket and checks the JSON view at both ends.
func TestSubmitStatusLifecycle(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxInFlight: 4}, Config{})

	tr, code := submit(t, ts, "analytics", "pagerank")
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	if tr.ID == 0 || tr.Tenant != "analytics" || tr.Algo != "pagerank" {
		t.Fatalf("submit view: %+v", tr)
	}
	done := pollDone(t, ts, tr.ID)
	if done.Status != "done" {
		t.Fatalf("final status %q, want done (%+v)", done.Status, done)
	}
	if done.Iterations == 0 || done.Stats == nil {
		t.Fatalf("terminal view should carry metrics: %+v", done)
	}
	if done.Stats.Rounds == 0 {
		t.Fatalf("terminal stats delta should include rounds: %+v", done.Stats)
	}
}

// TestTicketErrors covers unknown ids, malformed ids, and default tenant.
func TestTicketErrors(t *testing.T) {
	_, ts := newTestServer(t, service.Config{}, Config{})

	if _, code := getTicket(t, ts, 9999); code != http.StatusNotFound {
		t.Fatalf("unknown ticket: status %d, want 404", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/jobs/notanumber")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed id: status %d, want 400", resp.StatusCode)
	}
	req, _ := http.NewRequest("DELETE", ts.URL+"/v1/jobs/9999", nil)
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("cancel unknown: status %d, want 404", resp.StatusCode)
	}

	tr, code := submit(t, ts, "", "wcc")
	if code != http.StatusAccepted || tr.Tenant != "default" {
		t.Fatalf("default tenant: code %d view %+v", code, tr)
	}
}

// TestSubmitValidation covers the 400 surface: bad JSON, unknown fields,
// missing and unknown algorithms, and bad tenant headers.
func TestSubmitValidation(t *testing.T) {
	_, ts := newTestServer(t, service.Config{}, Config{})

	post := func(tenant, body string) int {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", strings.NewReader(body))
		if tenant != "" {
			req.Header.Set("X-Tenant", tenant)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var e errorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		if resp.StatusCode >= 400 && e.Error == "" {
			t.Fatalf("error response without error field (body %q)", body)
		}
		return resp.StatusCode
	}
	cases := []struct {
		name, tenant, body string
		want               int
	}{
		{"bad json", "", "{", http.StatusBadRequest},
		{"unknown field", "", `{"algo":"wcc","nope":1}`, http.StatusBadRequest},
		{"missing algo", "", `{}`, http.StatusBadRequest},
		{"unknown algo", "", `{"algo":"quicksort"}`, http.StatusBadRequest},
		{"tenant with space", "a b", `{"algo":"wcc"}`, http.StatusBadRequest},
		{"tenant too long", strings.Repeat("x", 65), `{"algo":"wcc"}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if got := post(tc.tenant, tc.body); got != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestCancelQueued cancels a still-queued ticket over the socket, using a
// FinishGate to hold the in-flight slot so the queue state is
// deterministic. (Streaming-cancel semantics are covered by the service
// package; the HTTP layer only relays them.)
func TestCancelQueued(t *testing.T) {
	release := make(chan struct{})
	gated := make(chan int, 16)
	svcCfg := service.Config{
		MaxInFlight: 1,
		FinishGate: func(tk *service.Ticket) {
			gated <- tk.ID
			<-release
		},
	}
	s, ts := newTestServer(t, svcCfg, Config{})

	first, code := submit(t, ts, "t0", "wcc")
	if code != http.StatusAccepted {
		t.Fatalf("submit 1: %d", code)
	}
	// Wait until the first job has streamed and parked in the gate: the
	// in-flight slot is held, so the second submission must queue.
	<-gated
	second, code := submit(t, ts, "t0", "wcc")
	if code != http.StatusAccepted {
		t.Fatalf("submit 2: %d", code)
	}
	if st := second.Status; st != "queued" {
		t.Fatalf("second ticket should be queued, got %q", st)
	}

	req, _ := http.NewRequest("DELETE", fmt.Sprintf("%s/v1/jobs/%d", ts.URL, second.ID), nil)
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var view ticketResponse
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || view.Status != "canceled" {
		t.Fatalf("queued cancel: status %d view %+v", resp.StatusCode, view)
	}

	close(release)
	if done := pollDone(t, ts, first.ID); done.Status != "done" {
		t.Fatalf("first job: %+v", done)
	}
	if err := s.Service().Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestRateLimit429 exercises the per-tenant token bucket on a virtual
// clock: burst spends, then 429 with Retry-After, then refill re-admits —
// and an unrelated tenant is never throttled by the first one's spree.
func TestRateLimit429(t *testing.T) {
	clock := core.NewVirtualClock(time.Unix(1000, 0))
	_, ts := newTestServer(t, service.Config{MaxInFlight: 8},
		Config{Clock: clock, RatePerSec: 1, Burst: 2})

	for i := 0; i < 2; i++ {
		if _, code := submit(t, ts, "flood", "wcc"); code != http.StatusAccepted {
			t.Fatalf("burst submit %d: status %d", i, code)
		}
	}
	body, _ := json.Marshal(submitRequest{Algo: "wcc"})
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(body))
	req.Header.Set("X-Tenant", "flood")
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-rate submit: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 must carry Retry-After")
	}
	// The flooding tenant does not throttle anyone else.
	if _, code := submit(t, ts, "quiet", "wcc"); code != http.StatusAccepted {
		t.Fatalf("other tenant: status %d", code)
	}
	// One second of refill buys one more token.
	clock.Advance(time.Second)
	if _, code := submit(t, ts, "flood", "wcc"); code != http.StatusAccepted {
		t.Fatalf("post-refill submit: status %d", code)
	}
}

// TestQueueFull429 fills the bounded queue behind a gated in-flight job and
// checks the backpressure path: 429 + Retry-After, counted in /metrics.
func TestQueueFull429(t *testing.T) {
	release := make(chan struct{})
	gated := make(chan int, 16)
	svcCfg := service.Config{
		MaxInFlight:        1,
		MaxQueuedPerTenant: 1,
		MaxQueued:          1,
		FinishGate: func(tk *service.Ticket) {
			gated <- tk.ID
			<-release
		},
	}
	s, ts := newTestServer(t, svcCfg, Config{})

	if _, code := submit(t, ts, "t0", "wcc"); code != http.StatusAccepted {
		t.Fatalf("submit 1: %d", code)
	}
	<-gated
	if _, code := submit(t, ts, "t0", "wcc"); code != http.StatusAccepted {
		t.Fatalf("submit 2 (queued): %d", code)
	}
	if _, code := submit(t, ts, "t0", "wcc"); code != http.StatusTooManyRequests {
		t.Fatalf("submit 3 should hit queue-full backpressure, got %d", code)
	}
	close(release)
	if err := s.Service().Drain(); err != nil {
		t.Fatal(err)
	}
	if got := s.httpRateLimited.Load(); got != 1 {
		t.Fatalf("rate-limited counter = %d, want 1", got)
	}
}

// TestDrainEndpoint drains over the socket and checks the recovery state,
// the draining health flag, and that later submissions get 503.
func TestDrainEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxInFlight: 4}, Config{})

	var ids []int
	for i := 0; i < 3; i++ {
		tr, code := submit(t, ts, "t0", "pagerank")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids = append(ids, tr.ID)
	}
	resp, err := ts.Client().Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var st RecoveryState
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !st.Drained || st.Submitted != 3 || st.Completed != 3 || st.Error != "" {
		t.Fatalf("recovery state: %+v", st)
	}
	if st.QueueWait.Count != 3 {
		t.Fatalf("drain-time SLO window should hold 3 waits: %+v", st.QueueWait)
	}
	for _, id := range ids {
		if tr, _ := getTicket(t, ts, id); tr.Status != "done" {
			t.Fatalf("ticket %d after drain: %+v", id, tr)
		}
	}
	if _, code := submit(t, ts, "t0", "wcc"); code != http.StatusServiceUnavailable {
		t.Fatalf("submit after drain: status %d, want 503", code)
	}
	hresp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string `json:"status"`
		Draining bool   `json:"draining"`
	}
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health.Status != "ok" || !health.Draining {
		t.Fatalf("healthz after drain: %+v", health)
	}
}

// TestMetricsEndpoint checks the Prometheus exposition: counter values
// consistent with the run, summary quantiles present, content type right.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, service.Config{MaxInFlight: 4}, Config{RatePerSec: 1000})

	for i := 0; i < 4; i++ {
		tr, code := submit(t, ts, fmt.Sprintf("t%d", i%2), "wcc")
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		pollDone(t, ts, tr.ID)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	metrics := parseMetrics(t, text)

	if metrics["graphm_jobs_submitted_total"] != 4 || metrics["graphm_jobs_completed_total"] != 4 {
		t.Fatalf("job counters: %v", metrics)
	}
	if metrics["graphm_queue_wait_seconds_count"] != 4 {
		t.Fatalf("queue-wait summary count: %v", metrics["graphm_queue_wait_seconds_count"])
	}
	for _, name := range []string{
		"graphm_shared_loads_total", "graphm_rounds_total", "graphm_mid_round_joins_total",
		"graphm_prefetch_hits_total", "graphm_relabels_total", "graphm_queue_depth",
		"graphm_rate_limiter_tenants", "graphm_http_requests_total",
		`graphm_queue_wait_seconds{quantile="0.99"}`, `graphm_job_runtime_seconds{quantile="0.5"}`,
	} {
		if _, ok := metrics[name]; !ok {
			t.Errorf("metric %s missing from exposition", name)
		}
	}
	if strings.Contains(text, "NaN") {
		t.Fatal("exposition contains NaN")
	}
}

// parseMetrics reads a Prometheus text exposition into name -> value.
func parseMetrics(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("unparseable metrics line %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(val, "%g", &f); err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		out[name] = f
	}
	return out
}

// TestSLOWindowMatchesOffline is the in-process differential: the rolling
// queue-wait window must report exactly the quantiles the offline
// slo.Summarize (the replay harness's computation) produces over the same
// ticket population.
func TestSLOWindowMatchesOffline(t *testing.T) {
	s, ts := newTestServer(t, service.Config{MaxInFlight: 3},
		Config{SLOWindow: time.Hour})

	var ids []int
	for i := 0; i < 24; i++ {
		tr, code := submit(t, ts, fmt.Sprintf("t%d", i%3), []string{"wcc", "pagerank", "bfs"}[i%3])
		if code != http.StatusAccepted {
			t.Fatalf("submit %d: %d", i, code)
		}
		ids = append(ids, tr.ID)
	}
	if err := s.Service().Drain(); err != nil {
		t.Fatal(err)
	}
	var waits []float64
	for _, id := range ids {
		tk, ok := s.Service().Ticket(id)
		if !ok {
			t.Fatalf("ticket %d vanished", id)
		}
		waits = append(waits, tk.QueueWait().Seconds())
	}
	got, want := s.WaitSLO(), slo.Summarize(waits)
	if got != want {
		t.Fatalf("window %+v != offline %+v", got, want)
	}
	if s.RunSLO().Count != 24 {
		t.Fatalf("runtime window count %d, want 24", s.RunSLO().Count)
	}
}

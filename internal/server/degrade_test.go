package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphm/internal/faultfs"
	"graphm/internal/graph"
	"graphm/internal/service"
	"graphm/internal/storage"
)

// newDegradeServer builds a daemon over a real (fsyncing) store behind a
// fault injector, with instant retry backoff.
func newDegradeServer(t *testing.T) (*Server, *httptest.Server, *faultfs.Injector) {
	t.Helper()
	inj := faultfs.New(faultfs.OS{}, nil, nil)
	st, _, err := storage.Open(t.TempDir(), storage.StoreOptions{
		CheckpointEveryRecords: -1,
		FS:                     inj,
		Retry:                  storage.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = st.Close() })
	s := New(newTestSystem(t, "degrade-"+t.Name()), service.Config{TicketLog: st, Seed: 3}, Config{})
	s.AttachStore(st)
	ts := httptest.NewServer(s)
	t.Cleanup(ts.Close)
	return s, ts, inj
}

// healthzView decodes GET /healthz.
type healthzView struct {
	Status        string         `json:"status"`
	Draining      bool           `json:"draining"`
	Degraded      bool           `json:"degraded"`
	DegradedCause string         `json:"degraded_cause"`
	DegradedError string         `json:"degraded_error"`
	Storage       *healthStorage `json:"storage"`
}

func getHealthz(t *testing.T, ts *httptest.Server) healthzView {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h healthzView
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	return h
}

func getMetrics(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestSubmitDurabilityFailureDegrades: a persistent ticket-log fault turns
// submissions into 503 + Retry-After (never a silent ack), flips /healthz
// to degraded with the cause, keeps reads working, and ProbeRecovery
// re-arms the daemon once the fault clears.
func TestSubmitDurabilityFailureDegrades(t *testing.T) {
	s, ts, inj := newDegradeServer(t)

	tr, code := submit(t, ts, "alpha", "pagerank")
	if code != http.StatusAccepted {
		t.Fatalf("healthy submit: status %d", code)
	}
	pollDone(t, ts, tr.ID)

	sched, _ := faultfs.ParseSchedule("sync:fail:path=tickets")
	inj.SetSchedule(sched)

	resp, err := ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algo":"pagerank"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit under fault: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("degraded 503 missing Retry-After")
	}

	h := getHealthz(t, ts)
	if h.Status != "degraded" || !h.Degraded || h.DegradedCause != "ticket-log" || h.DegradedError == "" {
		t.Fatalf("healthz = %+v", h)
	}
	if m := getMetrics(t, ts); !strings.Contains(m, `graphm_degraded{cause="ticket-log"} 1`) {
		t.Fatalf("metrics missing degraded gauge:\n%s", m)
	}

	// Reads keep working while degraded.
	if _, code := getTicket(t, ts, tr.ID); code != http.StatusOK {
		t.Fatalf("read while degraded: status %d", code)
	}
	// Further writes are refused up front by the degraded gate.
	if _, code := submit(t, ts, "alpha", "pagerank"); code != http.StatusServiceUnavailable {
		t.Fatalf("second submit while degraded: status %d", code)
	}
	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 1, Dst: 2}}}); code != http.StatusServiceUnavailable {
		t.Fatalf("evolve while degraded: status %d", code)
	}

	// While the fault persists, probing does not recover.
	if s.ProbeRecovery() {
		t.Fatal("ProbeRecovery succeeded while the fault is armed")
	}
	inj.Disarm()
	if !s.ProbeRecovery() {
		t.Fatal("ProbeRecovery failed after the fault cleared")
	}
	if h := getHealthz(t, ts); h.Status != "ok" || h.Degraded {
		t.Fatalf("healthz after recovery = %+v", h)
	}
	tr2, code := submit(t, ts, "alpha", "pagerank")
	if code != http.StatusAccepted {
		t.Fatalf("submit after recovery: status %d", code)
	}
	pollDone(t, ts, tr2.ID)
	if m := getMetrics(t, ts); !strings.Contains(m, "graphm_degraded 0") ||
		!strings.Contains(m, "graphm_degraded_entered_total 1") {
		t.Fatalf("metrics after recovery:\n%s", m)
	}
}

// TestEvolveDurabilityFailureDegrades: a persistent WAL fault turns evolve
// mutations into 503 (cause "wal"); recovery re-arms and the durable state
// seen after restart contains exactly the acknowledged mutations.
func TestEvolveDurabilityFailureDegrades(t *testing.T) {
	s, ts, inj := newDegradeServer(t)

	ev, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 3, Dst: 4, Weight: 1}}})
	if code != http.StatusOK || ev.Added != 1 {
		t.Fatalf("healthy evolve: status %d resp %+v", code, ev)
	}

	sched, _ := faultfs.ParseSchedule("sync:fail:path=wal-")
	inj.SetSchedule(sched)
	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 5, Dst: 6, Weight: 1}}}); code != http.StatusServiceUnavailable {
		t.Fatalf("evolve under fault: status %d, want 503", code)
	}
	if h := getHealthz(t, ts); h.DegradedCause != "wal" || h.Storage == nil || !h.Storage.WALFailed {
		t.Fatalf("healthz = %+v storage = %+v", h, h.Storage)
	}

	inj.Disarm()
	if !s.ProbeRecovery() {
		t.Fatal("ProbeRecovery failed after the fault cleared")
	}
	ev, code = evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 7, Dst: 8, Weight: 1}}})
	if code != http.StatusOK || ev.Added != 1 {
		t.Fatalf("evolve after recovery: status %d resp %+v", code, ev)
	}

	// A bad request is still a 400, not a degradation.
	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{}); code != http.StatusBadRequest {
		t.Fatalf("validation error: status %d, want 400", code)
	}
	if h := getHealthz(t, ts); h.Degraded {
		t.Fatalf("validation error degraded the daemon: %+v", h)
	}
}

// TestCheckpointDegradeRequiresCheckpointRecovery: a degrade caused by the
// checkpoint path must not be re-armed by a probe that only exercises the
// WAL and ticket log — ProbeRecovery stays degraded until a checkpoint
// actually writes again (no healthy/degraded flapping per housekeeping tick).
func TestCheckpointDegradeRequiresCheckpointRecovery(t *testing.T) {
	s, ts, inj := newDegradeServer(t)

	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 1, Dst: 2, Weight: 1}}}); code != http.StatusOK {
		t.Fatalf("evolve: status %d", code)
	}

	sched, _ := faultfs.ParseSchedule("sync:fail:path=checkpoint-")
	inj.SetSchedule(sched)
	if ok, err := s.MaybeCheckpoint(true); ok || err == nil {
		t.Fatalf("checkpoint under fault: ok=%v err=%v", ok, err)
	}
	if h := getHealthz(t, ts); !h.Degraded || h.DegradedCause != "checkpoint" {
		t.Fatalf("healthz = %+v", h)
	}

	// WAL and ticket log are perfectly healthy, but the checkpoint path is
	// still broken: the probe must not re-arm the daemon.
	if s.ProbeRecovery() {
		t.Fatal("ProbeRecovery re-armed while the checkpoint path is broken")
	}
	if h := getHealthz(t, ts); !h.Degraded || h.DegradedCause != "checkpoint" {
		t.Fatalf("healthz after failed probe = %+v", h)
	}

	inj.Disarm()
	if !s.ProbeRecovery() {
		t.Fatal("ProbeRecovery failed after the checkpoint fault cleared")
	}
	if h := getHealthz(t, ts); h.Degraded {
		t.Fatalf("healthz after recovery = %+v", h)
	}
	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 3, Dst: 4, Weight: 1}}}); code != http.StatusOK {
		t.Fatalf("evolve after recovery: status %d", code)
	}
}

// TestRefusedEvolveNeverObservable is the regression test for the
// phantom-commit window: an evolve mutation refused with 503 (WAL commit
// failure) used to stay installed in the in-memory snapshot, visible to
// degraded-mode reads and to checkpoints until the next restart. The 503'd
// edges must now be observable nowhere: not in the live views while
// degraded, not after probe recovery, not in a checkpoint, and not after a
// restart's recovery.
func TestRefusedEvolveNeverObservable(t *testing.T) {
	dir := t.TempDir()
	inj := faultfs.New(faultfs.OS{}, nil, nil)
	st, _, err := storage.Open(dir, storage.StoreOptions{
		CheckpointEveryRecords: -1,
		FS:                     inj,
		Retry:                  storage.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const envName = "phantom-regression"
	s := New(newTestSystem(t, envName), service.Config{TicketLog: st, Seed: 3}, Config{})
	s.AttachStore(st)
	ts := httptest.NewServer(s)
	defer ts.Close()

	// One acknowledged mutation, then snapshot the observable state.
	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 3, Dst: 4, Weight: 1}}}); code != http.StatusOK {
		t.Fatalf("healthy evolve: status %d", code)
	}
	want := globalViews(t, s)

	// Persistent WAL fault: an add and a remove are both refused with 503.
	sched, _ := faultfs.ParseSchedule("sync:fail:path=wal-")
	inj.SetSchedule(sched)
	if _, code := evolveHTTP(t, ts, http.MethodPost, evolveAddRequest{Edges: []edgeJSON{{Src: 5, Dst: 6, Weight: 2}}}); code != http.StatusServiceUnavailable {
		t.Fatalf("add under fault: status %d, want 503", code)
	}
	src := uint32(3)
	if _, code := evolveHTTP(t, ts, http.MethodDelete, evolveRemoveRequest{Src: &src}); code != http.StatusServiceUnavailable {
		t.Fatalf("remove under fault: status %d, want 503", code)
	}
	if h := getHealthz(t, ts); h.DegradedCause != "wal" {
		t.Fatalf("healthz = %+v", h)
	}

	assertNoPhantom := func(label string, views map[int][]graph.Edge) {
		t.Helper()
		phantom := graph.Edge{Src: 5, Dst: 6, Weight: 2}
		for pid, stream := range views {
			wantStream := want[pid]
			if len(stream) != len(wantStream) {
				t.Fatalf("%s: partition %d has %d edges, want %d", label, pid, len(stream), len(wantStream))
			}
			for i, e := range stream {
				if e == phantom {
					t.Fatalf("%s: refused edge %+v observable in partition %d", label, phantom, pid)
				}
				if e != wantStream[i] {
					t.Fatalf("%s: partition %d edge %d = %+v, want %+v", label, pid, i, e, wantStream[i])
				}
			}
		}
	}
	// Degraded-mode reads see exactly the acknowledged state: the refused add
	// is absent and the refused removal's target is still present.
	assertNoPhantom("degraded reads", globalViews(t, s))

	// Recover the durable path, checkpoint, and "restart": the checkpoint and
	// the recovered daemon agree with the acknowledged state too.
	inj.Disarm()
	if !s.ProbeRecovery() {
		t.Fatal("ProbeRecovery failed after the fault cleared")
	}
	assertNoPhantom("after probe recovery", globalViews(t, s))
	if ok, err := s.MaybeCheckpoint(true); !ok || err != nil {
		t.Fatalf("checkpoint: ok=%v err=%v", ok, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if !rec.HasCheckpoint {
		t.Fatal("no checkpoint recovered")
	}
	s2 := New(newTestSystem(t, envName), service.Config{TicketLog: st2, Seed: 3}, Config{})
	if _, err := s2.Restore(st2, rec); err != nil {
		t.Fatal(err)
	}
	assertNoPhantom("after restart recovery", globalViews(t, s2))
}

// TestDrainingRefusalsCarryRetryAfter: the draining 503s hint Retry-After
// exactly like the 429 paths do.
func TestDrainingRefusalsCarryRetryAfter(t *testing.T) {
	_, ts, _ := newDegradeServer(t)
	resp, err := ts.Client().Post(ts.URL+"/v1/drain", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = ts.Client().Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"algo":"pagerank"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining submit: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/graph/edges",
		strings.NewReader(`{"edges":[{"src":1,"dst":2}]}`))
	if err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("draining evolve: status %d Retry-After %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
}

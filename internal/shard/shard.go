// Package shard scales one GraphM instance out to a partitioned group of
// core.Systems — the scatter/gather form of the paper's Section 5
// distributed experiments. The graph's partitions are split contiguously
// (ascending partition ID, cluster.GroupSizes) across N shard systems, each
// hosted on its own simulated cluster node (private disk + memory budget);
// a job opens one group session that attaches to every shard and streams
// them shard-major, so the global partition order of an iteration is the
// same ascending-ID order a single system would use.
//
// # Determinism contract
//
// A group run must be bit-identical across shard counts: equal
// schedule-independent work counters, bit-identical algorithm outputs, and
// (through the service) byte-identical ticket logs for the same workload at
// shards=1 and shards=N. Three choices make that hold by construction:
//
//   - Every shard system is built over the FULL graph (the shard layout
//     returns the complete graph.Graph with a subset of partitions), so
//     Formula (1) picks the same chunk size on every shard and chunk
//     boundaries match the unsharded labelling exactly.
//   - Shard systems run with the Formula (5) scheduler forced off: each
//     shard streams its partitions in ascending ID order, and the
//     shard-major traversal concatenates to the global ascending order.
//     The priority scheduler would order each shard's subset by local
//     attendance, which does not concatenate to any single-system order.
//   - Graph mutations are routed by the same first-covering-non-empty
//     partition rule core.System.locate uses, over the global ascending
//     partition list — an edge lands in the identical partition and chunk
//     whatever the shard count (see ownerOf).
//   - Jobs admitted mid-stream queue for the next round on every shard
//     instead of splicing into rounds already in flight
//     (Group.OpenJobSession ignores SessionOptions.JoinMidRound): a
//     mid-round splice appends the joiner's missed partitions per shard, so
//     its first-iteration stream order would depend on the shard count.
//     Queueing gives every dynamically attached job identical ascending
//     full iterations at any count, at the cost of up to one round of
//     admission latency.
//
// What is NOT preserved across shard counts: controller-level stats
// (rounds, suspensions, loads are per-shard and sum differently), snapshot
// version numbers (each shard versions independently; SnapshotVersion is
// the sum), and simulated I/O time (cross-shard job-state handoffs are
// metered on the cluster network and charged to the logical job's SimIONS).
package shard

import (
	"fmt"
	"sort"

	"graphm/internal/cluster"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
)

// Group is a partitioned set of core.Systems behaving as one instance. It
// satisfies the admission service's backend surface (OpenJobSession /
// StatsSnapshot / Err) plus the evolve API the daemon's graph-mutation
// endpoints need.
type Group struct {
	cl  *cluster.Cluster
	sys []*core.System

	g *graph.Graph
	// parts is the global ascending-ID partition list (the unsharded
	// stream order); owner[i] is the shard index holding parts[i].
	parts []*core.Partition
	owner []int
	// perShard[s] are the partitions placed on shard s, ascending.
	perShard [][]*core.Partition
	caches   []*memsim.Cache
}

// New partitions layout across n shard systems, each on its own simulated
// cluster node with memBudget bytes of memory. cc applies to every shard;
// the Formula (5) scheduler is forced off (see the package comment) and
// cc.LLCBytes must be set — each shard gets its own simulated LLC of that
// size.
func New(layout core.Layout, n int, memBudget int64, cc core.Config) (*Group, error) {
	parts := append([]*core.Partition(nil), layout.Partitions()...)
	sort.Slice(parts, func(i, j int) bool { return parts[i].ID < parts[j].ID })
	if n <= 0 {
		return nil, fmt.Errorf("shard: need at least one shard, got %d", n)
	}
	if n > len(parts) {
		return nil, fmt.Errorf("shard: %d shards over %d partitions — at most one shard per partition", n, len(parts))
	}
	if cc.LLCBytes <= 0 {
		return nil, fmt.Errorf("shard: Config.LLCBytes must be set (each shard builds its own LLC)")
	}
	cc.Scheduler = false
	cl, err := cluster.New(n, memBudget)
	if err != nil {
		return nil, err
	}
	sizes, err := cluster.GroupSizes(len(parts), n)
	if err != nil {
		return nil, err
	}
	g := &Group{cl: cl, g: layout.Graph(), parts: parts, owner: make([]int, len(parts))}
	idx := 0
	for si, size := range sizes {
		node := cl.Nodes[si]
		shardParts := make([]*core.Partition, 0, size)
		for _, p := range parts[idx : idx+size] {
			// Re-host the partition blob on this shard's private disk; the
			// shard system's loads then meter this node's disk, not the
			// layout's original one.
			node.Disk.Write(p.DiskName, graph.EncodeEdges(p.Edges))
			cp := *p
			shardParts = append(shardParts, &cp)
			g.owner[idx+len(shardParts)-1] = si
		}
		idx += size
		cache, err := memsim.NewCache(memsim.DefaultConfig(cc.LLCBytes))
		if err != nil {
			return nil, err
		}
		sys, err := core.NewSystem(core.NewLayout(g.g, shardParts), node.Mem, cache, cc)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		g.sys = append(g.sys, sys)
		g.perShard = append(g.perShard, shardParts)
		g.caches = append(g.caches, cache)
	}
	return g, nil
}

// Shards returns the number of shard systems.
func (g *Group) Shards() int { return len(g.sys) }

// System returns shard i's core.System (tests and metrics exporters).
func (g *Group) System(i int) *core.System { return g.sys[i] }

// Node returns shard i's simulated cluster node.
func (g *Group) Node(i int) *cluster.Node { return g.cl.Nodes[i] }

// PartitionsOf returns the partitions placed on shard i, ascending by ID.
func (g *Group) PartitionsOf(i int) []*core.Partition { return g.perShard[i] }

// Network returns the cluster network cross-shard handoffs are metered on.
func (g *Group) Network() *cluster.Network { return g.cl.Net }

// CacheTotals sums the per-shard simulated LLC counters.
func (g *Group) CacheTotals() (hits, misses uint64) {
	for _, c := range g.caches {
		hits += c.TotalHits()
		misses += c.TotalMisses()
	}
	return hits, misses
}

// Err returns the first failure observed by any shard.
func (g *Group) Err() error {
	for _, s := range g.sys {
		if err := s.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Wait blocks until every session on every shard has closed.
func (g *Group) Wait() error {
	var first error
	for _, s := range g.sys {
		if err := s.Wait(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// StatsSnapshot aggregates the shard systems' counters. Counters sum;
// NumChunks and MetadataBytes sum to the whole graph's totals (each shard
// labels only its own partitions); ChunkBytes is identical on every shard
// by construction (Formula (1) over the full graph) so shard 0's value is
// reported; PeakParallelStreams takes the max.
func (g *Group) StatsSnapshot() core.Stats {
	agg := g.sys[0].StatsSnapshot()
	for _, s := range g.sys[1:] {
		st := s.StatsSnapshot()
		agg.NumChunks += st.NumChunks
		agg.MetadataBytes += st.MetadataBytes
		agg.Rounds += st.Rounds
		agg.Suspensions += st.Suspensions
		agg.Resumes += st.Resumes
		agg.SharedLoads += st.SharedLoads
		agg.MidRoundJoins += st.MidRoundJoins
		agg.Detaches += st.Detaches
		agg.Prefetches += st.Prefetches
		agg.PrefetchHits += st.PrefetchHits
		agg.PrefetchCancels += st.PrefetchCancels
		agg.Relabels += st.Relabels
		agg.RelabelSkips += st.RelabelSkips
		if st.PeakParallelStreams > agg.PeakParallelStreams {
			agg.PeakParallelStreams = st.PeakParallelStreams
		}
	}
	return agg
}

// SnapshotVersion is the sum of the shard versions: monotone under
// mutation, but not comparable across shard counts (a global update bumps
// every shard it touches).
func (g *Group) SnapshotVersion() int {
	v := 0
	for _, s := range g.sys {
		v += s.SnapshotVersion()
	}
	return v
}

// OverrideChunks sums the live copy-on-write chunks across shards.
func (g *Group) OverrideChunks() int {
	n := 0
	for _, s := range g.sys {
		n += s.OverrideChunks()
	}
	return n
}

// ownerOf routes a vertex to the shard whose system core.System.locate
// would pick in the unsharded stream: the first covering partition with
// edges in ascending ID order, else the first covering partition. Because
// each shard's partition list is an ascending-contiguous slice of the
// global list, the owning shard's local locate then picks the same
// partition New placed there — so a mutation lands identically at any
// shard count.
func (g *Group) ownerOf(v graph.VertexID) (int, error) {
	fallback := -1
	for i, p := range g.parts {
		if int(v) >= p.SrcLo && int(v) < p.SrcHi {
			if len(p.Edges) > 0 {
				return g.owner[i], nil
			}
			if fallback < 0 {
				fallback = g.owner[i]
			}
		}
	}
	if fallback >= 0 {
		return fallback, nil
	}
	return 0, fmt.Errorf("shard: vertex %d outside every partition's source range", v)
}

// routeByShard buckets edges by owning shard, preserving the input order
// within each bucket (core.System.AddEdges preserves relative order within
// a partition's append, so per-bucket order is all that matters).
func (g *Group) routeByShard(edges []graph.Edge) ([][]graph.Edge, error) {
	buckets := make([][]graph.Edge, len(g.sys))
	for _, e := range edges {
		si, err := g.ownerOf(e.Src)
		if err != nil {
			return nil, err
		}
		buckets[si] = append(buckets[si], e)
	}
	return buckets, nil
}

// AddEdges installs a global graph update, routed to the owning shards in
// ascending shard order. Returns the group snapshot version after the
// update.
func (g *Group) AddEdges(edges []graph.Edge) (int, error) {
	buckets, err := g.routeByShard(edges)
	if err != nil {
		return g.SnapshotVersion(), err
	}
	for si, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if _, err := g.sys[si].AddEdges(b); err != nil {
			return g.SnapshotVersion(), fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return g.SnapshotVersion(), nil
}

// AddEdgesFor installs a job-private mutation, routed like AddEdges.
func (g *Group) AddEdgesFor(jobID int, edges []graph.Edge) error {
	buckets, err := g.routeByShard(edges)
	if err != nil {
		return err
	}
	for si, b := range buckets {
		if len(b) == 0 {
			continue
		}
		if err := g.sys[si].AddEdgesFor(jobID, b); err != nil {
			return fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return nil
}

// RemoveEdges deletes every edge matching pred from the global stream. The
// shards are scanned in ascending order, so a stateful predicate (the
// daemon's multiset remove) observes edges in exactly the global
// ascending-partition order a single system would show it.
func (g *Group) RemoveEdges(pred func(graph.Edge) bool) (version, removed int, err error) {
	for si, s := range g.sys {
		_, n, err := s.RemoveEdges(pred)
		removed += n
		if err != nil {
			return g.SnapshotVersion(), removed, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return g.SnapshotVersion(), removed, nil
}

// RemoveEdgesFor deletes matching edges from jobID's private view, scanned
// in ascending shard order like RemoveEdges.
func (g *Group) RemoveEdgesFor(jobID int, pred func(graph.Edge) bool) (removed int, err error) {
	for si, s := range g.sys {
		n, err := s.RemoveEdgesFor(jobID, pred)
		removed += n
		if err != nil {
			return removed, fmt.Errorf("shard %d: %w", si, err)
		}
	}
	return removed, nil
}

// meterHandoff charges the logical job for shipping its per-vertex state to
// the next shard in the gather order — the scatter/gather analogue of the
// paper's network-bound distributed runs, metered on the shared 1 Gb/s
// cluster network with its contention model.
func (g *Group) meterHandoff(j *engine.Job) {
	if len(g.sys) < 2 {
		return
	}
	done := g.cl.Net.StartStream()
	ns := g.cl.Net.TransferNS(uint64(j.Prog.StateBytes()))
	done()
	j.AddMetrics(engine.Metrics{SimIONS: ns})
}

package shard

import (
	"fmt"
	"sync/atomic"

	"graphm/internal/core"
	"graphm/internal/engine"
)

// Session is the scatter/gather driver for one logical job across every
// shard: it satisfies core.JobDriver, so the admission service (and any
// Figure 6(b)-style driver loop) streams a sharded group exactly as it
// would a single system.
//
// The logical job's program is shared by one shadow job per shard; the
// shadow sessions are opened in GroupDriver mode, so this session alone
// runs BeforeIteration/AfterIteration and owns convergence. Each logical
// iteration begins on EVERY shard before streaming any (the shard systems'
// deferred round barrier makes that non-blocking), then gathers the shards
// in ascending order — shard-major traversal over ascending-ID placement
// is exactly the unsharded global partition order, which is what makes
// outputs bit-identical across shard counts.
type Session struct {
	g   *Group
	job *engine.Job
	// shadow[i]/sess[i] are shard i's shadow job and its GroupDriver
	// session. began[i] records whether shard i joined the current logical
	// iteration (a detach can refuse individual shards).
	shadow []*engine.Job
	sess   []*core.Session
	began  []bool

	iter        int
	cur         int // shard currently being gathered by Sharing
	inIteration bool
	closed      bool

	// joined flips once the first BeginIteration has landed the job on
	// every shard — from then on the job's effect on each shard's round
	// composition is fixed, which is the property deterministic attach
	// sequencing polls for.
	joined atomic.Bool
}

// OpenJobSession registers j with every shard and returns its group driver.
// The logical job is bound here, once. opts.JoinMidRound is deliberately NOT
// forwarded: a group job admitted mid-stream queues for the next round on
// every shard instead of splicing into rounds already in flight. Mid-round
// splicing appends the joiner's missed partitions per shard, so its
// first-iteration partition order would depend on the shard count (and on
// which shards' rounds were still open) — breaking the group's bit-identity
// contract — and joining an in-flight round on a later shard while an
// earlier shard's round has already closed deadlocks the gather outright.
// Queueing is uniform at every shard count; the cost is admission latency
// of at most one round. The caller must Close the session even on error
// paths; Group.Wait blocks until all sessions on all shards are closed.
func (g *Group) OpenJobSession(j *engine.Job, opts core.SessionOptions) (core.JobDriver, error) {
	j.Bind(g.g)
	gs := &Session{g: g, job: j}
	for si, sys := range g.sys {
		// The shadow job shares the logical program (and therefore its
		// state); the seed is irrelevant because GroupDriver sessions never
		// re-Bind. Same ID on every shard: shard systems only ever see one
		// session per logical job.
		sj := engine.NewJob(j.ID, j.Prog, 0)
		sj.VertexPay = j.VertexPay
		sess, err := sys.OpenSessionWith(sj, core.SessionOptions{
			GroupDriver: true,
		})
		if err != nil {
			for _, open := range gs.sess {
				open.Close()
			}
			return nil, fmt.Errorf("shard %d: %w", si, err)
		}
		gs.shadow = append(gs.shadow, sj)
		gs.sess = append(gs.sess, sess)
	}
	gs.began = make([]bool, len(gs.sess))
	return gs, nil
}

// BeginIteration runs the logical program's BeforeIteration once, then
// joins the next round on every shard. The shard begins are deferred-
// barrier (they publish the active set and return), so no shard blocks
// while another still owes this job streaming work. Returns false when the
// job has converged, every shard refused (detach), or the group failed.
func (s *Session) BeginIteration() bool {
	if s.closed {
		return false
	}
	if !s.job.Prog.BeforeIteration(s.iter) || s.g.Err() != nil {
		return false
	}
	any := false
	for i, sess := range s.sess {
		s.began[i] = sess.BeginIteration()
		if s.began[i] {
			any = true
		}
	}
	s.cur = 0
	s.inIteration = any
	if any {
		s.joined.Store(true)
	}
	return any
}

// Sharing gathers the shards in ascending order: it returns the next
// shared partition of the lowest-numbered shard that still has one, and
// nil once every shard's iteration is complete. Moving from one shard to
// the next ships the job's per-vertex state across the cluster network
// (meterHandoff).
func (s *Session) Sharing() *core.SharedPartition {
	if s.closed || !s.inIteration {
		return nil
	}
	for s.cur < len(s.sess) {
		if s.began[s.cur] {
			if sp := s.sess[s.cur].Sharing(); sp != nil {
				return sp
			}
		}
		s.cur++
		if s.cur < len(s.sess) {
			s.g.meterHandoff(s.job)
		}
	}
	return nil
}

// EndIteration ends the iteration on every joined shard, then commits the
// logical iteration exactly once (AfterIteration + Iterations++).
func (s *Session) EndIteration() {
	if s.closed || !s.inIteration {
		return
	}
	for i, sess := range s.sess {
		if s.began[i] {
			sess.EndIteration()
		}
	}
	s.job.Prog.AfterIteration(s.iter)
	s.job.Met.Iterations++
	s.iter++
	s.job.Iter = s.iter
	s.inIteration = false
}

// Close folds the shadow jobs' accumulated work and cache counters into
// the logical job — whose Met then reads like a single-system run's (plus
// the cross-shard handoff time already charged to SimIONS) — and then
// closes every shard session. The fold happens first: Group.Wait unblocks
// the moment the last shard session closes, and readers of the logical
// job's metrics synchronize through that Wait. Idempotent.
func (s *Session) Close() {
	if s.closed {
		return
	}
	s.closed = true
	for _, sj := range s.shadow {
		s.job.AddMetrics(sj.Met)
		s.job.Ctr.Hits.Add(sj.Ctr.Hits.Load())
		s.job.Ctr.Misses.Add(sj.Ctr.Misses.Load())
		s.job.Ctr.Instructions.Add(sj.Ctr.Instructions.Load())
	}
	s.job.Done = true
	for _, sess := range s.sess {
		sess.Close()
	}
}

// Detach asks every shard to withdraw the job at its next barrier.
func (s *Session) Detach() {
	for _, sess := range s.sess {
		sess.Detach()
	}
}

// Detached reports whether any shard honored a Detach before the job
// converged — the logical job's results are partial if any shard's are.
func (s *Session) Detached() bool {
	for _, sess := range s.sess {
		if sess.Detached() {
			return true
		}
	}
	return false
}

// Joined reports whether the job has landed on every shard at least once:
// true from the moment the first BeginIteration returns. A group begin is
// atomic enough for deterministic attach sequencing — once it returns, the
// job is attached or queued on every shard, so its effect on round
// composition is fixed everywhere.
func (s *Session) Joined() bool { return s.joined.Load() }

package shard

import (
	"fmt"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

const (
	testLLC = 32 << 10
	testMem = 64 << 20
)

func buildLayout(t *testing.T, name string) core.Layout {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT(name, 300, 2000, 7))
	if err != nil {
		t.Fatalf("rmat: %v", err)
	}
	grid, err := gridgraph.Build(g, 3, storage.NewDisk())
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	return grid.AsLayout()
}

func testConfig() core.Config {
	cc := core.DefaultConfig(testLLC)
	cc.Cores = 2
	return cc
}

// driveGroup streams jobs through a group the way the admission service
// does: one goroutine per job over the core.JobDriver loop.
func driveGroup(t *testing.T, g *Group, jobs []*engine.Job) {
	t.Helper()
	drivers := make([]core.JobDriver, len(jobs))
	for i, j := range jobs {
		d, err := g.OpenJobSession(j, core.SessionOptions{})
		if err != nil {
			t.Fatalf("open job %d: %v", j.ID, err)
		}
		drivers[i] = d
	}
	done := make(chan struct{}, len(drivers))
	for _, d := range drivers {
		go func(d core.JobDriver) {
			defer func() { done <- struct{}{} }()
			defer d.Close()
			for d.BeginIteration() {
				for {
					sp := d.Sharing()
					if sp == nil {
						break
					}
					sp.ProcessAll()
					sp.Barrier()
				}
				d.EndIteration()
			}
		}(d)
	}
	for range drivers {
		<-done
	}
	if err := g.Wait(); err != nil {
		t.Fatalf("group wait: %v", err)
	}
}

// runSharded runs the canonical two-job batch (PageRank + WCC) at the given
// shard count and returns the finished jobs plus their programs.
func runSharded(t *testing.T, name string, shards int) (map[int]*engine.Job, map[int]engine.Program) {
	t.Helper()
	layout := buildLayout(t, name)
	g, err := New(layout, shards, testMem, testConfig())
	if err != nil {
		t.Fatalf("shards=%d: %v", shards, err)
	}
	progs := map[int]engine.Program{
		1: algorithms.NewPageRank(0.85, 5),
		2: algorithms.NewWCC(0),
	}
	var jobs []*engine.Job
	for id, p := range progs {
		jobs = append(jobs, engine.NewJob(id, p, int64(id)))
	}
	driveGroup(t, g, jobs)
	byID := make(map[int]*engine.Job, len(jobs))
	for _, j := range jobs {
		byID[j.ID] = j
	}
	if n := g.OverrideChunks(); n != 0 {
		t.Fatalf("shards=%d: %d override chunks leaked", shards, n)
	}
	return byID, progs
}

// TestShardedMatchesUnsharded is the core differential: the same batch at
// shards=1, 2 and 4 must produce identical schedule-independent work and
// bit-identical outputs, and shards=1 must additionally match a plain
// (scheduler-off) core.System run.
func TestShardedMatchesUnsharded(t *testing.T) {
	// Plain system baseline, scheduler off like the group forces.
	layout := buildLayout(t, "shard-diff")
	cache, err := memsim.NewCache(memsim.DefaultConfig(testLLC))
	if err != nil {
		t.Fatalf("cache: %v", err)
	}
	cc := testConfig()
	cc.Scheduler = false
	disk := storage.NewDisk()
	for _, p := range layout.Partitions() {
		disk.Write(p.DiskName, graph.EncodeEdges(p.Edges))
	}
	sys, err := core.NewSystem(layout, storage.NewMemory(disk, testMem), cache, cc)
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	basePR := algorithms.NewPageRank(0.85, 5)
	baseWCC := algorithms.NewWCC(0)
	baseJobs := []*engine.Job{engine.NewJob(1, basePR, 1), engine.NewJob(2, baseWCC, 2)}
	if err := sys.Run(baseJobs); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	baseWork := map[int]engine.WorkCounters{}
	for _, j := range baseJobs {
		baseWork[j.ID] = j.Met.Work()
	}

	for _, shards := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			jobs, progs := runSharded(t, "shard-diff", shards)
			for id, j := range jobs {
				if got, want := j.Met.Work(), baseWork[id]; got != want {
					t.Errorf("job %d work differs from unsharded: %+v vs %+v", id, got, want)
				}
				switch p := progs[id].(type) {
				case *algorithms.PageRank:
					assertFloatsEqual(t, id, p.Ranks(), basePR.Ranks())
				case *algorithms.WCC:
					assertLabelsEqual(t, id, p.Labels(), baseWCC.Labels())
				}
			}
		})
	}
}

func assertFloatsEqual(t *testing.T, id int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("job %d: rank lengths %d vs %d", id, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("job %d: rank[%d] = %v, want %v (not bit-identical)", id, v, got[v], want[v])
		}
	}
}

func assertLabelsEqual(t *testing.T, id int, got, want []uint32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("job %d: label lengths %d vs %d", id, len(got), len(want))
	}
	for v := range got {
		if got[v] != want[v] {
			t.Fatalf("job %d: label[%d] = %v, want %v", id, v, got[v], want[v])
		}
	}
}

// TestGroupEvolveRouting checks that global and job-private mutations land
// identically at any shard count: after the same add/remove sequence, the
// concatenated global chunk views must be equal edge-for-edge.
func TestGroupEvolveRouting(t *testing.T) {
	views := func(shards int) []graph.Edge {
		g, err := New(buildLayout(t, "shard-evolve"), shards, testMem, testConfig())
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		add := []graph.Edge{{Src: 3, Dst: 9, Weight: 1}, {Src: 250, Dst: 7, Weight: 2}, {Src: 120, Dst: 4, Weight: 3}}
		if _, err := g.AddEdges(add); err != nil {
			t.Fatalf("shards=%d add: %v", shards, err)
		}
		if _, _, err := g.RemoveEdges(func(e graph.Edge) bool { return e.Dst == 9 }); err != nil {
			t.Fatalf("shards=%d remove: %v", shards, err)
		}
		var all []graph.Edge
		for si := 0; si < g.Shards(); si++ {
			sys := g.System(si)
			for _, p := range g.PartitionsOf(si) {
				for k := 0; k < sys.ChunkCount(p.ID); k++ {
					seg, err := sys.ChunkView(-1, p.ID, k)
					if err != nil {
						t.Fatalf("shards=%d view p%d k%d: %v", shards, p.ID, k, err)
					}
					all = append(all, seg...)
				}
			}
		}
		return all
	}
	want := views(1)
	for _, shards := range []int{2, 4} {
		got := views(shards)
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d edges vs %d at shards=1", shards, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: edge %d = %+v, want %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestGroupDetach verifies a group-level cancel withdraws cleanly: the
// detached job reports Detached, leaves no overrides, and the surviving
// job's outputs match an undisturbed run.
func TestGroupDetach(t *testing.T) {
	g, err := New(buildLayout(t, "shard-detach"), 2, testMem, testConfig())
	if err != nil {
		t.Fatalf("group: %v", err)
	}
	longPR := algorithms.NewPageRank(0.85, 50)
	j := engine.NewJob(1, longPR, 1)
	d, err := g.OpenJobSession(j, core.SessionOptions{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	iters := 0
	for d.BeginIteration() {
		for {
			sp := d.Sharing()
			if sp == nil {
				break
			}
			sp.ProcessAll()
			sp.Barrier()
		}
		d.EndIteration()
		iters++
		if iters == 2 {
			d.Detach()
		}
	}
	d.Close()
	if err := g.Wait(); err != nil {
		t.Fatalf("wait: %v", err)
	}
	if !d.Detached() {
		t.Fatalf("detach after iteration 2 was not honored")
	}
	if j.Met.Iterations >= 50 {
		t.Fatalf("detached job ran all %d iterations", j.Met.Iterations)
	}
	if n := g.OverrideChunks(); n != 0 {
		t.Fatalf("%d override chunks leaked after detach", n)
	}
}

// TestNewRejectsBadShapes pins the constructor's validation.
func TestNewRejectsBadShapes(t *testing.T) {
	layout := buildLayout(t, "shard-shape")
	if _, err := New(layout, 0, testMem, testConfig()); err == nil {
		t.Fatalf("shards=0 accepted")
	}
	if _, err := New(layout, len(layout.Partitions())+1, testMem, testConfig()); err == nil {
		t.Fatalf("more shards than partitions accepted")
	}
	cc := testConfig()
	cc.LLCBytes = 0
	if _, err := New(layout, 2, testMem, cc); err == nil {
		t.Fatalf("zero LLCBytes accepted")
	}
}

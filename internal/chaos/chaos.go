// Package chaos implements a Chaos-style engine substrate (Roy et al.,
// SOSP'15) over the simulated cluster: the edge list is split into flat
// chunks scattered round-robin across the group's storage, and computation
// streams *all* edges over the network every iteration — Chaos trades
// locality for scale-out simplicity, so its cost is dominated by network
// streaming bandwidth.
//
// This substrate reproduces the paper's Table 4 shape for Chaos: the
// concurrent baseline (-C) is *slower* than sequential (-S) because
// concurrent jobs re-stream the same edge chunks and contend on the NIC,
// while the GraphM-integrated mode streams each chunk once per round for
// all jobs.
package chaos

import (
	"fmt"
	"sync"

	"graphm/internal/cluster"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// Chunk is one scattered slice of the global edge list.
type Chunk struct {
	Node     *cluster.Node
	ID       int
	Edges    []graph.Edge
	DiskName string
}

// Scattered is a graph spread over one group of nodes.
type Scattered struct {
	G      *graph.Graph
	Group  []*cluster.Node
	Chunks []*Chunk
}

// Build scatters g's edges across the group in fixed-size chunks (several
// per node, so streaming pipelines).
func Build(g *graph.Graph, group []*cluster.Node, chunksPerNode int) (*Scattered, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("chaos: empty node group")
	}
	if chunksPerNode <= 0 {
		chunksPerNode = 4
	}
	total := len(group) * chunksPerNode
	per := (len(g.Edges) + total - 1) / total
	if per == 0 {
		per = 1
	}
	s := &Scattered{G: g, Group: group}
	for i := 0; i*per < len(g.Edges); i++ {
		lo, hi := i*per, (i+1)*per
		if hi > len(g.Edges) {
			hi = len(g.Edges)
		}
		node := group[i%len(group)]
		c := &Chunk{
			Node:     node,
			ID:       i,
			Edges:    g.Edges[lo:hi],
			DiskName: fmt.Sprintf("%s/chaos/c%d", g.Name, i),
		}
		node.Disk.Write(c.DiskName, graph.EncodeEdges(c.Edges))
		s.Chunks = append(s.Chunks, c)
	}
	return s, nil
}

// AsLayout exposes the chunks to GraphM as partitions. Chaos has no
// source-range index, so chunks cover the full vertex range.
func (s *Scattered) AsLayout() core.Layout {
	parts := make([]*core.Partition, 0, len(s.Chunks))
	for _, c := range s.Chunks {
		parts = append(parts, &core.Partition{
			ID:       c.ID,
			SrcLo:    0,
			SrcHi:    s.G.NumV,
			DiskName: c.DiskName,
			Edges:    c.Edges,
		})
	}
	return core.NewLayout(s.G, parts)
}

// SharedMemory builds the group's aggregate memory view with every chunk
// blob reachable, for the GraphM-integrated mode.
func (s *Scattered) SharedMemory(perNodeBudget int64) *storage.Memory {
	disk := storage.NewDisk()
	for _, c := range s.Chunks {
		disk.Write(c.DiskName, graph.EncodeEdges(c.Edges))
	}
	total := perNodeBudget * int64(len(s.Group))
	disk.SetPageCache(total)
	return storage.NewMemory(disk, total)
}

// Runner executes jobs in the baseline modes (Chaos-S / Chaos-C).
type Runner struct {
	S     *Scattered
	Net   *cluster.Network
	Cache *memsim.Cache
	Cost  engine.CostModel
	Mem   *storage.Memory
}

// NewRunner wires a baseline runner.
func NewRunner(s *Scattered, net *cluster.Network, mem *storage.Memory, cache *memsim.Cache) *Runner {
	return &Runner{S: s, Net: net, Mem: mem, Cache: cache, Cost: engine.DefaultCostModel()}
}

// RunSequential executes jobs one at a time (Chaos-S): exactly one stream
// occupies the NIC at any moment.
func (r *Runner) RunSequential(jobs []*engine.Job) error {
	for _, j := range jobs {
		stop := r.Net.StartStream()
		err := r.runJob(j, false)
		stop()
		if err != nil {
			return err
		}
	}
	return nil
}

// RunConcurrent executes jobs simultaneously; every job streams its own
// copy of every chunk over the shared NIC (Chaos-C). All streams are
// registered with the network up front: the simulation prices contention by
// how many jobs share the link, not by accidental goroutine overlap (on a
// single core short jobs serialize and the Table 4 penalty would vanish).
func (r *Runner) RunConcurrent(jobs []*engine.Job) error {
	stops := make([]func(), len(jobs))
	for i := range jobs {
		stops[i] = r.Net.StartStream()
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for _, j := range jobs {
		wg.Add(1)
		go func(j *engine.Job) {
			defer wg.Done()
			if err := r.runJob(j, true); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

func (r *Runner) runJob(j *engine.Job, perJobCopy bool) error {
	j.Bind(r.S.G)
	state := j.Prog.StateBytes()
	j.StateBase = r.Mem.AllocAddr(state)
	r.Mem.ReserveJobData(state)
	defer r.Mem.ReserveJobData(-state)

	for iter := 0; j.Prog.BeforeIteration(iter); iter++ {
		for _, c := range r.S.Chunks {
			if len(c.Edges) == 0 {
				continue
			}
			key := c.DiskName
			if perJobCopy {
				key = fmt.Sprintf("%s#job%d", c.DiskName, j.ID)
			}
			buf, io, err := r.Mem.Load(key, c.DiskName)
			if err != nil {
				return fmt.Errorf("chaos: job %d chunk %d: %w", j.ID, c.ID, err)
			}
			if io != storage.IONone {
				j.Met.SimIONS += r.Cost.DiskNS(uint64(len(buf.Data)))
			}
			// Chaos streams every chunk over the network each traversal,
			// resident or not: remote storage is the common case. Chunks
			// are scattered, so the group's NICs stream in parallel.
			j.Met.SimIONS += r.Net.TransferNS(uint64(len(c.Edges))*graph.EdgeSize) / uint64(len(r.S.Group))
			j.Met.PartitionLoads++
			engine.StreamEdges(j, c.Edges, buf.BaseAddr, 0, r.Cache, r.Cost)
			buf.Release()
		}
		j.Prog.AfterIteration(iter)
		j.Met.Iterations++
		j.Iter = iter + 1
	}
	j.Done = true
	return nil
}

// LoadHook prices the network streaming for the GraphM-integrated mode:
// each shared chunk load crosses the network once and is amortized across
// the attending jobs.
func (s *Scattered) LoadHook(net *cluster.Network) func(diskBytes, attendees int) uint64 {
	nodes := uint64(len(s.Group))
	return func(diskBytes, attendees int) uint64 {
		if attendees < 1 {
			attendees = 1
		}
		return net.TransferNS(uint64(diskBytes)) / nodes / uint64(attendees)
	}
}

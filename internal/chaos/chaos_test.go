package chaos

import (
	"math"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/cluster"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
)

func buildChaos(t *testing.T, numV, numE, nodes int) (*graph.Graph, *Scattered, *cluster.Cluster) {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("ch", numV, numE, 51))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(nodes, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	s, err := Build(g, cl.Nodes, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, cl
}

func TestBuildScattersAllEdges(t *testing.T) {
	g, s, _ := buildChaos(t, 300, 2400, 4)
	total := 0
	nodesUsed := map[int]bool{}
	for _, c := range s.Chunks {
		total += len(c.Edges)
		nodesUsed[c.Node.ID] = true
	}
	if total != g.NumEdges() {
		t.Fatalf("chunks cover %d edges, want %d", total, g.NumEdges())
	}
	if len(nodesUsed) != 4 {
		t.Fatalf("edges on %d nodes, want 4", len(nodesUsed))
	}
}

func TestBuildRejectsEmptyGroup(t *testing.T) {
	g := graph.GenerateChain("c", 4)
	if _, err := Build(g, nil, 2); err == nil {
		t.Fatal("expected error for empty group")
	}
}

func TestSequentialSSSPCorrect(t *testing.T) {
	g, s, cl := buildChaos(t, 300, 2400, 4)
	mem := s.SharedMemory(64 << 20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	r := NewRunner(s, cl.Net, mem, cache)
	sp := algorithms.NewSSSP(0)
	if err := r.RunSequential([]*engine.Job{engine.NewJob(1, sp, 1)}); err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceSSSP(g, 0)
	for v := range want {
		got := sp.Dist()[v]
		if math.IsInf(float64(want[v]), 1) != math.IsInf(float64(got), 1) {
			t.Fatalf("reachability mismatch at %d", v)
		}
		if !math.IsInf(float64(want[v]), 1) && math.Abs(float64(got-want[v])) > 1e-3 {
			t.Fatalf("dist[%d] = %v, want %v", v, got, want[v])
		}
	}
}

func TestNetworkCostPerTraversal(t *testing.T) {
	// Chaos streams every chunk over the network each iteration: traffic
	// scales with iterations x graph size.
	g, s, cl := buildChaos(t, 200, 1600, 2)
	mem := s.SharedMemory(64 << 20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	r := NewRunner(s, cl.Net, mem, cache)
	pr := algorithms.NewPageRank(0.85, 4)
	pr.Tolerance = 1e-12
	j := engine.NewJob(1, pr, 1)
	if err := r.RunSequential([]*engine.Job{j}); err != nil {
		t.Fatal(err)
	}
	want := uint64(g.NumEdges()) * graph.EdgeSize * j.Met.Iterations
	if cl.Net.Bytes() != want {
		t.Fatalf("network bytes = %d, want %d", cl.Net.Bytes(), want)
	}
}

func TestConcurrentWorseThanSequentialPerByte(t *testing.T) {
	// The Table 4 signature: Chaos-C pays more simulated time than Chaos-S
	// for the same total traffic, because concurrent streams contend.
	run := func(concurrent bool) uint64 {
		_, s, cl := buildChaos(t, 200, 1600, 2)
		mem := s.SharedMemory(64 << 20)
		cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
		r := NewRunner(s, cl.Net, mem, cache)
		var jobs []*engine.Job
		for i := 0; i < 4; i++ {
			pr := algorithms.NewPageRank(0.85, 3)
			pr.Tolerance = 1e-12
			jobs = append(jobs, engine.NewJob(i+1, pr, int64(i)))
		}
		var err error
		if concurrent {
			err = r.RunConcurrent(jobs)
		} else {
			err = r.RunSequential(jobs)
		}
		if err != nil {
			t.Fatal(err)
		}
		var io uint64
		for _, j := range jobs {
			io += j.Met.SimIONS
		}
		return io
	}
	seq := run(false)
	conc := run(true)
	if conc <= seq {
		t.Fatalf("concurrent I/O time %d not above sequential %d", conc, seq)
	}
}

func TestLoadHookAmortizes(t *testing.T) {
	_, s, cl := buildChaos(t, 100, 800, 2)
	hook := s.LoadHook(cl.Net)
	one := hook(1<<20, 1)
	four := hook(1<<20, 4)
	if four >= one {
		t.Fatalf("hook must amortize across attendees: %d vs %d", four, one)
	}
	if hook(1<<20, 0) == 0 {
		t.Fatal("zero attendees should clamp to 1, not divide by zero")
	}
}

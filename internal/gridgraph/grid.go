// Package gridgraph implements a GridGraph-style out-of-core engine
// substrate (Zhu et al., ATC'15): edges are partitioned into a P×P grid of
// blocks by (source stripe, destination stripe) and streamed block by block
// with selective scheduling (a block is skipped when no source vertex in its
// stripe is active — GridGraph's should_access_shard test).
//
// The package provides the two baseline execution modes the paper compares
// against — sequential (GridGraph-S) and OS-managed concurrent
// (GridGraph-C) — while the GraphM-integrated mode (GridGraph-M) lives in
// internal/core and drives the same grid layout through the Table 1 API.
package gridgraph

import (
	"fmt"

	"graphm/internal/graph"
	"graphm/internal/storage"
)

// Partition is one grid block: the edges whose source falls in
// [SrcLo, SrcHi) and destination in [DstLo, DstHi).
type Partition struct {
	ID           int
	SrcLo, SrcHi int
	DstLo, DstHi int
	Edges        []graph.Edge
	DiskName     string
}

// Grid is the preprocessed grid representation of one graph.
type Grid struct {
	Name string
	G    *graph.Graph
	P    int // grid is P×P
	VPP  int // vertices per stripe
	Dsk  *storage.Disk

	Parts []*Partition
}

// Build partitions g into a P×P grid and writes each block's edge blob to
// disk, mirroring GridGraph's preprocessing (the Convert() step of the
// paper's graph preprocessor).
func Build(g *graph.Graph, p int, disk *storage.Disk) (*Grid, error) {
	if p <= 0 {
		return nil, fmt.Errorf("gridgraph: P must be positive, got %d", p)
	}
	vpp := (g.NumV + p - 1) / p
	grid := &Grid{Name: g.Name, G: g, P: p, VPP: vpp, Dsk: disk}
	buckets := make([][]graph.Edge, p*p)
	for _, e := range g.Edges {
		i := int(e.Src) / vpp
		j := int(e.Dst) / vpp
		idx := i*p + j
		buckets[idx] = append(buckets[idx], e)
	}
	for i := 0; i < p; i++ {
		for j := 0; j < p; j++ {
			id := i*p + j
			part := &Partition{
				ID:       id,
				SrcLo:    i * vpp,
				SrcHi:    min((i+1)*vpp, g.NumV),
				DstLo:    j * vpp,
				DstHi:    min((j+1)*vpp, g.NumV),
				Edges:    buckets[id],
				DiskName: fmt.Sprintf("%s/grid/p%d", g.Name, id),
			}
			disk.Write(part.DiskName, graph.EncodeEdges(part.Edges))
			grid.Parts = append(grid.Parts, part)
		}
	}
	return grid, nil
}

// CompressBlobs re-registers every partition blob at its delta/varint
// compressed transfer size: subsequent metered reads bill the compressed
// bytes (what a real disk would move for a compressed on-disk grid) while
// callers keep receiving the raw blob. Opt-in — the default benchmarks
// meter raw sizes, matching the paper's uncompressed GridGraph format.
// Returns the raw and compressed totals.
func (g *Grid) CompressBlobs() (raw, compressed int64) {
	for _, part := range g.Parts {
		blob := graph.EncodeEdges(part.Edges)
		c := int64(len(storage.CompressEdges(part.Edges)))
		g.Dsk.WriteSized(part.DiskName, blob, c)
		raw += int64(len(blob))
		compressed += c
	}
	return raw, compressed
}

// NumPartitions returns P*P.
func (g *Grid) NumPartitions() int { return len(g.Parts) }

// Partition returns block i in streaming order.
func (g *Grid) Partition(i int) *Partition { return g.Parts[i] }

// Graph returns the underlying graph.
func (g *Grid) Graph() *graph.Graph { return g.G }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

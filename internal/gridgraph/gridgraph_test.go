package gridgraph

import (
	"math"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

func buildRig(t *testing.T, numV, numE, p int, memBudget int64) (*graph.Graph, *Runner, *storage.Disk, *storage.Memory) {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("g", numV, numE, 21))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := Build(g, p, disk)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemory(disk, memBudget)
	cache, err := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	return g, NewRunner(grid, mem, cache), disk, mem
}

func TestBuildPartitionsCoverEdges(t *testing.T) {
	g, r, _, _ := buildRig(t, 400, 3000, 4, 64<<20)
	total := 0
	for _, p := range r.Grid.Parts {
		for _, e := range p.Edges {
			if int(e.Src) < p.SrcLo || int(e.Src) >= p.SrcHi {
				t.Fatalf("edge %v outside src range [%d,%d)", e, p.SrcLo, p.SrcHi)
			}
			if int(e.Dst) < p.DstLo || int(e.Dst) >= p.DstHi {
				t.Fatalf("edge %v outside dst range [%d,%d)", e, p.DstLo, p.DstHi)
			}
		}
		total += len(p.Edges)
	}
	if total != g.NumEdges() {
		t.Fatalf("grid covers %d edges, want %d", total, g.NumEdges())
	}
	if got := r.Grid.NumPartitions(); got != 16 {
		t.Fatalf("partitions = %d, want 16", got)
	}
}

func TestBuildRejectsBadP(t *testing.T) {
	g := graph.GenerateChain("c", 4)
	if _, err := Build(g, 0, storage.NewDisk()); err == nil {
		t.Fatal("expected error for P=0")
	}
}

func TestBuildWritesBlobs(t *testing.T) {
	g, r, disk, _ := buildRig(t, 100, 800, 2, 64<<20)
	var blobBytes int64
	for _, p := range r.Grid.Parts {
		blobBytes += disk.Size(p.DiskName)
	}
	if blobBytes != int64(g.NumEdges())*graph.EdgeSize {
		t.Fatalf("blobs hold %d bytes, want %d", blobBytes, int64(g.NumEdges())*graph.EdgeSize)
	}
}

func TestSequentialCorrectness(t *testing.T) {
	g, r, _, _ := buildRig(t, 500, 4000, 4, 64<<20)
	pr := algorithms.NewPageRank(0.85, 6)
	pr.Tolerance = 1e-12
	bfs := algorithms.NewBFS(0)
	jobs := []*engine.Job{engine.NewJob(1, pr, 1), engine.NewJob(2, bfs, 2)}
	if err := r.RunSequential(jobs); err != nil {
		t.Fatal(err)
	}
	wantPR := algorithms.ReferencePageRank(g, 0.85, 6)
	for v := range wantPR {
		if math.Abs(pr.Ranks()[v]-wantPR[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], wantPR[v])
		}
	}
	wantBFS := algorithms.ReferenceBFS(g, 0)
	for v := range wantBFS {
		if bfs.Dist()[v] != wantBFS[v] {
			t.Fatalf("bfs[%d] = %d, want %d", v, bfs.Dist()[v], wantBFS[v])
		}
	}
}

func TestConcurrentCorrectness(t *testing.T) {
	g, r, _, _ := buildRig(t, 500, 4000, 4, 64<<20)
	r.Cores = 4
	var jobs []*engine.Job
	var prs []*algorithms.PageRank
	for i := 0; i < 4; i++ {
		pr := algorithms.NewPageRank(0.5+float64(i)*0.1, 5)
		pr.Tolerance = 1e-12
		prs = append(prs, pr)
		jobs = append(jobs, engine.NewJob(i+1, pr, int64(i)))
	}
	if err := r.RunConcurrent(jobs); err != nil {
		t.Fatal(err)
	}
	for i, pr := range prs {
		want := algorithms.ReferencePageRank(g, 0.5+float64(i)*0.1, 5)
		for v := range want {
			if math.Abs(pr.Ranks()[v]-want[v]) > 1e-9 {
				t.Fatalf("job %d rank[%d] = %g, want %g", i, v, pr.Ranks()[v], want[v])
			}
		}
	}
}

func TestConcurrentUsesPerJobCopies(t *testing.T) {
	// GridGraph-C loads one copy per job: disk reads scale with job count
	// even when everything fits in memory.
	_, r, disk, _ := buildRig(t, 300, 2000, 2, 64<<20)
	var jobs []*engine.Job
	for i := 0; i < 4; i++ {
		pr := algorithms.NewPageRank(0.85, 2)
		pr.Tolerance = 1e-12
		jobs = append(jobs, engine.NewJob(i+1, pr, int64(i)))
	}
	if err := r.RunConcurrent(jobs); err != nil {
		t.Fatal(err)
	}
	if disk.ReadOps() < uint64(4*r.Grid.NumPartitions()) {
		t.Fatalf("reads = %d, want >= %d (a copy per job)", disk.ReadOps(), 4*r.Grid.NumPartitions())
	}
}

func TestSequentialSelectiveScheduling(t *testing.T) {
	// BFS from one vertex must not scan partitions with no active sources:
	// scanned edges in iteration 1 are bounded by the active stripes.
	g, r, _, _ := buildRig(t, 600, 3000, 4, 64<<20)
	bfs := algorithms.NewBFS(0)
	j := engine.NewJob(1, bfs, 1)
	if err := r.RunSequential([]*engine.Job{j}); err != nil {
		t.Fatal(err)
	}
	// A full traversal per iteration would scan numEdges*iterations.
	full := uint64(g.NumEdges()) * j.Met.Iterations
	if j.Met.ScannedEdges >= full {
		t.Fatalf("scanned %d edges, selective scheduling should scan < %d", j.Met.ScannedEdges, full)
	}
}

func TestOutOfCoreRefaults(t *testing.T) {
	// With memory far smaller than the graph, every full iteration must
	// re-read partitions from disk.
	g, r, disk, mem := buildRig(t, 400, 12000, 4, int64(12000*graph.EdgeSize/4))
	pr := algorithms.NewPageRank(0.85, 3)
	pr.Tolerance = 1e-12
	j := engine.NewJob(1, pr, 1)
	if err := r.RunSequential([]*engine.Job{j}); err != nil {
		t.Fatal(err)
	}
	if mem.Evictions() == 0 {
		t.Fatal("expected evictions in out-of-core run")
	}
	if disk.ReadBytes() < uint64(g.SizeBytes())*2 {
		t.Fatalf("disk reads %d bytes; out-of-core should re-read across iterations (graph=%d)",
			disk.ReadBytes(), g.SizeBytes())
	}
}

package gridgraph

import (
	"fmt"
	"sync"

	"graphm/internal/engine"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// Runner executes jobs over a Grid in the two baseline modes of the paper's
// evaluation:
//
//   - RunSequential — GridGraph-S: jobs run strictly one after another, each
//     enjoying the whole machine. Resident partitions persist across jobs (the
//     OS page cache effect the paper notes for in-memory graphs).
//   - RunConcurrent — GridGraph-C: jobs run simultaneously, but each job loads
//     its *own* copy of every partition; the OS (here: the buffer pool's LRU)
//     arbitrates memory, reproducing Figure 1(a)'s redundant copies.
//
// The GraphM-integrated mode (GridGraph-M) is provided by internal/core.
type Runner struct {
	Grid  *Grid
	Mem   *storage.Memory
	Cache *memsim.Cache
	Cost  engine.CostModel
	// Cores bounds the number of jobs streaming simultaneously in
	// RunConcurrent; zero means unbounded.
	Cores int
}

// NewRunner wires a runner with the default cost model.
func NewRunner(grid *Grid, mem *storage.Memory, cache *memsim.Cache) *Runner {
	return &Runner{Grid: grid, Mem: mem, Cache: cache, Cost: engine.DefaultCostModel()}
}

// RunSequential executes jobs one at a time (GridGraph-S).
func (r *Runner) RunSequential(jobs []*engine.Job) error {
	for _, j := range jobs {
		if err := r.runJob(j, func(p *Partition) string { return p.DiskName }); err != nil {
			return err
		}
	}
	return nil
}

// RunConcurrent executes all jobs simultaneously with per-job graph copies
// (GridGraph-C). The per-job buffer keys force the redundant loads the paper
// measures; Cores bounds simultaneous streamers.
func (r *Runner) RunConcurrent(jobs []*engine.Job) error {
	var (
		wg   sync.WaitGroup
		sem  chan struct{}
		mu   sync.Mutex
		errs []error
	)
	if r.Cores > 0 {
		sem = make(chan struct{}, r.Cores)
	}
	for _, j := range jobs {
		wg.Add(1)
		go func(j *engine.Job) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			key := func(p *Partition) string { return fmt.Sprintf("%s#job%d", p.DiskName, j.ID) }
			if err := r.runJob(j, key); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

// runJob is the StreamEdges loop of Figure 6(a): for each iteration, stream
// every active partition, skipping blocks with no active source vertex.
func (r *Runner) runJob(j *engine.Job, keyFn func(p *Partition) string) error {
	j.Bind(r.Grid.G)
	state := j.Prog.StateBytes()
	j.StateBase = r.Mem.AllocAddr(state)
	r.Mem.ReserveJobData(state)
	defer r.Mem.ReserveJobData(-state)
	stopStream := r.Mem.Disk().StartStream()
	defer stopStream()

	for iter := 0; j.Prog.BeforeIteration(iter); iter++ {
		for _, p := range r.Grid.Parts {
			if len(p.Edges) == 0 {
				continue
			}
			// Selective scheduling: GridGraph's should_access_shard.
			if !j.Prog.Active().AnyInRange(p.SrcLo, p.SrcHi) {
				continue
			}
			buf, io, err := r.Mem.Load(keyFn(p), p.DiskName)
			if err != nil {
				return fmt.Errorf("gridgraph: job %d partition %d: %w", j.ID, p.ID, err)
			}
			if io != storage.IONone {
				base := float64(r.Cost.DiskNS(uint64(len(buf.Data))))
				if io == storage.IOReread {
					base *= r.Mem.Disk().Contention()
				}
				j.Met.SimIONS += uint64(base)
			}
			j.Met.PartitionLoads++
			engine.StreamEdges(j, p.Edges, buf.BaseAddr, 0, r.Cache, r.Cost)
			buf.Release()
		}
		j.Prog.AfterIteration(iter)
		j.Met.Iterations++
		j.Iter = iter + 1
	}
	j.Done = true
	return nil
}

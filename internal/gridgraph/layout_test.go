package gridgraph

import (
	"testing"

	"graphm/internal/graph"
	"graphm/internal/storage"
)

func TestAsLayoutMirrorsGrid(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("l", 300, 2400, 71))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := Build(g, 3, disk)
	if err != nil {
		t.Fatal(err)
	}
	layout := grid.AsLayout()
	if layout.Graph() != g {
		t.Fatal("layout graph mismatch")
	}
	parts := layout.Partitions()
	if len(parts) != grid.NumPartitions() {
		t.Fatalf("layout has %d partitions, want %d", len(parts), grid.NumPartitions())
	}
	total := 0
	for i, p := range parts {
		gp := grid.Partition(i)
		if p.ID != gp.ID || p.SrcLo != gp.SrcLo || p.SrcHi != gp.SrcHi || p.DiskName != gp.DiskName {
			t.Fatalf("partition %d metadata mismatch: %+v vs grid %+v", i, p, gp)
		}
		if len(p.Edges) != len(gp.Edges) {
			t.Fatalf("partition %d edges %d vs %d", i, len(p.Edges), len(gp.Edges))
		}
		total += len(p.Edges)
	}
	if total != g.NumEdges() {
		t.Fatalf("layout covers %d edges, want %d", total, g.NumEdges())
	}
}

func TestDiskBlobsDecodeToPartitionEdges(t *testing.T) {
	g, _ := graph.GenerateUniform("b", 100, 900, 72)
	disk := storage.NewDisk()
	grid, err := Build(g, 2, disk)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range grid.Parts {
		blob, err := disk.Read(p.DiskName)
		if err != nil {
			t.Fatal(err)
		}
		edges, err := graph.DecodeEdges(blob)
		if err != nil {
			t.Fatal(err)
		}
		if len(edges) != len(p.Edges) {
			t.Fatalf("partition %d blob has %d edges, want %d", p.ID, len(edges), len(p.Edges))
		}
		for i := range edges {
			if edges[i] != p.Edges[i] {
				t.Fatalf("partition %d edge %d mismatch", p.ID, i)
			}
		}
	}
}

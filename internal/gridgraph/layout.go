package gridgraph

import (
	"graphm/internal/core"
)

// AsLayout exposes the grid to GraphM (internal/core). GraphM manages the
// blocks exactly as GridGraph laid them out; only logical chunk labels are
// added on top (Section 3.2).
func (g *Grid) AsLayout() core.Layout {
	parts := make([]*core.Partition, 0, len(g.Parts))
	for _, p := range g.Parts {
		parts = append(parts, &core.Partition{
			ID:       p.ID,
			SrcLo:    p.SrcLo,
			SrcHi:    p.SrcHi,
			DiskName: p.DiskName,
			Edges:    p.Edges,
		})
	}
	return core.NewLayout(g.G, parts)
}

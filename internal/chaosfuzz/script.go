// Package chaosfuzz lifts the scenario-level differential fuzzer to the
// full service+storage stack: seeded chaos scripts mix tenant floods,
// cancels, queue-full storms, graph evolution, clock-skewed arrivals,
// injected storage-fault schedules and crash+restart cycles against a real
// admission service over a real durable store, and a set of oracles checks
// that no acknowledged submission or evolve record is ever lost, that two
// runs of the same script produce byte-identical ticket logs, and that the
// recovered graph view is bit-identical to a pure replay of the durable
// record stream.
//
// Determinism is by construction, not by luck: every driver goroutine parks
// at the service FinishGate until the script releases it (so admission,
// queue-full and cancel outcomes are a pure function of the script), and
// best-effort terminal lines are buffered and flushed in ticket-ID order at
// script-controlled quiescent points (so the on-disk ticket log bytes are
// too). Storage faults use count-based injector rules only, which stay
// deterministic because every injector-visible operation is serialized on
// the script thread.
package chaosfuzz

import (
	"fmt"
	"io"
	"math/rand"
	"sort"
	"strconv"
	"strings"

	"graphm/internal/graph"
)

// OpKind enumerates the chaos-script operations.
type OpKind uint8

const (
	// OpSubmit submits one job. Refusals (queue full, degraded ticket log)
	// are tolerated and tracked; only acknowledged submissions join the
	// oracle's acked set.
	OpSubmit OpKind = iota + 1
	// OpFlood submits N pagerank jobs from one tenant back to back — the
	// queue-full storm.
	OpFlood
	// OpCancel settles the system (every in-flight driver parked) and then
	// cancels the Target-th acknowledged submission. Canceling a terminal or
	// unknown ticket is a deterministic no-op.
	OpCancel
	// OpAdd applies a global evolve update appending Edges.
	OpAdd
	// OpRemove applies a global evolve update removing all edges out of Src.
	OpRemove
	// OpSettle waits until every in-flight driver is parked at the finish
	// gate, then flushes buffered terminal lines in ticket-ID order.
	OpSettle
	// OpRelease releases the N lowest-ID parked drivers, waiting for each
	// ticket to turn terminal (freeing its admission slot deterministically).
	OpRelease
	// OpCheckpoint settles, then folds the WAL into a checkpoint. A
	// checkpoint refused by an armed fault schedule is tolerated.
	OpCheckpoint
	// OpFault arms the storage fault injector with Sched.
	OpFault
	// OpClearFault disarms the injector and probes the durable path back to
	// health (the graceful-degradation recovery cycle).
	OpClearFault
	// OpCrash freezes the store (no more writes reach disk), tears the
	// service down, and restarts the whole stack from the data directory:
	// recovery replay, pending-ticket re-admission, mid-replay evolution.
	OpCrash
	// OpSkew jumps the service clock by SkewMS milliseconds (possibly
	// backwards) — clock-skewed arrival timestamps.
	OpSkew
)

var opNames = map[OpKind]string{
	OpSubmit: "submit", OpFlood: "flood", OpCancel: "cancel", OpAdd: "add",
	OpRemove: "remove", OpSettle: "settle", OpRelease: "release",
	OpCheckpoint: "checkpoint", OpFault: "fault", OpClearFault: "clearfault",
	OpCrash: "crash", OpSkew: "skew",
}

func (k OpKind) String() string {
	if s, ok := opNames[k]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(k))
}

// Op is one chaos-script operation; which fields matter depends on Kind.
type Op struct {
	Kind   OpKind
	Tenant string       // submit, flood
	Algo   string       // submit
	Seed   int64        // submit
	N      int          // flood, release
	Target int          // cancel: index into the acked-submission order
	Edges  []graph.Edge // add
	Src    uint32       // remove
	Sched  string       // fault
	SkewMS int64        // skew
}

// Script is a complete chaos scenario: the environment shape, the service
// admission bounds, and the operation sequence.
type Script struct {
	// Env generation parameters (scenario.GenEnv): dataset name, vertex and
	// edge counts, grid partitions, graph seed.
	EnvName   string
	NumV      int
	NumE      int
	Parts     int
	GraphSeed int64

	// Service admission bounds (small on purpose, so floods hit them).
	MaxInFlight int
	QueueCap    int

	Ops []Op
}

// Validate checks the structural constraints the runner's oracles rely on:
// a crash (and the end of the script) must not leave a fault schedule
// armed — the clear-fault probe truncates any unacknowledged torn WAL tail,
// which is what makes "durable state == acked state" hold at crash points.
func (s Script) Validate() error {
	if s.NumV <= 0 || s.NumE <= 0 || s.Parts <= 0 {
		return fmt.Errorf("chaosfuzz: bad env shape %d/%d/%d", s.NumV, s.NumE, s.Parts)
	}
	if s.MaxInFlight <= 0 || s.QueueCap <= 0 {
		return fmt.Errorf("chaosfuzz: bad admission bounds %d/%d", s.MaxInFlight, s.QueueCap)
	}
	armed := false
	for i, op := range s.Ops {
		switch op.Kind {
		case OpFault:
			if op.Sched == "" {
				return fmt.Errorf("chaosfuzz: op %d: fault without schedule", i)
			}
			armed = true
		case OpClearFault:
			armed = false
		case OpCrash:
			if armed {
				return fmt.Errorf("chaosfuzz: op %d: crash with a fault schedule still armed", i)
			}
		case OpSubmit:
			if op.Algo == "" {
				return fmt.Errorf("chaosfuzz: op %d: submit without algo", i)
			}
		case OpFlood, OpRelease:
			if op.N <= 0 {
				return fmt.Errorf("chaosfuzz: op %d: %v with n=%d", i, op.Kind, op.N)
			}
		case OpAdd:
			if len(op.Edges) == 0 {
				return fmt.Errorf("chaosfuzz: op %d: add without edges", i)
			}
		}
	}
	if armed {
		return fmt.Errorf("chaosfuzz: script ends with a fault schedule armed")
	}
	return nil
}

// Encode renders the script in the corpus text format.
func (s Script) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "graphm-chaos v1\n")
	fmt.Fprintf(&b, "env name=%s v=%d e=%d p=%d gseed=%d\n", s.EnvName, s.NumV, s.NumE, s.Parts, s.GraphSeed)
	fmt.Fprintf(&b, "cfg inflight=%d queuecap=%d\n", s.MaxInFlight, s.QueueCap)
	for _, op := range s.Ops {
		fmt.Fprintf(&b, "op %s", op.Kind)
		switch op.Kind {
		case OpSubmit:
			fmt.Fprintf(&b, " tenant=%s algo=%s seed=%d", op.Tenant, op.Algo, op.Seed)
		case OpFlood:
			fmt.Fprintf(&b, " tenant=%s n=%d", op.Tenant, op.N)
		case OpCancel:
			fmt.Fprintf(&b, " target=%d", op.Target)
		case OpAdd:
			parts := make([]string, len(op.Edges))
			for i, e := range op.Edges {
				parts[i] = fmt.Sprintf("%d:%d:%g", e.Src, e.Dst, e.Weight)
			}
			fmt.Fprintf(&b, " edges=%s", strings.Join(parts, ","))
		case OpRemove:
			fmt.Fprintf(&b, " src=%d", op.Src)
		case OpRelease:
			fmt.Fprintf(&b, " n=%d", op.N)
		case OpFault:
			fmt.Fprintf(&b, " sched=%s", op.Sched)
		case OpSkew:
			fmt.Fprintf(&b, " ms=%d", op.SkewMS)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Decode parses the corpus text format back into a Script.
func Decode(r io.Reader) (Script, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Script{}, err
	}
	var s Script
	seenHeader, seenEnv, seenCfg := false, false, false
	for ln, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if !seenHeader {
			if line != "graphm-chaos v1" {
				return Script{}, fmt.Errorf("chaosfuzz: line %d: unsupported header %q", ln+1, line)
			}
			seenHeader = true
			continue
		}
		fields := strings.Fields(line)
		kv := parseKVs(fields[1:])
		switch fields[0] {
		case "env":
			s.EnvName = kv["name"]
			if s.NumV, err = atoi(kv, "v"); err == nil {
				if s.NumE, err = atoi(kv, "e"); err == nil {
					if s.Parts, err = atoi(kv, "p"); err == nil {
						s.GraphSeed, err = atoi64(kv, "gseed")
					}
				}
			}
			if err != nil {
				return Script{}, fmt.Errorf("chaosfuzz: line %d: %v", ln+1, err)
			}
			seenEnv = true
		case "cfg":
			if s.MaxInFlight, err = atoi(kv, "inflight"); err == nil {
				s.QueueCap, err = atoi(kv, "queuecap")
			}
			if err != nil {
				return Script{}, fmt.Errorf("chaosfuzz: line %d: %v", ln+1, err)
			}
			seenCfg = true
		case "op":
			if len(fields) < 2 {
				return Script{}, fmt.Errorf("chaosfuzz: line %d: empty op", ln+1)
			}
			op, err := decodeOp(fields[1], kv)
			if err != nil {
				return Script{}, fmt.Errorf("chaosfuzz: line %d: %v", ln+1, err)
			}
			s.Ops = append(s.Ops, op)
		default:
			return Script{}, fmt.Errorf("chaosfuzz: line %d: unknown directive %q", ln+1, fields[0])
		}
	}
	if !seenHeader || !seenEnv || !seenCfg {
		return Script{}, fmt.Errorf("chaosfuzz: incomplete script (header/env/cfg missing)")
	}
	return s, s.Validate()
}

func decodeOp(name string, kv map[string]string) (Op, error) {
	var kind OpKind
	for k, n := range opNames {
		if n == name {
			kind = k
		}
	}
	if kind == 0 {
		return Op{}, fmt.Errorf("unknown op kind %q", name)
	}
	op := Op{Kind: kind}
	var err error
	switch kind {
	case OpSubmit:
		op.Tenant, op.Algo = kv["tenant"], kv["algo"]
		op.Seed, err = atoi64(kv, "seed")
	case OpFlood:
		op.Tenant = kv["tenant"]
		op.N, err = atoi(kv, "n")
	case OpCancel:
		op.Target, err = atoi(kv, "target")
	case OpAdd:
		op.Edges, err = parseEdges(kv["edges"])
	case OpRemove:
		var v int64
		v, err = atoi64(kv, "src")
		op.Src = uint32(v)
	case OpRelease:
		op.N, err = atoi(kv, "n")
	case OpFault:
		op.Sched = kv["sched"]
	case OpSkew:
		op.SkewMS, err = atoi64(kv, "ms")
	}
	return op, err
}

func parseKVs(fields []string) map[string]string {
	kv := make(map[string]string, len(fields))
	for _, f := range fields {
		if i := strings.IndexByte(f, '='); i > 0 {
			kv[f[:i]] = f[i+1:]
		}
	}
	return kv
}

func atoi(kv map[string]string, key string) (int, error) {
	n, err := atoi64(kv, key)
	return int(n), err
}

func atoi64(kv map[string]string, key string) (int64, error) {
	v, ok := kv[key]
	if !ok {
		return 0, fmt.Errorf("missing %q", key)
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad %s=%q", key, v)
	}
	return n, nil
}

func parseEdges(spec string) ([]graph.Edge, error) {
	if spec == "" {
		return nil, fmt.Errorf("missing \"edges\"")
	}
	var edges []graph.Edge
	for _, part := range strings.Split(spec, ",") {
		var src, dst uint64
		var w float64
		bits := strings.Split(part, ":")
		if len(bits) != 3 {
			return nil, fmt.Errorf("edge %q not src:dst:weight", part)
		}
		var err error
		if src, err = strconv.ParseUint(bits[0], 10, 32); err != nil {
			return nil, fmt.Errorf("edge %q: %v", part, err)
		}
		if dst, err = strconv.ParseUint(bits[1], 10, 32); err != nil {
			return nil, fmt.Errorf("edge %q: %v", part, err)
		}
		if w, err = strconv.ParseFloat(bits[2], 32); err != nil {
			return nil, fmt.Errorf("edge %q: %v", part, err)
		}
		edges = append(edges, graph.Edge{Src: uint32(src), Dst: uint32(dst), Weight: float32(w)})
	}
	return edges, nil
}

// GenOptions shapes generated scripts. The env shape is fixed across seeds:
// chaos variety comes from the operation mix, and a shared shape lets the
// runner reuse one deterministic graph generation recipe.
type GenOptions struct {
	EnvName   string
	NumV      int
	NumE      int
	Parts     int
	GraphSeed int64
	// Sources are vertex IDs that exist as edge sources in the generated
	// graph — evolve ops draw from them so updates always land on labelled,
	// non-empty partitions (a validation failure would leave a partial
	// in-memory install no durable replay can reproduce).
	Sources []uint32
	// MaxOps bounds the script length (default 22).
	MaxOps int
	// MaxCrashes bounds restart cycles per script (default 2).
	MaxCrashes int
}

func (o GenOptions) withDefaults() GenOptions {
	if o.MaxOps <= 0 {
		o.MaxOps = 22
	}
	if o.MaxCrashes <= 0 {
		o.MaxCrashes = 2
	}
	return o
}

var genAlgos = []string{"pagerank", "bfs", "wcc", "sssp"}

// faultTemplates are the count-based schedules the generator arms. Counts
// below the storage retry budget (4 attempts) exercise the transparent
// retry path; larger counts latch the durable path and exercise graceful
// degradation plus the probe recovery. All rules are count-based — every
// injector-visible operation runs on the script thread, so counts are
// deterministic across runs of the same script.
var faultTemplates = []string{
	"sync:fail:path=tickets:count=2",
	"sync:fail:path=tickets:count=9",
	"sync:fail:path=wal-:count=1",
	"sync:fail:path=wal-:count=8",
	"write:torn:path=wal-:count=1",
	"write:enospc:path=wal-:count=1",
	"rename:fail:path=ckpt:count=1",
	"sync:fail:path=wal-:after=1:count=6",
}

// Generate produces a valid chaos script from the RNG: a structured random
// walk over the op kinds that maintains the Validate invariants (fault
// schedules are always cleared before a crash and before the script ends).
func Generate(rng *rand.Rand, o GenOptions) (Script, error) {
	o = o.withDefaults()
	if len(o.Sources) == 0 {
		return Script{}, fmt.Errorf("chaosfuzz: GenOptions.Sources is empty")
	}
	s := Script{
		EnvName: o.EnvName, NumV: o.NumV, NumE: o.NumE, Parts: o.Parts, GraphSeed: o.GraphSeed,
		MaxInFlight: 2 + rng.Intn(2),
		QueueCap:    2 + rng.Intn(3),
	}
	budget := 10 + rng.Intn(o.MaxOps-9)
	armed, crashes := false, 0
	// Weighted op menu; drawing an inapplicable entry falls through to
	// submit, keeping the walk total-ordered by the RNG stream alone.
	for len(s.Ops) < budget {
		switch pick := rng.Intn(100); {
		case pick < 26: // submit
			s.Ops = append(s.Ops, Op{Kind: OpSubmit,
				Tenant: fmt.Sprintf("t%d", rng.Intn(4)),
				Algo:   genAlgos[rng.Intn(len(genAlgos))],
				Seed:   int64(rng.Intn(1000)),
			})
		case pick < 36: // flood
			s.Ops = append(s.Ops, Op{Kind: OpFlood,
				Tenant: fmt.Sprintf("t%d", rng.Intn(4)),
				N:      s.QueueCap + 2 + rng.Intn(4),
			})
		case pick < 50: // settle
			s.Ops = append(s.Ops, Op{Kind: OpSettle})
		case pick < 64: // release
			s.Ops = append(s.Ops, Op{Kind: OpRelease, N: 1 + rng.Intn(3)})
		case pick < 72: // add
			n := 1 + rng.Intn(4)
			edges := make([]graph.Edge, n)
			for i := range edges {
				edges[i] = graph.Edge{
					Src:    o.Sources[rng.Intn(len(o.Sources))],
					Dst:    uint32(rng.Intn(o.NumV)),
					Weight: float32(1 + rng.Intn(8)),
				}
			}
			s.Ops = append(s.Ops, Op{Kind: OpAdd, Edges: edges})
		case pick < 77: // remove
			s.Ops = append(s.Ops, Op{Kind: OpRemove, Src: o.Sources[rng.Intn(len(o.Sources))]})
		case pick < 82: // cancel
			s.Ops = append(s.Ops, Op{Kind: OpCancel, Target: rng.Intn(12)})
		case pick < 88 && !armed: // fault
			s.Ops = append(s.Ops, Op{Kind: OpFault, Sched: faultTemplates[rng.Intn(len(faultTemplates))]})
			armed = true
		case pick < 88 && armed: // clear an armed fault
			s.Ops = append(s.Ops, Op{Kind: OpClearFault})
			armed = false
		case pick < 93: // checkpoint
			s.Ops = append(s.Ops, Op{Kind: OpCheckpoint})
		case pick < 97 && crashes < o.MaxCrashes: // crash (clearing faults first)
			if armed {
				s.Ops = append(s.Ops, Op{Kind: OpClearFault})
				armed = false
			}
			s.Ops = append(s.Ops, Op{Kind: OpCrash})
			crashes++
		default: // skew
			s.Ops = append(s.Ops, Op{Kind: OpSkew, SkewMS: int64(rng.Intn(120_000)) - 60_000})
		}
	}
	if armed {
		s.Ops = append(s.Ops, Op{Kind: OpClearFault})
	}
	if err := s.Validate(); err != nil {
		return Script{}, err
	}
	return s, nil
}

// Minimize greedily shrinks a failing script while the predicate keeps
// holding: first whole ops are dropped (largest spans first), then flood
// and release widths and add-edge lists are shrunk. Every candidate is
// re-validated so minimization never produces a script the runner's
// oracles don't cover (e.g. a crash under an armed fault).
func Minimize(s Script, failing func(Script) bool) Script {
	cur := s
	for changed := true; changed; {
		changed = false
		// Drop spans of ops, halving the span width down to single ops.
		for span := len(cur.Ops); span >= 1; span /= 2 {
			for i := 0; i+span <= len(cur.Ops); i++ {
				cand := cur
				cand.Ops = append(append([]Op(nil), cur.Ops[:i]...), cur.Ops[i+span:]...)
				if cand.Validate() == nil && failing(cand) {
					cur = cand
					changed = true
					// Restart the scan at this width: indices shifted.
					i--
				}
			}
		}
		// Shrink numeric payloads.
		for i := range cur.Ops {
			for {
				cand := cur
				cand.Ops = append([]Op(nil), cur.Ops...)
				op := &cand.Ops[i]
				switch {
				case op.Kind == OpFlood && op.N > 1:
					op.N--
				case op.Kind == OpRelease && op.N > 1:
					op.N--
				case op.Kind == OpAdd && len(op.Edges) > 1:
					op.Edges = op.Edges[:len(op.Edges)-1]
				default:
					op = nil
				}
				if op == nil || cand.Validate() != nil || !failing(cand) {
					break
				}
				cur = cand
				changed = true
			}
		}
	}
	return cur
}

// SortedSources extracts the distinct edge-source vertex IDs from a
// partition-edges map, sorted — the generator's valid-update domain.
func SortedSources(partitions map[int][]graph.Edge) []uint32 {
	seen := make(map[uint32]bool)
	for _, edges := range partitions {
		for _, e := range edges {
			seen[e.Src] = true
		}
	}
	out := make([]uint32, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

package chaosfuzz

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"testing"
)

// shardChaosCounts is the scale-out matrix: the chaos env uses 3 partitions,
// so 3 is the widest legal group (one shard per partition).
var shardChaosCounts = []int{1, 2, 3}

// shardChaosScripts returns how many generated scripts the sharded chaos
// differential replays: GRAPHM_SHARD_CHAOS_SCRIPTS when set (CI smoke pins a
// small number; the nightly soak cranks it up), else 8, scaled down under
// -short. Each script runs once per shard count.
func shardChaosScripts(t *testing.T) int {
	if v := os.Getenv("GRAPHM_SHARD_CHAOS_SCRIPTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad GRAPHM_SHARD_CHAOS_SCRIPTS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 3
	}
	return 8
}

// TestChaosShardedDifferential is the nightly soak's sharded flavor: the
// same generated chaos scripts (same seeds as the durable differential, so
// a cross-flavor failure pins to one script), replayed against shard groups
// of every legal width, must leave byte-identical ticket logs and violate
// no admission oracle at any width.
func TestChaosShardedDifferential(t *testing.T) {
	opts := chaosGenOptions(t)
	n := shardChaosScripts(t)
	for seed := 0; seed < n; seed++ {
		script, err := Generate(rand.New(rand.NewSource(int64(seed))), opts)
		if err != nil {
			t.Fatalf("seed %d: generator: %v", seed, err)
		}
		if err := CheckSharded(script, filepath.Join(t.TempDir(), fmt.Sprintf("seed%d", seed)), shardChaosCounts); err != nil {
			min := Minimize(script, func(cand Script) bool {
				return CheckSharded(cand, filepath.Join(t.TempDir(), "min"), shardChaosCounts) != nil
			})
			t.Fatalf("seed %d violated the sharded chaos oracles: %v\nminimized:\n%s", seed, err, min.Encode())
		}
	}
}

// TestChaosShardedCorpus replays every checked-in chaos corpus script
// through the sharded flavor, so each op kind's scale-out reduction
// (checkpoint settles, crash restarts over a pristine group) stays pinned.
func TestChaosShardedCorpus(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.chaos"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("corpus is empty — the seed scripts should be checked in")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			script, err := Decode(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckSharded(script, t.TempDir(), shardChaosCounts); err != nil {
				t.Fatalf("sharded corpus regression: %v", err)
			}
		})
	}
}

package chaosfuzz

// The service-level chaos fuzzer: seeded script generation over the full
// daemon stack (admission service + durable store + fault injector +
// crash/restart), the cross-run differential oracles, counterexample
// minimization, and the checked-in corpus replayed as a regression test.
//
// Corpus workflow (mirrors internal/scenario): when
// TestChaosDifferentialScripts (or the native FuzzGeneratedChaosScript
// target) finds a violation, it minimizes the script and writes the
// encoding to testdata/failures/; commit the file under testdata/corpus/
// (any name ending in .chaos) once the underlying bug is understood, so the
// regression replays forever.

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"strings"
	"testing"

	"graphm/internal/graph"
	"graphm/internal/scenario"
)

// chaosScripts returns how many generated scripts the differential test
// replays: GRAPHM_CHAOS_SCRIPTS when set (CI smoke pins a small number;
// the nightly soak cranks it to 200+), else 25, scaled down under -short.
func chaosScripts(t *testing.T) int {
	if v := os.Getenv("GRAPHM_CHAOS_SCRIPTS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad GRAPHM_CHAOS_SCRIPTS=%q", v)
		}
		return n
	}
	if testing.Short() {
		return 6
	}
	return 25
}

// chaosGenOptions pins the env recipe shared by every generated script and
// derives the valid evolve-source domain from the actual generated graph.
func chaosGenOptions(t testing.TB) GenOptions {
	t.Helper()
	o := GenOptions{EnvName: "chaos", NumV: 300, NumE: 1800, Parts: 3, GraphSeed: 11}
	_, g, err := scenario.GenEnv(o.EnvName, o.NumV, o.NumE, o.Parts, o.GraphSeed, envLLCBytes, envMemBudget)
	if err != nil {
		t.Fatal(err)
	}
	o.Sources = SortedSources(map[int][]graph.Edge{0: g.Edges})
	if len(o.Sources) == 0 {
		t.Fatal("generated graph has no edge sources")
	}
	return o
}

// evidence is the versioned JSON artifact a soak emits (GRAPHM_CHAOS_EVIDENCE
// names the output path). It is a pure function of the seed range, so two
// soaks over the same build and seeds produce identical bytes.
type evidence struct {
	FormatVersion int      `json:"format_version"`
	Scripts       int      `json:"scripts"`
	SeedStart     int      `json:"seed_start"`
	SeedEnd       int      `json:"seed_end"` // exclusive
	Totals        RunStats `json:"totals"`
}

// TestChaosDifferentialScripts is the fuzzer's main loop: generate N valid
// chaos scripts from fixed seeds, run each twice against a real stack, and
// apply the oracles — no acked record lost, byte-identical ticket logs,
// bit-identical recovered state. Seeds are fixed (seed i is script i) so
// failures reproduce exactly; violations are minimized into corpus-ready
// counterexamples.
func TestChaosDifferentialScripts(t *testing.T) {
	opts := chaosGenOptions(t)
	n := chaosScripts(t)
	var totals RunStats
	for seed := 0; seed < n; seed++ {
		script, err := Generate(rand.New(rand.NewSource(int64(seed))), opts)
		if err != nil {
			t.Fatalf("seed %d: generator: %v", seed, err)
		}
		stats, err := CheckStats(script, filepath.Join(t.TempDir(), fmt.Sprintf("seed%d", seed)))
		totals.add(stats)
		if err != nil {
			reportChaosCounterexample(t, seed, script, err)
		}
	}
	t.Logf("chaos soak over %d scripts: %+v", n, totals)
	if path := os.Getenv("GRAPHM_CHAOS_EVIDENCE"); path != "" {
		ev := evidence{FormatVersion: 1, Scripts: n, SeedStart: 0, SeedEnd: n, Totals: totals}
		data, err := json.MarshalIndent(ev, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatalf("writing evidence artifact: %v", err)
		}
		t.Logf("evidence artifact written to %s", path)
	}
}

// reportChaosCounterexample minimizes a failing script and fails the test
// with the encoded result plus where it was written.
func reportChaosCounterexample(t *testing.T, seed int, script Script, err error) {
	t.Helper()
	min := Minimize(script, func(cand Script) bool {
		return Check(cand, filepath.Join(t.TempDir(), "min")) != nil
	})
	finalErr := Check(min, filepath.Join(t.TempDir(), "final"))
	enc := min.Encode()
	dir := filepath.Join("testdata", "failures")
	path := filepath.Join(dir, fmt.Sprintf("seed%d.chaos", seed))
	if mkErr := os.MkdirAll(dir, 0o755); mkErr == nil {
		_ = os.WriteFile(path, []byte(enc), 0o644)
	}
	t.Fatalf("seed %d violated the chaos oracles: %v\nminimized (%v):\n%s\nwritten to %s — move under testdata/corpus/ to pin the regression",
		seed, err, finalErr, enc, path)
}

// TestChaosCorpusRegression replays every checked-in corpus script. The
// corpus is where minimized counterexamples live once fixed, plus seed
// scripts that pin each op kind against the full stack.
func TestChaosCorpusRegression(t *testing.T) {
	paths, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.chaos"))
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) == 0 {
		t.Fatal("corpus is empty — the seed scripts should be checked in")
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			f, err := os.Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer f.Close()
			script, err := Decode(f)
			if err != nil {
				t.Fatal(err)
			}
			if err := Check(script, t.TempDir()); err != nil {
				t.Fatalf("corpus regression: %v", err)
			}
		})
	}
}

// TestChaosGenerateDeterministicAndValid: the generator is a pure function
// of its RNG, and across many seeds every script it emits passes Validate —
// including the fault/crash invariant the oracles rely on.
func TestChaosGenerateDeterministicAndValid(t *testing.T) {
	opts := chaosGenOptions(t)
	a, err := Generate(rand.New(rand.NewSource(12)), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rand.New(rand.NewSource(12)), opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Encode() != b.Encode() {
		t.Fatal("same-seed generation differs")
	}
	for seed := int64(0); seed < 500; seed++ {
		s, err := Generate(rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid script: %v\n%s", seed, err, s.Encode())
		}
		armed := false
		for i, op := range s.Ops {
			switch op.Kind {
			case OpFault:
				armed = true
			case OpClearFault:
				armed = false
			case OpCrash:
				if armed {
					t.Fatalf("seed %d: op %d crashes under an armed fault", seed, i)
				}
			}
		}
		if armed {
			t.Fatalf("seed %d: script ends armed", seed)
		}
	}
}

// TestChaosCodecRoundTrip: Encode/Decode is lossless for generated scripts
// of every shape.
func TestChaosCodecRoundTrip(t *testing.T) {
	opts := chaosGenOptions(t)
	for seed := int64(0); seed < 50; seed++ {
		s, err := Generate(rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatal(err)
		}
		dec, err := Decode(strings.NewReader(s.Encode()))
		if err != nil {
			t.Fatalf("seed %d: decode: %v\n%s", seed, err, s.Encode())
		}
		if len(dec.Ops) == 0 {
			dec.Ops = nil
		}
		if !reflect.DeepEqual(s, dec) {
			t.Fatalf("seed %d: round trip changed the script:\n%+v\nvs\n%+v", seed, s, dec)
		}
	}
}

// TestChaosDecodeRejectsGarbage covers the codec's failure modes so a
// corrupted corpus file fails loudly.
func TestChaosDecodeRejectsGarbage(t *testing.T) {
	cases := []struct{ name, in, want string }{
		{"bad header", "graphm-chaos v9\n", "unsupported header"},
		{"unknown directive", "graphm-chaos v1\nbogus 1\n", "unknown directive"},
		{"unknown op", "graphm-chaos v1\nenv name=x v=10 e=10 p=2 gseed=1\ncfg inflight=2 queuecap=2\nop explode\n", "unknown op kind"},
		{"bad edge", "graphm-chaos v1\nenv name=x v=10 e=10 p=2 gseed=1\ncfg inflight=2 queuecap=2\nop add edges=xx\n", "not src:dst:weight"},
		{"incomplete", "graphm-chaos v1\nenv name=x v=10 e=10 p=2 gseed=1\n", "incomplete"},
		{"armed at end", "graphm-chaos v1\nenv name=x v=10 e=10 p=2 gseed=1\ncfg inflight=2 queuecap=2\nop fault sched=sync:fail:count=1\n", "ends with a fault schedule armed"},
		{"crash while armed", "graphm-chaos v1\nenv name=x v=10 e=10 p=2 gseed=1\ncfg inflight=2 queuecap=2\nop fault sched=sync:fail:count=1\nop crash\nop clearfault\n", "fault schedule still armed"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Decode(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

// TestChaosMinimizeShrinksToCulprit drives the minimizer with a synthetic
// predicate — only the crash op matters — and checks it sheds everything
// else while keeping the script valid.
func TestChaosMinimizeShrinksToCulprit(t *testing.T) {
	opts := chaosGenOptions(t)
	var script Script
	for seed := int64(0); ; seed++ {
		if seed > 500 {
			t.Fatal("no generated script had a crash plus material to shed")
		}
		s, err := Generate(rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatal(err)
		}
		crashes := 0
		for _, op := range s.Ops {
			if op.Kind == OpCrash {
				crashes++
			}
		}
		if crashes >= 1 && len(s.Ops) >= 8 {
			script = s
			break
		}
	}
	hasCrash := func(s Script) bool {
		for _, op := range s.Ops {
			if op.Kind == OpCrash {
				return true
			}
		}
		return false
	}
	min := Minimize(script, hasCrash)
	if len(min.Ops) != 1 || min.Ops[0].Kind != OpCrash {
		t.Fatalf("minimizer left %d ops (want exactly the crash): %+v", len(min.Ops), min.Ops)
	}
	if err := min.Validate(); err != nil {
		t.Fatalf("minimized script invalid: %v", err)
	}
	// The minimized script must still run clean end to end.
	if err := Check(min, t.TempDir()); err != nil {
		t.Fatalf("minimized script fails the oracles: %v", err)
	}
}

// TestRunSingleScriptOracles sanity-checks one handwritten script's result
// shape: acked submissions appear in the stats and the log, digests are
// populated and agree, and a crash plus re-submission survives the oracles.
func TestRunSingleScriptOracles(t *testing.T) {
	opts := chaosGenOptions(t)
	src := opts.Sources[0]
	script := Script{
		EnvName: opts.EnvName, NumV: opts.NumV, NumE: opts.NumE,
		Parts: opts.Parts, GraphSeed: opts.GraphSeed,
		MaxInFlight: 2, QueueCap: 2,
		Ops: []Op{
			{Kind: OpSubmit, Tenant: "t0", Algo: "pagerank", Seed: 7},
			{Kind: OpSettle},
			{Kind: OpRelease, N: 1},
			{Kind: OpAdd, Edges: []graph.Edge{{Src: src, Dst: 1, Weight: 2}}},
			{Kind: OpCheckpoint},
			{Kind: OpRemove, Src: src},
			{Kind: OpCrash},
			{Kind: OpSubmit, Tenant: "t1", Algo: "bfs", Seed: 9},
			{Kind: OpSettle},
		},
	}
	res, err := Run(script, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) > 0 {
		t.Fatalf("violations: %v", res.Violations)
	}
	if res.Stats.SubmitsAcked < 2 || res.Stats.Crashes != 1 || res.Stats.Checkpoints != 1 {
		t.Fatalf("stats: %+v", res.Stats)
	}
	if res.RecoveredDigest == "" || res.RecoveredDigest != res.ExpectedDigest {
		t.Fatalf("digests: recovered %q expected %q", res.RecoveredDigest, res.ExpectedDigest)
	}
	if !strings.Contains(string(res.TicketLog), "submit") {
		t.Fatalf("ticket log empty or malformed:\n%s", res.TicketLog)
	}
}

// FuzzGeneratedChaosScript is the native fuzz entry point: go's fuzzer
// mutates the generator seed, and every derived script must pass the full
// chaos differential. Run locally or nightly with
//
//	go test ./internal/chaosfuzz -fuzz FuzzGeneratedChaosScript -fuzztime 60s
func FuzzGeneratedChaosScript(f *testing.F) {
	f.Add(int64(1))
	f.Add(int64(6))
	opts := chaosGenOptions(f)
	f.Fuzz(func(t *testing.T, seed int64) {
		script, err := Generate(rand.New(rand.NewSource(seed)), opts)
		if err != nil {
			t.Fatalf("generator rejected its own options: %v", err)
		}
		if err := Check(script, t.TempDir()); err != nil {
			min := Minimize(script, func(cand Script) bool {
				return Check(cand, filepath.Join(t.TempDir(), "min")) != nil
			})
			t.Fatalf("seed %d violated the chaos oracles: %v\nminimized:\n%s", seed, err, min.Encode())
		}
	})
}

package chaosfuzz

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"graphm/internal/core"
	"graphm/internal/faultfs"
	"graphm/internal/graph"
	"graphm/internal/scenario"
	"graphm/internal/service"
	"graphm/internal/storage"
)

const (
	envLLCBytes  = 32 << 10
	envMemBudget = 64 << 20
	settleWait   = 30 * time.Second
)

// RunStats aggregates what one script execution exercised — the evidence
// artifact sums them across a soak.
type RunStats struct {
	SubmitsAcked   int    `json:"submits_acked"`
	SubmitsRefused int    `json:"submits_refused"`
	EvolvesAcked   int    `json:"evolves_acked"`
	EvolvesRefused int    `json:"evolves_refused"`
	Cancels        int    `json:"cancels"`
	Crashes        int    `json:"crashes"`
	Checkpoints    int    `json:"checkpoints"`
	FaultsInjected uint64 `json:"faults_injected"`
}

func (s *RunStats) add(o RunStats) {
	s.SubmitsAcked += o.SubmitsAcked
	s.SubmitsRefused += o.SubmitsRefused
	s.EvolvesAcked += o.EvolvesAcked
	s.EvolvesRefused += o.EvolvesRefused
	s.Cancels += o.Cancels
	s.Crashes += o.Crashes
	s.Checkpoints += o.Checkpoints
	s.FaultsInjected += o.FaultsInjected
}

// RunResult is one script execution's oracle-relevant output.
type RunResult struct {
	// TicketLog is the final on-disk ticket log — byte-compared across runs.
	TicketLog []byte
	// RecoveredDigest hashes the graph state a fresh process recovers from
	// the data directory; ExpectedDigest hashes a pure replay of the durable
	// record model. The two must match within a run and across runs.
	RecoveredDigest string
	ExpectedDigest  string
	// Violations are oracle failures observed during or after the run.
	Violations []string
	Stats      RunStats
}

// ackedSubmit is one acknowledged submission (LogSubmit durable before ack).
type ackedSubmit struct {
	ID     int
	Tenant string
	Algo   string
}

// evModel tracks what must be durable: durBase is the record prefix folded
// by the last successful checkpoint; durTail is the acked records
// WAL-appended since. Since core rolls failed evolve ops back (see
// internal/core/rollback.go), a record whose append or commit fails never
// stays in memory — the model un-applies it (rolledBack), so checkpoints can
// no longer promote phantom records and mem always equals the durable
// stream plus any still-in-flight op. A crash discards unacknowledged
// memory, so the model's replay basis becomes durBase+durTail.
type evModel struct {
	mem     []storage.EvolveRecord // records applied to current memory, in order
	durBase []storage.EvolveRecord
	durTail []storage.EvolveRecord
}

func (m *evModel) applied(rec storage.EvolveRecord) { m.mem = append(m.mem, rec) }
func (m *evModel) acked(rec storage.EvolveRecord)   { m.durTail = append(m.durTail, rec) }

// rolledBack drops the most recent record: evolve calls run sequentially on
// the script thread and core awaits each commit before returning, so a
// failed op is always the tail of mem.
func (m *evModel) rolledBack() { m.mem = m.mem[:len(m.mem)-1] }

func (m *evModel) checkpointed() {
	m.durBase = append([]storage.EvolveRecord(nil), m.mem...)
	m.durTail = nil
}

func (m *evModel) crashed() {
	m.mem = append(append([]storage.EvolveRecord(nil), m.durBase...), m.durTail...)
}

func (m *evModel) durable() []storage.EvolveRecord {
	return append(append([]storage.EvolveRecord(nil), m.durBase...), m.durTail...)
}

// finishGate parks every driver goroutine until the script releases it, so
// slot frees — and therefore admission, queue-full and cancel outcomes —
// happen only at script-chosen points.
type finishGate struct {
	mu     sync.Mutex
	bypass bool
	parked map[int]chan struct{}
}

func newFinishGate() *finishGate {
	return &finishGate{parked: make(map[int]chan struct{})}
}

func (g *finishGate) gate(t *service.Ticket) {
	g.mu.Lock()
	if g.bypass {
		g.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	g.parked[t.ID] = ch
	g.mu.Unlock()
	<-ch
}

func (g *finishGate) parkedIDs() []int {
	g.mu.Lock()
	defer g.mu.Unlock()
	ids := make([]int, 0, len(g.parked))
	for id := range g.parked {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

func (g *finishGate) release(id int) bool {
	g.mu.Lock()
	ch, ok := g.parked[id]
	if ok {
		delete(g.parked, id)
	}
	g.mu.Unlock()
	if ok {
		close(ch)
	}
	return ok
}

// releaseAll opens the gate permanently (drain/crash teardown): drivers
// already parked are released and future arrivals pass straight through.
func (g *finishGate) releaseAll() {
	g.mu.Lock()
	g.bypass = true
	chans := make([]chan struct{}, 0, len(g.parked))
	for id, ch := range g.parked {
		chans = append(chans, ch)
		delete(g.parked, id)
	}
	g.mu.Unlock()
	for _, ch := range chans {
		close(ch)
	}
}

// rearm resets the gate for a restarted stack.
func (g *finishGate) rearm() {
	g.mu.Lock()
	g.bypass = false
	g.parked = make(map[int]chan struct{})
	g.mu.Unlock()
}

// gatedLog is the service's TicketLogger: submit records pass straight to
// the store (they must be durable before the ack), terminal records are
// buffered and flushed in ticket-ID order at script-controlled quiescent
// points, making the on-disk byte stream a pure function of the script.
// Losing buffered terminals at a crash is within the terminal records'
// best-effort contract — recovery just re-runs those jobs.
type gatedLog struct {
	mu  sync.Mutex
	st  *storage.Store
	buf map[int]string // id -> terminal status
}

func (g *gatedLog) LogSubmit(id int, tenant, algo string, seed int64) error {
	g.mu.Lock()
	st := g.st
	g.mu.Unlock()
	return st.LogSubmit(id, tenant, algo, seed)
}

func (g *gatedLog) LogTerminal(id int, status string) {
	g.mu.Lock()
	g.buf[id] = status
	g.mu.Unlock()
}

// flush writes buffered terminal lines in ID order and returns the IDs.
func (g *gatedLog) flush() []int {
	g.mu.Lock()
	st := g.st
	ids := make([]int, 0, len(g.buf))
	for id := range g.buf {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	statuses := make([]string, len(ids))
	for i, id := range ids {
		statuses[i] = g.buf[id]
	}
	g.buf = make(map[int]string)
	g.mu.Unlock()
	for i, id := range ids {
		st.LogTerminal(id, statuses[i])
	}
	return ids
}

func (g *gatedLog) dropBuffer() {
	g.mu.Lock()
	g.buf = make(map[int]string)
	g.mu.Unlock()
}

func (g *gatedLog) swap(st *storage.Store) {
	g.mu.Lock()
	g.st = st
	g.mu.Unlock()
}

// skewClock is a manually jumped clock: timestamps are a pure function of
// the script, and negative jumps exercise clock-skew robustness.
type skewClock struct {
	mu  sync.Mutex
	now time.Time
}

func (c *skewClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *skewClock) Jump(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

// recordingSink wraps the store's EvolveSink to keep the durable-record
// model in step: a record counts as applied only once its append succeeds
// (an append failure is undone inline by core before the evolve call
// returns), and a failed commit un-applies it again — mirroring core's
// rollback, so model memory never contains a record the system refused.
// All calls happen on the script thread (core awaits each commit before the
// evolve call returns), so the model needs no locking of its own.
type recordingSink struct {
	runner *runner
}

func (rs *recordingSink) AppendEvolve(rec storage.EvolveRecord) (func() error, error) {
	r := rs.runner
	commit, err := r.st.AppendEvolve(rec)
	if err != nil {
		return nil, err
	}
	r.model.applied(rec)
	return func() error {
		if err := commit(); err != nil {
			r.model.rolledBack()
			return err
		}
		r.model.acked(rec)
		return nil
	}, nil
}

// runner executes one script against a live service+storage stack.
type runner struct {
	script Script
	dir    string

	inj   *faultfs.Injector
	st    *storage.Store
	sys   *core.System
	svc   *service.Service
	gate  *finishGate
	tlog  *gatedLog
	clock *skewClock
	model evModel

	acked      []ackedSubmit
	live       map[int]*service.Ticket
	violations []string
	stats      RunStats
}

func (r *runner) violate(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// Run executes the script in dir (which must be empty) and returns the
// oracle-relevant result. The returned error is a harness failure (cannot
// build the environment); oracle failures land in RunResult.Violations.
func Run(script Script, dir string) (RunResult, error) {
	if err := script.Validate(); err != nil {
		return RunResult{}, err
	}
	r := &runner{
		script: script,
		dir:    dir,
		inj:    faultfs.New(faultfs.OS{}, nil, nil),
		gate:   newFinishGate(),
		clock:  &skewClock{now: time.Unix(1_700_000_000, 0)},
		live:   make(map[int]*service.Ticket),
	}
	r.tlog = &gatedLog{buf: make(map[int]string)}
	if err := r.boot(); err != nil {
		return RunResult{}, err
	}
	for i, op := range script.Ops {
		if err := r.exec(i, op); err != nil {
			return RunResult{}, err
		}
	}
	r.finalize()
	res := RunResult{
		Violations: r.violations,
		Stats:      r.stats,
	}
	res.Stats.FaultsInjected = r.inj.Stats().TotalInjected()
	logBytes, err := os.ReadFile(filepath.Join(dir, "tickets.log"))
	if err != nil && !os.IsNotExist(err) {
		return RunResult{}, err
	}
	res.TicketLog = logBytes
	r.verify(&res)
	return res, nil
}

// newSystem builds a fresh system over the script's (deterministic)
// environment recipe.
func (r *runner) newSystem() (*core.System, error) {
	env, _, err := scenario.GenEnv(r.script.EnvName, r.script.NumV, r.script.NumE,
		r.script.Parts, r.script.GraphSeed, envLLCBytes, envMemBudget)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(envLLCBytes)
	cfg.Cores = 2
	return core.NewSystem(env.Layout, env.Mem, env.Cache, cfg)
}

// boot opens (or re-opens) the stack from the data directory: recovery
// replay, sink attachment, service restore with pending re-admission.
func (r *runner) boot() error {
	sys, err := r.newSystem()
	if err != nil {
		return err
	}
	st, rec, err := storage.Open(r.dir, storage.StoreOptions{
		CheckpointEveryRecords: -1,
		FS:                     r.inj,
		Retry:                  storage.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		return err
	}
	if rec.HasCheckpoint {
		if err := sys.RestorePartitions(rec.Partitions); err != nil {
			return err
		}
		if err := sys.RestoreOverrides(rec.Overrides); err != nil {
			return err
		}
	}
	for _, ev := range rec.Evolves {
		if err := sys.ApplyEvolve(ev); err != nil {
			return err
		}
	}
	r.sys, r.st = sys, st
	r.tlog.swap(st)
	r.gate.rearm()
	sys.SetEvolveSink(&recordingSink{runner: r})
	r.svc = service.New(sys, service.Config{
		MaxInFlight:        r.script.MaxInFlight,
		MaxQueuedPerTenant: r.script.QueueCap,
		Seed:               1,
		Clock:              r.clock,
		FinishGate:         r.gate.gate,
		TicketLog:          r.tlog,
	})
	readmitted, err := r.svc.Restore(rec)
	if err != nil {
		return err
	}
	r.live = make(map[int]*service.Ticket, len(readmitted))
	for _, t := range readmitted {
		r.live[t.ID] = t
	}
	return nil
}

func (r *runner) exec(i int, op Op) error {
	switch op.Kind {
	case OpSubmit:
		r.submit(service.Request{Tenant: op.Tenant, Algo: op.Algo, Seed: op.Seed})
	case OpFlood:
		for j := 0; j < op.N; j++ {
			r.submit(service.Request{Tenant: op.Tenant, Algo: "pagerank"})
		}
	case OpCancel:
		r.settle(i)
		r.stats.Cancels++
		if len(r.acked) > 0 {
			target := r.acked[op.Target%len(r.acked)].ID
			// Unknown (pre-crash terminal) and already-terminal targets are
			// deterministic no-ops; both error paths are tolerated.
			_ = r.svc.Cancel(target) //nolint:discarded // annotated: no-op cancels are part of the chaos surface
		}
	case OpAdd:
		if _, err := r.sys.AddEdges(op.Edges); err != nil {
			r.stats.EvolvesRefused++
		} else {
			r.stats.EvolvesAcked++
		}
	case OpRemove:
		src := op.Src
		if _, _, err := r.sys.RemoveEdges(func(e graph.Edge) bool { return e.Src == src }); err != nil {
			r.stats.EvolvesRefused++
		} else {
			r.stats.EvolvesAcked++
		}
	case OpSettle:
		r.settle(i)
	case OpRelease:
		r.settle(i)
		ids := r.gate.parkedIDs()
		if len(ids) > op.N {
			ids = ids[:op.N]
		}
		for _, id := range ids {
			r.gate.release(id)
			if t, ok := r.live[id]; ok {
				t.Wait()
			}
		}
	case OpCheckpoint:
		r.settle(i)
		if err := r.sys.Checkpoint(r.st); err != nil {
			// A checkpoint refused by an armed fault (or a latched WAL) is
			// tolerated; the old checkpoint still stands.
			break
		}
		r.stats.Checkpoints++
		r.model.checkpointed()
	case OpFault:
		sched, err := faultfs.ParseSchedule(op.Sched)
		if err != nil {
			return fmt.Errorf("op %d: %v", i, err)
		}
		r.inj.SetSchedule(sched)
	case OpClearFault:
		r.inj.Disarm()
		if err := r.st.Probe(); err != nil {
			r.violate("op %d: probe failed after disarm: %v", i, err)
		}
	case OpCrash:
		return r.crash(i)
	case OpSkew:
		r.clock.Jump(time.Duration(op.SkewMS) * time.Millisecond)
	default:
		return fmt.Errorf("op %d: unknown kind %v", i, op.Kind)
	}
	return nil
}

func (r *runner) submit(req service.Request) {
	t, err := r.svc.Submit(req)
	if err != nil {
		r.stats.SubmitsRefused++
		return
	}
	r.stats.SubmitsAcked++
	r.acked = append(r.acked, ackedSubmit{ID: t.ID, Tenant: t.Tenant, Algo: t.Algo})
	r.live[t.ID] = t
}

// settle waits until every in-flight driver is parked at the gate, then
// flushes buffered terminal lines. From here until the next release, the
// service state is frozen and deterministic.
func (r *runner) settle(i int) {
	deadline := time.Now().Add(settleWait)
	for {
		snap := r.svc.Snapshot()
		r.gate.mu.Lock()
		parked := len(r.gate.parked)
		r.gate.mu.Unlock()
		if parked == snap.InFlight {
			break
		}
		if time.Now().After(deadline) {
			r.violate("op %d: settle timed out (%d parked vs %d in flight)", i, parked, snap.InFlight)
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	r.tlog.flush()
}

// crash freezes the durable state mid-flight and restarts the whole stack
// from the directory. Buffered terminal lines die with the process (their
// jobs recover as pending and re-run); the in-memory graph reverts to
// exactly what was durable.
func (r *runner) crash(i int) error {
	r.stats.Crashes++
	r.gate.releaseAll()
	r.st.Crash()
	r.svc.Shutdown()
	if err := r.st.Close(); err != nil {
		r.violate("op %d: close of crashed store: %v", i, err)
	}
	r.tlog.dropBuffer()
	r.model.crashed()
	return r.boot()
}

// finalize drains the service, flushes terminals, and closes the store.
func (r *runner) finalize() {
	r.gate.releaseAll()
	if err := r.svc.Drain(); err != nil {
		r.violate("drain: %v", err)
	}
	r.tlog.flush()
	if err := r.st.Close(); err != nil {
		r.violate("close: %v", err)
	}
}

// verify replays the data directory like a fresh process and runs the
// durability oracles against the acked sets.
func (r *runner) verify(res *RunResult) {
	st, rec, err := storage.Open(r.dir, storage.StoreOptions{CheckpointEveryRecords: -1})
	if err != nil {
		r.violate("verify reopen: %v", err)
		res.Violations = r.violations
		return
	}
	defer st.Close() //nolint:discarded // annotated: read-only verification handle

	// Oracle: every acknowledged submission survives in the ticket log.
	submits, terminals := parseTicketLog(res.TicketLog)
	for _, a := range r.acked {
		line, ok := submits[a.ID]
		if !ok {
			r.violate("acked submit %d (tenant %s algo %s) missing from ticket log", a.ID, a.Tenant, a.Algo)
			continue
		}
		if line.Tenant != a.Tenant || line.Algo != a.Algo {
			r.violate("acked submit %d recovered as tenant=%s algo=%s, want %s/%s",
				a.ID, line.Tenant, line.Algo, a.Tenant, a.Algo)
		}
	}
	// Oracle: recovery's pending set is exactly acked-minus-terminal.
	wantPending := make(map[int]bool)
	for _, a := range r.acked {
		if !terminals[a.ID] {
			wantPending[a.ID] = true
		}
	}
	for _, p := range rec.Pending {
		if !wantPending[p.ID] {
			r.violate("recovery re-admits ticket %d which is not acked-pending", p.ID)
		}
		delete(wantPending, p.ID)
	}
	for id := range wantPending {
		r.violate("acked non-terminal ticket %d not recovered as pending", id)
	}

	// Oracle: the recovered graph (checkpoint restore + WAL replay) is
	// bit-identical to a pure replay of the durable record model.
	recovered, err := r.recoveredState(rec)
	if err != nil {
		r.violate("recovered-state replay: %v", err)
	}
	expected, err := r.replayState(r.model.durable())
	if err != nil {
		r.violate("expected-state replay: %v", err)
	}
	res.RecoveredDigest = recovered
	res.ExpectedDigest = expected
	if recovered != "" && expected != "" && recovered != expected {
		r.violate("recovered state %s != expected durable replay %s", recovered, expected)
	}
	res.Violations = r.violations
}

func (r *runner) recoveredState(rec *storage.Recovery) (string, error) {
	sys, err := r.newSystem()
	if err != nil {
		return "", err
	}
	if rec.HasCheckpoint {
		if err := sys.RestorePartitions(rec.Partitions); err != nil {
			return "", err
		}
		if err := sys.RestoreOverrides(rec.Overrides); err != nil {
			return "", err
		}
	}
	for _, ev := range rec.Evolves {
		if err := sys.ApplyEvolve(ev); err != nil {
			return "", err
		}
	}
	return digestSystem(sys)
}

func (r *runner) replayState(records []storage.EvolveRecord) (string, error) {
	sys, err := r.newSystem()
	if err != nil {
		return "", err
	}
	for _, ev := range records {
		if err := sys.ApplyEvolve(ev); err != nil {
			return "", err
		}
	}
	return digestSystem(sys)
}

// captureCk is a Checkpointer that captures the state instead of writing it.
type captureCk struct {
	state storage.CheckpointState
}

func (c *captureCk) BeginCheckpoint() (func(storage.CheckpointState) error, error) {
	return func(st storage.CheckpointState) error {
		c.state = st
		return nil
	}, nil
}

// digestSystem hashes a system's global graph as a per-partition edge
// multiset (chunk re-splitting between the restore and replay paths may
// permute within-partition order, so the digest sorts).
func digestSystem(sys *core.System) (string, error) {
	var cap captureCk
	if err := sys.Checkpoint(&cap); err != nil {
		return "", err
	}
	if len(cap.state.Overrides) != 0 {
		return "", fmt.Errorf("unexpected job-private overrides in global state")
	}
	h := sha256.New()
	pids := make([]int, 0, len(cap.state.Partitions))
	for pid := range cap.state.Partitions {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	var buf [8]byte
	for _, pid := range pids {
		edges := append([]graph.Edge(nil), cap.state.Partitions[pid]...)
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].Src != edges[j].Src {
				return edges[i].Src < edges[j].Src
			}
			if edges[i].Dst != edges[j].Dst {
				return edges[i].Dst < edges[j].Dst
			}
			return edges[i].Weight < edges[j].Weight
		})
		binary.LittleEndian.PutUint64(buf[:], uint64(pid)<<32|uint64(len(edges)))
		h.Write(buf[:])
		for _, e := range edges {
			binary.LittleEndian.PutUint32(buf[0:], e.Src)
			binary.LittleEndian.PutUint32(buf[4:], e.Dst)
			h.Write(buf[:])
			binary.LittleEndian.PutUint32(buf[0:], uint32(int32(e.Weight*1024)))
			h.Write(buf[:4])
		}
	}
	return hex.EncodeToString(h.Sum(nil)[:12]), nil
}

// ticketLine is one parsed submit record.
type ticketLine struct {
	Tenant string
	Algo   string
}

func parseTicketLog(data []byte) (map[int]ticketLine, map[int]bool) {
	submits := make(map[int]ticketLine)
	terminals := make(map[int]bool)
	for _, line := range strings.Split(string(data), "\n") {
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		switch fields[0] {
		case "submit":
			if len(fields) < 5 {
				continue
			}
			id, err := strconv.Atoi(fields[1])
			if err != nil {
				continue
			}
			tenant, err := strconv.Unquote(fields[2])
			if err != nil {
				continue
			}
			submits[id] = ticketLine{Tenant: tenant, Algo: fields[3]}
		case "end":
			if len(fields) < 3 {
				continue
			}
			if id, err := strconv.Atoi(fields[1]); err == nil {
				terminals[id] = true
			}
		}
	}
	return submits, terminals
}

// Check runs the script twice in fresh directories under base and applies
// the cross-run oracles: zero violations, byte-identical ticket logs, and
// identical recovered-state digests. This is the chaos differential.
func Check(script Script, base string) error {
	dirA := filepath.Join(base, "runA")
	dirB := filepath.Join(base, "runB")
	for _, d := range []string{dirA, dirB} {
		if err := os.RemoveAll(d); err != nil {
			return err
		}
	}
	a, err := Run(script, dirA)
	if err != nil {
		return fmt.Errorf("run A: %w", err)
	}
	b, err := Run(script, dirB)
	if err != nil {
		return fmt.Errorf("run B: %w", err)
	}
	if len(a.Violations) > 0 {
		return fmt.Errorf("run A violations: %s", strings.Join(a.Violations, "; "))
	}
	if len(b.Violations) > 0 {
		return fmt.Errorf("run B violations: %s", strings.Join(b.Violations, "; "))
	}
	if !bytes.Equal(a.TicketLog, b.TicketLog) {
		return fmt.Errorf("ticket logs diverge across runs:\n--- run A ---\n%s--- run B ---\n%s", a.TicketLog, b.TicketLog)
	}
	if a.RecoveredDigest != b.RecoveredDigest {
		return fmt.Errorf("recovered state diverges across runs: %s vs %s", a.RecoveredDigest, b.RecoveredDigest)
	}
	return nil
}

// CheckStats is Check plus the first run's stats, for evidence aggregation.
func CheckStats(script Script, base string) (RunStats, error) {
	dirA := filepath.Join(base, "runA")
	if err := os.RemoveAll(dirA); err != nil {
		return RunStats{}, err
	}
	a, err := Run(script, dirA)
	if err != nil {
		return RunStats{}, fmt.Errorf("run A: %w", err)
	}
	dirB := filepath.Join(base, "runB")
	if err := os.RemoveAll(dirB); err != nil {
		return a.Stats, err
	}
	b, err := Run(script, dirB)
	if err != nil {
		return a.Stats, fmt.Errorf("run B: %w", err)
	}
	if len(a.Violations) > 0 {
		return a.Stats, fmt.Errorf("run A violations: %s", strings.Join(a.Violations, "; "))
	}
	if len(b.Violations) > 0 {
		return a.Stats, fmt.Errorf("run B violations: %s", strings.Join(b.Violations, "; "))
	}
	if !bytes.Equal(a.TicketLog, b.TicketLog) {
		return a.Stats, fmt.Errorf("ticket logs diverge across runs:\n--- run A ---\n%s--- run B ---\n%s", a.TicketLog, b.TicketLog)
	}
	if a.RecoveredDigest != b.RecoveredDigest {
		return a.Stats, fmt.Errorf("recovered state diverges across runs: %s vs %s", a.RecoveredDigest, b.RecoveredDigest)
	}
	return a.Stats, nil
}

package chaosfuzz

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"graphm/internal/core"
	"graphm/internal/faultfs"
	"graphm/internal/graph"
	"graphm/internal/scenario"
	"graphm/internal/service"
	"graphm/internal/shard"
	"graphm/internal/storage"
)

// The sharded chaos flavor replays the same chaos scripts against a
// shard.Group backend and byte-compares the durable ticket logs across
// shard counts: the scale-out admission path must be service-indistinguishable
// from a single shard under floods, cancels, gate releases, clock skew,
// evolve routing, ticket-log fault schedules and full stack restarts.
//
// Two op kinds degrade by design. A group is memory-only, so OpCheckpoint
// settles without folding a checkpoint (there is no graph WAL to fold), and
// OpCrash restarts the stack over a pristine graph — the ticket log is the
// durable artifact under test, and it alone survives the restart. Both
// reductions are identical at every shard count, which is exactly what the
// differential needs.

// shardRunner executes one script against a sharded service stack.
type shardRunner struct {
	script Script
	dir    string
	shards int

	inj   *faultfs.Injector
	st    *storage.Store
	grp   *shard.Group
	svc   *service.Service
	gate  *finishGate
	tlog  *gatedLog
	clock *skewClock

	acked      []ackedSubmit
	live       map[int]*service.Ticket
	violations []string
	stats      RunStats
}

func (r *shardRunner) violate(format string, args ...any) {
	r.violations = append(r.violations, fmt.Sprintf(format, args...))
}

// RunSharded executes the script in dir over a group of n shards and
// returns the oracle-relevant result. Graph-durability digests stay empty:
// the sharded stack's durable surface is the ticket log.
func RunSharded(script Script, dir string, n int) (RunResult, error) {
	if err := script.Validate(); err != nil {
		return RunResult{}, err
	}
	r := &shardRunner{
		script: script,
		dir:    dir,
		shards: n,
		inj:    faultfs.New(faultfs.OS{}, nil, nil),
		gate:   newFinishGate(),
		clock:  &skewClock{now: time.Unix(1_700_000_000, 0)},
		live:   make(map[int]*service.Ticket),
	}
	r.tlog = &gatedLog{buf: make(map[int]string)}
	if err := r.boot(); err != nil {
		return RunResult{}, err
	}
	for i, op := range script.Ops {
		if err := r.exec(i, op); err != nil {
			return RunResult{}, err
		}
	}
	r.finalize()
	res := RunResult{
		Violations: r.violations,
		Stats:      r.stats,
	}
	res.Stats.FaultsInjected = r.inj.Stats().TotalInjected()
	logBytes, err := os.ReadFile(filepath.Join(dir, "tickets.log"))
	if err != nil && !os.IsNotExist(err) {
		return RunResult{}, err
	}
	res.TicketLog = logBytes
	r.verify(&res)
	return res, nil
}

// newGroup builds a fresh sharded group over the script's environment
// recipe — same graph generation as the unsharded runner, partitioned.
func (r *shardRunner) newGroup() (*shard.Group, error) {
	env, _, err := scenario.GenEnv(r.script.EnvName, r.script.NumV, r.script.NumE,
		r.script.Parts, r.script.GraphSeed, envLLCBytes, envMemBudget)
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(envLLCBytes)
	cfg.Cores = 2
	return shard.New(env.Layout, r.shards, envMemBudget, cfg)
}

// boot opens (or re-opens after a crash) the sharded stack: a fresh group,
// the durable ticket store, and the service with pending re-admission.
func (r *shardRunner) boot() error {
	grp, err := r.newGroup()
	if err != nil {
		return err
	}
	st, rec, err := storage.Open(r.dir, storage.StoreOptions{
		CheckpointEveryRecords: -1,
		FS:                     r.inj,
		Retry:                  storage.RetryPolicy{Sleep: func(time.Duration) {}},
	})
	if err != nil {
		return err
	}
	r.grp, r.st = grp, st
	r.tlog.swap(st)
	r.gate.rearm()
	r.svc = service.NewWithBackend(grp, service.Config{
		MaxInFlight:        r.script.MaxInFlight,
		MaxQueuedPerTenant: r.script.QueueCap,
		Seed:               1,
		Clock:              r.clock,
		FinishGate:         r.gate.gate,
		TicketLog:          r.tlog,
	})
	readmitted, err := r.svc.Restore(rec)
	if err != nil {
		return err
	}
	r.live = make(map[int]*service.Ticket, len(readmitted))
	for _, t := range readmitted {
		r.live[t.ID] = t
	}
	return nil
}

func (r *shardRunner) exec(i int, op Op) error {
	switch op.Kind {
	case OpSubmit:
		r.submit(service.Request{Tenant: op.Tenant, Algo: op.Algo, Seed: op.Seed})
	case OpFlood:
		for j := 0; j < op.N; j++ {
			r.submit(service.Request{Tenant: op.Tenant, Algo: "pagerank"})
		}
	case OpCancel:
		r.settle(i)
		r.stats.Cancels++
		if len(r.acked) > 0 {
			target := r.acked[op.Target%len(r.acked)].ID
			_ = r.svc.Cancel(target) //nolint:discarded // annotated: no-op cancels are part of the chaos surface
		}
	case OpAdd:
		if _, err := r.grp.AddEdges(op.Edges); err != nil {
			r.stats.EvolvesRefused++
		} else {
			r.stats.EvolvesAcked++
		}
	case OpRemove:
		src := op.Src
		if _, _, err := r.grp.RemoveEdges(func(e graph.Edge) bool { return e.Src == src }); err != nil {
			r.stats.EvolvesRefused++
		} else {
			r.stats.EvolvesAcked++
		}
	case OpSettle:
		r.settle(i)
	case OpRelease:
		r.settle(i)
		ids := r.gate.parkedIDs()
		if len(ids) > op.N {
			ids = ids[:op.N]
		}
		for _, id := range ids {
			r.gate.release(id)
			if t, ok := r.live[id]; ok {
				t.Wait()
			}
		}
	case OpCheckpoint:
		// Memory-only backend: settle at the same script point, fold nothing.
		r.settle(i)
	case OpFault:
		sched, err := faultfs.ParseSchedule(op.Sched)
		if err != nil {
			return fmt.Errorf("op %d: %v", i, err)
		}
		r.inj.SetSchedule(sched)
	case OpClearFault:
		r.inj.Disarm()
		if err := r.st.Probe(); err != nil {
			r.violate("op %d: probe failed after disarm: %v", i, err)
		}
	case OpCrash:
		return r.crash(i)
	case OpSkew:
		r.clock.Jump(time.Duration(op.SkewMS) * time.Millisecond)
	default:
		return fmt.Errorf("op %d: unknown kind %v", i, op.Kind)
	}
	return nil
}

func (r *shardRunner) submit(req service.Request) {
	t, err := r.svc.Submit(req)
	if err != nil {
		r.stats.SubmitsRefused++
		return
	}
	r.stats.SubmitsAcked++
	r.acked = append(r.acked, ackedSubmit{ID: t.ID, Tenant: t.Tenant, Algo: t.Algo})
	r.live[t.ID] = t
}

// settle waits until every in-flight driver is parked at the gate, then
// flushes buffered terminal lines in ID order — same determinism contract
// as the unsharded runner's settle.
func (r *shardRunner) settle(i int) {
	deadline := time.Now().Add(settleWait)
	for {
		snap := r.svc.Snapshot()
		r.gate.mu.Lock()
		parked := len(r.gate.parked)
		r.gate.mu.Unlock()
		if parked == snap.InFlight {
			break
		}
		if time.Now().After(deadline) {
			r.violate("op %d: settle timed out (%d parked vs %d in flight)", i, parked, snap.InFlight)
			break
		}
		time.Sleep(200 * time.Microsecond)
	}
	r.tlog.flush()
}

// crash tears the sharded stack down and restarts it over a fresh (pristine)
// group: only the ticket log survives, and recovery re-admits its pending
// tickets. Buffered terminal lines die with the process, as in the durable
// runner.
func (r *shardRunner) crash(i int) error {
	r.stats.Crashes++
	r.gate.releaseAll()
	r.st.Crash()
	r.svc.Shutdown()
	if err := r.st.Close(); err != nil {
		r.violate("op %d: close of crashed store: %v", i, err)
	}
	r.tlog.dropBuffer()
	return r.boot()
}

// finalize drains the service, flushes terminals, and closes the store.
func (r *shardRunner) finalize() {
	r.gate.releaseAll()
	if err := r.svc.Drain(); err != nil {
		r.violate("drain: %v", err)
	}
	if err := r.grp.Wait(); err != nil {
		r.violate("group wait: %v", err)
	}
	r.tlog.flush()
	if err := r.st.Close(); err != nil {
		r.violate("close: %v", err)
	}
}

// verify applies the sharded flavor's oracles: every acked submission is in
// the log, and recovery's pending set is exactly acked-minus-terminal.
func (r *shardRunner) verify(res *RunResult) {
	_, rec, err := storage.Open(r.dir, storage.StoreOptions{CheckpointEveryRecords: -1})
	if err != nil {
		r.violate("verify reopen: %v", err)
		res.Violations = r.violations
		return
	}
	submits, terminals := parseTicketLog(res.TicketLog)
	for _, a := range r.acked {
		line, ok := submits[a.ID]
		if !ok {
			r.violate("acked submit %d (tenant %s algo %s) missing from ticket log", a.ID, a.Tenant, a.Algo)
			continue
		}
		if line.Tenant != a.Tenant || line.Algo != a.Algo {
			r.violate("acked submit %d recovered as tenant=%s algo=%s, want %s/%s",
				a.ID, line.Tenant, line.Algo, a.Tenant, a.Algo)
		}
	}
	wantPending := make(map[int]bool)
	for _, a := range r.acked {
		if !terminals[a.ID] {
			wantPending[a.ID] = true
		}
	}
	for _, p := range rec.Pending {
		if !wantPending[p.ID] {
			r.violate("recovery re-admits ticket %d which is not acked-pending", p.ID)
		}
		delete(wantPending, p.ID)
	}
	for id := range wantPending {
		r.violate("acked non-terminal ticket %d not recovered as pending", id)
	}
	res.Violations = r.violations
}

// CheckSharded runs the script once per shard count in fresh directories
// under base and applies the scale-out oracles: zero violations at every
// count and byte-identical ticket logs across all of them. Shard counts are
// capped at the script's partition count (at most one shard per partition).
func CheckSharded(script Script, base string, counts []int) error {
	var refLog []byte
	var refCount int
	first := true
	for _, n := range counts {
		if n > script.Parts {
			continue
		}
		dir := filepath.Join(base, fmt.Sprintf("shards%d", n))
		if err := os.RemoveAll(dir); err != nil {
			return err
		}
		res, err := RunSharded(script, dir, n)
		if err != nil {
			return fmt.Errorf("shards=%d: %w", n, err)
		}
		if len(res.Violations) > 0 {
			return fmt.Errorf("shards=%d violations: %s", n, joinViolations(res.Violations))
		}
		if first {
			refLog, refCount, first = res.TicketLog, n, false
			continue
		}
		if !bytes.Equal(res.TicketLog, refLog) {
			return fmt.Errorf("ticket logs diverge across shard counts:\n--- shards=%d ---\n%s--- shards=%d ---\n%s",
				refCount, refLog, n, res.TicketLog)
		}
	}
	if first {
		return fmt.Errorf("chaosfuzz: no shard count in %v fits %d partitions", counts, script.Parts)
	}
	return nil
}

func joinViolations(vs []string) string {
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += "; "
		}
		out += v
	}
	return out
}

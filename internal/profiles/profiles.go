// Package profiles is the tiny shared pprof plumbing behind the CLIs'
// -cpuprofile/-memprofile flags, so future perf work can profile the bench
// harness and the serve path without re-implementing file handling.
package profiles

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling into cpuPath (if non-empty) and returns a stop
// function that ends the CPU profile and writes a heap profile to memPath
// (if non-empty). Either path may be empty; the stop function is always
// non-nil and safe to call exactly once.
func Start(cpuPath, memPath string) (stop func(), err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profiles: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profiles: starting CPU profile: %w", err)
		}
	}
	return func() {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			cpuFile.Close()
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintf(os.Stderr, "profiles: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // materialize the final live set
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(os.Stderr, "profiles: writing heap profile: %v\n", err)
			}
		}
	}, nil
}

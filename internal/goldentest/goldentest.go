// Package goldentest holds the table normalizer shared by the repo's
// golden-file layout tests (internal/bench's experiment tables,
// cmd/graphm-replay's summary). One implementation, one set of unit-boundary
// pins: a wall-clock cell rendering as 999ms in one run and 1.0s in the next
// must normalize identically everywhere.
package goldentest

import (
	"regexp"
	"strings"
)

var (
	numberRun = regexp.MustCompile(`[0-9]+`)
	spaceRun  = regexp.MustCompile(`[ \t]+`)
	// durationRun collapses masked Go duration renderings (#ms, #.#s,
	// #m#.#s, #h#m#.#s, ...) to one token, so a timing cell crossing a unit
	// boundary between runs cannot flap a layout golden. The continuation
	// group repeats the full unit set: Go renders above-the-hour values as
	// h/m/s compounds, and dropping m from the continuation would split
	// "1h0m0.1s" into two tokens while "59m59.9s" stays one.
	durationRun = regexp.MustCompile(`#(\.#)?(ns|µs|us|ms|s|m|h)(#(\.#)?(ns|µs|us|ms|s|m|h))*`)
)

// Normalize masks every numeric token (durations unit and all) and
// collapses the padding that tracks value widths, so golden files pin the
// *layout* — titles, headers, row and column counts, notes — under a fixed
// seed, while timing-dependent cells and counter noise cannot flap a test.
func Normalize(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		line = numberRun.ReplaceAllString(line, "#")
		line = durationRun.ReplaceAllString(line, "#t")
		line = spaceRun.ReplaceAllString(line, " ")
		out = append(out, strings.TrimRight(line, " "))
	}
	return strings.Join(out, "\n")
}

package goldentest

import "testing"

// TestNormalize pins the normalizer: masked numbers, collapsed padding and
// duration units, preserved structure.
func TestNormalize(t *testing.T) {
	in := "== t ==\na    bb\n1    22.5ms\nnote: 95% at 1.5x\n"
	want := "== t ==\na bb\n# #t\nnote: #% at #.#x\n"
	if got := Normalize(in); got != want {
		t.Fatalf("normalize = %q, want %q", got, want)
	}
}

// TestNormalizeUnitBoundaries: the same wall value rendered on either side
// of a unit boundary must normalize identically — the failure mode that
// motivated duration masking (an adaptive-experiment golden recorded at
// #.#s flapped on a faster runner printing #ms).
func TestNormalizeUnitBoundaries(t *testing.T) {
	cases := [][2]string{
		{"wall 999ms", "wall 1.01s"},
		{"wall 1m2.3s", "wall 59.9s"},
		{"wall 59m59.9s", "wall 1h0m0.1s"},
		{"io 850µs", "io 1.2ms"},
		{"t 999ns", "t 1.1µs"},
	}
	for _, c := range cases {
		if a, b := Normalize(c[0]), Normalize(c[1]); a != b {
			t.Fatalf("unit-dependent masking: %q -> %q vs %q -> %q", c[0], a, c[1], b)
		}
	}
}

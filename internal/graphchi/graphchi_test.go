package graphchi

import (
	"math"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

func buildShards(t *testing.T, numV, numE, p int) (*graph.Graph, *Shards, *storage.Disk) {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("gc", numV, numE, 31))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	s, err := Build(g, p, disk)
	if err != nil {
		t.Fatal(err)
	}
	return g, s, disk
}

func TestBuildShardsSortedAndComplete(t *testing.T) {
	g, s, _ := buildShards(t, 300, 2400, 4)
	total := 0
	for _, sh := range s.All {
		prev := graph.VertexID(0)
		for _, e := range sh.Edges {
			if int(e.Dst) < sh.DstLo || int(e.Dst) >= sh.DstHi {
				t.Fatalf("edge %v outside shard interval [%d,%d)", e, sh.DstLo, sh.DstHi)
			}
			if e.Dst < prev {
				t.Fatalf("shard %d not dst-sorted", sh.ID)
			}
			prev = e.Dst
		}
		total += len(sh.Edges)
	}
	if total != g.NumEdges() {
		t.Fatalf("shards cover %d edges, want %d", total, g.NumEdges())
	}
}

func TestBuildRejectsBadP(t *testing.T) {
	g := graph.GenerateChain("c", 4)
	if _, err := Build(g, 0, storage.NewDisk()); err == nil {
		t.Fatal("expected error for P=0")
	}
}

func TestSequentialPageRankCorrect(t *testing.T) {
	g, s, disk := buildShards(t, 400, 3000, 4)
	mem := storage.NewMemory(disk, 64<<20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	r := NewRunner(s, mem, cache)
	pr := algorithms.NewPageRank(0.85, 6)
	pr.Tolerance = 1e-12
	if err := r.RunSequential([]*engine.Job{engine.NewJob(1, pr, 1)}); err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferencePageRank(g, 0.85, 6)
	for v := range want {
		if math.Abs(pr.Ranks()[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], want[v])
		}
	}
}

func TestConcurrentBFSCorrect(t *testing.T) {
	g, s, disk := buildShards(t, 400, 3000, 4)
	mem := storage.NewMemory(disk, 64<<20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	r := NewRunner(s, mem, cache)
	r.Cores = 4
	b1, b2 := algorithms.NewBFS(0), algorithms.NewBFS(5)
	jobs := []*engine.Job{engine.NewJob(1, b1, 1), engine.NewJob(2, b2, 2)}
	if err := r.RunConcurrent(jobs); err != nil {
		t.Fatal(err)
	}
	for i, b := range []*algorithms.BFS{b1, b2} {
		want := algorithms.ReferenceBFS(g, b.Root)
		for v := range want {
			if b.Dist()[v] != want[v] {
				t.Fatalf("job %d dist[%d] = %d, want %d", i, v, b.Dist()[v], want[v])
			}
		}
	}
}

func TestGraphChiScansMoreThanGridWouldForBFS(t *testing.T) {
	// GraphChi has no shard skipping: a BFS over a shard layout scans the
	// full edge set every iteration, unlike GridGraph's selective grid.
	g, s, disk := buildShards(t, 400, 3000, 4)
	mem := storage.NewMemory(disk, 64<<20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	r := NewRunner(s, mem, cache)
	bfs := algorithms.NewBFS(0)
	j := engine.NewJob(1, bfs, 1)
	if err := r.RunSequential([]*engine.Job{j}); err != nil {
		t.Fatal(err)
	}
	if j.Met.ScannedEdges != uint64(g.NumEdges())*j.Met.Iterations {
		t.Fatalf("scanned %d, want full scans %d", j.Met.ScannedEdges, uint64(g.NumEdges())*j.Met.Iterations)
	}
}

func TestAsLayoutCoversGraph(t *testing.T) {
	g, s, _ := buildShards(t, 200, 1500, 3)
	layout := s.AsLayout()
	if layout.Graph() != g {
		t.Fatal("layout graph mismatch")
	}
	total := 0
	for _, p := range layout.Partitions() {
		if p.SrcLo != 0 || p.SrcHi != g.NumV {
			t.Fatalf("shard partition %d must cover full source range", p.ID)
		}
		total += len(p.Edges)
	}
	if total != g.NumEdges() {
		t.Fatalf("layout covers %d edges, want %d", total, g.NumEdges())
	}
}

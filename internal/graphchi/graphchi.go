// Package graphchi implements a GraphChi-style engine substrate (Kyrola et
// al., OSDI'12): the vertex range is split into P intervals and the edges
// into P shards, shard i holding every edge whose destination falls in
// interval i, sorted by destination (the order the parallel-sliding-windows
// method stores them in).
//
// Unlike GridGraph, a shard mixes sources from the whole vertex range, so
// shard-level selective scheduling is impossible — a shard must be streamed
// whenever *any* vertex is active. This is why GraphChi trails GridGraph on
// frontier algorithms in the paper's Table 4, a shape this substrate
// reproduces.
package graphchi

import (
	"fmt"
	"sync"

	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// Shard holds the edges destined for one vertex interval, dst-sorted.
type Shard struct {
	ID           int
	DstLo, DstHi int
	Edges        []graph.Edge
	DiskName     string
}

// Shards is the preprocessed shard representation of one graph.
type Shards struct {
	Name string
	G    *graph.Graph
	P    int
	VPI  int // vertices per interval
	All  []*Shard
}

// Build splits g into p destination-interval shards and writes the blobs.
func Build(g *graph.Graph, p int, disk *storage.Disk) (*Shards, error) {
	if p <= 0 {
		return nil, fmt.Errorf("graphchi: P must be positive, got %d", p)
	}
	vpi := (g.NumV + p - 1) / p
	s := &Shards{Name: g.Name, G: g, P: p, VPI: vpi}
	sorted := g.SortedByDst()
	buckets := make([][]graph.Edge, p)
	for _, e := range sorted {
		buckets[int(e.Dst)/vpi] = append(buckets[int(e.Dst)/vpi], e)
	}
	for i := 0; i < p; i++ {
		sh := &Shard{
			ID:       i,
			DstLo:    i * vpi,
			DstHi:    minInt((i+1)*vpi, g.NumV),
			Edges:    buckets[i],
			DiskName: fmt.Sprintf("%s/shard/s%d", g.Name, i),
		}
		disk.Write(sh.DiskName, graph.EncodeEdges(sh.Edges))
		s.All = append(s.All, sh)
	}
	return s, nil
}

// AsLayout exposes the shards to GraphM. Sources span the whole range, so
// SrcLo/SrcHi cover all vertices: GraphM will treat a shard as active for a
// job whenever the job has any active vertex, which is exactly GraphChi's
// (lack of) shard skipping.
func (s *Shards) AsLayout() core.Layout {
	parts := make([]*core.Partition, 0, len(s.All))
	for _, sh := range s.All {
		parts = append(parts, &core.Partition{
			ID:       sh.ID,
			SrcLo:    0,
			SrcHi:    s.G.NumV,
			DiskName: sh.DiskName,
			Edges:    sh.Edges,
		})
	}
	return core.NewLayout(s.G, parts)
}

// Runner executes jobs over shards in the baseline modes (GraphChi-S / -C).
type Runner struct {
	Shards *Shards
	Mem    *storage.Memory
	Cache  *memsim.Cache
	Cost   engine.CostModel
	Cores  int
}

// NewRunner wires a runner with the default cost model.
func NewRunner(s *Shards, mem *storage.Memory, cache *memsim.Cache) *Runner {
	return &Runner{Shards: s, Mem: mem, Cache: cache, Cost: engine.DefaultCostModel()}
}

// RunSequential executes jobs one at a time (GraphChi-S).
func (r *Runner) RunSequential(jobs []*engine.Job) error {
	for _, j := range jobs {
		if err := r.runJob(j, func(sh *Shard) string { return sh.DiskName }); err != nil {
			return err
		}
	}
	return nil
}

// RunConcurrent executes jobs simultaneously with per-job copies
// (GraphChi-C).
func (r *Runner) RunConcurrent(jobs []*engine.Job) error {
	var (
		wg   sync.WaitGroup
		sem  chan struct{}
		mu   sync.Mutex
		errs []error
	)
	if r.Cores > 0 {
		sem = make(chan struct{}, r.Cores)
	}
	for _, j := range jobs {
		wg.Add(1)
		go func(j *engine.Job) {
			defer wg.Done()
			if sem != nil {
				sem <- struct{}{}
				defer func() { <-sem }()
			}
			key := func(sh *Shard) string { return fmt.Sprintf("%s#job%d", sh.DiskName, j.ID) }
			if err := r.runJob(j, key); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

func (r *Runner) runJob(j *engine.Job, keyFn func(sh *Shard) string) error {
	j.Bind(r.Shards.G)
	state := j.Prog.StateBytes()
	j.StateBase = r.Mem.AllocAddr(state)
	r.Mem.ReserveJobData(state)
	defer r.Mem.ReserveJobData(-state)
	stopStream := r.Mem.Disk().StartStream()
	defer stopStream()

	for iter := 0; j.Prog.BeforeIteration(iter); iter++ {
		// No shard skipping: every shard streams if anything is active.
		for _, sh := range r.Shards.All {
			if len(sh.Edges) == 0 {
				continue
			}
			buf, io, err := r.Mem.Load(keyFn(sh), sh.DiskName)
			if err != nil {
				return fmt.Errorf("graphchi: job %d shard %d: %w", j.ID, sh.ID, err)
			}
			if io != storage.IONone {
				base := float64(r.Cost.DiskNS(uint64(len(buf.Data))))
				if io == storage.IOReread {
					base *= r.Mem.Disk().Contention()
				}
				j.Met.SimIONS += uint64(base)
			}
			j.Met.PartitionLoads++
			engine.StreamEdges(j, sh.Edges, buf.BaseAddr, 0, r.Cache, r.Cost)
			buf.Release()
		}
		j.Prog.AfterIteration(iter)
		j.Met.Iterations++
		j.Iter = iter + 1
	}
	j.Done = true
	return nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

package service

import (
	"fmt"

	"graphm/internal/storage"
)

// TicketLogger persists the ticket lifecycle for crash recovery. LogSubmit
// must be durable before it returns — it runs under the service mutex,
// before the submission is acknowledged, so an acked ticket is never lost
// to a crash. LogTerminal is best-effort: losing an end record only makes
// recovery re-run a finished job, which is safe (re-admitted jobs keep
// their original IDs and seeds, so the re-run is deterministic).
// *storage.Store implements the interface.
type TicketLogger interface {
	LogSubmit(id int, tenant, algo string, seed int64) error
	LogTerminal(id int, status string)
}

// logTerminalLocked appends a best-effort end record for a ticket that just
// turned terminal. Caller holds s.mu.
func (s *Service) logTerminalLocked(id int, st Status) {
	if s.cfg.TicketLog != nil {
		s.cfg.TicketLog.LogTerminal(id, st.String())
	}
}

// Restore re-admits the tickets recovered as pending from the ticket log,
// preserving their original IDs and resolved seeds — job-private evolve
// mutations restored from the checkpoint/WAL are keyed by job ID, and seeds
// were derived and persisted at first submission, so the re-run jobs resolve
// their pre-crash state and draw the same random roots. It also seeds the
// service counters from the log so /metrics totals are continuous across
// restarts, and advances the ID allocator past every ID the log ever
// assigned (a recovered terminal ticket's ID must not be reissued).
//
// Call once, on a fresh service, before serving traffic. Pending tickets
// whose algorithm no longer resolves are marked failed (and logged as such)
// rather than aborting the whole recovery.
func (s *Service) Restore(rec *storage.Recovery) ([]*Ticket, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if s.snap.Submitted != 0 || s.nextID != 0 {
		return nil, fmt.Errorf("service: Restore on a used service (%d submissions)", s.snap.Submitted)
	}
	s.snap.Submitted = rec.Counts.Submitted
	s.snap.Completed = rec.Counts.Done
	s.snap.Canceled = rec.Counts.Canceled
	s.snap.Failed = rec.Counts.Failed
	if rec.NextTicketID > 1 {
		s.nextID = rec.NextTicketID - 1
	}

	var readmitted []*Ticket
	for _, p := range rec.Pending {
		prog, err := NewProgram(p.Algo)
		if err != nil {
			// The log names an algorithm this build doesn't know (e.g. a
			// downgrade). Fail the ticket durably instead of wedging startup.
			t := newTicket(p.ID, p.Tenant, p.Algo, nil, p.Seed)
			t.status = StatusFailed
			t.err = err
			t.doneAt = s.cfg.Clock.Now()
			close(t.done)
			s.tickets[t.ID] = t
			s.snap.Failed++
			s.logTerminalLocked(t.ID, StatusFailed)
			if s.cfg.OnTerminal != nil {
				s.cfg.OnTerminal(t)
			}
			continue
		}
		t := newTicket(p.ID, p.Tenant, p.Algo, prog, p.Seed)
		t.queuedAt = s.cfg.Clock.Now()
		s.tickets[t.ID] = t
		if _, seen := s.queues[p.Tenant]; !seen {
			s.tenantOrder = append(s.tenantOrder, p.Tenant)
		}
		s.queues[p.Tenant] = append(s.queues[p.Tenant], t)
		s.queued++
		s.outstanding++
		readmitted = append(readmitted, t)
	}
	if s.queued > s.snap.PeakQueued {
		s.snap.PeakQueued = s.queued
	}
	s.admitLocked()
	return readmitted, nil
}

package service_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/service"
	"graphm/internal/shard"
	"graphm/internal/storage"
)

// memTicketLog captures the ticket lifecycle in storage.Store's on-disk
// record format, so byte-comparing two captured logs compares exactly what
// a durable deployment would have persisted.
type memTicketLog struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (l *memTicketLog) LogSubmit(id int, tenant, algo string, seed int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(&l.buf, "submit %d %q %s %d\n", id, tenant, algo, seed)
	return nil
}

func (l *memTicketLog) LogTerminal(id int, status string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	fmt.Fprintf(&l.buf, "end %d %s\n", id, status)
}

func (l *memTicketLog) Bytes() []byte {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]byte(nil), l.buf.Bytes()...)
}

// svcDiffRun is one deterministic service workload's observable footprint.
type svcDiffRun struct {
	log    []byte
	status map[int]service.Status
	work   map[int]engine.WorkCounters
}

// runServiceWorkload drives a fixed submission sequence against a backend
// with the given shard count (0 = plain core.System) and returns everything
// the cross-count comparison asserts on. Determinism comes from three
// choices: MaxInFlight=1 serializes admissions, the finish gate parks the
// first driver until every submission (and the one cancel) has been logged,
// and Cores=1 keeps convergence-driven iteration counts schedule-free.
func runServiceWorkload(t *testing.T, shards int) svcDiffRun {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("svc-shard-diff", 300, 2200, 7))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 3, disk)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(32 << 10)
	cfg.Cores = 1
	cfg.Scheduler = false

	var backend service.Backend
	var wait func() error
	if shards == 0 {
		cache, err := memsim.NewCache(memsim.DefaultConfig(32 << 10))
		if err != nil {
			t.Fatal(err)
		}
		sys, err := core.NewSystem(grid.AsLayout(), storage.NewMemory(disk, 64<<20), cache, cfg)
		if err != nil {
			t.Fatal(err)
		}
		backend = sys
		wait = sys.Wait
	} else {
		grp, err := shard.New(grid.AsLayout(), shards, 64<<20, cfg)
		if err != nil {
			t.Fatal(err)
		}
		backend = grp
		wait = grp.Wait
	}

	log := &memTicketLog{}
	gate := make(chan struct{})
	svc := service.NewWithBackend(backend, service.Config{
		MaxInFlight: 1,
		Seed:        99,
		TicketLog:   log,
		FinishGate:  func(*service.Ticket) { <-gate },
	})

	reqs := []service.Request{
		{Tenant: "alpha", Algo: "pagerank"},
		{Tenant: "beta", Algo: "wcc"},
		{Tenant: "alpha", Algo: "bfs"},
		{Tenant: "beta", Algo: "sssp"},
		{Tenant: "alpha", Algo: "wcc"},
		{Tenant: "beta", Algo: "pagerank"},
		{Tenant: "alpha", Algo: "labelprop"},
		{Tenant: "beta", Algo: "kcore"},
	}
	var tickets []*service.Ticket
	for _, req := range reqs {
		tk, err := svc.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	// Ticket 7 is still queued (the sole in-flight driver is parked on the
	// gate), so this cancel lands at a fixed position in every run's log.
	if err := svc.Cancel(tickets[6].ID); err != nil {
		t.Fatal(err)
	}
	close(gate)
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}

	run := svcDiffRun{
		log:    log.Bytes(),
		status: make(map[int]service.Status),
		work:   make(map[int]engine.WorkCounters),
	}
	for _, tk := range tickets {
		run.status[tk.ID] = tk.Wait()
		run.work[tk.ID] = tk.Job().Met.Work()
	}
	return run
}

// TestServiceShardTicketLogDifferential is the service-level half of the
// sharding correctness matrix: the same deterministic submission script,
// admitted through the real service (queueing, round-robin fairness, a
// mid-stream cancel, ticket logging), must leave a byte-identical ticket
// log, identical terminal statuses, and identical per-job work counters
// whether the backend is one core.System or a group of 1, 2 or 4 shards.
func TestServiceShardTicketLogDifferential(t *testing.T) {
	ref := runServiceWorkload(t, 0)
	if ref.status[7] != service.StatusCanceled {
		t.Fatalf("reference run: ticket 7 finished %v, want canceled", ref.status[7])
	}
	done := 0
	for id, st := range ref.status {
		if st == service.StatusDone {
			done++
		} else if id != 7 {
			t.Fatalf("reference run: ticket %d finished %v", id, st)
		}
	}
	if done != 7 {
		t.Fatalf("reference run: %d tickets done, want 7", done)
	}
	for _, shards := range []int{1, 2, 4} {
		run := runServiceWorkload(t, shards)
		if !bytes.Equal(run.log, ref.log) {
			t.Fatalf("shards=%d: ticket log diverged from unsharded\nunsharded:\n%s\nshards=%d:\n%s",
				shards, ref.log, shards, run.log)
		}
		for id, want := range ref.status {
			if got := run.status[id]; got != want {
				t.Fatalf("shards=%d: ticket %d finished %v, unsharded %v", shards, id, got, want)
			}
		}
		for id, want := range ref.work {
			if got := run.work[id]; got != want {
				t.Fatalf("shards=%d: ticket %d work %+v, unsharded %+v", shards, id, got, want)
			}
		}
	}
}

// TestServiceShardStress floods a sharded backend with concurrent
// submissions, mid-stream cancels and overlapping admissions — the
// scatter/gather path's race coverage (run with -race in CI). No bit
// assertions: overlapping rounds make work counters schedule-dependent;
// the test asserts lifecycle integrity only.
func TestServiceShardStress(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("svc-shard-stress", 400, 3000, 7))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 3, disk)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(32 << 10)
	cfg.Cores = 2
	grp, err := shard.New(grid.AsLayout(), 3, 64<<20, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.NewWithBackend(grp, service.Config{MaxInFlight: 4, Seed: 5})

	const (
		submitters = 4
		perWorker  = 6
	)
	algos := []string{"pagerank", "wcc", "bfs", "sssp"}
	var mu sync.Mutex
	var tickets []*service.Ticket
	var wg sync.WaitGroup
	for w := 0; w < submitters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tk, err := svc.Submit(service.Request{
					Tenant: fmt.Sprintf("t%d", w%2),
					Algo:   algos[(w+i)%len(algos)],
				})
				if err != nil {
					t.Error(err)
					return
				}
				mu.Lock()
				tickets = append(tickets, tk)
				mu.Unlock()
				// Detach every fourth job mid-stream: the group must unwind
				// it from all three shards at their next barriers.
				if i%4 == 3 {
					if err := svc.Cancel(tk.ID); err != nil {
						t.Error(err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if err := grp.Wait(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		st := tk.Wait()
		if st != service.StatusDone && st != service.StatusCanceled {
			t.Fatalf("ticket %d finished %v", tk.ID, st)
		}
	}
}

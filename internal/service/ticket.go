package service

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
)

// Status is a ticket's lifecycle stage. The happy path is
// Queued → Admitted → Streaming → Done; Canceled and Failed are terminal
// exits reachable from any earlier stage.
type Status int

const (
	// StatusQueued: accepted by Submit, waiting in its tenant's queue.
	StatusQueued Status = iota
	// StatusAdmitted: session opened with the sharing controller; the job
	// attaches to the streaming round at the next partition barrier.
	StatusAdmitted
	// StatusStreaming: the job has begun its first iteration.
	StatusStreaming
	// StatusDone: the job converged and its session closed.
	StatusDone
	// StatusCanceled: canceled — either dequeued before admission or
	// detached from the sharing controller mid-round.
	StatusCanceled
	// StatusFailed: the underlying system failed while the job ran.
	StatusFailed
)

// Terminal reports whether the status is a final state.
func (st Status) Terminal() bool {
	return st == StatusDone || st == StatusCanceled || st == StatusFailed
}

func (st Status) String() string {
	switch st {
	case StatusQueued:
		return "queued"
	case StatusAdmitted:
		return "admitted"
	case StatusStreaming:
		return "streaming"
	case StatusDone:
		return "done"
	case StatusCanceled:
		return "canceled"
	case StatusFailed:
		return "failed"
	default:
		return fmt.Sprintf("status(%d)", int(st))
	}
}

// Request describes one job submission to the service.
type Request struct {
	// Tenant is the fairness domain the job bills to; empty means the
	// shared "default" tenant.
	Tenant string
	// Algo names a built-in algorithm (see NewProgram). Ignored when Prog
	// is set.
	Algo string
	// Prog, when non-nil, is the program instance to run. It must be fresh:
	// programs are stateful and bound to the graph at admission.
	Prog engine.Program
	// Seed drives the job's private RNG (random roots, damping draws);
	// zero derives a deterministic seed from the service seed and job ID.
	Seed int64
}

// NewProgram instantiates a service-supported algorithm by name: the
// paper's four benchmark algorithms plus the extended rotation used by the
// CLIs. Unlike jobs.NewProgram it reports unknown names as errors, which an
// online admission path must surface rather than panic on.
func NewProgram(algo string) (engine.Program, error) {
	switch algo {
	case "pagerank":
		return algorithms.NewPageRank(0, 10), nil
	case "wcc":
		return algorithms.NewWCC(0), nil
	case "bfs":
		return algorithms.NewRandomBFS(), nil
	case "sssp":
		return algorithms.NewRandomSSSP(), nil
	case "ppr":
		return algorithms.NewRandomPPR(), nil
	case "labelprop":
		return algorithms.NewLabelPropagation(0), nil
	case "kcore":
		return algorithms.NewKCore(0), nil
	default:
		return nil, fmt.Errorf("service: unknown algorithm %q", algo)
	}
}

// Ticket tracks one submitted job through its lifecycle. All methods are
// safe for concurrent use.
type Ticket struct {
	// ID is the service-assigned job ID (also the engine job ID).
	ID int
	// Tenant is the fairness domain the job was billed to.
	Tenant string
	// Algo is the program name the job runs.
	Algo string

	job  *engine.Job
	done chan struct{}

	mu           sync.Mutex
	status       Status
	err          error
	cancelWanted bool
	sess         core.JobDriver

	queuedAt   time.Time
	admittedAt time.Time
	doneAt     time.Time

	statsAtAdmit core.Stats
	statsDelta   core.Stats

	// simNS is the job's simulated execution time, captured when the ticket
	// turns terminal so callers can put the cost-model time next to the
	// real elapsed Runtime.
	simNS uint64
}

func newTicket(id int, tenant, algo string, prog engine.Program, seed int64) *Ticket {
	return &Ticket{
		ID:     id,
		Tenant: tenant,
		Algo:   algo,
		job:    engine.NewJob(id, prog, seed),
		done:   make(chan struct{}),
		status: StatusQueued,
	}
}

// Status returns the ticket's current lifecycle stage.
func (t *Ticket) Status() Status {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.status
}

// Err returns the terminal error, if any (only set for StatusFailed).
func (t *Ticket) Err() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// Done returns a channel closed when the ticket reaches a terminal status.
func (t *Ticket) Done() <-chan struct{} { return t.done }

// Wait blocks until the ticket is terminal and returns the final status.
func (t *Ticket) Wait() Status {
	<-t.done
	return t.Status()
}

// Job exposes the underlying engine job for metric inspection. Callers must
// not read it before the ticket is terminal: the driver goroutine mutates
// job state while the ticket is live.
func (t *Ticket) Job() *engine.Job { return t.job }

// StatsDelta returns the system-wide counter deltas accumulated between the
// job's admission and completion — how many rounds, shared loads and
// mid-round joins the system performed while this job was in flight. Zero
// until the ticket is terminal.
func (t *Ticket) StatsDelta() core.Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.statsDelta
}

// QueueWait returns how long the ticket waited before admission (zero while
// still queued and for never-admitted cancellations).
func (t *Ticket) QueueWait() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.admittedAt.IsZero() {
		return 0
	}
	return t.admittedAt.Sub(t.queuedAt)
}

// Runtime returns the real (wall-clock) admission-to-terminal duration —
// what the executor's actual parallelism delivers on this machine. Zero
// until terminal.
func (t *Ticket) Runtime() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.admittedAt.IsZero() || t.doneAt.IsZero() {
		return 0
	}
	return t.doneAt.Sub(t.admittedAt)
}

// SimRuntime returns the job's simulated execution time under the cost
// model (compute + memory + amortized I/O) — the paper's reported quantity,
// independent of how many real workers streamed the chunks. Zero until the
// ticket is terminal.
func (t *Ticket) SimRuntime() time.Duration {
	t.mu.Lock()
	defer t.mu.Unlock()
	return time.Duration(t.simNS)
}

func (t *Ticket) setStreaming() {
	t.mu.Lock()
	if t.status == StatusAdmitted {
		t.status = StatusStreaming
	}
	t.mu.Unlock()
}

// deriveSeed spreads the service base seed across job IDs deterministically.
func deriveSeed(base int64, id int) int64 {
	rng := rand.New(rand.NewSource(base + int64(id)))
	return rng.Int63()
}

package service_test

import (
	"testing"

	"graphm/internal/service"
	"graphm/internal/storage"
)

// TestTicketLogAndRestore: submit a mix of finished and pending tickets
// against a real ticket log, "crash" without closing, and restore into a
// fresh service. Pending tickets must re-admit with their ORIGINAL IDs and
// seeds (private graph state and random roots are keyed by them), counters
// must be continuous, and the ID allocator must never reissue a logged ID.
func TestTicketLogAndRestore(t *testing.T) {
	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	sys := newSystem(t, 200, 1200)
	svc := service.New(sys, service.Config{Seed: 11, TicketLog: st})

	// Tickets 1–3 run to completion, so both their submit and end records
	// land in the log.
	t1, err := svc.Submit(service.Request{Algo: "pagerank", Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if st1 := t1.Wait(); st1 != service.StatusDone {
		t.Fatalf("ticket 1 ended %v", st1)
	}
	t2, err := svc.Submit(service.Request{Algo: "wcc", Tenant: "b"})
	if err != nil {
		t.Fatal(err)
	}
	t3, err := svc.Submit(service.Request{Algo: "bfs", Tenant: "a"})
	if err != nil {
		t.Fatal(err)
	}
	t2.Wait()
	t3.Wait()
	// Tickets 4 and 5 are the crash point: the service logged their submit
	// records (durable, pre-ack) but died before their end records. Write
	// those log lines directly so the pending set is deterministic — a live
	// Submit would race its own async completion.
	if err := st.LogSubmit(4, "b", "sssp", 44); err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(5, "a", "pagerank", 55); err != nil {
		t.Fatal(err)
	}
	// Crash: reread the directory without Drain or Close.
	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Counts.Submitted != 5 {
		t.Fatalf("recovered %d submits, want 5", rec.Counts.Submitted)
	}
	if rec.NextTicketID != 6 {
		t.Fatalf("NextTicketID = %d, want 6", rec.NextTicketID)
	}
	if rec.Counts.Done != 3 {
		t.Fatalf("recovered %d done, want 3", rec.Counts.Done)
	}
	if len(rec.Pending) != 2 || rec.Pending[0].ID != 4 || rec.Pending[1].ID != 5 {
		t.Fatalf("recovered pending = %+v, want tickets 4 and 5", rec.Pending)
	}

	sys2 := newSystem(t, 200, 1200)
	svc2 := service.New(sys2, service.Config{Seed: 11})
	readmitted, err := svc2.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(readmitted) != len(rec.Pending) {
		t.Fatalf("re-admitted %d tickets, want %d", len(readmitted), len(rec.Pending))
	}
	for i, rt := range readmitted {
		if rt.ID != rec.Pending[i].ID {
			t.Fatalf("re-admitted ticket %d has ID %d, want original %d", i, rt.ID, rec.Pending[i].ID)
		}
		if rt.Tenant != rec.Pending[i].Tenant || rt.Algo != rec.Pending[i].Algo {
			t.Fatalf("re-admitted ticket %d = %s/%s, want %s/%s",
				rt.ID, rt.Tenant, rt.Algo, rec.Pending[i].Tenant, rec.Pending[i].Algo)
		}
		if st := rt.Wait(); st != service.StatusDone {
			t.Fatalf("re-admitted ticket %d ended %v: %v", rt.ID, st, rt.Err())
		}
	}
	// Counter continuity: the restored snapshot starts from the log's totals.
	snap := svc2.Snapshot()
	if snap.Submitted != 5 {
		t.Fatalf("restored Submitted = %d, want 5", snap.Submitted)
	}
	// A post-restore submission must get a never-before-issued ID.
	t6, err := svc2.Submit(service.Request{Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	if t6.ID != 6 {
		t.Fatalf("post-restore ticket ID = %d, want 6", t6.ID)
	}
	t6.Wait()
	if err := svc2.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreDeterministicSeeds: the seed persisted at first submission is
// the seed the re-admitted ticket runs with — not a re-derivation that could
// drift if service config changes between runs.
func TestRestoreDeterministicSeeds(t *testing.T) {
	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(3, "a", "bfs", 987654321); err != nil {
		t.Fatal(err)
	}
	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].Seed != 987654321 {
		t.Fatalf("recovered pending = %+v", rec.Pending)
	}
	svc := service.New(newSystem(t, 200, 1200), service.Config{Seed: 999})
	readmitted, err := svc.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(readmitted) != 1 || readmitted[0].ID != 3 {
		t.Fatalf("re-admitted = %+v", readmitted)
	}
	if st := readmitted[0].Wait(); st != service.StatusDone {
		t.Fatalf("ticket ended %v", st)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
}

// TestRestoreUnknownAlgoFailsTicket: a pending ticket whose algorithm no
// longer resolves is marked failed (durably) instead of wedging startup.
func TestRestoreUnknownAlgoFailsTicket(t *testing.T) {
	dir := t.TempDir()
	st, _, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(1, "a", "no-such-algo", 1); err != nil {
		t.Fatal(err)
	}
	_, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(newSystem(t, 200, 1200), service.Config{})
	readmitted, err := svc.Restore(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(readmitted) != 0 {
		t.Fatalf("re-admitted %d tickets, want 0", len(readmitted))
	}
	tk, ok := svc.Ticket(1)
	if !ok || tk.Status() != service.StatusFailed || tk.Err() == nil {
		t.Fatalf("ticket 1 = %v (ok=%v)", tk, ok)
	}
	if svc.Snapshot().Failed != 1 {
		t.Fatalf("Failed = %d, want 1", svc.Snapshot().Failed)
	}
}

// TestRestoreOnUsedServiceRejected guards the one-shot contract.
func TestRestoreOnUsedServiceRejected(t *testing.T) {
	svc := service.New(newSystem(t, 200, 1200), service.Config{})
	tk, err := svc.Submit(service.Request{Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	tk.Wait()
	if _, err := svc.Restore(&storage.Recovery{}); err == nil {
		t.Fatal("Restore on used service succeeded")
	}
}

// Package service is the online admission layer over a GraphM instance: a
// long-running, concurrency-safe job service for the paper's
// dynamic-concurrency scenario (the Figure 1 workloads), where jobs arrive
// at arbitrary times, join the streaming round already in flight, and
// depart independently — rather than running as a fixed, pre-declared
// batch.
//
// The service wraps core.System with three pieces the batch harness lacks:
//
//   - an admission controller that opens JoinMidRound sessions, so a job
//     admitted while a round is streaming attaches at the next partition
//     barrier and shares the partition loads already in flight;
//   - bounded per-tenant FIFO queues with backpressure (Submit returns
//     ErrQueueFull instead of buffering without limit) and round-robin
//     admission across tenants, so one tenant's flood of PageRank requests
//     cannot starve another tenant's lone BFS;
//   - ticket-based lifecycle tracking (queued → admitted → streaming →
//     done) with per-job core.Stats deltas for observability.
package service

import (
	"errors"
	"fmt"
	"sync"

	"graphm/internal/core"
	"graphm/internal/engine"
)

// Backend is the streaming substrate the service admits jobs to: one
// core.System, or the shard package's partitioned group of them. Everything
// the admission path needs is session opening plus the observability pair.
type Backend interface {
	// OpenJobSession registers a job and returns its streaming driver.
	OpenJobSession(j *engine.Job, opts core.SessionOptions) (core.JobDriver, error)
	// StatsSnapshot returns the controller counters (aggregated across
	// shards for a group).
	StatsSnapshot() core.Stats
	// Err returns the backend's first failure, if any.
	Err() error
}

// Submission errors returned by Submit.
var (
	// ErrQueueFull is the backpressure signal: the tenant's queue (or the
	// global queue bound) is at capacity. The caller should retry later or
	// shed the request.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrClosed is returned once the service has stopped accepting jobs.
	ErrClosed = errors.New("service: closed")
)

// Config tunes the admission controller.
type Config struct {
	// MaxInFlight bounds concurrently admitted jobs (default 16). Arrivals
	// beyond it queue.
	MaxInFlight int
	// MaxQueuedPerTenant bounds each tenant's FIFO (default 64); Submit
	// returns ErrQueueFull beyond it.
	MaxQueuedPerTenant int
	// MaxQueued bounds the total queue across tenants (default: 4x
	// MaxQueuedPerTenant).
	MaxQueued int
	// Seed derives per-job RNG seeds for requests that leave Seed zero.
	Seed int64
	// Clock is the time source for ticket lifecycle timestamps (queued,
	// admitted, done). Nil means core.WallClock. The replay harness injects a
	// core.VirtualClock so queue waits and runtimes are measured in simulated
	// trace time; the clock is only ever read while the replay's event loop
	// holds it at a deterministic instant.
	Clock core.Clock
	// FinishGate, when set, is called by each driver goroutine after its job
	// has fully streamed and closed its session, immediately before the
	// ticket turns terminal (and before its in-flight slot is released). The
	// replay harness parks drivers here until the virtual clock reaches the
	// job's simulated departure time, so the ticket's doneAt — and the
	// admission instant of whichever queued ticket its slot admits next —
	// land on the scheduled virtual time instead of the real streaming
	// duration. The callee must eventually return: Drain and Shutdown wait
	// for every gated driver.
	FinishGate func(*Ticket)
	// OnAdmit, when set, is called as each ticket is admitted to the
	// sharing controller — the daemon layer's hook for live SLO tracking
	// (queue-wait observations land in a rolling window the moment they
	// are known, not at job completion). Called with the service mutex
	// held: the callee must be fast and must not call back into the
	// Service.
	OnAdmit func(*Ticket)
	// OnTerminal, when set, is called once per ticket as it reaches a
	// terminal status (done, canceled, failed — including queued tickets
	// canceled before admission and tickets whose admission itself
	// failed). Same contract as OnAdmit: fast, no re-entry into the
	// Service.
	OnTerminal func(*Ticket)
	// TicketLog, when set, persists the ticket lifecycle: Submit appends a
	// durable submit record before acknowledging, and every terminal
	// transition appends a best-effort end record. Recovery re-admits
	// still-pending tickets through Restore.
	TicketLog TicketLogger
}

func (c Config) withDefaults() Config {
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = 16
	}
	if c.MaxQueuedPerTenant <= 0 {
		c.MaxQueuedPerTenant = 64
	}
	if c.MaxQueued <= 0 {
		c.MaxQueued = 4 * c.MaxQueuedPerTenant
	}
	if c.Clock == nil {
		c.Clock = core.WallClock{}
	}
	return c
}

// Snapshot is a point-in-time view of the service counters.
type Snapshot struct {
	Queued   int // tickets currently waiting
	InFlight int // tickets admitted and not yet terminal
	Tenants  int // tenants currently holding queued work

	Submitted uint64 // accepted submissions
	Rejected  uint64 // submissions refused for backpressure
	Admitted  uint64 // tickets ever admitted
	Completed uint64 // tickets that reached StatusDone
	Canceled  uint64 // tickets that reached StatusCanceled
	Failed    uint64 // tickets that reached StatusFailed

	PeakInFlight int
	PeakQueued   int
}

// Service is a long-running job-admission front end over one core.System.
// All exported methods are safe for concurrent use.
type Service struct {
	sys Backend
	cfg Config

	mu   sync.Mutex
	cond *sync.Cond

	queues      map[string][]*Ticket
	tenantOrder []string // round-robin order, first-seen
	rr          int      // index of the tenant served last

	tickets     map[int]*Ticket
	nextID      int
	inFlight    int
	queued      int
	outstanding int // queued + in-flight, for Drain
	closed      bool

	snap Snapshot

	wg sync.WaitGroup // one entry per driver goroutine
}

// New wraps sys in an admission service. The system must be dedicated to
// the service: mixing service tickets with direct Submit/OpenSession jobs
// on the same System is supported by the controller but makes the service's
// stats deltas meaningless.
func New(sys *core.System, cfg Config) *Service {
	return NewWithBackend(sys, cfg)
}

// NewWithBackend is New over any Backend — the daemon's sharded mode passes
// a shard.Group here and every admission, ticket and stats path works
// unchanged.
func NewWithBackend(sys Backend, cfg Config) *Service {
	s := &Service{
		sys:     sys,
		cfg:     cfg.withDefaults(),
		queues:  make(map[string][]*Ticket),
		tickets: make(map[int]*Ticket),
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Submit accepts a job request, returning its ticket immediately. The job
// is admitted to the sharing controller as soon as fairness and the
// in-flight bound allow — possibly before Submit returns. ErrQueueFull
// signals backpressure; ErrClosed a closed service.
func (s *Service) Submit(req Request) (*Ticket, error) {
	prog := req.Prog
	algo := req.Algo
	if prog == nil {
		p, err := NewProgram(req.Algo)
		if err != nil {
			return nil, err
		}
		prog = p
	} else if algo == "" {
		algo = prog.Name()
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrClosed
	}
	if len(s.queues[tenant]) >= s.cfg.MaxQueuedPerTenant || s.queued >= s.cfg.MaxQueued {
		s.snap.Rejected++
		return nil, fmt.Errorf("%w (tenant %q: %d queued, total %d)",
			ErrQueueFull, tenant, len(s.queues[tenant]), s.queued)
	}
	s.nextID++
	seed := req.Seed
	if seed == 0 {
		seed = deriveSeed(s.cfg.Seed, s.nextID)
	}
	// The submit record (with the resolved seed) is durable before the
	// caller sees the ticket: an acked submission survives kill -9, and its
	// re-run draws the same seed.
	if s.cfg.TicketLog != nil {
		if err := s.cfg.TicketLog.LogSubmit(s.nextID, tenant, algo, seed); err != nil {
			s.nextID-- // nothing else observed the ID
			return nil, fmt.Errorf("service: ticket log: %w", err)
		}
	}
	t := newTicket(s.nextID, tenant, algo, prog, seed)
	t.queuedAt = s.cfg.Clock.Now()
	s.tickets[t.ID] = t
	if _, seen := s.queues[tenant]; !seen {
		s.tenantOrder = append(s.tenantOrder, tenant)
	}
	s.queues[tenant] = append(s.queues[tenant], t)
	s.queued++
	s.outstanding++
	s.snap.Submitted++
	if s.queued > s.snap.PeakQueued {
		s.snap.PeakQueued = s.queued
	}
	s.admitLocked()
	return t, nil
}

// admitLocked pops tickets round-robin across tenants while in-flight
// capacity is available, opening a mid-round session for each.
func (s *Service) admitLocked() {
	for s.inFlight < s.cfg.MaxInFlight {
		t := s.popNextLocked()
		if t == nil {
			return
		}
		sess, err := s.sys.OpenJobSession(t.job, core.SessionOptions{JoinMidRound: true})
		if err != nil {
			// Admission failure (e.g. duplicate job ID) is terminal for the
			// ticket, not the service.
			s.outstanding--
			s.snap.Failed++
			t.mu.Lock()
			t.status = StatusFailed
			t.err = err
			t.doneAt = s.cfg.Clock.Now()
			t.mu.Unlock()
			close(t.done)
			s.logTerminalLocked(t.ID, StatusFailed)
			if s.cfg.OnTerminal != nil {
				s.cfg.OnTerminal(t)
			}
			continue
		}
		now := s.cfg.Clock.Now()
		stats := s.sys.StatsSnapshot()
		t.mu.Lock()
		t.status = StatusAdmitted
		t.sess = sess
		t.admittedAt = now
		t.statsAtAdmit = stats
		t.mu.Unlock()
		s.inFlight++
		s.snap.Admitted++
		if s.inFlight > s.snap.PeakInFlight {
			s.snap.PeakInFlight = s.inFlight
		}
		if s.cfg.OnAdmit != nil {
			s.cfg.OnAdmit(t)
		}
		s.wg.Add(1)
		go s.drive(t)
	}
}

// popNextLocked returns the next queued ticket, rotating across tenants so
// each non-empty tenant queue is served in turn. Tenants whose queue runs
// dry are dropped from the rotation (and re-enter on their next Submit), so
// a long-running service's admission cost tracks tenants with queued work,
// not tenants ever seen.
func (s *Service) popNextLocked() *Ticket {
	n := len(s.tenantOrder)
	for i := 1; i <= n; i++ {
		idx := (s.rr + i) % n
		tenant := s.tenantOrder[idx]
		q := s.queues[tenant]
		if len(q) == 0 {
			continue
		}
		t := q[0]
		q = q[1:]
		s.queued--
		if len(q) == 0 {
			s.removeTenantLocked(tenant)
			// The element after the removed slot shifted onto idx.
			s.rr = idx - 1
		} else {
			s.queues[tenant] = q
			s.rr = idx
		}
		return t
	}
	return nil
}

// removeTenantLocked drops an empty tenant from the rotation.
func (s *Service) removeTenantLocked(tenant string) {
	delete(s.queues, tenant)
	for j, name := range s.tenantOrder {
		if name == tenant {
			s.tenantOrder = append(s.tenantOrder[:j], s.tenantOrder[j+1:]...)
			return
		}
	}
}

// drive runs one admitted job against the sharing controller: the
// StreamEdges loop of Figure 6(b) over the session API, with lifecycle
// transitions layered on. ProcessAll streams each partition serially on the
// legacy driver and through the round's worker pool when the underlying
// system runs the parallel executor (core.Config.Workers >= 1).
func (s *Service) drive(t *Ticket) {
	defer s.wg.Done()
	t.mu.Lock()
	sess := t.sess
	t.mu.Unlock()
	for sess.BeginIteration() {
		t.setStreaming()
		for {
			sp := sess.Sharing()
			if sp == nil {
				break
			}
			sp.ProcessAll()
			sp.Barrier()
		}
		sess.EndIteration()
	}
	sess.Close()
	// The session is fully deregistered from the sharing controller before
	// the gate: a parked driver holds only its service in-flight slot, never
	// core state, so gated tickets cannot stall other jobs' rounds.
	if s.cfg.FinishGate != nil {
		s.cfg.FinishGate(t)
	}
	s.finish(t)
}

// finish records a ticket's terminal state and admits successors.
func (s *Service) finish(t *Ticket) {
	delta := s.sys.StatsSnapshot()
	sysErr := s.sys.Err()

	s.mu.Lock()
	s.inFlight--
	s.outstanding--
	t.mu.Lock()
	final := StatusDone
	switch {
	case sysErr != nil:
		final = StatusFailed
		t.err = sysErr
	case t.cancelWanted && t.sess.Detached():
		// Only count the ticket cancelled if the detach actually interrupted
		// the job; a cancel racing natural convergence leaves valid results.
		final = StatusCanceled
	}
	t.status = final
	t.doneAt = s.cfg.Clock.Now()
	t.statsDelta = delta.Sub(t.statsAtAdmit)
	t.simNS = t.job.Met.SimTotalNS()
	t.mu.Unlock()
	close(t.done)
	switch final {
	case StatusDone:
		s.snap.Completed++
	case StatusCanceled:
		s.snap.Canceled++
	case StatusFailed:
		s.snap.Failed++
	}
	s.logTerminalLocked(t.ID, final)
	if s.cfg.OnTerminal != nil {
		s.cfg.OnTerminal(t)
	}
	s.admitLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Cancel withdraws a ticket: queued tickets are dequeued immediately;
// admitted tickets are detached from the sharing controller at their next
// partition barrier. Canceling a terminal ticket is a no-op. Unknown IDs
// are an error.
func (s *Service) Cancel(id int) error {
	s.mu.Lock()
	t, ok := s.tickets[id]
	if !ok {
		s.mu.Unlock()
		return fmt.Errorf("service: unknown ticket %d", id)
	}
	t.mu.Lock()
	switch {
	case t.status == StatusQueued:
		s.dequeueLocked(t)
		t.status = StatusCanceled
		t.cancelWanted = true
		t.doneAt = s.cfg.Clock.Now()
		t.mu.Unlock()
		close(t.done)
		s.snap.Canceled++
		s.outstanding--
		s.logTerminalLocked(t.ID, StatusCanceled)
		if s.cfg.OnTerminal != nil {
			s.cfg.OnTerminal(t)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		return nil
	case t.status.Terminal():
		t.mu.Unlock()
		s.mu.Unlock()
		return nil
	default:
		t.cancelWanted = true
		sess := t.sess
		t.mu.Unlock()
		s.mu.Unlock()
		sess.Detach()
		return nil
	}
}

// dequeueLocked removes a still-queued ticket from its tenant FIFO,
// dropping the tenant from the rotation if the queue runs dry.
func (s *Service) dequeueLocked(t *Ticket) {
	q := s.queues[t.Tenant]
	for i, qt := range q {
		if qt != t {
			continue
		}
		q = append(q[:i:i], q[i+1:]...)
		s.queued--
		if len(q) == 0 {
			for j, name := range s.tenantOrder {
				if name == t.Tenant {
					if s.rr >= j {
						s.rr--
					}
					break
				}
			}
			s.removeTenantLocked(t.Tenant)
		} else {
			s.queues[t.Tenant] = q
		}
		return
	}
}

// Forget drops a terminal ticket from the lookup table, bounding the
// service's memory over a long-running deployment. It reports whether the
// ticket was dropped; live tickets are never dropped.
func (s *Service) Forget(id int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tickets[id]
	if !ok || !t.Status().Terminal() {
		return false
	}
	delete(s.tickets, id)
	return true
}

// Ticket looks up a ticket by ID.
func (s *Service) Ticket(id int) (*Ticket, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	t, ok := s.tickets[id]
	return t, ok
}

// Snapshot returns current service counters.
func (s *Service) Snapshot() Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := s.snap
	snap.Queued = s.queued
	snap.InFlight = s.inFlight
	snap.Tenants = len(s.tenantOrder)
	return snap
}

// SystemStats returns the wrapped system's counters.
func (s *Service) SystemStats() core.Stats { return s.sys.StatsSnapshot() }

// Drain stops accepting new jobs, runs every queued and in-flight job to
// completion, and returns the system's first error, if any.
func (s *Service) Drain() error {
	s.mu.Lock()
	s.closed = true
	for s.outstanding > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return s.sys.Err()
}

// Shutdown stops accepting new jobs, cancels everything still queued,
// detaches every in-flight job at its next partition barrier, and waits for
// the drivers to exit.
func (s *Service) Shutdown() {
	s.mu.Lock()
	s.closed = true
	var detach []core.JobDriver
	var terminal []*Ticket
	for _, t := range s.tickets {
		t.mu.Lock()
		switch {
		case t.status == StatusQueued:
			s.dequeueLocked(t)
			t.status = StatusCanceled
			t.cancelWanted = true
			t.doneAt = s.cfg.Clock.Now()
			close(t.done)
			s.snap.Canceled++
			s.outstanding--
			terminal = append(terminal, t)
		case !t.status.Terminal():
			t.cancelWanted = true
			detach = append(detach, t.sess)
		}
		t.mu.Unlock()
	}
	for _, t := range terminal {
		s.logTerminalLocked(t.ID, StatusCanceled)
		if s.cfg.OnTerminal != nil {
			s.cfg.OnTerminal(t)
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, sess := range detach {
		sess.Detach()
	}
	s.mu.Lock()
	for s.outstanding > 0 {
		s.cond.Wait()
	}
	s.mu.Unlock()
	s.wg.Wait()
}

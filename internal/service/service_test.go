package service_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"graphm/internal/algorithms"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/memsim"
	"graphm/internal/service"
	"graphm/internal/storage"
)

// gatedProgram wraps a Program and blocks its first ProcessEdge call until
// released. While blocked, the job is pinned mid-partition, so the round it
// joined is provably in flight — tests use it to make arrival overlap
// deterministic instead of depending on goroutine timing (this container
// has a single CPU, where short jobs otherwise serialize).
type gatedProgram struct {
	engine.Program
	started chan struct{}
	release chan struct{}
	once    sync.Once
}

func newGated(p engine.Program) *gatedProgram {
	return &gatedProgram{Program: p, started: make(chan struct{}), release: make(chan struct{})}
}

func (g *gatedProgram) ProcessEdge(e graph.Edge) bool {
	g.once.Do(func() {
		close(g.started)
		<-g.release
	})
	return g.Program.ProcessEdge(e)
}

// newSystem builds a small grid-backed GraphM instance for service tests.
func newSystem(t *testing.T, numV, numE int) *core.System {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("svc", numV, numE, 7))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 4, disk)
	if err != nil {
		t.Fatal(err)
	}
	mem := storage.NewMemory(disk, 64<<20)
	cache, err := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(64 << 10)
	cfg.Cores = 4
	sys, err := core.NewSystem(grid.AsLayout(), mem, cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestServiceSurfacesRelabelCounts runs the admission service over an
// adaptive-chunking system: the attendance swings the service produces must
// drive re-labels, and both the system-level counters and the per-ticket
// stats deltas must surface them.
func TestServiceSurfacesRelabelCounts(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("svc-adaptive", 400, 3000, 7))
	if err != nil {
		t.Fatal(err)
	}
	disk := storage.NewDisk()
	grid, err := gridgraph.Build(g, 2, disk)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := memsim.NewCache(memsim.DefaultConfig(32 << 10))
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.DefaultConfig(32 << 10)
	cfg.Cores = 1 // static sizing assumes one job; a burst of 8 drifts 8x
	cfg.AdaptiveChunking = true
	sys, err := core.NewSystem(grid.AsLayout(), storage.NewMemory(disk, 64<<20), cache, cfg)
	if err != nil {
		t.Fatal(err)
	}
	svc := service.New(sys, service.Config{MaxInFlight: 8, Seed: 3})
	var tickets []*service.Ticket
	for i := 0; i < 8; i++ {
		tk, err := svc.Submit(service.Request{Algo: "pagerank"})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	stats := svc.SystemStats()
	if stats.Relabels == 0 {
		t.Fatal("service burst drove no re-labels on an adaptive system")
	}
	var deltaRelabels uint64
	for _, tk := range tickets {
		if tk.Wait() != service.StatusDone {
			t.Fatalf("ticket %d finished %v", tk.ID, tk.Status())
		}
		deltaRelabels += tk.StatsDelta().Relabels
	}
	if deltaRelabels == 0 {
		t.Fatal("no ticket's stats delta recorded a re-label")
	}
}

func TestStaggeredArrivalsShareInFlightLoads(t *testing.T) {
	sys := newSystem(t, 600, 5000)
	svc := service.New(sys, service.Config{MaxInFlight: 16, Seed: 1})

	// The first arrival is gated mid-partition, guaranteeing the nine
	// staggered arrivals land while it is still streaming.
	gate := newGated(algorithms.NewWCC(0))
	first, err := svc.Submit(service.Request{Prog: gate, Algo: "wcc", Seed: 100})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.started
	algos := []string{"pagerank", "wcc", "bfs", "sssp"}
	tickets := []*service.Ticket{first}
	for i := 0; i < 9; i++ {
		tk, err := svc.Submit(service.Request{Algo: algos[i%len(algos)]})
		if err != nil {
			t.Fatal(err)
		}
		tickets = append(tickets, tk)
		time.Sleep(time.Millisecond)
	}
	close(gate.release)
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	for _, tk := range tickets {
		if st := tk.Wait(); st != service.StatusDone {
			t.Fatalf("ticket %d finished %v, want done (err: %v)", tk.ID, st, tk.Err())
		}
		if tk.Job().Met.Iterations == 0 {
			t.Fatalf("ticket %d ran zero iterations", tk.ID)
		}
	}
	st := svc.SystemStats()
	if st.SharedLoads == 0 {
		t.Fatal("no partition load was shared between jobs")
	}
	snap := svc.Snapshot()
	if snap.Completed != 10 || snap.Admitted != 10 {
		t.Fatalf("snapshot = %+v, want 10 admitted+completed", snap)
	}
}

func TestMidRoundJoinAttachesLateArrival(t *testing.T) {
	sys := newSystem(t, 600, 5000)
	svc := service.New(sys, service.Config{MaxInFlight: 8, Seed: 2})

	// Gate the first job mid-partition: its round stays in flight until the
	// gate opens, so every late arrival must attach mid-round.
	gate := newGated(algorithms.NewWCC(0))
	first, err := svc.Submit(service.Request{Prog: gate, Algo: "wcc", Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	<-gate.started
	var late []*service.Ticket
	for i := 0; i < 4; i++ {
		tk, err := svc.Submit(service.Request{Algo: "wcc"})
		if err != nil {
			t.Fatal(err)
		}
		late = append(late, tk)
	}
	// Wait until every late driver has begun its first iteration — each one
	// necessarily attaches to the pinned round — then release the gate.
	deadline := time.Now().Add(10 * time.Second)
	for _, tk := range late {
		for tk.Status() != service.StatusStreaming {
			if time.Now().After(deadline) {
				t.Fatalf("late ticket %d never started streaming", tk.ID)
			}
			time.Sleep(time.Millisecond)
		}
	}
	close(gate.release)
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := first.Wait(); st != service.StatusDone {
		t.Fatalf("gated job = %v, want done", st)
	}
	st := svc.SystemStats()
	if st.MidRoundJoins < 4 {
		t.Fatalf("MidRoundJoins = %d, want >= 4 (every late arrival joined a pinned round)", st.MidRoundJoins)
	}
	if st.SharedLoads == 0 {
		t.Fatal("late arrivals shared no loads with the long job")
	}
	for _, tk := range late {
		if got := tk.Wait(); got != service.StatusDone {
			t.Fatalf("late ticket %d = %v, want done", tk.ID, got)
		}
		delta := tk.StatsDelta()
		if delta.Rounds < 0 || delta.SharedLoads < 0 {
			t.Fatalf("negative stats delta: %+v", delta)
		}
	}
}

func TestConcurrentSubmissionsUnderRace(t *testing.T) {
	sys := newSystem(t, 400, 3000)
	svc := service.New(sys, service.Config{MaxInFlight: 6, MaxQueuedPerTenant: 64, Seed: 4})

	const goroutines = 8
	const perG = 3
	var wg sync.WaitGroup
	errs := make(chan error, goroutines*perG)
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			tenant := []string{"alpha", "beta", "gamma"}[gi%3]
			for k := 0; k < perG; k++ {
				tk, err := svc.Submit(service.Request{Tenant: tenant, Algo: "bfs"})
				if err != nil {
					errs <- err
					return
				}
				if st := tk.Wait(); st != service.StatusDone {
					errs <- errors.New("job did not finish: " + st.String())
					return
				}
			}
		}(gi)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	snap := svc.Snapshot()
	if want := uint64(goroutines * perG); snap.Completed != want {
		t.Fatalf("completed %d, want %d", snap.Completed, want)
	}
	if snap.Queued != 0 || snap.InFlight != 0 {
		t.Fatalf("service not drained: %+v", snap)
	}
}

func TestBackpressureRejectsFloods(t *testing.T) {
	sys := newSystem(t, 400, 3000)
	svc := service.New(sys, service.Config{MaxInFlight: 1, MaxQueuedPerTenant: 2, Seed: 5})

	var sawFull bool
	for i := 0; i < 12; i++ {
		_, err := svc.Submit(service.Request{Algo: "pagerank"})
		if errors.Is(err, service.ErrQueueFull) {
			sawFull = true
			break
		}
		if err != nil {
			t.Fatal(err)
		}
	}
	if !sawFull {
		t.Fatal("flood was never rejected with ErrQueueFull")
	}
	if svc.Snapshot().Rejected == 0 {
		t.Fatal("rejection not counted")
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
}

func TestTenantFairnessRoundRobin(t *testing.T) {
	sys := newSystem(t, 400, 3000)
	svc := service.New(sys, service.Config{MaxInFlight: 1, MaxQueuedPerTenant: 32, Seed: 6})

	// The first submission occupies the single slot; everything after
	// queues. A flood from "noisy" then one job from "quiet": round-robin
	// admission must pick quiet's job next, not drain noisy's queue first.
	gate, err := svc.Submit(service.Request{Tenant: "noisy", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	var noisy []*service.Ticket
	for i := 0; i < 6; i++ {
		tk, err := svc.Submit(service.Request{Tenant: "noisy", Algo: "pagerank"})
		if err != nil {
			t.Fatal(err)
		}
		noisy = append(noisy, tk)
	}
	quiet, err := svc.Submit(service.Request{Tenant: "quiet", Algo: "bfs"})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	gate.Wait()
	quiet.Wait()
	// Round-robin admission: quiet's lone job entered the single slot right
	// after the gate job, so every queued noisy job was admitted after it.
	for _, tk := range noisy[1:] {
		tk.Wait()
		if quiet.QueueWait() > tk.QueueWait() {
			t.Fatalf("quiet tenant waited %v, longer than noisy backlog job %d (%v)",
				quiet.QueueWait(), tk.ID, tk.QueueWait())
		}
	}
}

func TestCancelQueuedTicket(t *testing.T) {
	sys := newSystem(t, 400, 3000)
	svc := service.New(sys, service.Config{MaxInFlight: 1, Seed: 7})

	if _, err := svc.Submit(service.Request{Algo: "pagerank"}); err != nil {
		t.Fatal(err)
	}
	queued, err := svc.Submit(service.Request{Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Cancel(queued.ID); err != nil {
		t.Fatal(err)
	}
	if st := queued.Wait(); st != service.StatusCanceled {
		t.Fatalf("canceled queued ticket = %v", st)
	}
	if queued.QueueWait() != 0 {
		t.Fatal("never-admitted ticket reports a queue wait")
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if snap := svc.Snapshot(); snap.Canceled != 1 || snap.Completed != 1 {
		t.Fatalf("snapshot = %+v, want 1 canceled + 1 completed", snap)
	}
}

func TestCancelInFlightDetaches(t *testing.T) {
	sys := newSystem(t, 600, 5000)
	svc := service.New(sys, service.Config{MaxInFlight: 4, Seed: 8})

	// An effectively endless job: cancellation is its only way out.
	endless := algorithms.NewPageRank(0.85, 1_000_000)
	endless.Tolerance = -1 // negative disables the early exit; 0 would mean Reset's 1e-7 default
	victim, err := svc.Submit(service.Request{Prog: endless, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	bystander, err := svc.Submit(service.Request{Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for victim.Status() != service.StatusStreaming {
		if time.Now().After(deadline) {
			t.Fatal("victim never started streaming")
		}
		time.Sleep(time.Millisecond)
	}
	if err := svc.Cancel(victim.ID); err != nil {
		t.Fatal(err)
	}
	if st := victim.Wait(); st != service.StatusCanceled {
		t.Fatalf("canceled in-flight ticket = %v", st)
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if st := bystander.Wait(); st != service.StatusDone {
		t.Fatalf("bystander = %v, want done", st)
	}
	if stats := svc.SystemStats(); stats.Detaches == 0 {
		t.Fatal("detach not recorded by the controller")
	}
}

func TestSubmitErrors(t *testing.T) {
	sys := newSystem(t, 400, 3000)
	svc := service.New(sys, service.Config{Seed: 10})

	if _, err := svc.Submit(service.Request{Algo: "no-such-algo"}); err == nil {
		t.Fatal("unknown algorithm accepted")
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Submit(service.Request{Algo: "bfs"}); !errors.Is(err, service.ErrClosed) {
		t.Fatalf("submit after drain = %v, want ErrClosed", err)
	}
}

func TestShutdownCancelsBacklog(t *testing.T) {
	sys := newSystem(t, 600, 5000)
	svc := service.New(sys, service.Config{MaxInFlight: 1, Seed: 11})

	endless := algorithms.NewPageRank(0.85, 1_000_000)
	endless.Tolerance = -1 // negative disables the early exit; 0 would mean Reset's 1e-7 default
	head, err := svc.Submit(service.Request{Prog: endless, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var backlog []*service.Ticket
	for i := 0; i < 3; i++ {
		tk, err := svc.Submit(service.Request{Algo: "bfs"})
		if err != nil {
			t.Fatal(err)
		}
		backlog = append(backlog, tk)
	}
	svc.Shutdown()
	if st := head.Wait(); st != service.StatusCanceled {
		t.Fatalf("in-flight job after Shutdown = %v, want canceled", st)
	}
	for _, tk := range backlog {
		if st := tk.Wait(); st != service.StatusCanceled {
			t.Fatalf("queued job after Shutdown = %v, want canceled", st)
		}
	}
}

func TestLifecycleTimestampsAndForget(t *testing.T) {
	sys := newSystem(t, 400, 3000)
	svc := service.New(sys, service.Config{Seed: 13})

	tk, err := svc.Submit(service.Request{Tenant: "ops", Algo: "wcc"})
	if err != nil {
		t.Fatal(err)
	}
	if st := tk.Wait(); st != service.StatusDone {
		t.Fatalf("status = %v", st)
	}
	if tk.Runtime() <= 0 {
		t.Fatal("terminal ticket has no runtime")
	}
	if got, ok := svc.Ticket(tk.ID); !ok || got != tk {
		t.Fatal("ticket lookup failed")
	}
	if !svc.Forget(tk.ID) {
		t.Fatal("terminal ticket not forgotten")
	}
	if _, ok := svc.Ticket(tk.ID); ok {
		t.Fatal("forgotten ticket still resolvable")
	}
	if err := svc.Drain(); err != nil {
		t.Fatal(err)
	}
}

package algorithms

import (
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// LabelPropagation is synchronous community detection by majority label
// voting (the algorithm family the paper's introduction cites alongside
// PageRank as Facebook's concurrent workloads). Each iteration every vertex
// adopts the most frequent label among its in-neighbours, ties broken by
// the smaller label; labels start as vertex IDs.
//
// Like WCC it is network-intensive: every vertex stays active until labels
// stop changing or the iteration budget runs out.
//
// The per-iteration vote accumulator is an arena of (label, count) nodes
// chained per destination vertex — not a map per vertex — so the edge
// function allocates nothing in steady state: the node arrays grow to the
// iteration's distinct (destination, label) high-water mark once and are
// reused, and AfterIteration resets the chains while it consumes them. The
// majority rule (highest count, ties to the smaller label) is order-
// independent, so the chain walk and the old map iteration agree exactly;
// the tests pin it against ReferenceLabelPropagation.
type LabelPropagation struct {
	MaxIters int

	g     *graph.Graph
	label []uint32
	// voteHead[v] indexes the first vote node of vertex v (-1 when none);
	// voteLabel/voteCount/voteNext are the shared node arena.
	voteHead  []int32
	voteLabel []uint32
	voteCount []int32
	voteNext  []int32
	active    *engine.Bitmap
	moved     bool
}

// NewLabelPropagation returns a label-propagation program; maxIters 0 draws
// a random budget at Reset per Section 5.1's randomised job parameters.
func NewLabelPropagation(maxIters int) *LabelPropagation {
	return &LabelPropagation{MaxIters: maxIters}
}

// Name implements engine.Program.
func (lp *LabelPropagation) Name() string { return "labelprop" }

// Reset implements engine.Program.
func (lp *LabelPropagation) Reset(g *graph.Graph, rng *rand.Rand) {
	lp.g = g
	if lp.MaxIters == 0 {
		lp.MaxIters = 1 + rng.Intn(10)
	}
	lp.label = make([]uint32, g.NumV)
	for i := range lp.label {
		lp.label[i] = uint32(i)
	}
	lp.voteHead = make([]int32, g.NumV)
	for i := range lp.voteHead {
		lp.voteHead[i] = -1
	}
	lp.voteLabel = lp.voteLabel[:0]
	lp.voteCount = lp.voteCount[:0]
	lp.voteNext = lp.voteNext[:0]
	lp.active = engine.NewBitmap(g.NumV)
	lp.active.SetAll()
}

// BeforeIteration implements engine.Program.
func (lp *LabelPropagation) BeforeIteration(iter int) bool {
	if iter >= lp.MaxIters {
		return false
	}
	if iter > 0 && !lp.moved {
		return false
	}
	lp.moved = false
	return true
}

// vote records one src->dst label vote in the chain arena.
func (lp *LabelPropagation) vote(dst graph.VertexID, label uint32) {
	for idx := lp.voteHead[dst]; idx >= 0; idx = lp.voteNext[idx] {
		if lp.voteLabel[idx] == label {
			lp.voteCount[idx]++
			return
		}
	}
	idx := int32(len(lp.voteLabel))
	lp.voteLabel = append(lp.voteLabel, label)
	lp.voteCount = append(lp.voteCount, 1)
	lp.voteNext = append(lp.voteNext, lp.voteHead[dst])
	lp.voteHead[dst] = idx
}

// ProcessEdge implements engine.Program: the source votes its label onto
// the destination.
func (lp *LabelPropagation) ProcessEdge(e graph.Edge) bool {
	lp.vote(e.Dst, lp.label[e.Src])
	return false
}

// ProcessEdges implements engine.BatchProgram: the exact per-edge vote
// applied in slice order with the label slice and chain heads hoisted out
// of the interface-dispatch path. Must stay observably identical to
// ProcessEdge, and allocates nothing once the vote arena has grown to the
// iteration's working set.
func (lp *LabelPropagation) ProcessEdges(edges []graph.Edge, active *engine.Bitmap) (processed, activated uint64) {
	allActive := active.Full()
	label := lp.label
	head := lp.voteHead
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		processed++
		l := label[e.Src]
		found := false
		for idx := head[e.Dst]; idx >= 0; idx = lp.voteNext[idx] {
			if lp.voteLabel[idx] == l {
				lp.voteCount[idx]++
				found = true
				break
			}
		}
		if !found {
			idx := int32(len(lp.voteLabel))
			lp.voteLabel = append(lp.voteLabel, l)
			lp.voteCount = append(lp.voteCount, 1)
			lp.voteNext = append(lp.voteNext, head[e.Dst])
			head[e.Dst] = idx
		}
	}
	return processed, 0
}

// AfterIteration implements engine.Program: each vertex adopts the majority
// vote. The walk consumes and resets the vote chains, restoring the arena
// to empty for the next iteration without freeing its capacity.
func (lp *LabelPropagation) AfterIteration(iter int) {
	for v := range lp.voteHead {
		idx := lp.voteHead[v]
		if idx < 0 {
			continue
		}
		best := lp.label[v]
		bestCount := int32(0)
		for ; idx >= 0; idx = lp.voteNext[idx] {
			if c, l := lp.voteCount[idx], lp.voteLabel[idx]; c > bestCount || (c == bestCount && l < best) {
				best, bestCount = l, c
			}
		}
		if best != lp.label[v] {
			lp.label[v] = best
			lp.moved = true
		}
		lp.voteHead[v] = -1
	}
	lp.voteLabel = lp.voteLabel[:0]
	lp.voteCount = lp.voteCount[:0]
	lp.voteNext = lp.voteNext[:0]
}

// Active implements engine.Program.
func (lp *LabelPropagation) Active() *engine.Bitmap { return lp.active }

// StateBytes implements engine.Program. The vote arena is transient
// per-iteration scratch; the durable state is the label array + bitmap.
func (lp *LabelPropagation) StateBytes() int64 {
	return int64(len(lp.label))*4 + lp.active.Bytes()
}

// EdgeCost implements engine.Program: a vote-chain update — the most
// expensive edge function in the suite, giving the profiler strongly skewed
// loads.
func (lp *LabelPropagation) EdgeCost() float64 { return 2.5 }

// Labels exposes the community labels.
func (lp *LabelPropagation) Labels() []uint32 { return lp.label }

// ReferenceLabelPropagation runs the same synchronous majority voting over
// the raw edge list for tests.
func ReferenceLabelPropagation(g *graph.Graph, iters int) []uint32 {
	label := make([]uint32, g.NumV)
	for i := range label {
		label[i] = uint32(i)
	}
	for it := 0; it < iters; it++ {
		votes := make([]map[uint32]int, g.NumV)
		for _, e := range g.Edges {
			if votes[e.Dst] == nil {
				votes[e.Dst] = make(map[uint32]int)
			}
			votes[e.Dst][label[e.Src]]++
		}
		moved := false
		for v, m := range votes {
			if len(m) == 0 {
				continue
			}
			best := label[v]
			bestCount := 0
			for l, c := range m {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != label[v] {
				label[v] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return label
}

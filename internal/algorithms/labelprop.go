package algorithms

import (
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// LabelPropagation is synchronous community detection by majority label
// voting (the algorithm family the paper's introduction cites alongside
// PageRank as Facebook's concurrent workloads). Each iteration every vertex
// adopts the most frequent label among its in-neighbours, ties broken by
// the smaller label; labels start as vertex IDs.
//
// Like WCC it is network-intensive: every vertex stays active until labels
// stop changing or the iteration budget runs out.
type LabelPropagation struct {
	MaxIters int

	g      *graph.Graph
	label  []uint32
	votes  []map[uint32]int
	active *engine.Bitmap
	moved  bool
}

// NewLabelPropagation returns a label-propagation program; maxIters 0 draws
// a random budget at Reset per Section 5.1's randomised job parameters.
func NewLabelPropagation(maxIters int) *LabelPropagation {
	return &LabelPropagation{MaxIters: maxIters}
}

// Name implements engine.Program.
func (lp *LabelPropagation) Name() string { return "labelprop" }

// Reset implements engine.Program.
func (lp *LabelPropagation) Reset(g *graph.Graph, rng *rand.Rand) {
	lp.g = g
	if lp.MaxIters == 0 {
		lp.MaxIters = 1 + rng.Intn(10)
	}
	lp.label = make([]uint32, g.NumV)
	for i := range lp.label {
		lp.label[i] = uint32(i)
	}
	lp.votes = make([]map[uint32]int, g.NumV)
	lp.active = engine.NewBitmap(g.NumV)
	lp.active.SetAll()
}

// BeforeIteration implements engine.Program.
func (lp *LabelPropagation) BeforeIteration(iter int) bool {
	if iter >= lp.MaxIters {
		return false
	}
	if iter > 0 && !lp.moved {
		return false
	}
	for i := range lp.votes {
		lp.votes[i] = nil
	}
	lp.moved = false
	return true
}

// ProcessEdge implements engine.Program: the source votes its label onto
// the destination.
func (lp *LabelPropagation) ProcessEdge(e graph.Edge) bool {
	m := lp.votes[e.Dst]
	if m == nil {
		m = make(map[uint32]int, 4)
		lp.votes[e.Dst] = m
	}
	m[lp.label[e.Src]]++
	return false
}

// AfterIteration implements engine.Program: each vertex adopts the majority
// vote.
func (lp *LabelPropagation) AfterIteration(iter int) {
	for v, m := range lp.votes {
		if len(m) == 0 {
			continue
		}
		best := lp.label[v]
		bestCount := 0
		for l, c := range m {
			if c > bestCount || (c == bestCount && l < best) {
				best, bestCount = l, c
			}
		}
		if best != lp.label[v] {
			lp.label[v] = best
			lp.moved = true
		}
	}
}

// Active implements engine.Program.
func (lp *LabelPropagation) Active() *engine.Bitmap { return lp.active }

// StateBytes implements engine.Program. The vote maps are transient
// per-iteration scratch; the durable state is the label array + bitmap.
func (lp *LabelPropagation) StateBytes() int64 {
	return int64(len(lp.label))*4 + lp.active.Bytes()
}

// EdgeCost implements engine.Program: a map update — the most expensive
// edge function in the suite, giving the profiler strongly skewed loads.
func (lp *LabelPropagation) EdgeCost() float64 { return 2.5 }

// Labels exposes the community labels.
func (lp *LabelPropagation) Labels() []uint32 { return lp.label }

// ReferenceLabelPropagation runs the same synchronous majority voting over
// the raw edge list for tests.
func ReferenceLabelPropagation(g *graph.Graph, iters int) []uint32 {
	label := make([]uint32, g.NumV)
	for i := range label {
		label[i] = uint32(i)
	}
	for it := 0; it < iters; it++ {
		votes := make([]map[uint32]int, g.NumV)
		for _, e := range g.Edges {
			if votes[e.Dst] == nil {
				votes[e.Dst] = make(map[uint32]int)
			}
			votes[e.Dst][label[e.Src]]++
		}
		moved := false
		for v, m := range votes {
			if len(m) == 0 {
				continue
			}
			best := label[v]
			bestCount := 0
			for l, c := range m {
				if c > bestCount || (c == bestCount && l < best) {
					best, bestCount = l, c
				}
			}
			if best != label[v] {
				label[v] = best
				moved = true
			}
		}
		if !moved {
			break
		}
	}
	return label
}

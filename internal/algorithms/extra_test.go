package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphm/internal/graph"
)

func TestPPRMatchesReference(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("ppr", 400, 3000, 19))
	if err != nil {
		t.Fatal(err)
	}
	p := NewPersonalizedPageRank(7, 0.85, 12)
	p.Tolerance = 1e-15
	runProgram(t, p, g, func() interface{ Has(int) bool } { return p.Active() })
	want := ReferencePPR(g, 7, 0.85, 12)
	for v := range want {
		if math.Abs(p.Ranks()[v]-want[v]) > 1e-9 {
			t.Fatalf("ppr[%d] = %g, want %g", v, p.Ranks()[v], want[v])
		}
	}
}

func TestPPRMassConcentratesAtSource(t *testing.T) {
	g, _ := graph.GenerateUniform("c", 200, 1200, 4)
	p := NewPersonalizedPageRank(3, 0.5, 20)
	runProgram(t, p, g, func() interface{ Has(int) bool } { return p.Active() })
	src := p.Ranks()[3]
	for v, r := range p.Ranks() {
		if v != 3 && r > src {
			t.Fatalf("vertex %d rank %g exceeds source rank %g", v, r, src)
		}
	}
}

func TestPPRRandomSource(t *testing.T) {
	g, _ := graph.GenerateUniform("r", 100, 400, 5)
	p := NewRandomPPR()
	p.Reset(g, rand.New(rand.NewSource(6)))
	if int(p.Source) >= g.NumV {
		t.Fatalf("source %d out of range", p.Source)
	}
}

func TestLabelPropagationMatchesReference(t *testing.T) {
	g, err := graph.GenerateUniform("lp", 300, 1800, 21)
	if err != nil {
		t.Fatal(err)
	}
	lp := NewLabelPropagation(6)
	runProgram(t, lp, g, func() interface{ Has(int) bool } { return lp.Active() })
	want := ReferenceLabelPropagation(g, 6)
	for v := range want {
		if lp.Labels()[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, lp.Labels()[v], want[v])
		}
	}
}

func TestLabelPropagationIsolatedVertexKeepsLabel(t *testing.T) {
	g := graph.MustNew("iso", 3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	lp := NewLabelPropagation(5)
	runProgram(t, lp, g, func() interface{ Has(int) bool } { return lp.Active() })
	if lp.Labels()[2] != 2 {
		t.Fatalf("isolated vertex changed label to %d", lp.Labels()[2])
	}
	if lp.Labels()[1] != 0 {
		t.Fatalf("vertex 1 should adopt 0's label, got %d", lp.Labels()[1])
	}
}

func TestKCoreMatchesReference(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("kc", 300, 2400, 23))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{2, 3, 5} {
		kc := NewKCore(k)
		runProgram(t, kc, g, func() interface{ Has(int) bool } { return kc.Active() })
		want := ReferenceKCore(g, k)
		for v := range want {
			if kc.InCore(graph.VertexID(v)) != want[v] {
				t.Fatalf("k=%d: InCore(%d) = %v, want %v", k, v, kc.InCore(graph.VertexID(v)), want[v])
			}
		}
	}
}

func TestKCoreMonotoneInK(t *testing.T) {
	// Property: the (k+1)-core is a subgraph of the k-core.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 30 + rng.Intn(100)
		g, err := graph.GenerateUniform("q", n, 4*n, seed)
		if err != nil {
			return false
		}
		prev := ReferenceKCore(g, 2)
		for k := 3; k <= 5; k++ {
			cur := ReferenceKCore(g, k)
			for v := range cur {
				if cur[v] && !prev[v] {
					return false
				}
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestKCoreStreamingMatchesReferenceProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		g, err := graph.GenerateUniform("q", n, 3*n, seed)
		if err != nil {
			return false
		}
		k := 2 + rng.Intn(4)
		kc := NewKCore(k)
		kc.Reset(g, rng)
		for iter := 0; kc.BeforeIteration(iter); iter++ {
			for _, e := range g.Edges {
				if kc.Active().Has(int(e.Src)) {
					kc.ProcessEdge(e)
				}
			}
			kc.AfterIteration(iter)
			if iter > 10*n {
				return false
			}
		}
		want := ReferenceKCore(g, k)
		for v := range want {
			if kc.InCore(graph.VertexID(v)) != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

package algorithms

import (
	"container/heap"
	"math"
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// SSSP computes single-source shortest paths by iterative edge relaxation
// (Bellman-Ford style with frontiers), the standard formulation for
// edge-streaming engines.
type SSSP struct {
	Root    graph.VertexID
	RootSet bool

	g      *graph.Graph
	dist   []float32
	active *engine.Bitmap
	next   *engine.Bitmap
}

// NewSSSP returns an SSSP from a fixed root.
func NewSSSP(root graph.VertexID) *SSSP { return &SSSP{Root: root, RootSet: true} }

// NewRandomSSSP returns an SSSP whose root is drawn by Reset.
func NewRandomSSSP() *SSSP { return &SSSP{} }

// Name implements engine.Program.
func (s *SSSP) Name() string { return "sssp" }

// Reset implements engine.Program.
func (s *SSSP) Reset(g *graph.Graph, rng *rand.Rand) {
	s.g = g
	if !s.RootSet {
		s.Root = graph.VertexID(rng.Intn(g.NumV))
	}
	s.dist = make([]float32, g.NumV)
	for i := range s.dist {
		s.dist[i] = float32(math.Inf(1))
	}
	s.dist[s.Root] = 0
	s.active = engine.NewBitmap(g.NumV)
	s.active.Set(int(s.Root))
	s.next = engine.NewBitmap(g.NumV)
}

// BeforeIteration implements engine.Program.
func (s *SSSP) BeforeIteration(iter int) bool {
	if !s.active.Any() {
		return false
	}
	s.next.Reset()
	return true
}

// ProcessEdge implements engine.Program.
func (s *SSSP) ProcessEdge(e graph.Edge) bool {
	if nd := s.dist[e.Src] + e.Weight; nd < s.dist[e.Dst] {
		s.dist[e.Dst] = nd
		s.next.Set(int(e.Dst))
		return true
	}
	return false
}

// ProcessEdges implements engine.BatchProgram: the exact per-edge relaxation
// applied in slice order, with the dist slice and frontier bitmap hoisted
// out of the interface-dispatch path. Must stay observably identical to
// ProcessEdge — same float compare order, same activation count — and
// allocates nothing.
func (s *SSSP) ProcessEdges(edges []graph.Edge, active *engine.Bitmap) (processed, activated uint64) {
	allActive := active.Full()
	dist := s.dist
	next := s.next
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		processed++
		if nd := dist[e.Src] + e.Weight; nd < dist[e.Dst] {
			dist[e.Dst] = nd
			next.Set(int(e.Dst))
			activated++
		}
	}
	return processed, activated
}

// AfterIteration implements engine.Program.
func (s *SSSP) AfterIteration(iter int) {
	s.active.CopyFrom(s.next)
}

// Active implements engine.Program.
func (s *SSSP) Active() *engine.Bitmap { return s.active }

// StateBytes implements engine.Program.
func (s *SSSP) StateBytes() int64 {
	return int64(len(s.dist))*4 + s.active.Bytes() + s.next.Bytes()
}

// EdgeCost implements engine.Program: float add + compare.
func (s *SSSP) EdgeCost() float64 { return 0.8 }

// Dist exposes the distances for verification.
func (s *SSSP) Dist() []float32 { return s.dist }

// ReferenceSSSP computes shortest paths with Dijkstra for tests. Weights
// must be non-negative, which the generators guarantee.
func ReferenceSSSP(g *graph.Graph, root graph.VertexID) []float32 {
	g.BuildCSR()
	dist := make([]float32, g.NumV)
	for i := range dist {
		dist[i] = float32(math.Inf(1))
	}
	dist[root] = 0
	pq := &vertexHeap{items: []heapItem{{v: root, d: 0}}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(heapItem)
		if it.d > dist[it.v] {
			continue
		}
		for _, e := range g.OutEdges(it.v) {
			if nd := it.d + e.Weight; nd < dist[e.Dst] {
				dist[e.Dst] = nd
				heap.Push(pq, heapItem{v: e.Dst, d: nd})
			}
		}
	}
	return dist
}

type heapItem struct {
	v graph.VertexID
	d float32
}

type vertexHeap struct{ items []heapItem }

func (h *vertexHeap) Len() int           { return len(h.items) }
func (h *vertexHeap) Less(i, j int) bool { return h.items[i].d < h.items[j].d }
func (h *vertexHeap) Swap(i, j int)      { h.items[i], h.items[j] = h.items[j], h.items[i] }
func (h *vertexHeap) Push(x interface{}) { h.items = append(h.items, x.(heapItem)) }
func (h *vertexHeap) Pop() interface{} {
	old := h.items
	n := len(old)
	it := old[n-1]
	h.items = old[:n-1]
	return it
}

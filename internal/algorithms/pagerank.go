// Package algorithms implements the paper's four benchmark algorithms —
// PageRank, WCC, BFS and SSSP — as engine-neutral edge programs
// (engine.Program), plus sequential reference implementations used by the
// test suite as ground truth.
//
// Per Section 5.1, job parameters are randomised: PageRank's damping factor
// is drawn from [0.1, 0.85], BFS/SSSP roots are random vertices, and WCC's
// iteration budget is a random integer in [1, max].
package algorithms

import (
	"math"
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// PageRank is the classic iterative rank computation. It is
// network-intensive: every vertex is active every iteration (no frontier
// skipping), so it traverses the whole graph structure each pass.
type PageRank struct {
	Damping   float64 // set by Reset from rng if zero
	MaxIters  int     // default 10
	Tolerance float64 // early exit when total delta falls below; 0 means the 1e-7 default, negative disables the exit

	g       *graph.Graph
	rank    []float64
	next    []float64
	contrib []float64 // rank[v]/outDeg[v], refreshed each iteration
	outDeg  []uint32
	active  *engine.Bitmap
	iters   int
	done    bool
	lastErr float64
}

// NewPageRank returns a PageRank program with the given fixed parameters;
// zero values are randomised/defaulted by Reset.
func NewPageRank(damping float64, maxIters int) *PageRank {
	return &PageRank{Damping: damping, MaxIters: maxIters}
}

// Name implements engine.Program.
func (p *PageRank) Name() string { return "pagerank" }

// Reset implements engine.Program.
func (p *PageRank) Reset(g *graph.Graph, rng *rand.Rand) {
	p.g = g
	if p.Damping == 0 {
		// Section 5.1: damping randomly set between 0.1 and 0.85 per job.
		p.Damping = 0.1 + rng.Float64()*0.75
	}
	if p.MaxIters == 0 {
		p.MaxIters = 10
	}
	if p.Tolerance == 0 {
		p.Tolerance = 1e-7
	}
	n := g.NumV
	p.rank = make([]float64, n)
	p.next = make([]float64, n)
	p.contrib = make([]float64, n)
	for i := range p.rank {
		p.rank[i] = 1.0 / float64(n)
	}
	p.outDeg = g.OutDegrees()
	p.active = engine.NewBitmap(n)
	p.active.SetAll()
	p.iters = 0
	p.done = false
}

// BeforeIteration implements engine.Program. It refreshes the per-vertex
// contributions rank[v]/outDeg[v] so the per-edge work is a single add: the
// quotient is the same float64 the per-edge divide would produce (one
// divide per vertex per iteration instead of one per edge), so ranks stay
// bit-identical.
func (p *PageRank) BeforeIteration(iter int) bool {
	if p.done || iter >= p.MaxIters {
		return false
	}
	for i := range p.next {
		p.next[i] = 0
	}
	for i, d := range p.outDeg {
		if d != 0 {
			p.contrib[i] = p.rank[i] / float64(d)
		} else {
			p.contrib[i] = 0
		}
	}
	return true
}

// ProcessEdge implements engine.Program. PageRank never "activates" in the
// frontier sense; it returns false and keeps all vertices active.
func (p *PageRank) ProcessEdge(e graph.Edge) bool {
	d := p.outDeg[e.Src]
	if d == 0 {
		return false
	}
	p.next[e.Dst] += p.contrib[e.Src]
	return false
}

// AfterIteration implements engine.Program.
func (p *PageRank) AfterIteration(iter int) {
	n := float64(p.g.NumV)
	base := (1 - p.Damping) / n
	delta := 0.0
	for i := range p.next {
		nv := base + p.Damping*p.next[i]
		delta += math.Abs(nv - p.rank[i])
		p.rank[i] = nv
	}
	p.lastErr = delta
	p.iters++
	if delta < p.Tolerance {
		p.done = true
	}
}

// ProcessEdges implements engine.BatchProgram: the exact per-edge update
// applied in slice order, with the outDeg/rank/next slices hoisted out of
// the interface-dispatch path. Must stay observably identical to
// ProcessEdge, including float operation order.
func (p *PageRank) ProcessEdges(edges []graph.Edge, active *engine.Bitmap) (processed, activated uint64) {
	allActive := active.Full()
	next, contrib, deg := p.next, p.contrib, p.outDeg
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		processed++
		if deg[e.Src] != 0 {
			next[e.Dst] += contrib[e.Src]
		}
	}
	return processed, 0
}

// Active implements engine.Program.
func (p *PageRank) Active() *engine.Bitmap { return p.active }

// StateBytes implements engine.Program: two float64 arrays plus the bitmap.
func (p *PageRank) StateBytes() int64 {
	return int64(len(p.rank))*16 + p.active.Bytes()
}

// EdgeCost implements engine.Program. PageRank's edge function does a
// floating divide and add: medium cost.
func (p *PageRank) EdgeCost() float64 { return 1.0 }

// Ranks exposes the converged ranks for verification.
func (p *PageRank) Ranks() []float64 { return p.rank }

// Error returns the last iteration's L1 delta.
func (p *PageRank) Error() float64 { return p.lastErr }

// ReferencePageRank computes PageRank by plain power iteration for tests.
func ReferencePageRank(g *graph.Graph, damping float64, iters int) []float64 {
	n := g.NumV
	rank := make([]float64, n)
	next := make([]float64, n)
	for i := range rank {
		rank[i] = 1.0 / float64(n)
	}
	deg := g.OutDegrees()
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for _, e := range g.Edges {
			if deg[e.Src] > 0 {
				next[e.Dst] += rank[e.Src] / float64(deg[e.Src])
			}
		}
		base := (1 - damping) / float64(n)
		for i := range rank {
			rank[i] = base + damping*next[i]
		}
	}
	return rank
}

package algorithms

import (
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// WCC computes weakly connected components by label propagation over
// directed edges treated as undirected: each streamed edge propagates the
// smaller component ID to the other endpoint. Like the paper's WCC it is
// network-intensive early (all vertices active) and narrows as labels
// stabilise.
//
// Note: propagating across a directed edge in both directions requires the
// reverse update too; engines stream each edge once, so ProcessEdge updates
// both endpoints' labels, which is what edge-centric WCC implementations
// (e.g. in GridGraph's example suite) do. Because labels flow against edge
// direction, source-based frontier skipping would lose updates, so WCC keeps
// every vertex active while any label moves — it is "network-intensive" in
// the paper's terms, traversing the majority of the graph each iteration.
type WCC struct {
	MaxIters int // Section 5.1: random in [1, max] when zero

	g      *graph.Graph
	label  []uint32
	active *engine.Bitmap
	moved  bool
}

// NewWCC returns a WCC program with a fixed iteration budget (0 = randomise).
func NewWCC(maxIters int) *WCC { return &WCC{MaxIters: maxIters} }

// Name implements engine.Program.
func (w *WCC) Name() string { return "wcc" }

// Reset implements engine.Program.
func (w *WCC) Reset(g *graph.Graph, rng *rand.Rand) {
	w.g = g
	if w.MaxIters == 0 {
		// Section 5.1: total iterations random in [1, max]; max tracks the
		// graph's diameter bound, clamped for test-scale graphs.
		w.MaxIters = 1 + rng.Intn(20)
	}
	w.label = make([]uint32, g.NumV)
	for i := range w.label {
		w.label[i] = uint32(i)
	}
	w.active = engine.NewBitmap(g.NumV)
	w.active.SetAll()
}

// BeforeIteration implements engine.Program.
func (w *WCC) BeforeIteration(iter int) bool {
	if iter >= w.MaxIters {
		return false
	}
	if iter > 0 && !w.active.Any() {
		return false
	}
	w.moved = false
	return true
}

// ProcessEdge implements engine.Program.
func (w *WCC) ProcessEdge(e graph.Edge) bool {
	activated := false
	if w.label[e.Src] < w.label[e.Dst] {
		w.label[e.Dst] = w.label[e.Src]
		w.moved = true
		activated = true
	} else if w.label[e.Dst] < w.label[e.Src] {
		w.label[e.Src] = w.label[e.Dst]
		w.moved = true
	}
	return activated
}

// AfterIteration implements engine.Program.
func (w *WCC) AfterIteration(iter int) {
	if w.moved {
		w.active.SetAll()
	} else {
		w.active.Reset()
	}
}

// ProcessEdges implements engine.BatchProgram: identical label propagation
// to ProcessEdge, applied in slice order without per-edge interface
// dispatch.
func (w *WCC) ProcessEdges(edges []graph.Edge, active *engine.Bitmap) (processed, activated uint64) {
	allActive := active.Full()
	label := w.label
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		processed++
		if label[e.Src] < label[e.Dst] {
			label[e.Dst] = label[e.Src]
			w.moved = true
			activated++
		} else if label[e.Dst] < label[e.Src] {
			label[e.Src] = label[e.Dst]
			w.moved = true
		}
	}
	return processed, activated
}

// Active implements engine.Program.
func (w *WCC) Active() *engine.Bitmap { return w.active }

// StateBytes implements engine.Program.
func (w *WCC) StateBytes() int64 {
	return int64(len(w.label))*4 + w.active.Bytes()
}

// EdgeCost implements engine.Program: two compares and a store — cheap.
func (w *WCC) EdgeCost() float64 { return 0.6 }

// Labels exposes component labels for verification.
func (w *WCC) Labels() []uint32 { return w.label }

// ReferenceWCC computes weakly connected components with union-find,
// returning the minimum vertex ID of each vertex's component.
func ReferenceWCC(g *graph.Graph) []uint32 {
	parent := make([]uint32, g.NumV)
	for i := range parent {
		parent[i] = uint32(i)
	}
	var find func(x uint32) uint32
	find = func(x uint32) uint32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b uint32) {
		ra, rb := find(a), find(b)
		if ra == rb {
			return
		}
		// Attach the larger root under the smaller so roots are component minima.
		if ra < rb {
			parent[rb] = ra
		} else {
			parent[ra] = rb
		}
	}
	for _, e := range g.Edges {
		union(e.Src, e.Dst)
	}
	out := make([]uint32, g.NumV)
	for i := range out {
		out[i] = find(uint32(i))
	}
	return out
}

package algorithms

import (
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// KCore computes the k-core membership by iterative peeling in the
// edge-streaming model: vertices whose (undirected) degree among remaining
// vertices falls below K are removed, repeatedly, until a fixed point. The
// result marks the vertices of the k-core subgraph.
//
// Peeling is frontier-like in reverse: early iterations process the whole
// graph, later ones only re-count neighbourhoods of surviving vertices, so
// its access pattern sits between PageRank's full scans and BFS's sparse
// frontiers — a useful third profile for the synchronization manager.
type KCore struct {
	K int

	g       *graph.Graph
	deg     []int32
	removed []bool
	active  *engine.Bitmap
	changed bool
}

// NewKCore returns a k-core program; k of 0 draws from [2, 8] at Reset.
func NewKCore(k int) *KCore { return &KCore{K: k} }

// Name implements engine.Program.
func (kc *KCore) Name() string { return "kcore" }

// Reset implements engine.Program.
func (kc *KCore) Reset(g *graph.Graph, rng *rand.Rand) {
	kc.g = g
	if kc.K == 0 {
		kc.K = 2 + rng.Intn(7)
	}
	kc.deg = make([]int32, g.NumV)
	kc.removed = make([]bool, g.NumV)
	kc.active = engine.NewBitmap(g.NumV)
	kc.active.SetAll()
}

// BeforeIteration implements engine.Program. Iteration 0 counts degrees;
// later iterations re-count after peeling.
func (kc *KCore) BeforeIteration(iter int) bool {
	if iter > 0 && !kc.changed {
		return false
	}
	for i := range kc.deg {
		kc.deg[i] = 0
	}
	kc.changed = false
	return true
}

// ProcessEdge implements engine.Program: count degrees among survivors,
// treating edges as undirected.
func (kc *KCore) ProcessEdge(e graph.Edge) bool {
	if kc.removed[e.Src] || kc.removed[e.Dst] {
		return false
	}
	kc.deg[e.Src]++
	kc.deg[e.Dst]++
	return false
}

// ProcessEdges implements engine.BatchProgram: the exact per-edge degree
// count applied in slice order, with the removed/deg slices hoisted out of
// the interface-dispatch path. Must stay observably identical to
// ProcessEdge and allocates nothing.
func (kc *KCore) ProcessEdges(edges []graph.Edge, active *engine.Bitmap) (processed, activated uint64) {
	allActive := active.Full()
	removed := kc.removed
	deg := kc.deg
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		processed++
		if removed[e.Src] || removed[e.Dst] {
			continue
		}
		deg[e.Src]++
		deg[e.Dst]++
	}
	return processed, 0
}

// AfterIteration implements engine.Program: peel vertices below K.
func (kc *KCore) AfterIteration(iter int) {
	for v := range kc.deg {
		if !kc.removed[v] && kc.deg[v] < int32(kc.K) {
			kc.removed[v] = true
			kc.changed = true
		}
	}
	// Removed vertices stop being active sources; survivors stay active so
	// their edges are re-counted next round.
	for v := range kc.removed {
		if kc.removed[v] {
			kc.active.Clear(v)
		} else {
			kc.active.Set(v)
		}
	}
}

// Active implements engine.Program.
func (kc *KCore) Active() *engine.Bitmap { return kc.active }

// StateBytes implements engine.Program.
func (kc *KCore) StateBytes() int64 {
	return int64(len(kc.deg))*5 + kc.active.Bytes()
}

// EdgeCost implements engine.Program.
func (kc *KCore) EdgeCost() float64 { return 0.7 }

// InCore reports whether v survives in the k-core.
func (kc *KCore) InCore(v graph.VertexID) bool { return !kc.removed[v] }

// Removed exposes the per-vertex removal marks (true = peeled out of the
// k-core), for whole-output equality checks.
func (kc *KCore) Removed() []bool { return kc.removed }

// CoreSize returns the number of vertices in the k-core.
func (kc *KCore) CoreSize() int {
	n := 0
	for _, r := range kc.removed {
		if !r {
			n++
		}
	}
	return n
}

// ReferenceKCore peels with an explicit queue over an undirected adjacency
// for tests.
func ReferenceKCore(g *graph.Graph, k int) []bool {
	deg := make([]int, g.NumV)
	adj := make([][]graph.VertexID, g.NumV)
	for _, e := range g.Edges {
		adj[e.Src] = append(adj[e.Src], e.Dst)
		adj[e.Dst] = append(adj[e.Dst], e.Src)
		deg[e.Src]++
		deg[e.Dst]++
	}
	removed := make([]bool, g.NumV)
	queue := []graph.VertexID{}
	for v := 0; v < g.NumV; v++ {
		if deg[v] < k {
			removed[v] = true
			queue = append(queue, graph.VertexID(v))
		}
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range adj[v] {
			if removed[u] {
				continue
			}
			deg[u]--
			if deg[u] < k {
				removed[u] = true
				queue = append(queue, u)
			}
		}
	}
	inCore := make([]bool, g.NumV)
	for v := range inCore {
		inCore[v] = !removed[v]
	}
	return inCore
}

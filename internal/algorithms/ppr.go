package algorithms

import (
	"math"
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// PersonalizedPageRank computes PageRank personalised to a source vertex:
// the teleport mass returns to Source instead of spreading uniformly. The
// paper's introduction motivates exactly this family — "variants of
// PageRank used by various applications running on the same underlying
// graph" — which is why a platform ends up with many concurrent
// almost-identical jobs whose data accesses GraphM can share.
type PersonalizedPageRank struct {
	Source    graph.VertexID
	SourceSet bool
	Damping   float64
	MaxIters  int
	Tolerance float64

	g       *graph.Graph
	rank    []float64
	next    []float64
	contrib []float64 // rank[v]/outDeg[v] (0 for sinks), refreshed each iteration
	outDeg  []uint32
	active  *engine.Bitmap
	done    bool
}

// NewPersonalizedPageRank returns a PPR program rooted at source.
func NewPersonalizedPageRank(source graph.VertexID, damping float64, maxIters int) *PersonalizedPageRank {
	return &PersonalizedPageRank{Source: source, SourceSet: true, Damping: damping, MaxIters: maxIters}
}

// NewRandomPPR returns a PPR whose source is drawn by Reset.
func NewRandomPPR() *PersonalizedPageRank { return &PersonalizedPageRank{} }

// Name implements engine.Program.
func (p *PersonalizedPageRank) Name() string { return "ppr" }

// Reset implements engine.Program.
func (p *PersonalizedPageRank) Reset(g *graph.Graph, rng *rand.Rand) {
	p.g = g
	if !p.SourceSet {
		p.Source = graph.VertexID(rng.Intn(g.NumV))
	}
	if p.Damping == 0 {
		p.Damping = 0.85
	}
	if p.MaxIters == 0 {
		p.MaxIters = 10
	}
	if p.Tolerance == 0 {
		p.Tolerance = 1e-8
	}
	p.rank = make([]float64, g.NumV)
	p.next = make([]float64, g.NumV)
	p.contrib = make([]float64, g.NumV)
	p.rank[p.Source] = 1
	p.outDeg = g.OutDegrees()
	p.active = engine.NewBitmap(g.NumV)
	p.active.SetAll()
	p.done = false
}

// BeforeIteration implements engine.Program. Like PageRank, it refreshes
// per-vertex contributions so the per-edge work is one add; the quotient is
// the identical float64 the per-edge divide produced, so ranks are
// unchanged bit for bit.
func (p *PersonalizedPageRank) BeforeIteration(iter int) bool {
	if p.done || iter >= p.MaxIters {
		return false
	}
	for i := range p.next {
		p.next[i] = 0
	}
	for i, d := range p.outDeg {
		if d != 0 {
			p.contrib[i] = p.rank[i] / float64(d)
		} else {
			p.contrib[i] = 0
		}
	}
	return true
}

// ProcessEdge implements engine.Program.
func (p *PersonalizedPageRank) ProcessEdge(e graph.Edge) bool {
	d := p.outDeg[e.Src]
	if d == 0 || p.rank[e.Src] == 0 {
		return false
	}
	p.next[e.Dst] += p.contrib[e.Src]
	return false
}

// ProcessEdges implements engine.BatchProgram: the exact per-edge update
// applied in slice order, with the outDeg/rank/next slices hoisted out of
// the interface-dispatch path. Must stay observably identical to
// ProcessEdge, including float operation order, and allocates nothing.
func (p *PersonalizedPageRank) ProcessEdges(edges []graph.Edge, active *engine.Bitmap) (processed, activated uint64) {
	allActive := active.Full()
	rank, next, contrib, deg := p.rank, p.next, p.contrib, p.outDeg
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		processed++
		if deg[e.Src] == 0 || rank[e.Src] == 0 {
			continue
		}
		next[e.Dst] += contrib[e.Src]
	}
	return processed, 0
}

// AfterIteration implements engine.Program.
func (p *PersonalizedPageRank) AfterIteration(iter int) {
	delta := 0.0
	for i := range p.next {
		nv := p.Damping * p.next[i]
		if graph.VertexID(i) == p.Source {
			nv += 1 - p.Damping
		}
		delta += math.Abs(nv - p.rank[i])
		p.rank[i] = nv
	}
	if delta < p.Tolerance {
		p.done = true
	}
}

// Active implements engine.Program.
func (p *PersonalizedPageRank) Active() *engine.Bitmap { return p.active }

// StateBytes implements engine.Program.
func (p *PersonalizedPageRank) StateBytes() int64 {
	return int64(len(p.rank))*16 + p.active.Bytes()
}

// EdgeCost implements engine.Program.
func (p *PersonalizedPageRank) EdgeCost() float64 { return 1.0 }

// Ranks exposes the personalised ranks.
func (p *PersonalizedPageRank) Ranks() []float64 { return p.rank }

// ReferencePPR computes personalised PageRank by power iteration for tests.
func ReferencePPR(g *graph.Graph, source graph.VertexID, damping float64, iters int) []float64 {
	n := g.NumV
	rank := make([]float64, n)
	next := make([]float64, n)
	rank[source] = 1
	deg := g.OutDegrees()
	for it := 0; it < iters; it++ {
		for i := range next {
			next[i] = 0
		}
		for _, e := range g.Edges {
			if deg[e.Src] > 0 && rank[e.Src] != 0 {
				next[e.Dst] += rank[e.Src] / float64(deg[e.Src])
			}
		}
		for i := range rank {
			rank[i] = damping * next[i]
			if graph.VertexID(i) == source {
				rank[i] += 1 - damping
			}
		}
	}
	return rank
}

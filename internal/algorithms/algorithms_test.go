package algorithms

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"graphm/internal/graph"
)

// runProgram drives a Program over the whole edge list per iteration,
// honouring the active bitmap — the minimal faithful engine.
func runProgram(t *testing.T, prog interface {
	Reset(*graph.Graph, *rand.Rand)
	BeforeIteration(int) bool
	ProcessEdge(graph.Edge) bool
	AfterIteration(int)
}, g *graph.Graph, active func() interface{ Has(int) bool }) {
	t.Helper()
	prog.Reset(g, rand.New(rand.NewSource(1)))
	for iter := 0; prog.BeforeIteration(iter); iter++ {
		act := active()
		for _, e := range g.Edges {
			if act.Has(int(e.Src)) {
				prog.ProcessEdge(e)
			}
		}
		prog.AfterIteration(iter)
		if iter > 10000 {
			t.Fatal("program did not terminate")
		}
	}
}

func TestPageRankMatchesReference(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("pr", 512, 4000, 5))
	if err != nil {
		t.Fatal(err)
	}
	pr := NewPageRank(0.85, 10)
	pr.Tolerance = 1e-12 // force all 10 iterations
	runProgram(t, pr, g, func() interface{ Has(int) bool } { return pr.Active() })
	want := ReferencePageRank(g, 0.85, 10)
	for v := range want {
		if math.Abs(pr.Ranks()[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], want[v])
		}
	}
}

func TestPageRankRanksSumNearOne(t *testing.T) {
	// With damping d, the rank vector sums to ~1 (up to sink leakage of
	// dangling vertices, which only removes mass). Sum must stay in (0, 1].
	g, _ := graph.GenerateUniform("sum", 300, 2400, 9)
	pr := NewPageRank(0.85, 15)
	pr.Tolerance = 1e-12
	runProgram(t, pr, g, func() interface{ Has(int) bool } { return pr.Active() })
	sum := 0.0
	for _, r := range pr.Ranks() {
		sum += r
	}
	if sum <= 0 || sum > 1.0001 {
		t.Fatalf("rank sum = %v, want (0, 1]", sum)
	}
}

func TestPageRankRandomDamping(t *testing.T) {
	pr := NewPageRank(0, 5)
	g := graph.GenerateChain("c", 4)
	pr.Reset(g, rand.New(rand.NewSource(3)))
	if pr.Damping < 0.1 || pr.Damping > 0.85 {
		t.Fatalf("damping %v outside [0.1, 0.85]", pr.Damping)
	}
}

func TestWCCMatchesUnionFind(t *testing.T) {
	g, err := graph.GenerateUniform("wcc", 400, 900, 11)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWCC(1000) // enough iterations to converge
	runProgram(t, w, g, func() interface{ Has(int) bool } { return w.Active() })
	want := ReferenceWCC(g)
	for v := range want {
		if w.Labels()[v] != want[v] {
			t.Fatalf("label[%d] = %d, want %d", v, w.Labels()[v], want[v])
		}
	}
}

func TestWCCPropertyRandomGraphs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(100)
		e := rng.Intn(4 * n)
		g, err := graph.GenerateUniform("q", n, e, seed)
		if err != nil {
			return false
		}
		w := NewWCC(10000)
		w.Reset(g, rng)
		for iter := 0; w.BeforeIteration(iter); iter++ {
			for _, ed := range g.Edges {
				if w.Active().Has(int(ed.Src)) {
					w.ProcessEdge(ed)
				}
			}
			w.AfterIteration(iter)
		}
		want := ReferenceWCC(g)
		for v := range want {
			if w.Labels()[v] != want[v] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestBFSMatchesReference(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("bfs", 512, 3000, 6))
	if err != nil {
		t.Fatal(err)
	}
	b := NewBFS(0)
	runProgram(t, b, g, func() interface{ Has(int) bool } { return b.Active() })
	want := ReferenceBFS(g, 0)
	for v := range want {
		if b.Dist()[v] != want[v] {
			t.Fatalf("dist[%d] = %d, want %d", v, b.Dist()[v], want[v])
		}
	}
}

func TestBFSChain(t *testing.T) {
	g := graph.GenerateChain("c", 6)
	b := NewBFS(0)
	runProgram(t, b, g, func() interface{ Has(int) bool } { return b.Active() })
	for v := 0; v < 6; v++ {
		if b.Dist()[v] != uint32(v) {
			t.Fatalf("dist[%d] = %d, want %d", v, b.Dist()[v], v)
		}
	}
}

func TestBFSUnreachableStaysUnreached(t *testing.T) {
	g := graph.MustNew("iso", 3, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}})
	b := NewBFS(0)
	runProgram(t, b, g, func() interface{ Has(int) bool } { return b.Active() })
	if b.Dist()[2] != Unreached {
		t.Fatalf("isolated vertex reached: dist=%d", b.Dist()[2])
	}
}

func TestSSSPMatchesDijkstra(t *testing.T) {
	g, err := graph.GenerateUniform("sssp", 300, 2500, 8)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSSSP(0)
	runProgram(t, s, g, func() interface{ Has(int) bool } { return s.Active() })
	want := ReferenceSSSP(g, 0)
	for v := range want {
		got := s.Dist()[v]
		if math.IsInf(float64(want[v]), 1) != math.IsInf(float64(got), 1) {
			t.Fatalf("dist[%d] reachability mismatch: %v vs %v", v, got, want[v])
		}
		if !math.IsInf(float64(want[v]), 1) && math.Abs(float64(got-want[v])) > 1e-3 {
			t.Fatalf("dist[%d] = %v, want %v", v, got, want[v])
		}
	}
}

func TestSSSPPropertyTriangleInequality(t *testing.T) {
	// Property: for every edge (u,v,w), dist[v] <= dist[u] + w after
	// convergence.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(80)
		g, err := graph.GenerateUniform("q", n, 3*n, seed)
		if err != nil {
			return false
		}
		s := NewSSSP(graph.VertexID(rng.Intn(n)))
		s.Reset(g, rng)
		for iter := 0; s.BeforeIteration(iter); iter++ {
			for _, e := range g.Edges {
				if s.Active().Has(int(e.Src)) {
					s.ProcessEdge(e)
				}
			}
			s.AfterIteration(iter)
		}
		for _, e := range g.Edges {
			du, dv := s.Dist()[e.Src], s.Dist()[e.Dst]
			if !math.IsInf(float64(du), 1) && dv > du+e.Weight+1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomRoots(t *testing.T) {
	g, _ := graph.GenerateUniform("r", 100, 200, 2)
	b := NewRandomBFS()
	b.Reset(g, rand.New(rand.NewSource(4)))
	if int(b.Root) >= g.NumV {
		t.Fatalf("root %d out of range", b.Root)
	}
	s := NewRandomSSSP()
	s.Reset(g, rand.New(rand.NewSource(4)))
	if int(s.Root) >= g.NumV {
		t.Fatalf("root %d out of range", s.Root)
	}
}

func TestEdgeCostsDistinct(t *testing.T) {
	// The profiling phase relies on jobs having skewed computational loads;
	// the four algorithms must not all report identical costs.
	costs := map[string]float64{
		"pr":   NewPageRank(0.85, 1).EdgeCost(),
		"wcc":  NewWCC(1).EdgeCost(),
		"bfs":  NewBFS(0).EdgeCost(),
		"sssp": NewSSSP(0).EdgeCost(),
	}
	seen := map[float64]bool{}
	distinct := 0
	for _, c := range costs {
		if !seen[c] {
			seen[c] = true
			distinct++
		}
	}
	if distinct < 3 {
		t.Fatalf("edge costs insufficiently skewed: %v", costs)
	}
}

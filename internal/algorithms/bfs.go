package algorithms

import (
	"math/rand"

	"graphm/internal/engine"
	"graphm/internal/graph"
)

// Unreached marks a vertex not yet reached by BFS/SSSP.
const Unreached = ^uint32(0)

// BFS computes hop distances from a root with frontier-based traversal. It
// starts with a single active vertex and activates more as the frontier
// expands — the paper's canonical example of a job that skips most of the
// graph early on (Section 3.4.1, Section 4).
type BFS struct {
	Root graph.VertexID // randomised by Reset when RootSet is false
	// RootSet pins Root instead of randomising it (Figure 17 sweeps roots).
	RootSet bool

	g      *graph.Graph
	dist   []uint32
	active *engine.Bitmap
	next   *engine.Bitmap
}

// NewBFS returns a BFS from a fixed root.
func NewBFS(root graph.VertexID) *BFS { return &BFS{Root: root, RootSet: true} }

// NewRandomBFS returns a BFS whose root is drawn by Reset.
func NewRandomBFS() *BFS { return &BFS{} }

// Name implements engine.Program.
func (b *BFS) Name() string { return "bfs" }

// Reset implements engine.Program.
func (b *BFS) Reset(g *graph.Graph, rng *rand.Rand) {
	b.g = g
	if !b.RootSet {
		b.Root = graph.VertexID(rng.Intn(g.NumV))
	}
	b.dist = make([]uint32, g.NumV)
	for i := range b.dist {
		b.dist[i] = Unreached
	}
	b.dist[b.Root] = 0
	b.active = engine.NewBitmap(g.NumV)
	b.active.Set(int(b.Root))
	b.next = engine.NewBitmap(g.NumV)
}

// BeforeIteration implements engine.Program.
func (b *BFS) BeforeIteration(iter int) bool {
	if !b.active.Any() {
		return false
	}
	b.next.Reset()
	return true
}

// ProcessEdge implements engine.Program.
func (b *BFS) ProcessEdge(e graph.Edge) bool {
	if b.dist[e.Dst] == Unreached {
		b.dist[e.Dst] = b.dist[e.Src] + 1
		b.next.Set(int(e.Dst))
		return true
	}
	return false
}

// ProcessEdges implements engine.BatchProgram: the exact per-edge relaxation
// applied in slice order, with the dist slice and frontier bitmap hoisted
// out of the interface-dispatch path. Must stay observably identical to
// ProcessEdge, including the activation count, and allocates nothing.
func (b *BFS) ProcessEdges(edges []graph.Edge, active *engine.Bitmap) (processed, activated uint64) {
	allActive := active.Full()
	dist := b.dist
	next := b.next
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		processed++
		if dist[e.Dst] == Unreached {
			dist[e.Dst] = dist[e.Src] + 1
			next.Set(int(e.Dst))
			activated++
		}
	}
	return processed, activated
}

// AfterIteration implements engine.Program.
func (b *BFS) AfterIteration(iter int) {
	b.active.CopyFrom(b.next)
}

// Active implements engine.Program.
func (b *BFS) Active() *engine.Bitmap { return b.active }

// StateBytes implements engine.Program.
func (b *BFS) StateBytes() int64 {
	return int64(len(b.dist))*4 + b.active.Bytes() + b.next.Bytes()
}

// EdgeCost implements engine.Program: one compare, very cheap.
func (b *BFS) EdgeCost() float64 { return 0.5 }

// Dist exposes hop distances for verification.
func (b *BFS) Dist() []uint32 { return b.dist }

// ReferenceBFS computes hop distances with a queue for tests.
func ReferenceBFS(g *graph.Graph, root graph.VertexID) []uint32 {
	g.BuildCSR()
	dist := make([]uint32, g.NumV)
	for i := range dist {
		dist[i] = Unreached
	}
	dist[root] = 0
	queue := []graph.VertexID{root}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.OutEdges(v) {
			if dist[e.Dst] == Unreached {
				dist[e.Dst] = dist[v] + 1
				queue = append(queue, e.Dst)
			}
		}
	}
	return dist
}

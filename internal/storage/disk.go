// Package storage simulates the two-level storage hierarchy under the graph
// engines: a "disk" of named partition blobs whose reads are metered, and a
// bounded main-memory buffer pool with LRU eviction and ref-counted shared
// buffers.
//
// The paper's machine has 32 GB of RAM over a 1 TB disk; graphs either fit in
// memory (LiveJ, Orkut, Twitter) or must stream from disk (UK-union,
// Clueweb12). Reproducing that on arbitrary hardware requires controlling the
// memory budget explicitly, which Go cannot do against the real OS page
// cache, so the hierarchy is modelled: every byte that crosses the disk →
// memory boundary is counted (Figure 12), and resident bytes are tracked for
// the memory-usage comparison (Figure 11).
package storage

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"
)

// Disk is a metered blob store keyed by partition name, with an optional
// OS-page-cache model: cached reads cost no I/O, exactly as the paper's
// in-memory graphs are "cached in the memory via memory mapping and only
// need to be read from disks once" (Figure 12 discussion) even when every
// job keeps its own buffer copy.
type Disk struct {
	mu    sync.Mutex
	blobs map[string][]byte

	// transfer overrides the metered transfer size of a blob (WriteSized):
	// a delta/varint-compressed on-disk chunk moves fewer bytes across the
	// disk→memory boundary than its decoded in-memory form, which is exactly
	// the loads/IO improvement the compressed chunk store buys. Absent
	// entries meter at raw length.
	transfer map[string]int64

	// page cache: LRU over blob names, bounded by cacheCap bytes minus the
	// RAM currently reserved by process buffers (SetReserved): page cache
	// and application memory share the same physical RAM, so concurrent
	// jobs holding many buffer copies squeeze the cache — the mechanism
	// that inflates GridGraph-C's out-of-core I/O in Figure 12.
	cacheCap  int64
	reserved  int64
	cacheUsed int64
	cacheLRU  *list.List // of string (blob name), front = most recent
	cachePos  map[string]*list.Element

	everRead map[string]bool

	readBytes  atomic.Uint64
	writeBytes atomic.Uint64
	readOps    atomic.Uint64

	// SeekPenalty models interleaved sequential streams on a spinning disk:
	// k concurrent streams degrade effective bandwidth by 1+SeekPenalty*(k-1)
	// (head seeks between streams). The paper's GridGraph-C suffers exactly
	// this on out-of-core graphs, where it falls behind even sequential
	// execution.
	SeekPenalty float64
	streams     atomic.Int64
}

// StartStream registers a concurrent reader; call the returned function
// when the reader's streaming ends.
func (d *Disk) StartStream() func() {
	d.streams.Add(1)
	return func() { d.streams.Add(-1) }
}

// Contention returns the current bandwidth-degradation factor (>= 1).
func (d *Disk) Contention() float64 {
	k := d.streams.Load()
	if k <= 1 {
		return 1
	}
	p := d.SeekPenalty
	if p == 0 {
		p = 0.3
	}
	return 1 + p*float64(k-1)
}

// NewDisk returns an empty disk with no page cache.
func NewDisk() *Disk {
	return &Disk{
		blobs:    make(map[string][]byte),
		transfer: make(map[string]int64),
		cacheLRU: list.New(),
		cachePos: make(map[string]*list.Element),
		everRead: make(map[string]bool),
	}
}

// SetPageCache bounds the simulated OS page cache; zero disables it.
func (d *Disk) SetPageCache(capacity int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cacheCap = capacity
	d.evictCacheLocked()
}

// SetReserved tells the page cache how much RAM application buffers are
// currently using; the cache shrinks to what is left.
func (d *Disk) SetReserved(bytes int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if bytes < 0 {
		bytes = 0
	}
	d.reserved = bytes
	d.evictCacheLocked()
}

func (d *Disk) effectiveCapLocked() int64 {
	c := d.cacheCap - d.reserved
	if c < 0 {
		return 0
	}
	return c
}

// DropCaches empties the page cache (like /proc/sys/vm/drop_caches),
// used between benchmark runs for independent measurements.
func (d *Disk) DropCaches() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cacheLRU.Init()
	d.cachePos = make(map[string]*list.Element)
	d.cacheUsed = 0
	d.everRead = make(map[string]bool)
}

// Write stores blob under name, replacing any previous content and
// invalidating its cache entry.
func (d *Disk) Write(name string, blob []byte) {
	d.writeSized(name, blob, int64(len(blob)), false)
}

// WriteSized stores blob under name but meters reads and cache occupancy at
// transfer bytes — the on-disk (compressed) representation size. The blob
// itself stays the decoded form callers consume; the simulator only prices
// the physical transfer differently.
func (d *Disk) WriteSized(name string, blob []byte, transfer int64) {
	if transfer < 0 {
		transfer = 0
	}
	d.writeSized(name, blob, transfer, true)
}

func (d *Disk) writeSized(name string, blob []byte, transfer int64, sized bool) {
	d.mu.Lock()
	// Invalidate at the size the cache entry was admitted with (the OLD
	// blob's transfer size), not the new blob's length: subtracting the new
	// length corrupted cacheUsed whenever a rewrite changed the size.
	if e, ok := d.cachePos[name]; ok {
		d.cacheUsed -= d.transferLocked(name)
		d.cacheLRU.Remove(e)
		delete(d.cachePos, name)
	}
	d.blobs[name] = blob
	if sized {
		d.transfer[name] = transfer
	} else {
		delete(d.transfer, name)
	}
	d.mu.Unlock()
	d.writeBytes.Add(uint64(transfer))
}

// transferLocked returns the metered transfer size of name.
func (d *Disk) transferLocked(name string) int64 {
	if t, ok := d.transfer[name]; ok {
		return t
	}
	return int64(len(d.blobs[name]))
}

// TransferSize returns the metered transfer size of name (the compressed
// on-disk size for WriteSized blobs, the raw length otherwise).
func (d *Disk) TransferSize(name string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.transferLocked(name)
}

// Read returns the blob under name, metering the transfer unconditionally
// (a raw, uncached read).
func (d *Disk) Read(name string) ([]byte, error) {
	d.mu.Lock()
	blob, ok := d.blobs[name]
	t := d.transferLocked(name)
	d.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("storage: no blob %q", name)
	}
	d.readBytes.Add(uint64(t))
	d.readOps.Add(1)
	return blob, nil
}

// IOKind classifies the physical cost of a load.
type IOKind int

const (
	// IONone: served without a physical transfer (resident or page cache).
	IONone IOKind = iota
	// IOCold: first-ever physical read of the blob — a compulsory,
	// sequential transfer that interleaved readers share amicably.
	IOCold
	// IOReread: a capacity re-read after page-cache eviction; concurrent
	// re-readers pay the seek-contention factor.
	IOReread
)

// ReadCached returns the blob under name through the page cache, reporting
// the physical-transfer class. Without a configured cache every read is
// physical.
func (d *Disk) ReadCached(name string) (blob []byte, kind IOKind, err error) {
	d.mu.Lock()
	blob, ok := d.blobs[name]
	if !ok {
		d.mu.Unlock()
		return nil, IONone, fmt.Errorf("storage: no blob %q", name)
	}
	t := d.transferLocked(name)
	if d.cacheCap > 0 {
		if e, hit := d.cachePos[name]; hit {
			d.cacheLRU.MoveToFront(e)
			d.mu.Unlock()
			return blob, IONone, nil
		}
		d.cachePos[name] = d.cacheLRU.PushFront(name)
		d.cacheUsed += t
		d.evictCacheLocked()
	}
	kind = IOCold
	if d.everRead[name] {
		kind = IOReread
	} else {
		d.everRead[name] = true
	}
	d.mu.Unlock()
	d.readBytes.Add(uint64(t))
	d.readOps.Add(1)
	return blob, kind, nil
}

// evictCacheLocked trims the page cache LRU-first to the effective capacity.
func (d *Disk) evictCacheLocked() {
	for d.cacheCap > 0 && d.cacheUsed > d.effectiveCapLocked() && d.cacheLRU.Len() > 0 {
		e := d.cacheLRU.Back()
		name := e.Value.(string)
		d.cacheLRU.Remove(e)
		delete(d.cachePos, name)
		d.cacheUsed -= d.transferLocked(name)
	}
}

// Size returns the stored size of name, or 0 if absent.
func (d *Disk) Size(name string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return int64(len(d.blobs[name]))
}

// ReadBytes returns the total bytes transferred by Read calls — the I/O
// overhead metric of Figure 12.
func (d *Disk) ReadBytes() uint64 { return d.readBytes.Load() }

// ReadOps returns the number of Read calls.
func (d *Disk) ReadOps() uint64 { return d.readOps.Load() }

// WriteBytes returns total bytes written.
func (d *Disk) WriteBytes() uint64 { return d.writeBytes.Load() }

// ResetCounters zeroes the I/O meters, keeping the blobs.
func (d *Disk) ResetCounters() {
	d.readBytes.Store(0)
	d.writeBytes.Store(0)
	d.readOps.Store(0)
}

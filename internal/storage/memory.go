package storage

import (
	"container/list"
	"fmt"
	"sync"
)

// Memory is a bounded buffer pool over a Disk. Buffers are ref-counted: a
// buffer with live references (pinned) cannot be evicted; unpinned buffers
// are evicted LRU-first when a new load would exceed the budget.
//
// GraphM's sharing controller pins one buffer per partition and hands the
// same buffer to every concurrent job; the baseline (-S/-C) execution modes
// load one buffer *per job*, reproducing the redundant copies of Figure 1(a).
type Memory struct {
	disk   *Disk
	budget int64

	mu       sync.Mutex
	resident map[string]*Buffer
	lru      *list.List // of *Buffer, front = most recent
	used     int64
	peak     int64
	// jobUsage tracks additional per-job bytes (job-specific data) registered
	// via ReserveJobData, included in usage accounting.
	jobBytes int64

	faults     uint64 // loads that required a disk read
	rehits     uint64 // loads satisfied by a resident buffer
	evicted    uint64
	overcommit uint64 // loads admitted past the budget (all victims pinned)

	nextAddr uint64 // simulated physical address allocator
}

// AllocAddr reserves size bytes of simulated physical address space and
// returns the 64-byte-aligned base. Jobs use it for their job-specific data
// regions; Load uses it for buffer placement.
func (m *Memory) AllocAddr(size int64) uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.allocAddrLocked(size)
}

func (m *Memory) allocAddrLocked(size int64) uint64 {
	const align = 64
	m.nextAddr = (m.nextAddr + align - 1) &^ (align - 1)
	base := m.nextAddr
	m.nextAddr += uint64(size)
	return base
}

// Buffer is a resident copy of a disk blob.
type Buffer struct {
	Key  string
	Data []byte

	// BaseAddr is the buffer's base address in the simulated physical
	// address space; the LLC model indexes cache sets with it. A fresh load
	// gets a fresh address (a new physical allocation); a resident re-use
	// keeps its address, which is how shared buffers produce LLC hits
	// across jobs while per-job copies do not.
	BaseAddr uint64

	refs int
	elem *list.Element
	mem  *Memory
}

// NewMemory creates a buffer pool with the given budget in bytes over disk.
func NewMemory(disk *Disk, budget int64) *Memory {
	return &Memory{
		disk:     disk,
		budget:   budget,
		resident: make(map[string]*Buffer),
		lru:      list.New(),
	}
}

// Budget returns the configured capacity in bytes.
func (m *Memory) Budget() int64 { return m.budget }

// Disk returns the backing disk (for stream registration and metering).
func (m *Memory) Disk() *Disk { return m.disk }

// Load returns a pinned buffer for key, reading from disk if it is not
// resident; io classifies any physical transfer (cold load vs contended
// re-read) so callers can attribute simulated I/O time. Callers must Release the buffer. If key
// identifies a distinct per-job copy (baseline modes), pass a distinct key
// such as "p3#job7".
func (m *Memory) Load(key, diskName string) (buf *Buffer, io IOKind, err error) {
	m.mu.Lock()
	if buf, ok := m.resident[key]; ok {
		buf.refs++
		m.touchLocked(buf)
		m.rehits++
		m.mu.Unlock()
		return buf, IONone, nil
	}
	m.mu.Unlock()

	// Read outside the lock — through the disk's page cache, so a blob
	// another job already pulled in costs no physical I/O even when this
	// job keeps a private buffer copy. Double-check residence on re-acquire.
	blob, kind, err := m.disk.ReadCached(diskName)
	if err != nil {
		return nil, IONone, err
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if buf, ok := m.resident[key]; ok {
		buf.refs++
		m.touchLocked(buf)
		m.rehits++
		return buf, IONone, nil
	}
	need := int64(len(blob))
	m.evictForLocked(need)
	buf = &Buffer{Key: key, Data: blob, refs: 1, mem: m, BaseAddr: m.allocAddrLocked(need)}
	buf.elem = m.lru.PushFront(buf)
	m.resident[key] = buf
	m.used += need
	if m.used+m.jobBytes > m.peak {
		m.peak = m.used + m.jobBytes
	}
	m.faults++
	m.disk.SetReserved(m.used + m.jobBytes)
	return buf, kind, nil
}

// Acquire pins an already-resident buffer without disk fallback; ok reports
// whether it was resident.
func (m *Memory) Acquire(key string) (*Buffer, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	buf, ok := m.resident[key]
	if !ok {
		return nil, false
	}
	buf.refs++
	m.touchLocked(buf)
	m.rehits++
	return buf, true
}

// Release unpins a buffer obtained from Load or Acquire.
func (b *Buffer) Release() {
	m := b.mem
	m.mu.Lock()
	defer m.mu.Unlock()
	if b.refs <= 0 {
		panic("storage: Release of unpinned buffer " + b.Key)
	}
	b.refs--
}

// Drop removes key from memory if resident and unpinned.
func (m *Memory) Drop(key string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if buf, ok := m.resident[key]; ok && buf.refs == 0 {
		m.removeLocked(buf)
	}
}

// ReserveJobData accounts bytes of job-specific data (rank arrays, frontiers)
// against the memory budget. Negative deltas release the reservation;
// releasing more than was reserved is a caller accounting bug and panics
// (silently clamping hid the bug while corrupting Used/Peak).
func (m *Memory) ReserveJobData(delta int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.jobBytes+delta < 0 {
		panic(fmt.Sprintf("storage: ReserveJobData(%d) released below zero (reserved %d)", delta, m.jobBytes))
	}
	m.jobBytes += delta
	if m.used+m.jobBytes > m.peak {
		m.peak = m.used + m.jobBytes
	}
	m.disk.SetReserved(m.used + m.jobBytes)
}

// Used returns bytes currently resident (buffers + job data).
func (m *Memory) Used() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.used + m.jobBytes
}

// Peak returns the high-water mark of Used — the metric of Figure 11.
func (m *Memory) Peak() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.peak
}

// Faults returns loads that hit disk; Rehits returns loads served from
// residence; Evictions returns evicted buffer count.
func (m *Memory) Faults() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.faults
}

// Rehits returns the number of loads satisfied without disk I/O.
func (m *Memory) Rehits() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rehits
}

// Evictions returns the number of buffers evicted under pressure.
func (m *Memory) Evictions() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.evicted
}

// Overcommits returns the number of loads admitted past the budget because
// every eviction candidate was pinned.
func (m *Memory) Overcommits() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.overcommit
}

func (m *Memory) touchLocked(buf *Buffer) {
	m.lru.MoveToFront(buf.elem)
}

func (m *Memory) removeLocked(buf *Buffer) {
	m.lru.Remove(buf.elem)
	delete(m.resident, buf.Key)
	m.used -= int64(len(buf.Data))
	m.disk.SetReserved(m.used + m.jobBytes)
}

// evictForLocked makes room for need bytes, evicting unpinned buffers
// LRU-first. When every remaining resident buffer is pinned the load is
// admitted anyway — a real OS cannot refuse memory to running processes, it
// swaps — and the overcommit counter records the pressure event (the
// paper's GridGraph-C suffers exactly this contention with many concurrent
// jobs pinning partition copies).
func (m *Memory) evictForLocked(need int64) {
	if need > m.budget {
		// A single partition larger than memory still streams through: we
		// admit it but it will be the immediate eviction victim. This mirrors
		// out-of-core engines that stream oversized partitions.
		need = m.budget
	}
	for m.used+need > m.budget {
		var victim *Buffer
		for e := m.lru.Back(); e != nil; e = e.Prev() {
			buf := e.Value.(*Buffer)
			if buf.refs == 0 {
				victim = buf
				break
			}
		}
		if victim == nil {
			m.overcommit++
			return
		}
		m.removeLocked(victim)
		m.evicted++
	}
}

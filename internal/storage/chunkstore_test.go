package storage

import (
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"graphm/internal/faultfs"
	"graphm/internal/graph"
)

func edgesEqual(a, b []graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Src != b[i].Src || a[i].Dst != b[i].Dst {
			return false
		}
		// NaN-safe float compare via bits.
		if math.Float32bits(a[i].Weight) != math.Float32bits(b[i].Weight) {
			return false
		}
	}
	return true
}

func TestCompressEdgesRoundTrip(t *testing.T) {
	cases := [][]graph.Edge{
		nil,
		{},
		{{Src: 0, Dst: 0}},
		{{Src: 5, Dst: 9, Weight: 1.5}, {Src: 5, Dst: 2, Weight: 1.5}, {Src: 1, Dst: 7, Weight: -3}},
		{{Src: 1 << 30, Dst: 0, Weight: float32(math.NaN())}, {Src: 0, Dst: 1 << 30}},
	}
	for i, edges := range cases {
		got, err := DecompressEdges(CompressEdges(edges))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !edgesEqual(got, edges) {
			t.Fatalf("case %d: round-trip mismatch: %v vs %v", i, got, edges)
		}
	}
}

func TestCompressEdgesRandomRoundTripAndRatio(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	edges := make([]graph.Edge, 5000)
	src := uint32(0)
	for i := range edges {
		// Sorted-run shape like a grid bucket: slowly increasing src.
		src += uint32(rng.Intn(3))
		edges[i] = graph.Edge{Src: graph.VertexID(src), Dst: graph.VertexID(rng.Intn(1 << 16))}
	}
	comp := CompressEdges(edges)
	got, err := DecompressEdges(comp)
	if err != nil {
		t.Fatal(err)
	}
	if !edgesEqual(got, edges) {
		t.Fatal("random round-trip mismatch")
	}
	raw := len(edges) * graph.EdgeSize
	if len(comp) >= raw {
		t.Fatalf("compressed %d >= raw %d: delta coding should win on sorted runs", len(comp), raw)
	}
}

func TestDecompressEdgesRejectsCorruption(t *testing.T) {
	comp := CompressEdges([]graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4}})
	if _, err := DecompressEdges(comp[:len(comp)-1]); err == nil {
		t.Fatal("truncated payload decoded")
	}
	if _, err := DecompressEdges(append(append([]byte(nil), comp...), 0)); err == nil {
		t.Fatal("trailing garbage decoded")
	}
	if _, err := DecompressEdges(nil); err == nil {
		t.Fatal("empty payload decoded")
	}
}

func testParts() map[int][]graph.Edge {
	return map[int][]graph.Edge{
		0: {{Src: 0, Dst: 1}, {Src: 0, Dst: 2, Weight: 2}},
		3: {{Src: 9, Dst: 4, Weight: 0.5}},
		7: {},
	}
}

func partsEqual(a, b map[int][]graph.Edge) bool {
	if len(a) != len(b) {
		return false
	}
	for pid, ae := range a {
		if !edgesEqual(ae, b[pid]) {
			return false
		}
	}
	return true
}

func TestCheckpointRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if ck, err := LatestCheckpoint(faultfs.OS{}, dir); err != nil || ck != nil {
		t.Fatalf("empty dir: ck=%v err=%v", ck, err)
	}
	parts := testParts()
	ovs := []JobOverride{
		{JobID: 4, PartID: 0, Edges: []graph.Edge{{Src: 0, Dst: 9, Weight: 1}}},
		{JobID: 11, PartID: 3, Edges: nil},
	}
	if err := WriteCheckpoint(faultfs.OS{}, dir, 2, CheckpointState{Version: 17, Partitions: parts, Overrides: ovs}, true); err != nil {
		t.Fatal(err)
	}
	ck, err := LatestCheckpoint(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil {
		t.Fatal("no checkpoint found")
	}
	if ck.WALSegment != 2 || ck.Version != 17 {
		t.Fatalf("seg=%d version=%d, want 2/17", ck.WALSegment, ck.Version)
	}
	if !partsEqual(parts, ck.Partitions) {
		t.Fatalf("partitions mismatch: %v vs %v", ck.Partitions, parts)
	}
	if len(ck.Overrides) != 2 {
		t.Fatalf("overrides = %+v, want 2 entries", ck.Overrides)
	}
	for i, want := range ovs {
		got := ck.Overrides[i]
		if got.JobID != want.JobID || got.PartID != want.PartID || !edgesEqual(got.Edges, want.Edges) {
			t.Fatalf("override %d = %+v, want %+v", i, got, want)
		}
	}
	if ck.CompressedBytes <= 0 || ck.RawBytes != 4*graph.EdgeSize {
		t.Fatalf("sizes: raw=%d comp=%d", ck.RawBytes, ck.CompressedBytes)
	}
}

func TestLatestCheckpointSkipsCorrupt(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCheckpoint(faultfs.OS{}, dir, 1, CheckpointState{Version: 5, Partitions: testParts()}, true); err != nil {
		t.Fatal(err)
	}
	if err := WriteCheckpoint(faultfs.OS{}, dir, 4, CheckpointState{Version: 9, Partitions: testParts()}, true); err != nil {
		t.Fatal(err)
	}
	// Corrupt the newest: recovery must fall back to the older valid one.
	newest := filepath.Join(dir, checkpointName(4))
	data, _ := os.ReadFile(newest)
	data[len(data)/2] ^= 0xFF
	os.WriteFile(newest, data, 0o644)

	ck, err := LatestCheckpoint(faultfs.OS{}, dir)
	if err != nil {
		t.Fatal(err)
	}
	if ck == nil || ck.WALSegment != 1 || ck.Version != 5 {
		t.Fatalf("fallback ck = %+v, want seg 1 version 5", ck)
	}
}

func TestRemoveCheckpointsBefore(t *testing.T) {
	dir := t.TempDir()
	for _, seg := range []int{1, 3, 6} {
		if err := WriteCheckpoint(faultfs.OS{}, dir, seg, CheckpointState{Version: uint64(seg), Partitions: testParts()}, true); err != nil {
			t.Fatal(err)
		}
	}
	if err := RemoveCheckpointsBefore(faultfs.OS{}, dir, 6); err != nil {
		t.Fatal(err)
	}
	for _, seg := range []int{1, 3} {
		if _, err := os.Stat(filepath.Join(dir, checkpointName(seg))); !os.IsNotExist(err) {
			t.Fatalf("checkpoint %d survived GC", seg)
		}
	}
	ck, err := LatestCheckpoint(faultfs.OS{}, dir)
	if err != nil || ck == nil || ck.WALSegment != 6 {
		t.Fatalf("ck=%+v err=%v, want seg 6", ck, err)
	}
}

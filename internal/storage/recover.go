package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"graphm/internal/graph"
)

// Store is the durable face of a graph system's data directory:
//
//	<dir>/wal-%08d.log       batched evolve WAL (one record per atomic op)
//	<dir>/checkpoint-%08d.ck compressed full-partition checkpoints
//	<dir>/tickets.log        append-only text log of ticket lifecycle events
//
// Open replays checkpoint + WAL + ticket log into a Recovery that the daemon
// uses to rebuild the snapshot store and re-admit in-flight tickets.
type Store struct {
	dir  string
	opts StoreOptions
	wal  *WAL

	ticketMu sync.Mutex
	ticketF  *os.File

	ckMu          sync.Mutex
	recordsSince  int
	checkpointing bool
}

// StoreOptions tunes durability behavior.
type StoreOptions struct {
	// NoSync skips fsyncs (tests, benchmarks of the batching path alone).
	NoSync bool
	// CheckpointEveryRecords makes CheckpointDue report true after this many
	// WAL records since the last checkpoint. Zero means the default (256);
	// negative disables cadence-based checkpoints.
	CheckpointEveryRecords int
}

func (o StoreOptions) cadence() int {
	if o.CheckpointEveryRecords == 0 {
		return 256
	}
	return o.CheckpointEveryRecords
}

// EvolveOp identifies which evolve operation a WAL record replays.
type EvolveOp uint8

const (
	// EvolveAdd: global update appending edges (System.AddEdges).
	EvolveAdd EvolveOp = iota + 1
	// EvolveRemove: global update deleting the recorded edges (the concrete
	// result of a RemoveEdges predicate scan).
	EvolveRemove
	// EvolveAddFor: job-private mutation appending edges.
	EvolveAddFor
	// EvolveRemoveFor: job-private mutation deleting the recorded edges.
	EvolveRemoveFor
)

func (op EvolveOp) String() string {
	switch op {
	case EvolveAdd:
		return "add"
	case EvolveRemove:
		return "remove"
	case EvolveAddFor:
		return "add-for"
	case EvolveRemoveFor:
		return "remove-for"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// EvolveRecord is one durable evolve operation. For the predicate-based
// removals the record holds the concrete edge multiset the scan removed, so
// replay needs no predicate and is deterministic by construction.
type EvolveRecord struct {
	Op    EvolveOp
	JobID int // only for the *For ops
	Edges []graph.Edge
}

// encodeEvolve serializes rec: op byte, zigzag-varint jobID, CompressEdges.
func encodeEvolve(rec EvolveRecord) []byte {
	var scratch [binary.MaxVarintLen64]byte
	buf := []byte{byte(rec.Op)}
	k := binary.PutVarint(scratch[:], int64(rec.JobID))
	buf = append(buf, scratch[:k]...)
	return append(buf, CompressEdges(rec.Edges)...)
}

func decodeEvolve(payload []byte) (EvolveRecord, error) {
	if len(payload) < 2 {
		return EvolveRecord{}, fmt.Errorf("storage: evolve record too short (%d bytes)", len(payload))
	}
	rec := EvolveRecord{Op: EvolveOp(payload[0])}
	if rec.Op < EvolveAdd || rec.Op > EvolveRemoveFor {
		return EvolveRecord{}, fmt.Errorf("storage: unknown evolve op %d", payload[0])
	}
	jobID, k := binary.Varint(payload[1:])
	if k <= 0 {
		return EvolveRecord{}, fmt.Errorf("storage: corrupt evolve job ID")
	}
	rec.JobID = int(jobID)
	edges, err := DecompressEdges(payload[1+k:])
	if err != nil {
		return EvolveRecord{}, err
	}
	rec.Edges = edges
	return rec, nil
}

// EvolveSink is what internal/core logs evolve operations to. A nil sink
// (no -data-dir) keeps evolution purely in-memory, exactly as before.
type EvolveSink interface {
	// AppendEvolve queues one record; the returned commit blocks until it is
	// durable. Calls must happen in installation order (core holds its lock
	// across the call), but commits may be awaited concurrently.
	AppendEvolve(rec EvolveRecord) (commit func() error, err error)
}

// PendingTicket is a submitted-but-not-terminal ticket reconstructed from
// the ticket log, to be re-admitted with its ORIGINAL ID after recovery (the
// ID keys job-private WAL mutations and the deterministic seed derivation).
type PendingTicket struct {
	ID     int
	Tenant string
	Algo   string
	Seed   int64
}

// TicketCounts are lifetime counters recovered from the ticket log, used to
// seed the service's Snapshot so /metrics survives a restart.
type TicketCounts struct {
	Submitted uint64
	Done      uint64
	Canceled  uint64
	Failed    uint64
}

// Recovery is everything Open reconstructed from the data directory.
type Recovery struct {
	// HasCheckpoint reports whether a valid checkpoint was found;
	// CheckpointVersion, Partitions and Overrides are meaningful only if so.
	HasCheckpoint     bool
	CheckpointVersion uint64
	Partitions        map[int][]graph.Edge
	// Overrides are pending jobs' private partition views captured by the
	// checkpoint, to re-install before WAL replay.
	Overrides []JobOverride

	// Evolves are the WAL records to replay over the checkpoint, in append
	// order. WALRecords == len(Evolves).
	Evolves    []EvolveRecord
	WALRecords int

	// Pending tickets (submitted, no terminal line) plus recovered counters
	// and the next ticket ID to assign.
	Pending      []PendingTicket
	Counts       TicketCounts
	NextTicketID int
}

// Open opens (creating if needed) the data directory and replays its state.
func Open(dir string, opts StoreOptions) (*Store, *Recovery, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{NextTicketID: 1}

	ck, err := LatestCheckpoint(dir)
	if err != nil {
		return nil, nil, err
	}
	fromSeg := 0
	if ck != nil {
		rec.HasCheckpoint = true
		rec.CheckpointVersion = ck.Version
		rec.Partitions = ck.Partitions
		rec.Overrides = ck.Overrides
		fromSeg = ck.WALSegment
	}

	var decodeErr error
	n, err := ReadWALFrom(dir, fromSeg, func(payload []byte) {
		if decodeErr != nil {
			return
		}
		r, err := decodeEvolve(payload)
		if err != nil {
			decodeErr = err
			return
		}
		rec.Evolves = append(rec.Evolves, r)
	})
	if err != nil {
		return nil, nil, err
	}
	if decodeErr != nil {
		return nil, nil, decodeErr
	}
	rec.WALRecords = n

	wal, err := OpenWAL(dir, opts.NoSync)
	if err != nil {
		return nil, nil, err
	}

	if err := recoverTicketLog(filepath.Join(dir, "tickets.log"), rec); err != nil {
		wal.Close()
		return nil, nil, err
	}
	ticketF, err := os.OpenFile(filepath.Join(dir, "tickets.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		wal.Close()
		return nil, nil, err
	}

	return &Store{dir: dir, opts: opts, wal: wal, ticketF: ticketF}, rec, nil
}

// recoverTicketLog parses the append-only ticket log, truncating any
// unparseable tail (a crash mid-append). Lines are either
// "submit <id> <tenant> <algo> <seed>" or "end <id> <status>"; tenant is
// %q-quoted so arbitrary printable tenant keys round-trip.
func recoverTicketLog(path string, rec *Recovery) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	var order []int
	byID := make(map[int]*submitted)
	good := 0
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break
		}
		line := string(data[good : good+nl])
		if !parseTicketLine(line, byID, &order, &rec.Counts) {
			break
		}
		good += nl + 1
	}
	if good != len(data) {
		if err := os.Truncate(path, int64(good)); err != nil {
			return err
		}
	}
	maxID := 0
	for _, id := range order {
		s := byID[id]
		if id > maxID {
			maxID = id
		}
		if !s.terminal {
			rec.Pending = append(rec.Pending, s.t)
		}
	}
	if maxID >= rec.NextTicketID {
		rec.NextTicketID = maxID + 1
	}
	return nil
}

// submitted tracks one ticket while parsing the log.
type submitted struct {
	t        PendingTicket
	terminal bool
}

func parseTicketLine(line string, byID map[int]*submitted, order *[]int, counts *TicketCounts) bool {
	switch {
	case strings.HasPrefix(line, "submit "):
		var id int
		var tenant, algo string
		var seed int64
		if _, err := fmt.Sscanf(line, "submit %d %q %s %d", &id, &tenant, &algo, &seed); err != nil {
			return false
		}
		if _, dup := byID[id]; dup {
			return false
		}
		byID[id] = &submitted{t: PendingTicket{ID: id, Tenant: tenant, Algo: algo, Seed: seed}}
		*order = append(*order, id)
		counts.Submitted++
	case strings.HasPrefix(line, "end "):
		var id int
		var status string
		if _, err := fmt.Sscanf(line, "end %d %s", &id, &status); err != nil {
			return false
		}
		s, ok := byID[id]
		if !ok || s.terminal {
			return false
		}
		s.terminal = true
		switch status {
		case "done":
			counts.Done++
		case "canceled":
			counts.Canceled++
		case "failed":
			counts.Failed++
		default:
			return false
		}
	default:
		return false
	}
	return true
}

// AppendEvolve implements EvolveSink over the WAL.
func (s *Store) AppendEvolve(rec EvolveRecord) (func() error, error) {
	commit, err := s.wal.Append(encodeEvolve(rec))
	if err != nil {
		return nil, err
	}
	s.ckMu.Lock()
	s.recordsSince++
	s.ckMu.Unlock()
	return commit, nil
}

// CheckpointDue reports whether enough WAL records accumulated since the
// last checkpoint to warrant a new one.
func (s *Store) CheckpointDue() bool {
	c := s.opts.cadence()
	if c <= 0 {
		return false
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	return !s.checkpointing && s.recordsSince >= c
}

// Checkpointer is the two-phase checkpoint protocol internal/core drives: a
// fast begin (WAL rotation, called under the lock that orders evolve
// appends, so no record slips between state capture and rotation) returning
// a slow write func that persists the captured state lock-free.
type Checkpointer interface {
	BeginCheckpoint() (func(state CheckpointState) error, error)
}

// BeginCheckpoint rotates the WAL and returns a write func that persists the
// captured state and garbage-collects covered segments and older
// checkpoints. The write func runs without any core lock held.
func (s *Store) BeginCheckpoint() (func(state CheckpointState) error, error) {
	s.ckMu.Lock()
	if s.checkpointing {
		s.ckMu.Unlock()
		return nil, fmt.Errorf("storage: checkpoint already in progress")
	}
	s.checkpointing = true
	s.ckMu.Unlock()

	seg, err := s.wal.Rotate()
	if err != nil {
		s.ckMu.Lock()
		s.checkpointing = false
		s.ckMu.Unlock()
		return nil, err
	}
	return func(state CheckpointState) error {
		err := WriteCheckpoint(s.dir, seg, state, s.opts.NoSync)
		s.ckMu.Lock()
		s.checkpointing = false
		if err == nil {
			s.recordsSince = 0
		}
		s.ckMu.Unlock()
		if err != nil {
			return err
		}
		if err := s.wal.RemoveSegmentsBefore(seg); err != nil {
			return err
		}
		return RemoveCheckpointsBefore(s.dir, seg)
	}, nil
}

// LogSubmit durably appends a ticket submission. It must return before the
// submission is acknowledged to the client: a crash after ack must find the
// ticket in the log.
func (s *Store) LogSubmit(id int, tenant, algo string, seed int64) error {
	s.ticketMu.Lock()
	defer s.ticketMu.Unlock()
	if _, err := fmt.Fprintf(s.ticketF, "submit %d %q %s %d\n", id, tenant, algo, seed); err != nil {
		return err
	}
	if s.opts.NoSync {
		return nil
	}
	return s.ticketF.Sync()
}

// LogTerminal appends a ticket's terminal transition. Best-effort (no sync):
// losing a terminal line re-runs an idempotent job after a crash, which is
// safe; losing a submit line would drop an acknowledged job, which is not.
func (s *Store) LogTerminal(id int, status string) {
	s.ticketMu.Lock()
	fmt.Fprintf(s.ticketF, "end %d %s\n", id, status)
	s.ticketMu.Unlock()
}

// TicketLogBytes returns the current ticket log contents (test hook for the
// byte-identical-log differential).
func (s *Store) TicketLogBytes() ([]byte, error) {
	s.ticketMu.Lock()
	defer s.ticketMu.Unlock()
	return os.ReadFile(filepath.Join(s.dir, "tickets.log"))
}

// WALStats exposes the underlying log's group-commit counters.
func (s *Store) WALStats() WALStats { return s.wal.Stats() }

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the WAL and ticket log.
func (s *Store) Close() error {
	err := s.wal.Close()
	s.ticketMu.Lock()
	if s.ticketF != nil {
		if !s.opts.NoSync {
			_ = s.ticketF.Sync()
		}
		if cerr := s.ticketF.Close(); err == nil {
			err = cerr
		}
		s.ticketF = nil
	}
	s.ticketMu.Unlock()
	return err
}

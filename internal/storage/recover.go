package storage

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"graphm/internal/faultfs"
	"graphm/internal/graph"
)

// Store is the durable face of a graph system's data directory:
//
//	<dir>/wal-%08d.log       batched evolve WAL (one record per atomic op)
//	<dir>/checkpoint-%08d.ck compressed full-partition checkpoints
//	<dir>/tickets.log        append-only text log of ticket lifecycle events
//
// Open replays checkpoint + WAL + ticket log into a Recovery that the daemon
// uses to rebuild the snapshot store and re-admit in-flight tickets.
//
// Every filesystem operation goes through the faultfs seam in StoreOptions,
// so tests drive all durable paths through injected failure; the retry
// policies and the failed-state latching give the daemon its graceful
// degradation story (see Probe).
type Store struct {
	dir  string
	opts StoreOptions
	fsys faultfs.FS
	wal  *WAL

	ticketMu     sync.Mutex
	ticketF      faultfs.File
	ticketGood   int64 // bytes known fully written to tickets.log
	ticketBroken bool  // torn tail could not be repaired; cleared by Probe
	ticketClosed bool

	ticketDropped atomic.Uint64 // terminal lines lost to write errors

	crashed atomic.Bool

	ckMu          sync.Mutex
	recordsSince  int
	checkpointing bool
}

// StoreOptions tunes durability behavior.
type StoreOptions struct {
	// NoSync skips fsyncs (tests, benchmarks of the batching path alone).
	NoSync bool
	// CheckpointEveryRecords makes CheckpointDue report true after this many
	// WAL records since the last checkpoint. Zero means the default (256);
	// negative disables cadence-based checkpoints.
	CheckpointEveryRecords int
	// FS is the filesystem seam; nil means the real filesystem. Tests pass a
	// *faultfs.Injector to schedule failures on any durable operation.
	FS faultfs.FS
	// Retry bounds the WAL flush and ticket-log write recovery loops;
	// zero-value means the package defaults (4 attempts, 5ms..250ms backoff).
	Retry RetryPolicy
}

func (o StoreOptions) cadence() int {
	if o.CheckpointEveryRecords == 0 {
		return 256
	}
	return o.CheckpointEveryRecords
}

// EvolveOp identifies which evolve operation a WAL record replays.
type EvolveOp uint8

const (
	// EvolveAdd: global update appending edges (System.AddEdges).
	EvolveAdd EvolveOp = iota + 1
	// EvolveRemove: global update deleting the recorded edges (the concrete
	// result of a RemoveEdges predicate scan).
	EvolveRemove
	// EvolveAddFor: job-private mutation appending edges.
	EvolveAddFor
	// EvolveRemoveFor: job-private mutation deleting the recorded edges.
	EvolveRemoveFor
)

func (op EvolveOp) String() string {
	switch op {
	case EvolveAdd:
		return "add"
	case EvolveRemove:
		return "remove"
	case EvolveAddFor:
		return "add-for"
	case EvolveRemoveFor:
		return "remove-for"
	default:
		return fmt.Sprintf("op(%d)", uint8(op))
	}
}

// EvolveRecord is one durable evolve operation. For the predicate-based
// removals the record holds the concrete edge multiset the scan removed, so
// replay needs no predicate and is deterministic by construction.
type EvolveRecord struct {
	Op    EvolveOp
	JobID int // only for the *For ops
	Edges []graph.Edge
}

// encodeEvolve serializes rec: op byte, zigzag-varint jobID, CompressEdges.
func encodeEvolve(rec EvolveRecord) []byte {
	var scratch [binary.MaxVarintLen64]byte
	buf := []byte{byte(rec.Op)}
	k := binary.PutVarint(scratch[:], int64(rec.JobID))
	buf = append(buf, scratch[:k]...)
	return append(buf, CompressEdges(rec.Edges)...)
}

func decodeEvolve(payload []byte) (EvolveRecord, error) {
	if len(payload) < 2 {
		return EvolveRecord{}, fmt.Errorf("storage: evolve record too short (%d bytes)", len(payload))
	}
	rec := EvolveRecord{Op: EvolveOp(payload[0])}
	if rec.Op < EvolveAdd || rec.Op > EvolveRemoveFor {
		return EvolveRecord{}, fmt.Errorf("storage: unknown evolve op %d", payload[0])
	}
	jobID, k := binary.Varint(payload[1:])
	if k <= 0 {
		return EvolveRecord{}, fmt.Errorf("storage: corrupt evolve job ID")
	}
	rec.JobID = int(jobID)
	edges, err := DecompressEdges(payload[1+k:])
	if err != nil {
		return EvolveRecord{}, err
	}
	rec.Edges = edges
	return rec, nil
}

// EvolveSink is what internal/core logs evolve operations to. A nil sink
// (no -data-dir) keeps evolution purely in-memory, exactly as before.
type EvolveSink interface {
	// AppendEvolve queues one record; the returned commit blocks until it is
	// durable. Calls must happen in installation order (core holds its lock
	// across the call), but commits may be awaited concurrently.
	AppendEvolve(rec EvolveRecord) (commit func() error, err error)
}

// PendingTicket is a submitted-but-not-terminal ticket reconstructed from
// the ticket log, to be re-admitted with its ORIGINAL ID after recovery (the
// ID keys job-private WAL mutations and the deterministic seed derivation).
type PendingTicket struct {
	ID     int
	Tenant string
	Algo   string
	Seed   int64
}

// TicketCounts are lifetime counters recovered from the ticket log, used to
// seed the service's Snapshot so /metrics survives a restart.
type TicketCounts struct {
	Submitted uint64
	Done      uint64
	Canceled  uint64
	Failed    uint64
}

// Recovery is everything Open reconstructed from the data directory.
type Recovery struct {
	// HasCheckpoint reports whether a valid checkpoint was found;
	// CheckpointVersion, Partitions and Overrides are meaningful only if so.
	HasCheckpoint     bool
	CheckpointVersion uint64
	Partitions        map[int][]graph.Edge
	// Overrides are pending jobs' private partition views captured by the
	// checkpoint, to re-install before WAL replay.
	Overrides []JobOverride

	// Evolves are the WAL records to replay over the checkpoint, in append
	// order. WALRecords == len(Evolves).
	Evolves    []EvolveRecord
	WALRecords int

	// Pending tickets (submitted, no terminal line) plus recovered counters
	// and the next ticket ID to assign.
	Pending      []PendingTicket
	Counts       TicketCounts
	NextTicketID int
}

// Open opens (creating if needed) the data directory and replays its state.
func Open(dir string, opts StoreOptions) (*Store, *Recovery, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	rec := &Recovery{NextTicketID: 1}

	ck, err := LatestCheckpoint(fsys, dir)
	if err != nil {
		return nil, nil, err
	}
	fromSeg := 0
	if ck != nil {
		rec.HasCheckpoint = true
		rec.CheckpointVersion = ck.Version
		rec.Partitions = ck.Partitions
		rec.Overrides = ck.Overrides
		fromSeg = ck.WALSegment
	}

	var decodeErr error
	n, err := ReadWALFrom(fsys, dir, fromSeg, func(payload []byte) {
		if decodeErr != nil {
			return
		}
		r, err := decodeEvolve(payload)
		if err != nil {
			decodeErr = err
			return
		}
		rec.Evolves = append(rec.Evolves, r)
	})
	if err != nil {
		return nil, nil, err
	}
	if decodeErr != nil {
		return nil, nil, decodeErr
	}
	rec.WALRecords = n

	wal, err := OpenWAL(dir, WALOptions{NoSync: opts.NoSync, FS: fsys, Retry: opts.Retry})
	if err != nil {
		return nil, nil, err
	}

	ticketGood, err := recoverTicketLog(fsys, filepath.Join(dir, "tickets.log"), rec)
	if err != nil {
		_ = wal.Close() //nolint:discarded // annotated: already failing with the recovery error
		return nil, nil, err
	}
	ticketF, err := fsys.OpenFile(filepath.Join(dir, "tickets.log"), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		_ = wal.Close() //nolint:discarded // annotated: already failing with the open error
		return nil, nil, err
	}

	return &Store{dir: dir, opts: opts, fsys: fsys, wal: wal, ticketF: ticketF, ticketGood: ticketGood}, rec, nil
}

// recoverTicketLog parses the append-only ticket log, truncating any
// unparseable tail (a crash mid-append), and returns the surviving length.
// Lines are either "submit <id> <tenant> <algo> <seed>" or
// "end <id> <status>"; tenant is %q-quoted so arbitrary printable tenant
// keys round-trip.
func recoverTicketLog(fsys faultfs.FS, path string, rec *Recovery) (int64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	var order []int
	byID := make(map[int]*submitted)
	good := 0
	for good < len(data) {
		nl := bytes.IndexByte(data[good:], '\n')
		if nl < 0 {
			break
		}
		line := string(data[good : good+nl])
		if !parseTicketLine(line, byID, &order, &rec.Counts) {
			break
		}
		good += nl + 1
	}
	if good != len(data) {
		if err := fsys.Truncate(path, int64(good)); err != nil {
			return 0, err
		}
	}
	maxID := 0
	for _, id := range order {
		s := byID[id]
		if id > maxID {
			maxID = id
		}
		if !s.terminal {
			rec.Pending = append(rec.Pending, s.t)
		}
	}
	if maxID >= rec.NextTicketID {
		rec.NextTicketID = maxID + 1
	}
	return int64(good), nil
}

// submitted tracks one ticket while parsing the log.
type submitted struct {
	t        PendingTicket
	terminal bool
}

func parseTicketLine(line string, byID map[int]*submitted, order *[]int, counts *TicketCounts) bool {
	switch {
	case strings.HasPrefix(line, "submit "):
		var id int
		var tenant, algo string
		var seed int64
		if _, err := fmt.Sscanf(line, "submit %d %q %s %d", &id, &tenant, &algo, &seed); err != nil {
			return false
		}
		if _, dup := byID[id]; dup {
			return false
		}
		byID[id] = &submitted{t: PendingTicket{ID: id, Tenant: tenant, Algo: algo, Seed: seed}}
		*order = append(*order, id)
		counts.Submitted++
	case strings.HasPrefix(line, "end "):
		var id int
		var status string
		if _, err := fmt.Sscanf(line, "end %d %s", &id, &status); err != nil {
			return false
		}
		s, ok := byID[id]
		if !ok || s.terminal {
			return false
		}
		s.terminal = true
		switch status {
		case "done":
			counts.Done++
		case "canceled":
			counts.Canceled++
		case "failed":
			counts.Failed++
		default:
			return false
		}
	default:
		return false
	}
	return true
}

// AppendEvolve implements EvolveSink over the WAL.
func (s *Store) AppendEvolve(rec EvolveRecord) (func() error, error) {
	if s.crashed.Load() {
		return nil, fmt.Errorf("storage: append to crashed store: %w", ErrDurability)
	}
	commit, err := s.wal.Append(encodeEvolve(rec))
	if err != nil {
		return nil, err
	}
	s.ckMu.Lock()
	s.recordsSince++
	s.ckMu.Unlock()
	return commit, nil
}

// CheckpointDue reports whether enough WAL records accumulated since the
// last checkpoint to warrant a new one.
func (s *Store) CheckpointDue() bool {
	c := s.opts.cadence()
	if c <= 0 {
		return false
	}
	s.ckMu.Lock()
	defer s.ckMu.Unlock()
	return !s.checkpointing && s.recordsSince >= c
}

// Checkpointer is the two-phase checkpoint protocol internal/core drives: a
// fast begin (WAL rotation, called under the lock that orders evolve
// appends, so no record slips between state capture and rotation) returning
// a slow write func that persists the captured state lock-free.
type Checkpointer interface {
	BeginCheckpoint() (func(state CheckpointState) error, error)
}

// BeginCheckpoint rotates the WAL and returns a write func that persists the
// captured state and garbage-collects covered segments and older
// checkpoints. The write func runs without any core lock held.
func (s *Store) BeginCheckpoint() (func(state CheckpointState) error, error) {
	if s.crashed.Load() {
		return nil, fmt.Errorf("storage: checkpoint of crashed store: %w", ErrDurability)
	}
	s.ckMu.Lock()
	if s.checkpointing {
		s.ckMu.Unlock()
		return nil, fmt.Errorf("storage: checkpoint already in progress")
	}
	s.checkpointing = true
	s.ckMu.Unlock()

	seg, err := s.wal.Rotate()
	if err != nil {
		s.ckMu.Lock()
		s.checkpointing = false
		s.ckMu.Unlock()
		return nil, err
	}
	return func(state CheckpointState) error {
		err := WriteCheckpoint(s.fsys, s.dir, seg, state, s.opts.NoSync)
		s.ckMu.Lock()
		s.checkpointing = false
		if err == nil {
			s.recordsSince = 0
		}
		s.ckMu.Unlock()
		if err != nil {
			// A failed checkpoint loses nothing (the WAL still covers the
			// state) but is a durable-path fault the daemon should degrade
			// on if it persists.
			return fmt.Errorf("storage: checkpoint: %w (%w)", ErrDurability, err)
		}
		if err := s.wal.RemoveSegmentsBefore(seg); err != nil {
			return fmt.Errorf("storage: checkpoint GC: %w (%w)", ErrDurability, err)
		}
		if err := RemoveCheckpointsBefore(s.fsys, s.dir, seg); err != nil {
			return fmt.Errorf("storage: checkpoint GC: %w (%w)", ErrDurability, err)
		}
		return nil
	}, nil
}

// appendTicketLine writes one line to the ticket log with torn-tail repair:
// a partial write would poison every later line at recovery (the parser
// truncates at the first bad line), so any failure truncates back to the
// last fully-written offset and rewrites, under the retry policy. sync
// additionally fsyncs after the write (the submit path; terminal lines are
// best-effort). Callers hold ticketMu.
func (s *Store) appendTicketLine(line string, sync bool) error {
	if s.ticketClosed {
		return fmt.Errorf("storage: ticket log closed")
	}
	p := s.opts.Retry.normalized()
	if !sync {
		// Terminal lines are best-effort, but they are written under ticketMu,
		// which LogSubmit (an acknowledged, latency-sensitive path) also
		// takes: backoff sleeps here would stall submits for the whole retry
		// budget per failing terminal write. One immediate repair attempt, no
		// sleeping.
		p.Attempts = 2
		p.Sleep = func(time.Duration) {}
	}
	path := filepath.Join(s.dir, "tickets.log")
	var cause error
	for attempt := 0; attempt < p.Attempts; attempt++ {
		if attempt > 0 {
			p.Sleep(p.backoff(attempt))
		}
		if s.ticketBroken || s.ticketF == nil {
			// A failed attempt may have left a torn or unacknowledged tail:
			// close the suspect handle, truncate back to the last good
			// offset, reopen.
			if s.ticketF != nil {
				_ = s.ticketF.Close() //nolint:discarded // annotated: closing an already-failed handle
				s.ticketF = nil
			}
			if err := s.fsys.Truncate(path, s.ticketGood); err != nil {
				cause = err
				continue
			}
			f, err := s.fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				cause = err
				continue
			}
			s.ticketF = f
			s.ticketBroken = false
		}
		if _, err := fmt.Fprint(s.ticketF, line); err != nil {
			cause = err
			s.ticketBroken = true
			continue
		}
		if sync && !s.opts.NoSync {
			if err := s.ticketF.Sync(); err != nil {
				// The bytes are written but not durable; the tail must be
				// truncated before the line can be retried or the log
				// appended to again.
				cause = err
				s.ticketBroken = true
				continue
			}
		}
		s.ticketGood += int64(len(line))
		return nil
	}
	return fmt.Errorf("storage: ticket log write failed after %d attempts: %w (%w)", p.Attempts, ErrDurability, cause)
}

// LogSubmit durably appends a ticket submission. It must return before the
// submission is acknowledged to the client: a crash after ack must find the
// ticket in the log.
func (s *Store) LogSubmit(id int, tenant, algo string, seed int64) error {
	if s.crashed.Load() {
		return fmt.Errorf("storage: submit to crashed store: %w", ErrDurability)
	}
	s.ticketMu.Lock()
	defer s.ticketMu.Unlock()
	return s.appendTicketLine(fmt.Sprintf("submit %d %q %s %d\n", id, tenant, algo, seed), true)
}

// LogTerminal appends a ticket's terminal transition. Best-effort (no sync):
// losing a terminal line re-runs an idempotent job after a crash, which is
// safe; losing a submit line would drop an acknowledged job, which is not.
// Lines lost to persistent write errors are counted (TicketLogDropped) and
// surfaced on /healthz rather than silently swallowed.
func (s *Store) LogTerminal(id int, status string) {
	if s.crashed.Load() {
		return
	}
	s.ticketMu.Lock()
	err := s.appendTicketLine(fmt.Sprintf("end %d %s\n", id, status), false)
	s.ticketMu.Unlock()
	if err != nil {
		s.ticketDropped.Add(1)
	}
}

// TicketLogDropped counts terminal lines lost to persistent write errors.
func (s *Store) TicketLogDropped() uint64 { return s.ticketDropped.Load() }

// Health is the store's durability health snapshot, surfaced on /healthz.
type Health struct {
	// WALFailed: the WAL latched into the failed state (appends refused).
	WALFailed bool
	// TicketBroken: the ticket log tail is torn and unrepaired.
	TicketBroken bool
	// TicketDropped: terminal lines lost to write errors, lifetime.
	TicketDropped uint64
}

// Healthy reports whether the durable path is fully operational.
func (h Health) Healthy() bool { return !h.WALFailed && !h.TicketBroken }

// Health returns the current durability health snapshot.
func (s *Store) Health() Health {
	h := Health{TicketDropped: s.ticketDropped.Load()}
	h.WALFailed = s.wal.Stats().Failed
	s.ticketMu.Lock()
	h.TicketBroken = s.ticketBroken
	s.ticketMu.Unlock()
	return h
}

// Probe actively checks the durable path end to end — WAL segment repair +
// fsync, ticket log repair + fsync — and re-arms any latched failure. The
// daemon calls it periodically while degraded; a nil return means the store
// is healthy again and writes may resume.
func (s *Store) Probe() error {
	if s.crashed.Load() {
		return fmt.Errorf("storage: probe of crashed store")
	}
	if err := s.wal.Probe(); err != nil {
		return err
	}
	s.ticketMu.Lock()
	defer s.ticketMu.Unlock()
	if s.ticketClosed {
		return fmt.Errorf("storage: ticket log closed")
	}
	path := filepath.Join(s.dir, "tickets.log")
	if s.ticketBroken || s.ticketF == nil {
		if s.ticketF != nil {
			_ = s.ticketF.Close() //nolint:discarded // annotated: closing an already-failed handle
			s.ticketF = nil
		}
		if err := s.fsys.Truncate(path, s.ticketGood); err != nil {
			return fmt.Errorf("storage: probe ticket truncate: %w", err)
		}
		f, err := s.fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("storage: probe ticket reopen: %w", err)
		}
		s.ticketF = f
		s.ticketBroken = false
	}
	if !s.opts.NoSync && s.ticketF != nil {
		if err := s.ticketF.Sync(); err != nil {
			return fmt.Errorf("storage: probe ticket sync: %w", err)
		}
	}
	return nil
}

// Crash simulates process death for the chaos harness: every later durable
// write is refused or dropped (exactly as if the process had died), and
// Close skips final flushes, so the data directory holds precisely what was
// durable at the moment of the crash. The in-memory Store stays safe to
// shut down through the normal service path.
func (s *Store) Crash() {
	s.crashed.Store(true)
	s.wal.crash()
}

// TicketLogBytes returns the current ticket log contents (test hook for the
// byte-identical-log differential).
func (s *Store) TicketLogBytes() ([]byte, error) {
	s.ticketMu.Lock()
	defer s.ticketMu.Unlock()
	return s.fsys.ReadFile(filepath.Join(s.dir, "tickets.log"))
}

// WALStats exposes the underlying log's group-commit counters.
func (s *Store) WALStats() WALStats { return s.wal.Stats() }

// Dir returns the data directory path.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the WAL and ticket log, reporting the first
// flush or sync failure: a clean shutdown that could not make its final
// writes durable is not a clean shutdown.
func (s *Store) Close() error {
	err := s.wal.Close()
	s.ticketMu.Lock()
	s.ticketClosed = true
	if s.ticketF != nil {
		if !s.opts.NoSync && !s.crashed.Load() {
			if serr := s.ticketF.Sync(); serr != nil && err == nil {
				err = fmt.Errorf("storage: ticket log final sync: %w", serr)
			}
		}
		if cerr := s.ticketF.Close(); cerr != nil && err == nil && !s.crashed.Load() {
			err = cerr
		}
		s.ticketF = nil
	}
	s.ticketMu.Unlock()
	return err
}

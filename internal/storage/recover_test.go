package storage

import (
	"os"
	"path/filepath"
	"testing"

	"graphm/internal/graph"
)

var noSync = StoreOptions{NoSync: true}

func TestStoreEvolveRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st, rec, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasCheckpoint || len(rec.Evolves) != 0 || len(rec.Pending) != 0 || rec.NextTicketID != 1 {
		t.Fatalf("fresh dir recovery = %+v", rec)
	}
	want := []EvolveRecord{
		{Op: EvolveAdd, Edges: []graph.Edge{{Src: 1, Dst: 2}, {Src: 3, Dst: 4, Weight: 2}}},
		{Op: EvolveAddFor, JobID: 7, Edges: []graph.Edge{{Src: 5, Dst: 6}}},
		{Op: EvolveRemove, Edges: []graph.Edge{{Src: 1, Dst: 2}}},
		{Op: EvolveRemoveFor, JobID: 7, Edges: []graph.Edge{{Src: 5, Dst: 6}}},
	}
	for _, r := range want {
		commit, err := st.AppendEvolve(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := commit(); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	_, rec2, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.WALRecords != len(want) || len(rec2.Evolves) != len(want) {
		t.Fatalf("recovered %d records, want %d", rec2.WALRecords, len(want))
	}
	for i, r := range want {
		got := rec2.Evolves[i]
		if got.Op != r.Op || got.JobID != r.JobID || !edgesEqual(got.Edges, r.Edges) {
			t.Fatalf("record %d = %+v, want %+v", i, got, r)
		}
	}
}

func TestStoreCheckpointCoversWAL(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	commit, _ := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: []graph.Edge{{Src: 1, Dst: 2}}})
	commit()

	write, err := st.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	parts := map[int][]graph.Edge{0: {{Src: 1, Dst: 2}}}
	ovs := []JobOverride{{JobID: 2, PartID: 0, Edges: []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 5}}}}
	if err := write(CheckpointState{Version: 3, Partitions: parts, Overrides: ovs}); err != nil {
		t.Fatal(err)
	}
	// Post-checkpoint record: must be the only one replayed.
	commit, _ = st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: []graph.Edge{{Src: 8, Dst: 9}}})
	commit()
	st.Close()

	_, rec, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint || rec.CheckpointVersion != 3 {
		t.Fatalf("recovery = %+v, want checkpoint v3", rec)
	}
	if !partsEqual(parts, rec.Partitions) {
		t.Fatalf("partitions = %v, want %v", rec.Partitions, parts)
	}
	if len(rec.Overrides) != 1 || rec.Overrides[0].JobID != 2 || !edgesEqual(rec.Overrides[0].Edges, ovs[0].Edges) {
		t.Fatalf("overrides = %+v, want %+v", rec.Overrides, ovs)
	}
	if len(rec.Evolves) != 1 || rec.Evolves[0].Edges[0].Src != 8 {
		t.Fatalf("evolves = %+v, want the single post-checkpoint record", rec.Evolves)
	}
}

func TestStoreCheckpointDueCadence(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, StoreOptions{NoSync: true, CheckpointEveryRecords: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if st.CheckpointDue() {
		t.Fatal("fresh store reports checkpoint due")
	}
	for i := 0; i < 2; i++ {
		commit, _ := st.AppendEvolve(EvolveRecord{Op: EvolveAdd})
		commit()
	}
	if !st.CheckpointDue() {
		t.Fatal("checkpoint not due after cadence records")
	}
	write, err := st.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if st.CheckpointDue() {
		t.Fatal("checkpoint due while one is in progress")
	}
	if err := write(CheckpointState{Version: 1}); err != nil {
		t.Fatal(err)
	}
	if st.CheckpointDue() {
		t.Fatal("checkpoint due right after completing one")
	}
}

func TestTicketLogRecovery(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(1, "tenant a", "pagerank", 11); err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(2, "b", "wcc", 22); err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(3, "b", "bfs", 33); err != nil {
		t.Fatal(err)
	}
	st.LogTerminal(1, "done")
	st.LogTerminal(3, "canceled")
	st.Close()

	// Crash mid-append: a torn half line must be truncated, not fatal.
	f, _ := os.OpenFile(filepath.Join(dir, "tickets.log"), os.O_WRONLY|os.O_APPEND, 0)
	f.WriteString("submit 4 \"c")
	f.Close()

	_, rec, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Counts.Submitted != 3 || rec.Counts.Done != 1 || rec.Counts.Canceled != 1 || rec.Counts.Failed != 0 {
		t.Fatalf("counts = %+v", rec.Counts)
	}
	if len(rec.Pending) != 1 {
		t.Fatalf("pending = %+v, want exactly ticket 2", rec.Pending)
	}
	p := rec.Pending[0]
	if p.ID != 2 || p.Tenant != "b" || p.Algo != "wcc" || p.Seed != 22 {
		t.Fatalf("pending = %+v", p)
	}
	if rec.NextTicketID != 4 {
		t.Fatalf("next ticket ID = %d, want 4", rec.NextTicketID)
	}

	// The truncated tail is gone from the file itself.
	data, _ := os.ReadFile(filepath.Join(dir, "tickets.log"))
	if len(data) == 0 || data[len(data)-1] != '\n' {
		t.Fatalf("ticket log not truncated to whole lines: %q", data)
	}
}

func TestStoreTicketLogBytesStable(t *testing.T) {
	dir := t.TempDir()
	st, _, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	st.LogSubmit(1, "t", "wcc", 5)
	st.LogTerminal(1, "done")
	before, err := st.TicketLogBytes()
	if err != nil {
		t.Fatal(err)
	}
	st.Close()

	// Reopen must not rewrite any already-durable line.
	st2, _, err := Open(dir, noSync)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	after, err := st2.TicketLogBytes()
	if err != nil {
		t.Fatal(err)
	}
	if string(before) != string(after) {
		t.Fatalf("ticket log changed across restart:\n%q\nvs\n%q", before, after)
	}
}

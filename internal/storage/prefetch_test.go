package storage

import (
	"bytes"
	"testing"
)

func prefetchPool(t *testing.T) *Memory {
	t.Helper()
	disk := NewDisk()
	disk.Write("p0", bytes.Repeat([]byte{1}, 1024))
	disk.Write("p1", bytes.Repeat([]byte{2}, 2048))
	return NewMemory(disk, 1<<20)
}

func TestPrefetchClaimTransfersPin(t *testing.T) {
	m := prefetchPool(t)
	h := m.Prefetch("p0", "p0")
	buf, kind, err := h.Claim()
	if err != nil {
		t.Fatal(err)
	}
	if kind != IOCold {
		t.Fatalf("first load kind = %v, want IOCold", kind)
	}
	if len(buf.Data) != 1024 || buf.Data[0] != 1 {
		t.Fatalf("claimed wrong blob: %d bytes", len(buf.Data))
	}
	if n := m.PinCount("p0"); n != 1 {
		t.Fatalf("pin count after claim = %d, want 1", n)
	}
	buf.Release()
	if n := m.PinCount("p0"); n != 0 {
		t.Fatalf("pin count after release = %d, want 0", n)
	}
	// Cancel after Claim is a no-op, not a double release.
	h.Cancel()
	if n := m.PinCount("p0"); n != 0 {
		t.Fatalf("pin count after post-claim cancel = %d, want 0", n)
	}
}

func TestPrefetchCancelReleasesBuffer(t *testing.T) {
	m := prefetchPool(t)
	h := m.Prefetch("p1", "p1")
	h.Cancel()
	if n := m.PinCount("p1"); n != 0 {
		t.Fatalf("pin count after cancel = %d, want 0", n)
	}
	// Cancel is idempotent.
	h.Cancel()
	if _, _, err := h.Claim(); err != ErrPrefetchCanceled {
		t.Fatalf("claim after cancel = %v, want ErrPrefetchCanceled", err)
	}
	// The blob stays resident and unpinned: a later Load rehits.
	before := m.Rehits()
	buf, kind, err := m.Load("p1", "p1")
	if err != nil || kind != IONone {
		t.Fatalf("reload = kind %v err %v, want resident rehit", kind, err)
	}
	if m.Rehits() != before+1 {
		t.Fatal("canceled prefetch did not leave the buffer resident")
	}
	buf.Release()
}

func TestPrefetchErrorPropagates(t *testing.T) {
	m := prefetchPool(t)
	h := m.Prefetch("nope", "nope")
	if _, _, err := h.Claim(); err == nil {
		t.Fatal("claim of missing blob succeeded")
	}
	// Cancel after a failed load must not panic (no buffer to release).
	h2 := m.Prefetch("nope", "nope")
	h2.Cancel()
}

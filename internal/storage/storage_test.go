package storage

import (
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func TestDiskReadWrite(t *testing.T) {
	d := NewDisk()
	d.Write("a", []byte("hello"))
	got, err := d.Read("a")
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "hello" {
		t.Fatalf("read %q", got)
	}
	if d.ReadBytes() != 5 || d.ReadOps() != 1 || d.WriteBytes() != 5 {
		t.Fatalf("meters: r=%d ops=%d w=%d", d.ReadBytes(), d.ReadOps(), d.WriteBytes())
	}
	if _, err := d.Read("missing"); err == nil {
		t.Fatal("expected error for missing blob")
	}
	d.ResetCounters()
	if d.ReadBytes() != 0 || d.ReadOps() != 0 {
		t.Fatal("counters not reset")
	}
	if d.Size("a") != 5 || d.Size("missing") != 0 {
		t.Fatal("Size wrong")
	}
}

func TestMemoryLoadSharesResidentBuffer(t *testing.T) {
	d := NewDisk()
	d.Write("p0", make([]byte, 100))
	m := NewMemory(d, 1000)
	b1, io1, err := m.Load("p0", "p0")
	if err != nil || io1 == IONone {
		t.Fatalf("first load: err=%v io=%v", err, io1)
	}
	b2, io2, err := m.Load("p0", "p0")
	if err != nil || io2 != IONone {
		t.Fatalf("second load should be resident: err=%v io=%v", err, io2)
	}
	if b1 != b2 {
		t.Fatal("loads of same key returned different buffers")
	}
	if m.Faults() != 1 || m.Rehits() != 1 {
		t.Fatalf("faults=%d rehits=%d", m.Faults(), m.Rehits())
	}
	if d.ReadOps() != 1 {
		t.Fatalf("disk read %d times, want 1", d.ReadOps())
	}
	b1.Release()
	b2.Release()
}

func TestMemoryPerJobKeysLoadCopies(t *testing.T) {
	d := NewDisk()
	d.Write("p0", make([]byte, 100))
	m := NewMemory(d, 1000)
	b1, _, _ := m.Load("p0#job1", "p0")
	b2, _, _ := m.Load("p0#job2", "p0")
	if b1 == b2 {
		t.Fatal("distinct keys shared a buffer")
	}
	if b1.BaseAddr == b2.BaseAddr {
		t.Fatal("copies share a simulated address")
	}
	if m.Used() < 200 {
		t.Fatalf("used = %d, want >= 200 (two copies)", m.Used())
	}
	b1.Release()
	b2.Release()
}

func TestMemoryEvictsLRUUnderPressure(t *testing.T) {
	d := NewDisk()
	for i := 0; i < 4; i++ {
		d.Write(fmt.Sprintf("p%d", i), make([]byte, 400))
	}
	m := NewMemory(d, 1000) // fits 2 buffers
	for i := 0; i < 4; i++ {
		b, _, err := m.Load(fmt.Sprintf("p%d", i), fmt.Sprintf("p%d", i))
		if err != nil {
			t.Fatal(err)
		}
		b.Release()
	}
	if m.Evictions() == 0 {
		t.Fatal("expected evictions under pressure")
	}
	// p0 must be gone (LRU); reloading faults again.
	_, io, err := m.Load("p0", "p0")
	if err != nil {
		t.Fatal(err)
	}
	if io == IONone {
		t.Fatal("p0 should have been evicted and re-read")
	}
}

func TestMemoryPinnedBuffersNotEvicted(t *testing.T) {
	d := NewDisk()
	d.Write("pinned", make([]byte, 600))
	d.Write("other", make([]byte, 600))
	m := NewMemory(d, 1000)
	pinned, _, err := m.Load("pinned", "pinned")
	if err != nil {
		t.Fatal(err)
	}
	// Loading another 600B buffer overcommits: pinned cannot be evicted and
	// both cannot fit, but the load must still succeed (an OS swaps rather
	// than refusing memory).
	other, _, err := m.Load("other", "other")
	if err != nil {
		t.Fatalf("overcommitted load failed: %v", err)
	}
	if m.Overcommits() != 1 {
		t.Fatalf("overcommits = %d, want 1", m.Overcommits())
	}
	if _, ok := m.Acquire("pinned"); !ok {
		t.Fatal("pinned buffer was evicted")
	}
	_ = pinned
	_ = other
}

func TestMemoryAcquireOnlyResident(t *testing.T) {
	d := NewDisk()
	d.Write("x", make([]byte, 10))
	m := NewMemory(d, 100)
	if _, ok := m.Acquire("x"); ok {
		t.Fatal("Acquire of non-resident should fail")
	}
	b, _, _ := m.Load("x", "x")
	b2, ok := m.Acquire("x")
	if !ok || b2 != b {
		t.Fatal("Acquire of resident failed")
	}
	b.Release()
	b2.Release()
	m.Drop("x")
	if _, ok := m.Acquire("x"); ok {
		t.Fatal("buffer should be dropped")
	}
}

func TestReleaseUnpinnedPanics(t *testing.T) {
	d := NewDisk()
	d.Write("x", make([]byte, 10))
	m := NewMemory(d, 100)
	b, _, _ := m.Load("x", "x")
	b.Release()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double release")
		}
	}()
	b.Release()
}

func TestJobDataAccounting(t *testing.T) {
	d := NewDisk()
	m := NewMemory(d, 1000)
	m.ReserveJobData(300)
	if m.Used() != 300 {
		t.Fatalf("used = %d, want 300", m.Used())
	}
	m.ReserveJobData(200)
	m.ReserveJobData(-500)
	if m.Used() != 0 {
		t.Fatalf("used = %d, want 0", m.Used())
	}
	if m.Peak() != 500 {
		t.Fatalf("peak = %d, want 500", m.Peak())
	}
	// Releasing more than was reserved is a caller accounting bug: it must
	// panic (a silent clamp would let Used/Peak drift from reality).
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on release-more-than-reserved")
		}
		if m.Used() != 0 {
			t.Fatalf("used = %d after failed over-release, want 0", m.Used())
		}
	}()
	m.ReserveJobData(-100)
}

func TestAllocAddrAlignedAndDisjoint(t *testing.T) {
	d := NewDisk()
	m := NewMemory(d, 1000)
	f := func(sizes []uint16) bool {
		type region struct{ base, end uint64 }
		var regions []region
		for _, sz := range sizes {
			b := m.AllocAddr(int64(sz) + 1)
			if b%64 != 0 {
				return false
			}
			r := region{b, b + uint64(sz) + 1}
			for _, prev := range regions {
				if r.base < prev.end && prev.base < r.end {
					return false // overlap
				}
			}
			regions = append(regions, r)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentLoadsSingleFault(t *testing.T) {
	d := NewDisk()
	d.Write("p", make([]byte, 64))
	m := NewMemory(d, 1000)
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b, _, err := m.Load("p", "p")
			if err != nil {
				t.Error(err)
				return
			}
			b.Release()
		}()
	}
	wg.Wait()
	// The double-check in Load may rarely allow 2 reads; never 16.
	if m.Faults() > 2 {
		t.Fatalf("faults = %d, want <= 2 for one shared key", m.Faults())
	}
}

package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"graphm/internal/faultfs"
)

// WAL is a segmented, batched write-ahead log with group commit. Appends
// from concurrent writers are framed into a shared in-memory batch; a single
// flusher goroutine writes and fsyncs whole batches, so every append that
// arrives while a flush is in flight shares the next fsync (fsync
// coalescing). Callers get durability by waiting on the commit func an
// Append returns — the record is on stable storage once commit returns nil.
//
// Record framing: uvarint payload length, payload bytes, CRC32-Castagnoli of
// the payload (4 bytes little-endian). A crash can leave a torn final
// record; Open truncates the damaged tail of the newest segment and resumes
// appending after the last whole record.
//
// Failure handling: the flusher tracks goodOff, the durable byte offset of
// the current segment. A failed write or fsync may leave torn bytes past
// goodOff, so recovery is truncate-to-goodOff, reopen, rewrite the whole
// batch, fsync — under the WALOptions.Retry backoff policy. A batch that
// exhausts its retries fails with ErrDurability and latches the log into a
// failed state: further Appends are refused (never silently dropped) until
// Probe repairs the segment and re-arms the log.
type WAL struct {
	dir    string
	noSync bool
	fsys   faultfs.FS
	retry  RetryPolicy

	mu       sync.Mutex
	cond     *sync.Cond
	f        faultfs.File
	seg      int
	goodOff  int64 // durable bytes in the current segment
	cur      *walBatch
	flushing bool
	closed   bool
	failed   bool // retries exhausted; cleared by Probe
	crashed  bool // simulated crash: refuse all writes, Close skips syncs

	appends  uint64
	batches  uint64
	syncs    uint64
	retries  uint64
	walBytes uint64
}

type walBatch struct {
	buf  []byte
	done chan struct{}
	err  error
}

// WALStats is a snapshot of the log's group-commit counters. A Syncs count
// well below Appends is the fsync-coalescing win the batched design buys;
// Retries counts flushes that needed the truncate-rewrite recovery path.
type WALStats struct {
	Appends uint64
	Batches uint64
	Syncs   uint64
	Retries uint64
	Bytes   uint64
	Segment int
	Failed  bool
}

// WALOptions tunes a log opened by OpenWAL.
type WALOptions struct {
	// NoSync skips fsyncs for tests and benchmarks that measure batching
	// alone.
	NoSync bool
	// FS is the filesystem seam; nil means the real filesystem.
	FS faultfs.FS
	// Retry bounds the flush-failure recovery loop; zero-value means the
	// package defaults.
	Retry RetryPolicy
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func walSegmentName(seg int) string { return fmt.Sprintf("wal-%08d.log", seg) }

// walSegments lists existing segment numbers in dir, ascending.
func walSegments(fsys faultfs.FS, dir string) ([]int, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// OpenWAL opens (or creates) the log in dir, repairing any torn tail left by
// a crash in the newest segment.
func OpenWAL(dir string, opts WALOptions) (*WAL, error) {
	fsys := opts.FS
	if fsys == nil {
		fsys = faultfs.OS{}
	}
	if err := fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := walSegments(fsys, dir)
	if err != nil {
		return nil, err
	}
	seg := 0
	var goodOff int64
	if len(segs) > 0 {
		seg = segs[len(segs)-1]
		goodOff, err = repairSegment(fsys, filepath.Join(dir, walSegmentName(seg)))
		if err != nil {
			return nil, err
		}
	}
	f, err := fsys.OpenFile(filepath.Join(dir, walSegmentName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, noSync: opts.NoSync, fsys: fsys, retry: opts.Retry.normalized(), f: f, seg: seg, goodOff: goodOff}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// repairSegment truncates path after its last whole record and returns the
// surviving length.
func repairSegment(fsys faultfs.FS, path string) (int64, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	good := scanRecords(data, nil)
	if good == int64(len(data)) {
		return good, nil
	}
	if err := fsys.Truncate(path, good); err != nil {
		return 0, err
	}
	return good, nil
}

// scanRecords walks framed records in data, calling fn (if non-nil) for each
// intact payload, and returns the offset just past the last intact record.
func scanRecords(data []byte, fn func(payload []byte)) int64 {
	off := int64(0)
	for off < int64(len(data)) {
		n, k := binary.Uvarint(data[off:])
		if k <= 0 {
			break
		}
		end := off + int64(k) + int64(n) + 4
		if end > int64(len(data)) || n > uint64(len(data)) {
			break
		}
		payload := data[off+int64(k) : off+int64(k)+int64(n)]
		sum := binary.LittleEndian.Uint32(data[end-4 : end])
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		if fn != nil {
			fn(payload)
		}
		off = end
	}
	return off
}

// frameRecord appends the framed encoding of payload to dst.
func frameRecord(dst, payload []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	dst = append(dst, lenBuf[:k]...)
	dst = append(dst, payload...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload, castagnoli))
	return append(dst, crcBuf[:]...)
}

// Append queues one record and returns a commit func that blocks until the
// record (and every record batched with it) is durable. Appending is cheap
// and non-blocking; only commit waits on I/O. Callers needing ordered
// records must serialize their Append calls (commit calls may be concurrent).
// A WAL in the failed state refuses appends with ErrDurability rather than
// queueing records it cannot persist.
func (w *WAL) Append(payload []byte) (commit func() error, err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, fmt.Errorf("storage: append to closed WAL")
	}
	if w.crashed {
		w.mu.Unlock()
		return nil, fmt.Errorf("storage: append to crashed WAL: %w", ErrDurability)
	}
	if w.failed {
		w.mu.Unlock()
		return nil, fmt.Errorf("storage: WAL in failed state: %w", ErrDurability)
	}
	if w.cur == nil {
		w.cur = &walBatch{done: make(chan struct{})}
	}
	w.cur.buf = frameRecord(w.cur.buf, payload)
	w.appends++
	b := w.cur
	if !w.flushing {
		w.flushing = true
		go w.flushLoop()
	}
	w.mu.Unlock()
	return func() error { <-b.done; return b.err }, nil
}

// flushLoop drains batches until none are pending. Appends that arrive while
// a batch is being written accumulate into the next batch and share one sync.
func (w *WAL) flushLoop() {
	for {
		w.mu.Lock()
		b := w.cur
		if b == nil {
			w.flushing = false
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		w.cur = nil
		f := w.f
		if w.failed || f == nil {
			// A previous batch exhausted its retries while this one was
			// queueing (its Append raced recoverFlush before the failed state
			// latched), and recovery left no usable segment handle. Fail the
			// batch with ErrDurability rather than writing through nil.
			w.mu.Unlock()
			b.err = fmt.Errorf("storage: WAL in failed state: %w", ErrDurability)
			close(b.done)
			continue
		}
		w.batches++
		w.walBytes += uint64(len(b.buf))
		w.mu.Unlock()

		_, err := f.Write(b.buf)
		if err == nil && !w.noSync {
			err = f.Sync()
		}
		if err != nil {
			err = w.recoverFlush(b.buf, err)
		}
		w.mu.Lock()
		if err == nil {
			w.goodOff += int64(len(b.buf))
			if !w.noSync {
				w.syncs++
			}
		} else {
			w.failed = true
		}
		w.mu.Unlock()
		b.err = err
		close(b.done)
	}
}

// recoverFlush retries a failed batch flush: a failed write or fsync may
// have left torn bytes past goodOff, so each attempt truncates the segment
// back to the last durable offset, reopens it, rewrites the whole batch and
// fsyncs, with capped exponential backoff between attempts. Returns nil once
// the batch is durable, or the final cause wrapped in ErrDurability.
func (w *WAL) recoverFlush(buf []byte, cause error) error {
	p := w.retry
	w.mu.Lock()
	path := filepath.Join(w.dir, walSegmentName(w.seg))
	goodOff := w.goodOff
	w.mu.Unlock()
	for attempt := 1; attempt < p.Attempts; attempt++ {
		p.Sleep(p.backoff(attempt))
		if err := w.rewriteTail(path, goodOff, buf); err != nil {
			cause = err
			continue
		}
		w.mu.Lock()
		w.retries++
		w.mu.Unlock()
		return nil
	}
	return fmt.Errorf("storage: wal flush failed after %d attempts: %w (%w)", p.Attempts, ErrDurability, cause)
}

// rewriteTail is one recovery attempt: truncate the segment to goodOff,
// reopen it, write buf, fsync. On success the reopened handle replaces w.f.
func (w *WAL) rewriteTail(path string, goodOff int64, buf []byte) error {
	w.mu.Lock()
	if w.f != nil {
		// The handle already failed; its close error carries no new information.
		_ = w.f.Close() //nolint:discarded // annotated: closing an already-failed handle
		w.f = nil
	}
	w.mu.Unlock()
	if err := w.fsys.Truncate(path, goodOff); err != nil {
		return err
	}
	f, err := w.fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close() //nolint:discarded // annotated: write already failed
		return err
	}
	if !w.noSync {
		if err := f.Sync(); err != nil {
			_ = f.Close() //nolint:discarded // annotated: sync already failed
			return err
		}
	}
	w.mu.Lock()
	w.f = f
	w.mu.Unlock()
	return nil
}

// waitIdleLocked blocks until no flush is in flight and no batch is queued.
func (w *WAL) waitIdleLocked() {
	for w.flushing {
		w.cond.Wait()
	}
}

// Probe checks the durable path and, if the log latched into the failed
// state, repairs the current segment (truncating any torn tail back to the
// durable offset) and re-arms appends. It is the recovery half of graceful
// degradation: the daemon calls it periodically while degraded.
func (w *WAL) Probe() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed || w.crashed {
		return fmt.Errorf("storage: probe of closed WAL")
	}
	w.waitIdleLocked()
	path := filepath.Join(w.dir, walSegmentName(w.seg))
	if w.failed || w.f == nil {
		if w.f != nil {
			// The handle already failed; nothing useful in its close error.
			_ = w.f.Close() //nolint:discarded // annotated: closing an already-failed handle
			w.f = nil
		}
		if err := w.fsys.Truncate(path, w.goodOff); err != nil {
			return fmt.Errorf("storage: probe truncate: %w", err)
		}
		f, err := w.fsys.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("storage: probe reopen: %w", err)
		}
		w.f = f
	}
	if !w.noSync {
		if err := w.f.Sync(); err != nil {
			return fmt.Errorf("storage: probe sync: %w", err)
		}
	}
	w.failed = false
	return nil
}

// Rotate seals the current segment and starts a new one, returning the new
// segment number. Records appended after Rotate land in the new segment, so
// a checkpoint that captures state before any post-rotate record can name
// the new segment as the first one it does not cover.
func (w *WAL) Rotate() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("storage: rotate of closed WAL")
	}
	if w.failed {
		return 0, fmt.Errorf("storage: rotate of failed WAL: %w", ErrDurability)
	}
	w.waitIdleLocked()
	// Re-check after the wait: the in-flight flush may have exhausted its
	// retries while we blocked, latching failed with no usable handle.
	if w.failed || w.f == nil {
		return 0, fmt.Errorf("storage: rotate of failed WAL: %w", ErrDurability)
	}
	if err := w.f.Close(); err != nil {
		return 0, err
	}
	w.seg++
	f, err := w.fsys.OpenFile(filepath.Join(w.dir, walSegmentName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	w.f = f
	w.goodOff = 0
	if !w.noSync {
		if err := w.fsys.SyncDir(w.dir); err != nil {
			return 0, fmt.Errorf("storage: rotate dir sync: %w", err)
		}
	}
	return w.seg, nil
}

// Segment returns the current segment number.
func (w *WAL) Segment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// Stats returns a snapshot of the append/batch/sync counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{Appends: w.appends, Batches: w.batches, Syncs: w.syncs, Retries: w.retries, Bytes: w.walBytes, Segment: w.seg, Failed: w.failed}
}

// crash simulates process death for the chaos harness: every later write is
// refused and Close skips flushing, so the on-disk state is exactly what was
// durable at the moment of the crash.
func (w *WAL) crash() {
	w.mu.Lock()
	w.crashed = true
	w.mu.Unlock()
}

// Close flushes pending batches and closes the current segment file.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	if !w.crashed {
		w.waitIdleLocked()
	}
	w.closed = true
	var err error
	if w.f != nil {
		err = w.f.Close()
		w.f = nil
	}
	crashed := w.crashed
	w.mu.Unlock()
	if crashed {
		// A simulated crash never reports close errors: the process "died".
		return nil
	}
	return err
}

// RemoveSegmentsBefore deletes sealed segments older than seg — safe once a
// checkpoint covering them is durable.
func (w *WAL) RemoveSegmentsBefore(seg int) error {
	segs, err := walSegments(w.fsys, w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seg {
			if err := w.fsys.Remove(filepath.Join(w.dir, walSegmentName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadWALFrom replays every intact record in segments >= fromSeg, in segment
// then file order. A torn tail in the newest segment is skipped silently (it
// was never acknowledged); damage in an older, sealed segment is an error.
func ReadWALFrom(fsys faultfs.FS, dir string, fromSeg int, fn func(payload []byte)) (int, error) {
	segs, err := walSegments(fsys, dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	records := 0
	for i, s := range segs {
		if s < fromSeg {
			continue
		}
		data, err := fsys.ReadFile(filepath.Join(dir, walSegmentName(s)))
		if err != nil {
			return records, err
		}
		good := scanRecords(data, func(payload []byte) {
			records++
			fn(payload)
		})
		if good != int64(len(data)) && i != len(segs)-1 {
			return records, fmt.Errorf("storage: corrupt record in sealed WAL segment %d at offset %d", s, good)
		}
	}
	return records, nil
}

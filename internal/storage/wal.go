package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
)

// WAL is a segmented, batched write-ahead log with group commit. Appends
// from concurrent writers are framed into a shared in-memory batch; a single
// flusher goroutine writes and fsyncs whole batches, so every append that
// arrives while a flush is in flight shares the next fsync (fsync
// coalescing). Callers get durability by waiting on the commit func an
// Append returns — the record is on stable storage once commit returns nil.
//
// Record framing: uvarint payload length, payload bytes, CRC32-Castagnoli of
// the payload (4 bytes little-endian). A crash can leave a torn final
// record; Open truncates the damaged tail of the newest segment and resumes
// appending after the last whole record.
type WAL struct {
	dir    string
	noSync bool

	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	seg      int
	cur      *walBatch
	flushing bool
	closed   bool

	appends  uint64
	batches  uint64
	syncs    uint64
	walBytes uint64
}

type walBatch struct {
	buf  []byte
	done chan struct{}
	err  error
}

// WALStats is a snapshot of the log's group-commit counters. A Syncs count
// well below Appends is the fsync-coalescing win the batched design buys.
type WALStats struct {
	Appends uint64
	Batches uint64
	Syncs   uint64
	Bytes   uint64
	Segment int
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func walSegmentName(seg int) string { return fmt.Sprintf("wal-%08d.log", seg) }

// walSegments lists existing segment numbers in dir, ascending.
func walSegments(dir string) ([]int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "wal-%08d.log", &n); err == nil {
			segs = append(segs, n)
		}
	}
	sort.Ints(segs)
	return segs, nil
}

// OpenWAL opens (or creates) the log in dir, repairing any torn tail left by
// a crash in the newest segment. noSync skips fsyncs for tests and
// benchmarks that measure batching alone.
func OpenWAL(dir string, noSync bool) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := walSegments(dir)
	if err != nil {
		return nil, err
	}
	seg := 0
	if len(segs) > 0 {
		seg = segs[len(segs)-1]
		if err := repairSegment(filepath.Join(dir, walSegmentName(seg))); err != nil {
			return nil, err
		}
	}
	f, err := os.OpenFile(filepath.Join(dir, walSegmentName(seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, noSync: noSync, f: f, seg: seg}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// repairSegment truncates path after its last whole record.
func repairSegment(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	good := scanRecords(data, nil)
	if good == int64(len(data)) {
		return nil
	}
	return os.Truncate(path, good)
}

// scanRecords walks framed records in data, calling fn (if non-nil) for each
// intact payload, and returns the offset just past the last intact record.
func scanRecords(data []byte, fn func(payload []byte)) int64 {
	off := int64(0)
	for off < int64(len(data)) {
		n, k := binary.Uvarint(data[off:])
		if k <= 0 {
			break
		}
		end := off + int64(k) + int64(n) + 4
		if end > int64(len(data)) || n > uint64(len(data)) {
			break
		}
		payload := data[off+int64(k) : off+int64(k)+int64(n)]
		sum := binary.LittleEndian.Uint32(data[end-4 : end])
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		if fn != nil {
			fn(payload)
		}
		off = end
	}
	return off
}

// frameRecord appends the framed encoding of payload to dst.
func frameRecord(dst, payload []byte) []byte {
	var lenBuf [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(lenBuf[:], uint64(len(payload)))
	dst = append(dst, lenBuf[:k]...)
	dst = append(dst, payload...)
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(payload, castagnoli))
	return append(dst, crcBuf[:]...)
}

// Append queues one record and returns a commit func that blocks until the
// record (and every record batched with it) is durable. Appending is cheap
// and non-blocking; only commit waits on I/O. Callers needing ordered
// records must serialize their Append calls (commit calls may be concurrent).
func (w *WAL) Append(payload []byte) (commit func() error, err error) {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil, fmt.Errorf("storage: append to closed WAL")
	}
	if w.cur == nil {
		w.cur = &walBatch{done: make(chan struct{})}
	}
	w.cur.buf = frameRecord(w.cur.buf, payload)
	w.appends++
	b := w.cur
	if !w.flushing {
		w.flushing = true
		go w.flushLoop()
	}
	w.mu.Unlock()
	return func() error { <-b.done; return b.err }, nil
}

// flushLoop drains batches until none are pending. Appends that arrive while
// a batch is being written accumulate into the next batch and share one sync.
func (w *WAL) flushLoop() {
	for {
		w.mu.Lock()
		b := w.cur
		if b == nil {
			w.flushing = false
			w.cond.Broadcast()
			w.mu.Unlock()
			return
		}
		w.cur = nil
		f := w.f
		w.batches++
		w.walBytes += uint64(len(b.buf))
		w.mu.Unlock()

		_, err := f.Write(b.buf)
		if err == nil && !w.noSync {
			err = f.Sync()
		}
		w.mu.Lock()
		if !w.noSync {
			w.syncs++
		}
		w.mu.Unlock()
		b.err = err
		close(b.done)
	}
}

// waitIdleLocked blocks until no flush is in flight and no batch is queued.
func (w *WAL) waitIdleLocked() {
	for w.flushing {
		w.cond.Wait()
	}
}

// Rotate seals the current segment and starts a new one, returning the new
// segment number. Records appended after Rotate land in the new segment, so
// a checkpoint that captures state before any post-rotate record can name
// the new segment as the first one it does not cover.
func (w *WAL) Rotate() (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return 0, fmt.Errorf("storage: rotate of closed WAL")
	}
	w.waitIdleLocked()
	if err := w.f.Close(); err != nil {
		return 0, err
	}
	w.seg++
	f, err := os.OpenFile(filepath.Join(w.dir, walSegmentName(w.seg)), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	w.f = f
	if !w.noSync {
		syncDir(w.dir)
	}
	return w.seg, nil
}

// Segment returns the current segment number.
func (w *WAL) Segment() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.seg
}

// Stats returns a snapshot of the append/batch/sync counters.
func (w *WAL) Stats() WALStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return WALStats{Appends: w.appends, Batches: w.batches, Syncs: w.syncs, Bytes: w.walBytes, Segment: w.seg}
}

// Close flushes pending batches and closes the current segment file.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.waitIdleLocked()
	w.closed = true
	err := w.f.Close()
	w.mu.Unlock()
	return err
}

// RemoveSegmentsBefore deletes sealed segments older than seg — safe once a
// checkpoint covering them is durable.
func (w *WAL) RemoveSegmentsBefore(seg int) error {
	segs, err := walSegments(w.dir)
	if err != nil {
		return err
	}
	for _, s := range segs {
		if s < seg {
			if err := os.Remove(filepath.Join(w.dir, walSegmentName(s))); err != nil {
				return err
			}
		}
	}
	return nil
}

// ReadWALFrom replays every intact record in segments >= fromSeg, in segment
// then file order. A torn tail in the newest segment is skipped silently (it
// was never acknowledged); damage in an older, sealed segment is an error.
func ReadWALFrom(dir string, fromSeg int, fn func(payload []byte)) (int, error) {
	segs, err := walSegments(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return 0, nil
		}
		return 0, err
	}
	records := 0
	for i, s := range segs {
		if s < fromSeg {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, walSegmentName(s)))
		if err != nil {
			return records, err
		}
		good := scanRecords(data, func(payload []byte) {
			records++
			fn(payload)
		})
		if good != int64(len(data)) && i != len(segs)-1 {
			return records, fmt.Errorf("storage: corrupt record in sealed WAL segment %d at offset %d", s, good)
		}
	}
	return records, nil
}

// syncDir fsyncs a directory so renames and creates within it are durable.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
}

package storage

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// TestNoDiscardedErrors enforces the package's durability discipline: no
// `_ = f()` (or `_, _ = f()`) assignments that throw away a call's result —
// historically how fsync errors went missing here. A site that genuinely
// has nothing to do with the error must carry a `//nolint:discarded`
// comment on the same line explaining why.
func TestNoDiscardedErrors(t *testing.T) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	for _, pkg := range pkgs {
		for name, file := range pkg.Files {
			if strings.HasSuffix(name, "_test.go") {
				continue
			}
			annotated := map[int]bool{}
			for _, cg := range file.Comments {
				for _, c := range cg.List {
					if strings.Contains(c.Text, "nolint:discarded") {
						annotated[fset.Position(c.Pos()).Line] = true
					}
				}
			}
			ast.Inspect(file, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				allBlank := len(as.Lhs) > 0
				for _, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || id.Name != "_" {
						allBlank = false
					}
				}
				if !allBlank {
					return true
				}
				if len(as.Rhs) != 1 {
					return true
				}
				if _, isCall := as.Rhs[0].(*ast.CallExpr); !isCall {
					return true
				}
				pos := fset.Position(as.Pos())
				if !annotated[pos.Line] {
					t.Errorf("%s:%d: discarded call result (annotate with //nolint:discarded and a reason, or handle the error)", pos.Filename, pos.Line)
				}
				return true
			})
		}
	}
}

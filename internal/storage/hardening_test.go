package storage

import (
	"testing"

	"graphm/internal/graph"
)

// TestMemoryOvercommitAllPinned pins every resident buffer and forces a load
// past the budget: the pool must admit the load anyway (an OS cannot refuse
// memory to running processes), count one overcommit, and keep Used exact.
func TestMemoryOvercommitAllPinned(t *testing.T) {
	d := NewDisk()
	d.Write("a", make([]byte, 400))
	d.Write("b", make([]byte, 400))
	d.Write("c", make([]byte, 300))
	m := NewMemory(d, 1000)

	bufA, _, err := m.Load("a", "a")
	if err != nil {
		t.Fatal(err)
	}
	bufB, _, err := m.Load("b", "b")
	if err != nil {
		t.Fatal(err)
	}
	// Both buffers pinned; loading c (300 B) exceeds the 1000 B budget with
	// no evictable victim.
	bufC, _, err := m.Load("c", "c")
	if err != nil {
		t.Fatal(err)
	}
	if m.Overcommits() != 1 {
		t.Fatalf("overcommits = %d, want 1", m.Overcommits())
	}
	if m.Evictions() != 0 {
		t.Fatalf("evictions = %d, want 0 (every victim was pinned)", m.Evictions())
	}
	if m.Used() != 1100 {
		t.Fatalf("used = %d, want 1100 (admitted past budget)", m.Used())
	}
	if m.Peak() != 1100 {
		t.Fatalf("peak = %d, want 1100", m.Peak())
	}

	// Releasing the pins makes the overflow evictable again: the next load
	// evicts LRU-first instead of overcommitting.
	bufA.Release()
	bufB.Release()
	bufC.Release()
	d.Write("d", make([]byte, 600))
	if _, _, err := m.Load("d", "d"); err != nil {
		t.Fatal(err)
	}
	if m.Overcommits() != 1 {
		t.Fatalf("overcommits = %d after release, want still 1", m.Overcommits())
	}
	if m.Evictions() == 0 {
		t.Fatal("expected evictions once pins were released")
	}
	if m.Used() > 1000 {
		t.Fatalf("used = %d, want within budget after evictions", m.Used())
	}
}

// TestDiskWriteInvalidationAccounting regression-tests the page-cache
// accounting bug where rewriting a cached blob with a different size
// subtracted the NEW length from cacheUsed instead of the cached one.
func TestDiskWriteInvalidationAccounting(t *testing.T) {
	d := NewDisk()
	d.SetPageCache(10000)
	d.Write("x", make([]byte, 1000))
	if _, _, err := d.ReadCached("x"); err != nil { // admits 1000 B to the cache
		t.Fatal(err)
	}
	d.Write("x", make([]byte, 10)) // old code subtracted 10, leaking 990
	if _, _, err := d.ReadCached("x"); err != nil {
		t.Fatal(err)
	}
	d.mu.Lock()
	used := d.cacheUsed
	d.mu.Unlock()
	if used != 10 {
		t.Fatalf("cacheUsed = %d, want 10", used)
	}
}

// TestDiskWriteSizedMetering checks reads of a compressed blob meter at the
// transfer (compressed) size while callers still receive the raw bytes.
func TestDiskWriteSizedMetering(t *testing.T) {
	d := NewDisk()
	raw := make([]byte, 1200)
	d.WriteSized("p", raw, 300)
	if got := d.WriteBytes(); got != 300 {
		t.Fatalf("write bytes = %d, want 300", got)
	}
	if got := d.TransferSize("p"); got != 300 {
		t.Fatalf("transfer size = %d, want 300", got)
	}
	if got := d.Size("p"); got != 1200 {
		t.Fatalf("raw size = %d, want 1200", got)
	}
	blob, err := d.Read("p")
	if err != nil || len(blob) != 1200 {
		t.Fatalf("read: %v len=%d", err, len(blob))
	}
	if got := d.ReadBytes() - 0; got != 300 {
		t.Fatalf("read bytes = %d, want 300", got)
	}
	d.ResetCounters()
	if _, _, err := d.ReadCached("p"); err != nil {
		t.Fatal(err)
	}
	if got := d.ReadBytes(); got != 300 {
		t.Fatalf("cached read bytes = %d, want 300", got)
	}
	// Plain Write resets the blob to raw metering.
	d.Write("p", raw)
	if got := d.TransferSize("p"); got != 1200 {
		t.Fatalf("transfer after raw rewrite = %d, want 1200", got)
	}
}

// TestCompressedGridMetersFewerBytes is the loads/IO story end to end: a
// partition registered with its compressed transfer size streams fewer
// metered bytes through the buffer pool than the raw registration, while
// the decoded edges are identical.
func TestCompressedGridMetersFewerBytes(t *testing.T) {
	edges := make([]graph.Edge, 2000)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i / 4), Dst: graph.VertexID(i % 500)}
	}
	raw := graph.EncodeEdges(edges)
	comp := CompressEdges(edges)
	if len(comp) >= len(raw) {
		t.Fatalf("compressed %d >= raw %d", len(comp), len(raw))
	}

	d := NewDisk()
	d.WriteSized("part", raw, int64(len(comp)))
	m := NewMemory(d, 1<<20)
	d.ResetCounters()
	buf, _, err := m.Load("part", "part")
	if err != nil {
		t.Fatal(err)
	}
	defer buf.Release()
	got, err := graph.DecodeEdges(buf.Data)
	if err != nil {
		t.Fatal(err)
	}
	if !edgesEqual(got, edges) {
		t.Fatal("decoded edges differ from originals")
	}
	if d.ReadBytes() != uint64(len(comp)) {
		t.Fatalf("metered %d bytes, want compressed size %d", d.ReadBytes(), len(comp))
	}
}

package storage

import (
	"graphm/internal/faultfs"

	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

func TestWALAppendCommitReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		p := []byte(fmt.Sprintf("record-%d", i))
		want = append(want, p)
		commit, err := w.Append(p)
		if err != nil {
			t.Fatal(err)
		}
		if err := commit(); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	var got [][]byte
	n, err := ReadWALFrom(faultfs.OS{}, dir, 0, func(p []byte) {
		got = append(got, append([]byte(nil), p...))
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != len(want) {
		t.Fatalf("replayed %d records, want %d", n, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestWALGroupCommitCoalesces drives many concurrent appends and checks the
// flusher wrote them in fewer batches than appends — the group-commit win.
func TestWALGroupCommitCoalesces(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		commit, err := w.Append([]byte(fmt.Sprintf("r%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = commit()
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	st := w.Stats()
	if st.Appends != n {
		t.Fatalf("appends = %d, want %d", st.Appends, n)
	}
	if st.Batches == 0 || st.Batches > st.Appends {
		t.Fatalf("batches = %d out of range (0, %d]", st.Batches, st.Appends)
	}
	w.Close()
	count := 0
	if _, err := ReadWALFrom(faultfs.OS{}, dir, 0, func([]byte) { count++ }); err != nil {
		t.Fatal(err)
	}
	if count != n {
		t.Fatalf("replayed %d, want %d", count, n)
	}
}

func TestWALTornTailTruncated(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		commit, _ := w.Append([]byte(fmt.Sprintf("whole-%d", i)))
		if err := commit(); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Simulate a crash mid-append: garbage tail after the last whole record.
	path := filepath.Join(dir, walSegmentName(0))
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x09, 'p', 'a', 'r'}) // claims 9 bytes, delivers 3
	f.Close()

	// Reopen repairs the tail; replay sees only whole records.
	w2, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	commit, _ := w2.Append([]byte("after-crash"))
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	w2.Close()

	var got []string
	if _, err := ReadWALFrom(faultfs.OS{}, dir, 0, func(p []byte) { got = append(got, string(p)) }); err != nil {
		t.Fatal(err)
	}
	want := []string{"whole-0", "whole-1", "whole-2", "after-crash"}
	if len(got) != len(want) {
		t.Fatalf("records = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("records = %v, want %v", got, want)
		}
	}
}

func TestWALCorruptRecordStopsReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	commit, _ := w.Append([]byte("good"))
	commit()
	commit, _ = w.Append([]byte("flipped"))
	commit()
	w.Close()

	// Flip a payload byte of the second record: CRC catches it, replay stops
	// at the first record (tail treated as torn in the newest segment).
	path := filepath.Join(dir, walSegmentName(0))
	data, _ := os.ReadFile(path)
	data[len(data)-6] ^= 0xFF
	os.WriteFile(path, data, 0o644)

	var got []string
	n, err := ReadWALFrom(faultfs.OS{}, dir, 0, func(p []byte) { got = append(got, string(p)) })
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 || got[0] != "good" {
		t.Fatalf("replay = %v (n=%d), want [good]", got, n)
	}
}

func TestWALRotateAndSegmentGC(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	commit, _ := w.Append([]byte("seg0"))
	commit()
	seg, err := w.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seg != 1 {
		t.Fatalf("rotated to segment %d, want 1", seg)
	}
	commit, _ = w.Append([]byte("seg1"))
	commit()

	// Replay from the rotation point sees only the new segment's records.
	var got []string
	if _, err := ReadWALFrom(faultfs.OS{}, dir, seg, func(p []byte) { got = append(got, string(p)) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "seg1" {
		t.Fatalf("replay from seg %d = %v, want [seg1]", seg, got)
	}

	if err := w.RemoveSegmentsBefore(seg); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, walSegmentName(0))); !os.IsNotExist(err) {
		t.Fatalf("segment 0 survived GC: %v", err)
	}
	// Full replay still works (only segment 1 remains).
	got = nil
	if _, err := ReadWALFrom(faultfs.OS{}, dir, 0, func(p []byte) { got = append(got, string(p)) }); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != "seg1" {
		t.Fatalf("replay after GC = %v, want [seg1]", got)
	}
	w.Close()
}

func TestWALClosedAppendFails(t *testing.T) {
	w, err := OpenWAL(t.TempDir(), WALOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	w.Close()
	if _, err := w.Append([]byte("x")); err == nil {
		t.Fatal("append to closed WAL succeeded")
	}
	if _, err := w.Rotate(); err == nil {
		t.Fatal("rotate of closed WAL succeeded")
	}
}

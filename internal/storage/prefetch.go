package storage

import (
	"errors"
	"sync"
)

// ErrPrefetchCanceled is returned by Claim when the handle was canceled
// before ownership of the buffer was transferred.
var ErrPrefetchCanceled = errors.New("storage: prefetch canceled")

// PrefetchHandle is an in-flight asynchronous Load. Exactly one of Claim or
// Cancel must eventually be called, from at most one goroutine each; the
// handle owns the pinned buffer until Claim transfers it to the caller or
// Cancel releases it. GraphM's streaming executor double-buffers with it:
// while the current partition streams through the worker pool, the next
// scheduled partition loads under a handle, and a scheduler reorder (or the
// partition losing its last attendee) cancels the now-useless load instead
// of pinning a buffer nobody will stream.
type PrefetchHandle struct {
	key  string
	done chan struct{}

	mu       sync.Mutex
	buf      *Buffer
	kind     IOKind
	err      error
	claimed  bool
	canceled bool
}

// Prefetch starts an asynchronous Load of (key, diskName) on a background
// goroutine and returns immediately. The load pins the buffer exactly as
// Load does; ownership transfers to the caller at Claim, or back to the pool
// at Cancel.
func (m *Memory) Prefetch(key, diskName string) *PrefetchHandle {
	h := &PrefetchHandle{key: key, done: make(chan struct{})}
	go func() {
		buf, kind, err := m.Load(key, diskName)
		h.mu.Lock()
		h.buf, h.kind, h.err = buf, kind, err
		h.mu.Unlock()
		close(h.done)
	}()
	return h
}

// Key returns the buffer key the handle is loading.
func (h *PrefetchHandle) Key() string { return h.key }

// Ready reports whether the background load has completed (successfully or
// not) without blocking.
func (h *PrefetchHandle) Ready() bool {
	select {
	case <-h.done:
		return true
	default:
		return false
	}
}

// Claim waits for the load to finish and transfers the pinned buffer to the
// caller, which must Release it like any Load result. Claiming a canceled
// handle returns ErrPrefetchCanceled.
func (h *PrefetchHandle) Claim() (*Buffer, IOKind, error) {
	<-h.done
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.canceled {
		return nil, IONone, ErrPrefetchCanceled
	}
	h.claimed = true
	return h.buf, h.kind, h.err
}

// Cancel abandons the prefetch: it waits for the in-flight load to settle
// and releases the buffer back to the pool. Idempotent; a no-op after Claim.
func (h *PrefetchHandle) Cancel() {
	h.mu.Lock()
	if h.claimed || h.canceled {
		h.mu.Unlock()
		return
	}
	h.canceled = true
	h.mu.Unlock()
	<-h.done
	h.mu.Lock()
	buf := h.buf
	h.buf = nil
	h.mu.Unlock()
	if buf != nil {
		buf.Release()
	}
}

// PinCount returns the number of live references to key's resident buffer,
// 0 when the buffer is unpinned or not resident. Exposed for the prefetch
// lifecycle tests and leak diagnostics.
func (m *Memory) PinCount(key string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	if buf, ok := m.resident[key]; ok {
		return buf.refs
	}
	return 0
}

package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"sort"

	"graphm/internal/faultfs"
	"graphm/internal/graph"
)

// Edge chunk compression: partition edge streams are sorted runs (grid
// buckets keep edges grouped by source block), so consecutive edges have
// tiny src/dst deltas. Each edge is encoded as zigzag-varint deltas of src
// and dst against the previous edge plus a uvarint of the float32 weight
// bits XORed with the previous weight's bits (identical weights — the common
// unweighted case — cost one byte). Fewer bytes crossing the disk→memory
// boundary directly improves the paper's loads/IO metric (Figure 12).

// CompressEdges encodes edges into the delta/varint wire format.
func CompressEdges(edges []graph.Edge) []byte {
	buf := make([]byte, 0, 1+len(edges)*4)
	var scratch [binary.MaxVarintLen64]byte
	k := binary.PutUvarint(scratch[:], uint64(len(edges)))
	buf = append(buf, scratch[:k]...)
	var prevSrc, prevDst int64
	var prevW uint32
	for _, e := range edges {
		k = binary.PutVarint(scratch[:], int64(e.Src)-prevSrc)
		buf = append(buf, scratch[:k]...)
		k = binary.PutVarint(scratch[:], int64(e.Dst)-prevDst)
		buf = append(buf, scratch[:k]...)
		w := floatBits(e.Weight)
		k = binary.PutUvarint(scratch[:], uint64(w^prevW))
		buf = append(buf, scratch[:k]...)
		prevSrc, prevDst, prevW = int64(e.Src), int64(e.Dst), w
	}
	return buf
}

// DecompressEdges decodes a CompressEdges payload.
func DecompressEdges(data []byte) ([]graph.Edge, error) {
	n, k := binary.Uvarint(data)
	if k <= 0 {
		return nil, fmt.Errorf("storage: corrupt edge chunk header")
	}
	if n > uint64(len(data))*8 {
		return nil, fmt.Errorf("storage: implausible edge count %d in %d-byte chunk", n, len(data))
	}
	off := k
	edges := make([]graph.Edge, 0, n)
	var prevSrc, prevDst int64
	var prevW uint32
	for i := uint64(0); i < n; i++ {
		dSrc, k := binary.Varint(data[off:])
		if k <= 0 {
			return nil, fmt.Errorf("storage: corrupt edge chunk at edge %d", i)
		}
		off += k
		dDst, k := binary.Varint(data[off:])
		if k <= 0 {
			return nil, fmt.Errorf("storage: corrupt edge chunk at edge %d", i)
		}
		off += k
		dw, k := binary.Uvarint(data[off:])
		if k <= 0 {
			return nil, fmt.Errorf("storage: corrupt edge chunk at edge %d", i)
		}
		off += k
		prevSrc += dSrc
		prevDst += dDst
		prevW ^= uint32(dw)
		edges = append(edges, graph.Edge{Src: graph.VertexID(prevSrc), Dst: graph.VertexID(prevDst), Weight: bitsFloat(prevW)})
	}
	if off != len(data) {
		return nil, fmt.Errorf("storage: %d trailing bytes after edge chunk", len(data)-off)
	}
	return edges, nil
}

func floatBits(f float32) uint32 { return math.Float32bits(f) }
func bitsFloat(b uint32) float32 { return math.Float32frombits(b) }

// Checkpoint file layout (checkpoint-%08d.ck, numbered by the first WAL
// segment it does NOT cover — replay starts there):
//
//	magic "GMCK" | uvarint formatVersion | uvarint snapshotVersion |
//	uvarint numPartitions | { uvarint pid | uvarint len | CompressEdges } * |
//	uvarint numOverrides | { varint jobID | uvarint pid | uvarint len |
//	CompressEdges } * | CRC32-Castagnoli of everything before it (4 bytes LE)
//
// Written to a temp file, fsynced, renamed into place, directory fsynced —
// a crash mid-write leaves either the old checkpoint or a temp file that
// LatestCheckpoint ignores.

const checkpointMagic = "GMCK"
const checkpointFormat = 1

func checkpointName(walSeg int) string { return fmt.Sprintf("checkpoint-%08d.ck", walSeg) }

// JobOverride is one pending job's private view of one partition — the
// copy-on-write mutation state that must survive WAL garbage collection
// because the job is still in flight (Section 3.3.2's job-private chunk
// copies, made durable).
type JobOverride struct {
	JobID  int
	PartID int
	Edges  []graph.Edge
}

// CheckpointState is what a checkpoint captures: the snapshot version, the
// full global edge stream of every partition at that version, and the
// private overrides of still-live jobs.
type CheckpointState struct {
	Version    uint64
	Partitions map[int][]graph.Edge
	Overrides  []JobOverride
}

// CheckpointData is a decoded checkpoint plus its size accounting.
type CheckpointData struct {
	WALSegment int
	CheckpointState
	// RawBytes and CompressedBytes report the uncompressed edge payload vs
	// the on-disk compressed size, for the durability bench's compression
	// ratio column.
	RawBytes        int64
	CompressedBytes int64
}

// WriteCheckpoint atomically persists a checkpoint covering WAL segments
// < walSeg.
func WriteCheckpoint(fsys faultfs.FS, dir string, walSeg int, state CheckpointState, noSync bool) error {
	buf := []byte(checkpointMagic)
	var scratch [binary.MaxVarintLen64]byte
	put := func(v uint64) {
		k := binary.PutUvarint(scratch[:], v)
		buf = append(buf, scratch[:k]...)
	}
	putEdges := func(edges []graph.Edge) {
		comp := CompressEdges(edges)
		put(uint64(len(comp)))
		buf = append(buf, comp...)
	}
	put(checkpointFormat)
	put(state.Version)
	put(uint64(len(state.Partitions)))
	pids := make([]int, 0, len(state.Partitions))
	for pid := range state.Partitions {
		pids = append(pids, pid)
	}
	sort.Ints(pids)
	for _, pid := range pids {
		put(uint64(pid))
		putEdges(state.Partitions[pid])
	}
	put(uint64(len(state.Overrides)))
	for _, ov := range state.Overrides {
		k := binary.PutVarint(scratch[:], int64(ov.JobID))
		buf = append(buf, scratch[:k]...)
		put(uint64(ov.PartID))
		putEdges(ov.Edges)
	}
	var crcBuf [4]byte
	binary.LittleEndian.PutUint32(crcBuf[:], crc32.Checksum(buf, castagnoli))
	buf = append(buf, crcBuf[:]...)

	tmp := filepath.Join(dir, checkpointName(walSeg)+".tmp")
	f, err := fsys.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close() //nolint:discarded // annotated: write already failed
		return err
	}
	if !noSync {
		if err := f.Sync(); err != nil {
			_ = f.Close() //nolint:discarded // annotated: sync already failed
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(tmp, filepath.Join(dir, checkpointName(walSeg))); err != nil {
		return err
	}
	if !noSync {
		if err := fsys.SyncDir(dir); err != nil {
			return fmt.Errorf("storage: checkpoint dir sync: %w", err)
		}
	}
	return nil
}

// readCheckpoint decodes one checkpoint file, verifying its CRC.
func readCheckpoint(fsys faultfs.FS, path string, walSeg int) (*CheckpointData, error) {
	data, err := fsys.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(checkpointMagic)+4 || string(data[:len(checkpointMagic)]) != checkpointMagic {
		return nil, fmt.Errorf("storage: %s: bad checkpoint magic", path)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("storage: %s: checkpoint CRC mismatch", path)
	}
	off := len(checkpointMagic)
	next := func() (uint64, error) {
		v, k := binary.Uvarint(body[off:])
		if k <= 0 {
			return 0, fmt.Errorf("storage: %s: truncated checkpoint", path)
		}
		off += k
		return v, nil
	}
	format, err := next()
	if err != nil {
		return nil, err
	}
	if format != checkpointFormat {
		return nil, fmt.Errorf("storage: %s: unsupported checkpoint format %d", path, format)
	}
	version, err := next()
	if err != nil {
		return nil, err
	}
	nParts, err := next()
	if err != nil {
		return nil, err
	}
	ck := &CheckpointData{WALSegment: walSeg}
	ck.Version = version
	ck.Partitions = make(map[int][]graph.Edge, nParts)
	nextEdges := func(what string, id uint64) ([]graph.Edge, error) {
		clen, err := next()
		if err != nil {
			return nil, err
		}
		if uint64(len(body)-off) < clen {
			return nil, fmt.Errorf("storage: %s: truncated %s %d", path, what, id)
		}
		edges, err := DecompressEdges(body[off : off+int(clen)])
		if err != nil {
			return nil, fmt.Errorf("storage: %s: %s %d: %w", path, what, id, err)
		}
		off += int(clen)
		ck.RawBytes += int64(len(edges)) * graph.EdgeSize
		ck.CompressedBytes += int64(clen)
		return edges, nil
	}
	for i := uint64(0); i < nParts; i++ {
		pid, err := next()
		if err != nil {
			return nil, err
		}
		edges, err := nextEdges("partition", pid)
		if err != nil {
			return nil, err
		}
		ck.Partitions[int(pid)] = edges
	}
	nOv, err := next()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nOv; i++ {
		jobID, k := binary.Varint(body[off:])
		if k <= 0 {
			return nil, fmt.Errorf("storage: %s: truncated override %d", path, i)
		}
		off += k
		pid, err := next()
		if err != nil {
			return nil, err
		}
		edges, err := nextEdges("override partition", pid)
		if err != nil {
			return nil, err
		}
		ck.Overrides = append(ck.Overrides, JobOverride{JobID: int(jobID), PartID: int(pid), Edges: edges})
	}
	return ck, nil
}

// LatestCheckpoint loads the newest valid checkpoint in dir, or nil if none
// exists. A checkpoint that fails validation (interrupted write that still
// got renamed, bit rot) is skipped in favor of the next-newest valid one.
func LatestCheckpoint(fsys faultfs.FS, dir string) (*CheckpointData, error) {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var segs []int
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "checkpoint-%08d.ck", &n); err == nil && e.Name() == checkpointName(n) {
			segs = append(segs, n)
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(segs)))
	for _, seg := range segs {
		ck, err := readCheckpoint(fsys, filepath.Join(dir, checkpointName(seg)), seg)
		if err == nil {
			return ck, nil
		}
	}
	return nil, nil
}

// RemoveCheckpointsBefore deletes checkpoints older than walSeg, keeping the
// one named walSeg (the active recovery base).
func RemoveCheckpointsBefore(fsys faultfs.FS, dir string, walSeg int) error {
	entries, err := fsys.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		var n int
		if _, err := fmt.Sscanf(e.Name(), "checkpoint-%08d.ck", &n); err == nil && e.Name() == checkpointName(n) && n < walSeg {
			if err := fsys.Remove(filepath.Join(dir, e.Name())); err != nil {
				return err
			}
		}
	}
	return nil
}

package storage

import (
	"errors"
	"time"
)

// ErrDurability marks an error from the durable path that survived retries:
// the operation was NOT made durable and the caller must not acknowledge it.
// The server uses errors.Is(err, ErrDurability) to distinguish "storage is
// sick, go degraded and answer 503" from a caller mistake (400).
var ErrDurability = errors.New("storage: durable path failed")

// RetryPolicy bounds the capped-exponential-backoff retry loop the WAL and
// ticket log run when a durable write fails: a transient fault (one injected
// fsync error, a blip of ENOSPC) is absorbed invisibly; a persistent fault
// exhausts the budget and surfaces as ErrDurability.
type RetryPolicy struct {
	// Attempts is the total number of tries including the first; 0 means the
	// default (4). 1 disables retries.
	Attempts int
	// BaseDelay is the backoff before the first retry; it doubles per retry.
	// 0 means the default (5ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff. 0 means the default (250ms).
	MaxDelay time.Duration
	// Sleep replaces time.Sleep; tests inject an instant sleeper and record
	// the requested delays. nil means time.Sleep.
	Sleep func(time.Duration)
}

func (p RetryPolicy) normalized() RetryPolicy {
	if p.Attempts == 0 {
		p.Attempts = 4
	}
	if p.BaseDelay == 0 {
		p.BaseDelay = 5 * time.Millisecond
	}
	if p.MaxDelay == 0 {
		p.MaxDelay = 250 * time.Millisecond
	}
	if p.Sleep == nil {
		p.Sleep = time.Sleep
	}
	return p
}

// backoff returns the delay before retry number attempt (1-based).
func (p RetryPolicy) backoff(attempt int) time.Duration {
	d := p.BaseDelay
	for i := 1; i < attempt; i++ {
		d *= 2
		if d >= p.MaxDelay {
			return p.MaxDelay
		}
	}
	if d > p.MaxDelay {
		return p.MaxDelay
	}
	return d
}

package storage

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"graphm/internal/faultfs"
	"graphm/internal/graph"
)

// noSleep is an instant RetryPolicy sleeper recording requested backoffs.
func noSleep(delays *[]time.Duration) func(time.Duration) {
	return func(d time.Duration) { *delays = append(*delays, d) }
}

func testEdges(n int) []graph.Edge {
	edges := make([]graph.Edge, n)
	for i := range edges {
		edges[i] = graph.Edge{Src: graph.VertexID(i), Dst: graph.VertexID(i + 1), Weight: 1}
	}
	return edges
}

func openFaultStore(t *testing.T, dir, schedule string) (*Store, *Recovery, *faultfs.Injector) {
	t.Helper()
	sched, err := faultfs.ParseSchedule(schedule)
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.New(faultfs.OS{}, sched, nil)
	var delays []time.Duration
	st, rec, err := Open(dir, StoreOptions{
		CheckpointEveryRecords: -1,
		FS:                     inj,
		Retry:                  RetryPolicy{Sleep: noSleep(&delays)},
	})
	if err != nil {
		t.Fatal(err)
	}
	return st, rec, inj
}

// TestWALTransientSyncFaultRetried: one injected fsync failure is absorbed
// by the truncate-rewrite retry; the commit still acknowledges and the
// record survives recovery.
func TestWALTransientSyncFaultRetried(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openFaultStore(t, dir, "sync:fail:path=wal-:count=1")
	commit, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(3)})
	if err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatalf("commit after transient fault: %v", err)
	}
	if stats := st.WALStats(); stats.Retries == 0 {
		t.Fatal("retry path did not run")
	}
	if !st.Health().Healthy() {
		t.Fatal("store unhealthy after absorbed transient fault")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Evolves) != 1 || len(rec.Evolves[0].Edges) != 3 {
		t.Fatalf("recovered %d evolves", len(rec.Evolves))
	}
}

// TestWALTornWriteRetried: a torn batch write is repaired (truncate to the
// durable offset, rewrite whole batch); recovery sees every record intact.
func TestWALTornWriteRetried(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openFaultStore(t, dir, "write:torn:path=wal-:count=1")
	for i := 0; i < 3; i++ {
		commit, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(i + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if err := commit(); err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Evolves) != 3 {
		t.Fatalf("recovered %d evolves, want 3", len(rec.Evolves))
	}
}

// TestWALPersistentFailureLatchesAndProbeRearms: when retries exhaust, the
// commit fails with ErrDurability, the WAL latches failed (appends refused,
// never silently dropped), and Probe repairs + re-arms once the fault
// clears. Nothing unacknowledged survives to recovery.
func TestWALPersistentFailureLatchesAndProbeRearms(t *testing.T) {
	dir := t.TempDir()
	st, _, inj := openFaultStore(t, dir, "sync:fail:path=wal-")
	commit, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(2)})
	if err != nil {
		t.Fatal(err)
	}
	err = commit()
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("commit err = %v, want ErrDurability", err)
	}
	if !errors.Is(err, faultfs.ErrInjected) {
		t.Fatalf("commit err = %v, want cause chain to reach ErrInjected", err)
	}
	if h := st.Health(); !h.WALFailed || h.Healthy() {
		t.Fatalf("health after exhausted retries = %+v", h)
	}
	// The failed WAL refuses new appends instead of queueing them.
	if _, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(1)}); !errors.Is(err, ErrDurability) {
		t.Fatalf("append on failed WAL = %v, want ErrDurability", err)
	}
	// While the fault persists, the probe fails too.
	if err := st.Probe(); err == nil {
		t.Fatal("probe succeeded while fault schedule is armed")
	}
	inj.Disarm()
	if err := st.Probe(); err != nil {
		t.Fatalf("probe after fault cleared: %v", err)
	}
	if h := st.Health(); !h.Healthy() {
		t.Fatalf("health after probe = %+v", h)
	}
	commit, err = st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(5)})
	if err != nil {
		t.Fatalf("append after re-arm: %v", err)
	}
	if err := commit(); err != nil {
		t.Fatalf("commit after re-arm: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	// Only the acknowledged record survives; the failed batch was truncated.
	if len(rec.Evolves) != 1 || len(rec.Evolves[0].Edges) != 5 {
		t.Fatalf("recovered evolves = %+v", rec.Evolves)
	}
}

// TestWALAppendDuringFailedFlushFailsGracefully: an Append that lands while
// a failing flush is inside recoverFlush's retry window (failed not yet
// latched) queues a batch that must fail with ErrDurability once retries
// exhaust — never a nil-handle write through the dead segment file.
func TestWALAppendDuringFailedFlushFailsGracefully(t *testing.T) {
	dir := t.TempDir()
	sched, err := faultfs.ParseSchedule("sync:fail:path=wal-")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.New(faultfs.OS{}, sched, nil)
	var w *WAL
	var commit2 func() error
	var appendErr error
	var once sync.Once
	// The retry sleeper runs on the flusher goroutine with no lock held:
	// queue a second batch from inside the retry window.
	sleep := func(time.Duration) {
		once.Do(func() { commit2, appendErr = w.Append([]byte("queued-during-retry")) })
	}
	w, err = OpenWAL(dir, WALOptions{FS: inj, Retry: RetryPolicy{Sleep: sleep}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	commit1, err := w.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	if err := commit1(); !errors.Is(err, ErrDurability) {
		t.Fatalf("first commit = %v, want ErrDurability", err)
	}
	if appendErr != nil {
		t.Fatalf("append during retry window refused: %v", appendErr)
	}
	if commit2 == nil {
		t.Fatal("retry sleeper never ran; the queued-batch window was not exercised")
	}
	if err := commit2(); !errors.Is(err, ErrDurability) {
		t.Fatalf("queued batch commit = %v, want ErrDurability", err)
	}
	// Neither unacknowledged record is on disk.
	inj.Disarm()
	if err := w.Probe(); err != nil {
		t.Fatalf("probe after fault cleared: %v", err)
	}
	n, err := ReadWALFrom(faultfs.OS{}, dir, 0, func([]byte) {})
	if err != nil || n != 0 {
		t.Fatalf("recovered %d records (err %v), want 0", n, err)
	}
}

// TestWALRotateDuringFailedFlushFailsGracefully: a Rotate that blocks in
// waitIdleLocked while the in-flight flush exhausts its retries must return
// ErrDurability, not close a nil segment handle.
func TestWALRotateDuringFailedFlushFailsGracefully(t *testing.T) {
	dir := t.TempDir()
	sched, err := faultfs.ParseSchedule("sync:fail:path=wal-")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.New(faultfs.OS{}, sched, nil)
	inRetry := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	sleep := func(time.Duration) {
		once.Do(func() {
			close(inRetry)
			<-release
		})
	}
	w, err := OpenWAL(dir, WALOptions{FS: inj, Retry: RetryPolicy{Sleep: sleep}})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = w.Close() }()
	commit, err := w.Append([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	<-inRetry
	rotateErr := make(chan error, 1)
	go func() {
		_, err := w.Rotate()
		rotateErr <- err
	}()
	// Let Rotate pass its pre-wait failed check and block in waitIdleLocked
	// before the flush is allowed to exhaust its retries.
	time.Sleep(20 * time.Millisecond)
	close(release)
	if err := commit(); !errors.Is(err, ErrDurability) {
		t.Fatalf("commit = %v, want ErrDurability", err)
	}
	if err := <-rotateErr; !errors.Is(err, ErrDurability) {
		t.Fatalf("Rotate = %v, want ErrDurability", err)
	}
}

// TestLogSubmitTransientAndPersistentFaults: a transient ticket-log fsync
// failure is retried invisibly; a persistent one returns ErrDurability and
// the unacknowledged line is truncated away so the log never poisons.
func TestLogSubmitTransientAndPersistentFaults(t *testing.T) {
	dir := t.TempDir()
	st, _, inj := openFaultStore(t, dir, "sync:fail:path=tickets:count=1")
	if err := st.LogSubmit(1, "a", "pagerank", 7); err != nil {
		t.Fatalf("submit with transient fault: %v", err)
	}
	// Persistent fault: every sync on tickets.log fails.
	sched, _ := faultfs.ParseSchedule("sync:fail:path=tickets")
	inj.SetSchedule(sched)
	err := st.LogSubmit(2, "b", "wcc", 8)
	if !errors.Is(err, ErrDurability) {
		t.Fatalf("submit err = %v, want ErrDurability", err)
	}
	inj.Disarm()
	if err := st.Probe(); err != nil {
		t.Fatalf("probe: %v", err)
	}
	if err := st.LogSubmit(3, "c", "bfs", 9); err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ticket 2 was never acknowledged; tickets 1 and 3 must both be pending.
	if len(rec.Pending) != 2 || rec.Pending[0].ID != 1 || rec.Pending[1].ID != 3 {
		t.Fatalf("pending = %+v", rec.Pending)
	}
	if rec.NextTicketID != 4 {
		t.Fatalf("NextTicketID = %d", rec.NextTicketID)
	}
}

// TestLogTerminalDropCountedAndTailRepaired: persistent terminal-line write
// failures are counted, and a torn terminal line is truncated so later
// lines still parse.
func TestLogTerminalDropCountedAndTailRepaired(t *testing.T) {
	dir := t.TempDir()
	st, _, inj := openFaultStore(t, dir, "")
	if err := st.LogSubmit(1, "a", "pagerank", 7); err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(2, "a", "wcc", 8); err != nil {
		t.Fatal(err)
	}
	sched, _ := faultfs.ParseSchedule("write:torn:path=tickets")
	inj.SetSchedule(sched)
	st.LogTerminal(1, "done")
	if got := st.TicketLogDropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if h := st.Health(); !h.TicketBroken {
		t.Fatalf("health = %+v, want TicketBroken", h)
	}
	inj.Disarm()
	// The next append repairs the torn tail before writing.
	st.LogTerminal(2, "canceled")
	if got := st.TicketLogDropped(); got != 1 {
		t.Fatalf("dropped after recovery = %d, want 1", got)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	// Ticket 1's terminal line was dropped (still pending — safe, idempotent
	// re-run); ticket 2's line survived the repair.
	if len(rec.Pending) != 1 || rec.Pending[0].ID != 1 {
		t.Fatalf("pending = %+v", rec.Pending)
	}
	if rec.Counts.Canceled != 1 {
		t.Fatalf("counts = %+v", rec.Counts)
	}
}

// TestLogTerminalFailureDoesNotSleepUnderLock: the best-effort terminal-line
// path never runs backoff sleeps (it holds ticketMu, which LogSubmit — an
// acknowledged path — also needs), yet still counts the drop.
func TestLogTerminalFailureDoesNotSleepUnderLock(t *testing.T) {
	dir := t.TempDir()
	sched, err := faultfs.ParseSchedule("write:fail:path=tickets")
	if err != nil {
		t.Fatal(err)
	}
	inj := faultfs.New(faultfs.OS{}, nil, nil)
	var delays []time.Duration
	st, _, err := Open(dir, StoreOptions{
		CheckpointEveryRecords: -1,
		FS:                     inj,
		Retry:                  RetryPolicy{Sleep: noSleep(&delays)},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.LogSubmit(1, "a", "pagerank", 7); err != nil {
		t.Fatal(err)
	}
	inj.SetSchedule(sched)
	st.LogTerminal(1, "done")
	if got := st.TicketLogDropped(); got != 1 {
		t.Fatalf("dropped = %d, want 1", got)
	}
	if len(delays) != 0 {
		t.Fatalf("terminal-line failure slept %v while holding ticketMu", delays)
	}
	inj.Disarm()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCloseReportsTicketSyncFailure: Store.Close propagates the final
// ticket-log sync error instead of swallowing it.
func TestCloseReportsTicketSyncFailure(t *testing.T) {
	dir := t.TempDir()
	st, _, inj := openFaultStore(t, dir, "")
	if err := st.LogSubmit(1, "a", "pagerank", 7); err != nil {
		t.Fatal(err)
	}
	sched, _ := faultfs.ParseSchedule("sync:fail:path=tickets")
	inj.SetSchedule(sched)
	if err := st.Close(); err == nil {
		t.Fatal("Close swallowed the ticket log sync failure")
	}
}

// TestCheckpointRenameFailureMidTwoPhase: a rename fault between temp write
// and install leaves only an ignorable .tmp file; the store stays usable
// and the next checkpoint succeeds.
func TestCheckpointRenameFailureMidTwoPhase(t *testing.T) {
	dir := t.TempDir()
	st, _, inj := openFaultStore(t, dir, "rename:fail:path=checkpoint-")
	commit, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(4)})
	if err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	state := CheckpointState{Version: 1, Partitions: map[int][]graph.Edge{0: testEdges(4)}}
	write, err := st.BeginCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if err := write(state); err == nil {
		t.Fatal("checkpoint write succeeded despite rename fault")
	}
	// Only the temp file exists; LatestCheckpoint ignores it.
	if ck, err := LatestCheckpoint(faultfs.OS{}, dir); err != nil || ck != nil {
		t.Fatalf("LatestCheckpoint after failed rename = %v, %v", ck, err)
	}
	ents, _ := os.ReadDir(dir)
	sawTmp := false
	for _, e := range ents {
		if filepath.Ext(e.Name()) == ".tmp" {
			sawTmp = true
		}
	}
	if !sawTmp {
		t.Fatal("expected orphaned .tmp checkpoint file")
	}
	// WAL records covering the state are still there: recovery loses nothing.
	inj.Disarm()
	write, err = st.BeginCheckpoint()
	if err != nil {
		t.Fatalf("second BeginCheckpoint: %v", err)
	}
	if err := write(state); err != nil {
		t.Fatalf("second checkpoint: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.HasCheckpoint || rec.CheckpointVersion != 1 {
		t.Fatalf("recovery = %+v", rec)
	}
}

// TestSealedSegmentCorruptionIsError: damage in a sealed (non-newest) WAL
// segment fails recovery loudly instead of silently dropping records.
func TestSealedSegmentCorruptionIsError(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openFaultStore(t, dir, "")
	commit, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := st.wal.Rotate(); err != nil {
		t.Fatal(err)
	}
	commit, err = st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the sealed segment 0.
	seg0 := filepath.Join(dir, walSegmentName(0))
	data, err := os.ReadFile(seg0)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xFF
	if err := os.WriteFile(seg0, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, StoreOptions{NoSync: true}); err == nil {
		t.Fatal("recovery accepted a corrupt sealed segment")
	}
}

// TestTornTicketLogTail: a partial final line (crash mid-append) is
// truncated at recovery; whole lines before it all survive.
func TestTornTicketLogTail(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openFaultStore(t, dir, "")
	if err := st.LogSubmit(1, "a", "pagerank", 7); err != nil {
		t.Fatal(err)
	}
	st.LogTerminal(1, "done")
	if err := st.LogSubmit(2, "b", "wcc", 8); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "tickets.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fmt.Fprintf(f, "end 2 do"); err != nil { // torn: no newline, half a status
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st2, rec, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].ID != 2 {
		t.Fatalf("pending = %+v", rec.Pending)
	}
	if rec.Counts.Done != 1 || rec.Counts.Submitted != 2 {
		t.Fatalf("counts = %+v", rec.Counts)
	}
	// The torn bytes were truncated: appending works and parses cleanly.
	st2.LogTerminal(2, "done")
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec2, err := Open(dir, StoreOptions{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Pending) != 0 || rec2.Counts.Done != 2 {
		t.Fatalf("after repair: pending=%+v counts=%+v", rec2.Pending, rec2.Counts)
	}
}

// TestCrashFreezesDurableState: after Crash, every durable write is refused
// or dropped and Close flushes nothing — the data directory holds exactly
// what was durable at the crash point.
func TestCrashFreezesDurableState(t *testing.T) {
	dir := t.TempDir()
	st, _, _ := openFaultStore(t, dir, "")
	if err := st.LogSubmit(1, "a", "pagerank", 7); err != nil {
		t.Fatal(err)
	}
	commit, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(2)})
	if err != nil {
		t.Fatal(err)
	}
	if err := commit(); err != nil {
		t.Fatal(err)
	}
	before, err := st.TicketLogBytes()
	if err != nil {
		t.Fatal(err)
	}
	st.Crash()
	if err := st.LogSubmit(2, "b", "wcc", 8); !errors.Is(err, ErrDurability) {
		t.Fatalf("submit after crash = %v", err)
	}
	if _, err := st.AppendEvolve(EvolveRecord{Op: EvolveAdd, Edges: testEdges(1)}); !errors.Is(err, ErrDurability) {
		t.Fatalf("append after crash = %v", err)
	}
	st.LogTerminal(1, "canceled") // dropped silently: the process is "dead"
	if err := st.Close(); err != nil {
		t.Fatalf("Close after crash: %v", err)
	}
	after, err := os.ReadFile(filepath.Join(dir, "tickets.log"))
	if err != nil {
		t.Fatal(err)
	}
	if string(after) != string(before) {
		t.Fatalf("ticket log changed after crash:\n%q\nvs\n%q", before, after)
	}
	_, rec, err := Open(dir, StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Pending) != 1 || rec.Pending[0].ID != 1 || len(rec.Evolves) != 1 {
		t.Fatalf("recovered state = pending %+v, evolves %d", rec.Pending, len(rec.Evolves))
	}
}

// TestRetryPolicyBackoff: backoff doubles from BaseDelay and caps at
// MaxDelay.
func TestRetryPolicyBackoff(t *testing.T) {
	p := RetryPolicy{BaseDelay: 5 * time.Millisecond, MaxDelay: 18 * time.Millisecond}.normalized()
	want := []time.Duration{5 * time.Millisecond, 10 * time.Millisecond, 18 * time.Millisecond, 18 * time.Millisecond}
	for i, w := range want {
		if got := p.backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
	d := RetryPolicy{}.normalized()
	if d.Attempts != 4 || d.BaseDelay == 0 || d.MaxDelay == 0 || d.Sleep == nil {
		t.Fatalf("defaults = %+v", d)
	}
}

package engine

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphm/internal/graph"
	"graphm/internal/memsim"
)

func TestBitmapBasics(t *testing.T) {
	b := NewBitmap(130)
	if b.Any() || b.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	b.Set(0)
	b.Set(64)
	b.Set(129)
	if !b.Has(0) || !b.Has(64) || !b.Has(129) || b.Has(1) {
		t.Fatal("Has wrong after Set")
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d, want 3", b.Count())
	}
	b.Clear(64)
	if b.Has(64) || b.Count() != 2 {
		t.Fatal("Clear failed")
	}
	b.Reset()
	if b.Any() {
		t.Fatal("Reset failed")
	}
}

func TestBitmapSetAllRespectsLength(t *testing.T) {
	for _, n := range []int{1, 63, 64, 65, 100, 128} {
		b := NewBitmap(n)
		b.SetAll()
		if b.Count() != n {
			t.Fatalf("n=%d: count = %d after SetAll", n, b.Count())
		}
	}
}

func TestBitmapRanges(t *testing.T) {
	b := NewBitmap(256)
	b.Set(100)
	if !b.AnyInRange(0, 256) || !b.AnyInRange(100, 101) || b.AnyInRange(0, 100) || b.AnyInRange(101, 256) {
		t.Fatal("AnyInRange wrong")
	}
	if b.CountInRange(0, 256) != 1 || b.CountInRange(90, 110) != 1 || b.CountInRange(0, 100) != 0 {
		t.Fatal("CountInRange wrong")
	}
	// Out-of-bounds clamping.
	if b.AnyInRange(-5, 1000) != true {
		t.Fatal("clamped range lost the bit")
	}
}

func TestBitmapRangeProperty(t *testing.T) {
	f := func(bits []uint16, lo, hi uint16) bool {
		b := NewBitmap(1 << 16)
		set := map[int]bool{}
		for _, x := range bits {
			b.Set(int(x))
			set[int(x)] = true
		}
		l, h := int(lo), int(hi)
		if l > h {
			l, h = h, l
		}
		want := 0
		for v := range set {
			if v >= l && v < h {
				want++
			}
		}
		return b.CountInRange(l, h) == want && b.AnyInRange(l, h) == (want > 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestBitmapCopyOr(t *testing.T) {
	a, b := NewBitmap(70), NewBitmap(70)
	a.Set(3)
	b.Set(69)
	b.Or(a)
	if !b.Has(3) || !b.Has(69) {
		t.Fatal("Or lost bits")
	}
	c := NewBitmap(70)
	c.CopyFrom(b)
	if c.Count() != 2 {
		t.Fatal("CopyFrom wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	c.CopyFrom(NewBitmap(71))
}

// countProg counts processed edges and activates nothing.
type countProg struct {
	active    *Bitmap
	processed int
}

func (p *countProg) Name() string { return "count" }
func (p *countProg) Reset(g *graph.Graph, rng *rand.Rand) {
	p.active = NewBitmap(g.NumV)
	p.active.SetAll()
}
func (p *countProg) BeforeIteration(iter int) bool { return iter == 0 }
func (p *countProg) ProcessEdge(e graph.Edge) bool { p.processed++; return false }
func (p *countProg) AfterIteration(iter int)       {}
func (p *countProg) Active() *Bitmap               { return p.active }
func (p *countProg) StateBytes() int64             { return 64 }
func (p *countProg) EdgeCost() float64             { return 1 }

func TestStreamEdgesCountsAndTouches(t *testing.T) {
	g, _ := graph.GenerateUniform("s", 64, 200, 1)
	cache, err := memsim.NewCache(memsim.DefaultConfig(32 << 10))
	if err != nil {
		t.Fatal(err)
	}
	prog := &countProg{}
	j := NewJob(1, prog, 1)
	j.Bind(g)
	j.StateBase = 1 << 30
	st := StreamEdges(j, g.Edges, 0, 0, cache, DefaultCostModel())
	if st.Scanned != 200 || st.Processed != 200 {
		t.Fatalf("scanned/processed = %d/%d, want 200/200", st.Scanned, st.Processed)
	}
	if prog.processed != 200 {
		t.Fatalf("program saw %d edges", prog.processed)
	}
	if j.Met.SimMemNS == 0 || j.Met.SimComputeNS == 0 {
		t.Fatal("no simulated time accumulated")
	}
	if j.Ctr.Instructions.Load() == 0 {
		t.Fatal("no LLC touches recorded")
	}
}

func TestStreamEdgesSkipsInactiveSources(t *testing.T) {
	g := graph.MustNew("skip", 4, []graph.Edge{{Src: 0, Dst: 1, Weight: 1}, {Src: 1, Dst: 2, Weight: 1}, {Src: 2, Dst: 3, Weight: 1}})
	cache, _ := memsim.NewCache(memsim.DefaultConfig(32 << 10))
	prog := &countProg{}
	j := NewJob(1, prog, 1)
	j.Bind(g)
	prog.active.Reset()
	prog.active.Set(1) // only source 1 active
	st := StreamEdges(j, g.Edges, 0, 0, cache, DefaultCostModel())
	if st.Scanned != 3 {
		t.Fatalf("scanned = %d, want 3 (all edges stream)", st.Scanned)
	}
	if st.Processed != 1 {
		t.Fatalf("processed = %d, want 1", st.Processed)
	}
}

func TestStreamEdgesSharedAddressesHitAfterLeader(t *testing.T) {
	// Two jobs streaming the same chunk at the same base address: the
	// second mostly hits — the mechanism behind GraphM's Figure 13.
	g, _ := graph.GenerateUniform("share", 64, 500, 2)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	mkJob := func(id int, stateBase uint64) *Job {
		p := &countProg{}
		j := NewJob(id, p, int64(id))
		j.Bind(g)
		j.StateBase = stateBase
		return j
	}
	leader := mkJob(1, 1<<30)
	follower := mkJob(2, 2<<30)
	StreamEdges(leader, g.Edges, 0, 0, cache, DefaultCostModel())
	StreamEdges(follower, g.Edges, 0, 0, cache, DefaultCostModel())
	if follower.Ctr.MissRate() >= leader.Ctr.MissRate() {
		t.Fatalf("follower miss rate %.3f not below leader %.3f",
			follower.Ctr.MissRate(), leader.Ctr.MissRate())
	}
}

func TestCostModelDiskNS(t *testing.T) {
	cm := DefaultCostModel()
	if got := cm.DiskNS(100e6); got != 1e9 {
		t.Fatalf("100MB at 100MB/s = %dns, want 1e9", got)
	}
}

func TestMetricsAddAndTotals(t *testing.T) {
	a := Metrics{ScannedEdges: 1, ProcessedEdges: 2, Iterations: 3, PartitionLoads: 4,
		SimComputeNS: 5, SimMemNS: 6, SimIONS: 7}
	var b Metrics
	b.Add(a)
	b.Add(a)
	if b.ScannedEdges != 2 || b.SimComputeNS != 10 {
		t.Fatalf("Add wrong: %+v", b)
	}
	if b.SimAccessNS() != 26 || b.SimTotalNS() != 36 {
		t.Fatalf("totals wrong: access=%d total=%d", b.SimAccessNS(), b.SimTotalNS())
	}
}

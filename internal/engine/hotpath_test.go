package engine

import (
	"math/rand"
	"sync"
	"testing"

	"graphm/internal/graph"
	"graphm/internal/memsim"
)

// batchCountProg is countProg plus a BatchProgram implementation, for
// pinning the batch path's dispatch and counts.
type batchCountProg struct {
	countProg
	batchCalls int
}

func (p *batchCountProg) ProcessEdges(edges []graph.Edge, active *Bitmap) (processed, activated uint64) {
	p.batchCalls++
	for _, e := range edges {
		if active.Has(int(e.Src)) {
			p.processed++
			processed++
		}
	}
	return processed, 0
}

// TestApplyChunkMatchesPerEdgeReference replays identical jobs through the
// batched hot path and the per-edge reference model on separate caches: the
// serial-schedule contract is that every counter — per-job LLC hits/misses/
// instructions, cache-wide totals, and the priced metrics — is identical.
func TestApplyChunkMatchesPerEdgeReference(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("ref", 512, 6000, 7))
	if err != nil {
		t.Fatal(err)
	}
	for _, activeFrac := range []float64{0, 0.3, 1} {
		cacheA, _ := memsim.NewCache(memsim.DefaultConfig(16 << 10))
		cacheB, _ := memsim.NewCache(memsim.DefaultConfig(16 << 10))
		mk := func() *Job {
			p := &countProg{}
			j := NewJob(1, p, 1)
			j.Bind(g)
			j.StateBase = 1 << 30
			for v := 0; v < g.NumV; v++ {
				if float64(v)/float64(g.NumV) >= activeFrac {
					p.active.Clear(v)
				}
			}
			return j
		}
		ja, jb := mk(), mk()
		// Apply in chunks with odd boundaries so line-run splits land
		// mid-line at chunk edges too.
		cm := DefaultCostModel()
		for first := 0; first < len(g.Edges); first += 777 {
			hi := first + 777
			if hi > len(g.Edges) {
				hi = len(g.Edges)
			}
			ja.ApplyChunk(g.Edges[first:hi], 0, first, cacheA, cm)
			jb.ApplyChunkPerEdge(g.Edges[first:hi], 0, first, cacheB, cm)
		}
		if ja.Ctr.Hits.Load() != jb.Ctr.Hits.Load() || ja.Ctr.Misses.Load() != jb.Ctr.Misses.Load() ||
			ja.Ctr.Instructions.Load() != jb.Ctr.Instructions.Load() {
			t.Fatalf("activeFrac=%v: job counters diverge: batched %d/%d/%d vs per-edge %d/%d/%d",
				activeFrac, ja.Ctr.Hits.Load(), ja.Ctr.Misses.Load(), ja.Ctr.Instructions.Load(),
				jb.Ctr.Hits.Load(), jb.Ctr.Misses.Load(), jb.Ctr.Instructions.Load())
		}
		if cacheA.TotalHits() != cacheB.TotalHits() || cacheA.TotalMisses() != cacheB.TotalMisses() {
			t.Fatalf("activeFrac=%v: cache totals diverge: %d/%d vs %d/%d",
				activeFrac, cacheA.TotalHits(), cacheA.TotalMisses(), cacheB.TotalHits(), cacheB.TotalMisses())
		}
		wa, wb := ja.Met.Work(), jb.Met.Work()
		if wa != wb {
			t.Fatalf("activeFrac=%v: work counters diverge: %+v vs %+v", activeFrac, wa, wb)
		}
		if ja.Met.SimMemNS != jb.Met.SimMemNS || ja.Met.SimComputeNS != jb.Met.SimComputeNS {
			t.Fatalf("activeFrac=%v: priced time diverges: mem %d vs %d, compute %d vs %d",
				activeFrac, ja.Met.SimMemNS, jb.Met.SimMemNS, ja.Met.SimComputeNS, jb.Met.SimComputeNS)
		}
	}
}

// TestBatchProgramDispatch verifies ApplyChunk routes through ProcessEdges
// when the program implements BatchProgram, with counts identical to the
// per-edge fallback.
func TestBatchProgramDispatch(t *testing.T) {
	g, _ := graph.GenerateUniform("b", 64, 400, 3)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(32 << 10))
	bp := &batchCountProg{}
	j := NewJob(1, bp, 1)
	j.Bind(g)
	j.StateBase = 1 << 30
	st := j.ApplyChunk(g.Edges, 0, 0, cache, DefaultCostModel())
	if bp.batchCalls == 0 {
		t.Fatal("BatchProgram.ProcessEdges was never dispatched")
	}
	if st.Scanned != 400 || st.Processed != 400 {
		t.Fatalf("scanned/processed = %d/%d, want 400/400", st.Scanned, st.Processed)
	}
	if bp.processed != 400 {
		t.Fatalf("program processed %d edges, want 400", bp.processed)
	}
}

// TestConcurrentChunkAppliesConserveCounters is the -race stress of batched
// counter flushing: many jobs apply disjoint chunks concurrently against one
// shared cache, and the per-job flushed counters must sum exactly to the
// cache-wide totals — no lost or double-counted batch.
func TestConcurrentChunkAppliesConserveCounters(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("race", 256, 8000, 11))
	if err != nil {
		t.Fatal(err)
	}
	cache, _ := memsim.NewCache(memsim.DefaultConfig(32 << 10))
	const jobs = 8
	var wg sync.WaitGroup
	js := make([]*Job, jobs)
	for i := 0; i < jobs; i++ {
		p := &countProg{}
		j := NewJob(i, p, int64(i))
		j.Bind(g)
		j.StateBase = uint64(i+1) << 32
		js[i] = j
		wg.Add(1)
		go func(j *Job, seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for it := 0; it < 20; it++ {
				first := rng.Intn(len(g.Edges) - 100)
				n := 100 + rng.Intn(900)
				if first+n > len(g.Edges) {
					n = len(g.Edges) - first
				}
				j.ApplyChunk(g.Edges[first:first+n], 0, first, cache, DefaultCostModel())
			}
		}(j, int64(i)*17+1)
	}
	wg.Wait()
	var hits, misses uint64
	for _, j := range js {
		hits += j.Ctr.Hits.Load()
		misses += j.Ctr.Misses.Load()
		if j.Ctr.Instructions.Load() != j.Ctr.Hits.Load()+j.Ctr.Misses.Load() {
			t.Fatalf("job %d: instructions %d != hits+misses %d", j.ID,
				j.Ctr.Instructions.Load(), j.Ctr.Hits.Load()+j.Ctr.Misses.Load())
		}
	}
	if hits != cache.TotalHits() || misses != cache.TotalMisses() {
		t.Fatalf("per-job sums %d/%d disagree with cache totals %d/%d",
			hits, misses, cache.TotalHits(), cache.TotalMisses())
	}
}

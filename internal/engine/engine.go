// Package engine defines the engine-neutral contract between graph
// algorithms and the engine substrates (GridGraph, GraphChi, PowerGraph,
// Chaos). An algorithm is an iterative edge program operating on
// job-specific vertex state; an engine owns partition layout, streaming
// order and parallelism. GraphM (internal/core) sits between the two,
// regularising the streaming order across concurrent jobs.
package engine

import (
	"math/rand"

	"graphm/internal/graph"
)

// Program is an iterative graph algorithm in the edge-streaming model shared
// (after layout differences) by all four engine substrates. One Program
// instance is one job's algorithm + job-specific data S; the graph structure
// data G is owned by the engine/storage layers.
//
// Engines drive a Program as:
//
//	prog.Reset(g, rng)
//	for iter := 0; prog.BeforeIteration(iter); iter++ {
//	    for each streamed edge e with prog.Active().Has(e.Src):
//	        prog.ProcessEdge(e)
//	    prog.AfterIteration(iter)
//	}
//
// ProcessEdge must be safe for concurrent calls only when the engine
// declares it partitions edges disjointly by destination; the provided
// engines serialise per job, matching the paper's per-job thread model.
type Program interface {
	// Name identifies the algorithm (e.g. "pagerank").
	Name() string

	// Reset binds the program to a graph and draws job parameters (damping
	// factor, root vertex, iteration budget) from rng, as Section 5.1
	// randomises them per job.
	Reset(g *graph.Graph, rng *rand.Rand)

	// BeforeIteration prepares iteration iter (0-based) and reports whether
	// the job still has work. Returning false terminates the job.
	BeforeIteration(iter int) bool

	// ProcessEdge applies the edge function F_j to one streamed edge whose
	// source is active. It returns true if the edge activated its
	// destination for the next iteration.
	ProcessEdge(e graph.Edge) bool

	// AfterIteration commits iteration results (frontier swap, rank scale).
	AfterIteration(iter int)

	// Active returns the current iteration's active-source bitmap.
	Active() *Bitmap

	// StateBytes returns the size of the job-specific data S, charged
	// against the simulated memory budget (U_v * |V| plus frontiers).
	StateBytes() int64

	// EdgeCost returns the relative computational complexity T(F_j) of one
	// ProcessEdge call in abstract work units; the synchronization manager
	// profiles the true value at run time, this is the ground truth used by
	// the simulated-time model.
	EdgeCost() float64
}

// BatchProgram is an optional Program extension for batch-capable engines:
// ProcessEdges applies the edge function to every edge of the slice whose
// source is set in active, in slice order, and returns how many edges were
// processed and how many activated their destination. It must be observably
// identical to calling ProcessEdge on each active-source edge in order —
// same state mutations, same floating-point operation order, same counts —
// so engines may use either path interchangeably. Job.ApplyChunk uses it to
// skip the per-edge interface dispatch on the hot path, falling back to
// ProcessEdge for programs that do not implement it.
//
// Implementations must treat active as read-only: the engine may pass a
// pre-gated edge slice with a shared all-active bitmap in place of the
// program's own frontier (it already paid the per-edge probes while
// collecting the chunk's state accesses), so writes belong on the program's
// own next-frontier state, never on the parameter.
type BatchProgram interface {
	Program
	ProcessEdges(edges []graph.Edge, active *Bitmap) (processed, activated uint64)
}

// Metrics aggregates one job's work counters; engines update it while
// streaming and the bench harness converts it into the paper's reported
// quantities.
type Metrics struct {
	ScannedEdges   uint64 // edges streamed past the job (data access)
	ProcessedEdges uint64 // edges whose source was active (compute)
	Iterations     uint64
	PartitionLoads uint64 // partition buffers this job requested
	SimComputeNS   uint64 // simulated compute time, ns
	SimMemNS       uint64 // simulated memory-level access time (LLC/DRAM), ns
	SimIONS        uint64 // simulated serial-resource access time (disk, NIC), ns
}

// Add accumulates other into m.
func (m *Metrics) Add(other Metrics) {
	m.ScannedEdges += other.ScannedEdges
	m.ProcessedEdges += other.ProcessedEdges
	m.Iterations += other.Iterations
	m.PartitionLoads += other.PartitionLoads
	m.SimComputeNS += other.SimComputeNS
	m.SimMemNS += other.SimMemNS
	m.SimIONS += other.SimIONS
}

// WorkCounters is the schedule-independent slice of Metrics: the counters
// that depend only on what the job computed, never on when or at what chunk
// granularity the work was streamed. For one workload they must be identical
// across the legacy serial driver, any executor worker count, and static vs
// adaptive chunk labelling — which makes them the equality basis for the
// scenario harness's invariant checks and for overlap tests that must not
// assert on wall-clock time.
type WorkCounters struct {
	ScannedEdges   uint64
	ProcessedEdges uint64
	Iterations     uint64
	PartitionLoads uint64
}

// Work extracts the schedule-independent counters. The simulated-time fields
// are deliberately excluded: LLC hit/miss pricing shifts with chunk
// labelling, I/O shares shift with attendance, and even SimComputeNS is
// truncated to whole nanoseconds once per chunk application, so it drifts by
// a few ns when the same edges are applied at a different chunk granularity.
func (m *Metrics) Work() WorkCounters {
	return WorkCounters{
		ScannedEdges:   m.ScannedEdges,
		ProcessedEdges: m.ProcessedEdges,
		Iterations:     m.Iterations,
		PartitionLoads: m.PartitionLoads,
	}
}

// SimAccessNS returns the simulated data-access time (memory + I/O), the
// quantity Figure 10 breaks out against graph processing time.
func (m *Metrics) SimAccessNS() uint64 { return m.SimMemNS + m.SimIONS }

// SimTotalNS returns the simulated execution time.
func (m *Metrics) SimTotalNS() uint64 { return m.SimComputeNS + m.SimAccessNS() }

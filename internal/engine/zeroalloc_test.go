package engine_test

import (
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
)

// TestApplyChunkZeroAlloc is the steady-state allocation gate the per-worker
// arenas exist for: after the first iterations have grown a job's arena
// buffers and populated its per-chunk memo, re-applying the same chunks must
// not allocate at all — for every fallback algorithm, full-active and
// frontier-driven alike. Any new per-chunk allocation on the hot path (a
// fresh slice, an escaping closure, a map insert per apply) trips this gate
// long before it shows up as a benchmark regression.
func TestApplyChunkZeroAlloc(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("zeroalloc", 512, 6000, 11))
	if err != nil {
		t.Fatal(err)
	}
	progs := map[string]engine.Program{
		"pagerank":  algorithms.NewPageRank(0.85, 50),
		"ppr":       algorithms.NewPersonalizedPageRank(3, 0.85, 50),
		"wcc":       algorithms.NewWCC(50),
		"bfs":       algorithms.NewBFS(3),
		"sssp":      algorithms.NewSSSP(3),
		"kcore":     algorithms.NewKCore(3),
		"labelprop": algorithms.NewLabelPropagation(50),
	}
	const chunk = 777
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			cache, err := memsim.NewCache(memsim.DefaultConfig(64 << 10))
			if err != nil {
				t.Fatal(err)
			}
			j := engine.NewJob(1, prog, 42)
			j.Bind(g)
			j.StateBase = 1 << 30
			cm := engine.DefaultCostModel()
			apply := func() {
				for first := 0; first < len(g.Edges); first += chunk {
					hi := first + chunk
					if hi > len(g.Edges) {
						hi = len(g.Edges)
					}
					j.ApplyChunk(g.Edges[first:hi], 0, first, cache, cm)
				}
			}
			// Warm-up: two full iterations grow the arena slices, populate
			// the per-chunk memo for full-active programs, and let
			// frontier-driven programs reach a representative mixed
			// frontier.
			for iter := 0; iter < 2 && prog.BeforeIteration(iter); iter++ {
				apply()
				prog.AfterIteration(iter)
			}
			// Steady state: the frontier is frozen (no Before/AfterIteration)
			// so every run re-applies identical chunks, exactly like the
			// iteration-over-iteration hot loop.
			if allocs := testing.AllocsPerRun(10, apply); allocs != 0 {
				t.Fatalf("steady-state ApplyChunk allocated %.1f times per pass over the graph", allocs)
			}
		})
	}
}

package engine

import (
	"math/rand"
	"sync"
	"time"

	"graphm/internal/graph"
	"graphm/internal/memsim"
)

// CostModel converts counted work into simulated time. Wall-clock time of
// the Go process is not meaningful for the paper's tables (the real testbed
// is a dual Xeon streaming from a hard drive), so engines count events and
// this model prices them. The constants are calibrated so the relative
// shapes — data access dominating compute, disk ≫ memory ≫ LLC — match the
// paper's breakdown in Figure 10.
type CostModel struct {
	ScanNS        float64 // T(E): streaming one edge past a job
	WorkNS        float64 // T(F) unit: processing one edge at EdgeCost 1.0
	LLCHitNS      float64 // memory-level cost of an LLC hit
	LLCMissNS     float64 // memory-level cost of an LLC miss
	DiskBytesPerS float64 // sequential disk bandwidth
}

// DefaultCostModel mirrors the paper's testbed ratios: ~100 MB/s HDD,
// ~1 ns LLC hit, ~60 ns DRAM access on miss, few-ns edge functions.
func DefaultCostModel() CostModel {
	return CostModel{
		ScanNS:        1.0,
		WorkNS:        3.0,
		LLCHitNS:      1.0,
		LLCMissNS:     60.0,
		DiskBytesPerS: 100e6,
	}
}

// DiskNS prices a disk transfer of n bytes.
func (c CostModel) DiskNS(n uint64) uint64 {
	return uint64(float64(n) / c.DiskBytesPerS * 1e9)
}

// Job binds one algorithm instance (a Program) to its runtime identity:
// per-job LLC counters, work metrics, the simulated address of its
// job-specific data, and its private RNG for parameter draws.
type Job struct {
	ID   int
	Prog Program
	Ctr  memsim.Counters
	// Met aggregates the job's work counters. Concurrent writers must go
	// through AddMetrics (ApplyChunk does); reading the struct directly is
	// only safe once the job is quiescent (Done, or between rounds).
	Met Metrics
	// metMu guards Met against concurrent AddMetrics calls — the streaming
	// executor applies disjoint chunks of a job from pool workers while the
	// sharing controller bills amortized I/O shares from its own goroutine.
	metMu sync.Mutex

	// StateBase is the simulated base address of the job-specific data S;
	// distinct per job, so jobs never share S lines in the LLC (only G).
	StateBase uint64
	// VertexPay is U_v: bytes of job-specific data per vertex.
	VertexPay uint64

	// SubmitAt is the job's arrival time in the workload timeline, used by
	// the Poisson/trace submission modes.
	SubmitAt time.Duration

	// Iter is the job's current iteration, maintained by the engine driver.
	Iter int
	// Done marks completion.
	Done bool

	rng *rand.Rand
}

// NewJob creates a job with a deterministic RNG derived from seed.
func NewJob(id int, prog Program, seed int64) *Job {
	return &Job{ID: id, Prog: prog, VertexPay: 8, rng: rand.New(rand.NewSource(seed))}
}

// Bind resets the program against g using the job's RNG and records the
// job-specific data footprint.
func (j *Job) Bind(g *graph.Graph) {
	j.Prog.Reset(g, j.rng)
}

// StreamStats reports the outcome of streaming a run of edges for one job.
type StreamStats struct {
	Scanned   uint64
	Processed uint64
	Activated uint64
	Elapsed   time.Duration // wall-clock, used by the profiling phase
}

// AddMetrics accumulates delta into the job's metrics under the job's
// metric lock. All metric writers on a potentially concurrent path
// (ApplyChunk workers, the sharing controller's I/O billing) use it so the
// counters stay exact whichever goroutine applies a chunk.
func (j *Job) AddMetrics(delta Metrics) {
	j.metMu.Lock()
	j.Met.Add(delta)
	j.metMu.Unlock()
}

// StreamEdges streams edges[first:first+n] of a partition buffer for job j:
// every edge is scanned (touching its cache line at baseAddr), and edges
// whose source is active are processed through the program, touching the
// job's state lines for both endpoints. It updates the job's metrics and
// returns per-call stats for the synchronization manager's profiler.
func StreamEdges(j *Job, edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	return j.ApplyChunk(edges, baseAddr, first, cache, cm)
}

// ApplyChunk is the job's chunk-apply entry: it streams one chunk's edges
// through the program with full LLC instrumentation and metric accounting.
// It is safe for concurrent invocation over disjoint chunks in the sense
// that all job bookkeeping (Met, Ctr) is synchronized; vertex-state safety
// is the caller's contract — the streaming executor serializes a job's
// chunks (only ever one ApplyChunk in flight per job), because ProcessEdge
// mutates per-vertex state that disjoint chunks may share through common
// destinations.
func (j *Job) ApplyChunk(edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	start := time.Now()
	active := j.Prog.Active()
	var st StreamStats
	var accessNS, computeNS float64
	cost := j.Prog.EdgeCost()
	for i, e := range edges {
		addr := baseAddr + uint64(first+i)*graph.EdgeSize
		if cache.Touch(addr, &j.Ctr) {
			accessNS += cm.LLCMissNS
		} else {
			accessNS += cm.LLCHitNS
		}
		st.Scanned++
		accessNS += cm.ScanNS
		if !active.Has(int(e.Src)) {
			continue
		}
		// Job-specific data accesses for the two endpoints.
		if cache.Touch(j.StateBase+uint64(e.Src)*j.VertexPay, &j.Ctr) {
			accessNS += cm.LLCMissNS
		} else {
			accessNS += cm.LLCHitNS
		}
		if cache.Touch(j.StateBase+uint64(e.Dst)*j.VertexPay, &j.Ctr) {
			accessNS += cm.LLCMissNS
		} else {
			accessNS += cm.LLCHitNS
		}
		if j.Prog.ProcessEdge(e) {
			st.Activated++
		}
		st.Processed++
		computeNS += cm.WorkNS * cost
	}
	st.Elapsed = time.Since(start)
	j.AddMetrics(Metrics{
		ScannedEdges:   st.Scanned,
		ProcessedEdges: st.Processed,
		SimMemNS:       uint64(accessNS),
		SimComputeNS:   uint64(computeNS),
	})
	return st
}

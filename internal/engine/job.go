package engine

import (
	"math/rand"
	"sync"
	"time"

	"graphm/internal/graph"
	"graphm/internal/memsim"
)

// CostModel converts counted work into simulated time. Wall-clock time of
// the Go process is not meaningful for the paper's tables (the real testbed
// is a dual Xeon streaming from a hard drive), so engines count events and
// this model prices them. The constants are calibrated so the relative
// shapes — data access dominating compute, disk ≫ memory ≫ LLC — match the
// paper's breakdown in Figure 10.
type CostModel struct {
	ScanNS        float64 // T(E): streaming one edge past a job
	WorkNS        float64 // T(F) unit: processing one edge at EdgeCost 1.0
	LLCHitNS      float64 // memory-level cost of an LLC hit
	LLCMissNS     float64 // memory-level cost of an LLC miss
	DiskBytesPerS float64 // sequential disk bandwidth
}

// DefaultCostModel mirrors the paper's testbed ratios: ~100 MB/s HDD,
// ~1 ns LLC hit, ~60 ns DRAM access on miss, few-ns edge functions.
func DefaultCostModel() CostModel {
	return CostModel{
		ScanNS:        1.0,
		WorkNS:        3.0,
		LLCHitNS:      1.0,
		LLCMissNS:     60.0,
		DiskBytesPerS: 100e6,
	}
}

// DiskNS prices a disk transfer of n bytes.
func (c CostModel) DiskNS(n uint64) uint64 {
	return uint64(float64(n) / c.DiskBytesPerS * 1e9)
}

// Job binds one algorithm instance (a Program) to its runtime identity:
// per-job LLC counters, work metrics, the simulated address of its
// job-specific data, and its private RNG for parameter draws.
type Job struct {
	ID   int
	Prog Program
	Ctr  memsim.Counters
	// Met aggregates the job's work counters. Concurrent writers must go
	// through AddMetrics (ApplyChunk does); reading the struct directly is
	// only safe once the job is quiescent (Done, or between rounds).
	Met Metrics
	// metMu guards Met against concurrent AddMetrics calls — the streaming
	// executor applies disjoint chunks of a job from pool workers while the
	// sharing controller bills amortized I/O shares from its own goroutine.
	metMu sync.Mutex

	// StateBase is the simulated base address of the job-specific data S;
	// distinct per job, so jobs never share S lines in the LLC (only G).
	StateBase uint64
	// VertexPay is U_v: bytes of job-specific data per vertex.
	VertexPay uint64

	// SubmitAt is the job's arrival time in the workload timeline, used by
	// the Poisson/trace submission modes.
	SubmitAt time.Duration

	// Iter is the job's current iteration, maintained by the engine driver.
	Iter int
	// Done marks completion.
	Done bool

	rng *rand.Rand
}

// NewJob creates a job with a deterministic RNG derived from seed.
func NewJob(id int, prog Program, seed int64) *Job {
	return &Job{ID: id, Prog: prog, VertexPay: 8, rng: rand.New(rand.NewSource(seed))}
}

// Bind resets the program against g using the job's RNG and records the
// job-specific data footprint.
func (j *Job) Bind(g *graph.Graph) {
	j.Prog.Reset(g, j.rng)
}

// StreamStats reports the outcome of streaming a run of edges for one job.
type StreamStats struct {
	Scanned   uint64
	Processed uint64
	Activated uint64
	Elapsed   time.Duration // wall-clock, used by the profiling phase
}

// AddMetrics accumulates delta into the job's metrics under the job's
// metric lock. All metric writers on a potentially concurrent path
// (ApplyChunk workers, the sharing controller's I/O billing) use it so the
// counters stay exact whichever goroutine applies a chunk.
func (j *Job) AddMetrics(delta Metrics) {
	j.metMu.Lock()
	j.Met.Add(delta)
	j.metMu.Unlock()
}

// StreamEdges streams edges[first:first+n] of a partition buffer for job j:
// every edge is scanned (touching its cache line at baseAddr), and edges
// whose source is active are processed through the program, touching the
// job's state lines for both endpoints. It updates the job's metrics and
// returns per-call stats for the synchronization manager's profiler.
func StreamEdges(j *Job, edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	return j.ApplyChunk(edges, baseAddr, first, cache, cm)
}

// ApplyChunk is the job's chunk-apply entry: it streams one chunk's edges
// through the program with full LLC instrumentation and metric accounting.
// It is safe for concurrent invocation over disjoint chunks in the sense
// that all job bookkeeping (Met, Ctr) is synchronized; vertex-state safety
// is the caller's contract — the streaming executor serializes a job's
// chunks (only ever one ApplyChunk in flight per job), because ProcessEdge
// mutates per-vertex state that disjoint chunks may share through common
// destinations.
//
// The simulated access order is canonical across both accounting models:
// each 64-byte line-run of the 12-byte-edge stream (~5.3 edges) is scanned
// first — one access per edge, all to the same cache line — then the run's
// active-source edges access their two endpoint state lines and are
// processed, in edge order. ApplyChunk is the batched hot path: it accounts
// every line-run under a single set-lock acquisition (memsim.Cache.TouchRun),
// tallies hits/misses/processed counts as integers, flushes them to the
// job's Counters and the cache-wide totals with one atomic add per counter
// at chunk end, and prices simulated time with a handful of multiplications
// instead of per-access float adds. Programs implementing BatchProgram are
// additionally processed one run at a time, skipping the per-edge interface
// dispatch. ApplyChunkPerEdge is the reference model for the same access
// sequence; under a serial schedule the two produce identical counters —
// the scenario harness's sim-equality invariant proves it.
func (j *Job) ApplyChunk(edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	start := time.Now()
	active := j.Prog.Active()
	bp, _ := j.Prog.(BatchProgram)
	var st StreamStats
	var tally memsim.Tally
	n := len(edges)
	for i := 0; i < n; {
		addr := baseAddr + uint64(first+i)*graph.EdgeSize
		lineEnd := (addr/memsim.LineSize + 1) * memsim.LineSize
		run := i + int((lineEnd-addr+graph.EdgeSize-1)/graph.EdgeSize)
		if run > n {
			run = n
		}
		cache.TouchRun(addr, uint64(run-i), &tally)
		for k := i; k < run; k++ {
			e := edges[k]
			if !active.Has(int(e.Src)) {
				continue
			}
			// Job-specific data accesses for the two endpoints.
			srcAddr := j.StateBase + uint64(e.Src)*j.VertexPay
			dstAddr := j.StateBase + uint64(e.Dst)*j.VertexPay
			if srcAddr/memsim.LineSize == dstAddr/memsim.LineSize {
				cache.TouchRun(srcAddr, 2, &tally)
			} else {
				cache.TouchRun(srcAddr, 1, &tally)
				cache.TouchRun(dstAddr, 1, &tally)
			}
			if bp == nil {
				if j.Prog.ProcessEdge(e) {
					st.Activated++
				}
				st.Processed++
			}
		}
		if bp != nil {
			p, a := bp.ProcessEdges(edges[i:run], active)
			st.Processed += p
			st.Activated += a
		}
		i = run
	}
	st.Scanned = uint64(n)
	cache.FlushTally(tally, &j.Ctr)
	j.priceChunk(&st, tally, cm, start)
	return st
}

// ApplyChunkPerEdge is the reference accounting model: the same canonical
// access sequence as ApplyChunk, priced one memsim.Cache.Touch at a time —
// one set-lock acquisition and one atomic update per simulated access, and
// always the per-edge ProcessEdge path. It exists to verify the batched hot
// path (core.Config.PerEdgeSim routes a system through it), not for
// production streaming.
func (j *Job) ApplyChunkPerEdge(edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	start := time.Now()
	active := j.Prog.Active()
	var st StreamStats
	var tally memsim.Tally
	touch := func(addr uint64) {
		if cache.Touch(addr, &j.Ctr) {
			tally.Misses++
		} else {
			tally.Hits++
		}
	}
	n := len(edges)
	for i := 0; i < n; {
		addr := baseAddr + uint64(first+i)*graph.EdgeSize
		lineEnd := (addr/memsim.LineSize + 1) * memsim.LineSize
		run := i + int((lineEnd-addr+graph.EdgeSize-1)/graph.EdgeSize)
		if run > n {
			run = n
		}
		for k := i; k < run; k++ {
			touch(baseAddr + uint64(first+k)*graph.EdgeSize)
		}
		for k := i; k < run; k++ {
			e := edges[k]
			if !active.Has(int(e.Src)) {
				continue
			}
			touch(j.StateBase + uint64(e.Src)*j.VertexPay)
			touch(j.StateBase + uint64(e.Dst)*j.VertexPay)
			if j.Prog.ProcessEdge(e) {
				st.Activated++
			}
			st.Processed++
		}
		i = run
	}
	st.Scanned = uint64(n)
	j.priceChunk(&st, tally, cm, start)
	return st
}

// priceChunk converts a chunk's integer tallies into simulated time and
// commits the metrics: scan, hit and miss counts each cost a single multiply
// here instead of an accumulation per access, and both accounting models
// price through it so their SimMemNS/SimComputeNS agree bit for bit.
func (j *Job) priceChunk(st *StreamStats, tally memsim.Tally, cm CostModel, start time.Time) {
	memNS := float64(st.Scanned)*cm.ScanNS +
		float64(tally.Hits)*cm.LLCHitNS + float64(tally.Misses)*cm.LLCMissNS
	computeNS := float64(st.Processed) * cm.WorkNS * j.Prog.EdgeCost()
	st.Elapsed = time.Since(start)
	j.AddMetrics(Metrics{
		ScannedEdges:   st.Scanned,
		ProcessedEdges: st.Processed,
		SimMemNS:       uint64(memNS),
		SimComputeNS:   uint64(computeNS),
	})
}

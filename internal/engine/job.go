package engine

import (
	"math/rand"
	"sync"
	"time"

	"graphm/internal/graph"
	"graphm/internal/memsim"
)

// CostModel converts counted work into simulated time. Wall-clock time of
// the Go process is not meaningful for the paper's tables (the real testbed
// is a dual Xeon streaming from a hard drive), so engines count events and
// this model prices them. The constants are calibrated so the relative
// shapes — data access dominating compute, disk ≫ memory ≫ LLC — match the
// paper's breakdown in Figure 10.
type CostModel struct {
	ScanNS        float64 // T(E): streaming one edge past a job
	WorkNS        float64 // T(F) unit: processing one edge at EdgeCost 1.0
	LLCHitNS      float64 // memory-level cost of an LLC hit
	LLCMissNS     float64 // memory-level cost of an LLC miss
	DiskBytesPerS float64 // sequential disk bandwidth
}

// DefaultCostModel mirrors the paper's testbed ratios: ~100 MB/s HDD,
// ~1 ns LLC hit, ~60 ns DRAM access on miss, few-ns edge functions.
func DefaultCostModel() CostModel {
	return CostModel{
		ScanNS:        1.0,
		WorkNS:        3.0,
		LLCHitNS:      1.0,
		LLCMissNS:     60.0,
		DiskBytesPerS: 100e6,
	}
}

// DiskNS prices a disk transfer of n bytes.
func (c CostModel) DiskNS(n uint64) uint64 {
	return uint64(float64(n) / c.DiskBytesPerS * 1e9)
}

// Job binds one algorithm instance (a Program) to its runtime identity:
// per-job LLC counters, work metrics, the simulated address of its
// job-specific data, and its private RNG for parameter draws.
type Job struct {
	ID   int
	Prog Program
	Ctr  memsim.Counters
	// Met aggregates the job's work counters. Concurrent writers must go
	// through AddMetrics (ApplyChunk does); reading the struct directly is
	// only safe once the job is quiescent (Done, or between rounds).
	Met Metrics
	// metMu guards Met against concurrent AddMetrics calls — the streaming
	// executor applies disjoint chunks of a job from pool workers while the
	// sharing controller bills amortized I/O shares from its own goroutine.
	metMu sync.Mutex

	// StateBase is the simulated base address of the job-specific data S;
	// distinct per job, so jobs never share S lines in the LLC (only G).
	StateBase uint64
	// VertexPay is U_v: bytes of job-specific data per vertex.
	VertexPay uint64

	// SubmitAt is the job's arrival time in the workload timeline, used by
	// the Poisson/trace submission modes.
	SubmitAt time.Duration

	// Iter is the job's current iteration, maintained by the engine driver.
	Iter int
	// Done marks completion.
	Done bool

	// arena is the job's reusable chunk-apply scratch (the collected state
	// addresses of the chunk in flight plus the set-grouping buffers). The
	// executor serializes a job's chunks — only one ApplyChunk in flight per
	// job — so the arena is uncontended; it grows to the chunk high-water
	// mark once and steady-state chunk application allocates nothing (the
	// zero-alloc gate in zeroalloc_test asserts it).
	arena chunkArena

	rng *rand.Rand
}

// chunkArena holds per-job scratch reused across chunk applications.
type chunkArena struct {
	stateAddrs []uint64
	scratch    memsim.BatchScratch

	// Per-line dedup table for the batch path: the chunk's state accesses
	// are aggregated into one memsim.BatchEntry per distinct line as they
	// are collected, so the pricing pass scales with distinct lines (~8x
	// fewer on hub-skewed graphs) instead of raw accesses. lineStamp is
	// indexed by state line relative to StateBase and packs the chunk
	// epoch (high 32 bits, so stale chunks need no clearing) with the
	// line's entry slot (low 32) — one random load per access.
	entries   []memsim.BatchEntry
	lineStamp []uint64
	epoch     uint32

	// gated holds the chunk's active-source edges when a batch program runs
	// under a partial frontier, so ProcessEdges skips the second per-edge
	// frontier probe over the whole chunk.
	gated []graph.Edge

	// memo caches the set-grouped per-line aggregates of full-active batch
	// programs, keyed by chunk. A chunk's edges are immutable for the
	// lifetime of an experiment and a job's StateBase/VertexPay never
	// change, so when every vertex is active both the aggregates and their
	// set grouping are pure functions of the chunk — and jobs re-apply the
	// same chunks every iteration. Bounded so a week-long replay over a
	// huge grid cannot hoard memory.
	memo map[chunkKey]memsim.GroupedEntries
}

// chunkKey identifies one chunk of the edge grid: its block base address
// plus the sub-range streamed.
type chunkKey struct {
	base  uint64
	first int
	n     int
}

// memoCap bounds a job's per-chunk memo (at ~2KB per typical chunk this is
// a few MB per job).
const memoCap = 2048

// allActiveBitmap is the shared zero-length bitmap handed to ProcessEdges
// with a pre-gated edge slice: Full() on an empty bitmap is vacuously true,
// so batch programs skip their per-edge frontier probe. Never mutated.
var allActiveBitmap = NewBitmap(0)

// NewJob creates a job with a deterministic RNG derived from seed.
func NewJob(id int, prog Program, seed int64) *Job {
	return &Job{ID: id, Prog: prog, VertexPay: 8, rng: rand.New(rand.NewSource(seed))}
}

// Bind resets the program against g using the job's RNG and records the
// job-specific data footprint.
func (j *Job) Bind(g *graph.Graph) {
	j.Prog.Reset(g, j.rng)
}

// StreamStats reports the outcome of streaming a run of edges for one job.
type StreamStats struct {
	Scanned   uint64
	Processed uint64
	Activated uint64
	Elapsed   time.Duration // wall-clock, used by the profiling phase
}

// AddMetrics accumulates delta into the job's metrics under the job's
// metric lock. All metric writers on a potentially concurrent path
// (ApplyChunk workers, the sharing controller's I/O billing) use it so the
// counters stay exact whichever goroutine applies a chunk.
func (j *Job) AddMetrics(delta Metrics) {
	j.metMu.Lock()
	j.Met.Add(delta)
	j.metMu.Unlock()
}

// StreamEdges streams edges[first:first+n] of a partition buffer for job j:
// every edge is scanned (touching its cache line at baseAddr), and edges
// whose source is active are processed through the program, touching the
// job's state lines for both endpoints. It updates the job's metrics and
// returns per-call stats for the synchronization manager's profiler.
func StreamEdges(j *Job, edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	return j.ApplyChunk(edges, baseAddr, first, cache, cm)
}

// ApplyChunk is the job's chunk-apply entry: it streams one chunk's edges
// through the program with full LLC instrumentation and metric accounting.
// It is safe for concurrent invocation over disjoint chunks in the sense
// that all job bookkeeping (Met, Ctr) is synchronized; vertex-state safety
// is the caller's contract — the streaming executor serializes a job's
// chunks (only ever one ApplyChunk in flight per job), because ProcessEdge
// mutates per-vertex state that disjoint chunks may share through common
// destinations.
//
// The simulated access order is canonical across both accounting models, in
// two phases per chunk. Stream phase: each 64-byte line-run of the
// 12-byte-edge stream (~5.3 edges) is scanned — one access per edge, all to
// the same cache line — and the run's active-source edges are processed, in
// edge order, with their two endpoint state addresses collected. State
// phase: the chunk's collected state accesses are applied at the end of the
// chunk. Formula (1) sizes a chunk so its edges plus the attending jobs'
// vertex state fit in the LLC together, so settling the chunk's state lines
// at a chunk-end barrier instead of interleaved mid-scan is the same
// residency story the chunking design already asserts — and it is what lets
// the hot path batch the state accesses set-major.
//
// ApplyChunk is the batched hot path: the scan accounts every line-run
// under a single set-lock acquisition (memsim.Cache.TouchRun), programs
// implementing BatchProgram are processed one run at a time (skipping the
// per-edge interface dispatch), and the state phase goes through
// memsim.Cache.TouchBatch — grouped by cache set, one lock acquisition per
// group, provably bit-identical to in-order application. Hits, misses and
// processed counts are tallied as integers and flushed to the job's
// Counters and the sharded cache-wide totals with one atomic add per
// counter at chunk end. The collection buffers live in the job's arena, so
// steady-state chunk application performs zero heap allocations.
// ApplyChunkPerEdge is the reference model for the same canonical sequence;
// under a serial schedule the two produce identical counters — the scenario
// harness's sim-equality invariant proves it.
func (j *Job) ApplyChunk(edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	start := time.Now()
	active := j.Prog.Active()
	allActive := active.Full()
	bp, _ := j.Prog.(BatchProgram)
	var st StreamStats
	var tally memsim.Tally
	n := len(edges)
	stateBase, vpay := j.StateBase, j.VertexPay
	// Memoized fast path: a full-active batch program touches every edge, so
	// its per-line aggregates depend only on the chunk itself — and the
	// executor re-applies the same chunks every iteration. After the first
	// visit the collection loop disappears; the chunk prices as one fused
	// scan plus the cached aggregates, and the compute runs once through
	// ProcessEdges. Every access position a cached entry carries is the same
	// batch-global position the loop would have assigned, so the pricing is
	// bit-identical to a fresh collection.
	if bp != nil && allActive {
		if j.arena.memo == nil {
			j.arena.memo = make(map[chunkKey]memsim.GroupedEntries)
		}
		if g, ok := j.arena.memo[chunkKey{baseAddr, first, n}]; ok {
			cache.ScanChunk(baseAddr, first, n, graph.EdgeSize, &tally)
			st.Processed, st.Activated = bp.ProcessEdges(edges, active)
			cache.TouchGrouped(&g, uint64(2*n), &tally)
			st.Scanned = uint64(n)
			cache.FlushTally(tally, &j.Ctr, j.ID)
			j.priceChunk(&st, tally, cm, start)
			return st
		}
	}
	// Size the per-line dedup table to the job's state extent (one slot per
	// 64B state line) and open a fresh epoch for this chunk. Stale stamps
	// from earlier chunks are simply non-matching — no clearing needed —
	// except on the (4-billion-chunk) epoch wraparound.
	lineBase := stateBase / memsim.LineSize
	// (stateBase + x)/LineSize - lineBase == (rem + x)/LineSize for any x,
	// so the per-endpoint line index needs only the hoisted remainder.
	rem := stateBase & (memsim.LineSize - 1)
	needLines := (uint64(active.Len())*vpay)/memsim.LineSize + 2
	if uint64(len(j.arena.lineStamp)) < needLines {
		j.arena.lineStamp = make([]uint64, needLines)
		j.arena.epoch = 0
	}
	j.arena.epoch++
	if j.arena.epoch == 0 {
		clear(j.arena.lineStamp)
		j.arena.epoch = 1
	}
	epoch, stamp := uint64(j.arena.epoch)<<32, j.arena.lineStamp
	entries := j.arena.entries[:0]
	pos := uint32(0)
	// For a gated batch program the collection loop already pays one Has
	// probe per edge; gathering the survivors lets ProcessEdges run on the
	// pre-gated slice (flagged all-active via a zero-length bitmap, which is
	// vacuously full) instead of re-probing the frontier over the whole
	// chunk. Same edges in the same order — observably identical.
	gatherGated := bp != nil && !allActive
	var gated []graph.Edge
	if gatherGated {
		if cap(j.arena.gated) < n {
			j.arena.gated = make([]graph.Edge, 0, n)
		}
		gated = j.arena.gated[:0]
	}
	// Stream phase: the chunk's edge lines in storage order. State accesses
	// settle at the chunk-end barrier, so the scan is a pure prefix of the
	// chunk's canonical access sequence and prices in one fused call.
	cache.ScanChunk(baseAddr, first, n, graph.EdgeSize, &tally)
	for k := 0; k < n; k++ {
		e := edges[k]
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		// Job-specific data accesses for the two endpoints, settled in the
		// chunk's state phase below: aggregate per distinct line.
		li := (rem + uint64(e.Src)*vpay) / memsim.LineSize
		if st := stamp[li]; st&^0xffffffff == epoch {
			en := &entries[uint32(st)]
			en.Count++
			en.Last = pos
		} else {
			stamp[li] = epoch | uint64(len(entries))
			entries = append(entries, memsim.BatchEntry{Line: lineBase + li, Count: 1, First: pos, Last: pos})
		}
		pos++
		li = (rem + uint64(e.Dst)*vpay) / memsim.LineSize
		if st := stamp[li]; st&^0xffffffff == epoch {
			en := &entries[uint32(st)]
			en.Count++
			en.Last = pos
		} else {
			stamp[li] = epoch | uint64(len(entries))
			entries = append(entries, memsim.BatchEntry{Line: lineBase + li, Count: 1, First: pos, Last: pos})
		}
		pos++
		if gatherGated {
			gated = append(gated, e)
		} else if bp == nil {
			if j.Prog.ProcessEdge(e) {
				st.Activated++
			}
			st.Processed++
		}
	}
	if bp != nil {
		var p, a uint64
		if gatherGated {
			j.arena.gated = gated
			p, a = bp.ProcessEdges(gated, allActiveBitmap)
		} else {
			p, a = bp.ProcessEdges(edges, active)
		}
		st.Processed += p
		st.Activated += a
	}
	j.arena.entries = entries
	if bp != nil && allActive {
		// Group once, apply, and memoize the grouping for every later visit
		// of this chunk (a failed grouping means the fallback below, which is
		// never memoized — it must re-derive raw addresses each time anyway).
		if g, ok := cache.GroupEntries(entries, &j.arena.scratch); ok {
			cache.TouchGrouped(&g, uint64(pos), &tally)
			if len(j.arena.memo) < memoCap {
				j.arena.memo[chunkKey{baseAddr, first, n}] = g
			}
		} else {
			j.rawStateBatch(edges, active, true, cache, &tally)
		}
	} else if !cache.TouchEntries(entries, uint64(pos), &j.arena.scratch, &tally) {
		// A set-group's distinct lines exceeded the cache's ways, so the
		// per-line aggregates can't settle the phase exactly; re-collect
		// the raw access stream (pure address math — compute already ran)
		// and price it through the order-exact batch path.
		j.rawStateBatch(edges, active, allActive, cache, &tally)
	}
	st.Scanned = uint64(n)
	cache.FlushTally(tally, &j.Ctr, j.ID)
	j.priceChunk(&st, tally, cm, start)
	return st
}

// rawStateBatch is the exact-order fallback for a chunk whose per-line
// aggregates could not settle through TouchEntries: it re-collects the raw
// state access stream (pure address math — the compute already ran) and
// prices it through TouchBatch, which preserves each set's access order.
func (j *Job) rawStateBatch(edges []graph.Edge, active *Bitmap, allActive bool, cache *memsim.Cache, tally *memsim.Tally) {
	n := len(edges)
	if cap(j.arena.stateAddrs) < 2*n {
		j.arena.stateAddrs = make([]uint64, 2*n)
	}
	addrs := j.arena.stateAddrs[:0]
	stateBase, vpay := j.StateBase, j.VertexPay
	for _, e := range edges {
		if !allActive && !active.Has(int(e.Src)) {
			continue
		}
		addrs = append(addrs,
			stateBase+uint64(e.Src)*vpay,
			stateBase+uint64(e.Dst)*vpay)
	}
	cache.TouchBatch(addrs, &j.arena.scratch, tally)
	j.arena.stateAddrs = addrs
}

// ApplyChunkPerEdge is the reference accounting model: the same canonical
// access sequence as ApplyChunk — stream phase, then the chunk's state
// accesses — priced one memsim.Cache.Touch at a time, in program order, with
// one set-lock acquisition and one atomic update per simulated access, and
// always the per-edge ProcessEdge path. The state phase applies the
// collected addresses in plain collection order; TouchBatch's set-major
// order is observably identical (memsim's TestTouchBatchEquivalence), so
// the two models' counters match bit for bit under a serial schedule. It
// exists to verify the batched hot path (core.Config.PerEdgeSim routes a
// system through it), not for production streaming.
func (j *Job) ApplyChunkPerEdge(edges []graph.Edge, baseAddr uint64, first int, cache *memsim.Cache, cm CostModel) StreamStats {
	start := time.Now()
	active := j.Prog.Active()
	var st StreamStats
	var tally memsim.Tally
	touch := func(addr uint64) {
		if cache.Touch(addr, &j.Ctr) {
			tally.Misses++
		} else {
			tally.Hits++
		}
	}
	addrs := j.arena.stateAddrs[:0]
	n := len(edges)
	for i := 0; i < n; {
		addr := baseAddr + uint64(first+i)*graph.EdgeSize
		lineEnd := (addr/memsim.LineSize + 1) * memsim.LineSize
		run := i + int((lineEnd-addr+graph.EdgeSize-1)/graph.EdgeSize)
		if run > n {
			run = n
		}
		for k := i; k < run; k++ {
			touch(baseAddr + uint64(first+k)*graph.EdgeSize)
		}
		for k := i; k < run; k++ {
			e := edges[k]
			if !active.Has(int(e.Src)) {
				continue
			}
			addrs = append(addrs,
				j.StateBase+uint64(e.Src)*j.VertexPay,
				j.StateBase+uint64(e.Dst)*j.VertexPay)
			if j.Prog.ProcessEdge(e) {
				st.Activated++
			}
			st.Processed++
		}
		i = run
	}
	for _, a := range addrs {
		touch(a)
	}
	j.arena.stateAddrs = addrs
	st.Scanned = uint64(n)
	j.priceChunk(&st, tally, cm, start)
	return st
}

// priceChunk converts a chunk's integer tallies into simulated time and
// commits the metrics: scan, hit and miss counts each cost a single multiply
// here instead of an accumulation per access, and both accounting models
// price through it so their SimMemNS/SimComputeNS agree bit for bit.
func (j *Job) priceChunk(st *StreamStats, tally memsim.Tally, cm CostModel, start time.Time) {
	memNS := float64(st.Scanned)*cm.ScanNS +
		float64(tally.Hits)*cm.LLCHitNS + float64(tally.Misses)*cm.LLCMissNS
	computeNS := float64(st.Processed) * cm.WorkNS * j.Prog.EdgeCost()
	st.Elapsed = time.Since(start)
	j.AddMetrics(Metrics{
		ScannedEdges:   st.Scanned,
		ProcessedEdges: st.Processed,
		SimMemNS:       uint64(memNS),
		SimComputeNS:   uint64(computeNS),
	})
}

package engine

import "math/bits"

// Bitmap is a dense bit set over vertex IDs, used for active-vertex
// frontiers (Section 3.4.1: "a bitmap is created for each job").
type Bitmap struct {
	words []uint64
	n     int
	full  bool // cached result of the last Full scan
	dirty bool // words changed since the last Full scan
}

// NewBitmap returns a bitmap for n vertices, all clear.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n, full: n == 0}
}

// Len returns the number of addressable bits.
func (b *Bitmap) Len() int { return b.n }

// Set marks bit i.
func (b *Bitmap) Set(i int) {
	b.words[i>>6] |= 1 << (uint(i) & 63)
	b.dirty = true
}

// Clear unmarks bit i.
func (b *Bitmap) Clear(i int) {
	b.words[i>>6] &^= 1 << (uint(i) & 63)
	b.dirty = true
}

// Has reports whether bit i is set.
func (b *Bitmap) Has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll marks every bit in [0, Len).
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Clear the tail beyond n.
	if extra := len(b.words)*64 - b.n; extra > 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] >>= uint(extra)
	}
	b.full = true
	b.dirty = false
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
	b.full = b.n == 0
	b.dirty = false
}

// Full reports whether every bit in [0, Len) is set. The scan result is
// cached and only recomputed after a mutation, so the hot path — one call
// per applied chunk — is a pair of flag reads; all-active programs
// (PageRank-style full sweeps) then skip the per-edge Has probe entirely.
func (b *Bitmap) Full() bool {
	if b.dirty {
		b.dirty = false
		b.full = true
		for i, w := range b.words {
			want := ^uint64(0)
			if i == len(b.words)-1 {
				if extra := len(b.words)*64 - b.n; extra > 0 {
					want >>= uint(extra)
				}
			}
			if w != want {
				b.full = false
				break
			}
		}
	}
	return b.full
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AnyInRange reports whether any bit in [lo, hi) is set.
func (b *Bitmap) AnyInRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	for i := lo; i < hi; {
		if i&63 == 0 && i+64 <= hi {
			if b.words[i>>6] != 0 {
				return true
			}
			i += 64
			continue
		}
		if b.Has(i) {
			return true
		}
		i++
	}
	return false
}

// CountInRange returns the number of set bits in [lo, hi).
func (b *Bitmap) CountInRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	c := 0
	for i := lo; i < hi; {
		if i&63 == 0 && i+64 <= hi {
			c += bits.OnesCount64(b.words[i>>6])
			i += 64
			continue
		}
		if b.Has(i) {
			c++
		}
		i++
	}
	return c
}

// CopyFrom overwrites b with src; the bitmaps must have equal length.
func (b *Bitmap) CopyFrom(src *Bitmap) {
	if b.n != src.n {
		panic("engine: CopyFrom length mismatch")
	}
	copy(b.words, src.words)
	b.full = src.full
	b.dirty = src.dirty
}

// Or merges src into b.
func (b *Bitmap) Or(src *Bitmap) {
	if b.n != src.n {
		panic("engine: Or length mismatch")
	}
	for i := range b.words {
		b.words[i] |= src.words[i]
	}
	b.dirty = true
}

// Bytes returns the bitmap's memory footprint.
func (b *Bitmap) Bytes() int64 { return int64(len(b.words)) * 8 }

package engine

import "math/bits"

// Bitmap is a dense bit set over vertex IDs, used for active-vertex
// frontiers (Section 3.4.1: "a bitmap is created for each job").
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns a bitmap for n vertices, all clear.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of addressable bits.
func (b *Bitmap) Len() int { return b.n }

// Set marks bit i.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Clear unmarks bit i.
func (b *Bitmap) Clear(i int) { b.words[i>>6] &^= 1 << (uint(i) & 63) }

// Has reports whether bit i is set.
func (b *Bitmap) Has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// SetAll marks every bit in [0, Len).
func (b *Bitmap) SetAll() {
	for i := range b.words {
		b.words[i] = ^uint64(0)
	}
	// Clear the tail beyond n.
	if extra := len(b.words)*64 - b.n; extra > 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] >>= uint(extra)
	}
}

// Reset clears every bit.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// Count returns the number of set bits.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Any reports whether any bit is set.
func (b *Bitmap) Any() bool {
	for _, w := range b.words {
		if w != 0 {
			return true
		}
	}
	return false
}

// AnyInRange reports whether any bit in [lo, hi) is set.
func (b *Bitmap) AnyInRange(lo, hi int) bool {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	for i := lo; i < hi; {
		if i&63 == 0 && i+64 <= hi {
			if b.words[i>>6] != 0 {
				return true
			}
			i += 64
			continue
		}
		if b.Has(i) {
			return true
		}
		i++
	}
	return false
}

// CountInRange returns the number of set bits in [lo, hi).
func (b *Bitmap) CountInRange(lo, hi int) int {
	if lo < 0 {
		lo = 0
	}
	if hi > b.n {
		hi = b.n
	}
	c := 0
	for i := lo; i < hi; {
		if i&63 == 0 && i+64 <= hi {
			c += bits.OnesCount64(b.words[i>>6])
			i += 64
			continue
		}
		if b.Has(i) {
			c++
		}
		i++
	}
	return c
}

// CopyFrom overwrites b with src; the bitmaps must have equal length.
func (b *Bitmap) CopyFrom(src *Bitmap) {
	if b.n != src.n {
		panic("engine: CopyFrom length mismatch")
	}
	copy(b.words, src.words)
}

// Or merges src into b.
func (b *Bitmap) Or(src *Bitmap) {
	if b.n != src.n {
		panic("engine: Or length mismatch")
	}
	for i := range b.words {
		b.words[i] |= src.words[i]
	}
}

// Bytes returns the bitmap's memory footprint.
func (b *Bitmap) Bytes() int64 { return int64(len(b.words)) * 8 }

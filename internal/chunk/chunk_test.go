package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphm/internal/graph"
)

func TestChunkSizeFormula(t *testing.T) {
	p := SizeParams{
		NumCores:  8,
		LLCBytes:  20 << 20, // the paper's 20 MB LLC
		GraphSize: 10 << 30,
		NumV:      41_700_000,
		VertexPay: 8,
		Reserved:  1 << 20,
	}
	sc, err := ChunkSize(p)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the Formula (1) inequality holds at the returned size.
	lhs := float64(sc*int64(p.NumCores)) +
		float64(sc*int64(p.NumCores))/float64(p.GraphSize)*float64(p.NumV)*float64(p.VertexPay) +
		float64(p.Reserved)
	if lhs > float64(p.LLCBytes) {
		t.Fatalf("formula violated: lhs=%v > LLC=%d at Sc=%d", lhs, p.LLCBytes, sc)
	}
	// And that it is maximal up to one alignment unit.
	align := int64(192) // lcm(12, 64)
	lhs2 := float64((sc+align)*int64(p.NumCores)) +
		float64((sc+align)*int64(p.NumCores))/float64(p.GraphSize)*float64(p.NumV)*float64(p.VertexPay) +
		float64(p.Reserved)
	if lhs2 <= float64(p.LLCBytes) {
		t.Fatalf("Sc=%d not maximal: Sc+%d still satisfies the formula", sc, align)
	}
	if sc%align != 0 {
		t.Fatalf("Sc=%d not aligned to %d", sc, align)
	}
}

func TestChunkSizeValidation(t *testing.T) {
	if _, err := ChunkSize(SizeParams{}); err == nil {
		t.Fatal("expected error on zero params")
	}
	p := SizeParams{NumCores: 4, LLCBytes: 1024, GraphSize: 1 << 20, NumV: 100, VertexPay: 8, Reserved: 2048}
	if _, err := ChunkSize(p); err == nil {
		t.Fatal("expected error when reserved exceeds LLC")
	}
}

func TestChunkSizeClampsToMinimum(t *testing.T) {
	// A tiny LLC still yields one aligned unit so streaming works.
	p := SizeParams{NumCores: 16, LLCBytes: 4096, GraphSize: 1 << 30, NumV: 1 << 20, VertexPay: 8, Reserved: 0}
	sc, err := ChunkSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if sc != 192 {
		t.Fatalf("Sc = %d, want minimum alignment 192", sc)
	}
}

func TestLabelCoversAllEdgesOnce(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("l", 256, 3000, 3))
	if err != nil {
		t.Fatal(err)
	}
	set := Label(0, g.Edges, 960) // 80 edges per chunk
	total := 0
	for i, c := range set.Chunks {
		if c.NumEdges != c.TotalEdges() {
			t.Fatalf("chunk %d: NumEdges=%d but table sums to %d", i, c.NumEdges, c.TotalEdges())
		}
		total += c.NumEdges
	}
	if total != len(g.Edges) {
		t.Fatalf("chunks cover %d edges, want %d", total, len(g.Edges))
	}
	// Chunks must tile the stream contiguously.
	next := 0
	for i, c := range set.Chunks {
		if c.FirstEdge != next {
			t.Fatalf("chunk %d starts at %d, want %d", i, c.FirstEdge, next)
		}
		next += c.NumEdges
	}
}

func TestLabelOutCountsMatchStream(t *testing.T) {
	g, _ := graph.GenerateUniform("u", 100, 1000, 9)
	set := Label(1, g.Edges, 1200) // 100 edges per chunk
	for _, c := range set.Chunks {
		counts := map[graph.VertexID]uint32{}
		for _, e := range g.Edges[c.FirstEdge : c.FirstEdge+c.NumEdges] {
			counts[e.Src]++
		}
		if len(counts) != len(c.Entries) {
			t.Fatalf("chunk has %d entries, want %d", len(c.Entries), len(counts))
		}
		for _, entry := range c.Entries {
			if counts[entry.Vertex] != entry.OutCnt {
				t.Fatalf("N+(%d) = %d, want %d", entry.Vertex, entry.OutCnt, counts[entry.Vertex])
			}
			if c.OutCount(entry.Vertex) != entry.OutCnt {
				t.Fatalf("OutCount(%d) lookup mismatch", entry.Vertex)
			}
		}
	}
}

func TestLabelEmptyPartition(t *testing.T) {
	set := Label(0, nil, 960)
	if set.NumChunks() != 0 {
		t.Fatalf("empty partition labelled with %d chunks", set.NumChunks())
	}
	if set.MetadataBytes() != 0 {
		t.Fatal("empty partition has metadata")
	}
}

func TestLabelChunkSizesBounded(t *testing.T) {
	// Property: every chunk except possibly the last holds exactly
	// chunkBytes/EdgeSize edges; the last holds the remainder.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		edges := make([]graph.Edge, n)
		for i := range edges {
			edges[i] = graph.Edge{Src: uint32(rng.Intn(64)), Dst: uint32(rng.Intn(64))}
		}
		per := 1 + int(sz)%50
		set := Label(0, edges, int64(per)*graph.EdgeSize)
		for i, c := range set.Chunks {
			if i < len(set.Chunks)-1 && c.NumEdges != per {
				return false
			}
			if c.NumEdges > per || c.NumEdges == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataProportionalToDistinctSources(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 1}}
	set := Label(0, edges, 10*graph.EdgeSize)
	if got := set.MetadataBytes(); got != 16 { // 2 entries * 8 bytes
		t.Fatalf("metadata = %d, want 16", got)
	}
}

package chunk

import (
	"math/rand"
	"testing"
	"testing/quick"

	"graphm/internal/graph"
)

func TestChunkSizeFormula(t *testing.T) {
	p := SizeParams{
		NumCores:  8,
		LLCBytes:  20 << 20, // the paper's 20 MB LLC
		GraphSize: 10 << 30,
		NumV:      41_700_000,
		VertexPay: 8,
		Reserved:  1 << 20,
	}
	sc, err := ChunkSize(p)
	if err != nil {
		t.Fatal(err)
	}
	// Verify the Formula (1) inequality holds at the returned size.
	lhs := float64(sc*int64(p.NumCores)) +
		float64(sc*int64(p.NumCores))/float64(p.GraphSize)*float64(p.NumV)*float64(p.VertexPay) +
		float64(p.Reserved)
	if lhs > float64(p.LLCBytes) {
		t.Fatalf("formula violated: lhs=%v > LLC=%d at Sc=%d", lhs, p.LLCBytes, sc)
	}
	// And that it is maximal up to one alignment unit.
	align := int64(192) // lcm(12, 64)
	lhs2 := float64((sc+align)*int64(p.NumCores)) +
		float64((sc+align)*int64(p.NumCores))/float64(p.GraphSize)*float64(p.NumV)*float64(p.VertexPay) +
		float64(p.Reserved)
	if lhs2 <= float64(p.LLCBytes) {
		t.Fatalf("Sc=%d not maximal: Sc+%d still satisfies the formula", sc, align)
	}
	if sc%align != 0 {
		t.Fatalf("Sc=%d not aligned to %d", sc, align)
	}
}

func TestChunkSizeValidation(t *testing.T) {
	if _, err := ChunkSize(SizeParams{}); err == nil {
		t.Fatal("expected error on zero params")
	}
	p := SizeParams{NumCores: 4, LLCBytes: 1024, GraphSize: 1 << 20, NumV: 100, VertexPay: 8, Reserved: 2048}
	if _, err := ChunkSize(p); err == nil {
		t.Fatal("expected error when reserved exceeds LLC")
	}
}

func TestChunkSizeClampsToMinimum(t *testing.T) {
	// A tiny LLC still yields one aligned unit so streaming works.
	p := SizeParams{NumCores: 16, LLCBytes: 4096, GraphSize: 1 << 30, NumV: 1 << 20, VertexPay: 8, Reserved: 0}
	sc, err := ChunkSize(p)
	if err != nil {
		t.Fatal(err)
	}
	if sc != 192 {
		t.Fatalf("Sc = %d, want minimum alignment 192", sc)
	}
}

// TestChunkSizeTable drives Formula (1) through its edge cases: degenerate
// parameters, a tiny LLC clamping to one alignment unit, alignment rounding,
// and an N so large the formula would yield less than one aligned unit.
func TestChunkSizeTable(t *testing.T) {
	align := int64(192) // lcm(EdgeSize=12, cache line 64)
	cases := []struct {
		name    string
		p       SizeParams
		want    int64 // exact expected size; -1 means "any valid aligned size"
		wantErr bool
	}{
		{name: "zero params", p: SizeParams{}, wantErr: true},
		{name: "zero cores", p: SizeParams{LLCBytes: 1 << 20, GraphSize: 1 << 20, NumV: 10}, wantErr: true},
		{name: "negative cores", p: SizeParams{NumCores: -2, LLCBytes: 1 << 20, GraphSize: 1 << 20, NumV: 10}, wantErr: true},
		{name: "zero LLC", p: SizeParams{NumCores: 1, GraphSize: 1 << 20, NumV: 10}, wantErr: true},
		{name: "reserved exceeds LLC", p: SizeParams{NumCores: 4, LLCBytes: 1024, GraphSize: 1 << 20, NumV: 100, VertexPay: 8, Reserved: 2048}, wantErr: true},
		{name: "reserved equals LLC", p: SizeParams{NumCores: 4, LLCBytes: 2048, GraphSize: 1 << 20, NumV: 100, VertexPay: 8, Reserved: 2048}, wantErr: true},
		{
			// LLC smaller than one aligned unit per core: clamps up to the
			// minimum so degenerate configurations still stream.
			name: "tiny LLC clamps to alignment",
			p:    SizeParams{NumCores: 16, LLCBytes: 4096, GraphSize: 1 << 30, NumV: 1 << 20, VertexPay: 8, Reserved: 0},
			want: align,
		},
		{
			// N far beyond what the LLC can hold one aligned unit each for —
			// the formula still returns the clamped minimum, never zero.
			name: "N exceeds chunk capacity",
			p:    SizeParams{NumCores: 1 << 20, LLCBytes: 1 << 20, GraphSize: 1 << 30, NumV: 1 << 20, VertexPay: 8},
			want: align,
		},
		{
			// No vertex term (VertexPay 0): S_c = avail/N rounded down to the
			// alignment; 1 MB over 4 cores is 262144, which rounds to 262080.
			name: "alignment rounding",
			p:    SizeParams{NumCores: 4, LLCBytes: 1 << 20, GraphSize: 1 << 30, NumV: 1, VertexPay: 0},
			want: (1 << 20) / 4 / align * align,
		},
		{
			name: "single core whole LLC",
			p:    SizeParams{NumCores: 1, LLCBytes: 1 << 20, GraphSize: 1 << 30, NumV: 1, VertexPay: 0},
			want: (1 << 20) / align * align,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sc, err := ChunkSize(tc.p)
			if tc.wantErr {
				if err == nil {
					t.Fatalf("ChunkSize(%+v) = %d, want error", tc.p, sc)
				}
				return
			}
			if err != nil {
				t.Fatalf("ChunkSize(%+v): %v", tc.p, err)
			}
			if sc%align != 0 || sc < align {
				t.Fatalf("ChunkSize(%+v) = %d, not a positive multiple of %d", tc.p, sc, align)
			}
			if tc.want >= 0 && sc != tc.want {
				t.Fatalf("ChunkSize(%+v) = %d, want %d", tc.p, sc, tc.want)
			}
		})
	}
}

// TestChunkSizeHalvesWithConcurrency pins the property adaptive re-labelling
// relies on: S_c scales as 1/N, so doubling the attending jobs halves the
// chunk (up to alignment rounding).
func TestChunkSizeHalvesWithConcurrency(t *testing.T) {
	base := SizeParams{LLCBytes: 1 << 20, GraphSize: 1 << 28, NumV: 1 << 16, VertexPay: 8, Reserved: 1 << 16}
	prev := int64(0)
	for _, n := range []int{1, 2, 4, 8} {
		p := base
		p.NumCores = n
		sc, err := ChunkSize(p)
		if err != nil {
			t.Fatal(err)
		}
		if prev > 0 && (sc > prev/2 || sc <= 0) {
			t.Fatalf("N=%d: S_c=%d not at most half of N=%d's %d", n, sc, n/2, prev)
		}
		prev = sc
	}
}

func TestLabelSingleEdgePartition(t *testing.T) {
	set := Label(3, []graph.Edge{{Src: 7, Dst: 9, Weight: 1}}, 960)
	if set.NumChunks() != 1 {
		t.Fatalf("single-edge partition labelled with %d chunks, want 1", set.NumChunks())
	}
	c := set.Chunks[0]
	if c.FirstEdge != 0 || c.NumEdges != 1 || len(c.Entries) != 1 {
		t.Fatalf("bad single-edge chunk: %+v", c)
	}
	if c.OutCount(7) != 1 || c.OutCount(9) != 0 {
		t.Fatalf("OutCount wrong: N+(7)=%d N+(9)=%d", c.OutCount(7), c.OutCount(9))
	}
}

func TestLabelChunkSmallerThanEdge(t *testing.T) {
	// A chunk size below one edge still yields one-edge chunks, never zero.
	edges := []graph.Edge{{Src: 1, Dst: 2}, {Src: 2, Dst: 3}}
	set := Label(0, edges, 1)
	if set.NumChunks() != 2 {
		t.Fatalf("chunks = %d, want 2 one-edge chunks", set.NumChunks())
	}
	for i, c := range set.Chunks {
		if c.NumEdges != 1 {
			t.Fatalf("chunk %d holds %d edges, want 1", i, c.NumEdges)
		}
	}
}

func TestRelabelPreservesCoverageAndBumpsEpoch(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("r", 128, 1500, 5))
	if err != nil {
		t.Fatal(err)
	}
	old := Label(2, g.Edges, 40*graph.EdgeSize)
	nw := old.Relabel(g.Edges, 10*graph.EdgeSize)
	if nw.Epoch != old.Epoch+1 {
		t.Fatalf("epoch = %d, want %d", nw.Epoch, old.Epoch+1)
	}
	if nw.PartitionID != old.PartitionID {
		t.Fatalf("partition ID changed: %d -> %d", old.PartitionID, nw.PartitionID)
	}
	if old.NumChunks() >= nw.NumChunks() {
		t.Fatalf("shrinking the chunk did not increase chunk count: %d -> %d", old.NumChunks(), nw.NumChunks())
	}
	total, next := 0, 0
	for i, c := range nw.Chunks {
		if c.FirstEdge != next {
			t.Fatalf("chunk %d starts at %d, want %d", i, c.FirstEdge, next)
		}
		next += c.NumEdges
		total += c.NumEdges
	}
	if total != len(g.Edges) {
		t.Fatalf("relabelled chunks cover %d edges, want %d", total, len(g.Edges))
	}
}

func TestSplitStreamRoundTrips(t *testing.T) {
	mk := func(n int) []graph.Edge {
		out := make([]graph.Edge, n)
		for i := range out {
			out[i] = graph.Edge{Src: uint32(i), Dst: uint32(i + 1)}
		}
		return out
	}
	cases := []struct {
		name       string
		streamLen  int
		chunkBytes int64
		numChunks  int
	}{
		{"exact fit", 40, 10 * graph.EdgeSize, 4},
		{"spill into last", 55, 10 * graph.EdgeSize, 4},
		{"short stream leaves empties", 15, 10 * graph.EdgeSize, 4},
		{"empty stream", 0, 10 * graph.EdgeSize, 3},
		{"single chunk", 9, 100 * graph.EdgeSize, 1},
		{"sub-edge chunk size", 5, 1, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			edges := mk(tc.streamLen)
			segs := SplitStream(edges, tc.chunkBytes, tc.numChunks)
			if len(segs) != tc.numChunks {
				t.Fatalf("segments = %d, want %d", len(segs), tc.numChunks)
			}
			var cat []graph.Edge
			per := EdgesPerChunk(tc.chunkBytes)
			for i, s := range segs {
				if i < len(segs)-1 && len(s) > per {
					t.Fatalf("segment %d holds %d edges, capacity %d", i, len(s), per)
				}
				cat = append(cat, s...)
			}
			if len(cat) != len(edges) {
				t.Fatalf("concatenation has %d edges, want %d", len(cat), len(edges))
			}
			for i := range cat {
				if cat[i] != edges[i] {
					t.Fatalf("edge %d changed across split", i)
				}
			}
		})
	}
	if segs := SplitStream(mk(10), 960, 0); segs != nil {
		t.Fatalf("zero chunks should yield nil, got %d segments", len(segs))
	}
}

func TestLabelCoversAllEdgesOnce(t *testing.T) {
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("l", 256, 3000, 3))
	if err != nil {
		t.Fatal(err)
	}
	set := Label(0, g.Edges, 960) // 80 edges per chunk
	total := 0
	for i, c := range set.Chunks {
		if c.NumEdges != c.TotalEdges() {
			t.Fatalf("chunk %d: NumEdges=%d but table sums to %d", i, c.NumEdges, c.TotalEdges())
		}
		total += c.NumEdges
	}
	if total != len(g.Edges) {
		t.Fatalf("chunks cover %d edges, want %d", total, len(g.Edges))
	}
	// Chunks must tile the stream contiguously.
	next := 0
	for i, c := range set.Chunks {
		if c.FirstEdge != next {
			t.Fatalf("chunk %d starts at %d, want %d", i, c.FirstEdge, next)
		}
		next += c.NumEdges
	}
}

func TestLabelOutCountsMatchStream(t *testing.T) {
	g, _ := graph.GenerateUniform("u", 100, 1000, 9)
	set := Label(1, g.Edges, 1200) // 100 edges per chunk
	for _, c := range set.Chunks {
		counts := map[graph.VertexID]uint32{}
		for _, e := range g.Edges[c.FirstEdge : c.FirstEdge+c.NumEdges] {
			counts[e.Src]++
		}
		if len(counts) != len(c.Entries) {
			t.Fatalf("chunk has %d entries, want %d", len(c.Entries), len(counts))
		}
		for _, entry := range c.Entries {
			if counts[entry.Vertex] != entry.OutCnt {
				t.Fatalf("N+(%d) = %d, want %d", entry.Vertex, entry.OutCnt, counts[entry.Vertex])
			}
			if c.OutCount(entry.Vertex) != entry.OutCnt {
				t.Fatalf("OutCount(%d) lookup mismatch", entry.Vertex)
			}
		}
	}
}

func TestLabelEmptyPartition(t *testing.T) {
	set := Label(0, nil, 960)
	if set.NumChunks() != 0 {
		t.Fatalf("empty partition labelled with %d chunks", set.NumChunks())
	}
	if set.MetadataBytes() != 0 {
		t.Fatal("empty partition has metadata")
	}
}

func TestLabelChunkSizesBounded(t *testing.T) {
	// Property: every chunk except possibly the last holds exactly
	// chunkBytes/EdgeSize edges; the last holds the remainder.
	f := func(seed int64, sz uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(500)
		edges := make([]graph.Edge, n)
		for i := range edges {
			edges[i] = graph.Edge{Src: uint32(rng.Intn(64)), Dst: uint32(rng.Intn(64))}
		}
		per := 1 + int(sz)%50
		set := Label(0, edges, int64(per)*graph.EdgeSize)
		for i, c := range set.Chunks {
			if i < len(set.Chunks)-1 && c.NumEdges != per {
				return false
			}
			if c.NumEdges > per || c.NumEdges == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestMetadataProportionalToDistinctSources(t *testing.T) {
	edges := []graph.Edge{{Src: 1, Dst: 2}, {Src: 1, Dst: 3}, {Src: 2, Dst: 1}}
	set := Label(0, edges, 10*graph.EdgeSize)
	if got := set.MetadataBytes(); got != 16 { // 2 entries * 8 bytes
		t.Fatalf("metadata = %d, want 16", got)
	}
}

// Package chunk implements GraphM's logical chunking of graph partitions
// (Section 3.2 of the paper): Formula (1) chunk sizing, the Algorithm 1
// partition-labelling pass, and the chunk_table / Set_c metadata used by the
// synchronization manager.
//
// Chunks are *logical*: the engine's native partition layout is never
// modified. A chunk is a contiguous run of the partition's edge stream whose
// bytes fit in the LLC alongside the concurrent jobs' vertex data, so that
// once streamed in, it can be reused by every concurrent job before being
// displaced.
package chunk

import (
	"fmt"

	"graphm/internal/graph"
)

// SizeParams carries the quantities of Formula (1).
type SizeParams struct {
	NumCores  int   // N: worker threads of a running job
	LLCBytes  int64 // C_LLC: simulated LLC capacity
	GraphSize int64 // S_G: size of the graph data in bytes
	NumV      int64 // |V|
	VertexPay int64 // U_v: bytes of job-specific data per vertex
	Reserved  int64 // r: reserved LLC space
}

// alignment: chunk size must be a common multiple of the edge size and the
// cache-line size for locality (Section 3.2).
func alignment() int64 {
	return lcm(graph.EdgeSize, 64)
}

// ChunkSize returns the largest S_c satisfying Formula (1):
//
//	S_c*N + S_c*N/S_G*|V|*U_v + r <= C_LLC
//
// rounded down to a common multiple of the edge size and cache-line size and
// clamped to at least one aligned unit so degenerate configurations still
// stream correctly.
func ChunkSize(p SizeParams) (int64, error) {
	if p.NumCores <= 0 || p.LLCBytes <= 0 || p.GraphSize <= 0 || p.NumV <= 0 {
		return 0, fmt.Errorf("chunk: invalid size params %+v", p)
	}
	avail := p.LLCBytes - p.Reserved
	if avail <= 0 {
		return 0, fmt.Errorf("chunk: reserved space %d exceeds LLC %d", p.Reserved, p.LLCBytes)
	}
	// S_c * (N + N*|V|*U_v/S_G) <= avail
	denom := float64(p.NumCores) * (1 + float64(p.NumV)*float64(p.VertexPay)/float64(p.GraphSize))
	sc := int64(float64(avail) / denom)
	a := alignment()
	sc -= sc % a
	if sc < a {
		sc = a
	}
	return sc, nil
}

// Entry is one chunk_table key-value pair: a source vertex appearing in the
// chunk and the number of its out-going edges within the chunk (N+_k(v)).
type Entry struct {
	Vertex graph.VertexID
	OutCnt uint32
}

// Table describes one logical chunk of a partition.
type Table struct {
	// FirstEdge and NumEdges delimit the chunk within the partition's edge
	// stream.
	FirstEdge int
	NumEdges  int
	// Entries lists (source vertex, out-degree within chunk) in first-seen
	// order, exactly as Algorithm 1 builds c_table.
	Entries []Entry
	index   map[graph.VertexID]uint32
}

// OutCount returns N+_k(v): the number of v's out-edges inside this chunk.
func (t *Table) OutCount(v graph.VertexID) uint32 {
	if t.index == nil {
		t.index = make(map[graph.VertexID]uint32, len(t.Entries))
		for _, e := range t.Entries {
			t.index[e.Vertex] = e.OutCnt
		}
	}
	return t.index[v]
}

// TotalEdges returns the sum over entries of N+_k(v); equals NumEdges.
func (t *Table) TotalEdges() int {
	sum := 0
	for _, e := range t.Entries {
		sum += int(e.OutCnt)
	}
	return sum
}

// Set is Set_c of the paper: the ordered chunk tables of one partition.
//
// A Set is immutable once built: adaptive chunking replaces a partition's
// Set wholesale (Relabel) rather than editing it, so a streaming pass that
// captured a Set pointer keeps a coherent view even if the partition is
// re-labelled for the next pass. Epoch distinguishes labelling generations —
// chunk indices are only meaningful relative to one epoch, which is what
// makes (partition, epoch, index) a stable chunk key across re-labels.
type Set struct {
	PartitionID int
	ChunkBytes  int64
	Epoch       int
	Chunks      []*Table
}

// Label runs Algorithm 1 over the edges of a partition, producing its Set_c.
// edges is the partition's edge stream in the order it is streamed into the
// LLC; graphSize and totalEdges are S_G and |E| of the whole graph (the
// algorithm's termination test scales edge counts by S_G/|E|, which equals
// the edge size).
func Label(partitionID int, edges []graph.Edge, chunkBytes int64) *Set {
	set := &Set{PartitionID: partitionID, ChunkBytes: chunkBytes}
	if len(edges) == 0 {
		return set
	}
	edgesPerChunk := EdgesPerChunk(chunkBytes)
	var (
		cur   *Table
		idx   map[graph.VertexID]int // vertex -> entry position in cur
		count int
	)
	reset := func(first int) {
		cur = &Table{FirstEdge: first}
		idx = make(map[graph.VertexID]int)
		count = 0
	}
	reset(0)
	for i, e := range edges {
		if pos, ok := idx[e.Src]; ok {
			cur.Entries[pos].OutCnt++
		} else {
			idx[e.Src] = len(cur.Entries)
			cur.Entries = append(cur.Entries, Entry{Vertex: e.Src, OutCnt: 1})
		}
		count++
		// Line 11 of Algorithm 1: edge_num * S_G/|E| >= S_c, i.e. the chunk's
		// byte size reached S_c — or the partition is exhausted.
		if count >= edgesPerChunk || i == len(edges)-1 {
			cur.NumEdges = count
			set.Chunks = append(set.Chunks, cur)
			reset(i + 1)
		}
	}
	return set
}

// NumChunks returns the number of chunks in the set.
func (s *Set) NumChunks() int { return len(s.Chunks) }

// Relabel re-runs Algorithm 1 over the partition's edge stream with a new
// chunk size — the adaptive form of Formula (1), re-evaluated when the
// number of jobs sharing the partition has drifted from the N the current
// labelling assumed. The old Set is untouched; the returned Set carries the
// next labelling epoch.
func (s *Set) Relabel(edges []graph.Edge, newChunkBytes int64) *Set {
	ns := Label(s.PartitionID, edges, newChunkBytes)
	ns.Epoch = s.Epoch + 1
	return ns
}

// EdgesPerChunk returns the chunk capacity in edges implied by chunkBytes
// (at least one edge). Label and SplitStream both derive their windows from
// it, which is what keeps re-split snapshot streams aligned with a fresh
// labelling's chunk boundaries.
func EdgesPerChunk(chunkBytes int64) int {
	per := int(chunkBytes / graph.EdgeSize)
	if per < 1 {
		per = 1
	}
	return per
}

// SplitStream cuts an arbitrary edge stream into exactly numChunks segments
// whose concatenation is the input: segment i holds the i-th chunk-capacity
// window of the stream and the final segment takes whatever remains (so a
// stream longer than numChunks windows spills into the last segment, and a
// shorter one leaves trailing segments empty). It is the remapping primitive
// of adaptive re-labelling: replacement content recorded against one
// labelling epoch's chunk keys is re-distributed across the next epoch's
// keys without changing the stream any job observes.
func SplitStream(edges []graph.Edge, chunkBytes int64, numChunks int) [][]graph.Edge {
	if numChunks <= 0 {
		return nil
	}
	per := EdgesPerChunk(chunkBytes)
	segs := make([][]graph.Edge, numChunks)
	for i := 0; i < numChunks; i++ {
		lo := i * per
		if lo > len(edges) {
			lo = len(edges)
		}
		hi := lo + per
		if i == numChunks-1 || hi > len(edges) {
			hi = len(edges)
		}
		segs[i] = edges[lo:hi]
	}
	return segs
}

// MetadataBytes estimates the extra storage cost of the chunk tables — the
// overhead the paper reports as 5.5%–19.2% of the original graph.
func (s *Set) MetadataBytes() int64 {
	var n int64
	for _, t := range s.Chunks {
		n += int64(len(t.Entries)) * 8 // (vertex, count) pairs
	}
	return n
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm(a, b int64) int64 { return a / gcd(a, b) * b }

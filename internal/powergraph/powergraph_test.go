package powergraph

import (
	"math"
	"testing"

	"graphm/internal/algorithms"
	"graphm/internal/cluster"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
)

func buildPG(t *testing.T, numV, numE, nodes int) (*graph.Graph, *Partitioned, *cluster.Cluster) {
	t.Helper()
	g, err := graph.GenerateRMAT(graph.DefaultRMAT("pg", numV, numE, 41))
	if err != nil {
		t.Fatal(err)
	}
	cl, err := cluster.New(nodes, 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	p, err := Build(g, cl.Nodes)
	if err != nil {
		t.Fatal(err)
	}
	return g, p, cl
}

func TestBuildCoversEdgesAndCountsReplicas(t *testing.T) {
	g, p, _ := buildPG(t, 300, 2400, 4)
	total := 0
	for _, f := range p.Frags {
		total += len(f.Edges)
	}
	if total != g.NumEdges() {
		t.Fatalf("fragments cover %d edges, want %d", total, g.NumEdges())
	}
	if p.Masters == 0 || p.Replicas < p.Masters {
		t.Fatalf("replica accounting wrong: %d replicas, %d masters", p.Replicas, p.Masters)
	}
	rf := p.ReplicationFactor()
	if rf < 1 || rf > 4 {
		t.Fatalf("replication factor %v outside [1, nodes]", rf)
	}
	if p.SyncBytesPerIteration() != (p.Replicas-p.Masters)*16 {
		t.Fatal("sync bytes formula changed unexpectedly")
	}
}

func TestBuildRejectsEmptyGroup(t *testing.T) {
	g := graph.GenerateChain("c", 4)
	if _, err := Build(g, nil); err == nil {
		t.Fatal("expected error for empty group")
	}
}

func TestSingleNodeHasNoMirrors(t *testing.T) {
	_, p, _ := buildPG(t, 100, 500, 1)
	if p.Replicas != p.Masters {
		t.Fatalf("single node should have no mirrors: %d vs %d", p.Replicas, p.Masters)
	}
	if p.SyncBytesPerIteration() != 0 {
		t.Fatal("single node should not sync")
	}
}

func TestSequentialCorrectAndMetersNetwork(t *testing.T) {
	g, p, cl := buildPG(t, 400, 3000, 4)
	mem := p.SharedMemory(64 << 20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	r := NewRunner(p, cl.Net, mem, cache)
	pr := algorithms.NewPageRank(0.85, 5)
	pr.Tolerance = 1e-12
	j := engine.NewJob(1, pr, 1)
	if err := r.RunSequential([]*engine.Job{j}); err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferencePageRank(g, 0.85, 5)
	for v := range want {
		if math.Abs(pr.Ranks()[v]-want[v]) > 1e-9 {
			t.Fatalf("rank[%d] = %g, want %g", v, pr.Ranks()[v], want[v])
		}
	}
	if cl.Net.Bytes() == 0 {
		t.Fatal("no replica-sync traffic metered")
	}
	if j.Met.SimIONS == 0 {
		t.Fatal("network time not charged to the job")
	}
}

func TestConcurrentCorrect(t *testing.T) {
	g, p, cl := buildPG(t, 300, 2000, 3)
	mem := p.SharedMemory(64 << 20)
	cache, _ := memsim.NewCache(memsim.DefaultConfig(64 << 10))
	r := NewRunner(p, cl.Net, mem, cache)
	w1, w2 := algorithms.NewWCC(1000), algorithms.NewWCC(1000)
	jobs := []*engine.Job{engine.NewJob(1, w1, 1), engine.NewJob(2, w2, 2)}
	if err := r.RunConcurrent(jobs); err != nil {
		t.Fatal(err)
	}
	want := algorithms.ReferenceWCC(g)
	for v := range want {
		if w1.Labels()[v] != want[v] || w2.Labels()[v] != want[v] {
			t.Fatalf("wcc label mismatch at %d", v)
		}
	}
}

func TestSyncProgramChargesPerIteration(t *testing.T) {
	g, p, cl := buildPG(t, 200, 1200, 4)
	pr := algorithms.NewPageRank(0.85, 3)
	pr.Tolerance = 1e-12
	j := engine.NewJob(1, pr, 1)
	sp := &SyncProgram{Program: pr, Job: j, Net: cl.Net, P: p}
	j.Prog = sp

	j.Bind(g)
	for iter := 0; j.Prog.BeforeIteration(iter); iter++ {
		for _, e := range g.Edges {
			if j.Prog.Active().Has(int(e.Src)) {
				j.Prog.ProcessEdge(e)
			}
		}
		j.Prog.AfterIteration(iter)
	}
	if j.Met.SimIONS == 0 {
		t.Fatal("SyncProgram charged no network time")
	}
	if cl.Net.Messages() != 3 {
		t.Fatalf("messages = %d, want one per iteration (3)", cl.Net.Messages())
	}
}

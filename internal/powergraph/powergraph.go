// Package powergraph implements a PowerGraph-style engine substrate
// (Gonzalez et al., OSDI'12) over the simulated cluster: edges are
// vertex-cut across the nodes of a group, each node holding a CSR-ordered
// fragment; vertices incident to edges on multiple nodes have replicas that
// must synchronise over the network after every iteration — the
// gather/apply/scatter commit traffic that dominates PowerGraph's
// distributed cost.
package powergraph

import (
	"fmt"
	"sync"

	"graphm/internal/cluster"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// Fragment is one node's share of the vertex-cut edge set.
type Fragment struct {
	Node     *cluster.Node
	ID       int
	Edges    []graph.Edge
	DiskName string
}

// Partitioned is a graph vertex-cut across one group of nodes.
type Partitioned struct {
	G     *graph.Graph
	Group []*cluster.Node
	Frags []*Fragment

	// Replicas is the total number of (vertex, node) placements; the
	// replication factor is Replicas / |V present|. Per-iteration sync
	// traffic is proportional to Replicas - Masters.
	Replicas uint64
	Masters  uint64
}

// Build vertex-cuts g across the group's nodes (greedy hash placement, the
// "random vertex-cut" PowerGraph defaults to) and writes fragment blobs to
// each node's disk.
func Build(g *graph.Graph, group []*cluster.Node) (*Partitioned, error) {
	if len(group) == 0 {
		return nil, fmt.Errorf("powergraph: empty node group")
	}
	n := len(group)
	buckets := make([][]graph.Edge, n)
	for _, e := range g.Edges {
		// Hash an edge by its endpoints so both endpoints' edges spread.
		h := (uint64(e.Src)*2654435761 + uint64(e.Dst)*40503) % uint64(n)
		buckets[h] = append(buckets[h], e)
	}
	p := &Partitioned{G: g, Group: group}
	present := make(map[graph.VertexID]map[int]bool)
	for i, node := range group {
		f := &Fragment{
			Node:     node,
			ID:       i,
			Edges:    buckets[i],
			DiskName: fmt.Sprintf("%s/pg/frag%d", g.Name, i),
		}
		node.Disk.Write(f.DiskName, graph.EncodeEdges(f.Edges))
		p.Frags = append(p.Frags, f)
		for _, e := range buckets[i] {
			for _, v := range [2]graph.VertexID{e.Src, e.Dst} {
				m := present[v]
				if m == nil {
					m = make(map[int]bool)
					present[v] = m
				}
				m[i] = true
			}
		}
	}
	for range present {
		p.Masters++
	}
	for _, m := range present {
		p.Replicas += uint64(len(m))
	}
	return p, nil
}

// SyncBytesPerIteration is the replica-synchronisation traffic of one
// iteration of one job: every mirror exchanges its accumulator with the
// master and receives the committed value (2 transfers of the 8-byte
// vertex payload).
func (p *Partitioned) SyncBytesPerIteration() uint64 {
	mirrors := p.Replicas - p.Masters
	return mirrors * 2 * 8
}

// ReplicationFactor returns the average number of replicas per vertex.
func (p *Partitioned) ReplicationFactor() float64 {
	if p.Masters == 0 {
		return 0
	}
	return float64(p.Replicas) / float64(p.Masters)
}

// AsLayout exposes the fragments to GraphM as partitions, one per node.
// PowerGraph has no source-range structure, so fragments cover the full
// vertex range (no fragment skipping — matching GAS engines, which visit
// every machine each superstep).
func (p *Partitioned) AsLayout() core.Layout {
	parts := make([]*core.Partition, 0, len(p.Frags))
	for _, f := range p.Frags {
		parts = append(parts, &core.Partition{
			ID:       f.ID,
			SrcLo:    0,
			SrcHi:    p.G.NumV,
			DiskName: f.DiskName,
			Edges:    f.Edges,
		})
	}
	return core.NewLayout(p.G, parts)
}

// SharedMemory builds a storage.Memory view backed by the group's first
// node's disk, with the *sum* of the group's memory budgets — the
// distributed shared memory the paper describes ("the graph is only loaded
// into the distributed shared memory consisting of the memory of this
// group of nodes"). Fragment blobs are mirrored onto it so GraphM can load
// any fragment.
func (p *Partitioned) SharedMemory(perNodeBudget int64) *storage.Memory {
	disk := storage.NewDisk()
	for _, f := range p.Frags {
		disk.Write(f.DiskName, graph.EncodeEdges(f.Edges))
	}
	total := perNodeBudget * int64(len(p.Group))
	disk.SetPageCache(total)
	return storage.NewMemory(disk, total)
}

// Runner executes jobs on a partitioned graph in the baseline modes.
type Runner struct {
	P     *Partitioned
	Net   *cluster.Network
	Cache *memsim.Cache
	Cost  engine.CostModel
	// Mem is the distributed shared memory of the group.
	Mem *storage.Memory
}

// NewRunner wires a baseline runner.
func NewRunner(p *Partitioned, net *cluster.Network, mem *storage.Memory, cache *memsim.Cache) *Runner {
	return &Runner{P: p, Net: net, Mem: mem, Cache: cache, Cost: engine.DefaultCostModel()}
}

// RunSequential executes jobs one at a time (PowerGraph-S).
func (r *Runner) RunSequential(jobs []*engine.Job) error {
	for _, j := range jobs {
		stop := r.Net.StartStream()
		err := r.runJob(j, false)
		stop()
		if err != nil {
			return err
		}
	}
	return nil
}

// RunConcurrent executes jobs simultaneously with per-job fragment copies
// in the distributed shared memory (PowerGraph-C). As in the chaos runner,
// every stream is registered with the network up front so contention is
// priced by how many jobs share the link, not by accidental goroutine
// overlap.
func (r *Runner) RunConcurrent(jobs []*engine.Job) error {
	stops := make([]func(), len(jobs))
	for i := range jobs {
		stops[i] = r.Net.StartStream()
	}
	defer func() {
		for _, stop := range stops {
			stop()
		}
	}()
	var wg sync.WaitGroup
	var mu sync.Mutex
	var errs []error
	for _, j := range jobs {
		wg.Add(1)
		go func(j *engine.Job) {
			defer wg.Done()
			if err := r.runJob(j, true); err != nil {
				mu.Lock()
				errs = append(errs, err)
				mu.Unlock()
			}
		}(j)
	}
	wg.Wait()
	if len(errs) > 0 {
		return errs[0]
	}
	return nil
}

func (r *Runner) runJob(j *engine.Job, perJobCopy bool) error {
	j.Bind(r.P.G)
	state := j.Prog.StateBytes()
	j.StateBase = r.Mem.AllocAddr(state)
	r.Mem.ReserveJobData(state)
	defer r.Mem.ReserveJobData(-state)

	sync := r.P.SyncBytesPerIteration()
	for iter := 0; j.Prog.BeforeIteration(iter); iter++ {
		for _, f := range r.P.Frags {
			if len(f.Edges) == 0 {
				continue
			}
			key := f.DiskName
			if perJobCopy {
				key = fmt.Sprintf("%s#job%d", f.DiskName, j.ID)
			}
			buf, io, err := r.Mem.Load(key, f.DiskName)
			if err != nil {
				return fmt.Errorf("powergraph: job %d fragment %d: %w", j.ID, f.ID, err)
			}
			if io != storage.IONone {
				j.Met.SimIONS += r.Cost.DiskNS(uint64(len(buf.Data)))
			}
			j.Met.PartitionLoads++
			engine.StreamEdges(j, f.Edges, buf.BaseAddr, 0, r.Cache, r.Cost)
			buf.Release()
		}
		// Replica synchronisation commits the superstep; each node's NIC
		// carries its own mirrors' traffic in parallel.
		j.Met.SimIONS += r.Net.TransferNS(sync) / uint64(len(r.P.Group))
		j.Prog.AfterIteration(iter)
		j.Met.Iterations++
		j.Iter = iter + 1
	}
	j.Done = true
	return nil
}

// SyncProgram decorates a Program so that every iteration additionally pays
// the replica-synchronisation network cost; used for the GraphM-integrated
// mode where internal/core drives the program but network traffic remains
// per-job (each job commits its own accumulators).
type SyncProgram struct {
	engine.Program
	Job *engine.Job
	Net *cluster.Network
	P   *Partitioned
}

// AfterIteration implements engine.Program.
func (sp *SyncProgram) AfterIteration(iter int) {
	sp.Program.AfterIteration(iter)
	if sp.Job != nil && sp.Net != nil {
		sp.Job.Met.SimIONS += sp.Net.TransferNS(sp.P.SyncBytesPerIteration()) / uint64(len(sp.P.Group))
	}
}

package slo

import (
	"math/rand"
	"sort"
	"testing"
	"time"

	"graphm/internal/core"
	"graphm/internal/trace"
)

// TestPercentileTable pins the nearest-rank rule on hand-checked inputs —
// the same convention internal/replay has reported since PR 5.
func TestPercentileTable(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		q    float64
		want float64
	}{
		{"empty", nil, 0.5, 0},
		{"single p50", []float64{7}, 0.5, 7},
		{"single p99", []float64{7}, 0.99, 7},
		{"two p50", []float64{1, 2}, 0.5, 1},
		{"two p90", []float64{1, 2}, 0.9, 2},
		{"ten p50", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.5, 5},
		{"ten p90", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.9, 9},
		{"ten p99", []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 0.99, 10},
		{"hundred p99", seq(100), 0.99, 99},
		{"hundred p01", seq(100), 0.01, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := Percentile(tc.xs, tc.q); got != tc.want {
				t.Fatalf("Percentile(%v, %v) = %v, want %v", tc.xs, tc.q, got, tc.want)
			}
		})
	}
}

func seq(n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = float64(i + 1)
	}
	return xs
}

// TestSummarizeMatchesManual checks the aggregate fields on a small fixed
// population, and that the input is neither reordered nor modified.
func TestSummarizeMatchesManual(t *testing.T) {
	in := []float64{5, 1, 4, 2, 3}
	s := Summarize(in)
	if s.Count != 5 || s.Sum != 15 || s.Mean != 3 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("unexpected summary %+v", s)
	}
	if in[0] != 5 || in[4] != 3 {
		t.Fatalf("Summarize mutated its input: %v", in)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Fatalf("Summarize(nil) = %+v, want zero", z)
	}
}

// TestWindowMatchesOfflineOnTraceStream is the differential contract: a
// window whose span covers an entire sample stream reports bit-identical
// quantiles to the exact offline Summarize over the same stream. The stream
// is derived from the Figure-2 trace (per-event seeded draws, the same
// derivation style the replay harness uses), observed on a virtual clock at
// the events' trace times.
func TestWindowMatchesOfflineOnTraceStream(t *testing.T) {
	for _, seed := range []int64{1, 42, 7777} {
		tr := trace.Generate(48, seed)
		clock := core.NewVirtualClock(time.Unix(0, 0).UTC())
		w := NewWindow(14*24*time.Hour, 16, clock) // span far beyond the 48 h stream
		var offline []float64
		for _, e := range tr.Events {
			rng := rand.New(rand.NewSource(e.Seed))
			v := rng.ExpFloat64() // a queue-wait-shaped draw
			clock.Set(time.Unix(0, 0).UTC().Add(time.Duration(e.AtHour * float64(time.Hour))))
			w.Observe(v)
			offline = append(offline, v)
		}
		got, want := w.Snapshot(), Summarize(offline)
		if got != want {
			t.Fatalf("seed %d: window %+v != offline %+v", seed, got, want)
		}
	}
}

// TestWindowRotation advances a virtual clock past the span and checks that
// stale buckets expire — and that a bucket slot is reset when its ring index
// is reused after a long idle gap.
func TestWindowRotation(t *testing.T) {
	start := time.Unix(0, 0).UTC()
	clock := core.NewVirtualClock(start)
	w := NewWindow(10*time.Second, 10, clock) // 1 s buckets

	// One sample per second for 10 s: all live.
	for i := 0; i < 10; i++ {
		clock.Set(start.Add(time.Duration(i) * time.Second))
		w.Observe(float64(i))
	}
	if s := w.Snapshot(); s.Count != 10 || s.Max != 9 {
		t.Fatalf("full window: %+v", s)
	}

	// 5 s later, the first five samples have aged out.
	clock.Set(start.Add(14 * time.Second))
	if s := w.Snapshot(); s.Count != 5 {
		t.Fatalf("after 14s want 5 live samples, got %+v", s)
	} else if s.P50 != 7 {
		// Live samples are 5..9.
		t.Fatalf("after 14s want p50=7 over 5..9, got %+v", s)
	}

	// Far past the span: everything expires.
	clock.Set(start.Add(time.Hour))
	if s := w.Snapshot(); s != (Summary{}) {
		t.Fatalf("fully aged window should be empty, got %+v", s)
	}

	// A bucket slot reused exactly one ring revolution later (same index,
	// different epoch) must not resurrect the old samples.
	clock.Set(start.Add(time.Hour + 42*time.Second))
	w.Observe(100)
	if s := w.Snapshot(); s.Count != 1 || s.Max != 100 {
		t.Fatalf("reused bucket should hold only the new sample, got %+v", s)
	}
}

// TestWindowEmptyAndEdgeCases covers the empty window, single observation,
// and snapshots taken exactly on a bucket boundary.
func TestWindowEmptyAndEdgeCases(t *testing.T) {
	start := time.Unix(100, 0).UTC()
	clock := core.NewVirtualClock(start)
	w := NewWindow(time.Minute, 6, clock)

	if s := w.Snapshot(); s != (Summary{}) {
		t.Fatalf("fresh window should be empty, got %+v", s)
	}
	w.Observe(3.5)
	s := w.Snapshot()
	if s.Count != 1 || s.P50 != 3.5 || s.P99 != 3.5 || s.Max != 3.5 || s.Mean != 3.5 {
		t.Fatalf("single-sample window: %+v", s)
	}
	// Exactly at the expiry edge: the sample's bucket (epoch e) stays live
	// until the snapshot epoch passes e + n - 1.
	clock.Set(start.Add(50 * time.Second))
	if s := w.Snapshot(); s.Count != 1 {
		t.Fatalf("sample should still be live at 50s of a 60s span, got %+v", s)
	}
	clock.Set(start.Add(70 * time.Second))
	if s := w.Snapshot(); s.Count != 0 {
		t.Fatalf("sample should be gone at 70s, got %+v", s)
	}
}

// TestWindowDefaults exercises the constructor's defaulting paths.
func TestWindowDefaults(t *testing.T) {
	w := NewWindow(time.Hour, 0, nil) // n<1 -> 1 bucket, nil clock -> wall
	w.Observe(1)
	if s := w.Snapshot(); s.Count != 1 {
		t.Fatalf("want the sample visible immediately, got %+v", s)
	}
	if w.Span() != time.Hour {
		t.Fatalf("span = %v, want 1h", w.Span())
	}
	defer func() {
		if recover() == nil {
			t.Fatal("NewWindow with non-positive span should panic")
		}
	}()
	NewWindow(0, 4, nil)
}

// TestWindowConcurrent hammers Observe/Snapshot from several goroutines
// under -race; counts are checked to be complete once all writers join.
func TestWindowConcurrent(t *testing.T) {
	clock := core.NewVirtualClock(time.Unix(0, 0).UTC())
	w := NewWindow(time.Hour, 8, clock)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 250; i++ {
				w.Observe(float64(g*1000 + i))
				if i%50 == 0 {
					w.Snapshot()
				}
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if s := w.Snapshot(); s.Count != 1000 {
		t.Fatalf("want 1000 samples after all writers joined, got %d", s.Count)
	}
}

// TestSummarizeAgreesWithSortedPercentile cross-checks Summarize's quantile
// fields against direct Percentile calls on the sorted population.
func TestSummarizeAgreesWithSortedPercentile(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	xs := make([]float64, 321)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	s := Summarize(xs)
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if s.P50 != Percentile(sorted, 0.50) || s.P90 != Percentile(sorted, 0.90) || s.P99 != Percentile(sorted, 0.99) {
		t.Fatalf("Summarize quantiles disagree with Percentile: %+v", s)
	}
}

package slo_test

import (
	"fmt"
	"time"

	"graphm/internal/core"
	"graphm/internal/slo"
)

// ExampleSummarize aggregates a finished sample population offline — the
// path the replay harness uses for its end-of-run queue-wait report.
func ExampleSummarize() {
	waits := []float64{0.2, 0.1, 0.4, 0.3, 1.0}
	s := slo.Summarize(waits)
	fmt.Printf("count=%d mean=%.2f p50=%.2f p99=%.2f max=%.2f\n",
		s.Count, s.Mean, s.P50, s.P99, s.Max)
	// Output:
	// count=5 mean=0.40 p50=0.30 p99=1.00 max=1.00
}

// ExampleWindow tracks the same quantiles online over a rolling span — the
// path the daemon's /metrics endpoint exports. A virtual clock stands in
// for wall time so the rotation is visible.
func ExampleWindow() {
	start := time.Unix(0, 0).UTC()
	clock := core.NewVirtualClock(start)
	w := slo.NewWindow(10*time.Second, 10, clock)

	for i, v := range []float64{0.2, 0.1, 0.4, 0.3, 1.0} {
		clock.Set(start.Add(time.Duration(i) * time.Second))
		w.Observe(v)
	}
	s := w.Snapshot()
	fmt.Printf("live: count=%d p50=%.2f p99=%.2f\n", s.Count, s.P50, s.P99)

	// Eight seconds later the first three samples have aged out of the
	// 10-second window.
	clock.Set(start.Add(12 * time.Second))
	s = w.Snapshot()
	fmt.Printf("aged: count=%d p50=%.2f max=%.2f\n", s.Count, s.P50, s.Max)
	// Output:
	// live: count=5 p50=0.30 p99=1.00
	// aged: count=2 p50=0.30 max=1.00
}

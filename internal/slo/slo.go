// Package slo is the shared service-level-objective math: exact quantile
// aggregation over a finished sample set (the offline path, used by the
// replay harness's week-in-the-life reports) and a rotating-bucket sliding
// window that reports the same quantiles online over the most recent span
// (the daemon path, exported by internal/server's /metrics endpoint).
//
// Both paths retain exact samples and compute nearest-rank quantiles, so a
// window whose span covers an entire sample stream reports bit-identical
// p50/p90/p99 to the offline Summarize over that stream — the differential
// contract the server load test asserts against the replay computation.
package slo

import (
	"sort"
	"sync"
	"time"

	"graphm/internal/core"
)

// Summary is the aggregate view of one sample population: the queue-wait
// and runtime roll-up the replay report prints and /metrics exports. The
// JSON form is part of the daemon's API surface (RecoveryState).
type Summary struct {
	Count int     `json:"count"`
	Sum   float64 `json:"sum"`
	Mean  float64 `json:"mean"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P90   float64 `json:"p90"`
	P99   float64 `json:"p99"`
}

// Percentile returns the q-quantile of sorted xs by the nearest-rank rule
// (the convention the replay reports have used since PR 5). Empty input
// returns 0. xs must be sorted ascending.
func Percentile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	i := int(q*float64(len(xs))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(xs) {
		i = len(xs) - 1
	}
	return xs[i]
}

// Summarize computes the exact offline Summary of samples. The input is not
// modified; an empty input yields the zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	xs := make([]float64, len(samples))
	copy(xs, samples)
	sort.Float64s(xs)
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return Summary{
		Count: len(xs),
		Sum:   sum,
		Mean:  sum / float64(len(xs)),
		Max:   xs[len(xs)-1],
		P50:   Percentile(xs, 0.50),
		P90:   Percentile(xs, 0.90),
		P99:   Percentile(xs, 0.99),
	}
}

// Window is a sliding-window sample recorder: observations land in
// fixed-width time buckets keyed off an injectable core.Clock, and Snapshot
// aggregates the buckets still inside the span. Buckets are rotated lazily
// (on Observe and Snapshot), so an idle window costs nothing. All methods
// are safe for concurrent use.
//
// The window keeps exact samples rather than pre-bucketed counts: quantiles
// over the live span are exact, which is what lets the daemon's online
// numbers be differentially tested against the offline Summarize. Memory is
// bounded by the observation rate times the span, which for queue-wait
// observations (one per admitted job) is small at any plausible rate.
type Window struct {
	mu      sync.Mutex
	clock   core.Clock
	width   time.Duration // one bucket's time width
	buckets []bucket      // ring, indexed by (time/width) mod len
}

type bucket struct {
	epoch   int64 // floor(time/width) this bucket currently holds; -1 empty
	samples []float64
}

// NewWindow returns a window covering roughly span, split into n rotating
// buckets (granularity span/n: a snapshot covers between span-span/n and
// span of history, the standard rotating-histogram trade-off). span must be
// positive; n < 1 is treated as 1. A nil clock means core.WallClock.
func NewWindow(span time.Duration, n int, clock core.Clock) *Window {
	if span <= 0 {
		panic("slo: NewWindow span must be positive")
	}
	if n < 1 {
		n = 1
	}
	if clock == nil {
		clock = core.WallClock{}
	}
	w := &Window{
		clock:   clock,
		width:   span / time.Duration(n),
		buckets: make([]bucket, n),
	}
	if w.width <= 0 {
		w.width = time.Nanosecond
	}
	for i := range w.buckets {
		w.buckets[i].epoch = -1
	}
	return w
}

// epochAt maps an instant to its bucket epoch (floor of time/width).
func (w *Window) epochAt(t time.Time) int64 {
	return t.UnixNano() / int64(w.width)
}

// Observe records one sample at the clock's current time.
func (w *Window) Observe(v float64) {
	now := w.clock.Now()
	e := w.epochAt(now)
	i := int(e % int64(len(w.buckets)))
	if i < 0 {
		i += len(w.buckets)
	}
	w.mu.Lock()
	b := &w.buckets[i]
	if b.epoch != e {
		b.epoch = e
		b.samples = b.samples[:0]
	}
	b.samples = append(b.samples, v)
	w.mu.Unlock()
}

// Snapshot aggregates the samples observed within the window's span ending
// at the clock's current time. An empty window yields the zero Summary.
func (w *Window) Snapshot() Summary {
	now := w.clock.Now()
	e := w.epochAt(now)
	oldest := e - int64(len(w.buckets)) + 1
	var xs []float64
	w.mu.Lock()
	for i := range w.buckets {
		b := &w.buckets[i]
		if b.epoch >= oldest && b.epoch <= e {
			xs = append(xs, b.samples...)
		}
	}
	w.mu.Unlock()
	return Summarize(xs)
}

// Span returns the window's full coverage (bucket width times bucket count).
func (w *Window) Span() time.Duration {
	return w.width * time.Duration(len(w.buckets))
}

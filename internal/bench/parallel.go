package bench

import (
	"fmt"
	"runtime"
	"time"

	"graphm/internal/jobs"
)

// parallel is the real-concurrency experiment for the streaming executor:
// the same out-of-core workload swept over the executor's worker count,
// reporting wall-clock speedup against the workers=1 serial pipeline. The
// simulated columns are the control: the cost model prices counted work, so
// the simulated makespan and the jobs' work counters must stay (essentially)
// flat across the sweep while the wall-clock column scales — real
// parallelism changes when the work happens, never how much work there is.
func (h *Harness) parallel() ([]*Table, error) {
	e, err := h.gridEnv("uk-union")
	if err != nil {
		return nil, err
	}
	jobCount := h.JobCount
	if jobCount <= 0 {
		jobCount = 16
	}
	t := &Table{
		Title: fmt.Sprintf("parallel executor: %d jobs, uk-union (out-of-core), worker sweep", jobCount),
		Headers: []string{"workers", "wall", "speedup", "peak streams", "sim makespan(s)",
			"scanned edges", "shared loads", "prefetch hit/start"},
		Notes: []string{
			fmt.Sprintf("speedup: wall-clock of workers=1 over this row (>1.5x expected at 4 workers given >=4 cores; GOMAXPROCS here: %d)", runtime.GOMAXPROCS(0)),
			"peak streams: chunk applications in flight at once — the pool's real concurrency, which cores turn into speedup",
			"sim makespan prices counted work and must stay ~flat across the sweep",
			"workers=1 streams the executor's chunk schedule serially; the figure experiments use the legacy driver (workers=0), which matches it",
		},
	}
	var base time.Duration
	for _, w := range []int{1, 2, 4, 8} {
		res, err := e.RunScheme(SchemeM, func() *jobs.Workload {
			return jobs.Rotation(jobCount, h.Seed)
		}, RunOptions{Cores: h.Cores, Workers: w})
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		if w == 1 {
			base = res.Wall
		}
		speedup := 0.0
		if res.Wall > 0 {
			speedup = float64(base) / float64(res.Wall)
		}
		st := res.SysStats
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", w),
			res.Wall.Round(time.Millisecond).String(),
			fmt.Sprintf("%.2fx", speedup),
			fmt.Sprintf("%d", st.PeakParallelStreams),
			f2(res.MakespanSec()),
			human(res.ScannedEdges),
			human(st.SharedLoads),
			fmt.Sprintf("%d/%d", st.PrefetchHits, st.Prefetches),
		})
	}
	return []*Table{t}, nil
}

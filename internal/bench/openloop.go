package bench

import (
	"fmt"
	"math/rand"
	"time"

	"graphm/internal/core"
	"graphm/internal/memsim"
	"graphm/internal/service"
	"graphm/internal/storage"
)

// openloop is the open-arrival scenario: instead of the closed, pre-declared
// batches of the figure experiments, jobs arrive Poisson-style at a
// configurable rate and are admitted by the service layer into whatever
// round is streaming. The scan over arrival rates shows the system's
// defining behaviour under online traffic: the denser the arrivals, the
// more partition loads each disk transfer amortizes (shared loads and
// mid-round joins climb with the rate), which is the property every future
// scaling PR is measured against.
func (h *Harness) openloop() ([]*Table, error) {
	e, err := h.gridEnv("uk-union")
	if err != nil {
		return nil, err
	}
	jobs := h.JobCount
	if jobs <= 0 {
		jobs = 16
	}
	t := &Table{
		Title:   fmt.Sprintf("open-loop arrivals: %d jobs admitted online, uk-union (out-of-core)", jobs),
		Headers: []string{"rate(jobs/s)", "completed", "shared loads", "mid-round joins", "loads/IO", "avg queue wait", "wall"},
		Notes: []string{
			"open arrivals join the in-flight round at the next partition barrier (service layer)",
			"loads/IO: job-side partition loads served per disk read — denser arrivals amortize better",
		},
	}
	for _, rate := range []float64{10, 40, 160} {
		row, err := h.openloopRate(e, jobs, rate)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}
	return []*Table{t}, nil
}

// openloopRate runs one open-loop execution at the given arrival rate
// (jobs per second of wall time) and returns its table row.
func (h *Harness) openloopRate(e *GridEnv, jobs int, rate float64) ([]string, error) {
	e.Disk.ResetCounters()
	e.Disk.DropCaches()
	e.Disk.SetPageCache(e.Spec.MemBudget)
	mem := storage.NewMemory(e.Disk, e.Spec.MemBudget)
	cache, err := memsim.NewCache(memsim.DefaultConfig(e.Spec.LLCBytes))
	if err != nil {
		return nil, err
	}
	cfg := core.DefaultConfig(e.Spec.LLCBytes)
	cfg.Cores = h.Cores
	sys, err := core.NewSystem(e.Grid.AsLayout(), mem, cache, cfg)
	if err != nil {
		return nil, err
	}
	// Admit at most half the workload at once so dense arrival bursts
	// actually queue: the queue-wait column then reflects the arrival rate
	// instead of being structurally zero.
	svc := service.New(sys, service.Config{MaxInFlight: (jobs + 1) / 2, Seed: h.Seed})

	rotation := []string{"wcc", "pagerank", "sssp", "bfs"}
	arrivals := poissonGaps(jobs, rate, h.Seed)
	start := time.Now()
	var tickets []*service.Ticket
	for i := 0; i < jobs; i++ {
		if arrivals[i] > 0 {
			time.Sleep(arrivals[i])
		}
		tk, err := svc.Submit(service.Request{
			Tenant: fmt.Sprintf("t%d", i%2),
			Algo:   rotation[i%len(rotation)],
		})
		if err != nil {
			return nil, err
		}
		tickets = append(tickets, tk)
	}
	if err := svc.Drain(); err != nil {
		return nil, err
	}
	wall := time.Since(start)

	var wait time.Duration
	var jobLoads uint64
	for _, tk := range tickets {
		wait += tk.QueueWait()
		jobLoads += tk.Job().Met.PartitionLoads
	}
	amortize := 0.0
	if ops := e.Disk.ReadOps(); ops > 0 {
		amortize = float64(jobLoads) / float64(ops)
	}
	snap := svc.Snapshot()
	stats := svc.SystemStats()
	return []string{
		fmt.Sprintf("%.0f", rate),
		fmt.Sprintf("%d", snap.Completed),
		fmt.Sprintf("%d", stats.SharedLoads),
		fmt.Sprintf("%d", stats.MidRoundJoins),
		f2(amortize),
		fmt.Sprintf("%v", (wait / time.Duration(len(tickets))).Round(time.Microsecond)),
		fmt.Sprintf("%v", wall.Round(time.Millisecond)),
	}, nil
}

// poissonGaps returns exponential inter-arrival gaps for an open-loop
// submission at the given mean rate (first arrival is immediate).
func poissonGaps(n int, perSecond float64, seed int64) []time.Duration {
	rng := rand.New(rand.NewSource(seed))
	gaps := make([]time.Duration, n)
	for i := 1; i < n; i++ {
		gaps[i] = time.Duration(rng.ExpFloat64() / perSecond * float64(time.Second))
	}
	return gaps
}

package bench

import (
	"fmt"
	"time"

	"graphm/internal/core"
	"graphm/internal/scenario"
)

// Adaptive-chunking experiment geometry. The ramp runs on a dense graph
// (average degree ~390) because Formula (1)'s sizing assumption — a chunk's
// share of job-specific data scales with the chunk's share of the graph —
// holds when the per-job vertex state is small next to the LLC. There the
// attendance-adaptive labelling pays for itself: chunks sized for the jobs
// actually sharing a partition survive the leader/follower lockstep, where
// the static NewSystem-time labelling thrashes during the high-concurrency
// phase. (On sparse graphs whose per-job state rivals the LLC, re-streaming
// vertex stripes dominates and extra chunk passes cost more than follower
// reuse saves — which is why adaptivity is a config, not a default.)
const (
	adaptiveNumV  = 1024
	adaptiveNumE  = 400_000
	adaptiveGridP = 4
	adaptiveSeed  = 14
	adaptiveLLC   = 64 << 10
	adaptiveMem   = 2 << 20
	// The ramp: 2 anchors, 12 short jobs attaching mid-round, one scripted
	// cancellation — attendance climbs 2 -> 14 and falls back to 2.
	adaptiveRampJobs    = 12
	adaptiveAnchorIters = 5
	adaptiveShortIters  = 3
	// adaptiveStaticCores is the N the static labelling assumes (the
	// steady-state service floor); the ramp's peak exceeds it 7x.
	adaptiveStaticCores = 2
)

// adaptiveOutcome is one chunking mode's run of the ramp.
type adaptiveOutcome struct {
	res  *scenario.Result
	wall time.Duration
}

// adaptive is the adaptive-chunking experiment: the same deterministic
// attach/detach ramp (internal/scenario) under the static Formula (1)
// labelling and under partition-barrier re-labelling, comparing simulated
// LLC misses and makespan. The scenario harness's invariants double as the
// experiment's self-check: both runs must do identical per-job work and
// produce bit-identical PageRank/WCC outputs.
func (h *Harness) adaptive() ([]*Table, error) {
	static, err := h.adaptiveRun(false)
	if err != nil {
		return nil, err
	}
	adaptive, err := h.adaptiveRun(true)
	if err != nil {
		return nil, err
	}
	identical := "yes"
	if err := scenario.CheckWorkEqual(static.res, adaptive.res); err != nil {
		identical = fmt.Sprintf("NO: %v", err)
	} else if err := scenario.CheckOutputsEqual(static.res, adaptive.res); err != nil {
		identical = fmt.Sprintf("NO: %v", err)
	}

	t := &Table{
		Title: fmt.Sprintf("adaptive chunk re-labelling: attach/detach ramp 2 -> %d -> 2 jobs, dense R-MAT (|V|=%d, |E|=%d)",
			adaptiveRampJobs+2, adaptiveNumV, adaptiveNumE),
		Headers: []string{"chunking", "LLC misses", "miss rate", "relabels", "skips", "rounds", "sim makespan(s)", "wall"},
		Notes: []string{
			fmt.Sprintf("static labels once at Init with N=%d; adaptive re-evaluates Formula (1) at partition barriers with N = attending jobs (2x hysteresis)", adaptiveStaticCores),
			"the ramp attaches mid-round at successive partition barriers of round 1 and includes one scripted cancellation",
			fmt.Sprintf("outputs bit-identical across modes: %s (re-labelling changes granularity, never results)", identical),
			"relabel/skip counts vary a little run to run: round-boundary re-attachment is timing-dependent, the work is not",
		},
	}
	for _, row := range []struct {
		name string
		o    *adaptiveOutcome
	}{{"static", static}, {"adaptive", adaptive}} {
		st := row.o.res.Stats
		total := row.o.res.CacheMisses + row.o.res.CacheHits
		rate := 0.0
		if total > 0 {
			rate = float64(row.o.res.CacheMisses) / float64(total)
		}
		t.Rows = append(t.Rows, []string{
			row.name,
			human(row.o.res.CacheMisses),
			pct(rate),
			human(st.Relabels),
			human(st.RelabelSkips),
			fmt.Sprintf("%d", st.Rounds),
			f2(adaptiveMakespan(row.o.res)),
			row.o.wall.Round(time.Millisecond).String(),
		})
	}
	return []*Table{t}, nil
}

// adaptiveRun replays the ramp under one chunking mode on a fresh
// environment.
func (h *Harness) adaptiveRun(adaptiveChunking bool) (*adaptiveOutcome, error) {
	env, _, err := scenario.GenEnv("adaptive", adaptiveNumV, adaptiveNumE, adaptiveGridP,
		adaptiveSeed, adaptiveLLC, adaptiveMem)
	if err != nil {
		return nil, err
	}
	script, err := scenario.RampScript(scenario.RampOptions{
		Partitions:  env.NonEmptyPartitions(),
		RampJobs:    adaptiveRampJobs,
		AnchorIters: adaptiveAnchorIters,
		ShortIters:  adaptiveShortIters,
		DetachLast:  true,
	})
	if err != nil {
		return nil, err
	}
	cc := core.DefaultConfig(adaptiveLLC)
	cc.Cores = adaptiveStaticCores
	cc.AdaptiveChunking = adaptiveChunking
	start := time.Now()
	res, err := scenario.Run(env, cc, script)
	if err != nil {
		return nil, err
	}
	wall := time.Since(start)
	if err := scenario.CheckClean(env, res); err != nil {
		return nil, err
	}
	return &adaptiveOutcome{res: res, wall: wall}, nil
}

// adaptiveMakespan prices the run's counted work with the standard scheme-M
// cost model.
func adaptiveMakespan(res *scenario.Result) float64 {
	r := &SchemeResult{Scheme: SchemeM, Jobs: len(res.Jobs), Cores: adaptiveStaticCores}
	for _, j := range res.Jobs {
		r.ComputeNS += j.Metrics.SimComputeNS
		r.MemNS += j.Metrics.SimMemNS
		r.IONS += j.Metrics.SimIONS
	}
	return r.MakespanSec()
}

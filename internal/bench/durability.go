package bench

import (
	"fmt"
	"math/rand"
	"os"
	"sync"
	"time"

	"graphm/internal/core"
	"graphm/internal/faultfs"
	"graphm/internal/graph"
	"graphm/internal/scenario"
	"graphm/internal/storage"
)

// Durability-experiment geometry. The graph is small enough that one evolve
// op's in-memory work is on the order of the WAL bookkeeping it triggers —
// the honest worst case for measuring logging overhead (on paper-scale
// graphs the chunk rewrite dwarfs the append).
const (
	durNumV  = 512
	durNumE  = 20_000
	durGridP = 4
	durSeed  = 21
	durLLC   = 64 << 10
	durMem   = 2 << 20

	// The serial workload: durOpCount evolve ops mixing global adds,
	// job-private adds and predicate removals, deterministically generated.
	durOpCount = 192
	durBatch   = 8
	// The concurrent workload: durWriters goroutines, durWriterOps adds each,
	// against a store that really fsyncs — the group-commit case.
	durWriters   = 8
	durWriterOps = 24
	// Tail ops applied after the checkpoint so recovery exercises
	// checkpoint + WAL replay, not checkpoint alone.
	durTailOps = 8
)

// durOp is one scripted evolve operation.
type durOp struct {
	kind   int // 0 = AddEdges, 1 = AddEdgesFor, 2 = RemoveEdges
	edges  []graph.Edge
	jobID  int
	target graph.VertexID // RemoveEdges: delete edges with this destination
}

// durOps generates the deterministic serial workload.
func durOps() []durOp {
	rng := rand.New(rand.NewSource(durSeed))
	batch := func() []graph.Edge {
		edges := make([]graph.Edge, durBatch)
		for i := range edges {
			edges[i] = graph.Edge{
				Src:    graph.VertexID(rng.Intn(durNumV)),
				Dst:    graph.VertexID(rng.Intn(durNumV)),
				Weight: float32(rng.Intn(16)),
			}
		}
		return edges
	}
	ops := make([]durOp, 0, durOpCount)
	for i := 0; i < durOpCount; i++ {
		switch {
		case i%16 == 15:
			ops = append(ops, durOp{kind: 2, target: graph.VertexID(rng.Intn(durNumV))})
		case i%8 == 3:
			ops = append(ops, durOp{kind: 1, jobID: 7, edges: batch()})
		default:
			ops = append(ops, durOp{kind: 0, edges: batch()})
		}
	}
	return ops
}

func durApply(sys *core.System, op durOp) error {
	switch op.kind {
	case 1:
		return sys.AddEdgesFor(op.jobID, op.edges)
	case 2:
		target := op.target
		_, _, err := sys.RemoveEdges(func(e graph.Edge) bool { return e.Dst == target })
		return err
	default:
		_, err := sys.AddEdges(op.edges)
		return err
	}
}

// durSys builds a fresh system over the deterministic durability graph.
func durSys() (*core.System, error) {
	env, _, err := scenario.GenEnv("durability", durNumV, durNumE, durGridP,
		durSeed, durLLC, durMem)
	if err != nil {
		return nil, err
	}
	return core.NewSystem(env.Layout, env.Mem, env.Cache, core.DefaultConfig(durLLC))
}

// durSerialRun applies the serial workload once against a fresh system,
// optionally with a WAL sink, and reports the wall time plus (when logging)
// the store's WAL statistics.
func durSerialRun(withWAL, noSync bool) (time.Duration, storage.WALStats, error) {
	var stats storage.WALStats
	sys, err := durSys()
	if err != nil {
		return 0, stats, err
	}
	var st *storage.Store
	if withWAL {
		dir, err := os.MkdirTemp("", "graphm-durability-*")
		if err != nil {
			return 0, stats, err
		}
		defer os.RemoveAll(dir)
		st, _, err = storage.Open(dir, storage.StoreOptions{NoSync: noSync, CheckpointEveryRecords: -1})
		if err != nil {
			return 0, stats, err
		}
		defer st.Close()
		sys.SetEvolveSink(st)
	}
	ops := durOps()
	start := time.Now()
	for _, op := range ops {
		if err := durApply(sys, op); err != nil {
			return 0, stats, err
		}
	}
	wall := time.Since(start)
	if st != nil {
		stats = st.WALStats()
	}
	return wall, stats, nil
}

// durBestOf repeats a serial run and keeps the fastest wall time (the later
// trials' stats are identical by construction — same ops, same store shape).
func durBestOf(trials int, withWAL, noSync bool) (time.Duration, storage.WALStats, error) {
	var best time.Duration
	var stats storage.WALStats
	for i := 0; i < trials; i++ {
		wall, s, err := durSerialRun(withWAL, noSync)
		if err != nil {
			return 0, stats, err
		}
		if i == 0 || wall < best {
			best, stats = wall, s
		}
	}
	return best, stats, nil
}

// durConcurrentRun drives durWriters goroutines of AddEdges against a store
// that really fsyncs. Record order is fixed at append time under the
// controller lock while commit waits happen outside it, so concurrent
// writers' records coalesce into shared syncs — the measurement here.
func durConcurrentRun() (time.Duration, storage.WALStats, error) {
	var stats storage.WALStats
	sys, err := durSys()
	if err != nil {
		return 0, stats, err
	}
	dir, err := os.MkdirTemp("", "graphm-durability-*")
	if err != nil {
		return 0, stats, err
	}
	defer os.RemoveAll(dir)
	st, _, err := storage.Open(dir, storage.StoreOptions{CheckpointEveryRecords: -1})
	if err != nil {
		return 0, stats, err
	}
	defer st.Close()
	sys.SetEvolveSink(st)

	var wg sync.WaitGroup
	errs := make([]error, durWriters)
	start := time.Now()
	for w := 0; w < durWriters; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(durSeed + int64(w)))
			for i := 0; i < durWriterOps; i++ {
				edges := []graph.Edge{{
					Src:    graph.VertexID(rng.Intn(durNumV)),
					Dst:    graph.VertexID(rng.Intn(durNumV)),
					Weight: float32(w),
				}}
				if _, err := sys.AddEdges(edges); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, stats, err
		}
	}
	return wall, st.WALStats(), nil
}

// durWALMicro isolates the group-commit mechanism from the engine: N
// goroutines append small records directly to a syncing WAL, each waiting
// for its commit. Appends are near-free, so during any in-flight fsync the
// other writers' records queue into the next batch — the coalescing ceiling
// the engine approaches as device sync latency grows relative to op cost.
func durWALMicro(writers, opsPer int) (time.Duration, storage.WALStats, error) {
	var stats storage.WALStats
	dir, err := os.MkdirTemp("", "graphm-durability-*")
	if err != nil {
		return 0, stats, err
	}
	defer os.RemoveAll(dir)
	w, err := storage.OpenWAL(dir, storage.WALOptions{})
	if err != nil {
		return 0, stats, err
	}
	defer w.Close()
	payload := make([]byte, 64)
	var wg sync.WaitGroup
	errs := make([]error, writers)
	start := time.Now()
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				commit, err := w.Append(payload)
				if err == nil {
					err = commit()
				}
				if err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	wall := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return 0, stats, err
		}
	}
	return wall, w.Stats(), nil
}

// durViews concatenates every partition's chunk stream as seen by jobID.
func durViews(sys *core.System, jobID int) (map[int][]graph.Edge, error) {
	out := make(map[int][]graph.Edge)
	for pid := 0; pid < sys.NumPartitions(); pid++ {
		var stream []graph.Edge
		for k := 0; k < sys.ChunkCount(pid); k++ {
			edges, err := sys.ChunkView(jobID, pid, k)
			if err != nil {
				return nil, err
			}
			stream = append(stream, edges...)
		}
		out[pid] = stream
	}
	return out, nil
}

func durViewsEqual(want, got map[int][]graph.Edge) bool {
	if len(want) != len(got) {
		return false
	}
	for pid, w := range want {
		g := got[pid]
		if len(w) != len(g) {
			return false
		}
		for i := range w {
			if w[i] != g[i] {
				return false
			}
		}
	}
	return true
}

// durCheckpointRecovery runs the workload with the WAL on, checkpoints,
// applies a post-checkpoint tail, "crashes" (reopens the directory), and
// recovers a fresh system. It reports the checkpoint's size accounting, the
// replayed record count, and whether the recovered views are bit-identical.
func durCheckpointRecovery() (ck *storage.CheckpointData, replayed int, identical bool, err error) {
	sys, err := durSys()
	if err != nil {
		return nil, 0, false, err
	}
	dir, err := os.MkdirTemp("", "graphm-durability-*")
	if err != nil {
		return nil, 0, false, err
	}
	defer os.RemoveAll(dir)
	st, _, err := storage.Open(dir, storage.StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		return nil, 0, false, err
	}
	sys.SetEvolveSink(st)
	for _, op := range durOps() {
		if err := durApply(sys, op); err != nil {
			return nil, 0, false, err
		}
	}
	if err := sys.Checkpoint(st); err != nil {
		return nil, 0, false, err
	}
	rng := rand.New(rand.NewSource(durSeed * 7))
	for i := 0; i < durTailOps; i++ {
		edges := []graph.Edge{{
			Src: graph.VertexID(rng.Intn(durNumV)),
			Dst: graph.VertexID(rng.Intn(durNumV)),
		}}
		if _, err := sys.AddEdges(edges); err != nil {
			return nil, 0, false, err
		}
	}
	wantGlobal, err := durViews(sys, -1)
	if err != nil {
		return nil, 0, false, err
	}
	wantJob7, err := durViews(sys, 7)
	if err != nil {
		return nil, 0, false, err
	}
	st.Close() // crash point

	st2, rec, err := storage.Open(dir, storage.StoreOptions{NoSync: true, CheckpointEveryRecords: -1})
	if err != nil {
		return nil, 0, false, err
	}
	defer st2.Close()
	ck, err = storage.LatestCheckpoint(faultfs.OS{}, dir)
	if err != nil || ck == nil {
		return nil, 0, false, fmt.Errorf("durability: checkpoint not recovered: %v", err)
	}
	sys2, err := durSys()
	if err != nil {
		return nil, 0, false, err
	}
	if err := sys2.RestorePartitions(rec.Partitions); err != nil {
		return nil, 0, false, err
	}
	if err := sys2.RestoreOverrides(rec.Overrides); err != nil {
		return nil, 0, false, err
	}
	for _, ev := range rec.Evolves {
		if err := sys2.ApplyEvolve(ev); err != nil {
			return nil, 0, false, err
		}
	}
	gotGlobal, err := durViews(sys2, -1)
	if err != nil {
		return nil, 0, false, err
	}
	gotJob7, err := durViews(sys2, 7)
	if err != nil {
		return nil, 0, false, err
	}
	identical = durViewsEqual(wantGlobal, gotGlobal) && durViewsEqual(wantJob7, gotJob7)
	return ck, rec.WALRecords, identical, nil
}

// durability is the durable-storage experiment: WAL overhead on serial
// evolve ops, group-commit coalescing under concurrent writers, and the
// checkpoint compression ratio plus a crash-recovery differential.
func (h *Harness) durability() ([]*Table, error) {
	// One untimed pass warms the allocator, page cache and code paths so the
	// first timed mode is not penalized for going first.
	if _, _, err := durSerialRun(false, false); err != nil {
		return nil, err
	}
	// Off and no-fsync trials interleave so CPU-frequency and cache drift
	// hits both modes alike: the overhead column compares best against best.
	var offWall, noSyncWall time.Duration
	var noSyncStats storage.WALStats
	for i := 0; i < 5; i++ {
		off, _, err := durSerialRun(false, false)
		if err != nil {
			return nil, err
		}
		on, stats, err := durSerialRun(true, true)
		if err != nil {
			return nil, err
		}
		if i == 0 || off < offWall {
			offWall = off
		}
		if i == 0 || on < noSyncWall {
			noSyncWall, noSyncStats = on, stats
		}
	}
	fsyncWall, fsyncStats, err := durBestOf(1, true, false)
	if err != nil {
		return nil, err
	}
	overheadPct := func(wall time.Duration) string {
		if offWall <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (float64(wall)/float64(offWall)-1)*100)
	}
	opsPerSec := func(wall time.Duration) string {
		if wall <= 0 {
			return "n/a"
		}
		return fmt.Sprintf("%.0f", float64(durOpCount)/wall.Seconds())
	}
	t1 := &Table{
		Title:   fmt.Sprintf("WAL overhead: %d serial evolve ops (adds, job-private adds, predicate removes)", durOpCount),
		Headers: []string{"mode", "wall", "ops/s", "overhead vs off", "appends", "syncs"},
		Rows: [][]string{
			{"wal off", offWall.Round(time.Microsecond).String(), opsPerSec(offWall), "—", "0", "0"},
			{"wal on (no fsync)", noSyncWall.Round(time.Microsecond).String(), opsPerSec(noSyncWall),
				overheadPct(noSyncWall), human(noSyncStats.Appends), human(noSyncStats.Syncs)},
			{"wal on (fsync)", fsyncWall.Round(time.Microsecond).String(), opsPerSec(fsyncWall),
				overheadPct(fsyncWall), human(fsyncStats.Appends), human(fsyncStats.Syncs)},
		},
		Notes: []string{
			"acceptance: the batching machinery itself (no-fsync row) stays under +10% over wal-off; the fsync row is dominated by device sync latency",
			"best of 5 interleaved trials (1 for fsync); every mode applies the identical deterministic op sequence to a fresh system",
		},
	}

	concWall, concStats, err := durConcurrentRun()
	if err != nil {
		return nil, err
	}
	ratio := func(s storage.WALStats) string {
		if s.Syncs == 0 {
			return "n/a"
		}
		return f2(float64(s.Appends) / float64(s.Syncs))
	}
	microWall, microStats, err := durWALMicro(durWriters, durWriterOps*8)
	if err != nil {
		return nil, err
	}
	t2 := &Table{
		Title:   "group commit: fsync coalescing across concurrent evolve streams",
		Headers: []string{"workload", "writers", "ops", "wall", "appends", "batches", "syncs", "appends/sync"},
		Rows: [][]string{
			{"engine, serial", "1", fmt.Sprintf("%d", durOpCount), fsyncWall.Round(time.Microsecond).String(),
				human(fsyncStats.Appends), human(fsyncStats.Batches), human(fsyncStats.Syncs), ratio(fsyncStats)},
			{"engine, concurrent", fmt.Sprintf("%d", durWriters), fmt.Sprintf("%d", durWriters*durWriterOps),
				concWall.Round(time.Microsecond).String(),
				human(concStats.Appends), human(concStats.Batches), human(concStats.Syncs), ratio(concStats)},
			{"WAL direct", fmt.Sprintf("%d", durWriters), fmt.Sprintf("%d", durWriters*durWriterOps*8),
				microWall.Round(time.Microsecond).String(),
				human(microStats.Appends), human(microStats.Batches), human(microStats.Syncs), ratio(microStats)},
		},
		Notes: []string{
			"commit waits happen outside the evolve lock, so writer N+1 appends while writer N's batch is still syncing; the flusher syncs every queued record in one batch",
			"engine-level coalescing needs appends to outpace syncs: installs serialize under the controller lock, so the ratio only rises above 1 when device sync latency exceeds the per-op install cost",
			"the WAL-direct row removes the install cost and shows the mechanism's ceiling on this device; serial ops can never coalesce (each waits for its own sync before issuing the next)",
		},
	}

	ck, replayed, identical, err := durCheckpointRecovery()
	if err != nil {
		return nil, err
	}
	ident := "yes"
	if !identical {
		ident = "NO — recovered views diverge"
	}
	compRatio := "n/a"
	if ck.CompressedBytes > 0 {
		compRatio = f2(float64(ck.RawBytes) / float64(ck.CompressedBytes))
	}
	t3 := &Table{
		Title:   "checkpoint compression and crash-recovery differential",
		Headers: []string{"raw edge bytes", "compressed bytes", "ratio", "overrides", "WAL records replayed", "views bit-identical"},
		Rows: [][]string{{
			fmt.Sprintf("%d", ck.RawBytes),
			fmt.Sprintf("%d", ck.CompressedBytes),
			compRatio,
			fmt.Sprintf("%d", len(ck.Overrides)),
			fmt.Sprintf("%d", replayed),
			ident,
		}},
		Notes: []string{
			"chunk payloads are delta/varint compressed (sorted-run splitting, zig-zag deltas); the checkpoint covers the global stream plus live job-private overrides",
			fmt.Sprintf("recovery = checkpoint restore + override restore + replay of the %d post-checkpoint WAL records, compared bit-for-bit against the pre-crash global and job-7 views", replayed),
		},
	}
	if !identical {
		return []*Table{t1, t2, t3}, fmt.Errorf("durability: crash-recovery differential failed (views diverge)")
	}
	return []*Table{t1, t2, t3}, nil
}

package bench

import (
	"regexp"
	"strings"
	"testing"

	"graphm/internal/graph"
	"graphm/internal/jobs"
	"graphm/internal/scenario"
)

// smallHarness keeps experiment runs fast in unit tests.
func smallHarness(buf *strings.Builder) *Harness {
	h := New(buf)
	h.JobCount = 4
	h.Cores = 4
	return h
}

func TestTableRendering(t *testing.T) {
	tb := &Table{
		Title:   "t",
		Headers: []string{"a", "bb"},
		Rows:    [][]string{{"1", "2"}, {"333", "4"}},
		Notes:   []string{"n"},
	}
	s := tb.String()
	for _, want := range []string{"== t ==", "a", "bb", "333", "note: n"} {
		if !strings.Contains(s, want) {
			t.Fatalf("missing %q in:\n%s", want, s)
		}
	}
}

func TestExperimentsRegistryComplete(t *testing.T) {
	names := Experiments()
	want := []string{"fig2", "fig3", "fig4", "table3", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
		"table4", "ablation", "openloop", "parallel", "adaptive", "replay", "hotpath", "hotpath-serial",
		"hotpath-serial-wcc", "hotpath-serial-bfs", "hotpath-serial-sssp", "hotpath-serial-kcore",
		"hotpath-serial-labelprop", "hotpath-serial-ppr",
		"serve-http", "sharding", "durability"}
	if len(names) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(names), len(want))
	}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("entry %d = %q, want %q", i, names[i], n)
		}
		if Describe(n) == "" {
			t.Fatalf("experiment %q has no description", n)
		}
	}
	if Describe("nope") != "" {
		t.Fatal("unknown experiment described")
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	var buf strings.Builder
	if err := smallHarness(&buf).Run("fig99"); err == nil {
		t.Fatal("expected error for unknown experiment")
	}
}

func TestGridEnvBuild(t *testing.T) {
	env, err := NewGridEnv(graph.PresetLiveJ)
	if err != nil {
		t.Fatal(err)
	}
	if env.Grid.NumPartitions() != env.GridP*env.GridP {
		t.Fatalf("partitions = %d, want %d", env.Grid.NumPartitions(), env.GridP*env.GridP)
	}
	if _, err := NewGridEnv("bogus"); err == nil {
		t.Fatal("expected error for unknown dataset")
	}
}

func TestRunSchemeAllThreeCorrectAndOrdered(t *testing.T) {
	env, err := NewGridEnv(graph.PresetLiveJ)
	if err != nil {
		t.Fatal(err)
	}
	wf := func() *jobs.Workload { return jobs.Rotation(4, 3) }
	results := map[string]*SchemeResult{}
	for _, scheme := range Schemes {
		res, err := env.RunScheme(scheme, wf, RunOptions{Cores: 4})
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.ScannedEdges == 0 || res.MakespanSec() <= 0 {
			t.Fatalf("%s: empty result %+v", scheme, res)
		}
		results[scheme] = res
	}
	// The headline shape: GraphM beats both baselines on the same workload.
	if m, c := results[SchemeM].MakespanSec(), results[SchemeC].MakespanSec(); m >= c {
		t.Errorf("M (%v) not faster than C (%v)", m, c)
	}
	if m, s := results[SchemeM].MakespanSec(), results[SchemeS].MakespanSec(); m >= s {
		t.Errorf("M (%v) not faster than S (%v)", m, s)
	}
	// Compute work is scheme-independent (same jobs, same graph).
	if a, b := results[SchemeS].ProcessedEdges, results[SchemeM].ProcessedEdges; a != b {
		t.Errorf("processed edges differ between schemes: %d vs %d", a, b)
	}
	if results[SchemeM].SysStats == nil {
		t.Error("scheme M did not record system stats")
	}
}

func TestRunSchemeRejectsUnknown(t *testing.T) {
	env, err := NewGridEnv(graph.PresetLiveJ)
	if err != nil {
		t.Fatal(err)
	}
	wf := func() *jobs.Workload { return jobs.Rotation(1, 3) }
	if _, err := env.RunScheme("X", wf, RunOptions{}); err == nil {
		t.Fatal("expected unknown-scheme error")
	}
}

func TestMotivationExperimentsRun(t *testing.T) {
	var buf strings.Builder
	h := smallHarness(&buf)
	for _, exp := range []string{"fig2", "fig4"} {
		if err := h.Run(exp); err != nil {
			t.Fatalf("%s: %v", exp, err)
		}
	}
	if !strings.Contains(buf.String(), "Figure 2") || !strings.Contains(buf.String(), "Figure 4(a)") {
		t.Fatal("figures missing from output")
	}
}

func TestTable3Runs(t *testing.T) {
	var buf strings.Builder
	h := smallHarness(&buf)
	if err := h.Run("table3"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, ds := range graph.DatasetNames() {
		if !strings.Contains(out, ds) {
			t.Fatalf("table3 missing dataset %s:\n%s", ds, out)
		}
	}
}

func TestDistributedSchemesRun(t *testing.T) {
	var buf strings.Builder
	h := smallHarness(&buf)
	for _, eng := range []string{"powergraph", "chaos"} {
		for _, scheme := range Schemes {
			res, err := h.runDistScheme(eng, graph.PresetLiveJ, scheme, 2, 2)
			if err != nil {
				t.Fatalf("%s/%s: %v", eng, scheme, err)
			}
			if res.MakespanSec() <= 0 {
				t.Fatalf("%s/%s: empty result", eng, scheme)
			}
		}
	}
}

func TestGraphChiSchemesRun(t *testing.T) {
	var buf strings.Builder
	h := smallHarness(&buf)
	for _, scheme := range Schemes {
		res, err := h.runGraphChiScheme(graph.PresetLiveJ, scheme, 2)
		if err != nil {
			t.Fatalf("%s: %v", scheme, err)
		}
		if res.ScannedEdges == 0 {
			t.Fatalf("%s: nothing scanned", scheme)
		}
	}
}

func TestParallelExperimentRuns(t *testing.T) {
	var buf strings.Builder
	h := smallHarness(&buf)
	if err := h.Run("parallel"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "parallel executor") || !strings.Contains(out, "prefetch hit/start") {
		t.Fatalf("parallel table malformed:\n%s", out)
	}
	// Four sweep rows (workers 1/2/4/8), each with a speedup cell like "1.00x".
	if got := len(regexp.MustCompile(`\d+\.\d{2}x`).FindAllString(out, -1)); got != 4 {
		t.Fatalf("expected 4 speedup cells, found %d in output:\n%s", got, out)
	}
}

// TestAdaptiveExperimentWinsOnMisses is the PR's acceptance criterion: on
// the attach/detach ramp, adaptive re-labelling must produce fewer simulated
// LLC misses than the static labelling while the algorithm outputs stay
// bit-identical. The ramp's measured margin is ~15% with a few percent of
// run-to-run noise, so a strict less-than is asserted rather than a factor.
func TestAdaptiveExperimentWinsOnMisses(t *testing.T) {
	h := smallHarness(&strings.Builder{})
	static, err := h.adaptiveRun(false)
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := h.adaptiveRun(true)
	if err != nil {
		t.Fatal(err)
	}
	if adaptive.res.Stats.Relabels == 0 {
		t.Fatal("adaptive ramp never re-labelled")
	}
	if static.res.Stats.Relabels != 0 {
		t.Fatalf("static run re-labelled %d times", static.res.Stats.Relabels)
	}
	if adaptive.res.CacheMisses >= static.res.CacheMisses {
		t.Fatalf("adaptive misses %d not below static %d", adaptive.res.CacheMisses, static.res.CacheMisses)
	}
	if err := scenario.CheckWorkEqual(static.res, adaptive.res); err != nil {
		t.Fatal(err)
	}
	if err := scenario.CheckOutputsEqual(static.res, adaptive.res); err != nil {
		t.Fatal(err)
	}
}

func TestAdaptiveExperimentTable(t *testing.T) {
	var buf strings.Builder
	if err := smallHarness(&buf).Run("adaptive"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"adaptive chunk re-labelling", "static", "adaptive", "bit-identical across modes: yes"} {
		if !strings.Contains(out, want) {
			t.Fatalf("adaptive table missing %q:\n%s", want, out)
		}
	}
}

func TestMakespanModel(t *testing.T) {
	r := &SchemeResult{Scheme: SchemeC, Cores: 4, ComputeNS: 4e9, MemNS: 4e9, IONS: 1e9}
	if got := r.MakespanSec(); got != 3.0 {
		t.Fatalf("C makespan = %v, want (4+4)/4+1 = 3", got)
	}
	r.Scheme = SchemeS
	want := (8e9/(4*SeqEfficiency) + 1e9) / 1e9
	got := r.MakespanSec()
	if diff := got - want; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("S makespan = %v, want %v", got, want)
	}
	r.Jobs = 2
	if diff := r.AvgJobSec() - got/2; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("avg job = %v, want %v", r.AvgJobSec(), got/2)
	}
}

func TestLLCMissRate(t *testing.T) {
	r := &SchemeResult{LLCHits: 3, LLCMisses: 1}
	if r.LLCMissRate() != 0.25 {
		t.Fatalf("miss rate = %v", r.LLCMissRate())
	}
	empty := &SchemeResult{}
	if empty.LLCMissRate() != 0 {
		t.Fatal("empty rate should be 0")
	}
}

// Package bench is the evaluation harness: one runner per table and figure
// of the paper's Section 5, producing text tables with the same rows/series
// the paper reports. Absolute numbers come from the simulated cost model
// (see internal/engine.CostModel and DESIGN.md); the shapes — who wins, by
// roughly what factor, where the crossovers fall — are the reproduction
// target.
package bench

import (
	"fmt"
	"io"
	"strings"
	"time"

	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/gridgraph"
	"graphm/internal/jobs"
	"graphm/internal/memsim"
	"graphm/internal/storage"
)

// Table is a printable experiment result.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Fprint renders the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	t.Fprint(&b)
	return b.String()
}

// Scheme names used throughout (the paper's GridGraph-S/-C/-M etc.).
const (
	SchemeS = "S" // sequential jobs, original engine
	SchemeC = "C" // concurrent jobs, original engine, OS-managed
	SchemeM = "M" // concurrent jobs with GraphM
)

// Schemes lists the comparison order of the figures.
var Schemes = []string{SchemeS, SchemeC, SchemeM}

// SchemeResult aggregates one scheme execution over a workload.
type SchemeResult struct {
	Scheme string
	Jobs   int
	Cores  int

	Wall time.Duration

	ComputeNS uint64
	MemNS     uint64
	IONS      uint64

	MemPeak      int64
	IOBytes      uint64
	IOLoads      uint64
	LLCMisses    uint64
	LLCHits      uint64
	SwappedBytes uint64
	LPI          float64

	ScannedEdges   uint64
	ProcessedEdges uint64

	SysStats *core.Stats // only for SchemeM
}

// LLCMissRate returns misses / (hits + misses).
func (r *SchemeResult) LLCMissRate() float64 {
	total := r.LLCHits + r.LLCMisses
	if total == 0 {
		return 0
	}
	return float64(r.LLCMisses) / float64(total)
}

// SeqEfficiency is the intra-job parallel efficiency of a single job
// spread over all cores (scheme S): one job's threads synchronise at every
// iteration and cannot always keep the whole machine busy, whereas
// independent concurrent jobs (C and M) fill the cores. The constant is
// calibrated to the paper's in-memory C-vs-S gap (~1.5-1.7x).
const SeqEfficiency = 0.6

// MakespanSec converts counted work into the scheme's simulated makespan:
// compute and memory-level access parallelise across cores (with the
// single-job efficiency penalty for scheme S); disk/NIC time is a serial
// shared resource. This is the documented cost model of DESIGN.md.
func (r *SchemeResult) MakespanSec() float64 {
	cores := float64(r.Cores)
	if cores < 1 {
		cores = 1
	}
	if r.Scheme == SchemeS {
		cores *= SeqEfficiency
	}
	parallel := float64(r.ComputeNS+r.MemNS) / cores
	return (parallel + float64(r.IONS)) / 1e9
}

// AvgJobSec is the mean per-job simulated time — Figure 3(d)'s metric.
func (r *SchemeResult) AvgJobSec() float64 {
	if r.Jobs == 0 {
		return 0
	}
	return r.MakespanSec() / float64(r.Jobs)
}

// GridEnv is one dataset prepared for GridGraph-based experiments. The grid
// and its disk blobs are built once; each scheme run gets a fresh memory
// pool and LLC so counters are independent.
type GridEnv struct {
	Spec graph.DatasetSpec
	G    *graph.Graph
	Disk *storage.Disk
	Grid *gridgraph.Grid

	// GridP is the P used for the P×P partitioning.
	GridP int
}

// NewGridEnv generates the dataset preset and builds its grid.
func NewGridEnv(dataset string) (*GridEnv, error) {
	g, spec, err := graph.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	disk := storage.NewDisk()
	p := gridP(spec)
	grid, err := gridgraph.Build(g, p, disk)
	if err != nil {
		return nil, err
	}
	return &GridEnv{Spec: spec, G: g, Disk: disk, Grid: grid, GridP: p}, nil
}

// gridP picks the grid dimension as GridGraph does: enough partitions that
// a block comfortably fits in memory even out-of-core.
func gridP(spec graph.DatasetSpec) int {
	switch {
	case spec.NumE >= 400_000:
		return 8
	case spec.NumE >= 100_000:
		return 6
	default:
		return 4
	}
}

// RunOptions tunes a scheme execution.
type RunOptions struct {
	Cores int
	// Workers sets the real-concurrency width of SchemeM's streaming
	// executor (core.Config.Workers); 0 keeps the legacy serial driver the
	// simulated-time experiments run under.
	Workers int
	// TimeScale scales workload submission delays into real sleeps; 0
	// submits everything immediately.
	TimeScale float64
	// Scheduler controls the Section 4 strategy in SchemeM (default on).
	SchedulerOff bool
	// FineSyncOff disables chunk-level synchronization in SchemeM.
	FineSyncOff bool
	// MemBudget overrides the preset budget when non-zero.
	MemBudget int64
	// LLCBytes overrides the preset LLC size when non-zero.
	LLCBytes int64
}

func (o RunOptions) cores() int {
	if o.Cores <= 0 {
		return 8
	}
	return o.Cores
}

// RunScheme executes a freshly built workload under the named scheme and
// returns aggregated metrics. wf must return a fresh workload each call
// (programs are stateful).
func (e *GridEnv) RunScheme(scheme string, wf func() *jobs.Workload, opts RunOptions) (*SchemeResult, error) {
	w := wf()
	budget := e.Spec.MemBudget
	if opts.MemBudget > 0 {
		budget = opts.MemBudget
	}
	llc := e.Spec.LLCBytes
	if opts.LLCBytes > 0 {
		llc = opts.LLCBytes
	}
	e.Disk.ResetCounters()
	e.Disk.DropCaches()
	e.Disk.SetPageCache(budget)
	mem := storage.NewMemory(e.Disk, budget)
	cache, err := memsim.NewCache(memsim.DefaultConfig(llc))
	if err != nil {
		return nil, err
	}

	res := &SchemeResult{Scheme: scheme, Jobs: len(w.Jobs), Cores: opts.cores()}
	start := time.Now()
	switch scheme {
	case SchemeS:
		r := gridgraph.NewRunner(e.Grid, mem, cache)
		if err := jobs.RunWorkload(w, seqSubmitter{r: r}, 0); err != nil {
			return nil, err
		}
	case SchemeC:
		r := gridgraph.NewRunner(e.Grid, mem, cache)
		r.Cores = opts.cores()
		cs := newConcSubmitter(func(j *engine.Job) error {
			return r.RunConcurrent([]*engine.Job{j})
		})
		if err := jobs.RunWorkload(w, cs, opts.TimeScale); err != nil {
			return nil, err
		}
	case SchemeM:
		cfg := core.DefaultConfig(llc)
		cfg.Cores = opts.cores()
		cfg.Workers = opts.Workers
		cfg.Scheduler = !opts.SchedulerOff
		cfg.FineSync = !opts.FineSyncOff
		sys, err := core.NewSystem(e.Grid.AsLayout(), mem, cache, cfg)
		if err != nil {
			return nil, err
		}
		if err := jobs.RunWorkload(w, sysSubmitter{sys}, opts.TimeScale); err != nil {
			return nil, err
		}
		st := sys.StatsSnapshot()
		res.SysStats = &st
	default:
		return nil, fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	res.Wall = time.Since(start)

	for _, j := range w.Jobs {
		res.ComputeNS += j.Met.SimComputeNS
		res.MemNS += j.Met.SimMemNS
		res.IONS += j.Met.SimIONS
		res.ScannedEdges += j.Met.ScannedEdges
		res.ProcessedEdges += j.Met.ProcessedEdges
		res.LLCMisses += j.Ctr.Misses.Load()
		res.LLCHits += j.Ctr.Hits.Load()
		res.LPI += j.Ctr.LPI()
	}
	if len(w.Jobs) > 0 {
		res.LPI /= float64(len(w.Jobs))
	}
	res.MemPeak = mem.Peak()
	res.IOBytes = e.Disk.ReadBytes()
	res.IOLoads = e.Disk.ReadOps()
	res.SwappedBytes = cache.SwappedBytes()
	return res, nil
}

// seqSubmitter runs each job to completion at submission — GridGraph-S.
type seqSubmitter struct {
	r   *gridgraph.Runner
	err error
}

func (s seqSubmitter) Submit(j *engine.Job) {
	if err := s.r.RunSequential([]*engine.Job{j}); err != nil && s.err == nil {
		s.err = err
	}
}
func (s seqSubmitter) Wait() error { return s.err }

// concSubmitter launches each job on its own goroutine — GridGraph-C with
// the OS (Go scheduler + buffer pool) arbitrating.
type concSubmitter struct {
	run  func(*engine.Job) error
	done chan error
	n    int
}

func newConcSubmitter(run func(*engine.Job) error) *concSubmitter {
	return &concSubmitter{run: run, done: make(chan error, 1024)}
}

func (c *concSubmitter) Submit(j *engine.Job) {
	c.n++
	go func() { c.done <- c.run(j) }()
}

func (c *concSubmitter) Wait() error {
	var first error
	for i := 0; i < c.n; i++ {
		if err := <-c.done; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// sysSubmitter adapts core.System to the jobs.Submitter interface.
type sysSubmitter struct{ sys *core.System }

func (s sysSubmitter) Submit(j *engine.Job) { s.sys.Submit(j) }
func (s sysSubmitter) Wait() error          { return s.sys.Wait() }

// Formatting helpers shared by the experiment runners.

func f2(v float64) string   { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string   { return fmt.Sprintf("%.3f", v) }
func pct(v float64) string  { return fmt.Sprintf("%.1f%%", v*100) }
func mb(v int64) string     { return fmt.Sprintf("%.2fMB", float64(v)/(1<<20)) }
func mbu(v uint64) string   { return fmt.Sprintf("%.2fMB", float64(v)/(1<<20)) }
func human(v uint64) string { return fmt.Sprintf("%d", v) }

package bench

import (
	"fmt"

	"graphm/internal/chaos"
	"graphm/internal/cluster"
	"graphm/internal/core"
	"graphm/internal/engine"
	"graphm/internal/graph"
	"graphm/internal/graphchi"
	"graphm/internal/jobs"
	"graphm/internal/memsim"
	"graphm/internal/powergraph"
	"graphm/internal/storage"
)

// Distributed experiments. The paper runs PowerGraph and Chaos on a
// 128-node 1-GbE cluster; the simulated cluster scales node counts by 8
// (8 simulated nodes stand in for 64, 16 for 128) to keep per-run cost
// sensible while preserving the compute/communication ratio trends.

const nodeScale = 8

// runDistScheme executes one scheme of one distributed engine over a node
// group and returns aggregated metrics.
func (h *Harness) runDistScheme(engineName, dataset, scheme string, nodes int, jobCount int) (*SchemeResult, error) {
	g, spec, err := graph.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	// The paper's cluster nodes each match the single-machine testbed
	// (32 GB); a group's distributed shared memory comfortably holds the
	// graph and the jobs' copies, unlike the deliberately starved
	// out-of-core single-machine budgets. Scale per-node memory up so the
	// distributed baselines are network-bound, not artificially swapping.
	perNode := spec.MemBudget * 8
	cl, err := cluster.New(nodes, perNode)
	if err != nil {
		return nil, err
	}
	cache, err := memsim.NewCache(memsim.DefaultConfig(spec.LLCBytes))
	if err != nil {
		return nil, err
	}
	w := jobs.Rotation(jobCount, h.Seed)
	res := &SchemeResult{Scheme: scheme, Jobs: jobCount, Cores: nodes}

	var mem *storage.Memory
	switch engineName {
	case "powergraph":
		p, err := powergraph.Build(g, cl.Nodes)
		if err != nil {
			return nil, err
		}
		mem = p.SharedMemory(perNode)
		switch scheme {
		case SchemeS, SchemeC:
			r := powergraph.NewRunner(p, cl.Net, mem, cache)
			if scheme == SchemeS {
				err = r.RunSequential(w.Jobs)
			} else {
				err = r.RunConcurrent(w.Jobs)
			}
		case SchemeM:
			cfg := core.DefaultConfig(spec.LLCBytes)
			cfg.Cores = nodes
			sys, serr := core.NewSystem(p.AsLayout(), mem, cache, cfg)
			if serr != nil {
				return nil, serr
			}
			// Replica sync stays per job per iteration under GraphM.
			for _, j := range w.Jobs {
				j.Prog = &powergraph.SyncProgram{Program: j.Prog, Job: j, Net: cl.Net, P: p}
			}
			err = sys.Run(w.Jobs)
		}
		if err != nil {
			return nil, err
		}
	case "chaos":
		s, err := chaos.Build(g, cl.Nodes, 4)
		if err != nil {
			return nil, err
		}
		mem = s.SharedMemory(perNode)
		switch scheme {
		case SchemeS, SchemeC:
			r := chaos.NewRunner(s, cl.Net, mem, cache)
			if scheme == SchemeS {
				err = r.RunSequential(w.Jobs)
			} else {
				err = r.RunConcurrent(w.Jobs)
			}
		case SchemeM:
			cfg := core.DefaultConfig(spec.LLCBytes)
			cfg.Cores = nodes
			cfg.LoadHook = s.LoadHook(cl.Net)
			sys, serr := core.NewSystem(s.AsLayout(), mem, cache, cfg)
			if serr != nil {
				return nil, serr
			}
			err = sys.Run(w.Jobs)
		}
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("bench: unknown distributed engine %q", engineName)
	}

	collectJobMetrics(res, w.Jobs)
	res.MemPeak = mem.Peak()
	res.SwappedBytes = cache.SwappedBytes()
	return res, nil
}

func collectJobMetrics(res *SchemeResult, js []*engine.Job) {
	for _, j := range js {
		res.ComputeNS += j.Met.SimComputeNS
		res.MemNS += j.Met.SimMemNS
		res.IONS += j.Met.SimIONS
		res.ScannedEdges += j.Met.ScannedEdges
		res.ProcessedEdges += j.Met.ProcessedEdges
		res.LLCMisses += j.Ctr.Misses.Load()
		res.LLCHits += j.Ctr.Hits.Load()
		res.LPI += j.Ctr.LPI()
	}
	if len(js) > 0 {
		res.LPI /= float64(len(js))
	}
}

// runGraphChiScheme executes GraphChi-S/-C/-M on a single-machine dataset.
func (h *Harness) runGraphChiScheme(dataset, scheme string, jobCount int) (*SchemeResult, error) {
	g, spec, err := graph.Dataset(dataset)
	if err != nil {
		return nil, err
	}
	disk := storage.NewDisk()
	shards, err := graphchi.Build(g, gridP(spec), disk)
	if err != nil {
		return nil, err
	}
	disk.SetPageCache(spec.MemBudget)
	mem := storage.NewMemory(disk, spec.MemBudget)
	cache, err := memsim.NewCache(memsim.DefaultConfig(spec.LLCBytes))
	if err != nil {
		return nil, err
	}
	w := jobs.Rotation(jobCount, h.Seed)
	res := &SchemeResult{Scheme: scheme, Jobs: jobCount, Cores: h.Cores}
	switch scheme {
	case SchemeS:
		err = graphchi.NewRunner(shards, mem, cache).RunSequential(w.Jobs)
	case SchemeC:
		r := graphchi.NewRunner(shards, mem, cache)
		r.Cores = h.Cores
		err = r.RunConcurrent(w.Jobs)
	case SchemeM:
		cfg := core.DefaultConfig(spec.LLCBytes)
		cfg.Cores = h.Cores
		sys, serr := core.NewSystem(shards.AsLayout(), mem, cache, cfg)
		if serr != nil {
			return nil, serr
		}
		err = sys.Run(w.Jobs)
	default:
		err = fmt.Errorf("bench: unknown scheme %q", scheme)
	}
	if err != nil {
		return nil, err
	}
	collectJobMetrics(res, w.Jobs)
	res.MemPeak = mem.Peak()
	res.IOBytes = disk.ReadBytes()
	res.SwappedBytes = cache.SwappedBytes()
	return res, nil
}

// Figure 21: scaling out PowerGraph and Chaos from 64 to 128 nodes
// (simulated at 8–16) on UK-union, speedup relative to the engine's -S at
// the smallest node count.
func (h *Harness) fig21() ([]*Table, error) {
	var tables []*Table
	jobCount := h.JobCount // paper uses 64 jobs on 64-128 nodes; scaled
	for _, eng := range []string{"powergraph", "chaos"} {
		t := &Table{
			Title: fmt.Sprintf("Figure 21 (%s): speedup vs nodes (UK-union, %d jobs; node counts = paper/8)",
				eng, jobCount),
			Headers: []string{"nodes(paper)", eng + "-S", eng + "-C", eng + "-M"},
		}
		var base float64
		for _, nodes := range []int{8, 10, 12, 14, 16} {
			row := []string{fmt.Sprintf("%d(%d)", nodes, nodes*nodeScale)}
			for _, scheme := range Schemes {
				res, err := h.runDistScheme(eng, graph.PresetUKUnion, scheme, nodes, jobCount)
				if err != nil {
					return nil, err
				}
				v := res.MakespanSec()
				if scheme == SchemeS && base == 0 {
					base = v
				}
				row = append(row, f2(base/v))
			}
			t.Rows = append(t.Rows, row)
		}
		t.Notes = append(t.Notes, "paper: -M scales best with node count (less communication per useful byte)")
		tables = append(tables, t)
	}
	return tables, nil
}

// Table 4: GraphChi, PowerGraph and Chaos integrated with GraphM across all
// datasets (the paper runs 64 jobs; scaled to the harness job count).
func (h *Harness) table4() ([]*Table, error) {
	jobCount := h.JobCount
	t := &Table{
		Title:   fmt.Sprintf("Table 4: execution time (sim s) for %d jobs on other systems", jobCount),
		Headers: []string{"system", "livej", "orkut", "twitter", "uk-union", "clueweb"},
	}
	type runner func(dataset, scheme string) (*SchemeResult, error)
	engines := []struct {
		name string
		run  runner
	}{
		{"GraphChi", func(ds, sc string) (*SchemeResult, error) { return h.runGraphChiScheme(ds, sc, jobCount) }},
		{"PowerGraph", func(ds, sc string) (*SchemeResult, error) {
			return h.runDistScheme("powergraph", ds, sc, 8, jobCount)
		}},
		{"Chaos", func(ds, sc string) (*SchemeResult, error) {
			return h.runDistScheme("chaos", ds, sc, 8, jobCount)
		}},
	}
	for _, eng := range engines {
		for _, scheme := range Schemes {
			row := []string{eng.name + "-" + scheme}
			for _, ds := range graph.DatasetNames() {
				res, err := eng.run(ds, scheme)
				if err != nil {
					return nil, err
				}
				row = append(row, f2(res.MakespanSec()))
			}
			t.Rows = append(t.Rows, row)
		}
	}
	t.Notes = append(t.Notes,
		"paper shape: every engine speeds up with -M; Chaos-C slower than Chaos-S (network contention)",
		"GraphChi slowest overall (no shard skipping); PowerGraph fastest baseline")
	return []*Table{t}, nil
}

package bench

import (
	"fmt"
	"time"

	"graphm/internal/jobs"
)

// hotpath is the raw streaming-throughput experiment for the chunk-apply
// hot path: the Twitter rotation workload under GraphM, reporting scanned
// edges per second of wall-clock (Medges/s) — the quantity the run-length
// LLC accounting, batched counter flushing and per-partition lockstep
// wakeups buy. The serial row (workers=0, the legacy driver every
// simulated-time experiment uses) is the pinned perf-gate variant; the
// worker sweep shows how the executor's real concurrency stacks on top
// (its wall-clock scales with the runner's cores, so it stays out of the
// gate, like BenchmarkParallelExecutor).
func (h *Harness) hotpath() ([]*Table, error) {
	return h.hotpathRows([]int{0, 1, 2, 4})
}

// hotpathSerial is the serial-only variant backing BenchmarkHotpathSerial,
// the perf-regression-gate entry.
func (h *Harness) hotpathSerial() ([]*Table, error) {
	return h.hotpathRows([]int{0})
}

func (h *Harness) hotpathRows(workerSweep []int) ([]*Table, error) {
	e, err := h.gridEnv("twitter")
	if err != nil {
		return nil, err
	}
	jobCount := h.JobCount
	if jobCount <= 0 {
		jobCount = 8
	}
	t := &Table{
		Title:   fmt.Sprintf("hot path: streaming throughput, %d jobs, twitter", jobCount),
		Headers: []string{"driver", "wall", "scanned edges", "Medges/s", "LLC miss rate"},
		Notes: []string{
			"Medges/s: scanned edges per second of real wall-clock — the hot-path throughput the LLC simulation permits",
			"serial is the legacy workers=0 driver of every simulated-time experiment (the perf-gate variant)",
		},
	}
	for _, w := range workerSweep {
		res, err := e.RunScheme(SchemeM, func() *jobs.Workload {
			return jobs.Rotation(jobCount, h.Seed)
		}, RunOptions{Cores: h.Cores, Workers: w})
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		driver := "serial"
		if w > 0 {
			driver = fmt.Sprintf("workers=%d", w)
		}
		medges := 0.0
		if res.Wall > 0 {
			medges = float64(res.ScannedEdges) / res.Wall.Seconds() / 1e6
		}
		t.Rows = append(t.Rows, []string{
			driver,
			res.Wall.Round(time.Millisecond).String(),
			human(res.ScannedEdges),
			f2(medges),
			pct(res.LLCMissRate()),
		})
	}
	return []*Table{t}, nil
}

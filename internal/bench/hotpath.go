package bench

import (
	"fmt"
	"time"

	"graphm/internal/jobs"
)

// hotpath is the raw streaming-throughput experiment for the chunk-apply
// hot path: the Twitter rotation workload under GraphM, reporting scanned
// edges per second of wall-clock (Medges/s) — the quantity the run-length
// LLC accounting, batched counter flushing and per-partition lockstep
// wakeups buy. The serial row (workers=0, the legacy driver every
// simulated-time experiment uses) is the pinned perf-gate variant; the
// worker sweep shows how the executor's real concurrency stacks on top
// (its wall-clock scales with the runner's cores, so it stays out of the
// gate, like BenchmarkParallelExecutor).
func (h *Harness) hotpath() ([]*Table, error) {
	return h.hotpathRows([]int{0, 1, 2, 4})
}

// hotpathSerial is the serial-only variant backing BenchmarkHotpathSerial,
// the perf-regression-gate entry.
func (h *Harness) hotpathSerial() ([]*Table, error) {
	return h.hotpathRows([]int{0})
}

// hotpathSerialAlgo is the per-algorithm serial gate variant: the same
// serial driver over a homogeneous rotation of one batched algorithm, so
// benchgate pins each algorithm's ProcessEdges hot path individually
// instead of only the mixed rotation's blend.
func (h *Harness) hotpathSerialAlgo(algo string) ([]*Table, error) {
	return h.hotpathRowsAlgo([]int{0}, algo)
}

func (h *Harness) hotpathRows(workerSweep []int) ([]*Table, error) {
	return h.hotpathRowsAlgo(workerSweep, "")
}

// hotpathRowsAlgo runs the hot-path throughput rows; algo "" uses the
// paper's mixed WCC/PageRank/SSSP/BFS rotation, otherwise a homogeneous
// rotation of the named algorithm.
func (h *Harness) hotpathRowsAlgo(workerSweep []int, algo string) ([]*Table, error) {
	e, err := h.gridEnv("twitter")
	if err != nil {
		return nil, err
	}
	jobCount := h.JobCount
	if jobCount <= 0 {
		jobCount = 8
	}
	mix := "rotation"
	mk := func() *jobs.Workload { return jobs.Rotation(jobCount, h.Seed) }
	if algo != "" {
		mix = algo
		mk = func() *jobs.Workload { return jobs.RotationOf(algo, jobCount, h.Seed) }
	}
	t := &Table{
		Title:   fmt.Sprintf("hot path: streaming throughput, %d %s jobs, twitter", jobCount, mix),
		Headers: []string{"driver", "wall", "scanned edges", "Medges/s", "LLC miss rate"},
		Notes: []string{
			"Medges/s: scanned edges per second of real wall-clock — the hot-path throughput the LLC simulation permits",
			"serial is the legacy workers=0 driver of every simulated-time experiment (the perf-gate variant)",
		},
	}
	for _, w := range workerSweep {
		res, err := e.RunScheme(SchemeM, mk, RunOptions{Cores: h.Cores, Workers: w})
		if err != nil {
			return nil, fmt.Errorf("workers=%d: %w", w, err)
		}
		driver := "serial"
		if w > 0 {
			driver = fmt.Sprintf("workers=%d", w)
		}
		medges := 0.0
		if res.Wall > 0 {
			medges = float64(res.ScannedEdges) / res.Wall.Seconds() / 1e6
		}
		t.Rows = append(t.Rows, []string{
			driver,
			res.Wall.Round(time.Millisecond).String(),
			human(res.ScannedEdges),
			f2(medges),
			pct(res.LLCMissRate()),
		})
	}
	return []*Table{t}, nil
}

package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Harness runs experiments and caches shared state (dataset environments
// and the Figure 9–14 overall-comparison runs, which several figures view
// from different angles, exactly as the paper reports one 16-job execution
// through six figures).
type Harness struct {
	Out io.Writer
	// Seed makes every workload reproducible.
	Seed int64
	// JobCount is the concurrent job count of the overall comparison
	// (the paper uses 16).
	JobCount int
	// Cores is the simulated core count (the paper's machine has 16).
	Cores int
	// JSON switches table output to machine-readable JSON.
	JSON bool

	envs    map[string]*GridEnv
	overall map[string]map[string]*SchemeResult // dataset -> scheme -> result
}

// New returns a harness writing tables to out.
func New(out io.Writer) *Harness {
	return &Harness{Out: out, Seed: 42, JobCount: 16, Cores: 8}
}

func (h *Harness) gridEnv(dataset string) (*GridEnv, error) {
	if h.envs == nil {
		h.envs = make(map[string]*GridEnv)
	}
	if e, ok := h.envs[dataset]; ok {
		return e, nil
	}
	e, err := NewGridEnv(dataset)
	if err != nil {
		return nil, err
	}
	h.envs[dataset] = e
	return e, nil
}

// experiment is one runnable table/figure reproduction.
type experiment struct {
	name string
	desc string
	run  func(h *Harness) ([]*Table, error)
}

var experiments = []experiment{
	{"fig2", "concurrent-job trace over one week", (*Harness).fig2},
	{"fig3", "motivation: concurrent jobs on plain GridGraph", (*Harness).fig3},
	{"fig4", "spatial/temporal similarity of the trace", (*Harness).fig4},
	{"table3", "preprocessing time, GridGraph vs GridGraph-M", (*Harness).table3},
	{"fig9", "total execution time, 16 jobs, S/C/M, 5 datasets", (*Harness).fig9},
	{"fig10", "execution time breakdown (processing vs data access)", (*Harness).fig10},
	{"fig11", "memory usage, S/C/M", (*Harness).fig11},
	{"fig12", "I/O overhead, S/C/M", (*Harness).fig12},
	{"fig13", "LLC miss rate, S/C/M", (*Harness).fig13},
	{"fig14", "volume of data swapped into the LLC", (*Harness).fig14},
	{"fig15", "real-trace replay throughput", (*Harness).fig15},
	{"fig16", "sensitivity to submission rate lambda", (*Harness).fig16},
	{"fig17", "BFS/SSSP root-distance sensitivity", (*Harness).fig17},
	{"fig18", "scheduling-strategy ablation", (*Harness).fig18},
	{"fig19", "scaling with the number of jobs", (*Harness).fig19},
	{"fig20", "scaling with the number of cores", (*Harness).fig20},
	{"fig21", "distributed scalability (PowerGraph/Chaos)", (*Harness).fig21},
	{"table4", "GraphChi/PowerGraph/Chaos integration", (*Harness).table4},
	{"ablation", "design-choice ablations (chunk size, fine sync)", (*Harness).ablation},
	{"openloop", "open-loop arrivals: online admission vs arrival rate", (*Harness).openloop},
	{"parallel", "streaming-executor worker sweep: wall-clock speedup vs workers", (*Harness).parallel},
	{"adaptive", "adaptive chunk re-labelling: static vs barrier-relabelled chunking on an attach/detach ramp", (*Harness).adaptive},
	{"replay", "week-in-the-life trace replay through the admission service on a virtual clock", (*Harness).replayExperiment},
	{"hotpath", "chunk-apply hot-path throughput (Medges/s), serial + worker sweep", (*Harness).hotpath},
	{"hotpath-serial", "hot-path throughput, serial driver only (the perf-gate variant)", (*Harness).hotpathSerial},
	{"hotpath-serial-wcc", "serial hot path, homogeneous WCC jobs (per-algorithm gate)", func(h *Harness) ([]*Table, error) { return h.hotpathSerialAlgo("wcc") }},
	{"hotpath-serial-bfs", "serial hot path, homogeneous BFS jobs (per-algorithm gate)", func(h *Harness) ([]*Table, error) { return h.hotpathSerialAlgo("bfs") }},
	{"hotpath-serial-sssp", "serial hot path, homogeneous SSSP jobs (per-algorithm gate)", func(h *Harness) ([]*Table, error) { return h.hotpathSerialAlgo("sssp") }},
	{"hotpath-serial-kcore", "serial hot path, homogeneous k-core jobs (per-algorithm gate)", func(h *Harness) ([]*Table, error) { return h.hotpathSerialAlgo("kcore") }},
	{"hotpath-serial-labelprop", "serial hot path, homogeneous label-propagation jobs (per-algorithm gate)", func(h *Harness) ([]*Table, error) { return h.hotpathSerialAlgo("labelprop") }},
	{"hotpath-serial-ppr", "serial hot path, homogeneous PPR jobs (per-algorithm gate)", func(h *Harness) ([]*Table, error) { return h.hotpathSerialAlgo("ppr") }},
	{"serve-http", "Figure-2 trace through the HTTP daemon over a loopback socket", (*Harness).serveHTTP},
	{"sharding", "scale-out width sweep: the same service workload over 1/2/4/8 shards, work asserted identical", (*Harness).sharding},
	{"durability", "WAL overhead, group-commit coalescing, checkpoint compression + crash recovery", (*Harness).durability},
}

// Experiments lists runnable experiment names in paper order.
func Experiments() []string {
	names := make([]string, len(experiments))
	for i, e := range experiments {
		names[i] = e.name
	}
	return names
}

// Describe returns the one-line description of an experiment.
func Describe(name string) string {
	for _, e := range experiments {
		if e.name == name {
			return e.desc
		}
	}
	return ""
}

// Run executes one experiment by name and prints its tables.
func (h *Harness) Run(name string) error {
	tables, err := h.Tables(name)
	if err != nil {
		return err
	}
	for _, t := range tables {
		if h.JSON {
			enc := json.NewEncoder(h.Out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(t); err != nil {
				return err
			}
		} else {
			t.Fprint(h.Out)
		}
	}
	return nil
}

// Tables executes one experiment and returns its result tables without
// printing, for programmatic consumers.
func (h *Harness) Tables(name string) ([]*Table, error) {
	for _, e := range experiments {
		if e.name != name {
			continue
		}
		tables, err := e.run(h)
		if err != nil {
			return nil, fmt.Errorf("bench %s: %w", name, err)
		}
		return tables, nil
	}
	known := Experiments()
	sort.Strings(known)
	return nil, fmt.Errorf("bench: unknown experiment %q (known: %v)", name, known)
}

// RunAll executes every experiment in paper order.
func (h *Harness) RunAll() error {
	for _, e := range experiments {
		if err := h.Run(e.name); err != nil {
			return err
		}
	}
	return nil
}

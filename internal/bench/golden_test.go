package bench

import (
	"flag"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden table-layout files")

// goldenExperiments are the experiments whose rendered table layout is
// pinned by golden files. Chosen to cover the three table generations —
// a motivation figure, the trace-similarity figure, and the new adaptive
// experiment — while staying cheap enough for the unit-test suite.
var goldenExperiments = []string{"fig2", "fig4", "adaptive"}

var (
	numberRun = regexp.MustCompile(`[0-9]+`)
	spaceRun  = regexp.MustCompile(`[ \t]+`)
)

// normalizeTable masks every numeric token and collapses the padding that
// tracks value widths, so the golden files pin the *layout* — titles,
// headers, row and column counts, notes — under a fixed seed, while
// timing-dependent cells (wall clocks, counter noise) cannot flap the test.
func normalizeTable(s string) string {
	var out []string
	for _, line := range strings.Split(s, "\n") {
		line = numberRun.ReplaceAllString(line, "#")
		line = spaceRun.ReplaceAllString(line, " ")
		out = append(out, strings.TrimRight(line, " "))
	}
	return strings.Join(out, "\n")
}

// TestGoldenTableLayouts fails loudly when an experiment's table formatting
// drifts: changed headers, lost rows or columns, reworded notes. Refresh
// intentionally with `go test ./internal/bench -run TestGolden -update`.
func TestGoldenTableLayouts(t *testing.T) {
	for _, name := range goldenExperiments {
		t.Run(name, func(t *testing.T) {
			var buf strings.Builder
			h := smallHarness(&buf)
			if err := h.Run(name); err != nil {
				t.Fatal(err)
			}
			got := normalizeTable(buf.String())
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("table layout for %q drifted from %s.\n--- got ---\n%s\n--- want ---\n%s",
					name, path, got, string(want))
			}
		})
	}
}

// TestNormalizeTable pins the normalizer itself: masked numbers, collapsed
// padding, preserved structure.
func TestNormalizeTable(t *testing.T) {
	in := "== t ==\na    bb\n1    22.5ms\nnote: 95% at 1.5x\n"
	want := "== t ==\na bb\n# #.#ms\nnote: #% at #.#x\n"
	if got := normalizeTable(in); got != want {
		t.Fatalf("normalize = %q, want %q", got, want)
	}
}

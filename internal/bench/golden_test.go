package bench

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"graphm/internal/goldentest"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden table-layout files")

// goldenExperiments are the experiments whose rendered table layout is
// pinned by golden files. Chosen to cover the three table generations —
// a motivation figure, the trace-similarity figure, and the new adaptive
// experiment — while staying cheap enough for the unit-test suite.
var goldenExperiments = []string{"fig2", "fig4", "adaptive"}

// TestGoldenTableLayouts fails loudly when an experiment's table formatting
// drifts: changed headers, lost rows or columns, reworded notes. Refresh
// intentionally with `go test ./internal/bench -run TestGolden -update`.
func TestGoldenTableLayouts(t *testing.T) {
	for _, name := range goldenExperiments {
		t.Run(name, func(t *testing.T) {
			var buf strings.Builder
			h := smallHarness(&buf)
			if err := h.Run(name); err != nil {
				t.Fatal(err)
			}
			got := goldentest.Normalize(buf.String())
			path := filepath.Join("testdata", name+".golden")
			if *updateGolden {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			if got != string(want) {
				t.Fatalf("table layout for %q drifted from %s.\n--- got ---\n%s\n--- want ---\n%s",
					name, path, got, string(want))
			}
		})
	}
}

// The normalizer itself (masked numbers, collapsed padding and duration
// units) lives in internal/goldentest with its own pinning tests, shared
// with cmd/graphm-replay's golden test.
